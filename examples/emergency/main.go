// Emergency: a disaster-response broadcast along a road — an alert message
// must reach every radio in a long, thin deployment. The example contrasts
// the three broadcast strategies of the paper on the same topology:
//
//   - Bcast* (non-spontaneous, CD+ACK+NTD): O(D·log n) rounds,
//   - the spontaneous dominating-set algorithm: O(D + log n) rounds,
//   - decay flooding without carrier sensing: O(D·log² n) rounds.
package main

import (
	"fmt"
	"log"

	"udwn"
	"udwn/internal/baseline"
	"udwn/internal/core"
	"udwn/internal/sim"
	"udwn/internal/workload"
)

func main() {
	const n = 400
	const roadLength = 400

	phy := udwn.DefaultPHY()
	rb := (1 - phy.Eps) * phy.Range
	pts := workload.Strip(n, roadLength, rb, 21)
	if !workload.Connected(pts, rb) {
		log.Fatal("deployment disconnected; re-seed or densify")
	}
	_, diam := workload.HopDiameter(pts, rb, 0)
	nw := udwn.NewSINRNetwork(pts, phy)

	fmt.Printf("road deployment: n=%d, length=%.0f, hop diameter=%d\n\n", n, float64(roadLength), diam)

	// Bcast*: two-slot rounds with ε/2-precision primitives.
	s, err := nw.NewSim(func(id int) sim.Protocol {
		return core.NewBcastStar(n, 1, id == 0)
	}, udwn.SimOptions{Seed: 5, Slots: 2, SenseEps: phy.Eps / 2,
		Primitives: sim.CD | sim.ACK | sim.NTD})
	if err != nil {
		log.Fatal(err)
	}
	s.MarkInformed(0)
	ticks, ok := s.RunUntil(allInformed(n), 400000)
	fmt.Printf("Bcast* (non-spontaneous):  %5d rounds (done=%v, %.1f rounds/hop)\n",
		ticks/2, ok, float64(ticks/2)/float64(diam))

	// Spontaneous dominating-set broadcast.
	ntd := nw.NTDThreshold(phy.Eps / 2)
	s, err = nw.NewSim(func(id int) sim.Protocol {
		return core.NewSpontBcast(0.05, 1/(2.0*n), ntd, 1, id == 0)
	}, udwn.SimOptions{Seed: 5, Slots: 2, SenseEps: phy.Eps / 2,
		Primitives: sim.CD | sim.ACK | sim.NTD})
	if err != nil {
		log.Fatal(err)
	}
	s.MarkInformed(0)
	// Payload receipt, not any decode: the dominator construction also
	// produces decodes, so ask the protocol state.
	ticks, ok = s.RunUntil(func(s *sim.Sim) bool {
		for v := 0; v < n; v++ {
			if !s.Protocol(v).(*core.SpontBcast).Informed() {
				return false
			}
		}
		return true
	}, 400000)
	doms := 0
	for v := 0; v < n; v++ {
		if s.Protocol(v).(*core.SpontBcast).State() == core.Dominator {
			doms++
		}
	}
	fmt.Printf("Spontaneous (dominators):  %5d rounds (done=%v, %.1f rounds/hop, %d dominators)\n",
		ticks/2, ok, float64(ticks/2)/float64(diam), doms)

	// Decay flooding without carrier sense.
	s, err = nw.NewSim(func(id int) sim.Protocol {
		return baseline.NewDecayBcast(n, 1, id == 0)
	}, udwn.SimOptions{Seed: 5})
	if err != nil {
		log.Fatal(err)
	}
	s.MarkInformed(0)
	ticks, ok = s.RunUntil(allInformed(n), 400000)
	fmt.Printf("Decay flood (no sensing):  %5d rounds (done=%v, %.1f rounds/hop)\n",
		ticks, ok, float64(ticks)/float64(diam))
}

func allInformed(n int) func(*sim.Sim) bool {
	return func(s *sim.Sim) bool {
		for v := 0; v < n; v++ {
			if s.FirstDecode(v) < 0 {
				return false
			}
		}
		return true
	}
}
