// Aggregate: network-wide maximum consensus over the abstract MAC layer —
// the composition pattern the paper's contention-balancing primitive
// enables. Every node knows one reading; using nothing but acknowledged
// local broadcasts (Try&Adjust + stop-on-ACK underneath), the whole network
// converges on the global maximum in about D waves of local broadcasts.
package main

import (
	"fmt"
	"log"

	"udwn"
	"udwn/internal/absmac"
	"udwn/internal/sim"
	"udwn/internal/workload"
)

// maxApp gossips the largest reading it has seen.
type maxApp struct {
	best     int64
	decided  int64 // readings already broadcast, to avoid duplicates
	settleAt int   // last tick the best changed (filled by the driver)
}

func (a *maxApp) Init(e *absmac.Endpoint) {
	a.decided = a.best
	e.Send(a.best)
}

func (a *maxApp) OnRecv(e *absmac.Endpoint, from int, reading int64) {
	if reading > a.best {
		a.best = reading
		if reading > a.decided {
			a.decided = reading
			e.Send(reading)
		}
	}
}

func (a *maxApp) OnAck(*absmac.Endpoint, int64) {}

func main() {
	const n = 300
	const degree = 14

	phy := udwn.DefaultPHY()
	rb := (1 - phy.Eps) * phy.Range
	pts := workload.UniformDisc(n, workload.SideForDegree(n, degree, rb), 31)
	if !workload.Connected(pts, rb) {
		log.Fatal("deployment disconnected; re-seed")
	}
	_, diam := workload.HopDiameter(pts, rb, 0)
	nw := udwn.NewSINRNetwork(pts, phy)

	// Every node's reading is a pseudo-measurement; node readings are
	// distinct so the argmax is unique.
	apps := make([]*maxApp, n)
	s, err := nw.NewSim(func(id int) sim.Protocol {
		apps[id] = &maxApp{best: int64(1000 + (id*7919)%n)}
		return absmac.New(id, n, apps[id])
	}, udwn.SimOptions{Seed: 13, Primitives: sim.CD | sim.ACK})
	if err != nil {
		log.Fatal(err)
	}

	globalMax := int64(0)
	for _, a := range apps {
		if a.best > globalMax {
			globalMax = a.best
		}
	}

	ticks, ok := s.RunUntil(func(s *sim.Sim) bool {
		for _, a := range apps {
			if a.best != globalMax {
				return false
			}
		}
		return true
	}, 400000)
	if !ok {
		log.Fatal("consensus did not converge in the tick budget")
	}

	totalSends := 0
	for v := 0; v < n; v++ {
		totalSends += s.Protocol(v).(*absmac.Proto).Endpoint().Sent()
	}
	fmt.Printf("max-consensus over the abstract MAC layer\n")
	fmt.Printf("  n=%d, hop diameter=%d, global max=%d\n", n, diam, globalMax)
	fmt.Printf("  converged in %d rounds (%.1f rounds/hop)\n", ticks, float64(ticks)/float64(diam))
	fmt.Printf("  %d acknowledged local broadcasts issued (%.1f per node)\n",
		totalSends, float64(totalSends)/n)
}
