// Sensorfield: an Internet-of-Things motivation scenario — a field of
// battery-powered sensors under heavy churn (devices sleep, die and join
// continuously) where every sensor must announce its reading to its
// neighbourhood. LocalBcast keeps working because Try&Adjust rebalances
// contention after every change and arrivals start passive (p = 1/2n).
package main

import (
	"fmt"
	"log"

	"udwn"
	"udwn/internal/core"
	"udwn/internal/dynamics"
	"udwn/internal/sim"
	"udwn/internal/workload"
)

func main() {
	const (
		n        = 400
		degree   = 20
		churn    = 0.005 // 0.5% of the fleet churns every round
		maxTicks = 5000
	)

	phy := udwn.DefaultPHY()
	rb := (1 - phy.Eps) * phy.Range
	pts := workload.UniformDisc(n, workload.SideForDegree(n, degree, rb), 11)
	nw := udwn.NewSINRNetwork(pts, phy)

	s, err := nw.NewSim(func(id int) sim.Protocol {
		return core.NewLocalBcast(n, int64(id))
	}, udwn.SimOptions{Seed: 3, Primitives: sim.CD | sim.ACK, Async: true})
	if err != nil {
		log.Fatal(err)
	}

	// Track four protected gateway sensors: the theorem guarantees their
	// delivery in time proportional to their dynamic degree.
	gateways := []int{0, n / 3, 2 * n / 3, n - 1}
	protect := make(map[int]bool)
	for _, g := range gateways {
		protect[g] = true
	}
	drv := dynamics.NewPoissonChurn(churn, 99)
	drv.Protect = protect

	trackers := make([]*dynamics.DegreeTracker, len(gateways))
	for i, g := range gateways {
		trackers[i] = dynamics.NewDegreeTracker(g, 2*phy.Range)
	}

	for tick := 0; tick < maxTicks; tick++ {
		drv.Apply(s, s.Tick())
		for _, tr := range trackers {
			tr.Observe(s)
		}
		s.Step()
		if allDone(s, gateways) {
			break
		}
	}

	fmt.Printf("sensor field: n=%d, churn %.1f%%/round, async clocks\n", n, churn*100)
	for i, g := range gateways {
		fmt.Printf("  gateway %3d: mass-delivered at round %5d (dynamic degree %d)\n",
			g, s.FirstMassDelivery(g), trackers[i].Degree())
	}
	delivered := 0
	for v := 0; v < n; v++ {
		if s.FirstMassDelivery(v) >= 0 {
			delivered++
		}
	}
	fmt.Printf("fleet-wide: %d/%d sensors delivered at least once; %d alive at end\n",
		delivered, n, s.AliveCount())
}

func allDone(s *sim.Sim, nodes []int) bool {
	for _, v := range nodes {
		if s.FirstMassDelivery(v) < 0 {
			return false
		}
	}
	return true
}
