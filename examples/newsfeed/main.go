// Newsfeed: several producers inject updates into an ad-hoc mesh and every
// device must collect all of them — the k-message broadcast problem. The
// MultiBcast protocol pipelines the messages: each propagates through its
// own region concurrently, retired neighbourhood by neighbourhood via the
// ACK/NTD machinery.
package main

import (
	"fmt"
	"log"

	"udwn"
	"udwn/internal/core"
	"udwn/internal/sim"
	"udwn/internal/workload"
)

func main() {
	const (
		n        = 300
		degree   = 16
		nSources = 5
	)

	phy := udwn.DefaultPHY()
	rb := (1 - phy.Eps) * phy.Range
	pts := workload.UniformDisc(n, workload.SideForDegree(n, degree, rb), 8)
	if !workload.Connected(pts, rb) {
		log.Fatal("mesh disconnected; re-seed")
	}
	nw := udwn.NewSINRNetwork(pts, phy)
	ntd := nw.NTDThreshold(phy.Eps / 2)

	// Producers hold one update each; everyone else starts empty.
	updates := map[int]int64{}
	for i := 0; i < nSources; i++ {
		updates[i*n/nSources] = int64(100 + i)
	}

	s, err := nw.NewSim(func(id int) sim.Protocol {
		if msg, ok := updates[id]; ok {
			return core.NewMultiBcast(n, ntd, msg)
		}
		return core.NewMultiBcast(n, ntd)
	}, udwn.SimOptions{Seed: 12, Slots: 2, SenseEps: phy.Eps / 2,
		Primitives: sim.CD | sim.ACK | sim.NTD})
	if err != nil {
		log.Fatal(err)
	}

	// Track how quickly each update saturates the mesh.
	holders := func(msg int64) int {
		c := 0
		for v := 0; v < n; v++ {
			if s.Protocol(v).(*core.MultiBcast).HasMessage(msg) {
				c++
			}
		}
		return c
	}

	ticks, ok := s.RunUntil(func(s *sim.Sim) bool {
		for v := 0; v < n; v++ {
			if s.Protocol(v).(*core.MultiBcast).Known() < nSources {
				return false
			}
		}
		return true
	}, 400000)
	if !ok {
		log.Fatal("feed did not saturate in the tick budget")
	}

	fmt.Printf("newsfeed: %d devices, %d producers\n", n, nSources)
	fmt.Printf("all %d updates reached every device in %d rounds\n", nSources, ticks/2)
	for src, msg := range updates {
		fmt.Printf("  update %d (from device %3d): %d/%d holders\n", msg, src, holders(msg), n)
	}
	fmt.Printf("total transmissions: %d (%.1f per device)\n",
		s.TotalTransmissions(), float64(s.TotalTransmissions())/n)
}
