// Crossmodel: the paper's headline claim in one program — the SAME
// LocalBcast binary, consuming only the CD/ACK primitives, completes local
// broadcast under five different communication models (and a shadowed SINR
// variant) on the same node deployment.
package main

import (
	"fmt"
	"log"

	"udwn"
	"udwn/internal/core"
	"udwn/internal/metric"
	"udwn/internal/pathloss"
	"udwn/internal/sim"
	"udwn/internal/workload"
)

func main() {
	const n = 256
	const degree = 16

	phy := udwn.DefaultPHY()
	rb := (1 - phy.Eps) * phy.Range
	side := workload.SideForDegree(n, degree, rb)
	pts := workload.UniformDisc(n, side, 99)

	networks := []struct {
		name string
		nw   *udwn.Network
	}{
		{"SINR (fading, cumulative interference)", udwn.NewSINRNetwork(pts, phy)},
		{"SINR + log-normal shadowing", udwn.NewSINRSpace(
			pathloss.NewShadowed(metric.NewEuclidean(pts), 0.1, 4), phy)},
		{"Unit disc graph (radio collisions)", udwn.NewUDGNetwork(pts, phy)},
		{"Quasi-UDG (adversarial grey zone)", udwn.NewQUDGNetwork(pts, phy, 0.75, nil)},
		{"Protocol model (interference radius 2R)", udwn.NewProtocolNetwork(pts, phy, 2)},
		{"Bounded-independence graph (2-hop interference)", udwn.NewBIGNetwork(
			workload.GeometricGraph(pts, rb), 2, phy)},
	}

	fmt.Printf("one algorithm, %d models, same %d-node deployment:\n\n", len(networks), n)
	for _, item := range networks {
		s, err := item.nw.NewSim(func(id int) sim.Protocol {
			return core.NewLocalBcast(n, int64(id))
		}, udwn.SimOptions{Seed: 17, Primitives: sim.CD | sim.ACK})
		if err != nil {
			log.Fatal(err)
		}
		ticks, ok := s.RunUntil(func(s *sim.Sim) bool {
			for v := 0; v < n; v++ {
				if s.FirstMassDelivery(v) < 0 {
					return false
				}
			}
			return true
		}, 100000)
		deg := 0.0
		for v := 0; v < n; v++ {
			deg += float64(s.NeighborCount(v))
		}
		deg /= n
		fmt.Printf("  %-48s done=%-5v rounds=%-6d avg degree=%.1f\n",
			item.name, ok, ticks, deg)
	}
	fmt.Println("\nno model-specific code paths were taken: the protocol sees only Busy/Idle and ACK bits")
}
