// Quickstart: run the paper's LocalBcast on a 256-node SINR network and
// watch every node deliver its message to all of its neighbours in
// O(Δ + log n) rounds.
package main

import (
	"fmt"
	"log"

	"udwn"
	"udwn/internal/core"
	"udwn/internal/sim"
	"udwn/internal/workload"
)

func main() {
	const n = 256
	const targetDegree = 16

	// Physical layer: α = 3 path loss, SINR threshold β = 1.5, range R = 10.
	phy := udwn.DefaultPHY()

	// Deploy n nodes uniformly with expected degree ≈ 16 at the
	// communication radius R_B = (1−ε)·R.
	rb := (1 - phy.Eps) * phy.Range
	side := workload.SideForDegree(n, targetDegree, rb)
	pts := workload.UniformDisc(n, side, 42)

	nw := udwn.NewSINRNetwork(pts, phy)

	// Every node runs LocalBcast: Try&Adjust contention balancing with
	// carrier sensing (CD) plus stop-on-ACK.
	s, err := nw.NewSim(func(id int) sim.Protocol {
		return core.NewLocalBcast(n, int64(id))
	}, udwn.SimOptions{Seed: 7, Primitives: sim.CD | sim.ACK})
	if err != nil {
		log.Fatal(err)
	}

	// Run until every node has mass-delivered (all neighbours decoded it).
	ticks, ok := s.RunUntil(func(s *sim.Sim) bool {
		for v := 0; v < n; v++ {
			if s.FirstMassDelivery(v) < 0 {
				return false
			}
		}
		return true
	}, 100000)
	if !ok {
		log.Fatal("local broadcast did not complete in the tick budget")
	}

	stopped := 0
	for v := 0; v < n; v++ {
		if s.Protocol(v).(*core.LocalBcast).Done() {
			stopped++
		}
	}
	fmt.Printf("all %d nodes mass-delivered within %d rounds\n", n, ticks)
	fmt.Printf("%d nodes detected their own success via ACK and stopped\n", stopped)
	fmt.Printf("total transmissions: %d (%.1f per node)\n",
		s.TotalTransmissions(), float64(s.TotalTransmissions())/n)
}
