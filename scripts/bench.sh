#!/usr/bin/env bash
# Benchmark snapshot: runs `go test -bench . -benchmem` over the given
# packages (default: the simulator hot path and the grid engine's micro
# benches in internal/metrics) and renders the results as
# BENCH_<YYYY-MM-DD>.json in the run-manifest shape of internal/metrics —
# tool/version/started plus one record per benchmark — so benchmark history
# can be diffed and machine-read like `-manifest` output.
#
# The default package set includes the indexed-vs-brute hot-path pair
# (BenchmarkStepSparse4096Indexed / BenchmarkStepSparse4096Brute in
# internal/sim): their ratio is the speedup of the grid-indexed slot loop
# over the O(n·|tx|) scan on a sparse n=4096 deployment, and should stay
# well above 3x. Two further internal/sim pairs pin the incremental-field
# work: BenchmarkStepDense8192Incremental / Recompute is the dense-
# deployment speedup of the incremental interference field over the brute
# per-slot recompute (rotating 128-transmitter cohort at n=8192; must stay
# >= 5x), and BenchmarkStepQuiescent8192Wheel / SlotBySlot is the
# quiescence wheel's O(1) slot skipping against full slot execution on an
# all-idle deployment (must stay >= 10x). It also includes the trace-format pair
# (BenchmarkTraceWriteJSONL / BenchmarkTraceWriteBinary in
# internal/trace, plus the Read pair): bytes/event is the on-disk cost of
# each encoding on a dense trace and the binary format should stay ~3x
# smaller and several times faster in both directions. The trace query trio
# (BenchmarkTraceQueryFullMatch / SingleNode / TickWindow) pins the index's
# selective-read claim: the prune_x metric is (scanned+skipped)/scanned
# bytes and must stay >= 10 for the selective queries.
#
# Custom go-test metrics (b.ReportMetric: bytes/event, events/s, prune_x,
# bytes_scanned, ...) are captured per benchmark under "metrics".
#
# Usage: scripts/bench.sh [out.json] [-- <go test packages...>]
set -euo pipefail
cd "$(dirname "$0")/.."

out="BENCH_$(date -u +%F).json"
if [[ $# -gt 0 && $1 != -- ]]; then
  out=$1
  shift
fi
if [[ $# -gt 0 && $1 == -- ]]; then
  shift
fi
pkgs=("$@")
if [[ ${#pkgs[@]} -eq 0 ]]; then
  pkgs=(./internal/sim ./internal/metrics ./internal/trace)
fi

version=$(git describe --always --dirty 2>/dev/null || echo unknown)
started=$(date -u +%FT%TZ)
raw=$(mktemp)
trap 'rm -f "$raw"' EXIT

go test -run '^$' -bench . -benchmem -timeout 30m "${pkgs[@]}" | tee "$raw"

awk -v version="$version" -v started="$started" -v pkgs="${pkgs[*]}" '
BEGIN {
  printf "{\n  \"tool\": \"bench\",\n  \"version\": \"%s\",\n  \"started\": \"%s\",\n", version, started
  printf "  \"config\": {\n    \"packages\": \"%s\"\n  },\n  \"benchmarks\": [", pkgs
  n = 0
}
/^Benchmark/ && /ns\/op/ {
  name = $1; sub(/-[0-9]+$/, "", name)
  iters = $2; ns = $3
  bop = "0"; aop = "0"
  extra = ""
  # Fields after "ns/op" come in (value, unit) pairs: the standard B/op and
  # allocs/op plus any custom b.ReportMetric units (bytes/event, prune_x, ...).
  for (i = 5; i < NF; i += 2) {
    val = $i; unit = $(i + 1)
    if (unit == "B/op") { bop = val; continue }
    if (unit == "allocs/op") { aop = val; continue }
    if (extra != "") extra = extra ", "
    extra = extra sprintf("\"%s\": %s", unit, val)
  }
  if (n++) printf ","
  printf "\n    {\n      \"name\": \"%s\",\n      \"iters\": %s,\n      \"ns_per_op\": %s,\n      \"b_per_op\": %s,\n      \"allocs_per_op\": %s", name, iters, ns, bop, aop
  if (extra != "") printf ",\n      \"metrics\": {%s}", extra
  printf "\n    }"
}
END { printf "\n  ]\n}\n" }
' "$raw" > "$out"

echo "wrote $out"
