#!/usr/bin/env bash
# Tier-1 gate: build, vet, full test suite, then the same suite under the
# race detector (the parallel experiment engine makes -race meaningful —
# see internal/experiment/grid.go and TestParallelRace), plus short live
# fuzzing of the journal decoder and the spatial index, and a statement
# coverage gate over the packages whose tests are load-bearing.
#
# Every go test carries an explicit -timeout: a stuck grid cell or a hung
# deadline test must fail the gate with a goroutine dump, not wedge CI at
# the default 10-minute-per-package limit times the package count.
#
# Usage: scripts/ci.sh [-update-coverage]
#
#   -update-coverage  remeasure the gated packages and rewrite
#                     scripts/coverage_baseline.txt (floor = measured - 1.0,
#                     absorbing scheduling-dependent branches) instead of
#                     failing on a drop. Commit the result with the tests
#                     that moved it.
set -euo pipefail
cd "$(dirname "$0")/.."

update_coverage=0
for arg in "$@"; do
  case "$arg" in
    -update-coverage) update_coverage=1 ;;
    *) echo "usage: scripts/ci.sh [-update-coverage]" >&2; exit 2 ;;
  esac
done

go build ./...
go vet ./...
go vet ./internal/metrics
go test -timeout 10m ./...
go test -race -timeout 20m ./...
# The fault engine feeds the sim tick loop from grid workers; exercise that
# seam under the race detector explicitly even when the suites above shard.
go test -race -timeout 5m ./internal/faults
# The metrics registry is written concurrently by every grid worker and its
# snapshot determinism contract is load-bearing for manifests; race it.
go test -race -timeout 5m ./internal/metrics
# Fast determinism smoke of the observability seams (progress stream,
# manifest rendering, cross-worker metric merges) even in short mode.
go test -short -timeout 5m -run 'Progress|Manifest|Metrics' ./internal/experiment ./internal/metrics
# The spatial-index hot path must be byte-identical to the brute-force scan
# under every topology/model/fault mix, including across goroutines; run the
# differential property tests under the race detector explicitly so a shard
# of the suites above can never silently skip them.
go test -race -timeout 10m -run 'TestGridScanEquivalence|TestGridParallelRunsAgree' ./internal/sim
# The incremental interference field and the quiescence wheel carry the same
# exactness bar: raced short-mode runs of the differential suite (the full
# scenario×epoch matrix runs un-raced in the whole-suite pass above), the
# skip-transparency metamorphic suite, the cross-goroutine wheel purity
# property, and the shared-registry lazy-registration regression.
go test -race -short -timeout 10m -run 'TestIncrementalFieldEquivalence|TestFieldAppendPath|TestQuiescenceSkipTransparent|TestQuiescenceDeterministicAcrossWorkers|TestRadiusFallbackSharedRegistry' ./internal/sim
# The checkpoint store is written by every grid worker of a resumable sweep;
# race the crash/resume differential harness explicitly (short mode: one
# abort point per experiment, still all 16 experiments × both worker counts).
go test -race -short -timeout 10m -run 'TestResumeByteIdentical|TestCheckpointParallelWriters' ./internal/experiment
# The trace layer's locked observer serializes concurrent grid workers into
# one writer; race the whole package (includes the query/scan differential
# suite TestQueryScanEquivalence) plus the suite-level differential tests
# (all experiments, Workers 1 and 8): dual-format equivalence and indexed
# query vs full-scan-filter equivalence.
go test -race -timeout 10m ./internal/trace
go test -race -timeout 10m -run 'TestTraceDualFormatAllExperiments|TestQueryScanEquivalenceAllExperiments' ./internal/experiment
# The jobs daemon multiplexes journal writes, checkpoint access and event
# fan-out across pool workers and HTTP handlers; race the whole package
# explicitly (includes the submission-flood and SIGKILL/restart tests).
go test -race -timeout 10m ./internal/jobs
# The state-bounding machinery added by the retention PR: journal compaction
# under concurrent writers, single-flight cell dedup across concurrent jobs,
# per-client quotas with weighted-fair scheduling, and the GC sweep — all
# are lock-ordering-sensitive, so race their suites explicitly even when
# the whole-package runs above shard.
go test -race -timeout 10m -run 'TestCompact|TestRewriteCrashStages|TestConcurrentPutsDuringCompact|TestSingleFlight' ./internal/checkpoint
go test -race -timeout 10m -run 'TestSingleFlightDedupAcrossConcurrentRuns' ./internal/experiment
go test -race -timeout 10m -run 'TestGC|TestClient|TestWeightedFair|TestQuotaFlood|TestRetryAfterClamp|TestTraceSubmitUnwritable|TestCancelRemovesTrace' ./internal/jobs
# The GC crash matrix SIGKILLs a real daemon at every compaction stage and
# the retention soak bounds the state dir across a kill; both re-exec the
# test binary, so run them without -race (the victim is raced above).
go test -timeout 10m -run 'TestGCKillAtEveryStage|TestRetentionBoundsStateDir' ./internal/jobs
# End-to-end daemon smoke: build the real udwnd binary, submit a job over
# HTTP, stream its events to DONE, run two retained batches through POST /gc
# asserting the state dir stops growing, then SIGTERM and require a clean
# drain.
UDWND_SMOKE=1 go test -timeout 5m -run '^TestDaemonBinarySmoke$' ./internal/jobs

# Native fuzz targets, 10 seconds each: the journal frame decoder against
# arbitrary bytes, and the grid index against its brute-force oracle. The
# committed corpora under testdata/fuzz replay as plain tests in the suites
# above; here they seed short live fuzzing so CI keeps probing new inputs.
go test -timeout 5m -run '^$' -fuzz '^FuzzCheckpointDecode$' -fuzztime 10s ./internal/checkpoint
go test -timeout 5m -run '^$' -fuzz '^FuzzGridWithin$' -fuzztime 10s ./internal/geom
# The binary trace decoder fronts files from killed runs and foreign
# builds; fuzz it against arbitrary bytes (never panic, bounded allocation,
# accepted decodes must round-trip).
go test -timeout 5m -run '^$' -fuzz '^FuzzTraceDecode$' -fuzztime 10s ./internal/trace
# The index-frame decoder and the query planner sit behind the same hostile
# inputs; fuzz arbitrary payloads spliced as CRC-valid index frames (never
# panic, bounded allocation, a forged index can suppress frames but never
# fabricate or corrupt query results).
go test -timeout 5m -run '^$' -fuzz '^FuzzIndexDecode$' -fuzztime 10s ./internal/trace
# The incremental field engine against its brute recompute oracle: random
# move/kill/revive/tx-toggle/retune/power programs must keep the two fields
# bit-identical at every receiver every slot.
go test -timeout 5m -run '^$' -fuzz '^FuzzFieldDelta$' -fuzztime 10s ./internal/sim

# Coverage gate: statement coverage of the gated packages must not drop
# below the committed floors. Measured in -short mode so the numbers are
# fast and scheduling-stable; regenerate with scripts/ci.sh -update-coverage.
baseline=scripts/coverage_baseline.txt
covdir=$(mktemp -d)
trap 'rm -rf "$covdir"' EXIT
declare -A measured
for pkg in internal/experiment internal/checkpoint internal/sim internal/trace internal/jobs; do
  out=$(go test -short -timeout 10m -coverprofile="$covdir/$(basename "$pkg").cov" "./$pkg")
  pct=$(echo "$out" | grep -o 'coverage: [0-9.]*%' | grep -o '[0-9.]*' | tail -1)
  if [ -z "$pct" ]; then
    echo "coverage gate: could not parse coverage for $pkg" >&2
    echo "$out" >&2
    exit 1
  fi
  measured[$pkg]=$pct
  echo "coverage: $pkg $pct%"
done

if [ "$update_coverage" = 1 ]; then
  {
    echo "# Statement-coverage floors (percent) for scripts/ci.sh."
    echo "# Regenerate with: scripts/ci.sh -update-coverage"
    echo "# Floor = measured - 1.0 to absorb scheduling-dependent branches."
    for pkg in internal/experiment internal/checkpoint internal/sim internal/trace internal/jobs; do
      awk -v p="$pkg" -v m="${measured[$pkg]}" 'BEGIN{printf "%s %.1f\n", p, m-1.0}'
    done
  } > "$baseline"
  echo "coverage gate: wrote $baseline"
  cat "$baseline"
else
  if [ ! -f "$baseline" ]; then
    echo "coverage gate: $baseline missing; run scripts/ci.sh -update-coverage" >&2
    exit 1
  fi
  fail=0
  while read -r pkg floor; do
    case "$pkg" in \#*|"") continue ;; esac
    got=${measured[$pkg]:-}
    if [ -z "$got" ]; then
      echo "coverage gate: $pkg in baseline but not measured" >&2
      fail=1
      continue
    fi
    if ! awk -v g="$got" -v f="$floor" 'BEGIN{exit !(g+0 >= f+0)}'; then
      echo "coverage gate: $pkg coverage $got% fell below floor $floor%" >&2
      fail=1
    fi
  done < "$baseline"
  [ "$fail" = 0 ] || exit 1
  echo "coverage gate: ok"
fi
