#!/usr/bin/env bash
# Tier-1 gate: build, vet, full test suite, then the same suite under the
# race detector (the parallel experiment engine makes -race meaningful —
# see internal/experiment/grid.go and TestParallelRace).
#
# Every go test carries an explicit -timeout: a stuck grid cell or a hung
# deadline test must fail the gate with a goroutine dump, not wedge CI at
# the default 10-minute-per-package limit times the package count.
#
# Usage: scripts/ci.sh
set -euo pipefail
cd "$(dirname "$0")/.."

go build ./...
go vet ./...
go vet ./internal/metrics
go test -timeout 10m ./...
go test -race -timeout 15m ./...
# The fault engine feeds the sim tick loop from grid workers; exercise that
# seam under the race detector explicitly even when the suites above shard.
go test -race -timeout 5m ./internal/faults
# The metrics registry is written concurrently by every grid worker and its
# snapshot determinism contract is load-bearing for manifests; race it.
go test -race -timeout 5m ./internal/metrics
# Fast determinism smoke of the observability seams (progress stream,
# manifest rendering, cross-worker metric merges) even in short mode.
go test -short -timeout 5m -run 'Progress|Manifest|Metrics' ./internal/experiment ./internal/metrics
# The spatial-index hot path must be byte-identical to the brute-force scan
# under every topology/model/fault mix, including across goroutines; run the
# differential property tests under the race detector explicitly so a shard
# of the suites above can never silently skip them.
go test -race -timeout 10m -run 'TestGridScanEquivalence|TestGridParallelRunsAgree' ./internal/sim
