module udwn

go 1.22
