// Command experiments regenerates every table and figure of the evaluation
// suite (see DESIGN.md §3 and EXPERIMENTS.md).
//
// Usage:
//
//	experiments [-quick] [-seeds N] [-workers N] [id ...]
//
// With no ids, all experiments run in report order. Each experiment's
// (cell × seed) grid is evaluated on -workers concurrent workers (default:
// all CPUs); the output is byte-identical for every worker count.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"udwn/internal/experiment"
)

func main() {
	quick := flag.Bool("quick", false, "reduced sizes for a fast smoke run")
	seeds := flag.Int("seeds", 0, "repetitions per cell (0 = default)")
	workers := flag.Int("workers", 0, "concurrent grid cells (0 = all CPUs, 1 = sequential)")
	cellTimeout := flag.Duration("cell-timeout", 0, "per-cell deadline; overrunning cells are marked FAILED (0 = none)")
	retries := flag.Int("retries", 0, "retry budget for panicking or overrunning cells")
	list := flag.Bool("list", false, "list experiment ids and exit")
	flag.Parse()

	if *list {
		for _, e := range experiment.All() {
			fmt.Printf("%-10s %s\n", e.ID, e.Title)
		}
		return
	}

	opts := experiment.DefaultOptions()
	if *quick {
		opts = experiment.QuickOptions()
	}
	if *seeds > 0 {
		opts.Seeds = *seeds
	}
	opts.Workers = *workers
	opts.CellTimeout = *cellTimeout
	opts.Retries = *retries
	// One shared report: each experiment renders its own FAILED lines and
	// the suite summarises degraded cells at the end instead of aborting.
	report := experiment.NewRunReport()
	opts.Report = report

	selected := experiment.All()
	if args := flag.Args(); len(args) > 0 {
		selected = selected[:0]
		for _, id := range args {
			e, ok := experiment.Lookup(id)
			if !ok {
				fmt.Fprintf(os.Stderr, "unknown experiment %q (use -list)\n", id)
				os.Exit(1)
			}
			selected = append(selected, e)
		}
	}

	for _, e := range selected {
		start := time.Now()
		fmt.Printf("=== %s: %s ===\n", e.ID, e.Title)
		fmt.Println(e.Run(opts))
		fmt.Printf("(%s in %.1fs)\n\n", e.ID, time.Since(start).Seconds())
	}
	if failures := report.Failures(); len(failures) > 0 {
		fmt.Printf("=== %d degraded cell(s) [%s] ===\n%s",
			len(failures), report.Counters(), report)
		os.Exit(2)
	}
}
