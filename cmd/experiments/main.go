// Command experiments regenerates every table and figure of the evaluation
// suite (see DESIGN.md §3 and EXPERIMENTS.md).
//
// Usage:
//
//	experiments [-quick] [-seeds N] [-workers N] [-progress] [-manifest out.json]
//	            [-trace out.trace [-trace-format jsonl|binary]]
//	            [-checkpoint DIR [-resume] [-cache-stats]] [id ...]
//
// With no ids, all experiments run in report order. Each experiment's
// (cell × seed) grid is evaluated on -workers concurrent workers (default:
// all CPUs); the output is byte-identical for every worker count.
//
// -progress renders a live "done/total cells, ETA" line on stderr.
// -manifest writes a machine-readable run record — config, version, metric
// snapshot, per-cell timings, failures — as JSON. -cpuprofile and
// -memprofile write pprof profiles of the run.
//
// -trace records every grid cell's slot events into one file; cells run
// concurrently, so events interleave in completion order (aggregate
// analytics via traceinfo are order-insensitive). -trace-format binary
// selects the compact framed encoding of internal/trace for full-scale
// regeneration runs.
//
// -checkpoint DIR attaches a content-addressed cell-result store (see
// internal/checkpoint): every completed grid cell is journalled to
// DIR/cells.journal as it finishes, so a killed run loses at most the cells
// still in flight. A fresh run truncates any existing store in DIR; pass
// -resume to reuse it instead, replaying completed cells from the journal
// and computing only the rest. Output and manifests are byte-identical with
// or without a store and across any interrupt/resume pattern. -cache-stats
// prints the hit/miss traffic on stderr after the run.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"udwn/internal/checkpoint"
	"udwn/internal/experiment"
	"udwn/internal/metrics"
	"udwn/internal/sim"
	"udwn/internal/trace"
)

func main() {
	quick := flag.Bool("quick", false, "reduced sizes for a fast smoke run")
	seeds := flag.Int("seeds", 0, "repetitions per cell (0 = default)")
	workers := flag.Int("workers", 0, "concurrent grid cells (0 = all CPUs, 1 = sequential)")
	cellTimeout := flag.Duration("cell-timeout", 0, "per-cell deadline; overrunning cells are marked FAILED (0 = none)")
	retries := flag.Int("retries", 0, "retry budget for panicking or overrunning cells")
	progress := flag.Bool("progress", false, "render live done/total cells and ETA on stderr")
	indexMetrics := flag.Bool("index-metrics", false, "register the sim/index/*, sim/field/* and sim/wheel/* work counters in the metric snapshot")
	fieldMode := flag.String("field-mode", "incremental", "interference-field driver: incremental | recompute (brute per-slot reference); output is byte-identical either way")
	manifest := flag.String("manifest", "", "write a JSON run manifest (config, metrics, per-cell timings) to this file")
	traceFile := flag.String("trace", "", "record every grid cell's slot events into one trace file (interleaved in completion order)")
	traceFmt := flag.String("trace-format", "jsonl", "trace encoding: jsonl | binary (compact framed, for full-scale regeneration)")
	checkpointDir := flag.String("checkpoint", "", "journal completed grid cells to a content-addressed store in this directory")
	resume := flag.Bool("resume", false, "reuse the -checkpoint store, replaying completed cells instead of recomputing them")
	cacheStats := flag.Bool("cache-stats", false, "print checkpoint hit/miss statistics on stderr after the run")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU pprof profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap pprof profile to this file")
	list := flag.Bool("list", false, "list experiment ids and exit")
	flag.Parse()

	if *list {
		for _, e := range experiment.All() {
			fmt.Printf("%-10s %s\n", e.ID, e.Title)
		}
		return
	}

	if *resume && *checkpointDir == "" {
		fmt.Fprintln(os.Stderr, "experiments: -resume requires -checkpoint DIR (there is no store to resume from)")
		os.Exit(1)
	}
	if *cacheStats && *checkpointDir == "" {
		fmt.Fprintln(os.Stderr, "experiments: -cache-stats requires -checkpoint DIR")
		os.Exit(1)
	}

	if *cpuprofile != "" {
		stop, err := metrics.StartCPUProfile(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		defer stop()
	}

	opts := experiment.DefaultOptions()
	if *quick {
		opts = experiment.QuickOptions()
	}
	if *seeds > 0 {
		opts.Seeds = *seeds
	}
	opts.Workers = *workers
	opts.CellTimeout = *cellTimeout
	opts.Retries = *retries
	opts.IndexMetrics = *indexMetrics
	fm, err := sim.ParseFieldMode(*fieldMode)
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
	opts.FieldMode = fm
	// One shared report: each experiment renders its own FAILED lines and
	// the suite summarises degraded cells at the end instead of aborting.
	report := experiment.NewRunReport()
	opts.Report = report
	// One shared registry: commutative counters merge every experiment's
	// instrumentation deterministically regardless of worker count.
	reg := metrics.NewRegistry()
	opts.Metrics = reg
	// First SIGINT/SIGTERM: stop dispatching grid cells, let the in-flight
	// ones finish (HardCancel stays false), flush what completed, and exit
	// nonzero with an interrupted manifest. A second signal aborts at once.
	sigCh := make(chan os.Signal, 2)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	runCtx, cancelRun := context.WithCancel(context.Background())
	defer cancelRun()
	go func() {
		sig := <-sigCh
		fmt.Fprintf(os.Stderr, "\nexperiments: %s: finishing in-flight cells (signal again to abort)\n", sig)
		cancelRun()
		<-sigCh
		fmt.Fprintln(os.Stderr, "experiments: second signal, aborting")
		os.Exit(130)
	}()
	opts.Context = runCtx
	if *progress {
		ui := &progressUI{out: os.Stderr}
		opts.Progress = ui.report
	}
	var rec trace.Writer
	if *traceFile != "" {
		format, err := trace.ParseFormat(*traceFmt)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		out, err := os.Create(*traceFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments: trace file:", err)
			os.Exit(1)
		}
		defer out.Close()
		if rec, err = trace.NewWriter(out, format); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		// Grid cells run on concurrent workers; serialize their events.
		opts.Observer = trace.LockedObserver(rec)
	}
	if *checkpointDir != "" {
		open := checkpoint.Create
		if *resume {
			open = checkpoint.Resume
		}
		store, err := open(*checkpointDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		defer store.Close()
		opts.Checkpoint = store
	}

	selected := experiment.All()
	if args := flag.Args(); len(args) > 0 {
		selected = selected[:0]
		for _, id := range args {
			e, ok := experiment.Lookup(id)
			if !ok {
				fmt.Fprintf(os.Stderr, "unknown experiment %q (use -list)\n", id)
				os.Exit(1)
			}
			selected = append(selected, e)
		}
	}

	suiteStart := time.Now()
	interrupted := false
	for _, e := range selected {
		start := time.Now()
		fmt.Printf("=== %s: %s ===\n", e.ID, e.Title)
		out, stopped := runExperiment(e, opts)
		fmt.Println(out)
		if stopped {
			interrupted = true
			fmt.Println()
			break
		}
		fmt.Printf("(%s in %.1fs)\n\n", e.ID, time.Since(start).Seconds())
	}

	if rec != nil {
		if err := rec.Flush(); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		reg.Counter("trace/events").Add(int64(rec.Events()))
		if b, ok := rec.(*trace.Binary); ok {
			reg.Counter("trace/frames").Add(b.Frames())
			reg.Counter("trace/bytes").Add(b.BytesWritten())
		}
		fmt.Fprintf(os.Stderr, "trace: %d events (%s) -> %s\n", rec.Events(), *traceFmt, *traceFile)
	}
	if *cacheStats {
		st := opts.Checkpoint.Stats()
		fmt.Fprintf(os.Stderr,
			"checkpoint: %d hits, %d misses, %d stored, %d records in %s",
			st.Hits, st.Misses, st.Stores, st.Records, *checkpointDir)
		if st.Resumed {
			fmt.Fprintf(os.Stderr, " (resumed")
			if st.TornBytes > 0 {
				fmt.Fprintf(os.Stderr, ", dropped %d torn journal byte(s)", st.TornBytes)
			}
			fmt.Fprintf(os.Stderr, ")")
		}
		if st.Errors > 0 {
			fmt.Fprintf(os.Stderr, ", %d store error(s)", st.Errors)
		}
		fmt.Fprintln(os.Stderr)
	}
	if interrupted && opts.Checkpoint != nil {
		// Make the completed cells durable before reporting the interrupt;
		// a -resume run replays them and computes only the rest.
		if err := opts.Checkpoint.Sync(); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
		}
	}
	if *manifest != "" {
		ids := make([]string, len(selected))
		for i, e := range selected {
			ids[i] = e.ID
		}
		m := experiment.BuildManifest(ids, opts, report, time.Since(suiteStart))
		m.Interrupted = interrupted
		if err := m.WriteFile(*manifest); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
	}
	if *memprofile != "" {
		if err := metrics.WriteHeapProfile(*memprofile); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
	}
	if interrupted {
		msg := "experiments: interrupted; completed cells were flushed"
		if *checkpointDir != "" {
			msg += " (resume with -checkpoint " + *checkpointDir + " -resume)"
		}
		fmt.Fprintln(os.Stderr, msg)
		os.Exit(130)
	}
	if failures := report.Failures(); len(failures) > 0 {
		fmt.Printf("=== %d degraded cell(s) [%s] ===\n%s",
			len(failures), report.Counters(), report)
		os.Exit(2)
	}
}

// runExperiment executes one experiment, converting the grid's Cancelled
// unwind (raised when the signal context fires) into a printable marker and
// an interrupted flag instead of a crash. Any other panic propagates.
func runExperiment(e experiment.Experiment, o experiment.Options) (out string, interrupted bool) {
	defer func() {
		if p := recover(); p != nil {
			c, ok := p.(experiment.Cancelled)
			if !ok {
				panic(p)
			}
			out = c.String()
			interrupted = true
		}
	}()
	return e.Run(o).String(), false
}

// progressUI renders the grid's serialised Progress stream as a single
// \r-refreshed stderr line per experiment, throttled so tight grids do not
// flood the terminal. The grid serialises callbacks, so no locking here.
type progressUI struct {
	out   *os.File
	start time.Time
	last  time.Time
}

func (p *progressUI) report(pr experiment.Progress) {
	now := time.Now()
	if pr.Done == 1 {
		p.start = now // new grid: restart the rate estimate
	}
	final := pr.Done == pr.Total
	if !final && now.Sub(p.last) < 200*time.Millisecond {
		return
	}
	p.last = now
	line := fmt.Sprintf("%s %d/%d cells", pr.Experiment, pr.Done, pr.Total)
	if pr.Failed > 0 {
		line += fmt.Sprintf(" (%d failed)", pr.Failed)
	}
	if !final && pr.Done > 0 {
		perCell := now.Sub(p.start) / time.Duration(pr.Done)
		eta := perCell * time.Duration(pr.Total-pr.Done)
		line += fmt.Sprintf(", ETA %s", eta.Round(time.Second))
	}
	// Pad to blot out a longer previous line before the carriage return.
	fmt.Fprintf(p.out, "\r%-60s", line)
	if final {
		fmt.Fprintln(p.out)
	}
}
