// Command dissem runs a single dissemination scenario from flags and prints
// its outcome: which algorithm, over which communication model, on what
// deployment.
//
// Examples:
//
//	dissem -alg local -model sinr -n 512 -delta 32
//	dissem -alg bcast -model sinr -n 400 -strip 400
//	dissem -alg spont -model udg -n 300 -strip 300
//	dissem -alg local -model sinr -n 512 -churn 0.01 -async
//	dissem -alg local -n 256 -trace run.jsonl
//	dissem -alg bcast-star -n 300 -strip 300 -svg wave.svg
//	dissem -alg local -n 256 -fault-jam 0.05 -fault-drop 0.2
//	dissem -alg bcast -n 400 -strip 400 -fault-crash 0.005 -fault-sense 0.1
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"time"

	"udwn"
	"udwn/internal/baseline"
	"udwn/internal/core"
	"udwn/internal/dynamics"
	"udwn/internal/faults"
	"udwn/internal/geom"
	"udwn/internal/metrics"
	"udwn/internal/sim"
	"udwn/internal/trace"
	"udwn/internal/viz"
	"udwn/internal/workload"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "dissem:", err)
		os.Exit(1)
	}
}

type flags struct {
	alg      string
	model    string
	n        int
	delta    int
	strip    float64
	seed     uint64
	maxTicks int
	churn    float64
	walk     float64
	async    bool
	trace    string
	traceFmt string
	svg      string

	// Observability outputs (internal/metrics).
	manifest     string
	cpuprofile   string
	memprofile   string
	indexMetrics bool

	// fieldMode selects the interference-field driver (incremental |
	// recompute); runs are byte-identical across modes.
	fieldMode string

	// Fault injection (internal/faults); any non-zero rate arms the engine.
	faultCrash float64
	faultDown  int
	faultJam   float64
	faultDeaf  float64
	faultDrop  float64
	faultSense float64
	faultStall float64
}

// faultSpec assembles the declarative fault spec from the flags. The fault
// seed is derived from the run seed, keeping the whole run a pure function
// of -seed.
func (f flags) faultSpec() faults.Spec {
	return faults.Spec{
		Seed:          f.seed ^ 0xfa017,
		CrashRate:     f.faultCrash,
		CrashDowntime: f.faultDown,
		JamFraction:   f.faultJam,
		DeafFraction:  f.faultDeaf,
		DropRate:      f.faultDrop,
		SenseRate:     f.faultSense,
		StallRate:     f.faultStall,
		StallLen:      100,
	}
}

func parseFlags() flags {
	var f flags
	flag.StringVar(&f.alg, "alg", "local", "algorithm: local | local-spont | bcast | bcast-star | spont | decay | fixed | decay-bcast")
	flag.StringVar(&f.model, "model", "sinr", "model: sinr | udg | qudg | protocol | big")
	flag.IntVar(&f.n, "n", 512, "number of nodes")
	flag.IntVar(&f.delta, "delta", 16, "target average degree (square deployments)")
	flag.Float64Var(&f.strip, "strip", 0, "strip length (0 = square deployment)")
	seed := flag.Uint64("seed", 1, "run seed")
	flag.IntVar(&f.maxTicks, "max-ticks", 200000, "tick budget")
	flag.Float64Var(&f.churn, "churn", 0, "per-tick Poisson churn probability")
	flag.Float64Var(&f.walk, "walk", 0, "random-walk step as a fraction of R per tick")
	flag.BoolVar(&f.async, "async", false, "locally-synchronous clocks")
	flag.StringVar(&f.trace, "trace", "", "write a slot trace to this file")
	flag.StringVar(&f.traceFmt, "trace-format", "jsonl", "trace encoding: jsonl (reference, greppable) | binary (compact framed, for big runs)")
	flag.StringVar(&f.svg, "svg", "", "render the outcome (completion-time heatmap) to this SVG file")
	flag.StringVar(&f.manifest, "manifest", "", "write a JSON run manifest (config, metrics, counters) to this file")
	flag.BoolVar(&f.indexMetrics, "index-metrics", false, "register the sim/index/*, sim/field/* and sim/wheel/* work counters in the metric snapshot")
	flag.StringVar(&f.fieldMode, "field-mode", "incremental", "interference-field driver: incremental (delta-maintained) | recompute (brute per-slot reference); output is byte-identical either way")
	flag.StringVar(&f.cpuprofile, "cpuprofile", "", "write a CPU pprof profile to this file")
	flag.StringVar(&f.memprofile, "memprofile", "", "write a heap pprof profile to this file")
	flag.Float64Var(&f.faultCrash, "fault-crash", 0, "per-tick crash probability (nodes restart after -fault-down ticks)")
	flag.IntVar(&f.faultDown, "fault-down", 100, "crash downtime in ticks")
	flag.Float64Var(&f.faultJam, "fault-jam", 0, "fraction of nodes that are stuck transmitters (undecodable carrier)")
	flag.Float64Var(&f.faultDeaf, "fault-deaf", 0, "fraction of nodes with deaf receivers")
	flag.Float64Var(&f.faultDrop, "fault-drop", 0, "per-reception message drop probability")
	flag.Float64Var(&f.faultSense, "fault-sense", 0, "per-observation CD/ACK/NTD corruption probability")
	flag.Float64Var(&f.faultStall, "fault-stall", 0, "per-tick clock stall probability (100-tick stalls)")
	flag.Parse()
	f.seed = *seed
	return f
}

func run() error {
	f := parseFlags()
	phy := udwn.DefaultPHY()
	rb := (1 - phy.Eps) * phy.Range

	if f.cpuprofile != "" {
		stop, err := metrics.StartCPUProfile(f.cpuprofile)
		if err != nil {
			return err
		}
		defer stop()
	}
	start := time.Now()

	var pts = buildPoints(f, rb)
	nw, err := buildNetwork(f, pts, phy, rb)
	if err != nil {
		return err
	}

	fieldMode, err := sim.ParseFieldMode(f.fieldMode)
	if err != nil {
		return err
	}
	reg := metrics.NewRegistry()
	opts := udwn.SimOptions{
		Seed:         f.seed,
		Async:        f.async,
		Primitives:   sim.CD | sim.ACK,
		Dynamic:      f.walk > 0,
		Metrics:      reg,
		IndexMetrics: f.indexMetrics,
		FieldMode:    fieldMode,
	}
	var eng *faults.Engine
	if spec := f.faultSpec(); spec.Enabled() {
		spec.Protect = []int{0} // keep the source / node 0 measurable
		eng = faults.New(spec)
		opts.Injector = eng
	}
	// faulty excludes permanently fault-ridden nodes (stuck transmitters,
	// deaf receivers) from completion predicates: they can never finish.
	faulty := func(int) bool { return false }
	if eng != nil {
		faulty = eng.Faulty
	}
	global := false
	var factory sim.ProtocolFactory
	switch f.alg {
	case "local":
		factory = func(id int) sim.Protocol { return core.NewLocalBcast(f.n, int64(id)) }
	case "local-spont":
		factory = func(id int) sim.Protocol { return core.NewLocalBcastSpontaneous(0.25, int64(id)) }
	case "bcast":
		global = true
		opts.Slots, opts.SenseEps = 2, phy.Eps/2
		opts.Primitives |= sim.NTD
		factory = func(id int) sim.Protocol { return core.NewBcast(f.n, 3, 42, id == 0) }
	case "bcast-star":
		global = true
		opts.Slots, opts.SenseEps = 2, phy.Eps/2
		opts.Primitives |= sim.NTD
		factory = func(id int) sim.Protocol { return core.NewBcastStar(f.n, 42, id == 0) }
	case "spont":
		global = true
		opts.Slots, opts.SenseEps = 2, phy.Eps/2
		opts.Primitives |= sim.NTD
		ntd := nw.NTDThreshold(phy.Eps / 2)
		factory = func(id int) sim.Protocol {
			return core.NewSpontBcast(0.05, 1/(2*float64(f.n)), ntd, 42, id == 0)
		}
	case "decay":
		opts.Primitives = sim.FreeAck
		factory = func(id int) sim.Protocol { return baseline.NewDecay(f.n, int64(id)) }
	case "fixed":
		opts.Primitives = sim.FreeAck
		factory = func(id int) sim.Protocol { return baseline.NewFixedProb(f.delta, 1, int64(id)) }
	case "decay-bcast":
		global = true
		opts.Primitives = 0
		factory = func(id int) sim.Protocol { return baseline.NewDecayBcast(f.n, 42, id == 0) }
	default:
		return fmt.Errorf("unknown algorithm %q", f.alg)
	}
	if f.async && opts.Slots > 1 {
		return errors.New("two-slot algorithms require synchronous rounds")
	}

	var rec trace.Writer
	if f.trace != "" {
		format, err := trace.ParseFormat(f.traceFmt)
		if err != nil {
			return err
		}
		out, err := os.Create(f.trace)
		if err != nil {
			return fmt.Errorf("trace file: %w", err)
		}
		defer out.Close()
		if rec, err = trace.NewWriter(out, format); err != nil {
			return err
		}
		opts.Observer = rec.Record
	}

	s, err := nw.NewSim(factory, opts)
	if err != nil {
		return err
	}

	var drv dynamics.Driver
	switch {
	case f.churn > 0:
		c := dynamics.NewPoissonChurn(f.churn, f.seed^0xc0ffee)
		c.Protect = map[int]bool{0: true}
		drv = c
	case f.walk > 0:
		side := workload.SideForDegree(f.n, f.delta, rb)
		if f.strip > 0 {
			side = f.strip
		}
		drv = dynamics.NewRandomWalk(f.walk*phy.Range, side, f.seed^0xfeed)
	}

	var pred func(*sim.Sim) bool
	if global {
		s.MarkInformed(0)
		if f.alg == "spont" {
			// Dominator-construction traffic also produces decodes, so ask
			// the protocol for payload receipt.
			pred = func(s *sim.Sim) bool {
				for v := 0; v < f.n; v++ {
					if s.Alive(v) && !faulty(v) && !s.Protocol(v).(*core.SpontBcast).Informed() {
						return false
					}
				}
				return true
			}
		} else {
			pred = func(s *sim.Sim) bool {
				for v := 0; v < f.n; v++ {
					if s.Alive(v) && !faulty(v) && s.FirstDecode(v) < 0 {
						return false
					}
				}
				return true
			}
		}
	} else {
		pred = func(s *sim.Sim) bool {
			for v := 0; v < f.n; v++ {
				if s.Alive(v) && !faulty(v) && s.FirstMassDelivery(v) < 0 {
					return false
				}
			}
			return true
		}
	}

	ticks, done := dynamics.RunUntil(s, drv, pred, f.maxTicks)
	report(s, f, ticks, done, global)
	if eng != nil {
		fmt.Printf("  faults: %s\n", eng.Counters())
	}
	if bad := s.InvalidOps(); bad > 0 {
		fmt.Printf("  invalid-ops: %d\n", bad)
	}
	if f.svg != "" {
		if err := renderSVG(s, pts, f, ticks, global); err != nil {
			return err
		}
		fmt.Printf("  svg: %s\n", f.svg)
	}
	if rec != nil {
		if err := rec.Flush(); err != nil {
			return err
		}
		fmt.Printf("  trace: %d events (%s) -> %s\n", rec.Events(), f.traceFmt, f.trace)
		// Surface the trace volume in the metric snapshot/manifest alongside
		// the sim/* instrumentation.
		reg.Counter("trace/events").Add(int64(rec.Events()))
		if b, ok := rec.(*trace.Binary); ok {
			reg.Counter("trace/frames").Add(b.Frames())
			reg.Counter("trace/bytes").Add(b.BytesWritten())
		}
	}
	if f.manifest != "" {
		if err := writeManifest(f, reg, eng, s, ticks, done, time.Since(start)); err != nil {
			return err
		}
		fmt.Printf("  manifest: %s\n", f.manifest)
	}
	if f.memprofile != "" {
		if err := metrics.WriteHeapProfile(f.memprofile); err != nil {
			return err
		}
	}
	return nil
}

// writeManifest records the run: effective flags, outcome, the simulator's
// metric snapshot, and the fault engine's event counters when armed.
func writeManifest(f flags, reg *metrics.Registry, eng *faults.Engine,
	s *sim.Sim, ticks int, done bool, wall time.Duration) error {
	m := metrics.NewManifest("dissem")
	m.SetConfig("alg", f.alg)
	m.SetConfig("model", f.model)
	m.SetConfig("n", f.n)
	m.SetConfig("delta", f.delta)
	m.SetConfig("strip", f.strip)
	m.SetConfig("seed", f.seed)
	m.SetConfig("max-ticks", f.maxTicks)
	m.SetConfig("churn", f.churn)
	m.SetConfig("walk", f.walk)
	m.SetConfig("async", f.async)
	if f.trace != "" {
		m.SetConfig("trace", f.trace)
		m.SetConfig("trace-format", f.traceFmt)
	}
	m.SetConfig("done", done)
	m.SetConfig("ticks", ticks)
	m.SetConfig("invalid-ops", s.InvalidOps())
	m.SetConfig("slot-index", s.IndexMode())
	m.WallNs = int64(wall)
	m.Metrics = reg.Snapshot()
	if eng != nil {
		m.Counters = eng.Counters().Map()
	}
	return m.WriteFile(f.manifest)
}

func buildPoints(f flags, rb float64) []geom.Point {
	if f.strip > 0 {
		return workload.Strip(f.n, f.strip, rb, f.seed^0x515)
	}
	side := workload.SideForDegree(f.n, f.delta, rb)
	return workload.UniformDisc(f.n, side, f.seed^0x515)
}

func buildNetwork(f flags, pts []geom.Point, phy udwn.PHY, rb float64) (*udwn.Network, error) {
	switch f.model {
	case "sinr":
		return udwn.NewSINRNetwork(pts, phy), nil
	case "udg":
		return udwn.NewUDGNetwork(pts, phy), nil
	case "qudg":
		return udwn.NewQUDGNetwork(pts, phy, 0.75, nil), nil
	case "protocol":
		return udwn.NewProtocolNetwork(pts, phy, 2), nil
	case "big":
		return udwn.NewBIGNetwork(workload.GeometricGraph(pts, rb), 2, phy), nil
	default:
		return nil, fmt.Errorf("unknown model %q", f.model)
	}
}

// renderSVG draws the deployment coloured by completion time: blue = early,
// red = late, grey = never / dead.
func renderSVG(s *sim.Sim, pts []geom.Point, f flags, ticks int, global bool) error {
	scene := viz.NewScene(pts, fmt.Sprintf("%s on %s, n=%d", f.alg, f.model, f.n))
	scene.EdgesWithin(s.CommRadius())
	for v := 0; v < f.n; v++ {
		t := s.FirstMassDelivery(v)
		if global {
			t = s.FirstDecode(v)
		}
		st := viz.NodeStyle{Fill: "#bbb"}
		switch {
		case !s.Alive(v):
			st.Fill = "#eee"
		case t >= 0 && ticks > 0:
			st.Fill = viz.HeatColor(float64(t) / float64(ticks))
		}
		if global && v == 0 {
			st.Label = "source"
			st.Ring = s.CommRadius()
		}
		scene.Style(v, st)
	}
	out, err := os.Create(f.svg)
	if err != nil {
		return fmt.Errorf("svg file: %w", err)
	}
	defer out.Close()
	return scene.Render(out)
}

func report(s *sim.Sim, f flags, ticks int, done bool, global bool) {
	completed := 0
	for v := 0; v < f.n; v++ {
		switch {
		case f.alg == "spont":
			if s.Protocol(v).(*core.SpontBcast).Informed() {
				completed++
			}
		case global:
			if s.FirstDecode(v) >= 0 {
				completed++
			}
		case s.FirstMassDelivery(v) >= 0:
			completed++
		}
	}
	goal := "mass-delivered"
	if global {
		goal = "informed"
	}
	fmt.Printf("alg=%s model=%s n=%d seed=%d\n", f.alg, f.model, f.n, f.seed)
	fmt.Printf("  done=%v ticks=%d %s=%d/%d alive=%d\n",
		done, ticks, goal, completed, f.n, s.AliveCount())
	fmt.Printf("  transmissions=%d mass-deliveries=%d\n",
		s.TotalTransmissions(), s.TotalMassDeliveries())
}
