// Command traceinfo is the streaming analytics tool over slot traces
// produced with `dissem -trace` or `experiments -trace`, in either format
// (JSONL or the compact framed binary of internal/trace — the format is
// sniffed from the file's first bytes). It folds the trace through
// trace.Analyzer one event at a time, so memory stays bounded by node and
// bucket counts, never by trace length: per-node first-decode latency
// percentiles, the contention distribution, a transmissions timeline,
// fault-event correlation and the busiest transmitters.
//
// With -query the analysis is restricted to the events a trace query
// selects (the internal/trace grammar, e.g. 'node=3&tick=100-200&decodes');
// over an indexed binary trace the planner seeks past non-matching frames
// and reports how much of the file it skipped. -slice additionally writes
// the selected events as a valid sub-trace (binary by default, or
// -slice-format jsonl). With -counters it renders aggregate sensing and
// decode counters instead of the analytics report. With -checkpoint DIR it
// inspects an experiment checkpoint store instead of a trace.
//
// Usage:
//
//	traceinfo [-buckets N] [-top K] [-counters] [-allow-torn]
//	          [-query EXPR] [-slice OUT [-slice-format binary|jsonl]] run.trace
//	traceinfo -checkpoint DIR
//
// A binary trace with a torn tail (a run killed mid-write) is decoded up to
// the longest valid frame prefix; traceinfo reports the truncation and
// exits non-zero unless -allow-torn accepts the recovered prefix. An empty
// or header-only file is a distinct, clearly reported error, and a binary
// trace written under a different event schema fails fast instead of
// mis-decoding.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"udwn/internal/checkpoint"
	"udwn/internal/metrics"
	"udwn/internal/sim"
	"udwn/internal/trace"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "traceinfo:", err)
		os.Exit(1)
	}
}

func run() error {
	buckets := flag.Int("buckets", 10, "number of time buckets in the transmissions timeline")
	top := flag.Int("top", 5, "how many of the busiest transmitters to list (negative = none)")
	counters := flag.Bool("counters", false, "render aggregate sensing/decode counters instead of the analytics report")
	checkpointDir := flag.String("checkpoint", "", "inspect an experiment checkpoint store directory instead of a trace")
	query := flag.String("query", "", "restrict to events matching a trace query, e.g. 'node=3&tick=100-200'")
	slicePath := flag.String("slice", "", "write the selected events as a valid sub-trace to this file")
	sliceFormat := flag.String("slice-format", "binary", "sub-trace format for -slice: binary or jsonl")
	allowTorn := flag.Bool("allow-torn", false, "accept a torn trace: analyze the recovered prefix and exit 0")
	flag.Parse()
	if *checkpointDir != "" {
		if flag.NArg() != 0 {
			return fmt.Errorf("usage: traceinfo -checkpoint DIR (no trace file)")
		}
		return reportCheckpoint(os.Stdout, *checkpointDir)
	}
	if flag.NArg() != 1 {
		return fmt.Errorf("usage: traceinfo [-buckets N] [-top K] [-counters] [-query EXPR] [-slice OUT] <trace file>")
	}
	pred, err := trace.ParseQuery(*query)
	if err != nil {
		return err
	}
	f, err := os.Open(flag.Arg(0))
	if err != nil {
		return err
	}
	defer f.Close()

	a := trace.NewAnalyzer()
	a.Buckets = *buckets
	a.Top = *top
	tallies := metrics.NewCounters()
	observe := func(ev sim.SlotEvent) {
		if *counters {
			countEvent(tallies, ev)
		} else {
			a.Observe(ev)
		}
	}

	var torn bool
	var decoded int
	if *query != "" || *slicePath != "" {
		var slicer trace.Writer
		var sliceFile *os.File
		if *slicePath != "" {
			switch *sliceFormat {
			case "binary", "jsonl":
			default:
				return fmt.Errorf("unknown -slice-format %q (want binary or jsonl)", *sliceFormat)
			}
			sliceFile, err = os.Create(*slicePath)
			if err != nil {
				return err
			}
			defer sliceFile.Close()
			if *sliceFormat == "binary" {
				bw := trace.NewBinary(sliceFile)
				bw.KeepSilent = true
				slicer = bw
			} else {
				jw := trace.NewJSONL(sliceFile)
				jw.KeepSilent = true
				slicer = jw
			}
		}
		st, err := trace.Query(f, pred, func(ev sim.SlotEvent) error {
			if slicer != nil {
				slicer.Record(ev)
			}
			observe(ev)
			return nil
		})
		if err != nil {
			return describeTraceErr(err)
		}
		mode := "indexed"
		if st.FullScan {
			mode = "full scan"
		}
		expr := pred.String()
		if expr == "" {
			expr = "(all)"
		}
		fmt.Printf("query: %s (%s)\n", expr, mode)
		fmt.Printf("selected %d event(s); scanned %d frame(s)/%d byte(s), skipped %d frame(s)/%d byte(s)\n",
			st.EventsMatched, st.FramesScanned, st.BytesScanned, st.FramesSkipped, st.BytesSkipped)
		if slicer != nil {
			if err := slicer.Flush(); err != nil {
				return err
			}
			if err := sliceFile.Close(); err != nil {
				return err
			}
			fmt.Printf("slice: wrote %d event(s) to %s (%s)\n", slicer.Events(), *slicePath, *sliceFormat)
		}
		torn = st.Truncated
		decoded = int(st.EventsMatched)
	} else {
		events, format, err := trace.Open(f)
		if err != nil {
			return describeTraceErr(err)
		}
		for {
			ev, err := events.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				return err
			}
			observe(ev)
		}
		fmt.Printf("format: %s\n", format)
		if br, ok := events.(*trace.Reader); ok && br.Truncated() {
			torn = true
			decoded = br.Decoded()
		}
	}

	if torn {
		fmt.Printf("recovered: trace has a torn tail; decoded the longest valid prefix (%d events)\n", decoded)
		if !*allowTorn {
			return errors.New("trace has a torn tail (the writer was killed mid-frame); re-run with -allow-torn to accept the recovered prefix")
		}
	}
	if *counters {
		reportCounters(os.Stdout, tallies)
		return nil
	}
	a.Report(os.Stdout)
	return nil
}

// describeTraceErr turns the trace layer's typed open errors into actionable
// messages; anything else passes through.
func describeTraceErr(err error) error {
	switch {
	case errors.Is(err, trace.ErrEmptyTrace):
		return fmt.Errorf("%w — the file has no bytes; the recording run likely never started", err)
	case errors.Is(err, trace.ErrHeaderOnly):
		return fmt.Errorf("%w — only the 12-byte header was written; the run died before flushing any frame", err)
	case errors.Is(err, trace.ErrTruncatedHeader):
		return fmt.Errorf("%w — the file ends inside the file header; the write was torn at creation", err)
	}
	return err
}

// reportCheckpoint summarises a cell-result store: record counts per
// experiment, payload volume, journal health and the order-independent
// content hash. Opening runs the store's normal recovery, so a torn tail
// left by a killed run is repaired (and reported) exactly as -resume would.
func reportCheckpoint(w *os.File, dir string) error {
	store, err := checkpoint.Resume(dir)
	if err != nil {
		return err
	}
	defer store.Close()

	perExp := map[string]int{}
	var order []string
	var payload int64
	store.Each(func(rec *checkpoint.Record) {
		if _, seen := perExp[rec.Experiment]; !seen {
			order = append(order, rec.Experiment)
		}
		perExp[rec.Experiment]++
		payload += int64(len(rec.Value) + len(rec.Metrics))
	})

	st := store.Stats()
	fmt.Fprintf(w, "checkpoint store %s: %d record(s), %d payload byte(s)\n",
		dir, st.Records, payload)
	if st.TornBytes > 0 {
		fmt.Fprintf(w, "recovered: dropped %d torn journal byte(s)\n", st.TornBytes)
	}
	for _, id := range order {
		fmt.Fprintf(w, "  %-10s %5d cell(s)\n", id, perExp[id])
	}
	fmt.Fprintf(w, "store hash: %s\n", store.Hash())
	return nil
}

// countEvent streams one slot event's tallies into the same named counters
// the simulator's metrics registry records live (sim/tx, sim/decodes,
// sensing outcomes). Recorders skip silent slots, so sim/slots counts
// *active* slots here, not total ticks.
func countEvent(c *metrics.Counters, ev sim.SlotEvent) {
	c.Add("sim/slots", 1)
	c.Add("sim/tx", int64(len(ev.Transmitters)))
	c.Add("sim/decodes", int64(ev.Decodes))
	c.Add("sim/mass_deliveries", int64(len(ev.MassDeliverers)))
	c.Add("sim/cd_busy", int64(ev.CDBusy))
	c.Add("sim/cd_idle", int64(ev.CDIdle))
	c.Add("sim/ack", int64(ev.Acks))
	c.Add("sim/ntd", int64(ev.NTDs))
	c.Add("sim/seized_tx", int64(ev.Seized))
}

// reportCounters renders the accumulated tallies in the format of a
// -manifest metric snapshot.
func reportCounters(w *os.File, c *metrics.Counters) {
	for _, name := range c.Names() {
		fmt.Fprintf(w, "counter %s = %d\n", name, c.Get(name))
	}
}
