// Command traceinfo summarises a JSONL slot trace produced with
// `dissem -trace`: channel utilisation over time, throughput, and the
// busiest transmitters. With -counters it instead renders the trace's
// aggregate sensing and decode counters in the metrics layer's format.
// With -checkpoint DIR it inspects an experiment checkpoint store instead
// of a trace: per-experiment record counts, journal health and the store's
// content hash.
//
// Usage:
//
//	traceinfo [-buckets N] [-top K] [-counters] run.jsonl
//	traceinfo -checkpoint DIR
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"udwn/internal/checkpoint"
	"udwn/internal/metrics"
	"udwn/internal/sim"
	"udwn/internal/trace"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "traceinfo:", err)
		os.Exit(1)
	}
}

func run() error {
	buckets := flag.Int("buckets", 10, "number of time buckets in the utilisation profile")
	top := flag.Int("top", 5, "how many of the busiest transmitters to list")
	counters := flag.Bool("counters", false, "render aggregate sensing/decode counters instead of the profile")
	checkpointDir := flag.String("checkpoint", "", "inspect an experiment checkpoint store directory instead of a trace")
	flag.Parse()
	if *checkpointDir != "" {
		if flag.NArg() != 0 {
			return fmt.Errorf("usage: traceinfo -checkpoint DIR (no trace file)")
		}
		return reportCheckpoint(os.Stdout, *checkpointDir)
	}
	if flag.NArg() != 1 {
		return fmt.Errorf("usage: traceinfo [-buckets N] [-top K] [-counters] <trace.jsonl>")
	}
	f, err := os.Open(flag.Arg(0))
	if err != nil {
		return err
	}
	defer f.Close()
	events, err := trace.ReadJSONL(f)
	if err != nil {
		return err
	}
	if len(events) == 0 {
		fmt.Println("empty trace")
		return nil
	}
	if *counters {
		reportCounters(os.Stdout, events)
		return nil
	}
	report(os.Stdout, events, *buckets, *top)
	return nil
}

// reportCheckpoint summarises a cell-result store: record counts per
// experiment, payload volume, journal health and the order-independent
// content hash. Opening runs the store's normal recovery, so a torn tail
// left by a killed run is repaired (and reported) exactly as -resume would.
func reportCheckpoint(w *os.File, dir string) error {
	store, err := checkpoint.Resume(dir)
	if err != nil {
		return err
	}
	defer store.Close()

	perExp := map[string]int{}
	var order []string
	var payload int64
	store.Each(func(rec *checkpoint.Record) {
		if _, seen := perExp[rec.Experiment]; !seen {
			order = append(order, rec.Experiment)
		}
		perExp[rec.Experiment]++
		payload += int64(len(rec.Value) + len(rec.Metrics))
	})

	st := store.Stats()
	fmt.Fprintf(w, "checkpoint store %s: %d record(s), %d payload byte(s)\n",
		dir, st.Records, payload)
	if st.TornBytes > 0 {
		fmt.Fprintf(w, "recovered: dropped %d torn journal byte(s)\n", st.TornBytes)
	}
	for _, id := range order {
		fmt.Fprintf(w, "  %-10s %5d cell(s)\n", id, perExp[id])
	}
	fmt.Fprintf(w, "store hash: %s\n", store.Hash())
	return nil
}

// reportCounters aggregates the per-slot tallies of the trace into the same
// named counters the simulator's metrics registry records live (sim/tx,
// sim/decodes, sensing outcomes), so a recorded trace can be summarised in
// the format of a -manifest metric snapshot. The JSONL recorder skips
// silent slots, so sim/slots counts *active* slots here, not total ticks.
func reportCounters(w *os.File, events []sim.SlotEvent) {
	c := metrics.NewCounters()
	for _, ev := range events {
		c.Add("sim/slots", 1)
		c.Add("sim/tx", int64(len(ev.Transmitters)))
		c.Add("sim/decodes", int64(ev.Decodes))
		c.Add("sim/mass_deliveries", int64(len(ev.MassDeliverers)))
		c.Add("sim/cd_busy", int64(ev.CDBusy))
		c.Add("sim/cd_idle", int64(ev.CDIdle))
		c.Add("sim/ack", int64(ev.Acks))
		c.Add("sim/ntd", int64(ev.NTDs))
	}
	for _, name := range c.Names() {
		fmt.Fprintf(w, "counter %s = %d\n", name, c.Get(name))
	}
}

func report(w *os.File, events []sim.SlotEvent, buckets, top int) {
	lastTick := events[len(events)-1].Tick
	span := lastTick + 1

	totalTx, totalDecodes, totalMass := 0, 0, 0
	txPerNode := map[int]int{}
	massPerNode := map[int]int{}
	for _, ev := range events {
		totalTx += len(ev.Transmitters)
		totalDecodes += ev.Decodes
		totalMass += len(ev.MassDeliverers)
		for _, u := range ev.Transmitters {
			txPerNode[u]++
		}
		for _, u := range ev.MassDeliverers {
			massPerNode[u]++
		}
	}
	fmt.Fprintf(w, "trace: %d active slots over %d ticks\n", len(events), span)
	fmt.Fprintf(w, "transmissions: %d (%.2f per tick)\n", totalTx, float64(totalTx)/float64(span))
	fmt.Fprintf(w, "decodes:       %d (%.2f per transmission)\n", totalDecodes,
		safeDiv(totalDecodes, totalTx))
	fmt.Fprintf(w, "mass deliveries: %d (%.1f%% of transmissions)\n", totalMass,
		100*safeDiv(totalMass, totalTx))

	if buckets > 0 {
		fmt.Fprintf(w, "\nutilisation profile (transmissions per tick, %d buckets):\n", buckets)
		counts := make([]int, buckets)
		width := (span + buckets - 1) / buckets
		if width < 1 {
			width = 1
		}
		for _, ev := range events {
			b := ev.Tick / width
			if b >= buckets {
				b = buckets - 1
			}
			counts[b] += len(ev.Transmitters)
		}
		maxC := 1
		for _, c := range counts {
			if c > maxC {
				maxC = c
			}
		}
		for b, c := range counts {
			bar := make([]byte, 0, 40)
			for i := 0; i < 40*c/maxC; i++ {
				bar = append(bar, '#')
			}
			fmt.Fprintf(w, "  [%5d-%5d) %6.2f %s\n", b*width, (b+1)*width,
				float64(c)/float64(width), bar)
		}
	}

	if top > 0 && len(txPerNode) > 0 {
		type nodeCount struct{ node, tx, mass int }
		var list []nodeCount
		for u, c := range txPerNode {
			list = append(list, nodeCount{u, c, massPerNode[u]})
		}
		sort.Slice(list, func(i, j int) bool {
			if list[i].tx != list[j].tx {
				return list[i].tx > list[j].tx
			}
			return list[i].node < list[j].node
		})
		if top > len(list) {
			top = len(list)
		}
		fmt.Fprintf(w, "\nbusiest transmitters:\n")
		for _, nc := range list[:top] {
			fmt.Fprintf(w, "  node %5d: %5d transmissions, %5d mass deliveries\n",
				nc.node, nc.tx, nc.mass)
		}
	}
}

func safeDiv(a, b int) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}
