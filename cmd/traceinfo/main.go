// Command traceinfo is the streaming analytics tool over slot traces
// produced with `dissem -trace` or `experiments -trace`, in either format
// (JSONL or the compact framed binary of internal/trace — the format is
// sniffed from the file's first bytes). It folds the trace through
// trace.Analyzer one event at a time, so memory stays bounded by node and
// bucket counts, never by trace length: per-node first-decode latency
// percentiles, the contention distribution, a transmissions timeline,
// fault-event correlation and the busiest transmitters.
//
// With -counters it instead renders the trace's aggregate sensing and
// decode counters in the metrics layer's format. With -checkpoint DIR it
// inspects an experiment checkpoint store instead of a trace: per-experiment
// record counts, journal health and the store's content hash.
//
// Usage:
//
//	traceinfo [-buckets N] [-top K] [-counters] run.trace
//	traceinfo -checkpoint DIR
//
// A binary trace with a torn tail (a run killed mid-write) is decoded up to
// the longest valid frame prefix and the truncation is reported; a binary
// trace written under a different event schema fails fast instead of
// mis-decoding.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"udwn/internal/checkpoint"
	"udwn/internal/metrics"
	"udwn/internal/trace"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "traceinfo:", err)
		os.Exit(1)
	}
}

func run() error {
	buckets := flag.Int("buckets", 10, "number of time buckets in the transmissions timeline")
	top := flag.Int("top", 5, "how many of the busiest transmitters to list (negative = none)")
	counters := flag.Bool("counters", false, "render aggregate sensing/decode counters instead of the analytics report")
	checkpointDir := flag.String("checkpoint", "", "inspect an experiment checkpoint store directory instead of a trace")
	flag.Parse()
	if *checkpointDir != "" {
		if flag.NArg() != 0 {
			return fmt.Errorf("usage: traceinfo -checkpoint DIR (no trace file)")
		}
		return reportCheckpoint(os.Stdout, *checkpointDir)
	}
	if flag.NArg() != 1 {
		return fmt.Errorf("usage: traceinfo [-buckets N] [-top K] [-counters] <trace file>")
	}
	f, err := os.Open(flag.Arg(0))
	if err != nil {
		return err
	}
	defer f.Close()
	events, format, err := trace.Open(f)
	if err != nil {
		return err
	}
	if *counters {
		return reportCounters(os.Stdout, events)
	}
	a := trace.NewAnalyzer()
	a.Buckets = *buckets
	a.Top = *top
	for {
		ev, err := events.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		a.Observe(ev)
	}
	fmt.Printf("format: %s\n", format)
	if br, ok := events.(*trace.Reader); ok && br.Truncated() {
		fmt.Printf("recovered: trace has a torn tail; decoded the longest valid prefix (%d events)\n", br.Decoded())
	}
	a.Report(os.Stdout)
	return nil
}

// reportCheckpoint summarises a cell-result store: record counts per
// experiment, payload volume, journal health and the order-independent
// content hash. Opening runs the store's normal recovery, so a torn tail
// left by a killed run is repaired (and reported) exactly as -resume would.
func reportCheckpoint(w *os.File, dir string) error {
	store, err := checkpoint.Resume(dir)
	if err != nil {
		return err
	}
	defer store.Close()

	perExp := map[string]int{}
	var order []string
	var payload int64
	store.Each(func(rec *checkpoint.Record) {
		if _, seen := perExp[rec.Experiment]; !seen {
			order = append(order, rec.Experiment)
		}
		perExp[rec.Experiment]++
		payload += int64(len(rec.Value) + len(rec.Metrics))
	})

	st := store.Stats()
	fmt.Fprintf(w, "checkpoint store %s: %d record(s), %d payload byte(s)\n",
		dir, st.Records, payload)
	if st.TornBytes > 0 {
		fmt.Fprintf(w, "recovered: dropped %d torn journal byte(s)\n", st.TornBytes)
	}
	for _, id := range order {
		fmt.Fprintf(w, "  %-10s %5d cell(s)\n", id, perExp[id])
	}
	fmt.Fprintf(w, "store hash: %s\n", store.Hash())
	return nil
}

// reportCounters streams the per-slot tallies of the trace into the same
// named counters the simulator's metrics registry records live (sim/tx,
// sim/decodes, sensing outcomes), so a recorded trace can be summarised in
// the format of a -manifest metric snapshot. Recorders skip silent slots,
// so sim/slots counts *active* slots here, not total ticks.
func reportCounters(w *os.File, events trace.EventReader) error {
	c := metrics.NewCounters()
	for {
		ev, err := events.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		c.Add("sim/slots", 1)
		c.Add("sim/tx", int64(len(ev.Transmitters)))
		c.Add("sim/decodes", int64(ev.Decodes))
		c.Add("sim/mass_deliveries", int64(len(ev.MassDeliverers)))
		c.Add("sim/cd_busy", int64(ev.CDBusy))
		c.Add("sim/cd_idle", int64(ev.CDIdle))
		c.Add("sim/ack", int64(ev.Acks))
		c.Add("sim/ntd", int64(ev.NTDs))
		c.Add("sim/seized_tx", int64(ev.Seized))
	}
	for _, name := range c.Names() {
		fmt.Fprintf(w, "counter %s = %d\n", name, c.Get(name))
	}
	return nil
}
