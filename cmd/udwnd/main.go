// Command udwnd is the sim-as-a-service daemon: it serves the experiment
// registry over HTTP/JSON with a supervised job pool, per-job deadlines,
// bounded retries with deterministic backoff, load shedding, graceful drain
// on SIGTERM/SIGINT, and crash-safe resume from its state directory (job
// journal + shared checkpoint store).
//
// Usage:
//
//	udwnd -dir state/ -addr :8080 -workers 2
//
// Submit work and watch it:
//
//	curl -s localhost:8080/jobs -d '{"experiments":["table1"],"quick":true,"trace":true}'
//	curl -N localhost:8080/jobs/j-000001/events
//	curl -s localhost:8080/jobs/j-000001/result
//
// Introspect the pool and query a traced job's recorded events (the
// internal/trace query grammar; stats come back as X-Trace-* headers):
//
//	curl -s localhost:8080/statusz
//	curl -s 'localhost:8080/jobs/j-000001/trace?query=node=3&tick=100-200&format=jsonl'
//
// Durable state is bounded: -retain-age/-retain-count/-retain-bytes set the
// retention policy a background sweeper (period -gc-interval, or POST /gc on
// demand) enforces by collecting terminal jobs, unlinking their traces and
// atomically compacting both journals. The -client-* flags add per-client
// admission budgets (identity via the spec's "client" field or the X-Client
// header) with weighted-fair scheduling across clients:
//
//	udwnd -dir state/ -retain-age 24h -retain-count 1000 \
//	      -client-queue-depth 16 -client-max-weight 128 -client-max-inflight 1
//	curl -s -XPOST localhost:8080/gc
//
// On SIGTERM the daemon stops accepting (readyz flips to 503), lets running
// jobs finish for -drain-grace, cancels the stragglers' grids (their
// finished cells stay checkpointed, the jobs re-queue on next start),
// flushes the journals and exits 0. kill -9 instead loses nothing accepted:
// restart over the same -dir replays the journal and resumes.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"udwn/internal/jobs"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		addr        = flag.String("addr", "127.0.0.1:8080", "listen address")
		dir         = flag.String("dir", "udwnd-state", "state directory (job journal + checkpoint store)")
		workers     = flag.Int("workers", 2, "concurrent jobs")
		gridWorkers = flag.Int("grid-workers", 1, "concurrent cells per job grid")
		queueDepth  = flag.Int("queue-depth", 64, "max queued jobs before shedding")
		maxWeight   = flag.Int("max-weight", 512, "max in-flight cell weight before shedding")
		deadline    = flag.Duration("deadline", 2*time.Minute, "default per-attempt deadline")
		drainGrace  = flag.Duration("drain-grace", 5*time.Second, "time running jobs get to finish during drain")
		cellTimeout = flag.Duration("cell-timeout", 0, "per-cell deadline inside job grids (0 = none)")

		retainAge      = flag.Duration("retain-age", 0, "collect terminal jobs older than this (0 = keep forever)")
		retainCount    = flag.Int("retain-count", 0, "keep at most this many terminal jobs (0 = unlimited)")
		retainBytes    = flag.Int64("retain-bytes", 0, "state-dir byte budget enforced by collecting oldest terminal jobs (0 = unlimited)")
		gcInterval     = flag.Duration("gc-interval", 0, "background GC period (0 = on demand; defaults to 1m when retention is set)")
		clientQueue    = flag.Int("client-queue-depth", 0, "max queued jobs per client before shedding (0 = no per-client limit)")
		clientWeight   = flag.Int("client-max-weight", 0, "max in-flight cell weight per client before shedding (0 = no per-client limit)")
		clientInflight = flag.Int("client-max-inflight", 0, "max concurrently running jobs per client (0 = no per-client limit)")
	)
	flag.Parse()

	srv, err := jobs.Open(jobs.Config{
		Dir:               *dir,
		Workers:           *workers,
		GridWorkers:       *gridWorkers,
		QueueDepth:        *queueDepth,
		MaxWeight:         *maxWeight,
		DefaultDeadline:   *deadline,
		DrainGrace:        *drainGrace,
		CellTimeout:       *cellTimeout,
		RetainAge:         *retainAge,
		RetainCount:       *retainCount,
		RetainBytes:       *retainBytes,
		GCInterval:        *gcInterval,
		ClientQueueDepth:  *clientQueue,
		ClientMaxWeight:   *clientWeight,
		ClientMaxInflight: *clientInflight,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "udwnd:", err)
		return 1
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "udwnd:", err)
		return 1
	}
	hs := &http.Server{Handler: srv.Handler()}
	httpDone := make(chan error, 1)
	go func() { httpDone <- hs.Serve(ln) }()
	fmt.Fprintf(os.Stderr, "udwnd: listening on %s, state in %s\n", ln.Addr(), *dir)

	sigCh := make(chan os.Signal, 2)
	signal.Notify(sigCh, syscall.SIGTERM, syscall.SIGINT)
	select {
	case sig := <-sigCh:
		fmt.Fprintf(os.Stderr, "udwnd: %s: draining (grace %s)\n", sig, *drainGrace)
	case err := <-httpDone:
		fmt.Fprintln(os.Stderr, "udwnd:", err)
		srv.Drain()
		srv.Close()
		return 1
	}

	// Graceful drain: finish or park every in-flight job, flush journals,
	// then stop the listener and exit 0. A second signal aborts immediately.
	go func() {
		<-sigCh
		fmt.Fprintln(os.Stderr, "udwnd: second signal, aborting")
		os.Exit(1)
	}()
	code := 0
	if err := srv.Drain(); err != nil {
		fmt.Fprintln(os.Stderr, "udwnd: drain:", err)
		code = 1
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	hs.Shutdown(ctx)
	if err := srv.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "udwnd: close:", err)
		code = 1
	}
	fmt.Fprintln(os.Stderr, "udwnd: drained, exiting")
	return code
}
