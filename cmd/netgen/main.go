// Command netgen generates a topology and validates the model assumptions
// the paper's algorithms rely on: connectivity at the communication radius,
// degree statistics, metricity of the path loss, and the empirical
// (r_min, λ)-bounded-independence constant.
//
// Examples:
//
//	netgen -kind uniform -n 512 -delta 16
//	netgen -kind strip -n 300 -length 300
//	netgen -kind lower-bound -n 128
package main

import (
	"flag"
	"fmt"
	"os"

	"udwn"
	"udwn/internal/geom"
	"udwn/internal/metric"
	"udwn/internal/stats"
	"udwn/internal/viz"
	"udwn/internal/workload"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "netgen:", err)
		os.Exit(1)
	}
}

func run() error {
	kind := flag.String("kind", "uniform", "topology: uniform | grid | cluster | strip | chain | lower-bound")
	n := flag.Int("n", 512, "number of nodes")
	delta := flag.Int("delta", 16, "target degree (uniform)")
	length := flag.Float64("length", 200, "strip length / chain extent")
	seed := flag.Uint64("seed", 1, "topology seed")
	checkMetricity := flag.Bool("metricity", false, "verify metricity of the path loss (O(n³), use small n)")
	svg := flag.String("svg", "", "render the topology to this SVG file")
	flag.Parse()

	phy := udwn.DefaultPHY()
	rb := (1 - phy.Eps) * phy.Range

	var pts []geom.Point
	switch *kind {
	case "uniform":
		side := workload.SideForDegree(*n, *delta, rb)
		pts = workload.UniformDisc(*n, side, *seed)
	case "grid":
		cols := 1
		for cols*cols < *n {
			cols++
		}
		pts = workload.Grid(cols, cols, rb/2)
	case "cluster":
		pts = workload.Clustered(*n, *n/32+1, rb/2, workload.SideForDegree(*n, *delta, rb), *seed)
	case "strip":
		pts = workload.Strip(*n, *length, rb, *seed)
	case "chain":
		pts = workload.Chain(*n, *length/float64(*n))
	case "lower-bound":
		return describeLowerBound(*n, phy)
	default:
		return fmt.Errorf("unknown kind %q", *kind)
	}

	space := metric.NewEuclidean(pts)
	fmt.Printf("kind=%s n=%d R=%.1f RB=%.1f\n", *kind, len(pts), phy.Range, rb)
	fmt.Printf("connected at RB: %v\n", workload.Connected(pts, rb))
	if dists, diam := workload.HopDiameter(pts, rb, 0); diam > 0 {
		reach := 0
		for _, d := range dists {
			if d >= 0 {
				reach++
			}
		}
		fmt.Printf("hop eccentricity from node 0: %d (reaches %d/%d)\n", diam, reach, len(pts))
	}

	var degs []float64
	grid := geom.NewGrid(pts, rb)
	for u := range pts {
		degs = append(degs, float64(grid.CountWithin(pts[u], rb)-1))
	}
	d := stats.Summarize(degs)
	fmt.Printf("degree at RB: mean=%.1f median=%.0f p95=%.0f max=%.0f\n",
		d.Mean, d.Median, d.P95, d.Max)

	centres := []int{0, len(pts) / 3, 2 * len(pts) / 3}
	rep := metric.CheckIndependence(space, centres, rb/4, 2, []float64{1, 2, 4, 8})
	fmt.Printf("bounded independence (r=RB/4, λ=2): C ≤ %.2f over %d samples\n",
		rep.MaxC, rep.Samples)

	if *checkMetricity {
		f := &metric.GeometricLoss{Base: space, Alpha: phy.Alpha}
		ok := metric.SatisfiesMetricity(f, phy.Alpha)
		fmt.Printf("metricity ζ ≤ α=%.0f: %v\n", phy.Alpha, ok)
	}
	if *svg != "" {
		scene := viz.NewScene(pts, fmt.Sprintf("%s topology, n=%d", *kind, len(pts)))
		scene.EdgesWithin(rb)
		out, err := os.Create(*svg)
		if err != nil {
			return fmt.Errorf("svg file: %w", err)
		}
		defer out.Close()
		if err := scene.Render(out); err != nil {
			return err
		}
		fmt.Printf("svg: %s\n", *svg)
	}
	return nil
}

func describeLowerBound(n int, phy udwn.PHY) error {
	inst := workload.LowerBound(n, phy.Range, phy.Eps)
	rb := (1 - phy.Eps) * phy.Range
	fmt.Printf("Theorem 5.3 instance: n=%d bridge=%d sink=%d cluster=%d nodes\n",
		n, inst.Bridge, inst.Sink, len(inst.Cluster))
	fmt.Printf("cluster spacing: %.3f (= εR/8)\n", inst.Space.Dist(0, 1))
	fmt.Printf("cluster→bridge:  %.3f (= μ·RB, inside R=%.1f)\n",
		inst.Space.Dist(0, inst.Bridge), phy.Range)
	fmt.Printf("bridge→sink:     %.3f (= RB)\n", inst.Space.Dist(inst.Bridge, inst.Sink))
	fmt.Printf("cluster→sink:    %.3f (beyond R: unreachable directly)\n",
		inst.Space.Dist(0, inst.Sink))
	rep := metric.CheckIndependence(inst.Space, []int{0, inst.Bridge}, phy.Eps*phy.Range/8, 1,
		[]float64{1, 2, 4, 8})
	fmt.Printf("bounded independence (r=εR/8, λ=1): C ≤ %.2f\n", rep.MaxC)
	fmt.Printf("RB=%.2f\n", rb)
	return nil
}
