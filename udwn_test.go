package udwn_test

import (
	"math"
	"testing"

	"udwn"
	"udwn/internal/core"
	"udwn/internal/sim"
	"udwn/internal/workload"
)

func TestDefaultPHYPower(t *testing.T) {
	phy := udwn.DefaultPHY()
	// P = β·N·R^α must place the SINR range exactly at phy.Range.
	nw := udwn.NewSINRNetwork(workload.UniformDisc(4, 10, 1), phy)
	if got := nw.Model.R(); math.Abs(got-phy.Range) > 1e-9 {
		t.Fatalf("SINR range = %v, want %v", got, phy.Range)
	}
}

func TestNetworkConstructors(t *testing.T) {
	phy := udwn.DefaultPHY()
	pts := workload.UniformDisc(32, 40, 2)
	rb := (1 - phy.Eps) * phy.Range
	nets := map[string]*udwn.Network{
		"sinr":     udwn.NewSINRNetwork(pts, phy),
		"udg":      udwn.NewUDGNetwork(pts, phy),
		"qudg":     udwn.NewQUDGNetwork(pts, phy, 0.7, nil),
		"protocol": udwn.NewProtocolNetwork(pts, phy, 2),
		"big":      udwn.NewBIGNetwork(workload.GeometricGraph(pts, rb), 2, phy),
	}
	for name, nw := range nets {
		if nw.Space == nil || nw.Model == nil {
			t.Fatalf("%s: incomplete network", name)
		}
		if nw.Space.Len() != 32 {
			t.Fatalf("%s: wrong node count", name)
		}
		if nw.CommRadius() <= 0 {
			t.Fatalf("%s: bad comm radius", name)
		}
	}
	if nets["udg"].CommRadius() != phy.Range {
		t.Fatal("UDG comm radius must be R (exact neighbourhoods)")
	}
	if math.Abs(nets["sinr"].CommRadius()-rb) > 1e-9 {
		t.Fatal("SINR comm radius must be (1-ε)R")
	}
}

func TestNewSimWiresOptions(t *testing.T) {
	phy := udwn.DefaultPHY()
	nw := udwn.NewSINRNetwork(workload.UniformDisc(16, 30, 3), phy)
	s, err := nw.NewSim(func(id int) sim.Protocol {
		return core.NewLocalBcast(16, int64(id))
	}, udwn.SimOptions{Seed: 1, Primitives: sim.CD | sim.ACK})
	if err != nil {
		t.Fatal(err)
	}
	if s.N() != 16 {
		t.Fatalf("N = %d", s.N())
	}
	// Calibration knobs must have been applied: busy threshold is scaled.
	base := phy.Power() / math.Pow((1-phy.Eps)*phy.Range, phy.Alpha)
	if got := s.Thresholds().BusyRSS; math.Abs(got-phy.BusyScale*base) > 1e-9 {
		t.Fatalf("BusyRSS = %v, want %v", got, phy.BusyScale*base)
	}
}

func TestNewSimErrorPropagates(t *testing.T) {
	phy := udwn.DefaultPHY()
	nw := udwn.NewSINRNetwork(workload.UniformDisc(4, 10, 1), phy)
	if _, err := nw.NewSim(func(int) sim.Protocol { return nil }, udwn.SimOptions{Slots: 99}); err == nil {
		t.Fatal("invalid options must error")
	}
}

func TestNTDThreshold(t *testing.T) {
	phy := udwn.DefaultPHY()
	nw := udwn.NewSINRNetwork(workload.UniformDisc(4, 10, 1), phy)
	full := nw.NTDThreshold(0)
	half := nw.NTDThreshold(phy.Eps / 2)
	if half <= full {
		t.Fatal("ε/2 NTD threshold must demand a stronger signal")
	}
	// Threshold corresponds to distance εR/2: power at that distance.
	want := phy.Power() / math.Pow(phy.Eps*phy.Range/2, phy.Alpha)
	if math.Abs(full-want) > 1e-9 {
		t.Fatalf("NTD threshold = %v, want %v", full, want)
	}
}

func TestRayleighNetworkBinding(t *testing.T) {
	phy := udwn.DefaultPHY()
	pts := workload.UniformDisc(8, 15, 5)
	nw, ts := udwn.NewRayleighNetwork(pts, phy, 99)
	if ts.Tick() != 0 {
		t.Fatal("unbound tick source must report 0")
	}
	s, err := nw.NewSim(func(id int) sim.Protocol {
		return core.NewLocalBcastSpontaneous(0.25, int64(id))
	}, udwn.SimOptions{Seed: 1, Primitives: sim.CD | sim.ACK})
	if err != nil {
		t.Fatal(err)
	}
	ts.Bind(s)
	s.Run(10)
	if ts.Tick() != 10 {
		t.Fatalf("bound tick source reports %d, want 10", ts.Tick())
	}
	if nw.Model.Name() != "rayleigh" {
		t.Fatal("wrong model")
	}
}

// End-to-end: the README quickstart flow must work through the facade.
func TestFacadeEndToEnd(t *testing.T) {
	const n = 64
	phy := udwn.DefaultPHY()
	rb := (1 - phy.Eps) * phy.Range
	pts := workload.UniformDisc(n, workload.SideForDegree(n, 10, rb), 4)
	nw := udwn.NewSINRNetwork(pts, phy)
	s, err := nw.NewSim(func(id int) sim.Protocol {
		return core.NewLocalBcast(n, int64(id))
	}, udwn.SimOptions{Seed: 5, Primitives: sim.CD | sim.ACK})
	if err != nil {
		t.Fatal(err)
	}
	_, ok := s.RunUntil(func(s *sim.Sim) bool {
		for v := 0; v < n; v++ {
			if s.FirstMassDelivery(v) < 0 {
				return false
			}
		}
		return true
	}, 20000)
	if !ok {
		t.Fatal("facade end-to-end local broadcast failed")
	}
}
