package dynamics

import (
	"testing"

	"udwn/internal/geom"
	"udwn/internal/metric"
	"udwn/internal/model"
	"udwn/internal/sim"
)

func stableSim(t *testing.T, pts []geom.Point, dynamic bool) *sim.Sim {
	t.Helper()
	s, err := sim.New(sim.Config{
		Space: metric.NewEuclidean(pts),
		Model: model.NewSINR(8, 1, 1, 3, 0.1),
		P:     8, Zeta: 3, Noise: 1, Eps: 0.1,
		Seed:    4,
		Dynamic: dynamic,
	}, func(int) sim.Protocol { return silent{} })
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestStableTrackerStaticLine(t *testing.T) {
	// Static 4-node line, L = 5: arrival times are multiples of L along the
	// hop distance (first interval completes at tick L-1... the tracker
	// observes before each step, so edge runs hit L at tick L).
	pts := []geom.Point{{X: 0}, {X: 1}, {X: 2}, {X: 3}}
	s := stableSim(t, pts, false)
	const L = 5
	tr := NewStableTracker(0, 4, L, 1.5)
	for i := 0; i < 40; i++ {
		tr.Observe(s)
		s.Step()
	}
	if tr.Arrival(0) != 0 {
		t.Fatalf("source arrival = %d", tr.Arrival(0))
	}
	a1, a2, a3 := tr.Arrival(1), tr.Arrival(2), tr.Arrival(3)
	if a1 < 0 || a2 < 0 || a3 < 0 {
		t.Fatalf("static line must be fully reached: %d %d %d", a1, a2, a3)
	}
	// Consecutive interval ends at least L apart.
	if a2-a1 < L || a3-a2 < L {
		t.Fatalf("interval spacing violated: %d %d %d", a1, a2, a3)
	}
	// First hop completes after the first L observations.
	if a1 >= 2*L {
		t.Fatalf("first hop too slow: %d", a1)
	}
}

func TestStableTrackerDisconnected(t *testing.T) {
	pts := []geom.Point{{X: 0}, {X: 100}}
	s := stableSim(t, pts, false)
	tr := NewStableTracker(0, 2, 3, 1.5)
	for i := 0; i < 20; i++ {
		tr.Observe(s)
		s.Step()
	}
	if tr.Arrival(1) != -1 {
		t.Fatal("disconnected node must stay unreached")
	}
	if tr.Reached() != 1 {
		t.Fatalf("Reached = %d", tr.Reached())
	}
}

func TestStableTrackerChurnResetsRuns(t *testing.T) {
	// The relay node dies every other tick: no edge ever stays stable for
	// L = 4 consecutive ticks, so the far node is never reached.
	pts := []geom.Point{{X: 0}, {X: 1}, {X: 2}}
	s := stableSim(t, pts, false)
	tr := NewStableTracker(0, 3, 4, 1.5)
	for i := 0; i < 60; i++ {
		if i%2 == 0 {
			s.Kill(1)
		} else {
			s.Revive(1)
		}
		tr.Observe(s)
		s.Step()
	}
	if tr.Arrival(2) != -1 {
		t.Fatal("flapping relay must prevent a stable path")
	}
	// With the relay stable, the path completes.
	s.Revive(1)
	for i := 0; i < 20; i++ {
		tr.Observe(s)
		s.Step()
	}
	if tr.Arrival(2) < 0 {
		t.Fatal("stable relay must complete the path")
	}
}

func TestStableTrackerMobilityBridging(t *testing.T) {
	// A ferry node starts far from both endpoints, then parks between
	// them: only after it parks (L stable ticks) does the path complete —
	// the "stable path need not be connected at any fixed point in time"
	// property is exercised by the path forming strictly after tick 0.
	pts := []geom.Point{{X: 0}, {X: 50}, {X: 3}}
	s := stableSim(t, pts, true)
	const L = 4
	tr := NewStableTracker(0, 3, L, 1.6)
	// Phase 1: ferry (node 1) far away; nothing reachable.
	for i := 0; i < 10; i++ {
		tr.Observe(s)
		s.Step()
	}
	if tr.Arrival(2) != -1 {
		t.Fatal("path must not exist before the ferry arrives")
	}
	// Phase 2: ferry parks at x=1.5 (within 1.6 of both 0 and 3).
	if err := s.Move(1, geom.Point{X: 1.5}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4*L; i++ {
		tr.Observe(s)
		s.Step()
	}
	if tr.Arrival(1) < 0 || tr.Arrival(2) < 0 {
		t.Fatalf("parked ferry must complete the path: %d %d", tr.Arrival(1), tr.Arrival(2))
	}
	if tr.Arrival(2)-tr.Arrival(1) < L {
		t.Fatal("interval spacing violated across the ferry")
	}
}

func TestStableTrackerPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewStableTracker(0, 3, 0, 1)
}
