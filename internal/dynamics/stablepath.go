package dynamics

import "udwn/internal/sim"

// StableTracker measures the paper's dynamic distance D^c_st(s, v) online
// (Section 5): a stable s-v path is a node sequence v_1 = s, ..., v_k = v
// with time intervals I_i of length ≥ L (= c·log n), consecutive interval
// ends ≥ L apart, such that v_{i-1} and v_i are alive neighbours throughout
// I_i. The tracker maintains, per edge, the current run of consecutive
// stable ticks and relaxes an earliest-arrival label whenever an edge has
// been stable for L ticks ending now and its tail arrived at least L ticks
// ago. Arrival(v) is then (an upper bound within one hop-interval of) the
// stable distance from the source, directly comparable to the tick at which
// Bcast informs v (Theorem 5.1: O(D^c_st)).
type StableTracker struct {
	l       int
	src     int
	n       int
	radius  float64
	run     []int32 // n×n upper-triangular runs, flattened
	arrival []int32
}

// NewStableTracker tracks stable paths from src with interval length l
// (the theorem's c·log n) at neighbourhood radius radius. It panics on a
// non-positive interval length.
func NewStableTracker(src, n int, l int, radius float64) *StableTracker {
	if l < 1 {
		panic("dynamics: stable interval length must be >= 1")
	}
	t := &StableTracker{
		l:       l,
		src:     src,
		n:       n,
		radius:  radius,
		run:     make([]int32, n*n),
		arrival: make([]int32, n),
	}
	for i := range t.arrival {
		t.arrival[i] = -1
	}
	t.arrival[src] = 0
	return t
}

// Observe ingests the network state of the upcoming tick; call once per
// tick before sim.Step (matching DegreeTracker's convention).
func (t *StableTracker) Observe(s *sim.Sim) {
	tick := s.Tick()
	sp := s.Space()
	for u := 0; u < t.n; u++ {
		if !s.Alive(u) {
			// All of u's runs reset.
			for v := 0; v < t.n; v++ {
				t.run[u*t.n+v] = 0
				t.run[v*t.n+u] = 0
			}
			continue
		}
		for v := u + 1; v < t.n; v++ {
			idx := u*t.n + v
			stable := s.Alive(v) &&
				sp.Dist(u, v) <= t.radius && sp.Dist(v, u) <= t.radius
			if !stable {
				t.run[idx] = 0
				continue
			}
			t.run[idx]++
			if int(t.run[idx]) < t.l {
				continue
			}
			// The edge has been stable for (at least) L ticks ending now:
			// relax both directions.
			t.relax(u, v, tick)
			t.relax(v, u, tick)
		}
	}
}

func (t *StableTracker) relax(from, to, tick int) {
	af := t.arrival[from]
	if af < 0 || int(af) > tick-t.l {
		return
	}
	if t.arrival[to] < 0 || t.arrival[to] > int32(tick) {
		t.arrival[to] = int32(tick)
	}
}

// Arrival returns the earliest stable-path arrival tick at v, or -1 if no
// stable path has completed yet. Arrival(src) is 0.
func (t *StableTracker) Arrival(v int) int { return int(t.arrival[v]) }

// Reached returns how many nodes have a completed stable path.
func (t *StableTracker) Reached() int {
	c := 0
	for _, a := range t.arrival {
		if a >= 0 {
			c++
		}
	}
	return c
}
