// Package dynamics drives the adversarial network changes of the paper's
// model: node churn (arrivals and departures, unlimited in rate) and edge
// changes (signal-strength / distance changes, rate limited by the constant
// τ per neighbourhood). Drivers mutate a sim.Sim between steps; the
// experiment loop calls Apply before each Step.
package dynamics

import (
	"math"

	"udwn/internal/metric"
	"udwn/internal/rng"
	"udwn/internal/sim"
)

// Driver mutates the network before a tick.
type Driver interface {
	// Apply performs this tick's changes on s. tick is the upcoming tick
	// index.
	Apply(s *sim.Sim, tick int)
}

// Compose returns a driver applying each of the given drivers in order.
func Compose(drivers ...Driver) Driver { return composite(drivers) }

type composite []Driver

func (c composite) Apply(s *sim.Sim, tick int) {
	for _, d := range c {
		d.Apply(s, tick)
	}
}

// Run steps the simulation for ticks ticks, applying the driver before each
// step. A nil driver is allowed.
func Run(s *sim.Sim, d Driver, ticks int) {
	for i := 0; i < ticks; i++ {
		if d != nil {
			d.Apply(s, s.Tick())
		}
		s.Step()
	}
}

// RunUntil steps until pred holds after a tick or maxTicks elapse, applying
// the driver before each step. It returns ticks executed and success.
func RunUntil(s *sim.Sim, d Driver, pred func(*sim.Sim) bool, maxTicks int) (int, bool) {
	for i := 0; i < maxTicks; i++ {
		if d != nil {
			d.Apply(s, s.Tick())
		}
		s.Step()
		if pred(s) {
			return i + 1, true
		}
	}
	return maxTicks, false
}

// PoissonChurn kills each alive node with probability DeathProb and revives
// each dead node with probability BirthProb, independently per tick. Nodes
// in Protect are never killed (e.g. a broadcast source or measured victim).
type PoissonChurn struct {
	DeathProb float64
	BirthProb float64
	Protect   map[int]bool
	rng       *rng.Source
}

var _ Driver = (*PoissonChurn)(nil)

// NewPoissonChurn returns a churn driver with symmetric death/birth rate.
func NewPoissonChurn(rate float64, seed uint64) *PoissonChurn {
	return &PoissonChurn{DeathProb: rate, BirthProb: rate, rng: rng.New(seed)}
}

// Apply performs one tick of churn.
func (c *PoissonChurn) Apply(s *sim.Sim, tick int) {
	for v := 0; v < s.N(); v++ {
		if s.Alive(v) {
			if !c.Protect[v] && c.rng.Bernoulli(c.DeathProb) {
				s.Kill(v)
			}
		} else if c.rng.Bernoulli(c.BirthProb) {
			s.Revive(v)
		}
	}
}

// BurstChurn kills a fraction of alive nodes every Period ticks and revives
// them one period later, modelling correlated failures (e.g. a moving
// obstruction).
type BurstChurn struct {
	Period   int
	Fraction float64
	Protect  map[int]bool
	rng      *rng.Source
	downed   []int
}

var _ Driver = (*BurstChurn)(nil)

// NewBurstChurn returns a burst churn driver.
func NewBurstChurn(period int, fraction float64, seed uint64) *BurstChurn {
	if period < 1 {
		panic("dynamics: burst period must be >= 1")
	}
	return &BurstChurn{Period: period, Fraction: fraction, rng: rng.New(seed)}
}

// Apply kills a random batch on period boundaries and revives the previous
// batch.
func (c *BurstChurn) Apply(s *sim.Sim, tick int) {
	if tick%c.Period != 0 {
		return
	}
	for _, v := range c.downed {
		s.Revive(v)
	}
	c.downed = c.downed[:0]
	var alive []int
	for v := 0; v < s.N(); v++ {
		if s.Alive(v) && !c.Protect[v] {
			alive = append(alive, v)
		}
	}
	kill := int(c.Fraction * float64(len(alive)))
	c.rng.Shuffle(len(alive), func(i, j int) { alive[i], alive[j] = alive[j], alive[i] })
	for _, v := range alive[:kill] {
		s.Kill(v)
		c.downed = append(c.downed, v)
	}
}

// TargetedChurn repeatedly inserts fresh nodes in the vicinity of a victim
// node by cycling kills and revives among the victim's neighbourhood — the
// adversary's best lever, since the paper places no limit on churn rate.
type TargetedChurn struct {
	Victim  int
	Radius  float64
	Rate    float64 // per-tick probability of cycling each vicinity node
	rng     *rng.Source
	pending []int // killed last tick, to revive (fresh) next
}

var _ Driver = (*TargetedChurn)(nil)

// NewTargetedChurn returns a targeted churn driver around victim.
func NewTargetedChurn(victim int, radius, rate float64, seed uint64) *TargetedChurn {
	return &TargetedChurn{Victim: victim, Radius: radius, Rate: rate, rng: rng.New(seed)}
}

// Apply revives last tick's kills (as fresh arrivals) and kills a new batch
// near the victim.
func (c *TargetedChurn) Apply(s *sim.Sim, tick int) {
	for _, v := range c.pending {
		s.Revive(v)
	}
	c.pending = c.pending[:0]
	sp := s.Space()
	for v := 0; v < s.N(); v++ {
		if v == c.Victim || !s.Alive(v) {
			continue
		}
		if sp.Dist(v, c.Victim) < c.Radius && c.rng.Bernoulli(c.Rate) {
			s.Kill(v)
			c.pending = append(c.pending, v)
		}
	}
}

// RandomWalk moves every alive node each tick by a uniform step in a disc of
// radius StepSize, reflecting at the [0,Side]² boundary. It requires a sim
// built with Dynamic: true over a Euclidean space. The edge-change rate τ of
// the paper scales with StepSize/R: small steps keep τ within the theorem's
// allowance, large steps exceed it (useful for stress ablations).
type RandomWalk struct {
	StepSize float64
	Side     float64
	rng      *rng.Source
}

var _ Driver = (*RandomWalk)(nil)

// NewRandomWalk returns a mobility driver over the [0,side]² domain.
func NewRandomWalk(step, side float64, seed uint64) *RandomWalk {
	return &RandomWalk{StepSize: step, Side: side, rng: rng.New(seed)}
}

// Apply moves every alive node one step.
func (w *RandomWalk) Apply(s *sim.Sim, tick int) {
	e, ok := s.Space().(*metric.Euclidean)
	if !ok {
		return
	}
	for v := 0; v < s.N(); v++ {
		if !s.Alive(v) {
			continue
		}
		// Uniform direction, uniform radius in [0, StepSize].
		ang := w.rng.Range(0, 2*math.Pi)
		r := w.StepSize * math.Sqrt(w.rng.Float64())
		p := e.Point(v)
		p.X = reflect(p.X+r*math.Cos(ang), w.Side)
		p.Y = reflect(p.Y+r*math.Sin(ang), w.Side)
		if err := s.Move(v, p); err != nil {
			return // static sim: mobility silently disabled
		}
	}
}

func reflect(x, side float64) float64 {
	if x < 0 {
		return -x
	}
	if x > side {
		return 2*side - x
	}
	return x
}

// DegreeTracker accumulates the dynamic degree Δ^ρ_v(t,t') of Section 4:
// the size of the union over the observation window of the victim's in-ball
// D^ρ_v(r), counting every distinct node (and every fresh arrival generation)
// that ever entered the vicinity.
type DegreeTracker struct {
	victim int
	radius float64
	seen   map[int]bool
	count  int
	gen    map[int]int // how many times we've seen node v depart
	inside map[int]bool
}

// NewDegreeTracker tracks the vicinity D(victim, radius).
func NewDegreeTracker(victim int, radius float64) *DegreeTracker {
	return &DegreeTracker{
		victim: victim,
		radius: radius,
		seen:   make(map[int]bool),
		gen:    make(map[int]int),
		inside: make(map[int]bool),
	}
}

// Observe records the current tick's vicinity membership.
func (d *DegreeTracker) Observe(s *sim.Sim) {
	sp := s.Space()
	for v := 0; v < s.N(); v++ {
		in := v != d.victim && s.Alive(v) && sp.Dist(v, d.victim) < d.radius
		if in && !d.inside[v] {
			// (Re-)entry: arrivals after a departure count again, matching
			// the union-of-node-instances definition.
			key := v
			if !d.seen[key] || d.gen[v] > 0 {
				d.count++
			}
			d.seen[key] = true
		}
		if !in && d.inside[v] {
			d.gen[v]++
		}
		d.inside[v] = in
	}
}

// Degree returns the accumulated dynamic degree.
func (d *DegreeTracker) Degree() int { return d.count }
