package dynamics

import (
	"testing"

	"udwn/internal/geom"
	"udwn/internal/metric"
	"udwn/internal/model"
	"udwn/internal/sim"
	"udwn/internal/workload"
)

type silent struct{}

func (silent) Act(*sim.Node, int) sim.Action            { return sim.Action{} }
func (silent) Observe(*sim.Node, int, *sim.Observation) {}

func newSim(t *testing.T, n int, dynamic bool) *sim.Sim {
	t.Helper()
	pts := workload.UniformDisc(n, 30, 1)
	s, err := sim.New(sim.Config{
		Space: metric.NewEuclidean(pts),
		Model: model.NewSINR(8, 1, 1, 3, 0.1),
		P:     8, Zeta: 3, Noise: 1, Eps: 0.1,
		Seed:    2,
		Dynamic: dynamic,
	}, func(int) sim.Protocol { return silent{} })
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestPoissonChurnKillsAndRevives(t *testing.T) {
	s := newSim(t, 200, false)
	c := NewPoissonChurn(0.5, 7)
	c.Apply(s, 0)
	killed := 200 - s.AliveCount()
	if killed < 50 || killed > 150 {
		t.Fatalf("killed %d of 200 at rate 0.5", killed)
	}
	// Dead nodes revive at the same rate.
	before := s.AliveCount()
	c.Apply(s, 1)
	_ = before
	if s.AliveCount() == 0 || s.AliveCount() == 200 {
		t.Fatalf("population degenerate: %d", s.AliveCount())
	}
}

func TestPoissonChurnProtect(t *testing.T) {
	s := newSim(t, 100, false)
	c := NewPoissonChurn(1, 7) // kill everything unprotected
	c.Protect = map[int]bool{3: true, 4: true}
	c.Apply(s, 0)
	if !s.Alive(3) || !s.Alive(4) {
		t.Fatal("protected nodes must survive")
	}
	if s.AliveCount() != 2 {
		t.Fatalf("AliveCount = %d, want 2", s.AliveCount())
	}
}

func TestBurstChurnCycle(t *testing.T) {
	s := newSim(t, 100, false)
	c := NewBurstChurn(10, 0.3, 5)
	c.Apply(s, 0)
	if got := s.AliveCount(); got != 70 {
		t.Fatalf("after burst: %d alive, want 70", got)
	}
	// Not a boundary: nothing happens.
	c.Apply(s, 5)
	if got := s.AliveCount(); got != 70 {
		t.Fatalf("mid-period churn: %d", got)
	}
	// Next boundary: the previous batch revives first, then a new batch of
	// 0.3 · 100 dies, leaving 70 alive again (with different membership).
	downedBefore := append([]int(nil), c.downed...)
	c.Apply(s, 10)
	if got := s.AliveCount(); got != 70 {
		t.Fatalf("after second burst: %d alive, want 70", got)
	}
	for _, v := range downedBefore {
		if !s.Alive(v) && !contains(c.downed, v) {
			t.Fatalf("node %d from the first batch neither revived nor re-killed", v)
		}
	}
}

func contains(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}

func TestBurstChurnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewBurstChurn(0, 0.5, 1)
}

func TestTargetedChurnHitsVicinity(t *testing.T) {
	s := newSim(t, 200, false)
	victim := 0
	c := NewTargetedChurn(victim, 10, 1, 3) // cycle every vicinity node
	c.Apply(s, 0)
	if !s.Alive(victim) {
		t.Fatal("victim itself must never be churned")
	}
	sp := s.Space()
	for v := 1; v < 200; v++ {
		near := sp.Dist(v, victim) < 10
		if near && s.Alive(v) {
			t.Fatalf("vicinity node %d survived rate-1 targeted churn", v)
		}
		if !near && !s.Alive(v) {
			t.Fatalf("far node %d was churned", v)
		}
	}
	// With the churn switched off, the next application only revives the
	// pending batch as fresh arrivals.
	c.Rate = 0
	c.Apply(s, 1)
	if s.AliveCount() != 200 {
		t.Fatalf("revive failed: %d alive", s.AliveCount())
	}
}

func TestRandomWalkMovesWithinBounds(t *testing.T) {
	s := newSim(t, 50, true)
	w := NewRandomWalk(2, 30, 9)
	e := s.Space().(*metric.Euclidean)
	before := make([]geom.Point, 50)
	for i := range before {
		before[i] = e.Point(i)
	}
	for tick := 0; tick < 20; tick++ {
		w.Apply(s, tick)
	}
	moved := 0
	for i := range before {
		p := e.Point(i)
		if p != before[i] {
			moved++
		}
		if p.X < 0 || p.X > 30 || p.Y < 0 || p.Y > 30 {
			t.Fatalf("node %d left the domain: %v", i, p)
		}
		if p.Dist(before[i]) > 20*2+1e-9 {
			t.Fatalf("node %d moved too far: %v", i, p.Dist(before[i]))
		}
	}
	if moved < 45 {
		t.Fatalf("only %d/50 nodes moved", moved)
	}
}

func TestRandomWalkStaticSimIsNoop(t *testing.T) {
	s := newSim(t, 20, false) // static sim: Move errors, walk must not panic
	w := NewRandomWalk(1, 30, 9)
	w.Apply(s, 0)
	e := s.Space().(*metric.Euclidean)
	pts := workload.UniformDisc(20, 30, 1)
	for i := range pts {
		if e.Point(i) != pts[i] {
			t.Fatal("static sim must not move")
		}
	}
}

func TestComposeOrder(t *testing.T) {
	s := newSim(t, 50, false)
	var order []string
	a := driverFunc(func(*sim.Sim, int) { order = append(order, "a") })
	b := driverFunc(func(*sim.Sim, int) { order = append(order, "b") })
	Compose(a, b).Apply(s, 0)
	if len(order) != 2 || order[0] != "a" || order[1] != "b" {
		t.Fatalf("order = %v", order)
	}
}

type driverFunc func(*sim.Sim, int)

func (f driverFunc) Apply(s *sim.Sim, tick int) { f(s, tick) }

func TestRunAndRunUntil(t *testing.T) {
	s := newSim(t, 30, false)
	calls := 0
	d := driverFunc(func(*sim.Sim, int) { calls++ })
	Run(s, d, 10)
	if calls != 10 || s.Tick() != 10 {
		t.Fatalf("Run: calls=%d tick=%d", calls, s.Tick())
	}
	ticks, ok := RunUntil(s, d, func(s *sim.Sim) bool { return s.Tick() >= 15 }, 100)
	if !ok || ticks != 5 {
		t.Fatalf("RunUntil = (%d, %v)", ticks, ok)
	}
	// nil driver works.
	Run(s, nil, 3)
	if s.Tick() != 18 {
		t.Fatal("nil driver Run failed")
	}
}

func TestDegreeTrackerStatic(t *testing.T) {
	s := newSim(t, 100, false)
	tr := NewDegreeTracker(0, 10)
	tr.Observe(s)
	base := tr.Degree()
	// Static network: repeated observation adds nothing.
	tr.Observe(s)
	tr.Observe(s)
	if tr.Degree() != base {
		t.Fatalf("static degree grew: %d → %d", base, tr.Degree())
	}
	// Ground truth.
	want := 0
	sp := s.Space()
	for v := 1; v < 100; v++ {
		if sp.Dist(v, 0) < 10 {
			want++
		}
	}
	if base != want {
		t.Fatalf("degree = %d, want %d", base, want)
	}
}

func TestDegreeTrackerCountsArrivals(t *testing.T) {
	s := newSim(t, 100, false)
	tr := NewDegreeTracker(0, 10)
	tr.Observe(s)
	base := tr.Degree()
	// Kill and revive a vicinity node: the fresh arrival counts again.
	victimNbr := -1
	sp := s.Space()
	for v := 1; v < 100; v++ {
		if sp.Dist(v, 0) < 10 {
			victimNbr = v
			break
		}
	}
	if victimNbr == -1 {
		t.Skip("no vicinity neighbour in this draw")
	}
	s.Kill(victimNbr)
	tr.Observe(s)
	s.Revive(victimNbr)
	tr.Observe(s)
	if tr.Degree() != base+1 {
		t.Fatalf("degree = %d, want %d (arrival must count)", tr.Degree(), base+1)
	}
}
