// Package metric implements the finite quasi-metric machinery of the paper:
// quasi-metric spaces derived from path loss, metricity, balls and in-balls,
// packings and covers, and (r_min, λ)-bounded independence.
//
// A quasi-metric satisfies all metric axioms except symmetry. In the paper,
// the quasi-distance between nodes is d(u,v) = f(u,v)^{1/ζ}, where f is the
// path loss and ζ the metricity of the space. Distributed operability of the
// algorithms requires the space to have bounded independence: an in-ball of
// radius q·r_min contains an r_min-packing of at most C·q^λ nodes.
package metric

import (
	"math"

	"udwn/internal/geom"
)

// Space is a finite quasi-metric space over nodes 0..Len()-1.
// Dist need not be symmetric, but must satisfy d(u,u) = 0, d(u,v) > 0 for
// u != v, and the relaxed (metricity-ζ) triangle inequality.
type Space interface {
	Len() int
	Dist(u, v int) float64
}

// Euclidean is the plane with the usual (symmetric) distance — the canonical
// (r, λ=2)-bounded-independence space.
type Euclidean struct {
	pts []geom.Point
}

var _ Space = (*Euclidean)(nil)

// NewEuclidean returns the Euclidean space over the given points.
// The slice is copied.
func NewEuclidean(pts []geom.Point) *Euclidean {
	cp := make([]geom.Point, len(pts))
	copy(cp, pts)
	return &Euclidean{pts: cp}
}

// Len returns the number of points.
func (e *Euclidean) Len() int { return len(e.pts) }

// Dist returns the Euclidean distance between points u and v.
func (e *Euclidean) Dist(u, v int) float64 { return e.pts[u].Dist(e.pts[v]) }

// Point returns the location of node u.
func (e *Euclidean) Point(u int) geom.Point { return e.pts[u] }

// SetPoint relocates node u (used by mobility dynamics).
func (e *Euclidean) SetPoint(u int, p geom.Point) { e.pts[u] = p }

// Euclidean3 is three-dimensional Euclidean space — an (r, λ=3)-bounded-
// independence metric, so the unified model requires a path-loss exponent
// ζ > 3 over it. It models volumetric deployments (buildings, UAV swarms).
type Euclidean3 struct {
	pts [][3]float64
}

var _ Space = (*Euclidean3)(nil)

// NewEuclidean3 returns the 3-D space over the given coordinates. The slice
// is copied.
func NewEuclidean3(pts [][3]float64) *Euclidean3 {
	cp := make([][3]float64, len(pts))
	copy(cp, pts)
	return &Euclidean3{pts: cp}
}

// Len returns the number of points.
func (e *Euclidean3) Len() int { return len(e.pts) }

// Dist returns the Euclidean distance between points u and v.
func (e *Euclidean3) Dist(u, v int) float64 {
	dx := e.pts[u][0] - e.pts[v][0]
	dy := e.pts[u][1] - e.pts[v][1]
	dz := e.pts[u][2] - e.pts[v][2]
	return math.Sqrt(dx*dx + dy*dy + dz*dz)
}

// Point returns the coordinates of node u.
func (e *Euclidean3) Point(u int) [3]float64 { return e.pts[u] }

// Matrix is an explicit, possibly asymmetric, distance matrix. It is the
// general form of the paper's model ("one can view relative signal decrease
// as implicitly defining a quasi-distance metric") and is used for the
// Theorem 5.3 lower-bound instance.
type Matrix struct {
	n int
	d []float64
}

var _ Space = (*Matrix)(nil)

// NewMatrix returns an n-node space with all off-diagonal distances
// initialised to initDist.
func NewMatrix(n int, initDist float64) *Matrix {
	m := &Matrix{n: n, d: make([]float64, n*n)}
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			if u != v {
				m.d[u*n+v] = initDist
			}
		}
	}
	return m
}

// Len returns the number of nodes.
func (m *Matrix) Len() int { return m.n }

// Dist returns the quasi-distance from u to v.
func (m *Matrix) Dist(u, v int) float64 { return m.d[u*m.n+v] }

// Set sets the directed distance from u to v.
func (m *Matrix) Set(u, v int, dist float64) {
	if u != v {
		m.d[u*m.n+v] = dist
	}
}

// SetSym sets both directed distances between u and v.
func (m *Matrix) SetSym(u, v int, dist float64) {
	m.Set(u, v, dist)
	m.Set(v, u, dist)
}

// Graph is the shortest-path (hop count) metric of an undirected graph, the
// natural (1, λ)-bounded-independence metric of the BIG model. Distances are
// precomputed with BFS from every node.
type Graph struct {
	n    int
	dist []int32 // n*n hop distances; -1 encodes unreachable
}

var _ Space = (*Graph)(nil)

// Unreachable is the distance reported between disconnected nodes; it is
// large enough to be beyond any transmission or sensing radius.
const Unreachable = math.MaxFloat64 / 4

// NewGraph builds the hop metric of the undirected graph given by the
// adjacency lists adj (adj[u] lists the neighbours of u).
func NewGraph(adj [][]int) *Graph {
	n := len(adj)
	g := &Graph{n: n, dist: make([]int32, n*n)}
	queue := make([]int32, 0, n)
	for s := 0; s < n; s++ {
		row := g.dist[s*n : (s+1)*n]
		for i := range row {
			row[i] = -1
		}
		row[s] = 0
		queue = append(queue[:0], int32(s))
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for _, v := range adj[u] {
				if row[v] == -1 {
					row[v] = row[u] + 1
					queue = append(queue, int32(v))
				}
			}
		}
	}
	return g
}

// Len returns the number of nodes.
func (g *Graph) Len() int { return g.n }

// Dist returns the hop distance between u and v, or Unreachable if
// disconnected.
func (g *Graph) Dist(u, v int) float64 {
	d := g.dist[u*g.n+v]
	if d < 0 {
		return Unreachable
	}
	return float64(d)
}

// Hops returns the integer hop distance, or -1 if disconnected.
func (g *Graph) Hops(u, v int) int { return int(g.dist[u*g.n+v]) }

// SymDist returns max{d(u,v), d(v,u)}, the separation used by the paper's
// ball definition B(u,r).
func SymDist(s Space, u, v int) float64 {
	return math.Max(s.Dist(u, v), s.Dist(v, u))
}

// Ball returns B(u,r) = {v : max{d(v,u), d(u,v)} < r}, including u itself.
func Ball(s Space, u int, r float64) []int {
	var out []int
	for v := 0; v < s.Len(); v++ {
		if v == u || SymDist(s, u, v) < r {
			out = append(out, v)
		}
	}
	return out
}

// InBall returns D(u,r) = {v : d(v,u) < r}, including u itself. Note the
// direction: membership is governed by the distance *towards* u, matching
// the paper's definition of the vicinity D^ρ_u.
func InBall(s Space, u int, r float64) []int {
	var out []int
	for v := 0; v < s.Len(); v++ {
		if v == u || s.Dist(v, u) < r {
			out = append(out, v)
		}
	}
	return out
}
