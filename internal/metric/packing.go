package metric

import "math"

// GreedyPacking returns a maximal r-packing of the candidate set: a subset S
// such that balls of radius r centred at members of S are pairwise disjoint,
// grown greedily in the given candidate order. Two balls of radius r are
// disjoint when the symmetric separation of their centres is at least 2r,
// which is the sufficient condition we use (exact ball-disjointness in a
// quasi-metric is order dependent; the greedy 2r rule is the standard
// surrogate and matches the Euclidean case exactly).
func GreedyPacking(s Space, candidates []int, r float64) []int {
	var packed []int
	for _, c := range candidates {
		ok := true
		for _, p := range packed {
			if SymDist(s, c, p) < 2*r {
				ok = false
				break
			}
		}
		if ok {
			packed = append(packed, c)
		}
	}
	return packed
}

// GreedyCover returns an r-cover of the candidate set: a subset S such that
// every candidate is within symmetric distance r of some member of S. A
// maximal (r/2)-packing is always an r-cover; this computes one greedily.
func GreedyCover(s Space, candidates []int, r float64) []int {
	return GreedyPacking(s, candidates, r/2)
}

// PackingNumber returns the size of the greedy maximal r-packing of the
// in-ball D(u, q·r). It is the quantity bounded by C·q^λ in the definition
// of (r, λ)-bounded independence.
func PackingNumber(s Space, u int, r, q float64) int {
	return len(GreedyPacking(s, InBall(s, u, q*r), r))
}

// IndependenceReport summarises an empirical bounded-independence check.
type IndependenceReport struct {
	RMin   float64
	Lambda float64
	// MaxC is the largest observed ratio packing/q^λ across all sampled
	// centres and radii; the space is (RMin, Lambda)-bounded independent
	// with constant MaxC over the sampled range.
	MaxC float64
	// Samples is the number of (centre, q) pairs examined.
	Samples int
}

// CheckIndependence estimates the bounded-independence constant of the space
// empirically: for every centre in centres and every q in qs, it computes
// the r_min-packing number of D(u, q·r_min) and reports the maximum of
// packing/q^λ. A finite, modest MaxC across growing q is evidence of
// (r_min, λ)-bounded independence.
func CheckIndependence(s Space, centres []int, rMin, lambda float64, qs []float64) IndependenceReport {
	rep := IndependenceReport{RMin: rMin, Lambda: lambda}
	for _, u := range centres {
		for _, q := range qs {
			if q < 1 {
				continue
			}
			p := PackingNumber(s, u, rMin, q)
			c := float64(p) / math.Pow(q, lambda)
			if c > rep.MaxC {
				rep.MaxC = c
			}
			rep.Samples++
		}
	}
	return rep
}

// Diameter returns the largest symmetric distance in the space, ignoring
// Unreachable pairs. It is O(n²).
func Diameter(s Space) float64 {
	var diam float64
	n := s.Len()
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			d := SymDist(s, u, v)
			if d >= Unreachable {
				continue
			}
			if d > diam {
				diam = d
			}
		}
	}
	return diam
}
