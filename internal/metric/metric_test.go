package metric

import (
	"math"
	"testing"
	"testing/quick"

	"udwn/internal/geom"
	"udwn/internal/rng"
)

func randomEuclidean(n int, side float64, seed uint64) *Euclidean {
	r := rng.New(seed)
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Point{X: r.Range(0, side), Y: r.Range(0, side)}
	}
	return NewEuclidean(pts)
}

func TestEuclideanBasics(t *testing.T) {
	e := NewEuclidean([]geom.Point{{X: 0, Y: 0}, {X: 3, Y: 4}, {X: 0, Y: 1}})
	if e.Len() != 3 {
		t.Fatalf("Len = %d", e.Len())
	}
	if d := e.Dist(0, 1); math.Abs(d-5) > 1e-12 {
		t.Fatalf("Dist(0,1) = %v", d)
	}
	if d := e.Dist(1, 0); math.Abs(d-5) > 1e-12 {
		t.Fatal("Euclidean must be symmetric")
	}
	if e.Dist(2, 2) != 0 {
		t.Fatal("self distance must be 0")
	}
	e.SetPoint(2, geom.Point{X: 0, Y: 2})
	if d := e.Dist(0, 2); math.Abs(d-2) > 1e-12 {
		t.Fatalf("after SetPoint, Dist = %v", d)
	}
}

func TestEuclideanCopiesInput(t *testing.T) {
	pts := []geom.Point{{X: 0, Y: 0}, {X: 1, Y: 0}}
	e := NewEuclidean(pts)
	pts[1] = geom.Point{X: 100, Y: 100}
	if d := e.Dist(0, 1); math.Abs(d-1) > 1e-12 {
		t.Fatal("NewEuclidean must copy its input")
	}
}

func TestMatrixAsymmetric(t *testing.T) {
	m := NewMatrix(3, 10)
	m.Set(0, 1, 2)
	m.Set(1, 0, 5)
	if m.Dist(0, 1) != 2 || m.Dist(1, 0) != 5 {
		t.Fatal("directed distances not stored")
	}
	if m.Dist(0, 0) != 0 {
		t.Fatal("self distance must be 0")
	}
	m.Set(2, 2, 99) // must be ignored
	if m.Dist(2, 2) != 0 {
		t.Fatal("Set on diagonal must be ignored")
	}
	m.SetSym(1, 2, 7)
	if m.Dist(1, 2) != 7 || m.Dist(2, 1) != 7 {
		t.Fatal("SetSym failed")
	}
	if SymDist(m, 0, 1) != 5 {
		t.Fatalf("SymDist = %v, want 5", SymDist(m, 0, 1))
	}
}

func TestGraphHopMetric(t *testing.T) {
	// Path graph 0-1-2-3 plus isolated node 4.
	adj := [][]int{{1}, {0, 2}, {1, 3}, {2}, {}}
	g := NewGraph(adj)
	if g.Len() != 5 {
		t.Fatalf("Len = %d", g.Len())
	}
	if g.Dist(0, 3) != 3 {
		t.Fatalf("Dist(0,3) = %v", g.Dist(0, 3))
	}
	if g.Dist(3, 0) != 3 {
		t.Fatal("hop metric must be symmetric")
	}
	if g.Dist(0, 0) != 0 {
		t.Fatal("self distance must be 0")
	}
	if g.Dist(0, 4) != Unreachable {
		t.Fatal("disconnected pair must be Unreachable")
	}
	if g.Hops(0, 4) != -1 {
		t.Fatal("Hops must report -1 for disconnected")
	}
	if g.Hops(1, 3) != 2 {
		t.Fatalf("Hops(1,3) = %d", g.Hops(1, 3))
	}
}

func TestBallAndInBall(t *testing.T) {
	m := NewMatrix(4, 100)
	// d(1,0)=1 (towards 0), d(0,1)=50: 1 is in D(0,2) but not B(0,2).
	m.Set(1, 0, 1)
	m.Set(0, 1, 50)
	m.SetSym(0, 2, 1.5)
	in := InBall(m, 0, 2)
	if !containsInt(in, 0) || !containsInt(in, 1) || !containsInt(in, 2) || containsInt(in, 3) {
		t.Fatalf("InBall = %v", in)
	}
	b := Ball(m, 0, 2)
	if containsInt(b, 1) {
		t.Fatal("Ball must use symmetric separation")
	}
	if !containsInt(b, 2) || !containsInt(b, 0) {
		t.Fatalf("Ball = %v", b)
	}
}

func containsInt(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}

func TestGeometricLossMetricity(t *testing.T) {
	e := randomEuclidean(30, 10, 1)
	// Scale so all distances >= 1, keeping monotonicity of the check valid.
	f := &GeometricLoss{Base: &scaledSpace{e, 10}, Alpha: 3}
	if !SatisfiesMetricity(f, 3) {
		t.Fatal("geometric loss with α=3 over a metric must have metricity ≤ 3")
	}
	z := Metricity(f, 1, 4, 0.01)
	if z > 3.01 {
		t.Fatalf("Metricity = %v, want ≤ 3", z)
	}
}

// scaledSpace scales all distances by a factor (test helper).
type scaledSpace struct {
	base  Space
	scale float64
}

func (s *scaledSpace) Len() int              { return s.base.Len() }
func (s *scaledSpace) Dist(u, v int) float64 { return s.base.Dist(u, v) * s.scale }

func TestMetricityViolation(t *testing.T) {
	// A blatantly non-metric loss: shortcut through w is much longer than
	// the direct hop, yet the direct hop dwarfs any relaxed inequality.
	m := NewMatrix(3, 1)
	m.SetSym(0, 1, 1000)
	m.SetSym(0, 2, 1)
	m.SetSym(2, 1, 1)
	f := &GeometricLoss{Base: m, Alpha: 1}
	if SatisfiesMetricity(f, 1.5) {
		t.Fatal("expected metricity violation at ζ=1.5")
	}
}

func TestLossSpaceRoundTrip(t *testing.T) {
	e := randomEuclidean(10, 5, 2)
	f := &GeometricLoss{Base: e, Alpha: 2.5}
	ls := &LossSpace{F: f, Zeta: 2.5}
	for u := 0; u < e.Len(); u++ {
		for v := 0; v < e.Len(); v++ {
			if u == v {
				if ls.Dist(u, v) != 0 {
					t.Fatal("LossSpace self distance must be 0")
				}
				continue
			}
			if math.Abs(ls.Dist(u, v)-e.Dist(u, v)) > 1e-9 {
				t.Fatalf("f^{1/ζ} should recover the base distance: %v vs %v",
					ls.Dist(u, v), e.Dist(u, v))
			}
		}
	}
}

func TestGreedyPackingSeparation(t *testing.T) {
	e := randomEuclidean(200, 20, 3)
	cands := make([]int, e.Len())
	for i := range cands {
		cands[i] = i
	}
	r := 1.5
	packed := GreedyPacking(e, cands, r)
	for i, u := range packed {
		for _, v := range packed[i+1:] {
			if SymDist(e, u, v) < 2*r {
				t.Fatalf("packing violates separation: d(%d,%d)=%v", u, v, SymDist(e, u, v))
			}
		}
	}
	// Maximality: every candidate is within 2r of some packed node.
	for _, c := range cands {
		ok := false
		for _, p := range packed {
			if SymDist(e, c, p) < 2*r {
				ok = true
				break
			}
		}
		if !ok {
			t.Fatalf("packing not maximal: node %d uncovered", c)
		}
	}
}

func TestGreedyCoverCovers(t *testing.T) {
	e := randomEuclidean(150, 15, 4)
	cands := make([]int, e.Len())
	for i := range cands {
		cands[i] = i
	}
	r := 2.0
	cover := GreedyCover(e, cands, r)
	for _, c := range cands {
		ok := false
		for _, s := range cover {
			if SymDist(e, c, s) < r {
				ok = true
				break
			}
		}
		if !ok {
			t.Fatalf("cover misses node %d", c)
		}
	}
}

func TestEuclideanBoundedIndependence(t *testing.T) {
	// The plane is (r, 2)-bounded independent: packing numbers of in-balls of
	// radius q·r grow like q² with a small constant.
	e := randomEuclidean(800, 40, 5)
	centres := []int{0, 100, 200, 300}
	rep := CheckIndependence(e, centres, 1.0, 2, []float64{1, 2, 4, 8})
	if rep.Samples != 16 {
		t.Fatalf("Samples = %d", rep.Samples)
	}
	// A q·r ball fits at most about (q+1)² disjoint r-balls; C ≈ 2.5 is a
	// generous envelope for greedy packings in the plane.
	if rep.MaxC > 4 {
		t.Fatalf("independence constant too large for the plane: %v", rep.MaxC)
	}
	if rep.MaxC <= 0 {
		t.Fatal("expected non-trivial packings")
	}
}

func TestPackingNumberMonotone(t *testing.T) {
	e := randomEuclidean(500, 30, 6)
	p2 := PackingNumber(e, 0, 1, 2)
	p8 := PackingNumber(e, 0, 1, 8)
	if p8 < p2 {
		t.Fatalf("packing number must grow with q: q=2→%d, q=8→%d", p2, p8)
	}
}

func TestDiameter(t *testing.T) {
	e := NewEuclidean([]geom.Point{{X: 0, Y: 0}, {X: 3, Y: 0}, {X: 0, Y: 4}})
	if d := Diameter(e); math.Abs(d-5) > 1e-12 {
		t.Fatalf("Diameter = %v", d)
	}
	// Disconnected graph pairs are ignored.
	g := NewGraph([][]int{{1}, {0}, {}})
	if d := Diameter(g); d != 1 {
		t.Fatalf("graph diameter = %v, want 1", d)
	}
}

// Property: InBall is a superset of Ball for any radius.
func TestBallSubsetProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		e := randomEuclidean(30+r.Intn(30), 10, seed)
		u := r.Intn(e.Len())
		radius := r.Range(0.1, 8)
		ball := Ball(e, u, radius)
		in := InBall(e, u, radius)
		for _, v := range ball {
			if !containsInt(in, v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: metricity of geometric loss over Euclidean points is ≤ α.
func TestMetricityProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		e := randomEuclidean(12, 10, seed^0x55)
		// Shift distances ≥ 1 via scaling to stay in the monotone regime.
		alpha := r.Range(2, 4)
		fl := &GeometricLoss{Base: &scaledSpace{e, 5}, Alpha: alpha}
		return SatisfiesMetricity(fl, alpha+1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkGraphBFS(b *testing.B) {
	// 32x32 grid graph.
	const side = 32
	adj := make([][]int, side*side)
	for y := 0; y < side; y++ {
		for x := 0; x < side; x++ {
			u := y*side + x
			if x+1 < side {
				adj[u] = append(adj[u], u+1)
				adj[u+1] = append(adj[u+1], u)
			}
			if y+1 < side {
				adj[u] = append(adj[u], u+side)
				adj[u+side] = append(adj[u+side], u)
			}
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = NewGraph(adj)
	}
}
