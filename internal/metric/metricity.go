package metric

import "math"

// PathLoss is a finite path-loss function f(u,v) > 0 for u != v.
type PathLoss interface {
	Len() int
	Loss(u, v int) float64
}

// SatisfiesMetricity reports whether the path loss f, viewed through the
// quasi-distance d = f^{1/ζ}, satisfies the relaxed triangle inequality
//
//	f(u,v)^{1/ζ} ≤ ζ·f(u,w)^{1/ζ} + f(w,v)^{1/ζ}
//
// for every triple of distinct nodes (the paper's definition of metricity,
// with ζ multiplying the first leg). The check is O(n³) and intended for
// validation of generated instances, not hot paths.
func SatisfiesMetricity(f PathLoss, zeta float64) bool {
	n := f.Len()
	if zeta <= 0 {
		return false
	}
	inv := 1 / zeta
	// Precompute d(u,v) = f(u,v)^{1/ζ}.
	d := make([]float64, n*n)
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			if u != v {
				d[u*n+v] = math.Pow(f.Loss(u, v), inv)
			}
		}
	}
	const tol = 1e-9
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			if v == u {
				continue
			}
			duv := d[u*n+v]
			for w := 0; w < n; w++ {
				if w == u || w == v {
					continue
				}
				if duv > zeta*d[u*n+w]+d[w*n+v]+tol {
					return false
				}
			}
		}
	}
	return true
}

// Metricity returns the smallest ζ in [lo, hi] (within tol) for which the
// path loss satisfies the relaxed triangle inequality, found by binary
// search. Monotonicity in ζ holds for path losses with values ≥ 1 (larger ζ
// both shrinks exponent gaps and grows the ζ factor); generated workloads
// normalise losses accordingly. It returns hi if even hi fails.
func Metricity(f PathLoss, lo, hi, tol float64) float64 {
	if !SatisfiesMetricity(f, hi) {
		return hi
	}
	for hi-lo > tol {
		mid := (lo + hi) / 2
		if SatisfiesMetricity(f, mid) {
			hi = mid
		} else {
			lo = mid
		}
	}
	return hi
}

// GeometricLoss is the standard path loss f(u,v) = dist(u,v)^α over an
// underlying symmetric metric space — the SINR default. Its metricity is α
// whenever the base space is a metric.
type GeometricLoss struct {
	Base  Space
	Alpha float64
}

var _ PathLoss = (*GeometricLoss)(nil)

// Len returns the number of nodes.
func (g *GeometricLoss) Len() int { return g.Base.Len() }

// Loss returns dist(u,v)^α.
func (g *GeometricLoss) Loss(u, v int) float64 {
	return math.Pow(g.Base.Dist(u, v), g.Alpha)
}

// LossSpace turns a path loss into the quasi-metric space d = f^{1/ζ}.
type LossSpace struct {
	F    PathLoss
	Zeta float64
}

var _ Space = (*LossSpace)(nil)

// Len returns the number of nodes.
func (l *LossSpace) Len() int { return l.F.Len() }

// Dist returns f(u,v)^{1/ζ}, or 0 when u == v.
func (l *LossSpace) Dist(u, v int) float64 {
	if u == v {
		return 0
	}
	return math.Pow(l.F.Loss(u, v), 1/l.Zeta)
}
