package metric

import (
	"math"
	"testing"

	"udwn/internal/rng"
)

func TestEuclidean3Basics(t *testing.T) {
	e := NewEuclidean3([][3]float64{{0, 0, 0}, {1, 2, 2}, {0, 0, 5}})
	if e.Len() != 3 {
		t.Fatalf("Len = %d", e.Len())
	}
	if d := e.Dist(0, 1); math.Abs(d-3) > 1e-12 {
		t.Fatalf("Dist(0,1) = %v, want 3", d)
	}
	if e.Dist(1, 0) != e.Dist(0, 1) {
		t.Fatal("3-D Euclidean must be symmetric")
	}
	if e.Dist(2, 2) != 0 {
		t.Fatal("self distance must be 0")
	}
	if e.Point(2) != [3]float64{0, 0, 5} {
		t.Fatal("Point accessor wrong")
	}
}

func TestEuclidean3CopiesInput(t *testing.T) {
	pts := [][3]float64{{0, 0, 0}, {1, 0, 0}}
	e := NewEuclidean3(pts)
	pts[1] = [3]float64{9, 9, 9}
	if d := e.Dist(0, 1); math.Abs(d-1) > 1e-12 {
		t.Fatal("NewEuclidean3 must copy its input")
	}
}

func TestEuclidean3BoundedIndependence(t *testing.T) {
	// 3-space is (r, λ=3)-bounded independent: packing numbers of in-balls
	// of radius q·r grow like q³ with a modest constant.
	r := rng.New(5)
	pts := make([][3]float64, 1200)
	for i := range pts {
		pts[i] = [3]float64{r.Range(0, 30), r.Range(0, 30), r.Range(0, 30)}
	}
	e := NewEuclidean3(pts)
	rep := CheckIndependence(e, []int{0, 400, 800}, 1.5, 3, []float64{1, 2, 4})
	if rep.MaxC > 4 {
		t.Fatalf("independence constant too large for 3-space: %v", rep.MaxC)
	}
	// Against λ=2 the same packings must blow the constant up with q,
	// showing the dimension is really 3.
	rep2a := CheckIndependence(e, []int{0}, 1.5, 2, []float64{2})
	rep2b := CheckIndependence(e, []int{0}, 1.5, 2, []float64{4})
	if rep2b.MaxC <= rep2a.MaxC {
		t.Fatalf("λ=2 constant should grow with q in 3-space: q=2→%v q=4→%v",
			rep2a.MaxC, rep2b.MaxC)
	}
}

func TestEuclidean3GeometricLossMetricity(t *testing.T) {
	r := rng.New(7)
	pts := make([][3]float64, 20)
	for i := range pts {
		pts[i] = [3]float64{r.Range(1, 10), r.Range(1, 10), r.Range(1, 10)}
	}
	e := NewEuclidean3(pts)
	f := &GeometricLoss{Base: &scaledSpace{e, 5}, Alpha: 4}
	if !SatisfiesMetricity(f, 4) {
		t.Fatal("geometric loss with α=4 over 3-space must have metricity ≤ 4")
	}
}
