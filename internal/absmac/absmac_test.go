package absmac

import (
	"testing"

	"udwn/internal/geom"
	"udwn/internal/metric"
	"udwn/internal/model"
	"udwn/internal/rng"
	"udwn/internal/sim"
)

// recorderApp records the callback stream.
type recorderApp struct {
	initial []int64
	recvs   []int64
	acks    []int64
}

func (a *recorderApp) Init(e *Endpoint) {
	for _, p := range a.initial {
		e.Send(p)
	}
}
func (a *recorderApp) OnRecv(e *Endpoint, from int, payload int64) {
	a.recvs = append(a.recvs, payload)
}
func (a *recorderApp) OnAck(e *Endpoint, payload int64) {
	a.acks = append(a.acks, payload)
}

func macSim(t *testing.T, k int, apps map[int]*recorderApp) *sim.Sim {
	t.Helper()
	pts := make([]geom.Point, k)
	for i := range pts {
		pts[i] = geom.Point{X: float64(i), Y: 0}
	}
	s, err := sim.New(sim.Config{
		Space: metric.NewEuclidean(pts),
		Model: model.NewSINR(8, 1, 1, 3, 0.1),
		P:     8, Zeta: 3, Noise: 1, Eps: 0.1,
		Seed:       3,
		Primitives: sim.CD | sim.ACK,
		AckScale:   8,
	}, func(id int) sim.Protocol {
		app, ok := apps[id]
		if !ok {
			app = &recorderApp{}
			apps[id] = app
		}
		return New(id, k, app)
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestFIFOAckedDelivery(t *testing.T) {
	const k = 6
	apps := map[int]*recorderApp{0: {initial: []int64{101, 102, 103}}}
	s := macSim(t, k, apps)
	_, ok := s.RunUntil(func(s *sim.Sim) bool {
		return len(apps[0].acks) == 3
	}, 60000)
	if !ok {
		t.Fatal("queued broadcasts were not all acknowledged")
	}
	for i, want := range []int64{101, 102, 103} {
		if apps[0].acks[i] != want {
			t.Fatalf("acks out of order: %v", apps[0].acks)
		}
	}
	// The direct neighbour received every payload, in order.
	got := apps[1].recvs
	seen := map[int64]bool{}
	for _, p := range got {
		seen[p] = true
	}
	for _, want := range []int64{101, 102, 103} {
		if !seen[want] {
			t.Fatalf("neighbour missed payload %d; recvs = %v", want, got)
		}
	}
}

func TestPendingCounts(t *testing.T) {
	e := &Endpoint{ID: 1, N: 8}
	if e.Pending() != 0 || e.Sent() != 0 || e.Acked() != 0 {
		t.Fatal("fresh endpoint not empty")
	}
	e.Send(5)
	e.Send(6)
	if e.Pending() != 2 || e.Sent() != 2 {
		t.Fatalf("pending=%d sent=%d", e.Pending(), e.Sent())
	}
}

func TestAppCanSendFromCallbacks(t *testing.T) {
	// An app that re-broadcasts everything it hears exactly once — the echo
	// pattern higher layers use. Two hops away must still learn the payload.
	const k = 6
	echos := map[int]*echoApp{}
	pts := make([]geom.Point, k)
	for i := range pts {
		pts[i] = geom.Point{X: float64(i), Y: 0}
	}
	s, err := sim.New(sim.Config{
		Space: metric.NewEuclidean(pts),
		Model: model.NewSINR(8, 1, 1, 3, 0.1),
		P:     8, Zeta: 3, Noise: 1, Eps: 0.1,
		Seed:       7,
		Primitives: sim.CD | sim.ACK,
		AckScale:   8,
	}, func(id int) sim.Protocol {
		app := &echoApp{seed: id == 0}
		echos[id] = app
		return New(id, k, app)
	})
	if err != nil {
		t.Fatal(err)
	}
	_, ok := s.RunUntil(func(s *sim.Sim) bool {
		for v := 0; v < k; v++ {
			if !echos[v].heard {
				return false
			}
		}
		return true
	}, 100000)
	if !ok {
		t.Fatal("echo flood did not reach the whole line")
	}
}

type echoApp struct {
	seed  bool
	heard bool
}

func (a *echoApp) Init(e *Endpoint) {
	if a.seed {
		a.heard = true
		e.Send(99)
	}
}
func (a *echoApp) OnRecv(e *Endpoint, from int, payload int64) {
	if payload == 99 && !a.heard {
		a.heard = true
		e.Send(99)
	}
}
func (a *echoApp) OnAck(*Endpoint, int64) {}

func TestNilAppPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(0, 8, nil)
}

func TestIdleEndpointSilent(t *testing.T) {
	p := New(0, 8, &recorderApp{})
	n := &sim.Node{ID: 0, RNG: rng.New(1)}
	for i := 0; i < 50; i++ {
		if p.Act(n, 0).Transmit {
			t.Fatal("idle MAC must not transmit")
		}
		p.Observe(n, 0, &sim.Observation{})
	}
	if p.TransmitProb() != 0 {
		t.Fatal("idle MAC probability must be 0")
	}
}

func TestEndpointAccessorAndInFlightPending(t *testing.T) {
	app := &recorderApp{initial: []int64{1}}
	p := New(3, 8, app)
	if p.Endpoint().ID != 3 || p.Endpoint().N != 8 {
		t.Fatal("endpoint identity wrong")
	}
	n := &sim.Node{ID: 3, RNG: rng.New(9)}
	p.Act(n, 0) // Init fires, message dequeued into flight
	if p.Endpoint().Pending() != 1 {
		t.Fatalf("in-flight message must count as pending: %d", p.Endpoint().Pending())
	}
	if p.TransmitProb() == 0 {
		t.Fatal("in-flight broadcast must contend")
	}
}
