// Package absmac exposes the paper's local broadcast algorithm as an
// abstract MAC layer — the service interface of the "local broadcast layer"
// line of work the paper builds toward: applications enqueue messages;
// the layer delivers each to the whole neighbourhood using Try&Adjust with
// stop-on-ACK, and reports completion. Higher-level distributed algorithms
// (aggregation, leader election, routing trees) then compose against
// acknowledged local broadcast instead of raw slots.
package absmac

import (
	"udwn/internal/core"
	"udwn/internal/sim"
)

// App is the application living on top of one node's MAC endpoint. Methods
// are called from the simulation loop; they must not retain the endpoint's
// internal slices.
type App interface {
	// Init is called once before the first slot; the app may Send.
	Init(e *Endpoint)
	// OnRecv is called for every payload decoded from a neighbour.
	OnRecv(e *Endpoint, from int, payload int64)
	// OnAck is called when a previously sent payload has provably reached
	// the entire neighbourhood.
	OnAck(e *Endpoint, payload int64)
}

// Endpoint is the per-node MAC interface handed to the App.
type Endpoint struct {
	// ID is the node id.
	ID int
	// N is the network-size estimate the backoff uses.
	N int

	queue   []int64
	current *core.LocalBcast
	curLoad int64
	sent    int
	acked   int
}

// Send enqueues a payload for acknowledged local broadcast. Messages are
// delivered one at a time in FIFO order.
func (e *Endpoint) Send(payload int64) {
	e.queue = append(e.queue, payload)
	e.sent++
}

// Pending returns the number of queued plus in-flight messages.
func (e *Endpoint) Pending() int {
	n := len(e.queue)
	if e.current != nil {
		n++
	}
	return n
}

// Sent returns the number of Send calls.
func (e *Endpoint) Sent() int { return e.sent }

// Acked returns the number of completed (acknowledged) broadcasts.
func (e *Endpoint) Acked() int { return e.acked }

// Proto adapts an Endpoint + App into a sim.Protocol.
type Proto struct {
	e    Endpoint
	app  App
	init bool
}

var (
	_ sim.Protocol     = (*Proto)(nil)
	_ sim.ProbReporter = (*Proto)(nil)
)

// New returns the MAC protocol for node id with the given application.
func New(id, n int, app App) *Proto {
	if app == nil {
		panic("absmac: nil app")
	}
	return &Proto{e: Endpoint{ID: id, N: n}, app: app}
}

// Endpoint exposes the node's endpoint for inspection by experiments.
func (p *Proto) Endpoint() *Endpoint { return &p.e }

// Act services the transmission queue through one LocalBcast at a time.
func (p *Proto) Act(n *sim.Node, slot int) sim.Action {
	if !p.init {
		p.init = true
		p.app.Init(&p.e)
	}
	if p.e.current == nil && len(p.e.queue) > 0 {
		p.e.curLoad = p.e.queue[0]
		p.e.queue = p.e.queue[1:]
		p.e.current = core.NewLocalBcast(p.e.N, p.e.curLoad)
	}
	if p.e.current == nil {
		return sim.Action{}
	}
	return p.e.current.Act(n, slot)
}

// Observe forwards the slot outcome to the in-flight broadcast and the app.
func (p *Proto) Observe(n *sim.Node, slot int, obs *sim.Observation) {
	for _, rc := range obs.Received {
		p.app.OnRecv(&p.e, rc.From, rc.Msg.Data)
	}
	if p.e.current == nil {
		return
	}
	p.e.current.Observe(n, slot, obs)
	if p.e.current.Done() {
		p.e.current = nil
		p.e.acked++
		p.app.OnAck(&p.e, p.e.curLoad)
	}
}

// TransmitProb exposes the in-flight broadcast's probability.
func (p *Proto) TransmitProb() float64 {
	if p.e.current == nil {
		return 0
	}
	return p.e.current.TransmitProb()
}
