package sensing

import (
	"math"
	"testing"

	"udwn/internal/model"
)

func sinrSetup() (p, zeta, eps, r float64, sc model.SuccClear) {
	m := model.NewSINR(8, 1, 1, 3, 0.1)
	return 8, 3, 0.1, m.R(), m.Params()
}

func TestBusyThresholdIsPowerAtRB(t *testing.T) {
	p, zeta, eps, r, sc := sinrSetup()
	th := NewThresholds(p, zeta, eps, r, sc)
	want := p / math.Pow((1-eps)*r, zeta)
	if math.Abs(th.BusyRSS-want) > 1e-12 {
		t.Fatalf("BusyRSS = %v, want %v", th.BusyRSS, want)
	}
	if !th.Busy(want) || !th.Busy(want*2) {
		t.Fatal("RSS at/above threshold must read Busy")
	}
	if th.Busy(want * 0.99) {
		t.Fatal("RSS below threshold must read Idle")
	}
}

func TestAckThresholdSINR(t *testing.T) {
	// SINR has RhoC = 0, so AckRSS = Ic.
	p, zeta, eps, r, sc := sinrSetup()
	th := NewThresholds(p, zeta, eps, r, sc)
	if th.AckRSS != sc.Ic {
		t.Fatalf("AckRSS = %v, want Ic = %v", th.AckRSS, sc.Ic)
	}
	if !th.AckClear(sc.Ic) || th.AckClear(sc.Ic*1.01) {
		t.Fatal("AckClear boundary wrong")
	}
}

func TestAckThresholdGraphModel(t *testing.T) {
	// Graph models have Ic = ∞; the geometric term must dominate.
	m := model.NewUDG(2)
	th := NewThresholds(1, 3, 0.1, m.R(), m.Params())
	want := 1 / math.Pow(m.Params().RhoC*2, 3)
	if math.Abs(th.AckRSS-want) > 1e-12 {
		t.Fatalf("AckRSS = %v, want %v", th.AckRSS, want)
	}
	if math.IsInf(th.AckRSS, 0) {
		t.Fatal("AckRSS must be finite for graph models")
	}
}

func TestNTDRadius(t *testing.T) {
	p, zeta, eps, r, sc := sinrSetup()
	th := NewThresholds(p, zeta, eps, r, sc)
	wantRadius := eps * r / 2
	if got := th.NTDRadius(p, zeta); math.Abs(got-wantRadius) > 1e-9 {
		t.Fatalf("NTDRadius = %v, want %v", got, wantRadius)
	}
	// Signal from exactly εR/2 away must trigger Near.
	sig := p / math.Pow(wantRadius, zeta)
	if !th.Near(sig) {
		t.Fatal("signal from εR/2 must read Near")
	}
	// Signal from 2× further must not.
	far := p / math.Pow(2*wantRadius, zeta)
	if th.Near(far) {
		t.Fatal("signal from εR must not read Near")
	}
}

func TestAckImpliesNoNearTransmitter(t *testing.T) {
	// A single interferer within 2R produces RSS ≥ P/(2R)^ζ, which must
	// exceed the SINR AckRSS = Ic (Prop. B.1's argument).
	p, zeta, eps, r, sc := sinrSetup()
	th := NewThresholds(p, zeta, eps, r, sc)
	rssAt2R := p / math.Pow(2*r, zeta)
	if th.AckClear(rssAt2R) {
		t.Fatalf("interferer at 2R (rss=%v) must break AckClear (thr=%v)",
			rssAt2R, th.AckRSS)
	}
}

func TestBusyImpliesTransmitterNearby(t *testing.T) {
	// The Busy threshold equals the power of one transmitter at RB: any
	// single transmitter beyond RB cannot alone trigger Busy.
	p, zeta, eps, r, sc := sinrSetup()
	th := NewThresholds(p, zeta, eps, r, sc)
	beyond := p / math.Pow((1-eps)*r*1.001, zeta)
	if th.Busy(beyond) {
		t.Fatal("lone transmitter beyond RB must not read Busy")
	}
}

func TestHigherPrecisionTightens(t *testing.T) {
	// ε/2 thresholds (used by Bcast) are stricter for ACK and NTD.
	m := model.NewSINR(8, 1, 1, 3, 0.1)
	full := NewThresholds(8, 3, 0.1, m.R(), m.Params())
	mHalf := model.NewSINR(8, 1, 1, 3, 0.05)
	half := NewThresholds(8, 3, 0.05, mHalf.R(), mHalf.Params())
	if half.AckRSS >= full.AckRSS {
		t.Fatalf("ACK(ε/2) threshold %v must be below ACK(ε) %v",
			half.AckRSS, full.AckRSS)
	}
	if half.NTDRSS <= full.NTDRSS {
		t.Fatal("NTD(ε/2) must require a stronger (nearer) signal")
	}
}

func TestNewThresholdsPanics(t *testing.T) {
	sc := model.SuccClear{RhoC: 0, Ic: 1}
	for name, fn := range map[string]func(){
		"p=0":    func() { NewThresholds(0, 3, 0.1, 1, sc) },
		"zeta=0": func() { NewThresholds(1, 0, 0.1, 1, sc) },
		"r=0":    func() { NewThresholds(1, 3, 0.1, 0, sc) },
		"eps=0":  func() { NewThresholds(1, 3, 0, 1, sc) },
		"eps=1":  func() { NewThresholds(1, 3, 1, 1, sc) },
	} {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		})
	}
}
