// Package sensing implements the paper's carrier-sense primitives — CD
// (contention detection), ACK (successful transmission detection) and NTD
// (near transmission detection) — exactly as Appendix B derives them from
// physical carrier sensing: each primitive is a threshold test on received
// signal strength over the quasi-metric power field.
//
// The probabilistic guarantees in the primitive definitions (Busy w.h.p.
// under high contention, Idle with constant probability under low
// contention) emerge from the randomness of the transmission pattern, not
// from randomness inside the primitive: the threshold tests themselves are
// deterministic functions of the slot's RSS, as with real hardware.
package sensing

import (
	"math"

	"udwn/internal/model"
)

// Thresholds holds the RSS thresholds implementing the three primitives for
// a given precision parameter ε.
type Thresholds struct {
	// BusyRSS is the CD threshold T = P/((1−ε)R)^ζ: the channel reads Busy
	// when the total received interference is at least BusyRSS.
	BusyRSS float64
	// AckRSS is the ACK threshold T = min{I_c, P/(ρ_c·R)^ζ}: a transmitter
	// sensing interference below AckRSS knows, by SuccClear, that all its
	// neighbours received the message.
	AckRSS float64
	// NTDRSS is the NTD threshold P/(εR/2)^ζ: a decoded signal at or above
	// it certifies the sender is within εR/2.
	NTDRSS float64
	// Eps is the precision the thresholds were derived for.
	Eps float64
}

// NewThresholds derives the App. B thresholds for transmit power p, exponent
// zeta, precision eps, maximum clear-channel range r, and the model's
// SuccClear parameters. It panics on non-positive p, zeta, r or eps outside
// (0, 1), which are programming errors.
func NewThresholds(p, zeta, eps, r float64, sc model.SuccClear) Thresholds {
	if p <= 0 || zeta <= 0 || r <= 0 || eps <= 0 || eps >= 1 {
		panic("sensing: invalid threshold parameters")
	}
	busy := p / math.Pow((1-eps)*r, zeta)
	ack := sc.Ic
	if sc.RhoC > 0 {
		ack = math.Min(ack, p/math.Pow(sc.RhoC*r, zeta))
	}
	return Thresholds{
		BusyRSS: busy,
		AckRSS:  ack,
		NTDRSS:  p / math.Pow(eps*r/2, zeta),
		Eps:     eps,
	}
}

// Busy reports the CD outcome for total sensed interference rss.
func (t Thresholds) Busy(rss float64) bool { return rss >= t.BusyRSS }

// AckClear reports whether sensed interference certifies a successful
// transmission (the physical half of the ACK primitive).
func (t Thresholds) AckClear(interference float64) bool {
	return interference <= t.AckRSS
}

// Near reports the NTD outcome for the received signal strength of a
// decoded message.
func (t Thresholds) Near(signalRSS float64) bool { return signalRSS >= t.NTDRSS }

// NTDRadius returns the detection radius εR/2 implied by the NTD threshold
// for power p and exponent zeta.
func (t Thresholds) NTDRadius(p, zeta float64) float64 {
	return math.Pow(p/t.NTDRSS, 1/zeta)
}
