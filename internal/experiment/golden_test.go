package experiment

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite testdata/*.golden snapshots")

// TestGoldenOutputs pins the QuickOptions rendering of every table and
// figure to a committed snapshot, so refactors of the harness (or of the
// simulator underneath it) cannot silently change the science. Every run is
// a pure function of its seeds, so these are stable across worker counts
// and repeated runs; refresh them after an *intentional* behaviour change
// with:
//
//	go test ./internal/experiment -run TestGoldenOutputs -update
func TestGoldenOutputs(t *testing.T) {
	if testing.Short() {
		t.Skip("golden suite skipped in -short mode")
	}
	o := QuickOptions()
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			t.Parallel()
			got := e.Run(o).String()
			path := filepath.Join("testdata", e.ID+".golden")
			if *update {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden (run with -update to create): %v", err)
			}
			if got != string(want) {
				t.Fatalf("%s output drifted from %s.\nIf the change is intentional, refresh with -update.\n--- got ---\n%s\n--- want ---\n%s",
					e.ID, path, got, want)
			}
		})
	}
}
