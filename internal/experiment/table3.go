package experiment

import (
	"fmt"

	"udwn"
	"udwn/internal/baseline"
	"udwn/internal/core"
	"udwn/internal/geom"
	"udwn/internal/sim"
	"udwn/internal/stats"
	"udwn/internal/workload"
)

// Table3Broadcast sweeps the network diameter on strip deployments and
// compares the three broadcast strategies:
//
//   - Bcast* (Cor. 5.2): O(D·log n) rounds, non-spontaneous, CD+ACK+NTD.
//   - Spontaneous dominating-set broadcast (Thm. G.1): O(D + log n) rounds.
//   - Decay flooding without carrier sense: O(D·log² n) shape.
//
// Expected shape: per-hop cost (rounds/D) roughly flat only for the
// spontaneous algorithm; Decay flooding pays an extra log factor over Bcast*.
func Table3Broadcast(o Options) fmt.Stringer {
	lengths := []float64{100, 200, 400, 800}
	if o.Quick {
		lengths = []float64{60, 120}
	}
	phy := udwn.DefaultPHY()
	rb := (1 - phy.Eps) * phy.Range

	t := stats.NewTable(
		fmt.Sprintf("Table 3: global broadcast completion (rounds until all informed, %d seeds)", o.seeds()),
		"n", "diam D", "Bcast*", "Spont(G.1)", "DecayFlood", "Bcast*/D", "Spont/D", "tx B*/Sp/DF")

	type cell struct {
		Diam, Bst, Spt, Dcy float64
		BstTx, SptTx, DcyTx float64
	}
	grid := runSeedGrid(o, len(lengths), func(o Options, row, seed int) cell {
		length := lengths[row]
		n := int(length)
		pts, diam := connectedStrip(n, length, rb, uint64(3000+7*int(length)+seed))
		nw := udwn.NewSINRNetwork(pts, phy)
		runSeed := uint64(seed + 1)
		c := cell{Diam: float64(diam)}

		// Bcast*: two slots, ε/2 precision primitives.
		s := mustSim(nw, func(id int) sim.Protocol {
			return core.NewBcastStar(n, 42, id == 0)
		}, o.sim(udwn.SimOptions{Seed: runSeed, Slots: 2, SenseEps: phy.Eps / 2,
			Primitives: sim.CD | sim.ACK | sim.NTD}))
		s.MarkInformed(0)
		ticks, _ := s.RunUntil(broadcastDone(n), 400000)
		c.Bst = float64(ticks) / 2
		c.BstTx = float64(s.TotalTransmissions())

		// Spontaneous dominating-set broadcast.
		ntd := nw.NTDThreshold(phy.Eps / 2)
		s = mustSim(nw, func(id int) sim.Protocol {
			return core.NewSpontBcast(0.05, 1/(2*float64(n)), ntd, 42, id == 0)
		}, o.sim(udwn.SimOptions{Seed: runSeed, Slots: 2, SenseEps: phy.Eps / 2,
			Primitives: sim.CD | sim.ACK | sim.NTD}))
		s.MarkInformed(0)
		// "Informed" must mean payload receipt: dominator-construction
		// traffic also produces decodes, so FirstDecode is too loose.
		ticks, _ = s.RunUntil(func(s *sim.Sim) bool {
			for v := 0; v < n; v++ {
				if !s.Protocol(v).(*core.SpontBcast).Informed() {
					return false
				}
			}
			return true
		}, 400000)
		c.Spt = float64(ticks) / 2
		c.SptTx = float64(s.TotalTransmissions())

		// Decay flooding: single slot, no carrier sense at all.
		s = mustSim(nw, func(id int) sim.Protocol {
			return baseline.NewDecayBcast(n, 42, id == 0)
		}, o.sim(udwn.SimOptions{Seed: runSeed}))
		s.MarkInformed(0)
		ticks, _ = s.RunUntil(broadcastDone(n), 400000)
		c.Dcy = float64(ticks)
		c.DcyTx = float64(s.TotalTransmissions())
		return c
	})

	for row, length := range lengths {
		n := int(length)
		var bst, spt, dcy, diams []float64
		var bstTx, sptTx, dcyTx []float64
		for _, c := range grid[row] {
			diams = append(diams, c.Diam)
			bst = append(bst, c.Bst)
			bstTx = append(bstTx, c.BstTx)
			spt = append(spt, c.Spt)
			sptTx = append(sptTx, c.SptTx)
			dcy = append(dcy, c.Dcy)
			dcyTx = append(dcyTx, c.DcyTx)
		}
		d := stats.Mean(diams)
		mb, ms := stats.Mean(bst), stats.Mean(spt)
		t.AddRowf(n, fmt.Sprintf("%.0f", d), mb, ms, stats.Mean(dcy),
			fmt.Sprintf("%.1f", mb/d), fmt.Sprintf("%.1f", ms/d),
			fmt.Sprintf("%.0f/%.0f/%.0f", stats.Mean(bstTx), stats.Mean(sptTx), stats.Mean(dcyTx)))
	}
	t.AddNote("strip width = R_B keeps degree ≈ constant while diameter grows with length")
	t.AddNote("expected shape: Bcast*/D grows with log n; Spont/D flattens (O(D + log n) — the additive log n start-up dominates small D)")
	t.AddNote("decay flooding informs fast on these benign sparse strips but never terminates and spends several times the transmissions; the carrier-sense algorithms stop with per-node delivery certainty")
	return t
}

// connectedStrip draws strip deployments until one is connected at radius rb.
func connectedStrip(n int, length, rb float64, seed uint64) ([]geom.Point, int) {
	for tries := 0; ; tries++ {
		pts := workload.Strip(n, length, rb, seed+uint64(tries)*997)
		if workload.Connected(pts, rb) {
			_, diam := workload.HopDiameter(pts, rb, 0)
			return pts, diam
		}
		if tries > 50 {
			panic("experiment: could not draw a connected strip; raise density")
		}
	}
}

func mustSim(nw *udwn.Network, f sim.ProtocolFactory, o udwn.SimOptions) *sim.Sim {
	s, err := nw.NewSim(f, o)
	if err != nil {
		panic(err)
	}
	return s
}
