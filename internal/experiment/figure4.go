package experiment

import (
	"fmt"

	"udwn"
	"udwn/internal/core"
	"udwn/internal/dynamics"
	"udwn/internal/sim"
	"udwn/internal/stats"
	"udwn/internal/trace"
)

// Figure4Stabilisation measures the paper's fifth contribution directly:
// contention adaptation as a stabilisation mechanism. Every burstPeriod
// rounds an adversary replaces a fraction of the network with *hot* joiners
// that start at the maximum probability 1/2 (the worst insertion the
// unstructured-model adversary can make; the paper's own arrivals start
// passive at 1/(2n)). The max vicinity contention spikes at each burst and
// Try&Adjust pulls it back into the equilibrium band within O(log n)
// rounds — Prop. 3.1's "from any initial conditions, and in the presence of
// network changes".
func Figure4Stabilisation(o Options) fmt.Stringer {
	n := 1024
	rounds := 300
	burstPeriod := 75
	if o.Quick {
		n, rounds, burstPeriod = 128, 120, 40
	}
	delta := 16
	frac := 0.25
	phy := udwn.DefaultPHY()
	rho := 2.0

	plot := trace.NewPlot(
		fmt.Sprintf("Figure 4: contention re-stabilisation under hot joins (n=%d, %.0f%% replaced every %d rounds, %d seeds)",
			n, frac*100, burstPeriod, o.seeds()),
		"round")
	series := plot.NewSeries("max vicinity contention")

	// A single row of seed cells; each traces one full burst schedule.
	grid := runSeedGrid(o, 1, func(o Options, _, seed int) []float64 {
		nw := uniformNetwork(n, delta, phy, uint64(15000+seed))
		// Hot factory: every (re)join starts at p = 1/2.
		s := mustSim(nw, func(id int) sim.Protocol {
			return core.NewBalancer(core.NewTryAdjustSpontaneous(0.5))
		}, o.sim(udwn.SimOptions{Seed: uint64(seed + 1), Primitives: sim.CD}))
		burst := dynamics.NewBurstChurn(burstPeriod, frac, uint64(16000+seed))
		samples := make([]float64, rounds)
		for r := 0; r < rounds; r++ {
			if r > 0 { // let the initial hot start settle as burst #0
				burst.Apply(s, r)
			}
			s.Step()
			maxC := 0.0
			for v := 0; v < s.N(); v += 8 {
				if !s.Alive(v) {
					continue
				}
				if c := s.Contention(v, rho*phy.Range); c > maxC {
					maxC = c
				}
			}
			samples[r] = maxC
		}
		return samples
	})
	for r := 0; r < rounds; r++ {
		perSeed := make([]float64, 0, len(grid[0]))
		for _, tr := range grid[0] {
			perSeed = append(perSeed, tr[r])
		}
		series.Add(float64(r+1), stats.Mean(perSeed))
	}

	// Quantify recovery: contention just after a burst vs midway between
	// bursts.
	// The first burst only removes nodes; hot revivals start with the
	// second, so measure spikes from there.
	var spikes, settled []float64
	for b := 2 * burstPeriod; b < rounds; b += burstPeriod {
		spikes = append(spikes, series.YAt(float64(b+2)))
		mid := b + burstPeriod/2
		if mid < rounds {
			settled = append(settled, series.YAt(float64(mid)))
		}
	}
	if len(spikes) > 0 && len(settled) > 0 {
		plot.AddNote("mean contention 2 rounds after a burst: %.1f; mid-interval: %.1f (recovery factor %.1fx)",
			stats.Mean(spikes), stats.Mean(settled), stats.Mean(spikes)/stats.Mean(settled))
	}
	plot.AddNote("expected shape: a spike at each hot-revival burst, decaying back to the equilibrium band (~2) within O(log n) ≈ %d rounds", 2*ilog2(n))
	return plot
}

func ilog2(n int) int {
	k := 0
	for n > 1 {
		n /= 2
		k++
	}
	return k
}
