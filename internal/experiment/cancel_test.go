package experiment

import (
	"context"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"udwn/internal/sim"
)

// runExpectCancelled runs f expecting it to panic with Cancelled.
func runExpectCancelled(t *testing.T, f func()) (c Cancelled) {
	t.Helper()
	defer func() {
		p := recover()
		var ok bool
		if c, ok = p.(Cancelled); !ok {
			t.Fatalf("expected Cancelled panic, got %v", p)
		}
	}()
	f()
	t.Fatal("run completed despite cancellation")
	return
}

// TestGridContextCancelStopsDispatch pins the soft-cancellation contract:
// once Options.Context fires, the scheduler dispatches no further cells,
// lets the in-flight ones finish, and Run unwinds with a Cancelled sentinel
// reporting partial progress — on both the sequential and parallel paths.
func TestGridContextCancelStopsDispatch(t *testing.T) {
	for _, workers := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		var ran atomic.Int64
		var g Grid[int]
		const total = 32
		for i := 0; i < total; i++ {
			g.Add(func(Options) int {
				if ran.Add(1) == 4 {
					cancel()
				}
				return 1
			})
		}
		c := runExpectCancelled(t, func() {
			g.Run(Options{Name: "stopdispatch", Workers: workers, Context: ctx})
		})
		cancel()
		if c.Total != total {
			t.Fatalf("workers=%d: Cancelled.Total = %d, want %d", workers, c.Total, total)
		}
		if c.Done >= total || c.Done < 4 {
			t.Fatalf("workers=%d: Cancelled.Done = %d, want partial progress in [4, %d)", workers, c.Done, total)
		}
		// In-flight cells may finish after the cancel, but the bulk of the
		// grid must never have been dispatched.
		if n := ran.Load(); n >= total {
			t.Fatalf("workers=%d: %d/%d cells ran after cancellation", workers, n, total)
		}
	}
}

// TestGridContextCancelAfterCompletionReturnsWholeRun pins the edge case: a
// context that fires only after every cell was dispatched and completed
// interrupts nothing — the whole result comes back instead of a Cancelled
// panic discarding finished work.
func TestGridContextCancelAfterCompletionReturnsWholeRun(t *testing.T) {
	for _, workers := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		var ran atomic.Int64
		var g Grid[int]
		const total = 8
		for i := 0; i < total; i++ {
			i := i
			g.Add(func(Options) int {
				if ran.Add(1) == total {
					cancel()
				}
				return i
			})
		}
		got := g.Run(Options{Name: "latecancel", Workers: workers, Context: ctx})
		cancel()
		if len(got) != total {
			t.Fatalf("workers=%d: got %d results, want %d", workers, len(got), total)
		}
		for i, v := range got {
			if v != i {
				t.Fatalf("workers=%d: result %d = %d, want %d", workers, i, v, i)
			}
		}
	}
}

// TestGridHardCancelStopsInFlightCells pins the daemon-facing knob: with
// HardCancel the run context reaches each cell as co.Context, so a
// cooperative cell (a simulation polling Config.Cancel each tick) stops
// mid-flight instead of running to completion — the grid must unwind
// promptly even though every cell would otherwise block forever.
func TestGridHardCancelStopsInFlightCells(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	const total = 4
	started := make(chan struct{}, total)
	var g Grid[int]
	for i := 0; i < total; i++ {
		g.Add(func(co Options) int {
			started <- struct{}{}
			<-co.Context.Done()
			panic(sim.Cancelled{Tick: 7})
		})
	}
	res := make(chan Cancelled, 1)
	go func() {
		defer func() {
			if c, ok := recover().(Cancelled); ok {
				res <- c
			}
		}()
		g.Run(Options{Name: "hardcancel", Workers: total, Context: ctx, HardCancel: true})
	}()
	for i := 0; i < total; i++ {
		select {
		case <-started:
		case <-time.After(30 * time.Second):
			t.Fatal("cells never started")
		}
	}
	cancel()
	select {
	case c := <-res:
		if c.Done != 0 || c.Total != total {
			t.Fatalf("Cancelled reports %d/%d, want 0/%d (no cell completed)", c.Done, c.Total, total)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("hard cancel did not stop in-flight cells")
	}
}

// TestGridCellTimeoutDoesNotLeakGoroutines is the regression test for the
// historical abandonment bug: a cell overrunning CellTimeout used to have
// its goroutine left running forever. Cells now receive a context carrying
// the deadline, so a cooperative cell terminates; the goroutine count must
// return to its pre-run level.
func TestGridCellTimeoutDoesNotLeakGoroutines(t *testing.T) {
	before := runtime.NumGoroutine()
	const total = 8
	var g Grid[int]
	for i := 0; i < total; i++ {
		g.Add(func(co Options) int {
			// Never finishes on its own; polls its context like a
			// simulation's per-tick Cancel hook.
			for {
				select {
				case <-co.Context.Done():
					panic(sim.Cancelled{Tick: 0})
				case <-time.After(time.Millisecond):
				}
			}
		})
	}
	rep := NewRunReport()
	g.Run(Options{
		Name:        "leakcheck",
		Workers:     4,
		CellTimeout: 50 * time.Millisecond,
		Report:      rep,
	})
	if n := len(rep.Failures()); n != total {
		t.Fatalf("%d cells FAILED, want %d (all overran the deadline)", n, total)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= before+2 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("cell goroutines leaked: %d before run, %d after settling",
				before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestGridCancelledCellsLeaveNoRecords pins that a run-cancelled cell is
// neither FAILED nor checkpointed: resuming must recompute it fresh.
func TestGridCancelledCellsLeaveNoRecords(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var g Grid[int]
	const total = 6
	for i := 0; i < total; i++ {
		i := i
		g.AddLabeled("cell", func(co Options) int {
			if i == 2 {
				cancel()
				<-co.Context.Done()
				panic(sim.Cancelled{Tick: 1})
			}
			return i
		})
	}
	rep := NewRunReport()
	runExpectCancelled(t, func() {
		g.Run(Options{
			Name:       "norecords",
			Workers:    1,
			Context:    ctx,
			HardCancel: true,
			Report:     rep,
		})
	})
	if n := len(rep.Failures()); n != 0 {
		t.Fatalf("cancelled run recorded %d FAILED cell(s), want 0: %v", n, rep.Failures())
	}
}
