package experiment

import (
	"fmt"

	"udwn"
	"udwn/internal/baseline"
	"udwn/internal/core"
	"udwn/internal/sim"
	"udwn/internal/stats"
)

// Table1LocalDelta sweeps the maximum degree at fixed n and compares
// LocalBcast (Cor. 4.3: O(Δ + log n)) against the Decay protocol
// (O(Δ·log n)) and the fixed-probability strategy with known Δ. The
// Decay/LocalBcast ratio should grow like log n with Δ; the ratio of
// LocalBcast to Δ should approach a constant.
func Table1LocalDelta(o Options) fmt.Stringer {
	n := 1024
	deltas := []int{8, 16, 32, 64, 128}
	if o.Quick {
		n = 192
		deltas = []int{8, 16}
	}
	phy := udwn.DefaultPHY()

	t := stats.NewTable(
		fmt.Sprintf("Table 1: local broadcast completion (ticks until every node mass-delivered), n=%d, %d seeds", n, o.seeds()),
		"Δ", "LocalBcast", "Decay", "FixedProb(Δ)", "Decay/LB", "LB/Δ")

	type cell struct{ LB, Dec, Fix float64 }
	grid := runSeedGrid(o, len(deltas), func(o Options, row, seed int) cell {
		delta := deltas[row]
		maxTicks := 400*delta + 200*n // generous cap; Decay needs Θ(Δ log n)
		nw := uniformNetwork(n, delta, phy, uint64(100*delta+seed))
		runSeed := uint64(seed + 1)

		var c cell
		c.LB, _, _ = localRun(nw, n, func(id int) sim.Protocol {
			return core.NewLocalBcast(n, int64(id))
		}, o.sim(udwn.SimOptions{Seed: runSeed, Primitives: sim.CD | sim.ACK}), maxTicks)

		c.Dec, _, _ = localRun(nw, n, func(id int) sim.Protocol {
			return baseline.NewDecay(n, int64(id))
		}, o.sim(udwn.SimOptions{Seed: runSeed, Primitives: sim.FreeAck}), maxTicks)

		c.Fix, _, _ = localRun(nw, n, func(id int) sim.Protocol {
			return baseline.NewFixedProb(delta, 1, int64(id))
		}, o.sim(udwn.SimOptions{Seed: runSeed, Primitives: sim.FreeAck}), maxTicks)
		return c
	})

	for row, delta := range deltas {
		var lb, dec, fix []float64
		for _, c := range grid[row] {
			lb = append(lb, c.LB)
			dec = append(dec, c.Dec)
			fix = append(fix, c.Fix)
		}
		mlb, mdec, mfix := stats.Mean(lb), stats.Mean(dec), stats.Mean(fix)
		t.AddRowf(delta, mlb, mdec, mfix,
			fmt.Sprintf("%.2f", mdec/mlb), fmt.Sprintf("%.2f", mlb/float64(delta)))
	}
	t.AddNote("LocalBcast uses CD+ACK carrier sensing; baselines get free (ground-truth) acknowledgements")
	t.AddNote("expected shape: LocalBcast ≈ c₁Δ + c₂log n; Decay ≈ c·Δ·log n; ratio grows with Δ toward Θ(log n)")
	return t
}
