package experiment

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestGridCellsOverlap proves the scheduler genuinely fans cells out: eight
// cells rendezvous at a barrier that only releases once all eight have
// started, so Run can finish only if they execute concurrently. (A secretly
// sequential scheduler would hang, hence the timeout.)
func TestGridCellsOverlap(t *testing.T) {
	const workers = 8
	var g Grid[bool]
	var started sync.WaitGroup
	started.Add(workers)
	for i := 0; i < workers; i++ {
		g.Add(func(Options) bool {
			started.Done()
			started.Wait()
			return true
		})
	}
	done := make(chan []bool, 1)
	go func() { done <- g.Run(Options{Workers: workers}) }()
	select {
	case res := <-done:
		for i, ok := range res {
			if !ok {
				t.Fatalf("cell %d missing", i)
			}
		}
	case <-time.After(30 * time.Second):
		t.Fatal("cells never overlapped: scheduler is not concurrent")
	}
}

func TestGridPreservesDeclarationOrder(t *testing.T) {
	for _, workers := range []int{1, 2, 8, 64} {
		var g Grid[int]
		for i := 0; i < 100; i++ {
			i := i
			g.Add(func(Options) int { return i * i })
		}
		got := g.Run(Options{Workers: workers})
		if len(got) != 100 {
			t.Fatalf("workers=%d: got %d results, want 100", workers, len(got))
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: result %d = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestGridRunsEveryCellExactlyOnce(t *testing.T) {
	var calls atomic.Int64
	var g Grid[struct{}]
	for i := 0; i < 37; i++ {
		g.Add(func(Options) struct{} { calls.Add(1); return struct{}{} })
	}
	g.Run(Options{Workers: 8})
	if n := calls.Load(); n != 37 {
		t.Fatalf("cells ran %d times, want 37", n)
	}
}

func TestGridEmptyAndSingle(t *testing.T) {
	var g Grid[int]
	if got := g.Run(Options{Workers: 8}); len(got) != 0 {
		t.Fatalf("empty grid returned %v", got)
	}
	g.Add(func(Options) int { return 7 })
	if got := g.Run(Options{Workers: 8}); len(got) != 1 || got[0] != 7 {
		t.Fatalf("single-cell grid returned %v", got)
	}
}

// A panicking cell must panic Run with the lowest failing cell index, so
// failures are deterministic regardless of scheduling.
func TestGridPanicPropagation(t *testing.T) {
	for _, workers := range []int{1, 8} {
		var g Grid[int]
		for i := 0; i < 16; i++ {
			i := i
			g.Add(func(Options) int {
				if i == 3 || i == 12 {
					panic("boom")
				}
				return i
			})
		}
		func() {
			defer func() {
				r := recover()
				if r == nil {
					t.Fatalf("workers=%d: expected panic", workers)
				}
				msg, ok := r.(string)
				if !ok || !strings.Contains(msg, "grid cell 3: boom") {
					t.Fatalf("workers=%d: wrong panic: %v", workers, r)
				}
			}()
			g.Run(Options{Workers: workers})
		}()
	}
}

// With a Report the grid is self-healing: a panicking cell is recorded with
// its (experiment, cell, label) identity and every other cell completes.
func TestGridHealsPanic(t *testing.T) {
	for _, workers := range []int{1, 8} {
		var g Grid[int]
		for i := 0; i < 16; i++ {
			i := i
			g.AddLabeled(fmt.Sprintf("row=%d seed=0", i), func(Options) int {
				if i == 3 {
					panic("boom")
				}
				return i + 100
			})
		}
		report := NewRunReport()
		res := g.Run(Options{Workers: workers, Report: report, Name: "table99"})
		for i, v := range res {
			want := i + 100
			if i == 3 {
				want = 0 // failed cells leave the zero value
			}
			if v != want {
				t.Fatalf("workers=%d: cell %d = %d, want %d", workers, i, v, want)
			}
		}
		fails := report.Failures()
		if len(fails) != 1 {
			t.Fatalf("workers=%d: %d failures, want 1: %v", workers, len(fails), fails)
		}
		f := fails[0]
		if f.Experiment != "table99" || f.Cell != 3 || f.Label != "row=3 seed=0" ||
			f.Reason != "boom" || f.Attempts != 1 {
			t.Fatalf("workers=%d: failure identity wrong: %+v", workers, f)
		}
		if f.Stack == "" {
			t.Fatalf("workers=%d: panic failure must carry a stack", workers)
		}
		want := "FAILED(table99 cell 3 [row=3 seed=0] after 1 attempt(s)): boom"
		if f.String() != want {
			t.Fatalf("workers=%d: marker %q, want %q", workers, f.String(), want)
		}
		if got := report.Counters().Get("cell-panics"); got != 1 {
			t.Fatalf("workers=%d: cell-panics = %d, want 1", workers, got)
		}
	}
}

// A cell that exceeds its deadline is cancelled and marked FAILED — the run
// completes instead of hanging, and the abandoned goroutine's late result
// never contaminates the merged output.
func TestGridDeadlineCancelsStuckCell(t *testing.T) {
	for _, workers := range []int{1, 4} {
		release := make(chan struct{})
		var g Grid[int]
		for i := 0; i < 8; i++ {
			i := i
			g.AddLabeled(fmt.Sprintf("row=%d seed=0", i), func(Options) int {
				if i == 5 {
					<-release // stuck until the test ends
					return -1
				}
				return i
			})
		}
		report := NewRunReport()
		done := make(chan []int, 1)
		go func() {
			done <- g.Run(Options{Workers: workers, Report: report,
				CellTimeout: 50 * time.Millisecond, Name: "hang"})
		}()
		var res []int
		select {
		case res = <-done:
		case <-time.After(30 * time.Second):
			t.Fatalf("workers=%d: run hung on the stuck cell", workers)
		}
		for i, v := range res {
			want := i
			if i == 5 {
				want = 0
			}
			if v != want {
				t.Fatalf("workers=%d: cell %d = %d, want %d", workers, i, v, want)
			}
		}
		fails := report.Failures()
		if len(fails) != 1 || fails[0].Cell != 5 ||
			!strings.Contains(fails[0].Reason, "deadline") {
			t.Fatalf("workers=%d: wrong failures: %v", workers, fails)
		}
		if got := report.Counters().Get("cell-timeouts"); got != 1 {
			t.Fatalf("workers=%d: cell-timeouts = %d, want 1", workers, got)
		}
		close(release) // unblock the abandoned goroutine
	}
}

// A flaky cell succeeds within its retry budget and is not reported as a
// failure; one that keeps panicking exhausts the budget with the attempt
// count recorded.
func TestGridRetryBudget(t *testing.T) {
	var flakyCalls, brokenCalls atomic.Int64
	var g Grid[int]
	g.AddLabeled("flaky", func(Options) int {
		if flakyCalls.Add(1) == 1 {
			panic("transient")
		}
		return 7
	})
	g.AddLabeled("broken", func(Options) int {
		brokenCalls.Add(1)
		panic("permanent")
	})
	report := NewRunReport()
	res := g.Run(Options{Workers: 1, Retries: 2, Report: report, Name: "retry"})
	if res[0] != 7 {
		t.Fatalf("flaky cell = %d, want 7 after retry", res[0])
	}
	if flakyCalls.Load() != 2 || brokenCalls.Load() != 3 {
		t.Fatalf("attempts: flaky=%d broken=%d, want 2 and 3",
			flakyCalls.Load(), brokenCalls.Load())
	}
	fails := report.Failures()
	if len(fails) != 1 || fails[0].Cell != 1 || fails[0].Attempts != 3 ||
		fails[0].Reason != "permanent" {
		t.Fatalf("wrong failures: %+v", fails)
	}
	c := report.Counters()
	if c.Get("cell-recovered") != 1 || c.Get("cell-panics") != 4 ||
		c.Get("cell-retries") != 3 {
		t.Fatalf("counters wrong: %s", c)
	}
}

// Without a Report, deadlines still apply but failures keep the historical
// contract: Run panics with the lowest failing cell index.
func TestGridDeadlineWithoutReportPanics(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	var g Grid[int]
	g.Add(func(Options) int { <-release; return 0 })
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected panic without a report")
		}
		if msg, ok := r.(string); !ok || !strings.Contains(msg, "deadline") {
			t.Fatalf("wrong panic: %v", r)
		}
	}()
	g.Run(Options{Workers: 1, CellTimeout: 50 * time.Millisecond})
}

func TestRunSeedGridShape(t *testing.T) {
	type pair struct{ Row, Seed int }
	o := Options{Seeds: 3, Workers: 4}
	got := runSeedGrid(o, 5, func(_ Options, row, seed int) pair { return pair{row, seed} })
	if len(got) != 5 {
		t.Fatalf("got %d rows, want 5", len(got))
	}
	for r, rowRes := range got {
		if len(rowRes) != 3 {
			t.Fatalf("row %d has %d seeds, want 3", r, len(rowRes))
		}
		for s, p := range rowRes {
			if p.Row != r || p.Seed != s {
				t.Fatalf("cell (%d,%d) computed as (%d,%d)", r, s, p.Row, p.Seed)
			}
		}
	}
}

func TestOptionsWorkersDefault(t *testing.T) {
	if (Options{}).workers() < 1 {
		t.Fatal("default workers must be at least 1")
	}
	if (Options{Workers: 6}).workers() != 6 {
		t.Fatal("explicit workers not honoured")
	}
}
