package experiment

import (
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestGridCellsOverlap proves the scheduler genuinely fans cells out: eight
// cells rendezvous at a barrier that only releases once all eight have
// started, so Run can finish only if they execute concurrently. (A secretly
// sequential scheduler would hang, hence the timeout.)
func TestGridCellsOverlap(t *testing.T) {
	const workers = 8
	var g Grid[bool]
	var started sync.WaitGroup
	started.Add(workers)
	for i := 0; i < workers; i++ {
		g.Add(func() bool {
			started.Done()
			started.Wait()
			return true
		})
	}
	done := make(chan []bool, 1)
	go func() { done <- g.Run(Options{Workers: workers}) }()
	select {
	case res := <-done:
		for i, ok := range res {
			if !ok {
				t.Fatalf("cell %d missing", i)
			}
		}
	case <-time.After(30 * time.Second):
		t.Fatal("cells never overlapped: scheduler is not concurrent")
	}
}

func TestGridPreservesDeclarationOrder(t *testing.T) {
	for _, workers := range []int{1, 2, 8, 64} {
		var g Grid[int]
		for i := 0; i < 100; i++ {
			i := i
			g.Add(func() int { return i * i })
		}
		got := g.Run(Options{Workers: workers})
		if len(got) != 100 {
			t.Fatalf("workers=%d: got %d results, want 100", workers, len(got))
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: result %d = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestGridRunsEveryCellExactlyOnce(t *testing.T) {
	var calls atomic.Int64
	var g Grid[struct{}]
	for i := 0; i < 37; i++ {
		g.Add(func() struct{} { calls.Add(1); return struct{}{} })
	}
	g.Run(Options{Workers: 8})
	if n := calls.Load(); n != 37 {
		t.Fatalf("cells ran %d times, want 37", n)
	}
}

func TestGridEmptyAndSingle(t *testing.T) {
	var g Grid[int]
	if got := g.Run(Options{Workers: 8}); len(got) != 0 {
		t.Fatalf("empty grid returned %v", got)
	}
	g.Add(func() int { return 7 })
	if got := g.Run(Options{Workers: 8}); len(got) != 1 || got[0] != 7 {
		t.Fatalf("single-cell grid returned %v", got)
	}
}

// A panicking cell must panic Run with the lowest failing cell index, so
// failures are deterministic regardless of scheduling.
func TestGridPanicPropagation(t *testing.T) {
	for _, workers := range []int{1, 8} {
		var g Grid[int]
		for i := 0; i < 16; i++ {
			i := i
			g.Add(func() int {
				if i == 3 || i == 12 {
					panic("boom")
				}
				return i
			})
		}
		func() {
			defer func() {
				r := recover()
				if r == nil {
					t.Fatalf("workers=%d: expected panic", workers)
				}
				msg, ok := r.(string)
				if !ok || !strings.Contains(msg, "grid cell 3: boom") {
					t.Fatalf("workers=%d: wrong panic: %v", workers, r)
				}
			}()
			g.Run(Options{Workers: workers})
		}()
	}
}

func TestRunSeedGridShape(t *testing.T) {
	type pair struct{ row, seed int }
	o := Options{Seeds: 3, Workers: 4}
	got := runSeedGrid(o, 5, func(row, seed int) pair { return pair{row, seed} })
	if len(got) != 5 {
		t.Fatalf("got %d rows, want 5", len(got))
	}
	for r, rowRes := range got {
		if len(rowRes) != 3 {
			t.Fatalf("row %d has %d seeds, want 3", r, len(rowRes))
		}
		for s, p := range rowRes {
			if p.row != r || p.seed != s {
				t.Fatalf("cell (%d,%d) computed as (%d,%d)", r, s, p.row, p.seed)
			}
		}
	}
}

func TestOptionsWorkersDefault(t *testing.T) {
	if (Options{}).workers() < 1 {
		t.Fatal("default workers must be at least 1")
	}
	if (Options{Workers: 6}).workers() != 6 {
		t.Fatal("explicit workers not honoured")
	}
}
