package experiment

import (
	"strconv"
	"strings"
	"testing"
)

func TestAllHaveUniqueIDs(t *testing.T) {
	seen := map[string]bool{}
	for _, e := range All() {
		if e.ID == "" || e.Title == "" || e.Run == nil {
			t.Fatalf("incomplete experiment: %+v", e)
		}
		if seen[e.ID] {
			t.Fatalf("duplicate id %q", e.ID)
		}
		seen[e.ID] = true
	}
	if len(seen) != 16 {
		t.Fatalf("expected 16 experiments, got %d", len(seen))
	}
}

func TestLookup(t *testing.T) {
	if _, ok := Lookup("table1"); !ok {
		t.Fatal("table1 must exist")
	}
	if _, ok := Lookup("nope"); ok {
		t.Fatal("unknown id must fail lookup")
	}
}

func TestOptionsSeeds(t *testing.T) {
	if (Options{}).seeds() != 1 {
		t.Fatal("zero seeds must clamp to 1")
	}
	if (Options{Seeds: 4}).seeds() != 4 {
		t.Fatal("seeds not honoured")
	}
}

// Each experiment must run in quick mode with a single seed and produce
// non-trivial output containing its headline string. These are the
// end-to-end integration tests of the whole stack (workload → sim →
// algorithm → aggregation).
func TestExperimentsQuickRun(t *testing.T) {
	if testing.Short() {
		t.Skip("quick experiment suite skipped in -short mode")
	}
	wantFragment := map[string]string{
		"figure1": "max vicinity contention",
		"table1":  "Decay/LB",
		"table2":  "Spontaneous",
		"table3":  "Bcast*",
		"table4":  "dyn degree",
		"table5":  "model",
		"figure2": "NTD",
		"table6":  "variant",
		"table7":  "epoch",
		"table8":  "coverage",
		"figure3": "percentile",
		"table9":  "rounds/k",
		"figure4": "contention",
		"table10": "channels",
		"table11": "stable",
		"table12": "fault scenario",
	}
	o := Options{Seeds: 1, Quick: true}
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			out := e.Run(o).String()
			if len(out) < 80 {
				t.Fatalf("suspiciously short output:\n%s", out)
			}
			if !strings.Contains(out, wantFragment[e.ID]) {
				t.Fatalf("output of %s missing %q:\n%s", e.ID, wantFragment[e.ID], out)
			}
		})
	}
}

// Every experiment must be a deterministic function of its options: two
// identical invocations render byte-identical results. This guards against
// unseeded randomness (e.g. map iteration) sneaking into the harness.
func TestExperimentsDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("skipped in -short mode")
	}
	o := Options{Seeds: 1, Quick: true}
	for _, e := range []string{"table1", "table5", "table9", "figure2"} {
		exp, ok := Lookup(e)
		if !ok {
			t.Fatalf("missing %s", e)
		}
		a := exp.Run(o).String()
		b := exp.Run(o).String()
		if a != b {
			t.Fatalf("%s not deterministic:\n--- first ---\n%s\n--- second ---\n%s", e, a, b)
		}
	}
}

// Figure 1 must show convergence: the hot-start contention at the end of
// the run is far below its starting value.
func TestFigure1Converges(t *testing.T) {
	if testing.Short() {
		t.Skip("skipped in -short mode")
	}
	out := Figure1Contention(Options{Seeds: 1, Quick: true}).String()
	if !strings.Contains(out, "start p=1/2") {
		t.Fatalf("missing hot series:\n%s", out)
	}
	// The first sampled hot-start contention must exceed the last by a
	// large factor (initial total contention ≈ n/2 per vicinity).
	lines := strings.Split(strings.TrimSpace(out), "\n")
	var first, last float64
	count := 0
	for _, ln := range lines {
		fields := strings.Fields(ln)
		if len(fields) != 3 {
			continue
		}
		hot, err1 := strconv.ParseFloat(fields[1], 64)
		if _, err0 := strconv.ParseFloat(fields[0], 64); err0 != nil || err1 != nil {
			continue
		}
		if count == 0 {
			first = hot
		}
		last = hot
		count++
	}
	if count < 10 {
		t.Fatalf("parsed only %d data rows", count)
	}
	if first < 4*last {
		t.Fatalf("no convergence: first=%v last=%v", first, last)
	}
}
