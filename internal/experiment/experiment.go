// Package experiment implements the evaluation suite of DESIGN.md: one
// runner per table/figure, regenerating the rows and series whose shapes the
// paper's theorems predict. The same runners back cmd/experiments and the
// root bench_test.go.
package experiment

import (
	"context"
	"fmt"
	"runtime"
	"time"

	"udwn"
	"udwn/internal/checkpoint"
	"udwn/internal/metrics"
	"udwn/internal/sim"
	"udwn/internal/workload"
)

// Options scales an experiment run.
type Options struct {
	// Seeds is the number of independent repetitions per cell.
	Seeds int
	// Quick shrinks sizes for unit tests and smoke benches.
	Quick bool
	// Workers caps how many grid cells execute concurrently. Zero defaults
	// to runtime.NumCPU(); 1 runs every cell sequentially in the calling
	// goroutine (the historical behaviour). Results are byte-identical for
	// every value — each cell is a pure function of its seeds and the merge
	// order is fixed (see grid.go).
	Workers int
	// CellTimeout is the per-cell deadline; a cell that overruns it is
	// cancelled (abandoned) and marked FAILED instead of hanging the run.
	// Zero disables deadlines. Deadline outcomes are machine-dependent, so
	// leave this zero for golden/recorded runs.
	CellTimeout time.Duration
	// Retries is the per-cell retry budget after a panic or timeout.
	Retries int
	// Report, when non-nil, switches grids to self-healing mode: failing
	// cells are recorded here with their (experiment, cell, seed) identity
	// and the remaining cells complete. Runs through All() always get one.
	Report *RunReport
	// Name attributes failures to an experiment id; set by the registry
	// wrapper, runners need not touch it.
	Name string
	// Metrics, when non-nil, is the run-level registry: the grid times
	// every cell into it ("grid/cell" timer, "grid/cells" counter) and
	// runners thread it into their simulations via o.sim(...), so per-slot
	// sim instrumentation from every cell aggregates here. All metric
	// updates are commutative, so snapshots (modulo timing fields) are
	// byte-identical across Workers counts — pinned by
	// TestMetricsWorkersDeterminism.
	Metrics *metrics.Registry
	// IndexMetrics opts the simulator's "sim/index/*" spatial-index,
	// "sim/field/*" incremental-field and "sim/wheel/*" quiescence work
	// counters into Metrics. Off by default: the counters are absent from
	// the pinned snapshot goldens, and registering them only on request
	// keeps those goldens stable.
	IndexMetrics bool
	// FieldMode selects the simulator's interference-field driver for every
	// cell (incremental by default; recompute is the brute reference). All
	// outputs are byte-identical across modes.
	FieldMode sim.FieldMode
	// Observer, when non-nil, receives every simulator slot event of every
	// grid cell (runners thread it through o.sim alongside Metrics). Cells
	// run on concurrent worker goroutines, so callbacks may arrive
	// interleaved and concurrently; wrap trace recorders with
	// trace.LockedObserver. Events alias simulator scratch buffers and are
	// only valid during the call.
	Observer func(ev sim.SlotEvent)
	// Progress, when non-nil, is invoked after every completed or failed
	// grid cell with the grid's live done/total state. Callbacks are
	// serialised by the grid, so implementations need no locking; they run
	// on worker goroutines and must be fast.
	Progress func(Progress)
	// Checkpoint, when non-nil, attaches a content-addressed cell-result
	// store: the grid consults it before scheduling each labelled cell
	// (hits replay the stored value, metrics snapshot and attempt count
	// instead of running the cell) and appends every freshly computed cell
	// as it completes. Results and manifests are byte-identical with or
	// without a store, and across any interrupt/resume pattern — see
	// grid.go and internal/checkpoint. FAILED cells are never stored.
	Checkpoint *checkpoint.Store
	// Context, when non-nil, scopes the whole grid run: once it is
	// cancelled the scheduler stops dispatching new cells, lets (or, with
	// HardCancel, stops) the cells already in flight, and then panics with
	// a Cancelled sentinel carrying the done/total progress at the moment
	// of interruption. Completed cells keep their checkpoint records, so a
	// cancelled checkpointed run resumes with no recomputation of finished
	// work. Nil keeps the historical run-to-completion behaviour.
	Context context.Context
	// HardCancel additionally threads Context into every cell, so a
	// cancelled run stops in-flight simulations at their next tick instead
	// of letting them run to completion. Interrupted cells produce no
	// result and are not checkpointed; they rerun on resume. The daemon's
	// job deadlines and post-grace drain use this; cmd/experiments'
	// SIGINT path leaves it false so in-flight cells finish and commit.
	HardCancel bool
	// abortAfterCells is a test-only crash hook: when positive, the grid
	// panics with a gridAbort sentinel once that many cells have committed,
	// simulating a run killed mid-sweep (the checkpoint store keeps what
	// had finished). Zero disables the hook.
	abortAfterCells int
}

// Progress is one live progress update of a grid run.
type Progress struct {
	// Experiment is the running experiment's id ("" outside the registry).
	Experiment string
	// Done counts cells that finished (including failed ones); Total is the
	// grid size; Failed counts cells recorded as FAILED.
	Done, Total, Failed int
}

// sim threads the run-level instrumentation into a runner's SimOptions;
// runners wrap their literal options with it so every simulation they
// construct reports into the shared registry.
func (o Options) sim(so udwn.SimOptions) udwn.SimOptions {
	so.Metrics = o.Metrics
	so.IndexMetrics = o.IndexMetrics
	so.FieldMode = o.FieldMode
	so.Observer = o.Observer
	if o.Context != nil {
		ctx := o.Context
		// One non-blocking poll per tick; the sim panics sim.Cancelled when
		// it fires and the grid's attempt recover maps that back to a
		// cancellation outcome, so the cell's goroutine really terminates.
		so.Cancel = func() bool {
			select {
			case <-ctx.Done():
				return true
			default:
				return false
			}
		}
	}
	return so
}

// DefaultOptions returns the settings used for the recorded EXPERIMENTS.md
// numbers.
func DefaultOptions() Options { return Options{Seeds: 5} }

// QuickOptions returns reduced settings for tests.
func QuickOptions() Options { return Options{Seeds: 2, Quick: true} }

func (o Options) seeds() int {
	if o.Seeds < 1 {
		return 1
	}
	return o.Seeds
}

func (o Options) workers() int {
	if o.Workers < 1 {
		return runtime.NumCPU()
	}
	return o.Workers
}

// Experiment is one table or figure runner.
type Experiment struct {
	// ID is the short identifier ("table1", "figure2", ...).
	ID string
	// Title is the human-readable description.
	Title string
	// Run executes the experiment and returns its printable result.
	Run func(o Options) fmt.Stringer
}

// All returns every experiment in report order. Every returned runner is
// self-healing: failures of individual grid cells are attributed and
// rendered as FAILED(...) markers instead of aborting the run (see
// withReport).
func All() []Experiment {
	list := []Experiment{
		{ID: "figure1", Title: "Try&Adjust contention convergence (Prop. 3.1)", Run: Figure1Contention},
		{ID: "table1", Title: "Local broadcast vs max degree (Cor. 4.3)", Run: Table1LocalDelta},
		{ID: "table2", Title: "Local broadcast vs network size (Cor. 4.3, uniformity)", Run: Table2LocalN},
		{ID: "table3", Title: "Global broadcast vs diameter (Cor. 5.2, Thm. G.1)", Run: Table3Broadcast},
		{ID: "table4", Title: "Local broadcast under dynamics (Thm. 4.1)", Run: Table4Dynamics},
		{ID: "table5", Title: "One algorithm across models (unified model)", Run: Table5CrossModel},
		{ID: "figure2", Title: "Broadcast without NTD on the Thm. 5.3 instance", Run: Figure2LowerBound},
		{ID: "table6", Title: "Ablations: thresholds, primitives, adversary, clocks", Run: Table6Ablations},
		{ID: "table7", Title: "The price of carrier sensing (App. B probing CD)", Run: Table7NoCS},
		{ID: "table8", Title: "Rayleigh fading: dynamic edges from the channel", Run: Table8Fading},
		{ID: "figure3", Title: "Per-node completion-time CDF (strong optimality)", Run: Figure3CDF},
		{ID: "table9", Title: "k-message broadcast (multi-message extension)", Run: Table9MultiMessage},
		{ID: "figure4", Title: "Contention re-stabilisation under adversarial hot joins", Run: Figure4Stabilisation},
		{ID: "table10", Title: "Multi-channel local broadcast (naive tuning, negative ablation)", Run: Table10MultiChannel},
		{ID: "table11", Title: "Dynamic broadcast vs stable distance (Thm. 5.1)", Run: Table11StableDistance},
		{ID: "table12", Title: "Graceful degradation under injected faults (jam, corruption, crashes)", Run: Table12Faults},
	}
	for i := range list {
		list[i].Run = withReport(list[i].ID, list[i].Run)
	}
	return list
}

// withReport wraps a runner so every run through the registry is
// self-healing: o.Name carries the experiment id for failure attribution, a
// RunReport is supplied when the caller did not pass one, and the rendered
// output gains one FAILED(...) line per degraded cell (nothing when clean).
func withReport(id string, run func(Options) fmt.Stringer) func(Options) fmt.Stringer {
	return func(o Options) fmt.Stringer {
		o.Name = id
		if o.Report == nil {
			o.Report = NewRunReport()
		}
		return reportedResult{res: run(o), id: id, report: o.Report}
	}
}

// reportedResult renders an experiment's own output plus the FAILED markers
// of its degraded cells.
type reportedResult struct {
	res    fmt.Stringer
	id     string
	report *RunReport
}

func (r reportedResult) String() string {
	return r.res.String() + r.report.render(r.id)
}

// Lookup returns the experiment with the given id.
func Lookup(id string) (Experiment, bool) {
	for _, e := range All() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// uniformNetwork builds a uniform SINR deployment of n nodes with expected
// degree delta.
func uniformNetwork(n, delta int, phy udwn.PHY, topoSeed uint64) *udwn.Network {
	rb := (1 - phy.Eps) * phy.Range
	side := workload.SideForDegree(n, delta, rb)
	return udwn.NewSINRNetwork(workload.UniformDisc(n, side, topoSeed), phy)
}

// localRun runs a protocol on every node until all n nodes mass-delivered or
// maxTicks elapsed; it returns the tick by which all completed (or maxTicks)
// and the mean per-node completion tick over completed nodes.
func localRun(nw *udwn.Network, n int, factory sim.ProtocolFactory,
	o udwn.SimOptions, maxTicks int) (all float64, mean float64, done bool) {
	s, err := nw.NewSim(factory, o)
	if err != nil {
		panic(fmt.Sprintf("experiment: %v", err))
	}
	return localRunOn(s, n, maxTicks)
}

// localRunOn drives an already-constructed simulator until every node
// mass-delivered or maxTicks elapsed, with the same return values as
// localRun.
func localRunOn(s *sim.Sim, n, maxTicks int) (all float64, mean float64, done bool) {
	pred := func(s *sim.Sim) bool {
		for v := 0; v < n; v++ {
			if s.FirstMassDelivery(v) < 0 {
				return false
			}
		}
		return true
	}
	ticks, ok := s.RunUntil(pred, maxTicks)
	sum, cnt := 0.0, 0
	for v := 0; v < n; v++ {
		if t := s.FirstMassDelivery(v); t >= 0 {
			sum += float64(t)
			cnt++
		}
	}
	if cnt == 0 {
		// No node completed: there is no mean to take. Report the cap as a
		// pessimistic sentinel and force done=false so callers cannot
		// mistake a total timeout for a (terrible) measured mean.
		return float64(ticks), float64(maxTicks), false
	}
	return float64(ticks), sum / float64(cnt), ok
}

// broadcastDone returns a predicate for "every node is informed".
func broadcastDone(n int) func(*sim.Sim) bool {
	return func(s *sim.Sim) bool {
		for v := 0; v < n; v++ {
			if s.FirstDecode(v) < 0 {
				return false
			}
		}
		return true
	}
}
