package experiment

import (
	"fmt"
	"runtime/debug"
	"sync"
)

// This file is the parallel execution engine of the experiment suite.
//
// Every experiment is a (cell × seed) grid whose entries are pure functions
// of their captured parameters — DESIGN.md §4 makes each simulation run a
// pure function of (topology seed, run seed) — so the grid can be evaluated
// in any order, on any number of workers, and still merge into the exact
// same table or plot. Runners declare their cells in report order, the
// scheduler fans them out, and Run returns the results indexed by
// declaration order regardless of completion order. Aggregation then happens
// sequentially in the runner, so floating-point accumulation order (and
// therefore the rendered output) is byte-identical for every worker count.
//
// The purity contract for a Cell: construct every Network, Sim, driver and
// tracker it uses inside the closure, and do not touch variables shared with
// other cells. The sim stack holds no package-level mutable state (all
// randomness flows through per-Sim rng.Sources; package vars are interface
// assertions only), so cells built this way are data-race free by
// construction. TestParallelRace and the -race tier-1 gate enforce this.

// Cell is one independent unit of an experiment grid: a closure returning
// the typed measurements of a single (cell, seed) entry.
type Cell[T any] func() T

// Grid is an ordered collection of cells. The zero value is ready to use.
type Grid[T any] struct {
	cells []Cell[T]
}

// Add declares the next cell in merge order.
func (g *Grid[T]) Add(c Cell[T]) {
	g.cells = append(g.cells, c)
}

// Len returns the number of declared cells.
func (g *Grid[T]) Len() int { return len(g.cells) }

// Run evaluates every cell on up to o.workers() concurrent workers and
// returns the results in declaration order. With one worker the cells run
// in the calling goroutine in declaration order — exactly the historical
// sequential behaviour. A panicking cell panics Run with the cell index and
// the original message; when several cells panic, the lowest index wins, so
// even failures are deterministic.
func (g *Grid[T]) Run(o Options) []T {
	out := make([]T, len(g.cells))
	workers := o.workers()
	if workers > len(g.cells) {
		workers = len(g.cells)
	}
	if workers <= 1 {
		for i, c := range g.cells {
			i, c := i, c
			func() {
				defer func() {
					if r := recover(); r != nil {
						panic(fmt.Sprintf("experiment: grid cell %d: %v\n%s",
							i, r, debug.Stack()))
					}
				}()
				out[i] = c()
			}()
		}
		return out
	}

	type cellPanic struct {
		idx   int
		val   any
		stack []byte
	}
	var (
		wg       sync.WaitGroup
		panicMu  sync.Mutex
		firstPan *cellPanic
	)
	idx := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				func() {
					defer func() {
						if r := recover(); r != nil {
							p := &cellPanic{idx: i, val: r, stack: debug.Stack()}
							panicMu.Lock()
							if firstPan == nil || p.idx < firstPan.idx {
								firstPan = p
							}
							panicMu.Unlock()
						}
					}()
					out[i] = g.cells[i]()
				}()
			}
		}()
	}
	for i := range g.cells {
		idx <- i
	}
	close(idx)
	wg.Wait()
	if firstPan != nil {
		panic(fmt.Sprintf("experiment: grid cell %d: %v\n%s",
			firstPan.idx, firstPan.val, firstPan.stack))
	}
	return out
}

// runSeedGrid is the common grid shape: rows × o.seeds() cells, where
// fn(row, seed) computes one entry. Results come back as [row][seed], so
// runners aggregate with the same row-major, seed-minor loops they always
// used.
func runSeedGrid[T any](o Options, rows int, fn func(row, seed int) T) [][]T {
	seeds := o.seeds()
	var g Grid[T]
	for row := 0; row < rows; row++ {
		for seed := 0; seed < seeds; seed++ {
			row, seed := row, seed
			g.Add(func() T { return fn(row, seed) })
		}
	}
	flat := g.Run(o)
	out := make([][]T, rows)
	for row := 0; row < rows; row++ {
		out[row] = flat[row*seeds : (row+1)*seeds]
	}
	return out
}
