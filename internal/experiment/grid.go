package experiment

import (
	"fmt"
	"runtime/debug"
	rtmetrics "runtime/metrics"
	"sort"
	"strings"
	"sync"
	"time"

	"udwn/internal/metrics"
	"udwn/internal/trace"
)

// This file is the parallel execution engine of the experiment suite.
//
// Every experiment is a (cell × seed) grid whose entries are pure functions
// of their captured parameters — DESIGN.md §4 makes each simulation run a
// pure function of (topology seed, run seed) — so the grid can be evaluated
// in any order, on any number of workers, and still merge into the exact
// same table or plot. Runners declare their cells in report order, the
// scheduler fans them out, and Run returns the results indexed by
// declaration order regardless of completion order. Aggregation then happens
// sequentially in the runner, so floating-point accumulation order (and
// therefore the rendered output) is byte-identical for every worker count.
//
// The purity contract for a Cell: construct every Network, Sim, driver and
// tracker it uses inside the closure, and do not touch variables shared with
// other cells. The sim stack holds no package-level mutable state (all
// randomness flows through per-Sim rng.Sources; package vars are interface
// assertions only), so cells built this way are data-race free by
// construction. TestParallelRace and the -race tier-1 gate enforce this.
//
// The scheduler is self-healing: with Options.Report set, a panicking or
// deadline-overrunning cell no longer aborts the run. The failure is
// attributed to its (experiment, cell index, label) identity — labels carry
// the (row, seed) grid coordinates — retried within Options.Retries, and
// finally recorded in the RunReport while every other cell completes. The
// rendered output marks degraded cells as explicit FAILED(...) lines.
// Without a Report, Run keeps the historical behaviour: it panics with the
// lowest failing cell index, so even failures are deterministic.

// Cell is one independent unit of an experiment grid: a closure returning
// the typed measurements of a single (cell, seed) entry.
type Cell[T any] func() T

// Grid is an ordered collection of cells. The zero value is ready to use.
type Grid[T any] struct {
	cells  []Cell[T]
	labels []string
}

// Add declares the next cell in merge order with no identity label.
func (g *Grid[T]) Add(c Cell[T]) { g.AddLabeled("", c) }

// AddLabeled declares the next cell in merge order together with an
// identity label (e.g. "row=1 seed=3") used to attribute failures.
func (g *Grid[T]) AddLabeled(label string, c Cell[T]) {
	g.cells = append(g.cells, c)
	g.labels = append(g.labels, label)
}

// Len returns the number of declared cells.
func (g *Grid[T]) Len() int { return len(g.cells) }

// Failure identifies one grid cell that produced no result: which
// experiment, which cell (declaration index plus the runner's label, which
// encodes the (row, seed) coordinates), how many attempts were made, and
// why the last one died.
type Failure struct {
	Experiment string
	Cell       int
	Label      string
	Attempts   int
	// Reason is the first line of the panic value, or the deadline message
	// for cells that overran their CellTimeout.
	Reason string
	// Stack is the goroutine stack of the last panicking attempt; empty
	// for timeouts. It is kept out of rendered output (stacks are not
	// byte-stable) but available for debugging.
	Stack string
}

// String renders the failure as the explicit marker experiment output
// embeds in place of the degraded cell's contribution.
func (f Failure) String() string {
	exp := f.Experiment
	if exp == "" {
		exp = "grid"
	}
	label := f.Label
	if label == "" {
		label = "?"
	}
	return fmt.Sprintf("FAILED(%s cell %d [%s] after %d attempt(s)): %s",
		exp, f.Cell, label, f.Attempts, f.Reason)
}

// RunReport collects the failures and failure counters of self-healing grid
// runs. One report may span several experiments (cmd/experiments shares one
// across the whole suite); it is safe for concurrent use by grid workers.
type RunReport struct {
	mu       sync.Mutex
	failures []Failure
	counters *trace.Counters
	timings  []metrics.CellTiming
}

// NewRunReport returns an empty report.
func NewRunReport() *RunReport {
	return &RunReport{counters: trace.NewCounters()}
}

func (r *RunReport) add(f Failure) {
	r.mu.Lock()
	r.failures = append(r.failures, f)
	r.mu.Unlock()
}

// Failures returns the recorded failures sorted by (experiment, cell
// index), so reporting is deterministic regardless of worker scheduling.
func (r *RunReport) Failures() []Failure {
	r.mu.Lock()
	out := append([]Failure(nil), r.failures...)
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Experiment != out[j].Experiment {
			return out[i].Experiment < out[j].Experiment
		}
		return out[i].Cell < out[j].Cell
	})
	return out
}

// Counters exposes the failure counters ("cell-panics", "cell-timeouts",
// "cell-retries", "cell-recovered").
func (r *RunReport) Counters() *trace.Counters { return r.counters }

func (r *RunReport) addTiming(ct metrics.CellTiming) {
	r.mu.Lock()
	r.timings = append(r.timings, ct)
	r.mu.Unlock()
}

// Timings returns the per-cell cost records of every grid cell run under
// this report, sorted by (experiment, cell index) so manifests are
// deterministic regardless of worker scheduling. Wall-clock fields are
// machine-dependent; everything else (identity, attempts, failed) is not.
func (r *RunReport) Timings() []metrics.CellTiming {
	r.mu.Lock()
	out := append([]metrics.CellTiming(nil), r.timings...)
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Experiment != out[j].Experiment {
			return out[i].Experiment < out[j].Experiment
		}
		return out[i].Cell < out[j].Cell
	})
	return out
}

// render returns the FAILED lines for one experiment id ("" = all), each
// newline-terminated; "" when the run was clean.
func (r *RunReport) render(exp string) string {
	var b strings.Builder
	for _, f := range r.Failures() {
		if exp != "" && f.Experiment != exp {
			continue
		}
		b.WriteString(f.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// String renders every recorded failure, one FAILED line each.
func (r *RunReport) String() string { return r.render("") }

// cellFail is the outcome of one failed attempt.
type cellFail struct {
	reason  string
	stack   string
	timeout bool
}

// firstLine flattens a panic value to its first line for deterministic
// rendering.
func firstLine(v any) string {
	s := fmt.Sprint(v)
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		s = s[:i]
	}
	return s
}

// attempt runs cell i once. With no deadline it runs inline; with one, it
// runs in a goroutine raced against a timer. A cell that overruns its
// deadline is cancelled from the scheduler's point of view: the worker
// stops waiting and moves on, and the abandoned goroutine parks its
// eventual result in a buffered channel nobody reads, so a late completion
// can never race the merged results.
func (g *Grid[T]) attempt(i int, deadline time.Duration) (val T, fail *cellFail) {
	if deadline <= 0 {
		func() {
			defer func() {
				if p := recover(); p != nil {
					fail = &cellFail{reason: firstLine(p), stack: string(debug.Stack())}
				}
			}()
			val = g.cells[i]()
		}()
		return val, fail
	}
	type res struct {
		val  T
		fail *cellFail
	}
	ch := make(chan res, 1)
	go func() {
		var r res
		defer func() { ch <- r }()
		defer func() {
			if p := recover(); p != nil {
				r.fail = &cellFail{reason: firstLine(p), stack: string(debug.Stack())}
			}
		}()
		r.val = g.cells[i]()
	}()
	t := time.NewTimer(deadline)
	defer t.Stop()
	select {
	case r := <-ch:
		return r.val, r.fail
	case <-t.C:
		return val, &cellFail{
			reason:  fmt.Sprintf("cell deadline %s exceeded", deadline),
			timeout: true,
		}
	}
}

// heapAllocBytes reads the process-wide cumulative heap allocation total —
// cheaper than runtime.ReadMemStats (no stop-the-world) and good enough for
// the per-cell budget deltas the manifest records. Under concurrent workers
// the delta includes other cells' allocations; metrics.CellTiming documents
// the caveat.
func heapAllocBytes() int64 {
	s := []rtmetrics.Sample{{Name: "/gc/heap/allocs:bytes"}}
	rtmetrics.Read(s)
	if s[0].Value.Kind() == rtmetrics.KindUint64 {
		return int64(s[0].Value.Uint64())
	}
	return 0
}

// runCell evaluates cell i with o's deadline and retry budget, storing the
// result into out on success. It returns the attributed failure once the
// budget is exhausted, nil on success. With a Report or Metrics configured
// the cell's total cost (wall clock across all attempts, heap allocation
// delta when a registry is attached) is recorded as a CellTiming and into
// the "grid/cell" timer.
func (g *Grid[T]) runCell(i int, o Options, out []T) *Failure {
	instr := o.Metrics != nil
	record := instr || o.Report != nil
	var start time.Time
	var alloc0 int64
	if record {
		start = time.Now()
		if instr {
			alloc0 = heapAllocBytes()
		}
	}
	f, attempts := g.runCellAttempts(i, o, out)
	if record {
		wall := time.Since(start)
		var allocs int64
		if instr {
			allocs = heapAllocBytes() - alloc0
			o.Metrics.Counter("grid/cells").Inc()
			o.Metrics.Timer("grid/cell").Observe(wall, allocs)
		}
		if o.Report != nil {
			o.Report.addTiming(metrics.CellTiming{
				Experiment: o.Name,
				Cell:       i,
				Label:      g.labels[i],
				Attempts:   attempts,
				Failed:     f != nil,
				WallNs:     int64(wall),
				AllocBytes: allocs,
			})
		}
	}
	return f
}

// runCellAttempts is runCell's retry loop, returning the final failure (nil
// on success) and the number of attempts actually made.
func (g *Grid[T]) runCellAttempts(i int, o Options, out []T) (*Failure, int) {
	attempts := 1 + o.Retries
	if attempts < 1 {
		attempts = 1
	}
	var last *cellFail
	for a := 1; a <= attempts; a++ {
		val, fail := g.attempt(i, o.CellTimeout)
		if fail == nil {
			out[i] = val
			if a > 1 && o.Report != nil {
				o.Report.counters.Add("cell-recovered", 1)
			}
			return nil, a
		}
		last = fail
		if o.Report != nil {
			if fail.timeout {
				o.Report.counters.Add("cell-timeouts", 1)
			} else {
				o.Report.counters.Add("cell-panics", 1)
			}
			if a < attempts {
				o.Report.counters.Add("cell-retries", 1)
			}
		}
	}
	return &Failure{
		Experiment: o.Name,
		Cell:       i,
		Label:      g.labels[i],
		Attempts:   attempts,
		Reason:     last.reason,
		Stack:      last.stack,
	}, attempts
}

// Run evaluates every cell on up to o.workers() concurrent workers and
// returns the results in declaration order. With one worker the cells run
// in the calling goroutine in declaration order — exactly the historical
// sequential behaviour.
//
// With o.Report set the run is self-healing (see the file comment): failed
// cells leave the zero T in their slot and are recorded in the report.
// Without it, a failing cell panics Run with the cell index and the
// original message; when several cells fail, the lowest index wins, so
// even failures are deterministic.
func (g *Grid[T]) Run(o Options) []T {
	out := make([]T, len(g.cells))
	workers := o.workers()
	if workers > len(g.cells) {
		workers = len(g.cells)
	}
	heal := o.Report != nil

	// notify serialises Progress callbacks across workers and keeps the
	// done/failed tallies; the callback itself never runs concurrently.
	var progMu sync.Mutex
	done, failed := 0, 0
	notify := func(cellFailed bool) {
		if o.Progress == nil {
			return
		}
		progMu.Lock()
		done++
		if cellFailed {
			failed++
		}
		o.Progress(Progress{Experiment: o.Name, Done: done, Total: len(g.cells), Failed: failed})
		progMu.Unlock()
	}

	if workers <= 1 {
		for i := range g.cells {
			f := g.runCell(i, o, out)
			notify(f != nil)
			if f != nil {
				if heal {
					o.Report.add(*f)
					continue
				}
				panic(fmt.Sprintf("experiment: grid cell %d: %s\n%s",
					f.Cell, f.Reason, f.Stack))
			}
		}
		return out
	}

	var (
		wg       sync.WaitGroup
		panicMu  sync.Mutex
		firstPan *Failure
	)
	idx := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				f := g.runCell(i, o, out)
				notify(f != nil)
				if f == nil {
					continue
				}
				if heal {
					o.Report.add(*f)
					continue
				}
				panicMu.Lock()
				if firstPan == nil || f.Cell < firstPan.Cell {
					firstPan = f
				}
				panicMu.Unlock()
			}
		}()
	}
	for i := range g.cells {
		idx <- i
	}
	close(idx)
	wg.Wait()
	if firstPan != nil {
		panic(fmt.Sprintf("experiment: grid cell %d: %s\n%s",
			firstPan.Cell, firstPan.Reason, firstPan.Stack))
	}
	return out
}

// runSeedGrid is the common grid shape: rows × o.seeds() cells, where
// fn(row, seed) computes one entry. Results come back as [row][seed], so
// runners aggregate with the same row-major, seed-minor loops they always
// used. Cells are labelled with their (row, seed) coordinates so failures
// stay attributable.
func runSeedGrid[T any](o Options, rows int, fn func(row, seed int) T) [][]T {
	seeds := o.seeds()
	var g Grid[T]
	for row := 0; row < rows; row++ {
		for seed := 0; seed < seeds; seed++ {
			row, seed := row, seed
			g.AddLabeled(fmt.Sprintf("row=%d seed=%d", row, seed),
				func() T { return fn(row, seed) })
		}
	}
	flat := g.Run(o)
	out := make([][]T, rows)
	for row := 0; row < rows; row++ {
		out[row] = flat[row*seeds : (row+1)*seeds]
	}
	return out
}
