package experiment

import (
	"context"
	"encoding/json"
	"fmt"
	"reflect"
	"runtime/debug"
	rtmetrics "runtime/metrics"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"udwn/internal/checkpoint"
	"udwn/internal/metrics"
	"udwn/internal/sim"
	"udwn/internal/trace"
)

// This file is the parallel execution engine of the experiment suite.
//
// Every experiment is a (cell × seed) grid whose entries are pure functions
// of their captured parameters — DESIGN.md §4 makes each simulation run a
// pure function of (topology seed, run seed) — so the grid can be evaluated
// in any order, on any number of workers, and still merge into the exact
// same table or plot. Runners declare their cells in report order, the
// scheduler fans them out, and Run returns the results indexed by
// declaration order regardless of completion order. Aggregation then happens
// sequentially in the runner, so floating-point accumulation order (and
// therefore the rendered output) is byte-identical for every worker count.
//
// The purity contract for a Cell: construct every Network, Sim, driver and
// tracker it uses inside the closure (using the Options the scheduler
// passes in, not variables shared with other cells), and do not touch
// state outside the closure. The sim stack holds no package-level mutable
// state (all randomness flows through per-Sim rng.Sources; package vars are
// interface assertions only), so cells built this way are data-race free by
// construction. TestParallelRace and the -race tier-1 gate enforce this.
//
// The scheduler is self-healing: with Options.Report set, a panicking or
// deadline-overrunning cell no longer aborts the run. The failure is
// attributed to its (experiment, cell index, label) identity — labels carry
// the (row, seed) grid coordinates — retried within Options.Retries, and
// finally recorded in the RunReport while every other cell completes. The
// rendered output marks degraded cells as explicit FAILED(...) lines.
// Without a Report, Run keeps the historical behaviour: it panics with the
// lowest failing cell index, so even failures are deterministic.
//
// With Options.Checkpoint set the scheduler is additionally resumable: the
// purity of cells makes their results perfectly cacheable, so before
// scheduling a labelled cell the grid consults the content-addressed store
// (key: experiment id, grid label, and a schema string covering the result
// type shape and the options that scale cell values). A hit replays the
// stored result, the cell's metrics snapshot and its original attempt
// count — through the same declaration-order merge slots a live run uses —
// and a miss runs the cell and appends it to the store the moment it
// completes, so an interrupted sweep loses at most the cells in flight.
// To attribute per-cell metrics exactly (a prerequisite for replay), each
// checkpointed attempt runs against a private registry that is merged into
// the shared one only on success; FAILED cells are never stored, keeping
// the self-healing retry path live across resumes.

// Cell is one independent unit of an experiment grid: a closure returning
// the typed measurements of a single (cell, seed) entry. The scheduler
// passes in the Options the cell must thread into its simulations (via
// Options.sim) — under checkpointing they carry a private metrics registry
// so the cell's instrumentation can be stored and replayed.
type Cell[T any] func(o Options) T

// Grid is an ordered collection of cells. The zero value is ready to use.
type Grid[T any] struct {
	cells  []Cell[T]
	labels []string
}

// Add declares the next cell in merge order with no identity label.
// Unlabelled cells are never checkpointed: the label is the cell's identity
// in the store.
func (g *Grid[T]) Add(c Cell[T]) { g.AddLabeled("", c) }

// AddLabeled declares the next cell in merge order together with an
// identity label (e.g. "row=1 seed=3") used to attribute failures and to
// address the cell's checkpoint record.
func (g *Grid[T]) AddLabeled(label string, c Cell[T]) {
	g.cells = append(g.cells, c)
	g.labels = append(g.labels, label)
}

// Len returns the number of declared cells.
func (g *Grid[T]) Len() int { return len(g.cells) }

// Failure identifies one grid cell that produced no result: which
// experiment, which cell (declaration index plus the runner's label, which
// encodes the (row, seed) coordinates), how many attempts were made, and
// why the last one died.
type Failure struct {
	Experiment string
	Cell       int
	Label      string
	Attempts   int
	// Reason is the first line of the panic value, or the deadline message
	// for cells that overran their CellTimeout.
	Reason string
	// Stack is the goroutine stack of the last panicking attempt; empty
	// for timeouts. It is kept out of rendered output (stacks are not
	// byte-stable) but available for debugging.
	Stack string
	// cancelled marks a cell stopped by run-level cancellation
	// (Options.Context): it is neither recorded as FAILED nor retried —
	// Run raises a Cancelled panic once in-flight cells have drained.
	cancelled bool
}

// String renders the failure as the explicit marker experiment output
// embeds in place of the degraded cell's contribution.
func (f Failure) String() string {
	exp := f.Experiment
	if exp == "" {
		exp = "grid"
	}
	label := f.Label
	if label == "" {
		label = "?"
	}
	return fmt.Sprintf("FAILED(%s cell %d [%s] after %d attempt(s)): %s",
		exp, f.Cell, label, f.Attempts, f.Reason)
}

// RunReport collects the failures and failure counters of self-healing grid
// runs. One report may span several experiments (cmd/experiments shares one
// across the whole suite); it is safe for concurrent use by grid workers.
type RunReport struct {
	mu       sync.Mutex
	failures []Failure
	counters *trace.Counters
	timings  []metrics.CellTiming
}

// NewRunReport returns an empty report.
func NewRunReport() *RunReport {
	return &RunReport{counters: trace.NewCounters()}
}

func (r *RunReport) add(f Failure) {
	r.mu.Lock()
	r.failures = append(r.failures, f)
	r.mu.Unlock()
}

// Failures returns the recorded failures sorted by (experiment, cell
// index), so reporting is deterministic regardless of worker scheduling.
// The sort is stable: when one report accumulates several runs of the same
// experiment (retried sweeps, repeated ids on the command line), failures
// sharing an (experiment, cell) identity keep their recording order instead
// of flapping between renders.
func (r *RunReport) Failures() []Failure {
	r.mu.Lock()
	out := append([]Failure(nil), r.failures...)
	r.mu.Unlock()
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Experiment != out[j].Experiment {
			return out[i].Experiment < out[j].Experiment
		}
		return out[i].Cell < out[j].Cell
	})
	return out
}

// Counters exposes the failure counters ("cell-panics", "cell-timeouts",
// "cell-retries", "cell-recovered").
func (r *RunReport) Counters() *trace.Counters { return r.counters }

func (r *RunReport) addTiming(ct metrics.CellTiming) {
	r.mu.Lock()
	r.timings = append(r.timings, ct)
	r.mu.Unlock()
}

// Timings returns the per-cell cost records of every grid cell run under
// this report, sorted by (experiment, cell index) so manifests are
// deterministic regardless of worker scheduling; like Failures the sort is
// stable so duplicate identities cannot reorder across runs. Wall-clock
// fields are machine-dependent; everything else (identity, attempts,
// failed) is not.
func (r *RunReport) Timings() []metrics.CellTiming {
	r.mu.Lock()
	out := append([]metrics.CellTiming(nil), r.timings...)
	r.mu.Unlock()
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Experiment != out[j].Experiment {
			return out[i].Experiment < out[j].Experiment
		}
		return out[i].Cell < out[j].Cell
	})
	return out
}

// render returns the FAILED lines for one experiment id ("" = all), each
// newline-terminated; "" when the run was clean.
func (r *RunReport) render(exp string) string {
	var b strings.Builder
	for _, f := range r.Failures() {
		if exp != "" && f.Experiment != exp {
			continue
		}
		b.WriteString(f.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// String renders every recorded failure, one FAILED line each.
func (r *RunReport) String() string { return r.render("") }

// cellFail is the outcome of one failed attempt.
type cellFail struct {
	reason  string
	stack   string
	timeout bool
	// cancelled marks an attempt that ended on a sim.Cancelled panic: the
	// cell's context fired and the simulation stopped cooperatively. The
	// retry loop maps it to a deadline failure when the cell's own timeout
	// caused it, and to a run-level cancellation when Options.Context did.
	cancelled bool
}

// Cancelled is the panic value Grid.Run raises when Options.Context is
// cancelled mid-run: dispatch has stopped, in-flight cells have drained
// (finished normally, or stopped at their next tick under HardCancel), and
// every completed cell has committed to the checkpoint store when one is
// attached. Callers that installed the context recover it — cmd/experiments
// to write an interrupted manifest, the jobs daemon to park or fail the job.
type Cancelled struct {
	// Experiment is the interrupted run's id ("" outside the registry).
	Experiment string
	// Done counts cells that completed (including FAILED ones) before the
	// run stopped; Total is the grid size.
	Done, Total int
}

func (c Cancelled) String() string {
	exp := c.Experiment
	if exp == "" {
		exp = "grid"
	}
	return fmt.Sprintf("experiment: %s cancelled after %d/%d cells", exp, c.Done, c.Total)
}

// firstLine flattens a panic value to its first line for deterministic
// rendering.
func firstLine(v any) string {
	s := fmt.Sprint(v)
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		s = s[:i]
	}
	return s
}

// gridAbort is the sentinel value the test-only crash hook panics with once
// Options.abortAfterCells cells have committed. Tests recover it to
// simulate a run killed mid-sweep without tearing down the process.
type gridAbort struct{ committed int }

func (a gridAbort) String() string {
	return fmt.Sprintf("experiment: grid aborted by test hook after %d committed cell(s)", a.committed)
}

// cellCache binds a grid run to its checkpoint store: the store handle plus
// the schema string that — together with the experiment id and each cell's
// label — forms the content address of every record this run reads or
// writes.
type cellCache struct {
	store  *checkpoint.Store
	schema string
}

// newCellCache derives the run's cache binding. The schema string captures
// everything besides (experiment, label) that determines a cell's value or
// its stored instrumentation: the structural shape of T (stale shapes must
// miss, not mis-decode), Quick (which rescales every cell), and whether
// metrics — and the optional index counters — are being collected (which
// changes what a record's snapshot must replay).
func newCellCache[T any](o Options) *cellCache {
	if o.Checkpoint == nil {
		return nil
	}
	schema := fmt.Sprintf("v1|quick=%t|metrics=%t|idx=%t|%s",
		o.Quick, o.Metrics != nil, o.IndexMetrics,
		checkpoint.SchemaOf(reflect.TypeOf((*T)(nil)).Elem()))
	return &cellCache{store: o.Checkpoint, schema: schema}
}

func (c *cellCache) key(experiment, label string) checkpoint.Key {
	return checkpoint.KeyOf(experiment, label, c.schema)
}

// recoverFail maps a recovered panic value to a cellFail: a sim.Cancelled
// sentinel becomes a cancellation outcome (no stack — it is an expected
// control transfer, not a bug), anything else a genuine cell panic.
func recoverFail(p any) *cellFail {
	if c, ok := p.(sim.Cancelled); ok {
		return &cellFail{reason: c.String(), cancelled: true}
	}
	return &cellFail{reason: firstLine(p), stack: string(debug.Stack())}
}

// attempt runs cell i once against co. With no deadline it runs inline;
// with one, it runs in a goroutine raced against a timer. A cell that
// overruns its deadline is cancelled from the scheduler's point of view —
// the worker stops waiting and moves on — and, because co.Context carries
// the same deadline, the cell's simulation panics sim.Cancelled at its next
// tick, so the goroutine terminates instead of leaking. Its parked result
// goes to a buffered channel nobody reads, so a late completion can never
// race the merged results; cells that never consult the context (plain
// closures) are merely abandoned, exactly the historical behaviour.
func (g *Grid[T]) attempt(i int, co Options, deadline time.Duration) (val T, fail *cellFail) {
	if deadline <= 0 {
		func() {
			defer func() {
				if p := recover(); p != nil {
					fail = recoverFail(p)
				}
			}()
			val = g.cells[i](co)
		}()
		return val, fail
	}
	type res struct {
		val  T
		fail *cellFail
	}
	ch := make(chan res, 1)
	go func() {
		var r res
		defer func() { ch <- r }()
		defer func() {
			if p := recover(); p != nil {
				r.fail = recoverFail(p)
			}
		}()
		r.val = g.cells[i](co)
	}()
	t := time.NewTimer(deadline)
	defer t.Stop()
	select {
	case r := <-ch:
		return r.val, r.fail
	case <-t.C:
		return val, &cellFail{
			reason:  fmt.Sprintf("cell deadline %s exceeded", deadline),
			timeout: true,
		}
	}
}

// heapAllocBytes reads the process-wide cumulative heap allocation total —
// cheaper than runtime.ReadMemStats (no stop-the-world) and good enough for
// the per-cell budget deltas the manifest records. Under concurrent workers
// the delta includes other cells' allocations; metrics.CellTiming documents
// the caveat.
func heapAllocBytes() int64 {
	s := []rtmetrics.Sample{{Name: "/gc/heap/allocs:bytes"}}
	rtmetrics.Read(s)
	if s[0].Value.Kind() == rtmetrics.KindUint64 {
		return int64(s[0].Value.Uint64())
	}
	return 0
}

// runCell evaluates cell i with o's deadline and retry budget, storing the
// result into out on success. It returns the attributed failure once the
// budget is exhausted, nil on success. With a Report or Metrics configured
// the cell's total cost (wall clock across all attempts, heap allocation
// delta when a registry is attached) is recorded as a CellTiming and into
// the "grid/cell" timer. With cc non-nil a successful labelled cell is
// appended to the checkpoint store together with its private metrics
// snapshot and attempt count.
func (g *Grid[T]) runCell(i int, o Options, cc *cellCache, out []T) *Failure {
	if cc != nil && g.labels[i] != "" {
		// Single-flight: when another goroutine — typically another job
		// sharing the daemon's store — is computing this exact cell, wait
		// for its committed record instead of duplicating the work. The
		// leader computes below and resolves the flight on every exit path
		// (deferred, so a panicking cell still releases its waiters); a
		// leader that fails or is cancelled commits nothing, which promotes
		// one waiter to recompute. A waiter whose run context fires during
		// the wait falls through and computes on its own.
		key := cc.key(o.Name, g.labels[i])
		rec, leader := cc.store.JoinFlight(o.Context, key)
		if !leader && rec != nil && g.replayCell(i, o, rec, out) {
			return nil
		}
		if leader {
			defer cc.store.LeaveFlight(key)
		}
	}
	instr := o.Metrics != nil
	record := instr || o.Report != nil
	var start time.Time
	var alloc0 int64
	if record {
		start = time.Now()
		if instr {
			alloc0 = heapAllocBytes()
		}
	}
	f, attempts, cellReg := g.runCellAttempts(i, o, cc, out)
	if f != nil && f.cancelled {
		// A run-cancelled cell neither completed nor failed: it leaves no
		// timing record, no FAILED marker and no checkpoint entry, and is
		// recomputed by the resumed run.
		return f
	}
	if record {
		wall := time.Since(start)
		var allocs int64
		if instr {
			allocs = heapAllocBytes() - alloc0
			o.Metrics.Counter("grid/cells").Inc()
			o.Metrics.Timer("grid/cell").Observe(wall, allocs)
		}
		if o.Report != nil {
			o.Report.addTiming(metrics.CellTiming{
				Experiment: o.Name,
				Cell:       i,
				Label:      g.labels[i],
				Attempts:   attempts,
				Failed:     f != nil,
				WallNs:     int64(wall),
				AllocBytes: allocs,
			})
		}
	}
	if f == nil && cc != nil && g.labels[i] != "" {
		g.storeCell(i, o, cc, cellReg, attempts, out)
	}
	return f
}

// storeCell appends cell i's freshly computed result to the checkpoint
// store. Storage failures are counted in the store's session stats and
// otherwise ignored: the run already holds the correct value, the cell is
// simply not cached.
func (g *Grid[T]) storeCell(i int, o Options, cc *cellCache, cellReg *metrics.Registry, attempts int, out []T) {
	value, err := checkpoint.EncodeValue(&out[i])
	if err != nil {
		cc.store.NoteError()
		return
	}
	var snap []byte
	if cellReg != nil {
		// Timing fields are zeroed so the stored bytes — and therefore the
		// store's content hash — are a pure function of the cell's
		// coordinates.
		snap, err = json.Marshal(cellReg.Snapshot().ZeroTimings())
		if err != nil {
			cc.store.NoteError()
			return
		}
	}
	// Put's error path already counted the failure; nothing else to do.
	_ = cc.store.Put(checkpoint.Record{
		Experiment: o.Name,
		Label:      g.labels[i],
		Schema:     cc.schema,
		Attempts:   attempts,
		Value:      value,
		Metrics:    snap,
	})
}

// replayCell serves cell i from its checkpoint record: the stored value
// lands in the cell's declaration-order slot, the stored metrics snapshot
// merges into the run registry, and the bookkeeping a live run would emit —
// "grid/cells", the "grid/cell" timer, the CellTiming with the cell's
// original attempt count — is emitted identically, so a resumed run's
// manifest matches an uninterrupted one byte for byte (modulo the timing
// fields ZeroTimings clears). A decode failure reports false and the cell
// runs fresh.
func (g *Grid[T]) replayCell(i int, o Options, rec *checkpoint.Record, out []T) bool {
	var val T
	if err := checkpoint.DecodeValue(rec.Value, &val); err != nil {
		o.Checkpoint.NoteError()
		return false
	}
	if o.Metrics != nil && len(rec.Metrics) > 0 {
		var snap metrics.Snapshot
		if err := json.Unmarshal(rec.Metrics, &snap); err != nil {
			o.Checkpoint.NoteError()
			return false
		}
		o.Metrics.MergeSnapshot(&snap)
	}
	out[i] = val
	if o.Metrics != nil {
		o.Metrics.Counter("grid/cells").Inc()
		o.Metrics.Timer("grid/cell").Observe(0, 0)
	}
	if o.Report != nil {
		o.Report.addTiming(metrics.CellTiming{
			Experiment: o.Name,
			Cell:       i,
			Label:      g.labels[i],
			Attempts:   rec.Attempts,
		})
	}
	return true
}

// cellContext derives the context one cell attempt runs under: the run
// context when HardCancel propagates it, tightened by the per-cell deadline
// when one is set. The returned cancel func must be called when the attempt
// resolves; both returns are nil when the cell needs no context at all.
func cellContext(o Options) (context.Context, context.CancelFunc) {
	var base context.Context
	if o.HardCancel && o.Context != nil {
		base = o.Context
	}
	if o.CellTimeout <= 0 {
		return base, nil
	}
	if base == nil {
		base = context.Background()
	}
	return context.WithTimeout(base, o.CellTimeout)
}

// runCellAttempts is runCell's retry loop, returning the final failure (nil
// on success), the number of attempts actually made, and — under
// checkpointing — the private registry the successful attempt recorded
// into. Each checkpointed attempt gets a fresh registry merged into the
// shared one only on success, so a panicking attempt's partial
// instrumentation never leaks into the run totals or the store.
//
// Each attempt runs under its own context (see cellContext): a deadline
// overrun stops the simulation cooperatively and is retried like any
// timeout, while a run-level cancellation under HardCancel ends the loop
// immediately with a cancelled failure that Run translates into a Cancelled
// panic rather than a FAILED record.
func (g *Grid[T]) runCellAttempts(i int, o Options, cc *cellCache, out []T) (*Failure, int, *metrics.Registry) {
	attempts := 1 + o.Retries
	if attempts < 1 {
		attempts = 1
	}
	isolate := cc != nil && o.Metrics != nil
	var last *cellFail
	for a := 1; a <= attempts; a++ {
		co := o
		var cellReg *metrics.Registry
		if isolate {
			cellReg = metrics.NewRegistry()
			co.Metrics = cellReg
		}
		ctx, cancel := cellContext(o)
		co.Context = ctx
		val, fail := g.attempt(i, co, o.CellTimeout)
		if cancel != nil {
			cancel()
		}
		if fail != nil && fail.cancelled {
			if o.Context != nil && o.Context.Err() != nil {
				// The run itself was cancelled; surface that, untallied.
				return &Failure{
					Experiment: o.Name,
					Cell:       i,
					Label:      g.labels[i],
					Attempts:   a,
					Reason:     fail.reason,
					cancelled:  true,
				}, a, nil
			}
			// The cell's own deadline stopped the simulation before the
			// scheduler's timer fired; treat it exactly like a timeout.
			fail.timeout = true
		}
		if fail == nil {
			out[i] = val
			if isolate {
				o.Metrics.MergeSnapshot(cellReg.Snapshot())
			}
			if a > 1 && o.Report != nil {
				o.Report.counters.Add("cell-recovered", 1)
			}
			return nil, a, cellReg
		}
		last = fail
		if o.Report != nil {
			if fail.timeout {
				o.Report.counters.Add("cell-timeouts", 1)
			} else {
				o.Report.counters.Add("cell-panics", 1)
			}
			if a < attempts {
				o.Report.counters.Add("cell-retries", 1)
			}
		}
	}
	return &Failure{
		Experiment: o.Name,
		Cell:       i,
		Label:      g.labels[i],
		Attempts:   attempts,
		Reason:     last.reason,
		Stack:      last.stack,
	}, attempts, nil
}

// Run evaluates every cell on up to o.workers() concurrent workers and
// returns the results in declaration order. With one worker the cells run
// in the calling goroutine in declaration order — exactly the historical
// sequential behaviour.
//
// With o.Report set the run is self-healing (see the file comment): failed
// cells leave the zero T in their slot and are recorded in the report.
// Without it, a failing cell panics Run with the cell index and the
// original message; when several cells fail, the lowest index wins, so
// even failures are deterministic.
//
// With o.Checkpoint set, labelled cells already present in the store are
// replayed instead of scheduled (see the file comment) and fresh results
// are appended as they complete; the merged output is byte-identical
// either way.
func (g *Grid[T]) Run(o Options) []T {
	out := make([]T, len(g.cells))
	workers := o.workers()
	if workers > len(g.cells) {
		workers = len(g.cells)
	}
	heal := o.Report != nil
	cc := newCellCache[T](o)

	// notify serialises Progress callbacks across workers and keeps the
	// done/failed tallies (also the Done payload of a Cancelled panic); the
	// callback itself never runs concurrently.
	var progMu sync.Mutex
	done, failed := 0, 0
	notify := func(cellFailed bool) {
		progMu.Lock()
		done++
		if cellFailed {
			failed++
		}
		if o.Progress != nil {
			o.Progress(Progress{Experiment: o.Name, Done: done, Total: len(g.cells), Failed: failed})
		}
		progMu.Unlock()
	}

	// stopped reports run-level cancellation; once it fires the scheduler
	// dispatches no further cells and Run ends in a Cancelled panic after
	// the in-flight ones drain.
	stopped := func() bool { return o.Context != nil && o.Context.Err() != nil }
	raiseCancelled := func() {
		panic(Cancelled{Experiment: o.Name, Done: done, Total: len(g.cells)})
	}

	// committed implements the test-only crash hook: cells that completed —
	// run, replayed, or recorded as FAILED — count toward the abort
	// threshold, and crossing it makes Run panic with a gridAbort sentinel
	// once in-flight cells have drained.
	var committed atomic.Int64
	abort := func() bool {
		return o.abortAfterCells > 0 &&
			committed.Add(1) >= int64(o.abortAfterCells)
	}

	// fromStore consults the checkpoint for cell i, replaying it into its
	// merge slot on a hit.
	fromStore := func(i int) bool {
		if cc == nil || g.labels[i] == "" {
			return false
		}
		rec, ok := cc.store.Lookup(cc.key(o.Name, g.labels[i]))
		return ok && g.replayCell(i, o, rec, out)
	}

	if workers <= 1 {
		for i := range g.cells {
			if stopped() {
				raiseCancelled()
			}
			if fromStore(i) {
				notify(false)
				if abort() {
					panic(gridAbort{committed: int(committed.Load())})
				}
				continue
			}
			f := g.runCell(i, o, cc, out)
			if f != nil && f.cancelled {
				raiseCancelled()
			}
			notify(f != nil)
			if f != nil {
				if !heal {
					panic(fmt.Sprintf("experiment: grid cell %d: %s\n%s",
						f.Cell, f.Reason, f.Stack))
				}
				o.Report.add(*f)
			}
			if abort() {
				panic(gridAbort{committed: int(committed.Load())})
			}
		}
		return out
	}

	var (
		wg       sync.WaitGroup
		panicMu  sync.Mutex
		firstPan *Failure
		aborted  atomic.Bool
	)
	idx := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				f := g.runCell(i, o, cc, out)
				if f != nil && f.cancelled {
					// Run-level cancellation: the dispatcher observes the
					// context and stops feeding idx; this cell simply
					// produced nothing.
					continue
				}
				notify(f != nil)
				if abort() {
					aborted.Store(true)
				}
				if f == nil {
					continue
				}
				if heal {
					o.Report.add(*f)
					continue
				}
				panicMu.Lock()
				if firstPan == nil || f.Cell < firstPan.Cell {
					firstPan = f
				}
				panicMu.Unlock()
			}
		}()
	}
	dispatched := 0
	for i := range g.cells {
		if aborted.Load() || stopped() {
			break
		}
		// Store hits are replayed on the dispatcher, serialising their
		// registry merges and progress callbacks in declaration order;
		// only genuine misses are fanned out.
		if fromStore(i) {
			dispatched++
			notify(false)
			if abort() {
				aborted.Store(true)
			}
			continue
		}
		idx <- i
		dispatched++
	}
	close(idx)
	wg.Wait()
	if firstPan != nil {
		panic(fmt.Sprintf("experiment: grid cell %d: %s\n%s",
			firstPan.Cell, firstPan.Reason, firstPan.Stack))
	}
	if aborted.Load() {
		panic(gridAbort{committed: int(committed.Load())})
	}
	// A context that fired only after every cell was dispatched and
	// completed interrupts nothing: the run is whole, return it.
	if stopped() && (dispatched < len(g.cells) || done < len(g.cells)) {
		raiseCancelled()
	}
	return out
}

// runSeedGrid is the common grid shape: rows × o.seeds() cells, where
// fn(o, row, seed) computes one entry with the scheduler-supplied Options
// threaded into every simulation it builds. Results come back as
// [row][seed], so runners aggregate with the same row-major, seed-minor
// loops they always used. Cells are labelled with their (row, seed)
// coordinates, which both attributes failures and addresses the cells'
// checkpoint records.
func runSeedGrid[T any](o Options, rows int, fn func(o Options, row, seed int) T) [][]T {
	seeds := o.seeds()
	var g Grid[T]
	for row := 0; row < rows; row++ {
		for seed := 0; seed < seeds; seed++ {
			row, seed := row, seed
			g.AddLabeled(fmt.Sprintf("row=%d seed=%d", row, seed),
				func(co Options) T { return fn(co, row, seed) })
		}
	}
	flat := g.Run(o)
	out := make([][]T, rows)
	for row := 0; row < rows; row++ {
		out[row] = flat[row*seeds : (row+1)*seeds]
	}
	return out
}
