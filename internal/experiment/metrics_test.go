package experiment

import (
	"os"
	"path/filepath"
	"testing"

	"udwn/internal/metrics"
)

// metricsTargets are the experiments the determinism suite instruments:
// one table (dense seed grid over several rows) and one figure (plot
// pipeline), enough to cover both merge paths.
var metricsTargets = []string{"figure1", "table1"}

func findExperiment(t *testing.T, id string) Experiment {
	t.Helper()
	for _, e := range All() {
		if e.ID == id {
			return e
		}
	}
	t.Fatalf("unknown experiment %q", id)
	return Experiment{}
}

// runInstrumented executes one experiment with a fresh registry and report
// attached, returning both.
func runInstrumented(t *testing.T, id string, workers int) (*metrics.Registry, *RunReport) {
	t.Helper()
	e := findExperiment(t, id)
	o := QuickOptions()
	o.Workers = workers
	o.Metrics = metrics.NewRegistry()
	o.Report = NewRunReport()
	_ = e.Run(o).String()
	return o.Metrics, o.Report
}

// TestMetricsWorkersDeterminism is the acceptance gate of the metrics
// layer's determinism contract: the timing-zeroed snapshot of a fully
// instrumented experiment run is byte-identical across worker counts, and
// pinned to a committed golden so instrumentation drift is visible in
// review. Refresh after an intentional change with:
//
//	go test ./internal/experiment -run TestMetricsWorkersDeterminism -update
func TestMetricsWorkersDeterminism(t *testing.T) {
	for _, id := range metricsTargets {
		id := id
		t.Run(id, func(t *testing.T) {
			t.Parallel()
			reg1, _ := runInstrumented(t, id, 1)
			reg8, _ := runInstrumented(t, id, 8)
			s1 := reg1.Snapshot().ZeroTimings().String()
			s8 := reg8.Snapshot().ZeroTimings().String()
			if s1 != s8 {
				t.Fatalf("metrics snapshot differs across worker counts.\n--- workers=1 ---\n%s\n--- workers=8 ---\n%s", s1, s8)
			}
			path := filepath.Join("testdata", "metrics_"+id+".golden")
			if *update {
				if err := os.WriteFile(path, []byte(s1), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden (run with -update to create): %v", err)
			}
			if s1 != string(want) {
				t.Fatalf("%s metrics drifted from %s.\nIf intentional, refresh with -update.\n--- got ---\n%s\n--- want ---\n%s",
					id, path, s1, want)
			}
		})
	}
}

// TestManifestWorkersDeterminism extends the contract to the run manifest:
// after ZeroTimings, the JSON rendering — metric snapshot, per-cell timing
// records, counters — is byte-identical across worker counts.
func TestManifestWorkersDeterminism(t *testing.T) {
	for _, id := range metricsTargets {
		id := id
		t.Run(id, func(t *testing.T) {
			t.Parallel()
			render := func(workers int) string {
				reg, rep := runInstrumented(t, id, workers)
				m := metrics.NewManifest("experiment-test")
				m.SetConfig("experiment", id)
				m.Metrics = reg.Snapshot()
				m.Counters = rep.Counters().Map()
				m.Cells = rep.Timings()
				m.ZeroTimings()
				out, err := m.MarshalIndent()
				if err != nil {
					t.Fatal(err)
				}
				return string(out)
			}
			m1, m8 := render(1), render(8)
			if m1 != m8 {
				t.Fatalf("manifest differs across worker counts.\n--- workers=1 ---\n%s\n--- workers=8 ---\n%s", m1, m8)
			}
		})
	}
}

// TestProgressReporting checks the grid's Progress callback contract: it is
// serialised (no concurrent invocations), Done increases by exactly one per
// call from 1 to Total, and Total matches the declared grid size.
func TestProgressReporting(t *testing.T) {
	for _, workers := range []int{1, 4} {
		var events []Progress
		e := findExperiment(t, "table1")
		o := QuickOptions()
		o.Workers = workers
		o.Progress = func(p Progress) { events = append(events, p) }
		_ = e.Run(o).String()

		if len(events) == 0 {
			t.Fatalf("workers=%d: no progress events", workers)
		}
		total := events[0].Total
		if total != len(events) {
			t.Fatalf("workers=%d: got %d events, Total=%d", workers, len(events), total)
		}
		for i, p := range events {
			if p.Done != i+1 {
				t.Fatalf("workers=%d: event %d has Done=%d, want %d", workers, i, p.Done, i+1)
			}
			if p.Total != total {
				t.Fatalf("workers=%d: event %d has Total=%d, want %d", workers, i, p.Total, total)
			}
			if p.Experiment != "table1" {
				t.Fatalf("workers=%d: event %d has Experiment=%q", workers, i, p.Experiment)
			}
			if p.Failed != 0 {
				t.Fatalf("workers=%d: event %d reports %d failures on a clean run", workers, i, p.Failed)
			}
		}
	}
}

// TestCellTimings checks that every grid cell of an instrumented run left a
// timing record with its identity and a positive wall-clock cost, and that
// the "grid/cells" counter agrees.
func TestCellTimings(t *testing.T) {
	reg, rep := runInstrumented(t, "table1", 2)
	timings := rep.Timings()
	if len(timings) == 0 {
		t.Fatal("no cell timings recorded")
	}
	if got := reg.Snapshot(); countOf(t, got, "grid/cells") != int64(len(timings)) {
		t.Fatalf("grid/cells counter %d != %d timing records", countOf(t, got, "grid/cells"), len(timings))
	}
	for i, ct := range timings {
		if ct.Experiment != "table1" {
			t.Fatalf("timing %d: experiment %q", i, ct.Experiment)
		}
		if ct.Label == "" {
			t.Fatalf("timing %d: empty label", i)
		}
		if ct.Attempts != 1 || ct.Failed {
			t.Fatalf("timing %d: attempts=%d failed=%v on a clean run", i, ct.Attempts, ct.Failed)
		}
		if ct.WallNs <= 0 {
			t.Fatalf("timing %d: non-positive wall time %d", i, ct.WallNs)
		}
	}
}

func countOf(t *testing.T, s *metrics.Snapshot, name string) int64 {
	t.Helper()
	for _, c := range s.Counters {
		if c.Name == name {
			return c.Value
		}
	}
	t.Fatalf("counter %q absent from snapshot", name)
	return 0
}
