package experiment

import (
	"bytes"
	"encoding/json"
	"fmt"
	"testing"

	"udwn/internal/sim"
	"udwn/internal/trace"
)

// teeWriter fans one event stream into the JSONL and binary recorders, so a
// single run produces both encodings of the identical sequence.
type teeWriter struct {
	a, b trace.Writer
}

func (t *teeWriter) Record(ev sim.SlotEvent) { t.a.Record(ev); t.b.Record(ev) }
func (t *teeWriter) Events() int             { return t.a.Events() }
func (t *teeWriter) Flush() error {
	if err := t.a.Flush(); err != nil {
		return err
	}
	return t.b.Flush()
}

// TestTraceDualFormatAllExperiments is the suite-level differential check of
// the trace layer: every experiment's quick grid runs with an observer that
// tees each slot event into a JSONL and a binary recorder, and the two
// decodings must be event-identical after normalization — at Workers=1 and
// on a concurrent grid (Workers=8, where cells interleave in completion
// order through the locked observer). Across worker counts the *multiset*
// of events must also agree, pinning that tracing does not perturb the
// deterministic grid.
func TestTraceDualFormatAllExperiments(t *testing.T) {
	if testing.Short() {
		t.Skip("dual-format suite skipped in -short mode")
	}
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			t.Parallel()
			var bySorted [][]byte
			for _, workers := range []int{1, 8} {
				t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
					var jb, bb bytes.Buffer
					jw := trace.NewJSONL(&jb)
					bw := trace.NewBinary(&bb)
					tee := &teeWriter{a: jw, b: bw}

					o := QuickOptions()
					o.Workers = workers
					o.Observer = trace.LockedObserver(tee)
					_ = e.Run(o)
					if err := tee.Flush(); err != nil {
						t.Fatal(err)
					}
					if jw.Events() == 0 {
						t.Fatal("experiment emitted no slot events; the comparison is vacuous")
					}

					jev, _, err := trace.ReadEvents(bytes.NewReader(jb.Bytes()))
					if err != nil {
						t.Fatalf("jsonl decode: %v", err)
					}
					bev, _, err := trace.ReadEvents(bytes.NewReader(bb.Bytes()))
					if err != nil {
						t.Fatalf("binary decode: %v", err)
					}
					ja, _ := json.Marshal(trace.Canonicalize(jev))
					ba, _ := json.Marshal(trace.Canonicalize(bev))
					if !bytes.Equal(ja, ba) {
						t.Fatalf("binary and JSONL decodings diverge (%d vs %d events)", len(jev), len(bev))
					}

					trace.SortEvents(bev)
					sorted, _ := json.Marshal(bev)
					bySorted = append(bySorted, sorted)
				})
			}
			if len(bySorted) == 2 && !bytes.Equal(bySorted[0], bySorted[1]) {
				t.Fatal("event multiset differs between Workers=1 and Workers=8")
			}
		})
	}
}
