package experiment

import (
	"fmt"
	"sort"

	"udwn"
	"udwn/internal/baseline"
	"udwn/internal/core"
	"udwn/internal/sim"
	"udwn/internal/stats"
	"udwn/internal/trace"
)

// Figure3CDF plots the per-node completion-time distribution of local
// broadcast: for each percentile, the tick by which that fraction of nodes
// had mass-delivered. The paper's strong optimality claim (LocalBcast is
// within constant factors on *every* instance) shows up as a short tail:
// the p99/p50 spread stays small, while Decay's multiplicative log n
// penalty stretches the whole curve upward.
func Figure3CDF(o Options) fmt.Stringer {
	n := 1024
	delta := 32
	if o.Quick {
		n, delta = 192, 16
	}
	phy := udwn.DefaultPHY()
	maxTicks := 600*delta + 200*n

	plot := trace.NewPlot(
		fmt.Sprintf("Figure 3: completion-time CDF (ticks by which a fraction of nodes mass-delivered; n=%d, Δ≈%d, %d seeds)",
			n, delta, o.seeds()),
		"percentile")
	lb := plot.NewSeries("LocalBcast")
	dec := plot.NewSeries("Decay")
	fix := plot.NewSeries("FixedProb")

	// Rows are the three protocols; each cell collects one seed's per-node
	// completion ticks.
	type proto struct {
		factory sim.ProtocolFactory
		opts    udwn.SimOptions
	}
	protos := []proto{
		{func(id int) sim.Protocol {
			return core.NewLocalBcast(n, int64(id))
		}, udwn.SimOptions{Primitives: sim.CD | sim.ACK}},
		{func(id int) sim.Protocol {
			return baseline.NewDecay(n, int64(id))
		}, udwn.SimOptions{Primitives: sim.FreeAck}},
		{func(id int) sim.Protocol {
			return baseline.NewFixedProb(delta, 1, int64(id))
		}, udwn.SimOptions{Primitives: sim.FreeAck}},
	}
	grid := runSeedGrid(o, len(protos), func(o Options, row, seed int) []float64 {
		nw := uniformNetwork(n, delta, phy, uint64(13000+seed))
		opts := protos[row].opts
		opts.Seed = uint64(seed + 1)
		s := mustSim(nw, protos[row].factory, o.sim(opts))
		s.RunUntil(func(s *sim.Sim) bool {
			for v := 0; v < n; v++ {
				if s.FirstMassDelivery(v) < 0 {
					return false
				}
			}
			return true
		}, maxTicks)
		ticks := make([]float64, 0, n)
		for v := 0; v < n; v++ {
			if t := s.FirstMassDelivery(v); t >= 0 {
				ticks = append(ticks, float64(t))
			} else {
				ticks = append(ticks, float64(maxTicks))
			}
		}
		return ticks
	})

	merge := func(row int) []float64 {
		var ticks []float64
		for _, seedTicks := range grid[row] {
			ticks = append(ticks, seedTicks...)
		}
		sort.Float64s(ticks)
		return ticks
	}
	lbTicks, decTicks, fixTicks := merge(0), merge(1), merge(2)

	for _, p := range []float64{5, 10, 25, 50, 75, 90, 95, 99} {
		lb.Add(p, stats.Percentile(lbTicks, p))
		dec.Add(p, stats.Percentile(decTicks, p))
		fix.Add(p, stats.Percentile(fixTicks, p))
	}
	plot.AddNote("p99 vs LocalBcast: Decay %.1fx, FixedProb %.1fx",
		stats.Percentile(decTicks, 99)/stats.Percentile(lbTicks, 99),
		stats.Percentile(fixTicks, 99)/stats.Percentile(lbTicks, 99))
	plot.AddNote("tail spread p99/p50: LocalBcast %.1f, Decay %.1f, FixedProb %.1f",
		ratio(lbTicks, 99, 50), ratio(decTicks, 99, 50), ratio(fixTicks, 99, 50))
	plot.AddNote("expected shape: LocalBcast's curve sits lowest at every percentile; the baselines' multiplicative penalty lifts their whole curve")
	return plot
}

func ratio(sorted []float64, hi, lo float64) float64 {
	l := stats.Percentile(sorted, lo)
	if l == 0 {
		return 0
	}
	return stats.Percentile(sorted, hi) / l
}
