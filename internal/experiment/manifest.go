package experiment

import (
	"strings"
	"time"

	"udwn/internal/metrics"
)

// BuildManifest assembles the machine-readable record of one suite run:
// effective configuration, the merged metric snapshot, auxiliary counters,
// per-cell timings, failure markers, and — when the run wrote through a
// checkpoint store — the store's content hash and cache traffic. It is
// shared by cmd/experiments and the crash/resume differential tests so both
// produce manifests with identical structure.
func BuildManifest(ids []string, o Options, report *RunReport, wall time.Duration) *metrics.Manifest {
	m := metrics.NewManifest("experiments")
	m.SetConfig("experiments", strings.Join(ids, " "))
	m.SetConfig("quick", o.Quick)
	m.SetConfig("seeds", o.Seeds)
	m.SetConfig("workers", o.Workers)
	m.SetConfig("retries", o.Retries)
	m.SetConfig("cell-timeout", o.CellTimeout)
	m.SetConfig("index-metrics", o.IndexMetrics)
	m.WallNs = int64(wall)
	if o.Metrics != nil {
		m.Metrics = o.Metrics.Snapshot()
	}
	m.Counters = report.Counters().Map()
	m.Cells = report.Timings()
	for _, f := range report.Failures() {
		m.Failures = append(m.Failures, f.String())
	}
	if cp := o.Checkpoint; cp != nil {
		st := cp.Stats()
		m.Checkpoint = &metrics.CheckpointInfo{
			Dir:       cp.Dir(),
			Resumed:   st.Resumed,
			Hits:      st.Hits,
			Misses:    st.Misses,
			Stores:    st.Stores,
			Errors:    st.Errors,
			TornBytes: st.TornBytes,
			Records:   st.Records,
			StoreHash: cp.Hash(),
		}
		// Mirror the traffic as checkpoint/* counters so counter-oriented
		// tooling sees cache behaviour next to the run-report counters.
		// Traffic describes run *history*, not run content, so
		// Manifest.ZeroTimings drops the prefix (see metrics.CheckpointInfo).
		m.Counters["checkpoint/hits"] = st.Hits
		m.Counters["checkpoint/misses"] = st.Misses
		m.Counters["checkpoint/stores"] = st.Stores
		if st.Errors > 0 {
			m.Counters["checkpoint/errors"] = st.Errors
		}
	}
	return m
}
