package experiment

import (
	"fmt"
	"math"

	"udwn"
	"udwn/internal/core"
	"udwn/internal/sim"
	"udwn/internal/stats"
)

// Table7NoCS quantifies the price of carrier sensing claimed in Appendix B:
// implementing the CD primitive "by other means" (probing epochs) costs a
// logarithmic factor. It runs the carrier-sense LocalBcast against
// NoCSLocalBcast, whose Try&Adjust round is stretched into an epoch of
// (⌈log₂ n⌉+1)·C probing slots, on the same workloads.
func Table7NoCS(o Options) fmt.Stringer {
	sizes := []int{128, 256, 512, 1024}
	if o.Quick {
		sizes = []int{64, 128}
	}
	delta := 12
	probes := 2
	phy := udwn.DefaultPHY()

	t := stats.NewTable(
		fmt.Sprintf("Table 7: the price of carrier sensing (LocalBcast vs probing CD, Δ≈%d, %d seeds)", delta, o.seeds()),
		"n", "epoch len", "LocalBcast(CD)", "NoCS(probing)", "NoCS/LB", "ratio/epoch")

	type cell struct{ LB, NoCS float64 }
	grid := runSeedGrid(o, len(sizes), func(o Options, row, seed int) cell {
		n := sizes[row]
		epoch := (int(math.Ceil(math.Log2(float64(n)))) + 1) * probes
		maxTicks := 3000 * epoch
		nw := uniformNetwork(n, delta, phy, uint64(11000+n+seed))
		runSeed := uint64(seed + 1)

		var c cell
		c.LB, _, _ = localRun(nw, n, func(id int) sim.Protocol {
			return core.NewLocalBcast(n, int64(id))
		}, o.sim(udwn.SimOptions{Seed: runSeed, Primitives: sim.CD | sim.ACK}), maxTicks)

		c.NoCS, _, _ = localRun(nw, n, func(id int) sim.Protocol {
			return core.NewNoCSLocalBcast(n, probes, int64(id))
		}, o.sim(udwn.SimOptions{Seed: runSeed, Primitives: sim.FreeAck}), maxTicks)
		return c
	})

	for row, n := range sizes {
		epoch := (int(math.Ceil(math.Log2(float64(n)))) + 1) * probes
		var lb, nocs []float64
		for _, c := range grid[row] {
			lb = append(lb, c.LB)
			nocs = append(nocs, c.NoCS)
		}
		ml, mn := stats.Mean(lb), stats.Mean(nocs)
		t.AddRowf(n, epoch, ml, mn,
			fmt.Sprintf("%.1f", mn/ml), fmt.Sprintf("%.2f", mn/ml/float64(epoch)))
	}
	t.AddNote("the probing protocol gets free acknowledgements (it has no threshold-ACK), yet pays the epoch factor")
	t.AddNote("expected shape: NoCS/LB tracks the epoch length (the App. B logarithmic overhead); ratio/epoch stays ≈ constant")
	return t
}
