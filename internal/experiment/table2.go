package experiment

import (
	"fmt"
	"math"

	"udwn"
	"udwn/internal/core"
	"udwn/internal/sim"
	"udwn/internal/stats"
)

// Table2LocalN sweeps the network size at fixed degree. Corollary 4.3
// predicts completion in O(Δ + log n): with Δ fixed, time grows only
// logarithmically in n. The spontaneous variant is uniform — it does not
// know n at all — and must track the standard variant closely.
func Table2LocalN(o Options) fmt.Stringer {
	sizes := []int{128, 256, 512, 1024, 2048, 4096}
	if o.Quick {
		sizes = []int{128, 256}
	}
	delta := 16
	phy := udwn.DefaultPHY()

	t := stats.NewTable(
		fmt.Sprintf("Table 2: local broadcast completion vs n (ticks, Δ≈%d, %d seeds)", delta, o.seeds()),
		"n", "log2(n)", "LocalBcast", "Spontaneous(uniform)", "LB/log2(n)")

	type cell struct{ LB, SP float64 }
	grid := runSeedGrid(o, len(sizes), func(o Options, row, seed int) cell {
		n := sizes[row]
		maxTicks := 500*delta + 100*n
		nw := uniformNetwork(n, delta, phy, uint64(10*n+seed))
		runSeed := uint64(seed + 1)

		var c cell
		c.LB, _, _ = localRun(nw, n, func(id int) sim.Protocol {
			return core.NewLocalBcast(n, int64(id))
		}, o.sim(udwn.SimOptions{Seed: runSeed, Primitives: sim.CD | sim.ACK}), maxTicks)

		// The uniform variant starts at an arbitrary constant
		// probability with no floor and never consults n.
		c.SP, _, _ = localRun(nw, n, func(id int) sim.Protocol {
			return core.NewLocalBcastSpontaneous(0.25, int64(id))
		}, o.sim(udwn.SimOptions{Seed: runSeed, Primitives: sim.CD | sim.ACK}), maxTicks)
		return c
	})

	for row, n := range sizes {
		var lb, sp []float64
		for _, c := range grid[row] {
			lb = append(lb, c.LB)
			sp = append(sp, c.SP)
		}
		logN := math.Log2(float64(n))
		mlb := stats.Mean(lb)
		t.AddRowf(n, fmt.Sprintf("%.1f", logN), mlb, stats.Mean(sp),
			fmt.Sprintf("%.1f", mlb/logN))
	}
	t.AddNote("expected shape: with Δ fixed, completion grows ~logarithmically in n; the uniform variant needs no bound on n")
	return t
}
