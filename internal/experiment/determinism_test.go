package experiment

import (
	"testing"

	"udwn"
	"udwn/internal/core"
	"udwn/internal/sim"
)

// TestWorkersDeterminism is the contract of the parallel engine: every
// experiment renders byte-identical output whether its grid runs
// sequentially or on eight concurrent workers. A failure here means a cell
// reads state shared with another cell (or the merge order depends on
// completion order) — exactly the bug class the Grid design must exclude.
func TestWorkersDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("full determinism sweep skipped in -short mode")
	}
	serial := QuickOptions()
	serial.Workers = 1
	parallel := QuickOptions()
	parallel.Workers = 8
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			t.Parallel()
			a := e.Run(serial).String()
			b := e.Run(parallel).String()
			if a != b {
				t.Fatalf("%s differs between Workers=1 and Workers=8:\n--- serial ---\n%s\n--- parallel ---\n%s",
					e.ID, a, b)
			}
		})
	}
}

// TestParallelRace keeps concurrent cells exercised under the race detector
// even in -short mode: many small simulations constructed and stepped
// concurrently, then cross-checked against a sequential run of the same
// grid. Any shared mutable state in sim/rng/workload construction shows up
// here as a race report or a mismatch.
func TestParallelRace(t *testing.T) {
	const n, delta, rows = 48, 8, 2
	run := func(workers int) [][]float64 {
		return runSeedGrid(Options{Seeds: 8, Workers: workers}, rows,
			func(_ Options, row, seed int) float64 {
				nw := uniformNetwork(n, delta, udwn.DefaultPHY(),
					uint64(100*row+seed))
				all, _, _ := localRun(nw, n, func(id int) sim.Protocol {
					return core.NewLocalBcast(n, int64(id))
				}, udwn.SimOptions{Seed: uint64(seed + 1),
					Primitives: sim.CD | sim.ACK}, 4000)
				return all
			})
	}
	seq := run(1)
	par := run(8)
	for r := range seq {
		for s := range seq[r] {
			if seq[r][s] != par[r][s] {
				t.Fatalf("cell (%d,%d): sequential %v != parallel %v",
					r, s, seq[r][s], par[r][s])
			}
		}
	}
}

// silentProto never transmits, so no node ever mass-delivers.
type silentProto struct{}

func (silentProto) Act(*sim.Node, int) sim.Action            { return sim.Action{} }
func (silentProto) Observe(*sim.Node, int, *sim.Observation) {}

// TestLocalRunTimeout covers the zero-completions sentinel: when no node
// finishes by maxTicks, localRun must report done=false with the tick cap as
// the pessimistic placeholder for both aggregates — not a fake mean.
func TestLocalRunTimeout(t *testing.T) {
	const n, maxTicks = 16, 50
	nw := uniformNetwork(n, 4, udwn.DefaultPHY(), 1)
	all, mean, done := localRun(nw, n, func(int) sim.Protocol {
		return silentProto{}
	}, udwn.SimOptions{Seed: 1, Primitives: sim.CD | sim.ACK}, maxTicks)
	if done {
		t.Fatal("run with zero completions must not report done")
	}
	if all != maxTicks || mean != maxTicks {
		t.Fatalf("timeout sentinels: all=%v mean=%v, want both %d", all, mean, maxTicks)
	}
}
