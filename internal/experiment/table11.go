package experiment

import (
	"fmt"
	"math"

	"udwn"
	"udwn/internal/core"
	"udwn/internal/dynamics"
	"udwn/internal/sim"
	"udwn/internal/stats"
	"udwn/internal/workload"
)

// Table11StableDistance tests Theorem 5.1 head-on: in a dynamic network
// (mobility + churn), the restarting Bcast(β) informs every node v within
// O(D^c_st(s, v)) — its *stable distance* from the source, measured online
// by the StableTracker over the same execution. The theorem's prediction is
// a bounded informed-tick / stable-arrival ratio across nodes and dynamics
// levels; nodes without a completed stable path carry no guarantee at all.
func Table11StableDistance(o Options) fmt.Stringer {
	n := 256
	if o.Quick {
		n = 96
	}
	delta := 16
	phy := udwn.DefaultPHY()
	rb := (1 - phy.Eps) * phy.Range
	maxTicks := 20000
	if o.Quick {
		maxTicks = 8000
	}
	// The theorem's interval constant c·log n; a practical small multiple.
	stableL := 2 * int(math.Log2(float64(n)))

	type scenario struct {
		name    string
		walk    float64 // step as fraction of R
		churn   float64
		dynamic bool
	}
	scenarios := []scenario{
		{name: "static"},
		{name: "walk 0.01R/t", walk: 0.01, dynamic: true},
		{name: "walk 0.05R/t", walk: 0.05, dynamic: true},
		{name: "churn 0.2%/t", churn: 0.002},
	}

	t := stats.NewTable(
		fmt.Sprintf("Table 11: Bcast vs stable distance under dynamics (Thm. 5.1; n=%d, L=%d, %d seeds)",
			n, stableL, o.seeds()),
		"scenario", "stable-reached", "informed of reached", "mean tick/D_st", "p95 tick/D_st")

	type result struct {
		Ratios                            []float64
		Reached, InformedOfReached, Nodes int
	}
	grid := runSeedGrid(o, len(scenarios), func(o Options, row, seed int) result {
		sc := scenarios[row]
		side := workload.SideForDegree(n, delta, rb)
		pts := workload.UniformDisc(n, side, uint64(19000+seed))
		nw := udwn.NewSINRNetwork(pts, phy)
		s := mustSim(nw, func(id int) sim.Protocol {
			return core.NewBcast(n, 3, 42, id == 0)
		}, o.sim(udwn.SimOptions{Seed: uint64(seed + 1), Slots: 2,
			SenseEps: phy.Eps / 2, Primitives: sim.CD | sim.ACK | sim.NTD,
			Dynamic: sc.dynamic}))
		s.MarkInformed(0)

		var drv dynamics.Driver
		switch {
		case sc.walk > 0:
			drv = dynamics.NewRandomWalk(sc.walk*phy.Range, side, uint64(77+seed))
		case sc.churn > 0:
			c := dynamics.NewPoissonChurn(sc.churn, uint64(88+seed))
			c.Protect = map[int]bool{0: true}
			drv = c
		}
		tr := dynamics.NewStableTracker(0, n, stableL, rb)
		for tick := 0; tick < maxTicks; tick++ {
			if drv != nil {
				drv.Apply(s, s.Tick())
			}
			tr.Observe(s)
			s.Step()
			// Stop once the comparison is decided for every node:
			// stable paths complete and payloads delivered.
			if tr.Reached() == n && allInformed(s, n) {
				break
			}
		}
		var r result
		for v := 1; v < n; v++ {
			r.Nodes++
			arr := tr.Arrival(v)
			if arr <= 0 {
				continue // no stable path: the theorem promises nothing
			}
			r.Reached++
			if inf := s.FirstDecode(v); inf >= 0 {
				r.InformedOfReached++
				r.Ratios = append(r.Ratios, float64(inf)/float64(arr))
			}
		}
		return r
	})

	for row, sc := range scenarios {
		var ratios []float64
		reachedTotal, informedOfReached, nodeTotal := 0, 0, 0
		for _, r := range grid[row] {
			ratios = append(ratios, r.Ratios...)
			reachedTotal += r.Reached
			informedOfReached += r.InformedOfReached
			nodeTotal += r.Nodes
		}
		sum := stats.Summarize(ratios)
		t.AddRowf(sc.name,
			fmt.Sprintf("%d/%d", reachedTotal, nodeTotal),
			fmt.Sprintf("%d/%d", informedOfReached, reachedTotal),
			fmt.Sprintf("%.2f", sum.Mean), fmt.Sprintf("%.2f", sum.P95))
	}
	t.AddNote("D_st = tick at which a stable path from the source completed (interval length L); informed = first payload decode")
	t.AddNote("expected shape: every stable-reached node gets informed, with tick/D_st ratios in a bounded band across all dynamics levels (Thm. 5.1's O(D_st))")
	return t
}

func allInformed(s *sim.Sim, n int) bool {
	for v := 0; v < n; v++ {
		if s.FirstDecode(v) < 0 {
			return false
		}
	}
	return true
}
