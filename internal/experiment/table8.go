package experiment

import (
	"fmt"

	"udwn"
	"udwn/internal/core"
	"udwn/internal/sim"
	"udwn/internal/stats"
	"udwn/internal/workload"
)

// Table8Fading stresses the algorithms under per-slot Rayleigh fading — the
// adversarial edge dynamics the unified model admits, where every slot's
// effective communication graph differs. Atomic per-slot mass delivery
// becomes improbable at realistic degrees (all neighbours must up-fade at
// once), so the dissemination metric is cumulative coverage: the tick by
// which every neighbour has received the node's message at least once.
func Table8Fading(o Options) fmt.Stringer {
	n := 512
	if o.Quick {
		n = 128
	}
	delta := 16
	phy := udwn.DefaultPHY()
	rb := (1 - phy.Eps) * phy.Range
	side := workload.SideForDegree(n, delta, rb)
	maxTicks := 20000
	if o.Quick {
		maxTicks = 8000
	}

	t := stats.NewTable(
		fmt.Sprintf("Table 8: LocalBcast under per-slot Rayleigh fading (n=%d, Δ≈%d, %d seeds)", n, delta, o.seeds()),
		"channel", "covered nodes", "mean coverage tick", "p95 coverage tick", "atomic deliveries")

	type channel struct {
		name string
		mk   func(ts uint64) (*udwn.Network, *udwn.TickSource)
	}
	channels := []channel{
		{"deterministic SINR", func(ts uint64) (*udwn.Network, *udwn.TickSource) {
			return udwn.NewSINRNetwork(workload.UniformDisc(n, side, ts), phy), nil
		}},
		{"rayleigh fading", func(ts uint64) (*udwn.Network, *udwn.TickSource) {
			return udwn.NewRayleighNetwork(workload.UniformDisc(n, side, ts), phy, ts^0xfade)
		}},
	}

	type result struct {
		Cov    []float64 // coverage ticks of covered nodes, node order
		Total  int
		Atomic float64
	}
	grid := runSeedGrid(o, len(channels), func(o Options, row, seed int) result {
		nw, tick := channels[row].mk(uint64(12000 + seed))
		s := coverageSim(nw, n, uint64(seed+1), tick, o)
		s.RunUntil(func(s *sim.Sim) bool {
			for v := 0; v < n; v++ {
				if s.FirstFullCoverage(v) < 0 {
					return false
				}
			}
			return true
		}, maxTicks)
		r := result{Total: n, Atomic: float64(s.TotalMassDeliveries())}
		for v := 0; v < n; v++ {
			if tk := s.FirstFullCoverage(v); tk >= 0 {
				r.Cov = append(r.Cov, float64(tk))
			}
		}
		return r
	})

	for row, ch := range channels {
		var cov []float64
		var atomic []float64
		covered, total := 0, 0
		for _, r := range grid[row] {
			cov = append(cov, r.Cov...)
			covered += len(r.Cov)
			total += r.Total
			atomic = append(atomic, r.Atomic)
		}
		sum := stats.Summarize(cov)
		t.AddRowf(ch.name, fmt.Sprintf("%d/%d", covered, total), sum.Mean, sum.P95,
			stats.Mean(atomic))
	}
	t.AddNote("coverage = every neighbour received the message at least once (cumulative); atomic deliveries = single-slot mass deliveries")
	t.AddNote("expected shape: fading slows cumulative coverage by a moderate factor (down-fades must be retried) and collapses atomic single-slot deliveries; the contention balancing itself keeps working")
	return t
}

// coverageSim rebuilds the simulator with coverage tracking enabled.
func coverageSim(nw *udwn.Network, n int, seed uint64, tick *udwn.TickSource, o Options) *sim.Sim {
	cfg := sim.Config{
		Space:         nw.Space,
		Model:         nw.Model,
		P:             nw.PHY.Power(),
		Zeta:          nw.PHY.Alpha,
		Noise:         nw.PHY.Noise,
		Eps:           nw.PHY.Eps,
		Seed:          seed,
		Primitives:    sim.CD | sim.ACK,
		BusyScale:     nw.PHY.BusyScale,
		AckScale:      nw.PHY.AckScale,
		TrackCoverage: true,
		Observer:      o.Observer,
		Metrics:       o.Metrics,
		IndexMetrics:  o.IndexMetrics,
	}
	s, err := sim.New(cfg, func(id int) sim.Protocol {
		return core.NewLocalBcast(n, int64(id))
	})
	if err != nil {
		panic(err)
	}
	if tick != nil {
		tick.Bind(s)
	}
	return s
}
