package experiment

import (
	"sync"
	"testing"

	"udwn/internal/checkpoint"
)

// TestSingleFlightDedupAcrossConcurrentRuns models the daemon's multi-tenant
// case: several concurrent runs of the same experiment share one checkpoint
// store. The single-flight table must make them compute every cell exactly
// once store-wide (Stores == distinct cells) while each run's rendered
// output stays byte-identical to an isolated baseline.
func TestSingleFlightDedupAcrossConcurrentRuns(t *testing.T) {
	e, ok := Lookup("table1")
	if !ok {
		t.Fatal("table1 not registered")
	}

	solo, err := checkpoint.Create(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	want, _, _ := runCheckpointed(t, e, 4, solo, 0)
	cells := solo.Len()
	wantHash := solo.Hash()
	solo.Close()
	if cells == 0 {
		t.Fatal("baseline stored no cells")
	}

	shared, err := checkpoint.Create(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer shared.Close()
	const runs = 4
	outs := make([]string, runs)
	var wg sync.WaitGroup
	for r := 0; r < runs; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			outs[r], _, _ = runCheckpointed(t, e, 4, shared, 0)
		}(r)
	}
	wg.Wait()

	for r, got := range outs {
		if got != want {
			t.Errorf("run %d output diverged from solo baseline", r)
		}
	}
	st := shared.Stats()
	if st.Stores != int64(cells) {
		t.Errorf("%d Puts for %d distinct cells — single-flight failed to dedup concurrent computation", st.Stores, cells)
	}
	if shared.Hash() != wantHash {
		t.Error("shared store hash diverged from solo baseline")
	}
	t.Logf("cells=%d stores=%d dedupWaits=%d dedupHits=%d", cells, st.Stores, st.DedupWaits, st.DedupHits)
}
