package experiment

import (
	"fmt"

	"udwn"
	"udwn/internal/core"
	"udwn/internal/sim"
	"udwn/internal/stats"
)

// Table10MultiChannel measures the multi-channel direction of the related
// work with the *naive* extension of the paper's machinery: the same
// contention-balancing local broadcast over C orthogonal channels, every
// node tuning uniformly at random each round. The completion metric is
// cumulative coverage (atomic all-neighbour delivery is impossible while
// neighbours sit on other channels).
//
// This is a deliberate negative ablation: uniform random tuning pays a 1/C
// sender-receiver matching penalty that the capped transmission probability
// cannot buy back, and without atomic deliveries the ACK-stop rule never
// fires, so contention persists. The speed-ups reported in the multi-channel
// literature come from coordinated channel assignment — machinery beyond
// the unified CD/ACK/NTD primitives — and this table quantifies exactly how
// much that coordination is worth.
func Table10MultiChannel(o Options) fmt.Stringer {
	n := 512
	if o.Quick {
		n = 128
	}
	deltas := []int{16, 64}
	if o.Quick {
		deltas = []int{16}
	}
	channelCounts := []int{1, 2, 4}
	phy := udwn.DefaultPHY()
	maxTicks := 40000

	t := stats.NewTable(
		fmt.Sprintf("Table 10: multi-channel local broadcast (cumulative coverage, n=%d, %d seeds)", n, o.seeds()),
		"Δ", "channels", "all covered", "mean pair-coverage", "vs 1 channel")

	// Rows are the flattened (Δ, channels) pairs, delta-major.
	type result struct {
		Ticks   float64
		Mean    float64
		HasMean bool
	}
	rows := len(deltas) * len(channelCounts)
	grid := runSeedGrid(o, rows, func(o Options, row, seed int) result {
		delta := deltas[row/len(channelCounts)]
		ch := channelCounts[row%len(channelCounts)]
		nw := uniformNetwork(n, delta, phy, uint64(17000+100*delta+seed))
		s := mustSim(nw, func(id int) sim.Protocol {
			return core.NewMCLocalBcast(n, ch, int64(id))
		}, o.sim(udwn.SimOptions{Seed: uint64(seed + 1), Channels: ch,
			Primitives: sim.CD | sim.ACK, TrackCoverage: true}))
		tk, _ := s.RunUntil(func(s *sim.Sim) bool {
			for v := 0; v < n; v++ {
				if s.FirstFullCoverage(v) < 0 {
					return false
				}
			}
			return true
		}, maxTicks)
		r := result{Ticks: float64(tk)}
		sum, cnt := 0.0, 0
		for v := 0; v < n; v++ {
			if c := s.FirstFullCoverage(v); c >= 0 {
				sum += float64(c)
				cnt++
			}
		}
		if cnt > 0 {
			r.Mean, r.HasMean = sum/float64(cnt), true
		}
		return r
	})

	for di, delta := range deltas {
		var base float64
		for ci, ch := range channelCounts {
			var ticks, means []float64
			for _, r := range grid[di*len(channelCounts)+ci] {
				ticks = append(ticks, r.Ticks)
				if r.HasMean {
					means = append(means, r.Mean)
				}
			}
			m := stats.Mean(ticks)
			if ch == 1 {
				base = m
			}
			t.AddRowf(delta, ch, m, stats.Mean(means), fmt.Sprintf("%.2fx", base/m))
		}
	}
	t.AddNote("vs 1 channel > 1x means speed-up; coverage = every neighbour received the message at least once")
	t.AddNote("expected shape: the naive extension LOSES at every density — the 1/C tuning-match penalty and the loss of ACK-stop dominate; multi-channel gains require coordinated assignment beyond the unified primitives")
	return t
}
