package experiment

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"reflect"
	"testing"

	"udwn/internal/sim"
	"udwn/internal/trace"
)

// experimentPredicates derives a query set from a decoded stream: a node that
// actually appears, a ~10% tick window, the event-kind flags and a compound
// of all three, so every experiment exercises each planner pruning axis
// against its own trace.
func experimentPredicates(events []sim.SlotEvent) []trace.Predicate {
	minT, maxT := events[0].Tick, events[0].Tick
	node := -1
	for _, ev := range events {
		if ev.Tick < minT {
			minT = ev.Tick
		}
		if ev.Tick > maxT {
			maxT = ev.Tick
		}
		if node < 0 && len(ev.Transmitters) > 0 {
			node = ev.Transmitters[0]
		}
	}
	window := (maxT-minT)/10 + 1
	preds := []trace.Predicate{
		{},
		{MinTick: minT, MaxTick: minT + window},
		{Decodes: true},
		{Role: trace.RoleMass},
	}
	if node >= 0 {
		preds = append(preds,
			trace.Predicate{Nodes: []int{node}},
			trace.Predicate{Nodes: []int{node}, Role: trace.RoleTx, MinTick: minT, MaxTick: minT + window},
		)
	}
	return preds
}

// TestQueryScanEquivalenceAllExperiments closes the loop from the paper's
// experiment grids to the query engine: every experiment's quick grid is
// recorded as an indexed binary trace (at Workers=1 and on a concurrent
// grid), and for a set of predicates derived from each trace the indexed
// query must return exactly the events a predicate filter over the full
// decode selects — and the same again through the indexless fallback path.
func TestQueryScanEquivalenceAllExperiments(t *testing.T) {
	if testing.Short() {
		t.Skip("query equivalence suite skipped in -short mode")
	}
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			t.Parallel()
			for _, workers := range []int{1, 8} {
				t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
					var buf bytes.Buffer
					bw := trace.NewBinary(&buf)

					o := QuickOptions()
					o.Workers = workers
					o.Observer = trace.LockedObserver(bw)
					_ = e.Run(o)
					if err := bw.Flush(); err != nil {
						t.Fatal(err)
					}
					if bw.Events() == 0 {
						t.Fatal("experiment emitted no slot events; the comparison is vacuous")
					}
					data := buf.Bytes()

					all, _, err := trace.ReadEvents(bytes.NewReader(data))
					if err != nil {
						t.Fatalf("full decode: %v", err)
					}

					for _, pred := range experimentPredicates(all) {
						pred := pred
						var want []sim.SlotEvent
						for _, ev := range all {
							if pred.Match(ev) {
								want = append(want, ev)
							}
						}

						got, st, err := trace.QueryAll(bytes.NewReader(data), pred)
						if err != nil {
							t.Fatalf("query %q: %v", pred.String(), err)
						}
						if !reflect.DeepEqual(got, want) {
							t.Fatalf("query %q: indexed query returned %d events, filter over full decode %d",
								pred.String(), len(got), len(want))
						}
						if st.FullScan {
							t.Fatalf("query %q: planner fell back to full scan on an indexed trace", pred.String())
						}
						if st.EventsMatched != int64(len(want)) {
							t.Fatalf("query %q: stats report %d matched events, want %d",
								pred.String(), st.EventsMatched, len(want))
						}

						// The same query over a non-seekable stream must take
						// the fallback scan and still agree.
						fgot, fst, err := trace.QueryAll(struct{ io.Reader }{bytes.NewReader(data)}, pred)
						if err != nil {
							t.Fatalf("fallback query %q: %v", pred.String(), err)
						}
						if !fst.FullScan {
							t.Fatalf("fallback query %q: expected FullScan stats", pred.String())
						}
						ga, _ := json.Marshal(got)
						fa, _ := json.Marshal(fgot)
						if !bytes.Equal(ga, fa) {
							t.Fatalf("query %q: indexed and fallback results diverge (%d vs %d events)",
								pred.String(), len(got), len(fgot))
						}
					}
				})
			}
		})
	}
}
