package experiment

import (
	"fmt"

	"udwn"
	"udwn/internal/core"
	"udwn/internal/sim"
	"udwn/internal/stats"
	"udwn/internal/trace"
	"udwn/internal/workload"
)

// Figure2LowerBound measures broadcast on the Theorem 5.3 instance (Fig. 1a
// of the paper): n−2 mutually close cluster nodes, a bridge node that is the
// sink's only in-neighbour, and the sink. Without the NTD primitive the
// cluster nodes cannot learn that their neighbourhood is covered, so they
// keep contending and the bridge's solo-transmission chance stays Θ(1/n) —
// rounds to inform the sink grow linearly in n. With NTD, one cluster
// success suppresses the whole cluster and the bridge succeeds immediately.
func Figure2LowerBound(o Options) fmt.Stringer {
	sizes := []int{32, 64, 128, 256, 512}
	if o.Quick {
		sizes = []int{16, 32}
	}
	phy := udwn.DefaultPHY()

	plot := trace.NewPlot(
		fmt.Sprintf("Figure 2: rounds to inform the sink on the Thm. 5.3 instance (%d seeds)", o.seeds()),
		"n")
	with := plot.NewSeries("Bcast* with NTD")
	without := plot.NewSeries("Bcast* without NTD")
	pc := plot.NewSeries("power-control (no NTD)")

	// Rows are the flattened (n, mode) pairs, n-major, in plot-fill order.
	modes := []string{"ntd", "none", "pc"}
	grid := runSeedGrid(o, len(sizes)*len(modes), func(o Options, row, seed int) float64 {
		n := sizes[row/len(modes)]
		mode := modes[row%len(modes)]
		prims := sim.CD | sim.ACK
		if mode == "ntd" {
			prims |= sim.NTD
		}
		// The App. B power-control substitute: low-power notifications with
		// decode range (ε/2)R/2 = εR/4 > εR/8 (the cluster spacing).
		notifyScale := core.NotifyScaleFor(phy.Eps/2, phy.Alpha)
		inst := workload.LowerBound(n, phy.Range, phy.Eps)
		nw := udwn.NewSINRSpace(inst.Space, phy)
		src := seed % (n - 2) // a cluster node holds the message
		s := mustSim(nw, func(id int) sim.Protocol {
			if mode == "pc" {
				return core.NewBcastStarPC(n, 42, id == src, notifyScale)
			}
			return core.NewBcastStar(n, 42, id == src)
		}, o.sim(udwn.SimOptions{Seed: uint64(seed + 1), Slots: 2,
			SenseEps: phy.Eps / 2, Primitives: prims}))
		s.MarkInformed(src)
		ticks, _ := s.RunUntil(func(s *sim.Sim) bool {
			return s.FirstDecode(inst.Sink) >= 0
		}, 200*n+40000)
		return float64(ticks) / 2
	})

	for i, n := range sizes {
		with.Add(float64(n), stats.Mean(grid[i*len(modes)]))
		without.Add(float64(n), stats.Mean(grid[i*len(modes)+1]))
		pc.Add(float64(n), stats.Mean(grid[i*len(modes)+2]))
	}

	// Fit the growth of the no-NTD curve.
	if len(sizes) >= 2 {
		slope, _ := stats.LinearFit(without.X, without.Y)
		plot.AddNote("no-NTD least-squares slope: %.2f rounds per node (Thm. 5.3 predicts Ω(n))", slope)
		slopeW, _ := stats.LinearFit(with.X, with.Y)
		plot.AddNote("with-NTD slope: %.3f rounds per node (near flat)", slopeW)
		slopePC, _ := stats.LinearFit(pc.X, pc.Y)
		plot.AddNote("power-control slope: %.3f — App. B: power control substitutes for the NTD primitive", slopePC)
	}
	return plot
}
