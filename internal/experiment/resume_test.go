package experiment

import (
	"fmt"
	"math/rand"
	"testing"

	"udwn/internal/checkpoint"
	"udwn/internal/metrics"
)

// runCheckpointed executes experiment e once at the given worker count,
// writing through store when non-nil. It returns the rendered output and the
// ZeroTimings'd manifest exactly as cmd/experiments would produce them. With
// abortAfter > 0 the run is cut short by the grid's crash hook after that
// many committed cells — simulating a SIGKILL mid-sweep — and aborted
// reports that the sentinel fired.
func runCheckpointed(t *testing.T, e Experiment, workers int, store *checkpoint.Store, abortAfter int) (out, manifest string, aborted bool) {
	t.Helper()
	o := QuickOptions()
	o.Workers = workers
	o.Metrics = metrics.NewRegistry()
	o.Report = NewRunReport()
	o.Checkpoint = store
	o.abortAfterCells = abortAfter

	func() {
		defer func() {
			if p := recover(); p != nil {
				if _, ok := p.(gridAbort); ok {
					aborted = true
					return
				}
				panic(p)
			}
		}()
		out = e.Run(o).String()
	}()
	if aborted {
		return "", "", true
	}
	b, err := BuildManifest([]string{e.ID}, o, o.Report, 0).ZeroTimings().MarshalIndent()
	if err != nil {
		t.Fatal(err)
	}
	return out, string(b), false
}

// TestResumeByteIdentical is the crash/resume differential harness: for every
// experiment, an uninterrupted checkpointed run is the baseline; then the run
// is killed (via the grid's test-only crash hook) after k committed cells for
// several k, resumed against the surviving store, and the resumed run's
// rendered output, manifest and final store hash must match the baseline byte
// for byte — under both sequential and 8-worker scheduling.
func TestResumeByteIdentical(t *testing.T) {
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			for _, workers := range []int{1, 8} {
				base, err := checkpoint.Create(t.TempDir())
				if err != nil {
					t.Fatal(err)
				}
				wantOut, wantManifest, _ := runCheckpointed(t, e, workers, base, 0)
				cells := base.Len()
				wantHash := base.Hash()
				base.Close()
				if cells == 0 {
					t.Fatalf("workers=%d: baseline stored no cells", workers)
				}

				aborts := []int{1, cells / 2, cells - 1}
				if testing.Short() {
					aborts = []int{(cells + 1) / 2}
				}
				seen := map[int]bool{}
				for _, k := range aborts {
					if k < 1 || k > cells || seen[k] {
						continue
					}
					seen[k] = true

					dir := t.TempDir()
					st, err := checkpoint.Create(dir)
					if err != nil {
						t.Fatal(err)
					}
					if _, _, aborted := runCheckpointed(t, e, workers, st, k); !aborted {
						t.Fatalf("workers=%d abort=%d: crash hook never fired", workers, k)
					}
					st.Close()

					re, err := checkpoint.Resume(dir)
					if err != nil {
						t.Fatalf("workers=%d abort=%d: resume: %v", workers, k, err)
					}
					if re.Len() == 0 {
						t.Fatalf("workers=%d abort=%d: aborted run left an empty store", workers, k)
					}
					gotOut, gotManifest, aborted := runCheckpointed(t, e, workers, re, 0)
					if aborted {
						t.Fatalf("workers=%d abort=%d: resumed run aborted", workers, k)
					}
					stats := re.Stats()
					if stats.Hits == 0 {
						t.Errorf("workers=%d abort=%d: resumed run replayed nothing", workers, k)
					}
					gotHash := re.Hash()
					re.Close()

					if gotOut != wantOut {
						t.Errorf("workers=%d abort=%d: resumed output differs\n--- baseline ---\n%s\n--- resumed ---\n%s",
							workers, k, wantOut, gotOut)
					}
					if gotManifest != wantManifest {
						t.Errorf("workers=%d abort=%d: resumed manifest differs\n--- baseline ---\n%s\n--- resumed ---\n%s",
							workers, k, wantManifest, gotManifest)
					}
					if gotHash != wantHash {
						t.Errorf("workers=%d abort=%d: store hash %s, want %s",
							workers, k, gotHash, wantHash)
					}
				}
			}
		})
	}
}

// TestCheckpointParallelWriters drives an 8-worker grid through one shared
// store (under the tier-1 -race gate) and requires the merged metric
// snapshot, the rendered results and the store content hash to be identical
// to the sequential run's.
func TestCheckpointParallelWriters(t *testing.T) {
	run := func(workers int) (results string, snapshot string, hash string) {
		store, err := checkpoint.Create(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		defer store.Close()
		o := Options{
			Seeds:      4,
			Workers:    workers,
			Name:       "parallel-writers",
			Metrics:    metrics.NewRegistry(),
			Report:     NewRunReport(),
			Checkpoint: store,
		}
		grid := runSeedGrid(o, 6, func(co Options, row, seed int) float64 {
			co.Metrics.Counter("test/cells").Inc()
			co.Metrics.Histogram("test/val", 8, 64).Observe(float64(row*10 + seed))
			return float64(row*100 + seed)
		})
		return fmt.Sprint(grid), o.Metrics.Snapshot().ZeroTimings().String(), store.Hash()
	}
	seqRes, seqSnap, seqHash := run(1)
	parRes, parSnap, parHash := run(8)
	if parRes != seqRes {
		t.Errorf("results differ:\nworkers=1: %s\nworkers=8: %s", seqRes, parRes)
	}
	if parSnap != seqSnap {
		t.Errorf("snapshots differ:\n--- workers=1 ---\n%s\n--- workers=8 ---\n%s", seqSnap, parSnap)
	}
	if parHash != seqHash {
		t.Errorf("store hash %s (workers=8), want %s (workers=1)", parHash, seqHash)
	}
}

// Property: cache hits never reorder the declaration-order merge. Random
// subsets of a grid are pre-stored with the exact content addresses a live
// run would use; the mixed hit/miss run must still return every cell in its
// declared slot, with the store serving exactly the prefilled cells.
func TestCacheHitsPreserveDeclarationOrder(t *testing.T) {
	const n = 64
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 6; trial++ {
		store, err := checkpoint.Create(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		o := Options{
			Workers:    8,
			Name:       "order",
			Metrics:    metrics.NewRegistry(),
			Report:     NewRunReport(),
			Checkpoint: store,
		}
		cc := newCellCache[int](o)

		prefilled := int64(0)
		for i := 0; i < n; i++ {
			if rng.Intn(2) == 0 {
				continue
			}
			v := i
			value, err := checkpoint.EncodeValue(&v)
			if err != nil {
				t.Fatal(err)
			}
			if err := store.Put(checkpoint.Record{
				Experiment: "order",
				Label:      fmt.Sprintf("cell=%d", i),
				Schema:     cc.schema,
				Attempts:   1,
				Value:      value,
			}); err != nil {
				t.Fatal(err)
			}
			prefilled++
		}

		var g Grid[int]
		for i := 0; i < n; i++ {
			i := i
			g.AddLabeled(fmt.Sprintf("cell=%d", i), func(Options) int { return i })
		}
		out := g.Run(o)
		for i, v := range out {
			if v != i {
				t.Fatalf("trial %d: slot %d holds %d (prefilled=%d)", trial, i, v, prefilled)
			}
		}
		st := store.Stats()
		if st.Hits != prefilled || st.Misses != n-prefilled {
			t.Fatalf("trial %d: hits=%d misses=%d, want %d and %d",
				trial, st.Hits, st.Misses, prefilled, n-prefilled)
		}
		store.Close()
	}
}

// Regression: Failures must sort by (experiment, cell) with recording order
// preserved among duplicates, so retried sweeps render identically run after
// run instead of flapping with worker scheduling.
func TestRunReportFailureOrderDeterministic(t *testing.T) {
	r := NewRunReport()
	r.add(Failure{Experiment: "b", Cell: 2, Reason: "early"})
	r.add(Failure{Experiment: "a", Cell: 5, Reason: "x"})
	r.add(Failure{Experiment: "b", Cell: 2, Reason: "late"})
	r.add(Failure{Experiment: "a", Cell: 1, Reason: "y"})
	got := r.Failures()
	want := []struct {
		exp    string
		cell   int
		reason string
	}{
		{"a", 1, "y"}, {"a", 5, "x"}, {"b", 2, "early"}, {"b", 2, "late"},
	}
	if len(got) != len(want) {
		t.Fatalf("%d failures, want %d", len(got), len(want))
	}
	for i, w := range want {
		if got[i].Experiment != w.exp || got[i].Cell != w.cell || got[i].Reason != w.reason {
			t.Fatalf("failure %d = %+v, want %+v", i, got[i], w)
		}
	}
}
