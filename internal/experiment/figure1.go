package experiment

import (
	"fmt"
	"math"

	"udwn"
	"udwn/internal/core"
	"udwn/internal/sim"
	"udwn/internal/stats"
	"udwn/internal/trace"
)

// Figure1Contention instruments Proposition 3.1: running plain Try&Adjust
// from two adversarial starting configurations — every node at p = 1/2
// (maximal overload) and every node at p = 1/(2n) (cold start) — the maximum
// vicinity contention max_v P^ρ(v) converges to a constant band within
// O(log n) rounds and stays there.
func Figure1Contention(o Options) fmt.Stringer {
	n := 1024
	rounds := 160
	if o.Quick {
		n, rounds = 128, 60
	}
	phy := udwn.DefaultPHY()
	delta := 16
	rho := 2.0 // vicinity radius multiplier for the instrumented contention

	plot := trace.NewPlot(
		fmt.Sprintf("Figure 1: max vicinity contention over rounds (n=%d, Δ≈%d, ρ=%.0f, %d seeds)",
			n, delta, rho, o.seeds()),
		"round")
	hot := plot.NewSeries("start p=1/2")
	cold := plot.NewSeries("start p=1/(2n)")

	sample := func(s *sim.Sim) float64 {
		maxC := 0.0
		// Sampling a spread of nodes keeps instrumentation O(n) per round.
		for v := 0; v < s.N(); v += 8 {
			if c := s.Contention(v, rho*phy.Range); c > maxC {
				maxC = c
			}
		}
		return maxC
	}

	// Rows are the two starting configurations; each cell traces one seed.
	starts := []float64{0.5, 1 / (2 * float64(n))}
	grid := runSeedGrid(o, len(starts), func(o Options, row, seed int) []float64 {
		p0 := starts[row]
		nw := uniformNetwork(n, delta, phy, uint64(1000+seed))
		s, err := nw.NewSim(func(id int) sim.Protocol {
			return core.NewBalancer(core.NewTryAdjustSpontaneous(p0))
		}, o.sim(udwn.SimOptions{Seed: uint64(seed + 1), Primitives: sim.CD}))
		if err != nil {
			panic(err)
		}
		samples := make([]float64, rounds)
		for r := 0; r < rounds; r++ {
			s.Step()
			samples[r] = sample(s)
		}
		return samples
	})

	merge := func(row int, out *trace.Series) {
		for r := 0; r < rounds; r++ {
			perSeed := make([]float64, 0, len(grid[row]))
			for _, samples := range grid[row] {
				perSeed = append(perSeed, samples[r])
			}
			out.Add(float64(r+1), stats.Mean(perSeed))
		}
	}
	merge(0, hot)
	merge(1, cold)

	logN := math.Log2(float64(n))
	plot.AddNote("log2(n) = %.1f; Prop. 3.1 predicts convergence to a constant band within O(log n) rounds", logN)
	plot.AddNote("hot start at 2·log n rounds: %.2f; at end: %.2f", hot.YAt(2*logN), hot.YAt(float64(rounds)))
	plot.AddNote("cold start at 2·log n rounds: %.2f; at end: %.2f", cold.YAt(2*logN), cold.YAt(float64(rounds)))
	return plot
}
