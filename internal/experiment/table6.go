package experiment

import (
	"fmt"

	"udwn"
	"udwn/internal/core"
	"udwn/internal/sim"
	"udwn/internal/stats"
)

// Table6Ablations isolates the design choices DESIGN.md calls out, running
// LocalBcast on the same workload under one change at a time:
//
//   - threshold calibration: the paper-exact CD threshold (BusyScale 1) and
//     paper-exact strict ACK (AckScale 1) versus the calibrated defaults;
//   - ACK machinery: threshold-sensed ACK versus free (ground-truth)
//     acknowledgements versus an optimistic adversary on ambiguous ACKs;
//   - clocking: synchronous versus locally-synchronous (factor-2 drift);
//   - CD necessity: disabling CD (the protocol then never adjusts, staying
//     at its arrival probability ≈ 1/2n).
func Table6Ablations(o Options) fmt.Stringer {
	n := 512
	if o.Quick {
		n = 128
	}
	delta := 32
	if o.Quick {
		delta = 16
	}
	maxTicks := 60000

	t := stats.NewTable(
		fmt.Sprintf("Table 6: LocalBcast ablations (n=%d, Δ≈%d, %d seeds)", n, delta, o.seeds()),
		"variant", "completion ticks", "mean node ticks", "all done")

	type variant struct {
		name     string
		phy      func(udwn.PHY) udwn.PHY
		opts     func(udwn.SimOptions) udwn.SimOptions
		maxTicks int
	}
	id := func(p udwn.PHY) udwn.PHY { return p }
	idOpts := func(s udwn.SimOptions) udwn.SimOptions { return s }
	variants := []variant{
		{"calibrated (default)", id, idOpts, 0},
		{"paper-exact CD (BusyScale=1)", func(p udwn.PHY) udwn.PHY { p.BusyScale = 1; return p }, idOpts, 0},
		{"strict ACK (AckScale=1)", func(p udwn.PHY) udwn.PHY { p.AckScale = 1; return p }, idOpts, 0},
		{"free ACK", id, func(s udwn.SimOptions) udwn.SimOptions {
			s.Primitives = sim.CD | sim.FreeAck
			return s
		}, 0},
		{"optimistic ACK adversary", id, func(s udwn.SimOptions) udwn.SimOptions {
			s.Adversary = sim.OptimisticAdversary{}
			return s
		}, 0},
		{"async clocks", id, func(s udwn.SimOptions) udwn.SimOptions {
			s.Async = true
			return s
		}, 0},
		{"no CD (runs open-loop)", id, func(s udwn.SimOptions) udwn.SimOptions {
			s.Primitives = sim.ACK
			return s
		}, 5000},
	}

	type result struct {
		All, Mean float64
		Done      bool
	}
	grid := runSeedGrid(o, len(variants), func(o Options, row, seed int) result {
		v := variants[row]
		tickCap := maxTicks
		if v.maxTicks > 0 {
			tickCap = v.maxTicks
		}
		phy := v.phy(udwn.DefaultPHY())
		nw := uniformNetwork(n, delta, phy, uint64(9000+seed))
		opts := o.sim(v.opts(udwn.SimOptions{
			Seed:       uint64(seed + 1),
			Primitives: sim.CD | sim.ACK,
		}))
		all, mean, done := localRun(nw, n, func(id int) sim.Protocol {
			return core.NewLocalBcast(n, int64(id))
		}, opts, tickCap)
		return result{All: all, Mean: mean, Done: done}
	})

	for row, v := range variants {
		var alls, means []float64
		okAll := true
		for _, r := range grid[row] {
			alls = append(alls, r.All)
			means = append(means, r.Mean)
			okAll = okAll && r.Done
		}
		t.AddRowf(v.name, stats.Mean(alls), stats.Mean(means), fmt.Sprintf("%v", okAll))
	}
	t.AddNote("expected shape: calibrated thresholds beat paper-exact constants by a constant factor; free ACK is an upper bound on what sensing can deliver; without CD the channel reads Idle forever, every node doubles to p=1/2 and the network collapses into a perpetual collision storm — contention detection is what makes the backoff work")
	return t
}
