package experiment

import (
	"fmt"

	"udwn"
	"udwn/internal/core"
	"udwn/internal/faults"
	"udwn/internal/sim"
	"udwn/internal/stats"
)

// Table12Faults measures graceful degradation beyond the paper's fault
// model. Theorems 4.1 and 5.1 prove LocalBcast/Bcast robust against the
// polite adversary — unlimited churn, rate-limited edge dynamics — which
// Table 4 and Table 11 exercise. Here the adversary is the harsher one of
// the contention-management literature: crash/restart schedules,
// stuck-transmitter jammers, deaf receivers, sensing corruption, message
// drops and clock stalls from internal/faults. No theorem covers these, so
// the claim under test is the engineering one the production harness
// needs: coverage of healthy nodes degrades smoothly with the fault rate,
// and no single fault class collapses the run.
//
// Coverage counts only healthy nodes — not jammed or deaf ones, which by
// construction can never correctly participate; their interference and the
// retry pressure they exert on healthy neighbours is exactly the load being
// measured. Every cell is a pure function of (topology seed, run seed,
// fault seed), so the table is byte-identical across worker counts.
func Table12Faults(o Options) fmt.Stringer {
	n := 256
	if o.Quick {
		n = 96
	}
	delta := 16
	phy := udwn.DefaultPHY()
	maxTicks := 6000
	if o.Quick {
		maxTicks = 2500
	}

	scenarios := []struct {
		name string
		spec faults.Spec
	}{
		{"no faults", faults.Spec{}},
		{"crash 0.2%/t down 100", faults.Spec{CrashRate: 0.002, CrashDowntime: 100}},
		{"crash 1%/t down 100", faults.Spec{CrashRate: 0.01, CrashDowntime: 100}},
		{"jam 2% stuck-tx", faults.Spec{JamFraction: 0.02}},
		{"jam 10% stuck-tx", faults.Spec{JamFraction: 0.10}},
		{"deaf 10%", faults.Spec{DeafFraction: 0.10}},
		{"drop 20%", faults.Spec{DropRate: 0.20}},
		{"sense flip 10%", faults.Spec{SenseRate: 0.10}},
		{"stall 0.5%/t len 100", faults.Spec{StallRate: 0.005, StallLen: 100}},
		{"combined moderate", faults.Spec{CrashRate: 0.002, CrashDowntime: 100,
			JamFraction: 0.02, DropRate: 0.10, SenseRate: 0.05}},
	}

	type result struct {
		LocalCov, LocalTicks float64
		BcastCov, BcastTicks float64
		Events               float64
	}
	grid := runSeedGrid(o, len(scenarios), func(o Options, row, seed int) result {
		base := scenarios[row].spec
		var r result

		// Local broadcast: every healthy node must mass-deliver to its
		// alive neighbourhood.
		{
			spec := base
			spec.Seed = uint64(12100 + 131*row + seed)
			eng := faults.New(spec)
			nw := uniformNetwork(n, delta, phy, uint64(21000+seed))
			s := mustSim(nw, func(id int) sim.Protocol {
				return core.NewLocalBcast(n, int64(id))
			}, o.sim(udwn.SimOptions{Seed: uint64(seed + 1),
				Primitives: sim.CD | sim.ACK, Injector: eng}))
			healthy := healthyNodes(eng, n)
			ticks, _ := s.RunUntil(func(s *sim.Sim) bool {
				return allDone(healthy, s.FirstMassDelivery)
			}, maxTicks)
			r.LocalCov = doneFraction(healthy, s.FirstMassDelivery)
			r.LocalTicks = float64(ticks)
			r.Events = float64(eng.Counters().Total())
		}

		// Global broadcast from a protected source: every healthy node
		// must be informed.
		{
			spec := base
			spec.Seed = uint64(12800 + 131*row + seed)
			spec.Protect = []int{0}
			eng := faults.New(spec)
			nw := uniformNetwork(n, delta, phy, uint64(22000+seed))
			s := mustSim(nw, func(id int) sim.Protocol {
				return core.NewBcast(n, 3, 42, id == 0)
			}, o.sim(udwn.SimOptions{Seed: uint64(seed + 1), Slots: 2,
				SenseEps: phy.Eps / 2, Primitives: sim.CD | sim.ACK | sim.NTD,
				Injector: eng}))
			s.MarkInformed(0)
			healthy := healthyNodes(eng, n)
			ticks, _ := s.RunUntil(func(s *sim.Sim) bool {
				return allDone(healthy, s.FirstDecode)
			}, maxTicks)
			r.BcastCov = doneFraction(healthy, s.FirstDecode)
			r.BcastTicks = float64(ticks)
			r.Events += float64(eng.Counters().Total())
		}
		return r
	})

	t := stats.NewTable(
		fmt.Sprintf("Table 12: graceful degradation under injected faults (n=%d, Δ≈%d, %d seeds, cap %d ticks)",
			n, delta, o.seeds(), maxTicks),
		"fault scenario", "local cov", "local ticks", "bcast cov", "bcast ticks", "fault events")
	for row, sc := range scenarios {
		var lc, lt, bc, bt, ev []float64
		for _, r := range grid[row] {
			lc = append(lc, r.LocalCov)
			lt = append(lt, r.LocalTicks)
			bc = append(bc, r.BcastCov)
			bt = append(bt, r.BcastTicks)
			ev = append(ev, r.Events)
		}
		t.AddRowf(sc.name,
			fmt.Sprintf("%.3f", stats.Mean(lc)), fmt.Sprintf("%.0f", stats.Mean(lt)),
			fmt.Sprintf("%.3f", stats.Mean(bc)), fmt.Sprintf("%.0f", stats.Mean(bt)),
			fmt.Sprintf("%.0f", stats.Mean(ev)))
	}
	t.AddNote("coverage = fraction of healthy (non-jammed, non-deaf) nodes completed by the cap; ticks = run length (cap when incomplete)")
	t.AddNote("expected shape: crashes and stalls cost time, not coverage (the paper's churn tolerance extends to them); drops and sensing corruption degrade smoothly; stuck transmitters open interference dead zones that defeat atomic delivery near them, and deaf receivers block their own neighbourhoods — global dissemination routes around both")
	return t
}

// healthyNodes lists the nodes the fault engine has not made permanently
// faulty (jammed or deaf) — the completion targets of Table 12.
func healthyNodes(eng *faults.Engine, n int) []int {
	out := make([]int, 0, n)
	for v := 0; v < n; v++ {
		if !eng.Faulty(v) {
			out = append(out, v)
		}
	}
	return out
}

// allDone reports whether first(v) >= 0 for every listed node.
func allDone(nodes []int, first func(int) int) bool {
	for _, v := range nodes {
		if first(v) < 0 {
			return false
		}
	}
	return true
}

// doneFraction returns the fraction of listed nodes with first(v) >= 0.
func doneFraction(nodes []int, first func(int) int) float64 {
	if len(nodes) == 0 {
		return 0
	}
	done := 0
	for _, v := range nodes {
		if first(v) >= 0 {
			done++
		}
	}
	return float64(done) / float64(len(nodes))
}
