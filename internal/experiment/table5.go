package experiment

import (
	"fmt"

	"udwn"
	"udwn/internal/core"
	"udwn/internal/metric"
	"udwn/internal/pathloss"
	"udwn/internal/sim"
	"udwn/internal/stats"
	"udwn/internal/workload"
)

// Table5CrossModel runs the identical LocalBcast binary over every
// communication model the unified framework captures — SINR, SINR with
// log-normal shadowing, UDG, QUDG (pessimistic grey zone), the Protocol
// model and BIG — on the same node deployment. The paper's point is
// pan-model operability: the algorithm consumes only CD/ACK and works in
// all of them with comparable round counts (normalised by the per-model
// realised degree).
func Table5CrossModel(o Options) fmt.Stringer {
	n := 512
	if o.Quick {
		n = 128
	}
	delta := 16
	phy := udwn.DefaultPHY()
	rb := (1 - phy.Eps) * phy.Range
	side := workload.SideForDegree(n, delta, rb)

	t := stats.NewTable(
		fmt.Sprintf("Table 5: one LocalBcast across models (n=%d, same deployment, %d seeds)", n, o.seeds()),
		"model", "avg degree", "completion ticks", "ticks/degree", "all done")

	type cell struct {
		name string
		mk   func(topoSeed uint64) *udwn.Network
	}
	cells := []cell{
		{"sinr", func(ts uint64) *udwn.Network {
			return udwn.NewSINRNetwork(workload.UniformDisc(n, side, ts), phy)
		}},
		{"sinr+shadow", func(ts uint64) *udwn.Network {
			pts := workload.UniformDisc(n, side, ts)
			sp := pathloss.NewShadowed(metric.NewEuclidean(pts), 0.1, ts^0xbeef)
			return udwn.NewSINRSpace(sp, phy)
		}},
		{"udg", func(ts uint64) *udwn.Network {
			return udwn.NewUDGNetwork(workload.UniformDisc(n, side, ts), phy)
		}},
		{"qudg", func(ts uint64) *udwn.Network {
			return udwn.NewQUDGNetwork(workload.UniformDisc(n, side, ts), phy, 0.75, nil)
		}},
		{"protocol", func(ts uint64) *udwn.Network {
			return udwn.NewProtocolNetwork(workload.UniformDisc(n, side, ts), phy, 2)
		}},
		{"big(k=2)", func(ts uint64) *udwn.Network {
			pts := workload.UniformDisc(n, side, ts)
			return udwn.NewBIGNetwork(workload.GeometricGraph(pts, rb), 2, phy)
		}},
	}

	type result struct {
		Deg, Ticks float64
		Done       bool
	}
	grid := runSeedGrid(o, len(cells), func(o Options, row, seed int) result {
		nw := cells[row].mk(uint64(5000 + seed))
		s := mustSim(nw, func(id int) sim.Protocol {
			return core.NewLocalBcast(n, int64(id))
		}, o.sim(udwn.SimOptions{Seed: uint64(seed + 1), Primitives: sim.CD | sim.ACK}))
		degSum := 0.0
		for v := 0; v < n; v++ {
			degSum += float64(s.NeighborCount(v))
		}
		all, _, done := localRunOn(s, n, 60000)
		return result{Deg: degSum / float64(n), Ticks: all, Done: done}
	})

	for row, c := range cells {
		var ticks, degs []float64
		okAll := true
		for _, r := range grid[row] {
			degs = append(degs, r.Deg)
			ticks = append(ticks, r.Ticks)
			okAll = okAll && r.Done
		}
		mt, md := stats.Mean(ticks), stats.Mean(degs)
		ratio := "-"
		if md > 0 {
			ratio = fmt.Sprintf("%.1f", mt/md)
		}
		t.AddRowf(c.name, md, mt, ratio, fmt.Sprintf("%v", okAll))
	}
	t.AddNote("identical protocol binary and identical deployments; only the reception rule and metric change")
	t.AddNote("expected shape: comparable ticks/degree across models; QUDG's pessimistic grey zone and BIG's hop metric shift degrees, not the algorithm")
	return t
}
