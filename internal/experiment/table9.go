package experiment

import (
	"fmt"

	"udwn"
	"udwn/internal/core"
	"udwn/internal/sim"
	"udwn/internal/stats"
)

// Table9MultiMessage extends broadcast to k messages from k spread-out
// sources (the multiple-message broadcast problem of the related work).
// MultiBcast pipelines messages through disjoint regions, so completion
// should grow sub-linearly in k at fixed network size until the channel
// saturates, and the per-message cost (rounds/k) should fall.
func Table9MultiMessage(o Options) fmt.Stringer {
	n := 400
	length := 400.0
	ks := []int{1, 2, 4, 8}
	if o.Quick {
		n, length = 120, 120
		ks = []int{1, 2}
	}
	phy := udwn.DefaultPHY()
	rb := (1 - phy.Eps) * phy.Range

	t := stats.NewTable(
		fmt.Sprintf("Table 9: k-message broadcast on a strip (n=%d, %d seeds)", n, o.seeds()),
		"k", "rounds", "rounds/k", "rounds vs k=1")

	grid := runSeedGrid(o, len(ks), func(o Options, row, seed int) float64 {
		k := ks[row]
		pts, _ := connectedStrip(n, length, rb, uint64(14000+31*k+seed))
		nw := udwn.NewSINRNetwork(pts, phy)
		ntd := nw.NTDThreshold(phy.Eps / 2)
		// Sources spread evenly along the strip by index.
		isSource := make(map[int]int64, k)
		for i := 0; i < k; i++ {
			isSource[i*n/k] = int64(1000 + i)
		}
		s := mustSim(nw, func(id int) sim.Protocol {
			if msg, ok := isSource[id]; ok {
				return core.NewMultiBcast(n, ntd, msg)
			}
			return core.NewMultiBcast(n, ntd)
		}, o.sim(udwn.SimOptions{Seed: uint64(seed + 1), Slots: 2,
			SenseEps: phy.Eps / 2, Primitives: sim.CD | sim.ACK | sim.NTD}))
		ticks, _ := s.RunUntil(func(s *sim.Sim) bool {
			for v := 0; v < n; v++ {
				if s.Protocol(v).(*core.MultiBcast).Known() < k {
					return false
				}
			}
			return true
		}, 800000)
		return float64(ticks) / 2
	})

	var base float64
	for row, k := range ks {
		m := stats.Mean(grid[row])
		if k == ks[0] {
			base = m
		}
		t.AddRowf(k, m, fmt.Sprintf("%.1f", m/float64(k)),
			fmt.Sprintf("%.2fx", m/base))
	}
	t.AddNote("k sources spread along the strip; completion = every node knows all k messages")
	t.AddNote("expected shape: rounds/k stays ≈ flat — messages pipeline through disjoint regions, so the total grows ≈ linearly in k instead of super-linearly under contention collapse")
	return t
}
