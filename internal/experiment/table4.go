package experiment

import (
	"fmt"

	"udwn"
	"udwn/internal/core"
	"udwn/internal/dynamics"
	"udwn/internal/sim"
	"udwn/internal/stats"
	"udwn/internal/workload"
)

// Table4Dynamics measures LocalBcast under the paper's dynamics: Theorem 4.1
// bounds a protected victim's completion time by its dynamic degree
// Δ^ρ_v(t,t') plus log n — churn may be unlimited, edge changes (mobility)
// must stay below the rate τ. We protect a set of victim nodes from churn,
// drive the rest of the network with each dynamics generator, and report the
// victims' completion times alongside their measured dynamic degrees.
func Table4Dynamics(o Options) fmt.Stringer {
	n := 512
	if o.Quick {
		n = 128
	}
	delta := 16
	phy := udwn.DefaultPHY()
	rho := 2.0
	maxTicks := 6000
	if o.Quick {
		maxTicks = 3000
	}
	victims := []int{0, n / 4, n / 2, 3 * n / 4}

	type scenario struct {
		name   string
		driver func(seed uint64, protect map[int]bool) dynamics.Driver
		mobile bool
	}
	protectSet := func() map[int]bool {
		m := make(map[int]bool, len(victims))
		for _, v := range victims {
			m[v] = true
		}
		return m
	}
	scenarios := []scenario{
		{name: "static", driver: func(uint64, map[int]bool) dynamics.Driver { return nil }},
		{name: "churn p=0.002", driver: func(seed uint64, protect map[int]bool) dynamics.Driver {
			c := dynamics.NewPoissonChurn(0.002, seed)
			c.Protect = protect
			return c
		}},
		{name: "churn p=0.01", driver: func(seed uint64, protect map[int]bool) dynamics.Driver {
			c := dynamics.NewPoissonChurn(0.01, seed)
			c.Protect = protect
			return c
		}},
		{name: "burst 20%/200t", driver: func(seed uint64, protect map[int]bool) dynamics.Driver {
			c := dynamics.NewBurstChurn(200, 0.2, seed)
			c.Protect = protect
			return c
		}},
		{name: "targeted churn", driver: func(seed uint64, protect map[int]bool) dynamics.Driver {
			var ds []dynamics.Driver
			for _, v := range victims {
				ds = append(ds, dynamics.NewTargetedChurn(v, rho*phy.Range, 0.01, seed+uint64(v)))
			}
			return dynamics.Compose(ds...)
		}},
		{name: "walk 0.02R/t", mobile: true, driver: func(seed uint64, _ map[int]bool) dynamics.Driver {
			return dynamics.NewRandomWalk(0.02*phy.Range, 0, seed) // Side set below
		}},
		{name: "walk 0.1R/t", mobile: true, driver: func(seed uint64, _ map[int]bool) dynamics.Driver {
			return dynamics.NewRandomWalk(0.1*phy.Range, 0, seed)
		}},
	}

	t := stats.NewTable(
		fmt.Sprintf("Table 4: LocalBcast under dynamics (n=%d, Δ≈%d, %d seeds, %d victims)", n, delta, o.seeds(), len(victims)),
		"scenario", "victims done", "mean ticks", "p95 ticks", "mean dyn degree", "ticks/degree")

	rb := (1 - phy.Eps) * phy.Range
	type victimResult struct {
		Deg  float64
		Tick float64 // -1 when the victim never completed
	}
	grid := runSeedGrid(o, len(scenarios), func(o Options, row, seed int) []victimResult {
		sc := scenarios[row]
		nw := uniformNetwork(n, delta, phy, uint64(7000+seed))
		s := mustSim(nw, func(id int) sim.Protocol {
			return core.NewLocalBcast(n, int64(id))
		}, o.sim(udwn.SimOptions{Seed: uint64(seed + 1), Primitives: sim.CD | sim.ACK,
			Dynamic: sc.mobile}))
		drv := sc.driver(uint64(40+seed), protectSet())
		if w, ok := drv.(*dynamics.RandomWalk); ok {
			w.Side = workload.SideForDegree(n, delta, rb)
		}
		trackers := make([]*dynamics.DegreeTracker, len(victims))
		for i, v := range victims {
			trackers[i] = dynamics.NewDegreeTracker(v, rho*phy.Range)
		}
		for tick := 0; tick < maxTicks; tick++ {
			if drv != nil {
				drv.Apply(s, s.Tick())
			}
			for _, tr := range trackers {
				tr.Observe(s)
			}
			s.Step()
			if allVictimsDone(s, victims) {
				break
			}
		}
		out := make([]victimResult, len(victims))
		for i, v := range victims {
			out[i] = victimResult{Deg: float64(trackers[i].Degree()), Tick: -1}
			if tk := s.FirstMassDelivery(v); tk >= 0 {
				out[i].Tick = float64(tk)
			}
		}
		return out
	})

	for row, sc := range scenarios {
		var ticksDone, dynDeg []float64
		done, total := 0, 0
		for _, cellVictims := range grid[row] {
			for _, vr := range cellVictims {
				total++
				dynDeg = append(dynDeg, vr.Deg)
				if vr.Tick >= 0 {
					done++
					ticksDone = append(ticksDone, vr.Tick)
				}
			}
		}
		sum := stats.Summarize(ticksDone)
		meanDeg := stats.Mean(dynDeg)
		ratio := "-"
		if meanDeg > 0 && sum.N > 0 {
			ratio = fmt.Sprintf("%.1f", sum.Mean/meanDeg)
		}
		t.AddRowf(sc.name, fmt.Sprintf("%d/%d", done, total), sum.Mean, sum.P95, meanDeg, ratio)
	}
	t.AddNote("victims are protected from churn (the theorem requires them alive through the interval); everything else churns/moves")
	t.AddNote("expected shape: completion tracks the dynamic degree; unlimited churn is tolerated, fast mobility (edge-change rate beyond τ) degrades")
	return t
}

func allVictimsDone(s *sim.Sim, victims []int) bool {
	for _, v := range victims {
		if s.FirstMassDelivery(v) < 0 {
			return false
		}
	}
	return true
}
