// Package baseline implements the comparison algorithms the paper's related
// work discusses, for the benchmark harness:
//
//   - Decay: the Bar-Yehuda–Goldreich–Itai decay protocol, the classical
//     O(Δ·log n) local-broadcast strategy in radio networks, which needs no
//     carrier sensing.
//   - FixedProb: transmit forever with probability Θ(1/Δ), the textbook
//     strategy when the maximum degree is known.
//   - RoundRobin: the deterministic O(n) schedule, optimal under full
//     adversarial uncertainty.
//   - DecayBcast: global broadcast by decay flooding, the shape of the best
//     carrier-sense-free broadcast algorithms (O(D·log² n)).
//
// All protocols implement sim.Protocol. Baselines are measured against
// ground-truth mass delivery (sim.FirstMassDelivery), so they need no ACK
// machinery of their own; Decay and FixedProb optionally stop on FreeAck.
package baseline

import (
	"math"

	"udwn/internal/sim"
)

// KindBaseline tags baseline payloads.
const KindBaseline int32 = 10

// Decay runs decay cycles: within a cycle of length ⌈log₂ n⌉ it transmits
// with probability 2^{-1}, 2^{-2}, ..., 2^{-⌈log₂ n⌉}, then starts over.
// If the simulator grants FreeAck, the node stops after a confirmed
// delivery.
type Decay struct {
	cycleLen int
	step     int
	done     bool
	data     int64
}

var (
	_ sim.Protocol     = (*Decay)(nil)
	_ sim.ProbReporter = (*Decay)(nil)
	_ sim.Quiescent    = (*Decay)(nil)
)

// NewDecay returns a decay protocol for a network-size estimate n.
func NewDecay(n int, data int64) *Decay {
	if n < 2 {
		n = 2
	}
	return &Decay{cycleLen: int(math.Ceil(math.Log2(float64(n)))), data: data}
}

// Act transmits with the current decay probability.
func (d *Decay) Act(n *sim.Node, slot int) sim.Action {
	if d.done {
		return sim.Action{}
	}
	p := math.Pow(2, -float64(d.step%d.cycleLen+1))
	d.step++
	return sim.Action{
		Transmit: n.RNG.Bernoulli(p),
		Msg:      sim.Message{Kind: KindBaseline, Data: d.data},
	}
}

// Observe stops on a free acknowledgement.
func (d *Decay) Observe(n *sim.Node, slot int, obs *sim.Observation) {
	if obs.Transmitted && obs.Acked {
		d.done = true
	}
}

// Done reports whether the node has stopped.
func (d *Decay) Done() bool { return d.done }

// TransmitProb reports the probability of the upcoming step.
func (d *Decay) TransmitProb() float64 {
	if d.done {
		return 0
	}
	return math.Pow(2, -float64(d.step%d.cycleLen+1))
}

// QuiescentFor promises permanent inertness once stopped: Act early-returns
// without RNG draws, and Observe of a silent slot (no transmission, no ack)
// changes nothing.
func (d *Decay) QuiescentFor() int {
	if d.done {
		return 1 << 30
	}
	return 0
}

// SkipQuiet is a no-op: a stopped node's state no longer evolves.
func (d *Decay) SkipQuiet(int) {}

// FixedProb transmits forever with probability c/Δ, the classical strategy
// when the maximum degree Δ is known. It stops on FreeAck if granted.
type FixedProb struct {
	p    float64
	done bool
	data int64
}

var (
	_ sim.Protocol     = (*FixedProb)(nil)
	_ sim.ProbReporter = (*FixedProb)(nil)
	_ sim.Quiescent    = (*FixedProb)(nil)
)

// NewFixedProb returns a fixed-probability protocol with p = min(c/delta, 1/2).
func NewFixedProb(delta int, c float64, data int64) *FixedProb {
	if delta < 1 {
		delta = 1
	}
	return &FixedProb{p: math.Min(c/float64(delta), 0.5), data: data}
}

// Act transmits with the fixed probability.
func (f *FixedProb) Act(n *sim.Node, slot int) sim.Action {
	if f.done {
		return sim.Action{}
	}
	return sim.Action{
		Transmit: n.RNG.Bernoulli(f.p),
		Msg:      sim.Message{Kind: KindBaseline, Data: f.data},
	}
}

// Observe stops on a free acknowledgement.
func (f *FixedProb) Observe(n *sim.Node, slot int, obs *sim.Observation) {
	if obs.Transmitted && obs.Acked {
		f.done = true
	}
}

// Done reports whether the node has stopped.
func (f *FixedProb) Done() bool { return f.done }

// TransmitProb reports the fixed probability.
func (f *FixedProb) TransmitProb() float64 {
	if f.done {
		return 0
	}
	return f.p
}

// QuiescentFor promises permanent inertness once stopped (see Decay).
func (f *FixedProb) QuiescentFor() int {
	if f.done {
		return 1 << 30
	}
	return 0
}

// SkipQuiet is a no-op: a stopped node's state no longer evolves.
func (f *FixedProb) SkipQuiet(int) {}

// RoundRobin transmits deterministically in the slots congruent to the
// node's id modulo n — collision-free by construction, Θ(n) latency.
type RoundRobin struct {
	n     int
	t     int
	id    int // node id mod n, captured on first Act
	idSet bool
	done  bool
	data  int64
}

var (
	_ sim.Protocol  = (*RoundRobin)(nil)
	_ sim.Quiescent = (*RoundRobin)(nil)
)

// NewRoundRobin returns a round-robin protocol over n schedule slots.
func NewRoundRobin(n int, data int64) *RoundRobin {
	if n < 1 {
		n = 1
	}
	return &RoundRobin{n: n, data: data}
}

// Act transmits in the node's own schedule slots.
func (r *RoundRobin) Act(n *sim.Node, slot int) sim.Action {
	r.id, r.idSet = n.ID%r.n, true
	mine := r.t%r.n == r.id
	r.t++
	if r.done || !mine {
		return sim.Action{}
	}
	return sim.Action{Transmit: true, Msg: sim.Message{Kind: KindBaseline, Data: r.data}}
}

// Observe stops on a free acknowledgement.
func (r *RoundRobin) Observe(n *sim.Node, slot int, obs *sim.Observation) {
	if obs.Transmitted && obs.Acked {
		r.done = true
	}
}

// QuiescentFor promises inertness until the node's next owned schedule
// slot — forever once stopped. Every Act advances t (even when silent), so
// SkipQuiet must advance it by the same amount.
func (r *RoundRobin) QuiescentFor() int {
	if r.done {
		return 1 << 30
	}
	if !r.idSet {
		return 0 // schedule identity unknown before the first Act
	}
	// Ticks until t reaches the next value congruent to id (mod n).
	d := (r.id - r.t) % r.n
	if d < 0 {
		d += r.n
	}
	return d
}

// SkipQuiet replays the t advance of the skipped silent slots.
func (r *RoundRobin) SkipQuiet(ticks int) { r.t += ticks }

// DecayBcast is global broadcast by decay flooding without carrier sensing:
// a node that has received the payload repeats decay cycles indefinitely.
// Its latency shape is O(D·log² n), the best known for broadcast without
// carrier-sense primitives in this setting.
type DecayBcast struct {
	cycleLen int
	step     int
	informed bool
	data     int64
}

var (
	_ sim.Protocol     = (*DecayBcast)(nil)
	_ sim.ProbReporter = (*DecayBcast)(nil)
	_ sim.Quiescent    = (*DecayBcast)(nil)
)

// NewDecayBcast returns the decay-flooding broadcast protocol. isSource
// marks the initially informed node.
func NewDecayBcast(n int, data int64, isSource bool) *DecayBcast {
	if n < 2 {
		n = 2
	}
	return &DecayBcast{
		cycleLen: int(math.Ceil(math.Log2(float64(n)))),
		informed: isSource,
		data:     data,
	}
}

// Act transmits with the current decay probability once informed.
func (d *DecayBcast) Act(n *sim.Node, slot int) sim.Action {
	if !d.informed {
		return sim.Action{}
	}
	p := math.Pow(2, -float64(d.step%d.cycleLen+1))
	d.step++
	return sim.Action{
		Transmit: n.RNG.Bernoulli(p),
		Msg:      sim.Message{Kind: KindBaseline, Data: d.data},
	}
}

// Observe wakes the node on first receipt.
func (d *DecayBcast) Observe(n *sim.Node, slot int, obs *sim.Observation) {
	if len(obs.Received) > 0 {
		d.informed = true
	}
}

// Informed reports whether the node holds the payload.
func (d *DecayBcast) Informed() bool { return d.informed }

// TransmitProb reports the probability of the upcoming step.
func (d *DecayBcast) TransmitProb() float64 {
	if !d.informed {
		return 0
	}
	return math.Pow(2, -float64(d.step%d.cycleLen+1))
}

// QuiescentFor promises inertness while uninformed: Act early-returns
// without RNG draws and Observe of a silent slot (nothing received) cannot
// inform the node. Informed nodes keep flooding, so no promise.
func (d *DecayBcast) QuiescentFor() int {
	if !d.informed {
		return 1 << 30
	}
	return 0
}

// SkipQuiet is a no-op: an uninformed node's state does not evolve.
func (d *DecayBcast) SkipQuiet(int) {}
