package baseline

import (
	"math"
	"testing"

	"udwn/internal/geom"
	"udwn/internal/metric"
	"udwn/internal/model"
	"udwn/internal/rng"
	"udwn/internal/sim"
)

func node(id int, seed uint64) *sim.Node {
	return &sim.Node{ID: id, RNG: rng.New(seed)}
}

func TestDecayCyclesProbabilities(t *testing.T) {
	d := NewDecay(16, 1) // cycle length 4
	want := []float64{0.5, 0.25, 0.125, 0.0625, 0.5, 0.25}
	for i, w := range want {
		if got := d.TransmitProb(); math.Abs(got-w) > 1e-12 {
			t.Fatalf("step %d: p = %v, want %v", i, got, w)
		}
		d.Act(node(0, 1), 0)
	}
}

func TestDecayStopsOnAck(t *testing.T) {
	d := NewDecay(16, 1)
	d.Observe(node(0, 1), 0, &sim.Observation{Transmitted: true, Acked: true})
	if !d.Done() {
		t.Fatal("decay must stop on acknowledged delivery")
	}
	if d.Act(node(0, 1), 0).Transmit || d.TransmitProb() != 0 {
		t.Fatal("stopped decay must be silent")
	}
}

func TestDecaySmallN(t *testing.T) {
	d := NewDecay(1, 1) // clamped to n=2 → cycle length 1
	if got := d.TransmitProb(); got != 0.5 {
		t.Fatalf("degenerate decay p = %v", got)
	}
}

func TestFixedProbClamp(t *testing.T) {
	f := NewFixedProb(1, 5, 1)
	if f.TransmitProb() != 0.5 {
		t.Fatalf("p must clamp at 1/2, got %v", f.TransmitProb())
	}
	f2 := NewFixedProb(20, 1, 1)
	if got := f2.TransmitProb(); math.Abs(got-0.05) > 1e-12 {
		t.Fatalf("p = %v, want 0.05", got)
	}
	f3 := NewFixedProb(0, 1, 1) // degenerate degree clamps to 1
	if f3.TransmitProb() != 0.5 {
		t.Fatal("degenerate degree must clamp")
	}
}

func TestFixedProbTransmitRate(t *testing.T) {
	f := NewFixedProb(10, 1, 1)
	n := node(0, 7)
	tx := 0
	const trials = 20000
	for i := 0; i < trials; i++ {
		if f.Act(n, 0).Transmit {
			tx++
		}
	}
	rate := float64(tx) / trials
	if math.Abs(rate-0.1) > 0.01 {
		t.Fatalf("rate = %v, want ~0.1", rate)
	}
}

func TestRoundRobinSchedule(t *testing.T) {
	const n = 5
	rrs := make([]*RoundRobin, n)
	for i := range rrs {
		rrs[i] = NewRoundRobin(n, int64(i))
	}
	for tick := 0; tick < 3*n; tick++ {
		txers := 0
		for i, rr := range rrs {
			if rr.Act(node(i, 1), 0).Transmit {
				txers++
				if i != tick%n {
					t.Fatalf("tick %d: node %d transmitted out of turn", tick, i)
				}
			}
		}
		if txers != 1 {
			t.Fatalf("tick %d: %d transmitters, want exactly 1", tick, txers)
		}
	}
}

func TestRoundRobinStopsOnAck(t *testing.T) {
	rr := NewRoundRobin(3, 1)
	rr.Observe(node(0, 1), 0, &sim.Observation{Transmitted: true, Acked: true})
	if rr.Act(node(0, 1), 0).Transmit {
		t.Fatal("stopped round-robin node must be silent in its slot")
	}
}

func TestDecayBcastWakesOnReceipt(t *testing.T) {
	d := NewDecayBcast(16, 42, false)
	if d.Informed() || d.Act(node(1, 1), 0).Transmit {
		t.Fatal("uninformed flooding node must be silent")
	}
	d.Observe(node(1, 1), 0, &sim.Observation{
		Received: []sim.Recv{{From: 0, Msg: sim.Message{Kind: KindBaseline, Data: 42}}},
	})
	if !d.Informed() {
		t.Fatal("receipt must inform")
	}
	if d.TransmitProb() != 0.5 {
		t.Fatalf("first decay step p = %v", d.TransmitProb())
	}
}

func TestDecayBcastSourceStartsInformed(t *testing.T) {
	if !NewDecayBcast(16, 42, true).Informed() {
		t.Fatal("source must start informed")
	}
}

// Integration: all three local baselines complete on a small line network
// with free acknowledgements.
func TestBaselinesIntegration(t *testing.T) {
	const k = 8
	pts := make([]geom.Point, k)
	for i := range pts {
		pts[i] = geom.Point{X: float64(i), Y: 0}
	}
	mk := func(factory sim.ProtocolFactory) *sim.Sim {
		s, err := sim.New(sim.Config{
			Space: metric.NewEuclidean(pts),
			Model: model.NewSINR(8, 1, 1, 3, 0.1),
			P:     8, Zeta: 3, Noise: 1, Eps: 0.1,
			Seed:       9,
			Primitives: sim.FreeAck,
		}, factory)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	cases := map[string]sim.ProtocolFactory{
		"decay":      func(id int) sim.Protocol { return NewDecay(k, int64(id)) },
		"fixed":      func(id int) sim.Protocol { return NewFixedProb(2, 1, int64(id)) },
		"roundrobin": func(id int) sim.Protocol { return NewRoundRobin(k, int64(id)) },
	}
	for name, factory := range cases {
		t.Run(name, func(t *testing.T) {
			s := mk(factory)
			_, ok := s.RunUntil(func(s *sim.Sim) bool {
				for v := 0; v < k; v++ {
					if s.FirstMassDelivery(v) < 0 {
						return false
					}
				}
				return true
			}, 20000)
			if !ok {
				t.Fatalf("%s did not complete local broadcast", name)
			}
		})
	}
}

func TestDecayBcastIntegration(t *testing.T) {
	const k = 8
	pts := make([]geom.Point, k)
	for i := range pts {
		pts[i] = geom.Point{X: float64(i), Y: 0}
	}
	s, err := sim.New(sim.Config{
		Space: metric.NewEuclidean(pts),
		Model: model.NewSINR(8, 1, 1, 3, 0.1),
		P:     8, Zeta: 3, Noise: 1, Eps: 0.1,
		Seed: 9,
	}, func(id int) sim.Protocol { return NewDecayBcast(k, 42, id == 0) })
	if err != nil {
		t.Fatal(err)
	}
	s.MarkInformed(0)
	_, ok := s.RunUntil(func(s *sim.Sim) bool {
		for v := 0; v < k; v++ {
			if s.FirstDecode(v) < 0 {
				return false
			}
		}
		return true
	}, 20000)
	if !ok {
		t.Fatal("decay flooding did not inform the line")
	}
}

func TestRoundRobinDegenerate(t *testing.T) {
	rr := NewRoundRobin(0, 1) // clamps to n=1: transmits every slot
	if !rr.Act(node(0, 1), 0).Transmit {
		t.Fatal("degenerate round robin must transmit")
	}
}

func TestDecayBcastDegenerateN(t *testing.T) {
	d := NewDecayBcast(1, 1, true) // clamps to n=2 → cycle length 1
	if d.TransmitProb() != 0.5 {
		t.Fatalf("p = %v", d.TransmitProb())
	}
}

func TestDecayBcastUninformedProbZero(t *testing.T) {
	d := NewDecayBcast(16, 1, false)
	if d.TransmitProb() != 0 {
		t.Fatal("uninformed flooding node must report p = 0")
	}
}

func TestFixedProbDoneAccessor(t *testing.T) {
	f := NewFixedProb(4, 1, 1)
	if f.Done() {
		t.Fatal("fresh node must not be done")
	}
	f.Observe(node(0, 1), 0, &sim.Observation{Transmitted: true, Acked: true})
	if !f.Done() || f.TransmitProb() != 0 {
		t.Fatal("acked node must be done and silent")
	}
}
