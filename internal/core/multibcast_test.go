package core

import (
	"testing"

	"udwn/internal/rng"
	"udwn/internal/sim"
)

func TestMultiBcastLearnsMessages(t *testing.T) {
	m := NewMultiBcast(64, 100)
	n := &sim.Node{ID: 1, RNG: rng.New(1)}
	if m.Known() != 0 {
		t.Fatal("must start empty")
	}
	m.Observe(n, 0, &sim.Observation{Received: []sim.Recv{
		{From: 0, Msg: sim.Message{Kind: KindData, Data: 7}},
		{From: 2, Msg: sim.Message{Kind: KindData, Data: 9}},
	}})
	if m.Known() != 2 || !m.HasMessage(7) || !m.HasMessage(9) {
		t.Fatalf("known = %d", m.Known())
	}
	// Non-data kinds are ignored.
	m.Observe(n, 0, &sim.Observation{Received: []sim.Recv{
		{From: 3, Msg: sim.Message{Kind: KindDom, Data: 11}},
	}})
	if m.HasMessage(11) {
		t.Fatal("KindDom must not be learned as a payload")
	}
}

func TestMultiBcastInitialMessages(t *testing.T) {
	m := NewMultiBcast(64, 100, 3, 5)
	if m.Known() != 2 || !m.HasMessage(3) || !m.HasMessage(5) {
		t.Fatal("initial messages not held")
	}
	if m.TransmitProb() == 0 {
		t.Fatal("holder of uncovered messages must contend")
	}
}

func TestMultiBcastSilentWhenAllCovered(t *testing.T) {
	m := NewMultiBcast(64, 100, 3)
	n := &sim.Node{ID: 0, RNG: rng.New(2)}
	// Transmit 3 and get it ACKed.
	forceTransmit(t, m, n)
	m.Observe(n, 0, &sim.Observation{Transmitted: true, Acked: true})
	m.Act(n, 1)
	m.Observe(n, 1, &sim.Observation{})
	if m.CoveredCount() != 1 {
		t.Fatalf("covered = %d", m.CoveredCount())
	}
	if m.TransmitProb() != 0 {
		t.Fatal("fully covered node must be silent")
	}
	if got := m.Act(n, 0); got.Transmit {
		t.Fatal("covered node transmitted")
	}
	// A new message reactivates it.
	m.Observe(n, 0, &sim.Observation{Received: []sim.Recv{
		{From: 2, Msg: sim.Message{Kind: KindData, Data: 8}},
	}})
	if m.TransmitProb() == 0 {
		t.Fatal("new message must reactivate the node")
	}
}

// forceTransmit drives Act(slot 0) until the coin fires.
func forceTransmit(t *testing.T, m *MultiBcast, n *sim.Node) {
	t.Helper()
	for i := 0; i < 100000; i++ {
		if m.Act(n, 0).Transmit {
			return
		}
		// Idle rounds double the probability.
		m.Observe(n, 0, &sim.Observation{})
		m.Act(n, 1)
		m.Observe(n, 1, &sim.Observation{})
	}
	t.Fatal("coin never fired")
}

func TestMultiBcastNTDCoverage(t *testing.T) {
	m := NewMultiBcast(64, 10, 3)
	n := &sim.Node{ID: 1, RNG: rng.New(3)}
	m.Act(n, 0)
	m.Observe(n, 0, &sim.Observation{Received: []sim.Recv{
		{From: 0, Msg: sim.Message{Kind: KindData, Data: 5}, RSS: 1},
	}})
	m.Act(n, 1)
	m.Observe(n, 1, &sim.Observation{Received: []sim.Recv{
		{From: 0, Msg: sim.Message{Kind: KindData, Data: 5}, RSS: 20},
	}})
	if !m.HasMessage(5) {
		t.Fatal("message 5 must be learned")
	}
	if m.CoveredCount() != 1 {
		t.Fatal("near retransmission must cover message 5")
	}
	// Message 3 (its own) is still pending.
	if m.TransmitProb() == 0 {
		t.Fatal("message 3 still pending")
	}
}

func TestMultiBcastNTDRequiresSlot0Receipt(t *testing.T) {
	m := NewMultiBcast(64, 10, 3)
	n := &sim.Node{ID: 1, RNG: rng.New(4)}
	m.Act(n, 0)
	m.Observe(n, 0, &sim.Observation{})
	m.Act(n, 1)
	m.Observe(n, 1, &sim.Observation{Received: []sim.Recv{
		{From: 0, Msg: sim.Message{Kind: KindData, Data: 5}, RSS: 20},
	}})
	// The slot-1 receipt still informs, but must not cover.
	if !m.HasMessage(5) {
		t.Fatal("slot-1 receipt must inform")
	}
	if m.CoveredCount() != 0 {
		t.Fatal("coverage requires the slot-0 receipt")
	}
}

func TestMultiBcastIntegration(t *testing.T) {
	// Two sources at the ends of a line; every node must collect both
	// messages.
	const k = 8
	pts := makeLine(k)
	ntd := ntdThresholdFor(pts)
	s := twoSlotSim(t, pts, func(id int) sim.Protocol {
		switch id {
		case 0:
			return NewMultiBcast(k, ntd, 100)
		case k - 1:
			return NewMultiBcast(k, ntd, 200)
		default:
			return NewMultiBcast(k, ntd)
		}
	})
	_, ok := s.RunUntil(func(s *sim.Sim) bool {
		for v := 0; v < k; v++ {
			p := s.Protocol(v).(*MultiBcast)
			if !p.HasMessage(100) || !p.HasMessage(200) {
				return false
			}
		}
		return true
	}, 100000)
	if !ok {
		t.Fatal("two-message broadcast did not complete")
	}
}
