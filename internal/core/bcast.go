package core

import (
	"math"

	"udwn/internal/sim"
)

// Bcast is the Section 5 global broadcast algorithm for synchronous,
// non-spontaneous networks. Rounds have two slots:
//
//   - Slot 0: informed nodes disseminate the payload with Try&Adjust(β),
//     using the higher-precision ACK(ε/2)/SuccClear(ε/2) primitives (the
//     simulator is configured with SenseEps = ε/2).
//   - Slot 1: a node that detected ACK in slot 0 retransmits, notifying the
//     εR/2-neighbourhood that its surroundings are covered; it restarts
//     Try&Adjust. A node that received in slot 0 and detects NTD in slot 1
//     also restarts (its neighbourhood has been covered by the near
//     transmitter).
//
// The static variant Bcast* (StopWhenCovered) stops such nodes outright and
// runs with β = 1, giving the O(D·log n) bound of Corollary 5.2.
type Bcast struct {
	ta TryAdjust
	// StopWhenCovered selects the Bcast* behaviour: stop instead of
	// restarting the backoff state.
	stopWhenCovered bool
	// notifyScale, when positive, replaces the NTD primitive with power
	// control per App. B: the slot-1 notification is transmitted at this
	// power scale, so only nodes within scale^{1/ζ}·R can decode it at all —
	// its receipt certifies proximity with no sensing hardware.
	notifyScale float64

	informed bool
	stopped  bool
	data     int64

	// Per-round slot-0 outcomes, consumed in slot 1.
	ackSlot0 bool
	rcvSlot0 bool
}

var (
	_ sim.Protocol     = (*Bcast)(nil)
	_ sim.ProbReporter = (*Bcast)(nil)
)

// NewBcast returns the dynamic-network Bcast(β) protocol. isSource marks the
// distinguished node that initially holds the message.
func NewBcast(n int, beta float64, data int64, isSource bool) *Bcast {
	return &Bcast{ta: NewTryAdjust(n, beta), data: data, informed: isSource}
}

// NewBcastStar returns the static variant Bcast*: β = 1 and nodes stop once
// they have delivered or their neighbourhood is covered.
func NewBcastStar(n int, data int64, isSource bool) *Bcast {
	return &Bcast{
		ta:              NewTryAdjust(n, 1),
		data:            data,
		informed:        isSource,
		stopWhenCovered: true,
	}
}

// NewBcastStarPC returns Bcast* with the NTD primitive replaced by power
// control (App. B): slot-1 notifications are sent at power scale
// notifyScale = (εR'/(2R))^ζ so that only εR'/2-near nodes can decode them.
// The protocol then needs only CD and ACK. It requires a power-aware
// (fading) communication model.
func NewBcastStarPC(n int, data int64, isSource bool, notifyScale float64) *Bcast {
	if notifyScale <= 0 || notifyScale >= 1 {
		panic("core: power-control notify scale must be in (0,1)")
	}
	return &Bcast{
		ta:              NewTryAdjust(n, 1),
		data:            data,
		informed:        isSource,
		stopWhenCovered: true,
		notifyScale:     notifyScale,
	}
}

// NotifyScaleFor returns the slot-1 power scale that limits the decode
// range to eps·R/2 for a model with exponent zeta: scale = (eps/2)^ζ, since
// the scaled range is scale^{1/ζ}·R.
func NotifyScaleFor(eps, zeta float64) float64 {
	return math.Pow(eps/2, zeta)
}

// Act transmits the payload in slot 0 per Try&Adjust and the notification
// retransmission in slot 1 after a detected ACK.
func (b *Bcast) Act(n *sim.Node, slot int) sim.Action {
	if slot == 0 {
		b.ackSlot0 = false
		b.rcvSlot0 = false
		if !b.informed || b.stopped {
			return sim.Action{}
		}
		return sim.Action{
			Transmit: b.ta.Decide(n.RNG),
			Msg:      sim.Message{Kind: KindData, Data: b.data},
		}
	}
	if b.ackSlot0 {
		if b.notifyScale > 0 {
			return sim.Action{
				Transmit:   true,
				Msg:        sim.Message{Kind: KindNotify, Data: b.data},
				PowerScale: b.notifyScale,
			}
		}
		return sim.Action{Transmit: true, Msg: sim.Message{Kind: KindData, Data: b.data}}
	}
	return sim.Action{}
}

// Observe wakes on receipt, applies the backoff rule in slot 0, and handles
// the success / coverage transitions in slot 1.
func (b *Bcast) Observe(n *sim.Node, slot int, obs *sim.Observation) {
	if len(obs.Received) > 0 && !b.informed {
		// Non-spontaneous wake-up: join the execution upon first receipt.
		b.informed = true
		if slot == 0 {
			b.rcvSlot0 = true
		}
		return
	}
	if slot == 0 {
		b.ackSlot0 = obs.Transmitted && obs.Acked
		b.rcvSlot0 = len(obs.Received) > 0
		if b.informed && !b.stopped {
			b.ta.Adjust(obs.Busy)
		}
		return
	}
	// Slot 1.
	switch {
	case b.ackSlot0:
		b.coveredTransition()
	case b.rcvSlot0 && b.nearNotified(obs):
		b.coveredTransition()
	}
}

// nearNotified reports whether slot 1 carried a proximity certificate: the
// NTD primitive's flag, or — in the power-control variant — the receipt of
// a low-power notification, which is decodable only very near its sender.
func (b *Bcast) nearNotified(obs *sim.Observation) bool {
	if b.notifyScale > 0 {
		for _, rc := range obs.Received {
			if rc.Msg.Kind == KindNotify {
				return true
			}
		}
		return false
	}
	return obs.NTD
}

func (b *Bcast) coveredTransition() {
	if b.stopWhenCovered {
		b.stopped = true
	} else {
		b.ta.Restart()
	}
}

// Informed reports whether the node holds the message.
func (b *Bcast) Informed() bool { return b.informed }

// Stopped reports whether a Bcast* node has stopped.
func (b *Bcast) Stopped() bool { return b.stopped }

// TransmitProb exposes the slot-0 probability for instrumentation.
func (b *Bcast) TransmitProb() float64 {
	if !b.informed || b.stopped {
		return 0
	}
	return b.ta.P()
}
