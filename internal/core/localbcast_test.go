package core

import (
	"testing"

	"udwn/internal/geom"
	"udwn/internal/metric"
	"udwn/internal/model"
	"udwn/internal/rng"
	"udwn/internal/sim"
)

func TestLocalBcastStopsOnAck(t *testing.T) {
	l := NewLocalBcast(64, 5)
	n := &sim.Node{ID: 1, RNG: rng.New(1)}
	l.Observe(n, 0, &sim.Observation{Transmitted: true, Acked: true})
	if !l.Done() {
		t.Fatal("node must stop after ACK")
	}
	if l.TransmitProb() != 0 {
		t.Fatal("stopped node must have p = 0")
	}
	if l.Act(n, 0).Transmit {
		t.Fatal("stopped node must not transmit")
	}
	// Further observations are ignored.
	l.Observe(n, 0, &sim.Observation{Busy: false})
	if l.TransmitProb() != 0 {
		t.Fatal("stopped node must stay stopped")
	}
}

func TestLocalBcastAckWithoutTransmitIgnored(t *testing.T) {
	l := NewLocalBcast(64, 5)
	n := &sim.Node{ID: 1, RNG: rng.New(1)}
	l.Observe(n, 0, &sim.Observation{Transmitted: false, Acked: true})
	if l.Done() {
		t.Fatal("ACK without own transmission must not stop the node")
	}
}

func TestLocalBcastAdjusts(t *testing.T) {
	l := NewLocalBcast(64, 5)
	n := &sim.Node{ID: 1, RNG: rng.New(1)}
	p0 := l.TransmitProb()
	l.Observe(n, 0, &sim.Observation{Busy: false})
	if l.TransmitProb() != 2*p0 {
		t.Fatal("idle must double")
	}
}

func TestLocalBcastMessage(t *testing.T) {
	l := NewLocalBcastSpontaneous(0.5, 77)
	n := &sim.Node{ID: 2, RNG: rng.New(3)}
	for i := 0; i < 100; i++ {
		if act := l.Act(n, 0); act.Transmit {
			if act.Msg.Kind != KindLocal || act.Msg.Data != 77 {
				t.Fatalf("message = %+v", act.Msg)
			}
			return
		}
	}
	t.Fatal("never transmitted at p = 1/2")
}

// lineNetwork builds k collinear nodes spaced 1 apart under SINR with R = 2.
func lineNetwork(t *testing.T, k int, prims sim.Primitives, factory sim.ProtocolFactory) *sim.Sim {
	t.Helper()
	pts := make([]geom.Point, k)
	for i := range pts {
		pts[i] = geom.Point{X: float64(i), Y: 0}
	}
	s, err := sim.New(sim.Config{
		Space: metric.NewEuclidean(pts),
		Model: model.NewSINR(8, 1, 1, 3, 0.1),
		P:     8, Zeta: 3, Noise: 1, Eps: 0.1,
		Seed:       5,
		Primitives: prims,
		AckScale:   8,
	}, factory)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestLocalBcastIntegration(t *testing.T) {
	const k = 12
	s := lineNetwork(t, k, sim.CD|sim.ACK, func(id int) sim.Protocol {
		return NewLocalBcast(k, int64(id))
	})
	_, ok := s.RunUntil(func(s *sim.Sim) bool {
		for v := 0; v < k; v++ {
			if s.FirstMassDelivery(v) < 0 {
				return false
			}
		}
		return true
	}, 20000)
	if !ok {
		t.Fatal("local broadcast did not complete on a 12-node line")
	}
	for v := 0; v < k; v++ {
		if !s.Protocol(v).(*LocalBcast).Done() {
			t.Fatalf("node %d never detected its ACK", v)
		}
	}
}

func TestLocalBcastSpontaneousIntegration(t *testing.T) {
	const k = 12
	s := lineNetwork(t, k, sim.CD|sim.ACK, func(id int) sim.Protocol {
		return NewLocalBcastSpontaneous(0.5, int64(id))
	})
	_, ok := s.RunUntil(func(s *sim.Sim) bool {
		for v := 0; v < k; v++ {
			if s.FirstMassDelivery(v) < 0 {
				return false
			}
		}
		return true
	}, 20000)
	if !ok {
		t.Fatal("spontaneous local broadcast did not complete")
	}
}

func TestLocalBcastStopLagBounded(t *testing.T) {
	// A stopped node must actually have delivered: Done implies the sim
	// recorded a mass delivery (ACK soundness end to end).
	const k = 8
	s := lineNetwork(t, k, sim.CD|sim.ACK, func(id int) sim.Protocol {
		return NewLocalBcast(k, int64(id))
	})
	s.Run(5000)
	for v := 0; v < k; v++ {
		if s.Protocol(v).(*LocalBcast).Done() && s.FirstMassDelivery(v) < 0 {
			t.Fatalf("node %d stopped without delivering (unsound ACK)", v)
		}
	}
}
