package core

import "udwn/internal/sim"

// MCLocalBcast is local broadcast over multiple orthogonal channels, the
// speed-up direction of the related work on multi-channel ad-hoc networks.
// Each round the node tunes to a uniformly random channel and runs
// Try&Adjust there: contention detection, backoff and transmissions are all
// per-channel, so the network sustains up to C balanced channels' worth of
// concurrent successes.
//
// With C > 1 a single slot can no longer reach *all* neighbours (they are
// spread across channels), so the dissemination goal is cumulative
// coverage — every neighbour receives the message in some slot — measured
// by the simulator's coverage tracker; the protocol itself runs until told
// otherwise (Done never fires without an atomic full delivery, which is the
// correct, conservative reading of Def. ACK under channel spread).
type MCLocalBcast struct {
	ta       TryAdjust
	channels int
	done     bool
	data     int64
}

var (
	_ sim.Protocol     = (*MCLocalBcast)(nil)
	_ sim.ProbReporter = (*MCLocalBcast)(nil)
)

// NewMCLocalBcast returns the multi-channel protocol for a network-size
// estimate n over the given number of channels.
func NewMCLocalBcast(n, channels int, data int64) *MCLocalBcast {
	if channels < 1 {
		panic("core: MCLocalBcast needs at least one channel")
	}
	return &MCLocalBcast{ta: NewTryAdjust(n, 1), channels: channels, data: data}
}

// Act tunes to a random channel and transmits there with the Try&Adjust
// probability.
func (m *MCLocalBcast) Act(n *sim.Node, slot int) sim.Action {
	if m.done {
		return sim.Action{}
	}
	ch := 0
	if m.channels > 1 {
		ch = n.RNG.Intn(m.channels)
	}
	return sim.Action{
		Transmit: m.ta.Decide(n.RNG),
		Msg:      sim.Message{Kind: KindLocal, Data: m.data},
		Channel:  ch,
	}
}

// Observe applies the per-channel backoff rule and stops on a (rare under
// C > 1) full-delivery acknowledgement.
func (m *MCLocalBcast) Observe(n *sim.Node, slot int, obs *sim.Observation) {
	if m.done {
		return
	}
	if obs.Transmitted && obs.Acked {
		m.done = true
		return
	}
	m.ta.Adjust(obs.Busy)
}

// Done reports whether the node stopped on an atomic full delivery.
func (m *MCLocalBcast) Done() bool { return m.done }

// TransmitProb exposes the per-slot transmission probability.
func (m *MCLocalBcast) TransmitProb() float64 {
	if m.done {
		return 0
	}
	return m.ta.P()
}
