package core

import (
	"testing"

	"udwn/internal/geom"
	"udwn/internal/metric"
	"udwn/internal/model"
	"udwn/internal/rng"
	"udwn/internal/sensing"
	"udwn/internal/sim"
)

func makeLine(k int) []geom.Point {
	pts := make([]geom.Point, k)
	for i := range pts {
		pts[i] = geom.Point{X: float64(i), Y: 0}
	}
	return pts
}

// twoSlotSim builds a two-slot SINR sim (R = 2) over the given points with
// ε/2-precision primitives, matching the Bcast configuration.
func twoSlotSim(t *testing.T, pts []geom.Point, factory sim.ProtocolFactory) *sim.Sim {
	t.Helper()
	s, err := sim.New(sim.Config{
		Space: metric.NewEuclidean(pts),
		Model: model.NewSINR(8, 1, 1, 3, 0.1),
		P:     8, Zeta: 3, Noise: 1, Eps: 0.1, SenseEps: 0.05,
		Slots:      2,
		Seed:       5,
		Primitives: sim.CD | sim.ACK | sim.NTD,
		AckScale:   8,
	}, factory)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func ntdThresholdFor(pts []geom.Point) float64 {
	m := model.NewSINR(8, 1, 1, 3, 0.1)
	th := sensing.NewThresholds(8, 3, 0.05, m.R(), m.Params())
	return th.NTDRSS
}

func TestSpontBcastUnitTransitions(t *testing.T) {
	sb := NewSpontBcast(0.1, 0.5, 100, 42, false)
	n := &sim.Node{ID: 1, RNG: rng.New(1)}
	if sb.State() != Undecided || sb.Informed() {
		t.Fatal("initial state wrong")
	}
	// Force a dom transmission, then ACK it: node becomes dominator.
	for i := 0; i < 1000; i++ {
		act := sb.Act(n, 0)
		if act.Transmit {
			if act.Msg.Kind != KindDom {
				t.Fatalf("undecided node transmits %v, want KindDom", act.Msg.Kind)
			}
			break
		}
		sb.Observe(n, 0, &sim.Observation{})
		sb.Observe(n, 1, &sim.Observation{})
	}
	sb.Observe(n, 0, &sim.Observation{Transmitted: true, Acked: true})
	if sb.State() != Dominator {
		t.Fatalf("ACKed construction transmission must make a dominator, got %v", sb.State())
	}
	// Slot 1 retransmits the notification.
	if act := sb.Act(n, 1); !act.Transmit || act.Msg.Kind != KindDom {
		t.Fatal("dominator must retransmit KindDom in slot 1 after ACK")
	}
}

func TestSpontBcastDominatedByNearNotification(t *testing.T) {
	sb := NewSpontBcast(0.1, 0.001, 10, 42, false)
	n := &sim.Node{ID: 1, RNG: rng.New(2)}
	sb.Act(n, 0)
	sb.Observe(n, 0, &sim.Observation{
		Received: []sim.Recv{{From: 3, Msg: sim.Message{Kind: KindDom}, RSS: 1}},
	})
	sb.Act(n, 1)
	// Near KindDom notification (RSS above threshold 10) dominates.
	sb.Observe(n, 1, &sim.Observation{
		Received: []sim.Recv{{From: 3, Msg: sim.Message{Kind: KindDom}, RSS: 50}},
	})
	if sb.State() != Dominated {
		t.Fatalf("near notification must dominate, got %v", sb.State())
	}
	if sb.Act(n, 0).Transmit {
		t.Fatal("dominated uninformed node must stay silent")
	}
}

func TestSpontBcastFarNotificationIgnored(t *testing.T) {
	sb := NewSpontBcast(0.1, 0.001, 10, 42, false)
	n := &sim.Node{ID: 1, RNG: rng.New(3)}
	sb.Act(n, 0)
	sb.Observe(n, 0, &sim.Observation{
		Received: []sim.Recv{{From: 3, Msg: sim.Message{Kind: KindDom}, RSS: 1}},
	})
	sb.Act(n, 1)
	sb.Observe(n, 1, &sim.Observation{
		Received: []sim.Recv{{From: 3, Msg: sim.Message{Kind: KindDom}, RSS: 5}},
	})
	if sb.State() != Undecided {
		t.Fatal("far notification must not dominate")
	}
}

func TestSpontBcastRelayAndInform(t *testing.T) {
	sb := NewSpontBcast(0.5, 0.001, 10, 42, false)
	n := &sim.Node{ID: 1, RNG: rng.New(4)}
	// Become a dominator by fiat: transmit + ACK.
	sb.txDomSlot0 = true
	sb.Observe(n, 0, &sim.Observation{Transmitted: true, Acked: true})
	if sb.State() != Dominator {
		t.Fatal("setup failed")
	}
	// Not informed yet: no payload relay.
	if sb.TransmitProb() != 0 {
		t.Fatal("uninformed dominator must not relay")
	}
	// Payload receipt informs.
	sb.Observe(n, 0, &sim.Observation{
		Received: []sim.Recv{{From: 2, Msg: sim.Message{Kind: KindData, Data: 42}}},
	})
	if !sb.Informed() {
		t.Fatal("payload receipt must inform")
	}
	// Now it relays with p0.
	if sb.TransmitProb() != 0.5 {
		t.Fatalf("relay probability = %v, want 0.5", sb.TransmitProb())
	}
	found := false
	for i := 0; i < 100; i++ {
		if act := sb.Act(n, 0); act.Transmit {
			if act.Msg.Kind != KindData || act.Msg.Data != 42 {
				t.Fatalf("relay message = %+v", act.Msg)
			}
			found = true
			break
		}
	}
	if !found {
		t.Fatal("dominator never relayed at p0 = 0.5")
	}
	// ACK on the relay ends it.
	sb.Observe(n, 0, &sim.Observation{Transmitted: true, Acked: true})
	if !sb.RelayDone() {
		t.Fatal("ACKed relay must complete")
	}
	if sb.TransmitProb() != 0 {
		t.Fatal("completed relay must be silent")
	}
}

func TestSpontBcastDomTrafficDoesNotInform(t *testing.T) {
	sb := NewSpontBcast(0.1, 0.001, 10, 42, false)
	n := &sim.Node{ID: 1, RNG: rng.New(5)}
	sb.Observe(n, 0, &sim.Observation{
		Received: []sim.Recv{{From: 2, Msg: sim.Message{Kind: KindDom}}},
	})
	if sb.Informed() {
		t.Fatal("construction traffic must not count as the payload")
	}
}

func TestSpontBcastIntegrationLine(t *testing.T) {
	const k = 10
	pts := makeLine(k)
	ntd := ntdThresholdFor(pts)
	s := twoSlotSim(t, pts, func(id int) sim.Protocol {
		return NewSpontBcast(0.1, 0.25, ntd, 42, id == 0)
	})
	_, ok := s.RunUntil(func(s *sim.Sim) bool {
		for v := 0; v < k; v++ {
			if !s.Protocol(v).(*SpontBcast).Informed() {
				return false
			}
		}
		return true
	}, 60000)
	if !ok {
		t.Fatal("spontaneous broadcast did not complete on a line")
	}
	// Everyone decided a role along the way (no permanent undecided nodes
	// on a quiesced network).
	decided := 0
	for v := 0; v < k; v++ {
		if s.Protocol(v).(*SpontBcast).State() != Undecided {
			decided++
		}
	}
	if decided < k/2 {
		t.Fatalf("only %d/%d nodes decided a role", decided, k)
	}
}

func TestSpontBcastCoLocatedDomination(t *testing.T) {
	// Two co-located nodes (distance 0.04, safely inside the NTD radius
	// εR/4 = 0.05): once one becomes a dominator, the other must end
	// dominated, not dominator — exercising the NTD suppression path.
	pts := []geom.Point{{X: 0, Y: 0}, {X: 0.04, Y: 0}}
	ntd := ntdThresholdFor(pts)
	s := twoSlotSim(t, pts, func(id int) sim.Protocol {
		return NewSpontBcast(0.1, 0.25, ntd, 42, id == 0)
	})
	s.RunUntil(func(s *sim.Sim) bool {
		a := s.Protocol(0).(*SpontBcast).State()
		b := s.Protocol(1).(*SpontBcast).State()
		return a != Undecided && b != Undecided
	}, 20000)
	states := []DomState{
		s.Protocol(0).(*SpontBcast).State(),
		s.Protocol(1).(*SpontBcast).State(),
	}
	nDom, nSub := 0, 0
	for _, st := range states {
		switch st {
		case Dominator:
			nDom++
		case Dominated:
			nSub++
		}
	}
	if nDom != 1 || nSub != 1 {
		t.Fatalf("co-located pair ended as %v; want one dominator, one dominated", states)
	}
}

func TestSpontBcastPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on bad p0")
		}
	}()
	NewSpontBcast(0, 0.25, 1, 1, false)
}

// metricOfLine and lineModel are shared helpers for two-slot test sims.
func metricOfLine(pts []geom.Point) metric.Space { return metric.NewEuclidean(pts) }

func lineModel() model.Model { return model.NewSINR(8, 1, 1, 3, 0.1) }
