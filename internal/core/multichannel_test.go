package core

import (
	"testing"

	"udwn/internal/rng"
	"udwn/internal/sim"
)

func TestMCLocalBcastChannelSpread(t *testing.T) {
	m := NewMCLocalBcast(64, 4, 1)
	n := &sim.Node{ID: 0, RNG: rng.New(1)}
	seen := map[int]int{}
	for i := 0; i < 4000; i++ {
		act := m.Act(n, 0)
		if act.Channel < 0 || act.Channel >= 4 {
			t.Fatalf("channel out of range: %d", act.Channel)
		}
		seen[act.Channel]++
	}
	for ch := 0; ch < 4; ch++ {
		if seen[ch] < 800 || seen[ch] > 1200 {
			t.Fatalf("channel %d picked %d/4000 times; want ~uniform", ch, seen[ch])
		}
	}
}

func TestMCLocalBcastSingleChannel(t *testing.T) {
	m := NewMCLocalBcast(64, 1, 1)
	n := &sim.Node{ID: 0, RNG: rng.New(2)}
	for i := 0; i < 100; i++ {
		if m.Act(n, 0).Channel != 0 {
			t.Fatal("single-channel variant must stay on channel 0")
		}
	}
}

func TestMCLocalBcastBackoffAndStop(t *testing.T) {
	m := NewMCLocalBcast(64, 2, 1)
	n := &sim.Node{ID: 0, RNG: rng.New(3)}
	p0 := m.TransmitProb()
	m.Observe(n, 0, &sim.Observation{Busy: false})
	if m.TransmitProb() != 2*p0 {
		t.Fatal("idle must double")
	}
	m.Observe(n, 0, &sim.Observation{Transmitted: true, Acked: true})
	if !m.Done() || m.TransmitProb() != 0 || m.Act(n, 0).Transmit {
		t.Fatal("acked node must stop")
	}
}

func TestMCLocalBcastPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewMCLocalBcast(10, 0, 1)
}

func TestMCLocalBcastIntegrationCoverage(t *testing.T) {
	// On a short line with 2 channels, cumulative coverage must complete
	// even though atomic deliveries are channel-split.
	const k = 6
	pts := makeLine(k)
	s, err := sim.New(sim.Config{
		Space: metricOfLine(pts),
		Model: lineModel(),
		P:     8, Zeta: 3, Noise: 1, Eps: 0.1,
		Seed:          9,
		Channels:      2,
		Primitives:    sim.CD | sim.ACK,
		AckScale:      8,
		TrackCoverage: true,
	}, func(id int) sim.Protocol {
		return NewMCLocalBcast(k, 2, int64(id))
	})
	if err != nil {
		t.Fatal(err)
	}
	_, ok := s.RunUntil(func(s *sim.Sim) bool {
		for v := 0; v < k; v++ {
			if s.FirstFullCoverage(v) < 0 {
				return false
			}
		}
		return true
	}, 60000)
	if !ok {
		t.Fatal("multi-channel coverage did not complete")
	}
}
