// Package core implements the paper's algorithms: the Try&Adjust contention
// balancing procedure (Section 3), the LocalBcast asynchronous local
// broadcast algorithm (Section 4), the two-slot Bcast / Bcast* global
// broadcast algorithms (Section 5), and the spontaneous dominating-set
// broadcast of Appendix G.
//
// All algorithms are sim.Protocol implementations and are deliberately
// uniform across communication models: they consume only the CD/ACK/NTD
// primitives and their own coin flips, never the model internals.
package core

import (
	"math"

	"udwn/internal/rng"
	"udwn/internal/sim"
)

// Message kinds used by the algorithms.
const (
	// KindLocal tags local-broadcast payloads.
	KindLocal int32 = 1
	// KindData tags global-broadcast payloads.
	KindData int32 = 2
	// KindDom tags dominator-construction traffic (Appendix G).
	KindDom int32 = 3
	// KindNotify tags low-power coverage notifications (the App. B
	// power-control implementation of NTD).
	KindNotify int32 = 4
)

// TryAdjust is the contention balancing state of Section 3: a transmission
// probability that halves on a Busy channel and doubles (capped at 1/2)
// otherwise.
//
//	Try&Adjust(β): p initialised to n^{−β}/2 on arrival; each round,
//	transmit with probability p, then set
//	p ← max{p/2, n^{−β}} on Busy, p ← min{2p, 1/2} otherwise.
type TryAdjust struct {
	p     float64
	pMin  float64
	pInit float64
}

// NewTryAdjust returns the paper's Try&Adjust(β) state for a network-size
// estimate n: initial probability n^{−β}/2, halving floor n^{−β}.
// It panics if n < 1 or beta < 0 (programming errors).
func NewTryAdjust(n int, beta float64) TryAdjust {
	if n < 1 {
		panic("core: TryAdjust needs n >= 1")
	}
	if beta < 0 {
		panic("core: TryAdjust needs beta >= 0")
	}
	// The floor n^{-β} is capped at 1/2 so degenerate parameters (β near 0)
	// cannot push the probability beyond the transmission cap.
	floor := math.Min(math.Pow(float64(n), -beta), 0.5)
	return TryAdjust{p: floor / 2, pMin: floor, pInit: floor / 2}
}

// NewTryAdjustSpontaneous returns the uniform variant used in the static
// spontaneous setting: an arbitrary initial probability p0 and no floor, so
// the procedure needs no bound on the network size.
func NewTryAdjustSpontaneous(p0 float64) TryAdjust {
	if p0 <= 0 || p0 > 0.5 {
		panic("core: spontaneous initial probability must be in (0, 1/2]")
	}
	return TryAdjust{p: p0, pMin: 0, pInit: p0}
}

// P returns the current transmission probability.
func (t *TryAdjust) P() float64 { return t.p }

// Decide flips the transmission coin for this round.
func (t *TryAdjust) Decide(r *rng.Source) bool { return r.Bernoulli(t.p) }

// Adjust applies the backoff rule for the observed channel state.
func (t *TryAdjust) Adjust(busy bool) {
	if busy {
		t.p = math.Max(t.p/2, t.pMin)
	} else {
		t.p = math.Min(2*t.p, 0.5)
	}
}

// Restart resets the probability to its arrival value, as Bcast does after a
// success or a coverage notification.
func (t *TryAdjust) Restart() { t.p = t.pInit }

// Balancer is plain Try&Adjust as a standalone protocol: nodes forever
// balance contention and never stop. It exists to instrument Proposition 3.1
// (Figure 1: logarithmic-time convergence of contention from any starting
// configuration).
type Balancer struct {
	ta TryAdjust
}

var (
	_ sim.Protocol     = (*Balancer)(nil)
	_ sim.ProbReporter = (*Balancer)(nil)
)

// NewBalancer returns a Balancer with the given initial state.
func NewBalancer(ta TryAdjust) *Balancer { return &Balancer{ta: ta} }

// Act transmits with the current probability.
func (b *Balancer) Act(n *sim.Node, slot int) sim.Action {
	return sim.Action{
		Transmit: b.ta.Decide(n.RNG),
		Msg:      sim.Message{Kind: KindLocal, Data: int64(n.ID)},
	}
}

// Observe applies the backoff rule.
func (b *Balancer) Observe(n *sim.Node, slot int, obs *sim.Observation) {
	b.ta.Adjust(obs.Busy)
}

// TransmitProb exposes the probability for contention instrumentation.
func (b *Balancer) TransmitProb() float64 { return b.ta.P() }
