package core

import (
	"math"

	"udwn/internal/sim"
)

// NoCSLocalBcast is local broadcast WITHOUT carrier sensing, implementing
// the CD primitive "by other means" as sketched in Appendix B: in a
// synchronised system, contention can be estimated by probing. Time is
// divided into epochs of K sub-phases of C slots each; in sub-phase i every
// contender transmits with its Try&Adjust probability scaled by 2^{1−i}.
// A node's decode rate in sub-phase i is ≈ S·e^{−S} with S = 2^{1−i}·P,
// where P is the true neighbourhood contention: the sub-phase where decodes
// peak reveals log₂ P. One Try&Adjust step is applied per epoch, so the
// protocol pays the promised logarithmic-factor overhead over carrier-sense
// LocalBcast (Table 7 measures exactly this gap).
//
// Without carrier sensing there is no threshold-ACK either; the stop rule
// uses the acknowledgement bit the simulator is configured with (FreeAck,
// matching the "free acknowledgements" assumption of the carrier-sense-free
// local broadcast literature).
type NoCSLocalBcast struct {
	ta   TryAdjust
	done bool
	data int64

	// Epoch structure.
	k       int // sub-phases per epoch
	c       int // slots per sub-phase
	slot    int // slot index within the epoch
	decodes []int

	// busyThreshold is the contention estimate above which the epoch reads
	// Busy; the paper's φ > 1.
	busyThreshold float64
}

var (
	_ sim.Protocol     = (*NoCSLocalBcast)(nil)
	_ sim.ProbReporter = (*NoCSLocalBcast)(nil)
	_ sim.Quiescent    = (*NoCSLocalBcast)(nil)
)

// NewNoCSLocalBcast returns the probing protocol for a network-size
// estimate n. probesPerPhase is the repetition constant C (≥ 1); the number
// of sub-phases is K = ⌈log₂ n⌉ + 1.
func NewNoCSLocalBcast(n int, probesPerPhase int, data int64) *NoCSLocalBcast {
	if n < 2 {
		n = 2
	}
	if probesPerPhase < 1 {
		probesPerPhase = 1
	}
	k := int(math.Ceil(math.Log2(float64(n)))) + 1
	return &NoCSLocalBcast{
		ta:            NewTryAdjust(n, 1),
		data:          data,
		k:             k,
		c:             probesPerPhase,
		decodes:       make([]int, k),
		busyThreshold: 2,
	}
}

// EpochLen returns the number of slots per logical Try&Adjust round.
func (p *NoCSLocalBcast) EpochLen() int { return p.k * p.c }

// subPhase returns the current sub-phase index (0-based).
func (p *NoCSLocalBcast) subPhase() int { return p.slot / p.c }

// Act transmits with the sub-phase-scaled probability.
func (p *NoCSLocalBcast) Act(n *sim.Node, slot int) sim.Action {
	if p.done {
		return sim.Action{}
	}
	scaled := p.ta.P() * math.Pow(2, -float64(p.subPhase()))
	return sim.Action{
		Transmit: n.RNG.Bernoulli(scaled),
		Msg:      sim.Message{Kind: KindLocal, Data: p.data},
	}
}

// Observe accumulates decode counts and applies one Try&Adjust step per
// epoch using the probing estimate of the channel state.
func (p *NoCSLocalBcast) Observe(n *sim.Node, slot int, obs *sim.Observation) {
	if p.done {
		return
	}
	if obs.Transmitted && obs.Acked {
		p.done = true
		return
	}
	if len(obs.Received) > 0 {
		p.decodes[p.subPhase()]++
	}
	p.slot++
	if p.slot < p.EpochLen() {
		return
	}
	p.ta.Adjust(p.estimateBusy())
	p.slot = 0
	for i := range p.decodes {
		p.decodes[i] = 0
	}
}

// estimateBusy converts the epoch's decode profile into a Busy/Idle call:
// the peak sub-phase i* satisfies 2^{−i*}·P ≈ 1, so P ≈ 2^{i*}. A silent
// epoch reads Idle (negligible contention).
func (p *NoCSLocalBcast) estimateBusy() bool {
	best, bestCount := -1, 0
	for i, c := range p.decodes {
		if c > bestCount {
			best, bestCount = i, c
		}
	}
	if best < 0 {
		return false
	}
	return math.Pow(2, float64(best)) >= p.busyThreshold
}

// Done reports whether the node has stopped.
func (p *NoCSLocalBcast) Done() bool { return p.done }

// TransmitProb reports the unscaled Try&Adjust probability.
func (p *NoCSLocalBcast) TransmitProb() float64 {
	if p.done {
		return 0
	}
	return p.ta.P()
}

// QuiescentFor promises permanent inertness once stopped: Act and Observe
// both early-return without touching the RNG or the epoch state.
func (p *NoCSLocalBcast) QuiescentFor() int {
	if p.done {
		return 1 << 30
	}
	return 0
}

// SkipQuiet is a no-op: a stopped node's state no longer evolves.
func (p *NoCSLocalBcast) SkipQuiet(int) {}
