package core

import (
	"math"
	"testing"
	"testing/quick"

	"udwn/internal/rng"
	"udwn/internal/sim"
)

func TestTryAdjustInit(t *testing.T) {
	ta := NewTryAdjust(100, 1)
	if got, want := ta.P(), 1.0/200; math.Abs(got-want) > 1e-15 {
		t.Fatalf("initial p = %v, want %v", got, want)
	}
	ta2 := NewTryAdjust(16, 2)
	if got, want := ta2.P(), math.Pow(16, -2)/2; math.Abs(got-want) > 1e-15 {
		t.Fatalf("β=2 initial p = %v, want %v", got, want)
	}
}

func TestTryAdjustDoubling(t *testing.T) {
	ta := NewTryAdjust(64, 1)
	for i := 0; i < 100; i++ {
		ta.Adjust(false)
	}
	if ta.P() != 0.5 {
		t.Fatalf("idle channel must drive p to the 1/2 cap, got %v", ta.P())
	}
}

func TestTryAdjustHalvingFloor(t *testing.T) {
	ta := NewTryAdjust(64, 1)
	for i := 0; i < 100; i++ {
		ta.Adjust(true)
	}
	if got, want := ta.P(), 1.0/64; got != want {
		t.Fatalf("busy channel must floor p at n^-β = %v, got %v", want, got)
	}
}

func TestTryAdjustFirstHalveRises(t *testing.T) {
	// The paper initialises at n^{-β}/2 with floor n^{-β}: the first Busy
	// round raises the probability to the floor.
	ta := NewTryAdjust(64, 1)
	ta.Adjust(true)
	if got, want := ta.P(), 1.0/64; got != want {
		t.Fatalf("after first Busy p = %v, want floor %v", got, want)
	}
}

func TestTryAdjustRestart(t *testing.T) {
	ta := NewTryAdjust(64, 1)
	init := ta.P()
	for i := 0; i < 10; i++ {
		ta.Adjust(false)
	}
	ta.Restart()
	if ta.P() != init {
		t.Fatalf("Restart: p = %v, want %v", ta.P(), init)
	}
}

func TestTryAdjustSpontaneousNoFloor(t *testing.T) {
	ta := NewTryAdjustSpontaneous(0.5)
	for i := 0; i < 30; i++ {
		ta.Adjust(true)
	}
	if got := ta.P(); got > 1e-9 {
		t.Fatalf("spontaneous variant has no floor; p = %v", got)
	}
}

func TestTryAdjustPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"n=0":     func() { NewTryAdjust(0, 1) },
		"beta<0":  func() { NewTryAdjust(10, -1) },
		"p0=0":    func() { NewTryAdjustSpontaneous(0) },
		"p0>half": func() { NewTryAdjustSpontaneous(0.7) },
	} {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		})
	}
}

// Property: p always stays within [min(pInit, floor... ), 1/2].
func TestTryAdjustBoundsProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		ta := NewTryAdjust(2+r.Intn(1000), r.Range(0, 3))
		lo := ta.P() // init is the lowest reachable value
		for i := 0; i < 200; i++ {
			ta.Adjust(r.Bernoulli(0.5))
			if ta.P() < lo-1e-18 || ta.P() > 0.5 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: Adjust is exactly halving/doubling within the clamps.
func TestTryAdjustStepProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		ta := NewTryAdjustSpontaneous(r.Range(0.001, 0.5))
		for i := 0; i < 100; i++ {
			before := ta.P()
			busy := r.Bernoulli(0.5)
			ta.Adjust(busy)
			after := ta.P()
			if busy && after != before/2 {
				return false
			}
			if !busy && after != math.Min(2*before, 0.5) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestBalancerAdjustsOnBusy(t *testing.T) {
	b := NewBalancer(NewTryAdjustSpontaneous(0.25))
	n := &sim.Node{ID: 3, RNG: rng.New(1)}
	b.Observe(n, 0, &sim.Observation{Busy: true})
	if b.TransmitProb() != 0.125 {
		t.Fatalf("p = %v after Busy", b.TransmitProb())
	}
	b.Observe(n, 0, &sim.Observation{Busy: false})
	if b.TransmitProb() != 0.25 {
		t.Fatalf("p = %v after Idle", b.TransmitProb())
	}
}

func TestBalancerTransmitsAtRate(t *testing.T) {
	b := NewBalancer(NewTryAdjustSpontaneous(0.5))
	n := &sim.Node{ID: 0, RNG: rng.New(42)}
	tx := 0
	const trials = 10000
	for i := 0; i < trials; i++ {
		if b.Act(n, 0).Transmit {
			tx++
		}
	}
	rate := float64(tx) / trials
	if math.Abs(rate-0.5) > 0.03 {
		t.Fatalf("transmit rate = %v, want ~0.5", rate)
	}
}

func TestBalancerMessageCarriesID(t *testing.T) {
	b := NewBalancer(NewTryAdjustSpontaneous(0.5))
	n := &sim.Node{ID: 9, RNG: rng.New(1)}
	for i := 0; i < 50; i++ {
		act := b.Act(n, 0)
		if act.Transmit {
			if act.Msg.Kind != KindLocal || act.Msg.Data != 9 {
				t.Fatalf("message = %+v", act.Msg)
			}
			return
		}
	}
	t.Fatal("balancer never transmitted at p=1/2 in 50 trials")
}
