package core

import (
	"testing"

	"udwn/internal/rng"
	"udwn/internal/sim"
)

func TestNoCSEpochStructure(t *testing.T) {
	p := NewNoCSLocalBcast(16, 3, 1) // K = 5, C = 3 → epoch 15
	if p.EpochLen() != 15 {
		t.Fatalf("EpochLen = %d, want 15", p.EpochLen())
	}
	if NewNoCSLocalBcast(1, 0, 1).EpochLen() != 2 {
		t.Fatal("degenerate parameters must clamp")
	}
}

func TestNoCSSubPhaseScaling(t *testing.T) {
	p := NewNoCSLocalBcast(16, 2, 1)
	n := &sim.Node{ID: 0, RNG: rng.New(1)}
	// Advance to the last sub-phase: probability scales by 2^{-(K-1)}.
	for p.subPhase() < p.k-1 {
		p.Observe(n, 0, &sim.Observation{})
	}
	// With base probability 1/32 and scale 2^-4 the transmit rate is tiny:
	// over many trials almost no transmissions.
	tx := 0
	for i := 0; i < 1000; i++ {
		if p.Act(n, 0).Transmit {
			tx++
		}
	}
	if tx > 10 {
		t.Fatalf("scaled probability too high: %d/1000 transmissions", tx)
	}
}

func TestNoCSBusyEstimate(t *testing.T) {
	p := NewNoCSLocalBcast(64, 4, 1)
	// Decodes peaking in sub-phase 3 → contention estimate 2³ = 8 ≥ 2 → Busy.
	p.decodes[3] = 5
	p.decodes[1] = 2
	if !p.estimateBusy() {
		t.Fatal("peak at sub-phase 3 must read Busy")
	}
	// Peak in sub-phase 0 → estimate 1 < 2 → Idle.
	for i := range p.decodes {
		p.decodes[i] = 0
	}
	p.decodes[0] = 5
	if p.estimateBusy() {
		t.Fatal("peak at sub-phase 0 must read Idle")
	}
	// Silent epoch → Idle.
	for i := range p.decodes {
		p.decodes[i] = 0
	}
	if p.estimateBusy() {
		t.Fatal("silent epoch must read Idle")
	}
}

func TestNoCSAdjustsOncePerEpoch(t *testing.T) {
	p := NewNoCSLocalBcast(16, 2, 1)
	n := &sim.Node{ID: 0, RNG: rng.New(2)}
	p0 := p.TransmitProb()
	// A full silent epoch: exactly one doubling at the boundary.
	for i := 0; i < p.EpochLen()-1; i++ {
		p.Observe(n, 0, &sim.Observation{})
		if p.TransmitProb() != p0 {
			t.Fatalf("probability changed mid-epoch at slot %d", i)
		}
	}
	p.Observe(n, 0, &sim.Observation{})
	if p.TransmitProb() != 2*p0 {
		t.Fatalf("epoch boundary: p = %v, want %v", p.TransmitProb(), 2*p0)
	}
}

func TestNoCSStopsOnAck(t *testing.T) {
	p := NewNoCSLocalBcast(16, 2, 1)
	n := &sim.Node{ID: 0, RNG: rng.New(3)}
	p.Observe(n, 0, &sim.Observation{Transmitted: true, Acked: true})
	if !p.Done() || p.TransmitProb() != 0 {
		t.Fatal("must stop on acknowledged delivery")
	}
	if p.Act(n, 0).Transmit {
		t.Fatal("stopped node must be silent")
	}
}

func TestNoCSIntegration(t *testing.T) {
	// The probing protocol completes local broadcast on a line with free
	// acknowledgements, no CD granted.
	const k = 10
	s := lineNetwork(t, k, sim.FreeAck, func(id int) sim.Protocol {
		return NewNoCSLocalBcast(k, 2, int64(id))
	})
	_, ok := s.RunUntil(func(s *sim.Sim) bool {
		for v := 0; v < k; v++ {
			if s.FirstMassDelivery(v) < 0 {
				return false
			}
		}
		return true
	}, 100000)
	if !ok {
		t.Fatal("no-carrier-sense local broadcast did not complete")
	}
}
