package core_test

import (
	"fmt"

	"udwn/internal/core"
)

// ExampleTryAdjust shows the backoff rule in isolation: Busy halves the
// transmission probability (never below the floor n^{-β}), Idle doubles it
// (never above 1/2).
func ExampleTryAdjust() {
	ta := core.NewTryAdjust(16, 1) // floor 1/16, start 1/32
	fmt.Println(ta.P())
	ta.Adjust(false) // Idle → double
	fmt.Println(ta.P())
	ta.Adjust(true) // Busy → halve, clamped to the floor
	fmt.Println(ta.P())
	for i := 0; i < 10; i++ {
		ta.Adjust(false)
	}
	fmt.Println(ta.P()) // capped at 1/2
	ta.Restart()
	fmt.Println(ta.P())
	// Output:
	// 0.03125
	// 0.0625
	// 0.0625
	// 0.5
	// 0.03125
}

// ExampleNotifyScaleFor derives the power scale that implements the NTD
// primitive by power control (Appendix B): the scaled transmission is only
// decodable within εR/2.
func ExampleNotifyScaleFor() {
	scale := core.NotifyScaleFor(0.1, 3)
	fmt.Printf("%.6f\n", scale)
	// Output: 0.000125
}
