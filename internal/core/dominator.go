package core

import "udwn/internal/sim"

// DomState is a node's role in the Appendix G dominating-set construction.
type DomState int

// Dominating-set roles.
const (
	// Undecided nodes are still contending in the construction.
	Undecided DomState = iota + 1
	// Dominator nodes stopped via SuccClear (a detected ACK): their
	// transmission reached everything in range, so they dominate it.
	Dominator
	// Dominated nodes stopped via NTD: a very near node is a dominator.
	Dominated
)

// SpontBcast is the Appendix G spontaneous broadcast: all nodes run the
// dominating-set construction (Bcast* in spontaneous mode with their own id
// as the message) and, simultaneously, informed dominators relay the
// broadcast payload with a small constant probability p0 until they detect
// ACK. With a constant-density dominator set the relay stage completes in
// O(D_G + log n) rounds, and neither stage needs to know n when run
// spontaneously.
type SpontBcast struct {
	ta TryAdjust
	// p0 is the dominator relay probability; a small constant.
	p0 float64
	// ntdRSS classifies per-message receipts as near; it equals the NTD
	// threshold of the simulator's sensing configuration.
	ntdRSS float64

	state     DomState
	informed  bool
	relayDone bool
	isSource  bool
	data      int64

	// Per-round slot-0 outcomes.
	txDomSlot0  bool
	ackSlot0    bool
	rcvDomSlot0 bool
}

var (
	_ sim.Protocol     = (*SpontBcast)(nil)
	_ sim.ProbReporter = (*SpontBcast)(nil)
)

// NewSpontBcast returns the spontaneous broadcast protocol for one node.
// p0 is the dominator relay probability (a small constant, e.g. 0.05);
// pInit is the spontaneous Try&Adjust starting probability (arbitrary; the
// uniform algorithm needs no n); ntdRSS is the sensing NTD threshold used to
// classify which decoded messages are "near".
func NewSpontBcast(p0, pInit, ntdRSS float64, data int64, isSource bool) *SpontBcast {
	if p0 <= 0 || p0 > 0.5 {
		panic("core: relay probability must be in (0, 1/2]")
	}
	return &SpontBcast{
		ta:       NewTryAdjustSpontaneous(pInit),
		p0:       p0,
		ntdRSS:   ntdRSS,
		state:    Undecided,
		informed: isSource,
		isSource: isSource,
		data:     data,
	}
}

// Act runs the dominator construction (undecided nodes) and the payload
// relay (informed dominators and the source) in slot 0, and the ACK
// notification retransmission in slot 1.
func (s *SpontBcast) Act(n *sim.Node, slot int) sim.Action {
	if slot == 0 {
		s.txDomSlot0 = false
		s.ackSlot0 = false
		s.rcvDomSlot0 = false
		switch {
		case s.state == Undecided:
			if s.ta.Decide(n.RNG) {
				s.txDomSlot0 = true
				return sim.Action{Transmit: true, Msg: sim.Message{Kind: KindDom, Data: int64(n.ID)}}
			}
		case s.relaying():
			if n.RNG.Bernoulli(s.p0) {
				return sim.Action{Transmit: true, Msg: sim.Message{Kind: KindData, Data: s.data}}
			}
		}
		return sim.Action{}
	}
	// Slot 1: notify the εR/2 neighbourhood of a construction success.
	if s.ackSlot0 && s.txDomSlot0 {
		return sim.Action{Transmit: true, Msg: sim.Message{Kind: KindDom, Data: int64(n.ID)}}
	}
	return sim.Action{}
}

// relaying reports whether the node is actively relaying the payload.
func (s *SpontBcast) relaying() bool {
	if s.relayDone || !s.informed {
		return false
	}
	return s.state == Dominator || s.isSource
}

// Observe handles wake-up, backoff, the dominator/dominated transitions and
// relay completion.
func (s *SpontBcast) Observe(n *sim.Node, slot int, obs *sim.Observation) {
	for _, rc := range obs.Received {
		if rc.Msg.Kind == KindData {
			s.informed = true
		}
	}
	if slot == 0 {
		s.ackSlot0 = obs.Transmitted && obs.Acked
		for _, rc := range obs.Received {
			if rc.Msg.Kind == KindDom {
				s.rcvDomSlot0 = true
			}
		}
		switch {
		case s.state == Undecided:
			if s.ackSlot0 && s.txDomSlot0 {
				// Stopped by SuccClear: this node is a dominator.
				s.state = Dominator
			} else {
				s.ta.Adjust(obs.Busy)
			}
		case obs.Transmitted && obs.Acked:
			// A relay transmission reached all neighbours: done.
			s.relayDone = true
		}
		return
	}
	// Slot 1: a near slot-1 KindDom retransmission dominates this node.
	if s.state != Undecided || !s.rcvDomSlot0 {
		return
	}
	for _, rc := range obs.Received {
		if rc.Msg.Kind == KindDom && rc.RSS >= s.ntdRSS {
			s.state = Dominated
			return
		}
	}
}

// State returns the node's dominating-set role.
func (s *SpontBcast) State() DomState { return s.state }

// Informed reports whether the node holds the payload.
func (s *SpontBcast) Informed() bool { return s.informed }

// RelayDone reports whether a relaying node has completed its delivery.
func (s *SpontBcast) RelayDone() bool { return s.relayDone }

// TransmitProb exposes the slot-0 transmission probability.
func (s *SpontBcast) TransmitProb() float64 {
	switch {
	case s.state == Undecided:
		return s.ta.P()
	case s.relaying():
		return s.p0
	default:
		return 0
	}
}
