package core

import "udwn/internal/sim"

// LocalBcast is the Section 4 local broadcast algorithm:
//
//	Each node runs Try&Adjust(1); if it transmits and detects ACK, it
//	stops (p ← 0 thereafter).
//
// The algorithm is asynchronous and tolerates churn and bounded edge
// changes; Theorem 4.1 bounds its completion time by the node's dynamic
// degree plus log n, and Corollary 4.3 gives the optimal O(Δ + log n) bound
// in static networks. The spontaneous constructor yields the uniform
// variant, which needs no bound on the network size.
type LocalBcast struct {
	ta   TryAdjust
	done bool
	data int64
}

var (
	_ sim.Protocol     = (*LocalBcast)(nil)
	_ sim.ProbReporter = (*LocalBcast)(nil)
	_ sim.Quiescent    = (*LocalBcast)(nil)
)

// NewLocalBcast returns the standard (non-spontaneous-capable) protocol with
// passiveness β = 1 over a network-size estimate n. data is the payload the
// node must deliver to its neighbourhood.
func NewLocalBcast(n int, data int64) *LocalBcast {
	return &LocalBcast{ta: NewTryAdjust(n, 1), data: data}
}

// NewLocalBcastSpontaneous returns the uniform spontaneous variant starting
// at probability p0 with no floor.
func NewLocalBcastSpontaneous(p0 float64, data int64) *LocalBcast {
	return &LocalBcast{ta: NewTryAdjustSpontaneous(p0), data: data}
}

// Act transmits the payload with the current Try&Adjust probability until
// the node has stopped.
func (l *LocalBcast) Act(n *sim.Node, slot int) sim.Action {
	if l.done {
		return sim.Action{}
	}
	return sim.Action{
		Transmit: l.ta.Decide(n.RNG),
		Msg:      sim.Message{Kind: KindLocal, Data: l.data},
	}
}

// Observe stops on a detected ACK and otherwise applies the backoff rule.
func (l *LocalBcast) Observe(n *sim.Node, slot int, obs *sim.Observation) {
	if l.done {
		return
	}
	if obs.Transmitted && obs.Acked {
		l.done = true
		return
	}
	l.ta.Adjust(obs.Busy)
}

// Done reports whether the node has stopped after a detected ACK.
func (l *LocalBcast) Done() bool { return l.done }

// TransmitProb exposes the probability for contention instrumentation.
func (l *LocalBcast) TransmitProb() float64 {
	if l.done {
		return 0
	}
	return l.ta.P()
}

// QuiescentFor promises permanent inertness once the node has stopped: Act
// and Observe both early-return without touching the RNG or the Try&Adjust
// state, and the reported probability is pinned at 0.
func (l *LocalBcast) QuiescentFor() int {
	if l.done {
		return 1 << 30
	}
	return 0
}

// SkipQuiet is a no-op: a stopped node's state no longer evolves.
func (l *LocalBcast) SkipQuiet(int) {}
