package core

import (
	"testing"

	"udwn/internal/rng"
	"udwn/internal/sim"
)

func obs(mod func(*sim.Observation)) *sim.Observation {
	o := &sim.Observation{}
	mod(o)
	return o
}

func TestBcastWakesOnReceipt(t *testing.T) {
	b := NewBcast(64, 3, 42, false)
	n := &sim.Node{ID: 1, RNG: rng.New(1)}
	if b.Informed() {
		t.Fatal("non-source must start uninformed")
	}
	if b.Act(n, 0).Transmit {
		t.Fatal("uninformed node must stay silent")
	}
	b.Observe(n, 0, obs(func(o *sim.Observation) {
		o.Received = []sim.Recv{{From: 0, Msg: sim.Message{Kind: KindData, Data: 42}}}
	}))
	if !b.Informed() {
		t.Fatal("receipt must inform")
	}
}

func TestBcastSourceInformed(t *testing.T) {
	if !NewBcast(64, 3, 42, true).Informed() {
		t.Fatal("source must start informed")
	}
}

func TestBcastSlot1RetransmitAfterAck(t *testing.T) {
	b := NewBcastStar(64, 42, true)
	n := &sim.Node{ID: 0, RNG: rng.New(2)}
	// Force a slot-0 transmission by looping until the coin lands.
	for i := 0; i < 10000 && !b.Act(n, 0).Transmit; i++ {
		// An idle observation doubles p so the loop terminates quickly.
		b.Observe(n, 0, obs(func(o *sim.Observation) {}))
		b.Observe(n, 1, obs(func(o *sim.Observation) {}))
	}
	b.Observe(n, 0, obs(func(o *sim.Observation) {
		o.Transmitted = true
		o.Acked = true
	}))
	act := b.Act(n, 1)
	if !act.Transmit || act.Msg.Kind != KindData {
		t.Fatal("slot 1 after ACK must retransmit the payload")
	}
	b.Observe(n, 1, obs(func(o *sim.Observation) {}))
	if !b.Stopped() {
		t.Fatal("Bcast* must stop after its own success")
	}
}

func TestBcastRestartInsteadOfStop(t *testing.T) {
	b := NewBcast(64, 2, 42, true) // dynamic variant: restart, don't stop
	n := &sim.Node{ID: 0, RNG: rng.New(2)}
	// Raise p with idle rounds, then succeed.
	for i := 0; i < 20; i++ {
		b.Act(n, 0)
		b.Observe(n, 0, obs(func(o *sim.Observation) {}))
		b.Act(n, 1)
		b.Observe(n, 1, obs(func(o *sim.Observation) {}))
	}
	raised := b.TransmitProb()
	b.Act(n, 0)
	b.Observe(n, 0, obs(func(o *sim.Observation) {
		o.Transmitted = true
		o.Acked = true
	}))
	b.Act(n, 1)
	b.Observe(n, 1, obs(func(o *sim.Observation) {}))
	if b.Stopped() {
		t.Fatal("dynamic Bcast must not stop")
	}
	if b.TransmitProb() >= raised {
		t.Fatalf("success must restart the backoff: p=%v (was %v)", b.TransmitProb(), raised)
	}
}

func TestBcastNTDCoverage(t *testing.T) {
	b := NewBcastStar(64, 42, false)
	n := &sim.Node{ID: 1, RNG: rng.New(3)}
	// Round 1: receive the payload in slot 0 (wakes up).
	b.Act(n, 0)
	b.Observe(n, 0, obs(func(o *sim.Observation) {
		o.Received = []sim.Recv{{From: 0, Msg: sim.Message{Kind: KindData, Data: 42}}}
	}))
	b.Act(n, 1)
	b.Observe(n, 1, obs(func(o *sim.Observation) {}))
	// Round 2: receive in slot 0 again, then NTD in slot 1 → covered → stop.
	b.Act(n, 0)
	b.Observe(n, 0, obs(func(o *sim.Observation) {
		o.Received = []sim.Recv{{From: 0, Msg: sim.Message{Kind: KindData, Data: 42}}}
	}))
	b.Act(n, 1)
	b.Observe(n, 1, obs(func(o *sim.Observation) {
		o.Received = []sim.Recv{{From: 2, Msg: sim.Message{Kind: KindData, Data: 42}}}
		o.NTD = true
	}))
	if !b.Stopped() {
		t.Fatal("receipt + NTD must stop a Bcast* node")
	}
}

func TestBcastNTDWithoutReceiptIgnored(t *testing.T) {
	b := NewBcastStar(64, 42, true)
	n := &sim.Node{ID: 1, RNG: rng.New(4)}
	b.Act(n, 0)
	b.Observe(n, 0, obs(func(o *sim.Observation) {})) // nothing received slot 0
	b.Act(n, 1)
	b.Observe(n, 1, obs(func(o *sim.Observation) { o.NTD = true }))
	if b.Stopped() {
		t.Fatal("NTD without a slot-0 receipt must not stop the node")
	}
}

func TestBcastIntegrationLine(t *testing.T) {
	// Non-spontaneous broadcast down a 10-node line, two-slot rounds.
	const k = 10
	pts := makeLine(k)
	s := twoSlotSim(t, pts, func(id int) sim.Protocol {
		return NewBcastStar(k, 42, id == 0)
	})
	s.MarkInformed(0)
	_, ok := s.RunUntil(func(s *sim.Sim) bool {
		for v := 0; v < k; v++ {
			if s.FirstDecode(v) < 0 {
				return false
			}
		}
		return true
	}, 40000)
	if !ok {
		t.Fatal("broadcast did not reach the end of the line")
	}
	// Monotone frontier: every node's informed time is at least its
	// predecessor's (hop-distance order along a line).
	for v := 2; v < k; v++ {
		if s.FirstDecode(v) < s.FirstDecode(v-1)-1 {
			t.Fatalf("frontier not monotone: node %d at %d, node %d at %d",
				v-1, s.FirstDecode(v-1), v, s.FirstDecode(v))
		}
	}
}

func TestBcastDynamicIntegration(t *testing.T) {
	// The restarting variant also completes (it just keeps its state ready
	// for topology changes).
	const k = 8
	pts := makeLine(k)
	s := twoSlotSim(t, pts, func(id int) sim.Protocol {
		return NewBcast(k, 2, 42, id == 0)
	})
	s.MarkInformed(0)
	_, ok := s.RunUntil(func(s *sim.Sim) bool {
		for v := 0; v < k; v++ {
			if s.FirstDecode(v) < 0 {
				return false
			}
		}
		return true
	}, 60000)
	if !ok {
		t.Fatal("dynamic Bcast did not complete on a line")
	}
}
