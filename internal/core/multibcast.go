package core

import "udwn/internal/sim"

// MultiBcast is k-message broadcast, the natural extension of Bcast* the
// paper's related work studies (multiple-message broadcast in SINR): k
// distinguished sources each hold one message and every node must collect
// all k. Informed nodes run a single shared Try&Adjust state and, when
// their coin fires, transmit a uniformly random message from their known,
// not-yet-covered set; the two-slot ACK/NTD machinery of Bcast* then
// retires messages per neighbourhood:
//
//   - an ACKed slot-0 transmission of message m certifies m reached the
//     whole neighbourhood: m is covered for this node, and the slot-1
//     retransmission tells the εR/2 ball the same;
//   - receiving m in slot 0 and detecting a near retransmission of m in
//     slot 1 covers m without transmitting.
//
// A node with no uncovered known message stays silent until a new message
// arrives. Per-message progress therefore pipelines: different messages
// propagate through disjoint regions simultaneously.
type MultiBcast struct {
	ta TryAdjust

	known   map[int64]bool
	covered map[int64]bool
	ntdRSS  float64

	// Per-round slot-0 state.
	txMsg    int64
	txSlot0  bool
	ackSlot0 bool
	rcvSlot0 map[int64]bool
}

var (
	_ sim.Protocol     = (*MultiBcast)(nil)
	_ sim.ProbReporter = (*MultiBcast)(nil)
)

// NewMultiBcast returns the protocol for one node. initial lists the
// messages the node holds at start (its own source payloads; usually empty
// or one). ntdRSS is the sensing NTD threshold for classifying near
// retransmissions.
func NewMultiBcast(n int, ntdRSS float64, initial ...int64) *MultiBcast {
	m := &MultiBcast{
		ta:       NewTryAdjust(n, 1),
		known:    make(map[int64]bool),
		covered:  make(map[int64]bool),
		ntdRSS:   ntdRSS,
		rcvSlot0: make(map[int64]bool),
	}
	for _, msg := range initial {
		m.known[msg] = true
	}
	return m
}

// pending returns an arbitrary-but-seeded choice among known, uncovered
// messages, and whether one exists.
func (m *MultiBcast) pending(n *sim.Node) (int64, bool) {
	var candidates []int64
	for msg := range m.known {
		if !m.covered[msg] {
			candidates = append(candidates, msg)
		}
	}
	if len(candidates) == 0 {
		return 0, false
	}
	// Map iteration order is random but not seeded; pick deterministically
	// via the node RNG over a sorted-free selection by min-search with a
	// random rank, keeping runs replayable.
	idx := n.RNG.Intn(len(candidates))
	// Selection must not depend on map order: find the idx-th smallest.
	for i := 0; i < len(candidates); i++ {
		for j := i + 1; j < len(candidates); j++ {
			if candidates[j] < candidates[i] {
				candidates[i], candidates[j] = candidates[j], candidates[i]
			}
		}
	}
	return candidates[idx], true
}

// Act transmits a pending message in slot 0 and the covered notification in
// slot 1.
func (m *MultiBcast) Act(n *sim.Node, slot int) sim.Action {
	if slot == 0 {
		m.txSlot0 = false
		m.ackSlot0 = false
		for k := range m.rcvSlot0 {
			delete(m.rcvSlot0, k)
		}
		msg, ok := m.pending(n)
		if !ok || !m.ta.Decide(n.RNG) {
			return sim.Action{}
		}
		m.txMsg = msg
		m.txSlot0 = true
		return sim.Action{Transmit: true, Msg: sim.Message{Kind: KindData, Data: msg}}
	}
	if m.ackSlot0 && m.txSlot0 {
		return sim.Action{Transmit: true, Msg: sim.Message{Kind: KindData, Data: m.txMsg}}
	}
	return sim.Action{}
}

// Observe learns received messages, applies the backoff rule in slot 0 and
// the coverage transitions in slot 1.
func (m *MultiBcast) Observe(n *sim.Node, slot int, obs *sim.Observation) {
	for _, rc := range obs.Received {
		if rc.Msg.Kind == KindData {
			m.known[rc.Msg.Data] = true
		}
	}
	if slot == 0 {
		m.ackSlot0 = obs.Transmitted && obs.Acked
		for _, rc := range obs.Received {
			if rc.Msg.Kind == KindData {
				m.rcvSlot0[rc.Msg.Data] = true
			}
		}
		m.ta.Adjust(obs.Busy)
		return
	}
	// Slot 1.
	if m.ackSlot0 && m.txSlot0 {
		m.covered[m.txMsg] = true
		return
	}
	for _, rc := range obs.Received {
		if rc.Msg.Kind == KindData && m.rcvSlot0[rc.Msg.Data] && rc.RSS >= m.ntdRSS {
			m.covered[rc.Msg.Data] = true
		}
	}
}

// Known returns the number of distinct messages the node holds.
func (m *MultiBcast) Known() int { return len(m.known) }

// HasMessage reports whether the node holds message msg.
func (m *MultiBcast) HasMessage(msg int64) bool { return m.known[msg] }

// CoveredCount returns how many of the node's messages are retired.
func (m *MultiBcast) CoveredCount() int { return len(m.covered) }

// TransmitProb exposes the slot-0 probability (zero when nothing pends).
func (m *MultiBcast) TransmitProb() float64 {
	for msg := range m.known {
		if !m.covered[msg] {
			return m.ta.P()
		}
	}
	return 0
}
