package core

import (
	"math"
	"testing"

	"udwn/internal/rng"
	"udwn/internal/sim"
)

func TestNotifyScaleFor(t *testing.T) {
	// scale^{1/ζ}·R must equal εR/2.
	for _, zeta := range []float64{2, 3, 2.7} {
		eps := 0.1
		scale := NotifyScaleFor(eps, zeta)
		gotRange := math.Pow(scale, 1/zeta)
		if math.Abs(gotRange-eps/2) > 1e-12 {
			t.Fatalf("ζ=%v: range fraction = %v, want %v", zeta, gotRange, eps/2)
		}
	}
}

func TestBcastPCNotifiesAtLowPower(t *testing.T) {
	b := NewBcastStarPC(64, 42, true, 0.001)
	n := &sim.Node{ID: 0, RNG: rng.New(1)}
	// Drive until a slot-0 transmission, then ACK it.
	for i := 0; i < 10000 && !b.Act(n, 0).Transmit; i++ {
		b.Observe(n, 0, &sim.Observation{})
		b.Act(n, 1)
		b.Observe(n, 1, &sim.Observation{})
	}
	b.Observe(n, 0, &sim.Observation{Transmitted: true, Acked: true})
	act := b.Act(n, 1)
	if !act.Transmit {
		t.Fatal("ACKed node must notify in slot 1")
	}
	if act.Msg.Kind != KindNotify {
		t.Fatalf("notification kind = %v, want KindNotify", act.Msg.Kind)
	}
	if act.PowerScale != 0.001 {
		t.Fatalf("PowerScale = %v, want 0.001", act.PowerScale)
	}
}

func TestBcastPCCoveredByNotifyReceipt(t *testing.T) {
	b := NewBcastStarPC(64, 42, false, 0.001)
	n := &sim.Node{ID: 1, RNG: rng.New(2)}
	// Wake up first.
	b.Act(n, 0)
	b.Observe(n, 0, &sim.Observation{Received: []sim.Recv{
		{From: 0, Msg: sim.Message{Kind: KindData, Data: 42}},
	}})
	b.Act(n, 1)
	b.Observe(n, 1, &sim.Observation{})
	// Receive payload in slot 0, low-power notify in slot 1 → stop. The
	// receipt alone certifies proximity: no NTD flag involved.
	b.Act(n, 0)
	b.Observe(n, 0, &sim.Observation{Received: []sim.Recv{
		{From: 0, Msg: sim.Message{Kind: KindData, Data: 42}},
	}})
	b.Act(n, 1)
	b.Observe(n, 1, &sim.Observation{Received: []sim.Recv{
		{From: 2, Msg: sim.Message{Kind: KindNotify, Data: 42}},
	}})
	if !b.Stopped() {
		t.Fatal("notify receipt must stop the PC variant")
	}
}

func TestBcastPCIgnoresNTDFlag(t *testing.T) {
	// The PC variant must not rely on the NTD primitive: the flag alone
	// (without a notify receipt) does nothing.
	b := NewBcastStarPC(64, 42, false, 0.001)
	n := &sim.Node{ID: 1, RNG: rng.New(3)}
	b.Act(n, 0)
	b.Observe(n, 0, &sim.Observation{Received: []sim.Recv{
		{From: 0, Msg: sim.Message{Kind: KindData, Data: 42}},
	}})
	b.Act(n, 1)
	b.Observe(n, 1, &sim.Observation{})
	b.Act(n, 0)
	b.Observe(n, 0, &sim.Observation{Received: []sim.Recv{
		{From: 0, Msg: sim.Message{Kind: KindData, Data: 42}},
	}})
	b.Act(n, 1)
	b.Observe(n, 1, &sim.Observation{NTD: true})
	if b.Stopped() {
		t.Fatal("PC variant must ignore the NTD flag")
	}
}

func TestBcastPCPanics(t *testing.T) {
	for _, bad := range []float64{0, 1, 2, -0.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("scale %v must panic", bad)
				}
			}()
			NewBcastStarPC(10, 1, false, bad)
		}()
	}
}

func TestBcastPCIntegrationLine(t *testing.T) {
	// End to end without the NTD primitive: only CD and ACK granted; the
	// low-power notifications do the suppression work.
	const k = 10
	pts := makeLine(k)
	scale := NotifyScaleFor(0.05, 3) // sense eps/2 = 0.05 over R=2
	s, err := sim.New(sim.Config{
		Space: metricOfLine(pts),
		Model: lineModel(),
		P:     8, Zeta: 3, Noise: 1, Eps: 0.1, SenseEps: 0.05,
		Slots:      2,
		Seed:       5,
		Primitives: sim.CD | sim.ACK, // no NTD
		AckScale:   8,
	}, func(id int) sim.Protocol {
		return NewBcastStarPC(k, 42, id == 0, scale)
	})
	if err != nil {
		t.Fatal(err)
	}
	s.MarkInformed(0)
	_, ok := s.RunUntil(func(s *sim.Sim) bool {
		for v := 0; v < k; v++ {
			if s.FirstDecode(v) < 0 {
				return false
			}
		}
		return true
	}, 60000)
	if !ok {
		t.Fatal("power-control broadcast did not complete without NTD")
	}
}
