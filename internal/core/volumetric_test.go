package core

import (
	"testing"

	"udwn/internal/metric"
	"udwn/internal/model"
	"udwn/internal/sim"
	"udwn/internal/workload"
)

// TestLocalBcastVolumetric runs LocalBcast over a 3-D deployment with
// α = ζ = 4 (the unified model needs ζ > λ = 3 in 3-space). Nothing in the
// protocol changes — the same binary completes in a volumetric network.
func TestLocalBcastVolumetric(t *testing.T) {
	const n = 128
	const delta = 12
	const rComm = 10.0
	rb := 0.9 * rComm
	side := workload.SideForDegree3(n, delta, rb)
	space := metric.NewEuclidean3(workload.UniformBox3(n, side, 21))

	// P = β·N·R^ζ with ζ = 4.
	p := 1.5 * rComm * rComm * rComm * rComm
	s, err := sim.New(sim.Config{
		Space: space,
		Model: model.NewSINR(p, 1.5, 1, 4, 0.1),
		P:     p, Zeta: 4, Noise: 1, Eps: 0.1,
		Seed:       3,
		Primitives: sim.CD | sim.ACK,
		BusyScale:  0.25,
		AckScale:   8,
	}, func(id int) sim.Protocol {
		return NewLocalBcast(n, int64(id))
	})
	if err != nil {
		t.Fatal(err)
	}
	_, ok := s.RunUntil(func(s *sim.Sim) bool {
		for v := 0; v < n; v++ {
			if s.FirstMassDelivery(v) < 0 {
				return false
			}
		}
		return true
	}, 40000)
	if !ok {
		t.Fatal("local broadcast did not complete in 3-space")
	}
}
