package jobs

import (
	"os"
	"path/filepath"
	"testing"

	"udwn/internal/checkpoint"
	"udwn/internal/metrics"
)

// TestJobJournalTornTailRecovery pins the crash-recovery discipline of the
// job ledger: garbage appended after the last valid frame (a torn write) is
// truncated away on the next Open, every record before it survives, and the
// drop is reported.
func TestJobJournalTornTailRecovery(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Dir: dir, Workers: 1, Metrics: metrics.NewRegistry(), Runner: okRunner("kept output")}
	s := mustOpen(t, cfg)
	v, err := s.Submit(spec1())
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, s, v.ID)
	if err := s.Drain(); err != nil {
		t.Fatal(err)
	}
	s.Close()

	f, err := os.OpenFile(filepath.Join(dir, journalName), os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	torn := []byte("\x00garbage torn tail")
	if _, err := f.Write(torn); err != nil {
		t.Fatal(err)
	}
	f.Close()

	cfg2 := cfg
	cfg2.Metrics = metrics.NewRegistry()
	s2 := mustOpen(t, cfg2)
	defer func() { s2.Drain(); s2.Close() }()
	if got := s2.JournalTornBytes(); got != int64(len(torn)) {
		t.Fatalf("JournalTornBytes = %d, want %d", got, len(torn))
	}
	out, state, err := s2.Result(v.ID)
	if err != nil || state != StateDone || out != "kept output" {
		t.Fatalf("record before the torn tail was lost: %q, %s, %v", out, state, err)
	}
}

// TestJobJournalRejectsMalformedEvents pins that a frame which is valid at
// the container level but not a well-formed job event ends the replayable
// prefix exactly like a torn frame.
func TestJobJournalRejectsMalformedEvents(t *testing.T) {
	dir := t.TempDir()
	j, err := checkpoint.CreateJournal(filepath.Join(dir, journalName))
	if err != nil {
		t.Fatal(err)
	}
	lg := &jobJournal{j: j}
	if err := lg.append(jobEvent{Kind: "submit", ID: "j-000001", Seq: 1, Spec: &Spec{Experiments: []string{"table1"}}}); err != nil {
		t.Fatal(err)
	}
	// Container-valid frames that are not job events.
	for _, payload := range [][]byte{
		[]byte(`{"kind":"submit","id":"j-000002"}`), // submit without spec
		[]byte(`{"kind":"bogus","id":"j-000003"}`),  // unknown kind
		[]byte(`{"kind":"done"}`),                   // missing id
		[]byte(`not json at all`),
	} {
		if err := j.Append(payload); err != nil {
			t.Fatal(err)
		}
	}
	lg.close()

	var replayed []jobEvent
	l2, err := resumeJobJournal(dir, func(ev jobEvent) { replayed = append(replayed, ev) })
	if err != nil {
		t.Fatal(err)
	}
	defer l2.close()
	if len(replayed) != 1 || replayed[0].ID != "j-000001" {
		t.Fatalf("replayed %+v, want only the valid submit", replayed)
	}
	if l2.tornBytes() == 0 {
		t.Fatal("malformed frames were not reported as dropped")
	}
}
