package jobs

import (
	"encoding/json"
	"fmt"
	"path/filepath"

	"udwn/internal/checkpoint"
)

// The job journal is the daemon's accepted-work ledger, layered on the same
// torn-write-safe framed container as the checkpoint store
// (checkpoint.Journal): one JSON event per frame, appended with a single
// write, recovered as the longest valid prefix. Two event kinds matter:
//
//   - "submit" commits an accepted job (id + spec) before the accept
//     response is sent, so an acknowledged job can never be lost;
//   - "done" / "failed" / "cancelled" commit the terminal outcome together
//     with the job's output or last error (and the terminal wall-clock
//     instant, which the retention sweeper ages against);
//   - "seq" pins the id allocator's high-water mark, written by GC
//     compaction so dropping the oldest submit records can never recycle a
//     job id.
//
// A job with a submit record and no terminal record is exactly the set a
// crash can interrupt — on restart those jobs re-queue as resumed, and
// their grids replay every finished cell from the shared checkpoint store.
//
// The ledger is bounded by GC compaction (see gc.go): rewrite() atomically
// replaces the whole file with the retained events via the container's
// temp-file + fsync + rename discipline, so a SIGKILL at any byte leaves
// either the old or the new ledger fully valid.

const journalName = "jobs.journal"

// jobEvent is one journal frame.
type jobEvent struct {
	Kind string `json:"kind"` // "submit" | "done" | "failed" | "cancelled" | "seq"
	ID   string `json:"id"`
	// Seq restores the id allocator on replay (submit and seq events).
	Seq  int   `json:"seq,omitempty"`
	Spec *Spec `json:"spec,omitempty"`
	// Output is the job's rendered result (done events only), kept in the
	// journal so /jobs/{id}/result keeps serving across restarts.
	Output string `json:"output,omitempty"`
	// Error is the last attempt's error (failed events only).
	Error string `json:"error,omitempty"`
	// Attempts is the attempt count at the terminal transition.
	Attempts int `json:"attempts,omitempty"`
	// DoneMs is the terminal transition's wall clock (Unix milliseconds,
	// terminal events only) — what Config.RetainAge ages against after a
	// restart.
	DoneMs int64 `json:"done_ms,omitempty"`
}

// jobJournal wraps the framed container with the event encoding.
type jobJournal struct {
	j *checkpoint.Journal
}

// createJobJournal starts a fresh ledger in dir.
func createJobJournal(dir string) (*jobJournal, error) {
	j, err := checkpoint.CreateJournal(filepath.Join(dir, journalName))
	if err != nil {
		return nil, fmt.Errorf("jobs: %w", err)
	}
	return &jobJournal{j: j}, nil
}

// resumeJobJournal recovers the ledger in dir, passing every valid event to
// replay in append order. A frame that is not a well-formed event ends the
// valid prefix and is truncated away with everything after it, exactly like
// a torn tail.
func resumeJobJournal(dir string, replay func(jobEvent)) (*jobJournal, error) {
	j, err := checkpoint.ResumeJournal(filepath.Join(dir, journalName), func(payload []byte) bool {
		var ev jobEvent
		if err := json.Unmarshal(payload, &ev); err != nil || ev.ID == "" {
			return false
		}
		switch ev.Kind {
		case "submit":
			if ev.Spec == nil {
				return false
			}
		case "done", "failed", "cancelled", "seq":
		default:
			return false
		}
		replay(ev)
		return true
	})
	if err != nil {
		return nil, fmt.Errorf("jobs: %w", err)
	}
	return &jobJournal{j: j}, nil
}

// append commits one event with a single framed write.
func (l *jobJournal) append(ev jobEvent) error {
	payload, err := json.Marshal(ev)
	if err != nil {
		return fmt.Errorf("jobs: encode journal event: %w", err)
	}
	if err := l.j.Append(payload); err != nil {
		return fmt.Errorf("jobs: %w", err)
	}
	return nil
}

// rewrite atomically replaces the ledger's contents with the given events —
// GC compaction's durable step. Inherits checkpoint.Journal.Rewrite's
// old-or-new crash guarantee.
func (l *jobJournal) rewrite(evs []jobEvent) error {
	payloads := make([][]byte, 0, len(evs))
	for _, ev := range evs {
		payload, err := json.Marshal(ev)
		if err != nil {
			return fmt.Errorf("jobs: encode journal event: %w", err)
		}
		payloads = append(payloads, payload)
	}
	if err := l.j.Rewrite(payloads); err != nil {
		return fmt.Errorf("jobs: %w", err)
	}
	return nil
}

// size reports the ledger's on-disk length.
func (l *jobJournal) size() (int64, error) { return l.j.Size() }

func (l *jobJournal) sync() error  { return l.j.Sync() }
func (l *jobJournal) close() error { return l.j.Close() }

// tornBytes reports the invalid tail recovery dropped.
func (l *jobJournal) tornBytes() int64 { return l.j.TornBytes() }
