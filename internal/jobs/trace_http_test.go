package jobs

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"reflect"
	"strconv"
	"testing"
	"time"

	"udwn/internal/experiment"
	"udwn/internal/sim"
	"udwn/internal/trace"
)

// getTrace fetches one trace query and returns the decoded events plus the
// response for header checks.
func getTrace(t *testing.T, url string) ([]sim.SlotEvent, *http.Response) {
	t.Helper()
	r, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	body, err := io.ReadAll(r.Body)
	if err != nil {
		t.Fatal(err)
	}
	if r.StatusCode != http.StatusOK {
		t.Fatalf("GET %s = %d: %s", url, r.StatusCode, body)
	}
	events, _, err := trace.ReadEvents(bytes.NewReader(body))
	if err != nil {
		t.Fatalf("sub-trace from %s does not decode: %v", url, err)
	}
	return events, r
}

// TestAPITraceQuery runs a real traced job end to end: submit with
// trace=true, let ExperimentRunner record the grid, then query the trace
// endpoint — the full fetch must equal the recorded stream, a selective
// query must equal the predicate filter over it (in both formats) with the
// planner's counters in the X-Trace-* headers, and the error paths must map
// to their status codes.
func TestAPITraceQuery(t *testing.T) {
	// Quick-mode table1 finishes in well under a second, so this runs even
	// in -short — it is the only coverage of the trace-serving path.
	cfg := testConfig(t, nil) // nil Runner selects the real ExperimentRunner
	s, ts := newTestAPI(t, cfg)

	v := decodeView(t, postJSON(t, ts.URL+"/jobs", `{"experiments":["table1"],"quick":true,"trace":true}`))
	final := waitTerminal(t, s, v.ID)
	if final.State != StateDone {
		t.Fatalf("job = %+v, want DONE", final)
	}
	base := ts.URL + "/jobs/" + v.ID + "/trace"

	all, resp := getTrace(t, base)
	if len(all) == 0 {
		t.Fatal("traced job produced no events")
	}
	if resp.Header.Get("X-Trace-Full-Scan") != "false" {
		t.Fatal("recorded trace should be indexed, but the planner full-scanned")
	}

	// A selective query: one node that actually appears, via both formats.
	node := all[0].Transmitters[0]
	pred := trace.Predicate{Nodes: []int{node}}
	var want []sim.SlotEvent
	for _, ev := range all {
		if pred.Match(ev) {
			want = append(want, ev)
		}
	}
	for _, format := range []string{"", "&format=jsonl"} {
		got, r := getTrace(t, base+fmt.Sprintf("?query=node=%d", node)+format)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("query%s returned %d events, filter over full trace %d", format, len(got), len(want))
		}
		matched, err := strconv.Atoi(r.Header.Get("X-Trace-Events-Matched"))
		if err != nil || matched != len(want) {
			t.Fatalf("X-Trace-Events-Matched = %q, want %d", r.Header.Get("X-Trace-Events-Matched"), len(want))
		}
	}

	// The planner's work surfaces in the daemon metrics.
	if n := s.Metrics().CounterValue("trace/query/queries"); n < 3 {
		t.Fatalf("trace/query/queries = %d, want >= 3", n)
	}

	for _, c := range []struct {
		path string
		want int
	}{
		{base + "?query=color%3Dred", http.StatusBadRequest},
		{base + "?format=xml", http.StatusBadRequest},
		{ts.URL + "/jobs/j-999999/trace", http.StatusNotFound},
	} {
		r, err := http.Get(c.path)
		if err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
		if r.StatusCode != c.want {
			t.Fatalf("GET %s = %d, want %d", c.path, r.StatusCode, c.want)
		}
	}

	// A job submitted without tracing has no trace to query.
	v2 := decodeView(t, postJSON(t, ts.URL+"/jobs", `{"experiments":["table1"],"quick":true}`))
	waitTerminal(t, s, v2.ID)
	r, err := http.Get(ts.URL + "/jobs/" + v2.ID + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusBadRequest {
		t.Fatalf("trace of untraced job = %d, want 400", r.StatusCode)
	}
}

// TestAPIStatusz pins the per-worker introspection: a busy pool reports
// which job each worker is on (with its progress), the queue depth and the
// intake counters; after the jobs finish the workers report idle again.
func TestAPIStatusz(t *testing.T) {
	block := make(chan struct{})
	started := make(chan string, 8)
	r := func(ctx context.Context, spec Spec, rc RunContext) (string, error) {
		rc.Progress(experiment.Progress{Experiment: spec.Experiments[0], Done: 1, Total: 4})
		started <- spec.Experiments[0]
		select {
		case <-block:
			return "done", nil
		case <-ctx.Done():
			return "", ctx.Err()
		}
	}
	cfg := testConfig(t, r)
	cfg.Workers = 1
	s, ts := newTestAPI(t, cfg)

	v1 := decodeView(t, postJSON(t, ts.URL+"/jobs", `{"experiments":["table1"],"quick":true}`))
	v2 := decodeView(t, postJSON(t, ts.URL+"/jobs", `{"experiments":["table2"],"quick":true}`))
	select {
	case <-started:
	case <-time.After(30 * time.Second):
		t.Fatal("worker never picked up the first job")
	}

	fetch := func() StatusView {
		t.Helper()
		resp, err := http.Get(ts.URL + "/statusz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("statusz = %d, want 200", resp.StatusCode)
		}
		var sv StatusView
		if err := json.NewDecoder(resp.Body).Decode(&sv); err != nil {
			t.Fatal(err)
		}
		return sv
	}

	sv := fetch()
	if len(sv.Workers) != 1 {
		t.Fatalf("statusz reports %d workers, want 1", len(sv.Workers))
	}
	w0 := sv.Workers[0]
	if w0.Idle || w0.Job != v1.ID || w0.State != StateRunning {
		t.Fatalf("busy worker = %+v, want running %s", w0, v1.ID)
	}
	if w0.Progress == nil || w0.Progress.Experiment != "table1" || w0.Progress.Done != 1 {
		t.Fatalf("worker progress = %+v, want table1 1/4", w0.Progress)
	}
	if sv.QueueDepth != 1 {
		t.Fatalf("queue_depth = %d, want 1 (job %s waiting)", sv.QueueDepth, v2.ID)
	}
	if sv.Counters["jobs/accepted"] != 2 || sv.Jobs[StateRunning] != 1 {
		t.Fatalf("statusz counters/jobs = %+v / %+v", sv.Counters, sv.Jobs)
	}

	close(block)
	waitTerminal(t, s, v1.ID)
	waitTerminal(t, s, v2.ID)
	sv = fetch()
	if !sv.Workers[0].Idle || sv.Workers[0].Job != "" {
		t.Fatalf("drained pool worker = %+v, want idle", sv.Workers[0])
	}
	if sv.QueueDepth != 0 || sv.Jobs[StateDone] != 2 {
		t.Fatalf("after finish: queue_depth = %d, jobs = %+v", sv.QueueDepth, sv.Jobs)
	}
}
