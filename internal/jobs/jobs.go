// Package jobs is the sim-as-a-service layer: a supervised, crash-safe pool
// of experiment jobs behind an HTTP/JSON API (cmd/udwnd).
//
// Every failure mode is a first-class state. A submitted job moves through
//
//	QUEUED → RUNNING → DONE
//	            │  ↘ BACKOFF → RUNNING (bounded retries, exponential
//	            │                       backoff with seed-deterministic jitter)
//	            │  → FAILED    (retry budget exhausted; carries the last error)
//	            └─ → CANCELLED (client cancel)
//
// and the transitions are journalled (submit and terminal records) through
// the same torn-write-safe framed container the checkpoint store uses, so a
// SIGKILL at any instant loses nothing that was acknowledged: on restart the
// journal replays, non-terminal jobs re-queue as resumed, and their grids
// replay finished cells from the shared content-addressed checkpoint store —
// byte-identical output, zero recompute.
//
// The accept path is load-shedding rather than unbounded: once queue depth
// or the in-flight cell-weight budget is exceeded, submissions are refused
// with ErrBusy (HTTP 429 + Retry-After ≥ 1) instead of growing memory; the
// optional per-client budgets (Config.Client*) shed the same way with a
// QuotaError naming the tripped budget, and the weighted-fair dequeue keeps
// one greedy client from starving the rest. SIGTERM triggers graceful
// drain: accepting stops (readyz flips), running jobs get a grace period to
// finish before their grids are cancelled (completed cells stay
// checkpointed), queued jobs park for the next start, journals flush, and
// the daemon exits 0.
//
// Durable state is bounded, not append-forever: the retention policy
// (Config.Retain{Age,Count,Bytes}) drives a GC sweeper (see gc.go) that
// collects terminal jobs past retention, unlinks their traces, and
// atomically compacts both journals without ever widening the crash window.
package jobs

import (
	"errors"
	"fmt"
	"time"

	"udwn/internal/experiment"
)

// State is a job's lifecycle state.
type State string

const (
	// StateQueued means the job is accepted and journalled, waiting for a
	// pool worker (also the state resumed jobs re-enter after a restart).
	StateQueued State = "QUEUED"
	// StateRunning means a pool worker is executing the job's experiments.
	StateRunning State = "RUNNING"
	// StateBackoff means the last attempt failed and the supervisor is
	// waiting out the retry delay.
	StateBackoff State = "BACKOFF"
	// StateDone is terminal success: the rendered output is available.
	StateDone State = "DONE"
	// StateFailed is terminal failure: the retry budget is exhausted and
	// the record carries the last error.
	StateFailed State = "FAILED"
	// StateCancelled is terminal client cancellation.
	StateCancelled State = "CANCELLED"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// Spec is a job submission: which experiments to run and how.
type Spec struct {
	// Experiments lists experiment ids (see experiment.All) to run in
	// order; the job's output is their concatenated rendered results.
	Experiments []string `json:"experiments"`
	// Seeds is the number of repetitions per grid cell (0 → 1).
	Seeds int `json:"seeds,omitempty"`
	// Quick selects the reduced sizes used by tests and smoke runs.
	Quick bool `json:"quick,omitempty"`
	// DeadlineMs bounds one attempt's wall clock; 0 uses the server
	// default, and values above the server maximum are rejected. A
	// deadline overrun cancels the attempt's grid (finished cells stay
	// checkpointed, so a retry resumes instead of starting over).
	DeadlineMs int64 `json:"deadline_ms,omitempty"`
	// Retries is the job-level retry budget after a failed attempt;
	// values above the server maximum are rejected.
	Retries int `json:"retries,omitempty"`
	// Seed keys the retry backoff jitter, making the supervisor's delay
	// sequence a pure function of the submission.
	Seed uint64 `json:"seed,omitempty"`
	// Trace records the job's slot events as an indexed binary trace under
	// the daemon state directory, served (and queried) by
	// GET /jobs/{id}/trace. Each attempt rewrites the file, so the trace
	// always reflects the attempt that produced the job's output.
	Trace bool `json:"trace,omitempty"`
	// Client is the optional client identity the per-client quota and
	// fair-scheduling machinery keys on (also settable via the X-Client
	// request header; the spec field wins). Empty submissions share one
	// anonymous client. Printable ASCII, at most 64 bytes.
	Client string `json:"client,omitempty"`
}

// weight is the spec's admission cost against the server's in-flight
// cell-weight budget: declared experiments × seed repetitions, a cheap
// submission-time proxy for the number of grid cells the job will schedule.
func (s Spec) weight() int {
	seeds := s.Seeds
	if seeds < 1 {
		seeds = 1
	}
	return len(s.Experiments) * seeds
}

// validate normalizes the spec in place against the server limits and
// returns an *InvalidError describing the first violation.
func (s *Spec) validate(cfg *Config) error {
	if len(s.Experiments) == 0 {
		return &InvalidError{Reason: "spec names no experiments"}
	}
	for _, id := range s.Experiments {
		if _, ok := experiment.Lookup(id); !ok {
			return &InvalidError{Reason: fmt.Sprintf("unknown experiment %q", id)}
		}
	}
	if s.Seeds < 0 {
		return &InvalidError{Reason: fmt.Sprintf("seeds %d is negative", s.Seeds)}
	}
	if s.Seeds > cfg.MaxSeeds {
		return &InvalidError{Reason: fmt.Sprintf("seeds %d exceeds the limit %d", s.Seeds, cfg.MaxSeeds)}
	}
	if s.Retries < 0 {
		return &InvalidError{Reason: fmt.Sprintf("retries %d is negative", s.Retries)}
	}
	if s.Retries > cfg.MaxRetries {
		return &InvalidError{Reason: fmt.Sprintf("retries %d exceeds the limit %d", s.Retries, cfg.MaxRetries)}
	}
	if s.DeadlineMs < 0 {
		return &InvalidError{Reason: fmt.Sprintf("deadline %dms is negative", s.DeadlineMs)}
	}
	if d := time.Duration(s.DeadlineMs) * time.Millisecond; d > cfg.MaxDeadline {
		return &InvalidError{Reason: fmt.Sprintf("deadline %s exceeds the limit %s", d, cfg.MaxDeadline)}
	}
	if len(s.Client) > 64 {
		return &InvalidError{Reason: fmt.Sprintf("client identity is %d bytes, limit 64", len(s.Client))}
	}
	for _, c := range s.Client {
		if c <= ' ' || c > '~' {
			return &InvalidError{Reason: fmt.Sprintf("client identity %q contains non-printable or whitespace characters", s.Client)}
		}
	}
	return nil
}

// deadline resolves the spec's per-attempt deadline against the server
// defaults.
func (s Spec) deadline(cfg *Config) time.Duration {
	if s.DeadlineMs > 0 {
		return time.Duration(s.DeadlineMs) * time.Millisecond
	}
	return cfg.DefaultDeadline
}

// ProgressView is the last grid progress a job reported: which experiment
// of the job is running and its done/total/failed cell counts.
type ProgressView struct {
	Experiment string `json:"experiment"`
	Done       int    `json:"done"`
	Total      int    `json:"total"`
	Failed     int    `json:"failed,omitempty"`
}

// JobView is the JSON snapshot of one job the API serves. Output is
// deliberately excluded (served by /jobs/{id}/result).
type JobView struct {
	ID       string        `json:"id"`
	State    State         `json:"state"`
	Spec     Spec          `json:"spec"`
	Attempts int           `json:"attempts"`
	Error    string        `json:"error,omitempty"`
	Resumed  bool          `json:"resumed,omitempty"`
	Progress *ProgressView `json:"progress,omitempty"`
}

// Event is one entry of a job's live event stream (served over SSE by
// /jobs/{id}/events): a state transition, a grid progress update, or the
// terminal outcome.
type Event struct {
	// Type is "state" for lifecycle transitions (State carries the new
	// state) or "progress" for grid progress updates.
	Type string `json:"type"`
	Job  string `json:"job"`
	// State is set on "state" events; terminal states end the stream.
	State State `json:"state,omitempty"`
	// Attempt is the supervisor attempt the event belongs to (0 before the
	// first run).
	Attempt int `json:"attempt,omitempty"`
	// Experiment/Done/Total/Failed carry grid progress on "progress"
	// events.
	Experiment string `json:"experiment,omitempty"`
	Done       int    `json:"done,omitempty"`
	Total      int    `json:"total,omitempty"`
	Failed     int    `json:"failed,omitempty"`
	// Error carries the last attempt's error on BACKOFF and FAILED states.
	Error string `json:"error,omitempty"`
}

// InvalidError rejects a malformed submission (HTTP 400).
type InvalidError struct{ Reason string }

func (e *InvalidError) Error() string { return "jobs: invalid spec: " + e.Reason }

// QuotaError sheds a submission that would exceed one of its client's
// budgets. It matches ErrBusy under errors.Is, so callers (and the HTTP
// layer) treat it as the same load-shedding contract — 429 + Retry-After —
// while the message names exactly which budget tripped.
type QuotaError struct {
	// Client is the submitting identity ("" renders as "anonymous").
	Client string
	// Budget names the limit that tripped: "queue-depth" or "weight".
	Budget string
	// Used and Limit are the budget's occupancy at rejection time.
	Used, Limit int
}

func (e *QuotaError) Error() string {
	client := e.Client
	if client == "" {
		client = "anonymous"
	}
	return fmt.Sprintf("jobs: client %s over %s quota (%d of %d), retry later", client, e.Budget, e.Used, e.Limit)
}

// Is makes errors.Is(err, ErrBusy) true for quota rejections.
func (e *QuotaError) Is(target error) bool { return target == ErrBusy }

// Sentinel errors of the accept path and the job registry; the HTTP layer
// maps them to status codes.
var (
	// ErrBusy sheds a submission that would exceed the queue depth or the
	// in-flight cell-weight budget (HTTP 429 + Retry-After).
	ErrBusy = errors.New("jobs: queue full, retry later")
	// ErrDraining refuses submissions during graceful shutdown (HTTP 503).
	ErrDraining = errors.New("jobs: server is draining")
	// ErrNotFound reports an unknown job id (HTTP 404).
	ErrNotFound = errors.New("jobs: no such job")
	// ErrTerminal rejects cancelling an already-terminal job (HTTP 409).
	ErrTerminal = errors.New("jobs: job already terminal")
	// ErrClosed reports an operation on a server that has been drained.
	ErrClosed = errors.New("jobs: server closed")
	// ErrTraceUnavailable rejects a Spec.Trace submission when the traces
	// directory cannot be written (HTTP 503): the job would only discover
	// the problem mid-attempt, so admission refuses it up front.
	ErrTraceUnavailable = errors.New("jobs: trace recording unavailable")
)
