package jobs

import (
	"os"
	"sort"
	"time"

	"udwn/internal/checkpoint"
)

// Garbage collection is what keeps the daemon's durable state bounded: the
// job ledger and the checkpoint journal are append-only (crash safety
// demands it), so without a sweeper both — plus the per-job trace files —
// grow forever. GC applies the Config.Retain{Age,Count,Bytes} policy to
// terminal jobs, unlinks their traces, compacts the ledger via an atomic
// whole-file rewrite, and drops checkpoint records no live or resumable job
// references.
//
// Crash-safety contract. The sweep holds the server mutex end to end and
// orders its effects so a SIGKILL at any instant loses nothing retention
// wanted kept:
//
//  1. trace unlink first — a crash here leaves a job record whose trace is
//     gone, which the trace endpoint already reports as "not recorded yet"
//     and the next sweep re-collects (ENOENT is tolerated);
//  2. ledger rewrite (checkpoint.Journal.Rewrite: temp file + fsync +
//     atomic rename) — a crash leaves either the old or the new ledger
//     fully valid, and the rewrite always opens with a "seq" event pinning
//     the id allocator so dropped submit records can never recycle ids;
//  3. only after the rewrite is durable are the expired jobs forgotten in
//     memory;
//  4. checkpoint compaction last, with the same rewrite discipline — its
//     keep set is the experiments of non-terminal jobs, so a resumable job
//     still replays every finished cell (zero recompute) after any crash.
//
// Because finish() appends terminal events under the same mutex, a sweep
// can never rewrite the ledger out from under a concurrent terminal
// transition: the event is either part of the snapshot or appends to the
// rewritten file.

// GCStats reports one sweep, served by POST /gc and /statusz.
type GCStats struct {
	// JobsCollected and JobsKept count terminal job records dropped and
	// jobs (any state) surviving the sweep.
	JobsCollected int `json:"jobs_collected"`
	JobsKept      int `json:"jobs_kept"`
	// TracesRemoved counts trace files unlinked; TraceBytesRemoved their
	// total size.
	TracesRemoved     int   `json:"traces_removed"`
	TraceBytesRemoved int64 `json:"trace_bytes_removed"`
	// LedgerBytes{Before,After} bracket the ledger rewrite.
	LedgerBytesBefore int64 `json:"ledger_bytes_before"`
	LedgerBytesAfter  int64 `json:"ledger_bytes_after"`
	// Cells{Kept,Dropped} and CellBytes{Before,After} bracket the
	// checkpoint-store compaction.
	CellsKept       int   `json:"cells_kept"`
	CellsDropped    int   `json:"cells_dropped"`
	CellBytesBefore int64 `json:"cell_bytes_before"`
	CellBytesAfter  int64 `json:"cell_bytes_after"`
}

// gcTestHook, when non-nil, fires between GC's effect stages ("traces-
// removed", "ledger-rewritten", "store-compacted") so the re-exec crash
// harness can SIGKILL the process at each one; production code leaves it
// nil. checkpoint.RewriteTestHook covers the byte-level stages inside the
// two rewrites.
var gcTestHook func(stage string)

// GC runs one retention sweep (see the package comment above for the
// ordering contract). With no retention axis configured it still compacts
// both journals — squeezing duplicate and superseded frames — but collects
// nothing. Safe to call concurrently with submissions and running jobs.
func (s *Server) GC() (GCStats, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return GCStats{}, ErrClosed
	}
	var st GCStats
	if size, err := s.ledger.size(); err == nil {
		st.LedgerBytesBefore = size
	}

	expired := s.expiredLocked(time.Now().UnixMilli())

	// Stage 1: traces of expired jobs.
	for j := range expired {
		path := s.tracePath(j.id)
		if fi, err := os.Stat(path); err == nil {
			st.TraceBytesRemoved += fi.Size()
		}
		if err := os.Remove(path); err == nil {
			st.TracesRemoved++
		}
	}
	if gcTestHook != nil {
		gcTestHook("traces-removed")
	}

	// Stage 2: rewrite the ledger without the expired jobs. The "seq" event
	// pins the id allocator even when the newest submit record is dropped.
	evs := []jobEvent{{Kind: "seq", ID: "allocator", Seq: s.seq}}
	kinds := map[State]string{StateDone: "done", StateFailed: "failed", StateCancelled: "cancelled"}
	keptOrder := make([]string, 0, len(s.order))
	for _, id := range s.order {
		j := s.jobs[id]
		if expired[j] {
			continue
		}
		keptOrder = append(keptOrder, id)
		spec := j.spec
		evs = append(evs, jobEvent{Kind: "submit", ID: j.id, Seq: j.seqNo, Spec: &spec})
		if j.state.Terminal() {
			evs = append(evs, jobEvent{
				Kind: kinds[j.state], ID: j.id, Output: j.output,
				Error: j.lastErr, Attempts: j.attempts, DoneMs: j.doneAt,
			})
		}
	}
	if err := s.ledger.rewrite(evs); err != nil {
		// The old ledger is intact (rewrite is atomic); nothing was
		// forgotten, so the sweep simply failed.
		s.reg.Counter("jobs/journal-errors").Inc()
		return st, err
	}
	if gcTestHook != nil {
		gcTestHook("ledger-rewritten")
	}

	// Stage 3: the rewrite is durable — now forget the expired jobs.
	for j := range expired {
		delete(s.jobs, j.id)
		st.JobsCollected++
	}
	s.order = keptOrder
	st.JobsKept = len(s.order)
	if size, err := s.ledger.size(); err == nil {
		st.LedgerBytesAfter = size
	}

	// Stage 4: compact the checkpoint store. Under a retention policy the
	// keep set is the experiments of live/resumable (non-terminal) jobs —
	// exactly what a post-crash resume needs for zero recompute; without
	// one, keep everything (the compaction still squeezes duplicates).
	var keep func(*checkpoint.Record) bool
	if s.cfg.RetainAge > 0 || s.cfg.RetainCount > 0 || s.cfg.RetainBytes > 0 {
		live := make(map[string]bool)
		for _, id := range s.order {
			if j := s.jobs[id]; !j.state.Terminal() {
				for _, e := range j.spec.Experiments {
					live[e] = true
				}
			}
		}
		keep = func(r *checkpoint.Record) bool { return live[r.Experiment] }
	}
	cst, err := s.store.Compact(keep)
	st.CellsKept = cst.Kept
	st.CellsDropped = cst.Dropped
	st.CellBytesBefore = cst.BytesBefore
	st.CellBytesAfter = cst.BytesAfter
	if err != nil {
		return st, err
	}
	if gcTestHook != nil {
		gcTestHook("store-compacted")
	}

	s.reg.Counter("jobs/gc/runs").Inc()
	s.reg.Counter("jobs/gc/collected").Add(int64(st.JobsCollected))
	s.reg.Counter("jobs/gc/traces-removed").Add(int64(st.TracesRemoved))
	s.reg.Counter("checkpoint/gc/compactions").Inc()
	s.reg.Counter("checkpoint/gc/dropped").Add(int64(st.CellsDropped))
	s.lastGC = st
	s.lastGCAt = time.Now()
	s.gcRan = true
	return st, nil
}

// expiredLocked selects the terminal jobs the retention policy gives up:
// older than RetainAge, beyond the newest RetainCount, or — oldest first —
// enough to bring the state directory under RetainBytes. Non-terminal jobs
// are never candidates. Caller holds the server mutex.
func (s *Server) expiredLocked(nowMs int64) map[*job]bool {
	expired := make(map[*job]bool)
	if s.cfg.RetainAge <= 0 && s.cfg.RetainCount <= 0 && s.cfg.RetainBytes <= 0 {
		return expired
	}
	var terminal []*job
	for _, id := range s.order {
		if j := s.jobs[id]; j.state.Terminal() {
			terminal = append(terminal, j)
		}
	}
	sort.Slice(terminal, func(a, b int) bool {
		if terminal[a].doneAt != terminal[b].doneAt {
			return terminal[a].doneAt < terminal[b].doneAt
		}
		return terminal[a].seqNo < terminal[b].seqNo
	})
	if age := s.cfg.RetainAge; age > 0 {
		cutoff := nowMs - age.Milliseconds()
		for _, j := range terminal {
			if j.doneAt < cutoff {
				expired[j] = true
			}
		}
	}
	if n := s.cfg.RetainCount; n > 0 && len(terminal) > n {
		for _, j := range terminal[:len(terminal)-n] {
			expired[j] = true
		}
	}
	if budget := s.cfg.RetainBytes; budget > 0 {
		total := s.stateBytesLocked()
		for _, j := range terminal {
			if expired[j] {
				total -= s.jobFootprintLocked(j)
			}
		}
		for _, j := range terminal {
			if total <= budget {
				break
			}
			if expired[j] {
				continue
			}
			expired[j] = true
			total -= s.jobFootprintLocked(j)
		}
	}
	return expired
}

// stateBytesLocked totals the state directory's durable footprint: both
// journals plus every known job's trace file.
func (s *Server) stateBytesLocked() int64 {
	var total int64
	if size, err := s.ledger.size(); err == nil {
		total += size
	}
	if size, err := s.store.JournalSize(); err == nil {
		total += size
	}
	for _, id := range s.order {
		if fi, err := os.Stat(s.tracePath(id)); err == nil {
			total += fi.Size()
		}
	}
	return total
}

// jobFootprintLocked estimates the bytes collecting one terminal job frees:
// its ledger records (output dominates; 256 covers framing and the spec)
// plus its trace file.
func (s *Server) jobFootprintLocked(j *job) int64 {
	size := int64(len(j.output) + len(j.lastErr) + 256)
	if fi, err := os.Stat(s.tracePath(j.id)); err == nil {
		size += fi.Size()
	}
	return size
}

// gcSweeper is the background retention loop: one GC per Config.GCInterval
// until drain. Sweep errors are reflected in the jobs/journal-errors
// counter and the next sweep retries.
func (s *Server) gcSweeper() {
	defer s.wg.Done()
	t := time.NewTicker(s.cfg.GCInterval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			s.GC()
		case <-s.drainCh:
			return
		}
	}
}
