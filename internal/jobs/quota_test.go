package jobs

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

// gateRunner blocks every attempt until release is closed (or the attempt's
// context fires), reporting each started job's client on started.
func gateRunner(started chan<- string, release <-chan struct{}) Runner {
	return func(ctx context.Context, spec Spec, rc RunContext) (string, error) {
		if started != nil {
			started <- spec.Client
		}
		select {
		case <-release:
			return "ok\n", nil
		case <-ctx.Done():
			return "", ctx.Err()
		}
	}
}

func clientSpec(client string, seeds int) Spec {
	return Spec{Experiments: []string{"table1"}, Quick: true, Seeds: seeds, Client: client}
}

// TestClientQueueDepthQuota: a client at its queue-depth budget sheds with a
// QuotaError naming the budget, while other clients keep being accepted.
func TestClientQueueDepthQuota(t *testing.T) {
	started := make(chan string, 16)
	release := make(chan struct{})
	defer close(release)
	cfg := testConfig(t, gateRunner(started, release))
	cfg.Workers = 1
	cfg.ClientQueueDepth = 2
	s := mustOpen(t, cfg)
	defer func() { s.Drain(); s.Close() }()

	// Occupy the single worker so subsequent submissions stay queued.
	if _, err := s.Submit(clientSpec("blocker", 0)); err != nil {
		t.Fatal(err)
	}
	<-started

	for i := 0; i < 2; i++ {
		if _, err := s.Submit(clientSpec("greedy", 0)); err != nil {
			t.Fatalf("submit %d for greedy: %v", i, err)
		}
	}
	_, err := s.Submit(clientSpec("greedy", 0))
	var qe *QuotaError
	if !errors.As(err, &qe) {
		t.Fatalf("over-quota submit returned %v, want *QuotaError", err)
	}
	if qe.Budget != "queue-depth" || qe.Client != "greedy" || qe.Limit != 2 {
		t.Fatalf("quota error = %+v, want queue-depth/greedy/2", qe)
	}
	if !errors.Is(err, ErrBusy) {
		t.Fatal("QuotaError must errors.Is-match ErrBusy (the 429 contract)")
	}
	if !strings.Contains(err.Error(), "queue-depth") {
		t.Fatalf("quota error message %q does not name the budget", err)
	}
	if _, err := s.Submit(clientSpec("polite", 0)); err != nil {
		t.Fatalf("other client rejected alongside the greedy one: %v", err)
	}
	if shed := s.Metrics().CounterValue("jobs/shed"); shed != 1 {
		t.Fatalf("jobs/shed = %d, want 1", shed)
	}
}

// TestClientWeightQuota: the per-client weight budget sheds independently of
// the global one.
func TestClientWeightQuota(t *testing.T) {
	started := make(chan string, 16)
	release := make(chan struct{})
	defer close(release)
	cfg := testConfig(t, gateRunner(started, release))
	cfg.Workers = 1
	cfg.ClientMaxWeight = 4
	s := mustOpen(t, cfg)
	defer func() { s.Drain(); s.Close() }()

	if _, err := s.Submit(clientSpec("heavy", 3)); err != nil { // weight 3
		t.Fatal(err)
	}
	<-started
	_, err := s.Submit(clientSpec("heavy", 3)) // 3+3 > 4
	var qe *QuotaError
	if !errors.As(err, &qe) || qe.Budget != "weight" {
		t.Fatalf("over-weight submit returned %v, want *QuotaError{Budget: weight}", err)
	}
	if _, err := s.Submit(clientSpec("light", 3)); err != nil {
		t.Fatalf("other client hit by heavy's weight budget: %v", err)
	}
}

// TestWeightedFairDequeue: with a greedy client's jobs queued ahead, a later
// client's first job still runs second — least-attained-service order, not
// FIFO.
func TestWeightedFairDequeue(t *testing.T) {
	started := make(chan string, 16)
	release := make(chan struct{}, 16)
	cfg := testConfig(t, gateRunner(started, release))
	cfg.Workers = 1
	s := mustOpen(t, cfg)
	defer func() { s.Drain(); s.Close() }()

	var ids []string
	submit := func(client string) {
		v, err := s.Submit(clientSpec(client, 0))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, v.ID)
	}
	submit("greedy") // dequeued immediately; holds the worker
	first := <-started
	if first != "greedy" {
		t.Fatalf("first started %q, want greedy", first)
	}
	for i := 0; i < 3; i++ {
		submit("greedy")
	}
	submit("polite")
	submit("polite")

	// Release jobs one at a time and record the dequeue order. polite
	// joined while greedy had attained 1 unit of service, so it starts at
	// served=1 (no retroactive catch-up credit); from there the scheduler
	// alternates — greedy's 3-job backlog cannot monopolize the worker —
	// with ties breaking towards the earlier-queued client.
	want := []string{"greedy", "polite", "greedy", "polite", "greedy"}
	var got []string
	for range want {
		release <- struct{}{}
		select {
		case c := <-started:
			got = append(got, c)
		case <-time.After(10 * time.Second):
			t.Fatalf("scheduler wedged after %v", got)
		}
	}
	release <- struct{}{} // let the last job finish
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("dequeue order %v, want %v", got, want)
	}
	for _, id := range ids {
		waitTerminal(t, s, id)
	}
}

// TestClientInflightCapSkipsNotSheds: a client at its inflight cap has its
// queued jobs skipped by the dequeue — not rejected — and they run as soon
// as the client's own slot frees.
func TestClientInflightCapSkipsNotSheds(t *testing.T) {
	started := make(chan string, 16)
	release := make(chan struct{}, 16)
	cfg := testConfig(t, gateRunner(started, release))
	cfg.Workers = 2
	cfg.ClientMaxInflight = 1
	s := mustOpen(t, cfg)
	defer func() { s.Drain(); s.Close() }()

	a1, err := s.Submit(clientSpec("a", 0))
	if err != nil {
		t.Fatal(err)
	}
	<-started                               // a1 running
	a2, err := s.Submit(clientSpec("a", 0)) // accepted, must NOT run yet
	if err != nil {
		t.Fatalf("inflight cap rejected at submit: %v (the cap schedules, quotas shed)", err)
	}
	if _, err := s.Submit(clientSpec("b", 0)); err != nil {
		t.Fatal(err)
	}
	if c := <-started; c != "b" { // second worker skips a2, runs b
		t.Fatalf("second worker started %q, want b (a is at its inflight cap)", c)
	}
	if v, _ := s.View(a2.ID); v.State != StateQueued {
		t.Fatalf("a2 state %s while a1 still running, want QUEUED", v.State)
	}
	// Free a's slot specifically (a shared release token could land on b).
	if _, err := s.Cancel(a1.ID); err != nil {
		t.Fatal(err)
	}
	if c := <-started; c != "a" {
		t.Fatalf("freed slot started %q, want a2", c)
	}
	release <- struct{}{}
	release <- struct{}{}
	waitTerminal(t, s, a2.ID)
}

// TestQuotaFloodIsolatesGreedyClient is the acceptance flood test over real
// HTTP: a greedy client hammering the API is shed with 429 + Retry-After ≥ 1
// naming its budget, while another client's submissions keep landing 202.
func TestQuotaFloodIsolatesGreedyClient(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	cfg := testConfig(t, gateRunner(nil, release))
	cfg.Workers = 1
	cfg.QueueDepth = 64 // global budget stays out of the way
	cfg.ClientQueueDepth = 3
	cfg.RetryAfter = 200 * time.Millisecond // sub-second: exercises the clamp
	s, ts := newTestAPI(t, cfg)

	var wg sync.WaitGroup
	codes := make([]int, 20)
	for i := range codes {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			req, _ := http.NewRequest("POST", ts.URL+"/jobs",
				strings.NewReader(`{"experiments":["table1"],"quick":true}`))
			req.Header.Set("Content-Type", "application/json")
			req.Header.Set("X-Client", "greedy")
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Error(err)
				return
			}
			defer resp.Body.Close()
			codes[i] = resp.StatusCode
			if resp.StatusCode == http.StatusTooManyRequests {
				ra, err := strconv.Atoi(resp.Header.Get("Retry-After"))
				if err != nil || ra < 1 {
					t.Errorf("429 Retry-After = %q, want an integer ≥ 1", resp.Header.Get("Retry-After"))
				}
			}
		}(i)
	}
	wg.Wait()
	accepted, shed := 0, 0
	for _, c := range codes {
		switch c {
		case http.StatusAccepted:
			accepted++
		case http.StatusTooManyRequests:
			shed++
		default:
			t.Fatalf("unexpected status %d in flood", c)
		}
	}
	// The worker may dequeue greedy jobs mid-flood, freeing queue slots, so
	// accepted ∈ [4, flood]; what matters is that shedding happened and
	// balanced the counter.
	if shed == 0 {
		t.Fatal("flood was never shed; quota not enforced")
	}
	if got := s.Metrics().CounterValue("jobs/shed"); got != int64(shed) {
		t.Fatalf("jobs/shed = %d but %d submissions saw 429", got, shed)
	}

	// The greedy client's flood must not shadow anyone else.
	resp := postJSON(t, ts.URL+"/jobs", `{"experiments":["table1"],"quick":true,"client":"polite"}`)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("polite client shed alongside the greedy flood: %d", resp.StatusCode)
	}

	// /statusz reports both quota accounts.
	st := s.Status()
	clients := map[string]ClientStatus{}
	for _, c := range st.Clients {
		clients[c.Client] = c
	}
	if _, ok := clients["greedy"]; !ok {
		t.Fatalf("statusz clients %v missing greedy", st.Clients)
	}
	if _, ok := clients["polite"]; !ok {
		t.Fatalf("statusz clients %v missing polite", st.Clients)
	}
}

// TestClientIdentityValidation: malformed client identities are 400s, not
// quota keys.
func TestClientIdentityValidation(t *testing.T) {
	s := mustOpen(t, testConfig(t, okRunner("")))
	defer func() { s.Drain(); s.Close() }()
	for _, client := range []string{strings.Repeat("x", 65), "has space", "ctrl\x01"} {
		_, err := s.Submit(clientSpec(client, 0))
		var inv *InvalidError
		if !errors.As(err, &inv) {
			t.Fatalf("client %q: got %v, want *InvalidError", client, err)
		}
	}
}
