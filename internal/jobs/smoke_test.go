package jobs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// TestDaemonBinarySmoke is the end-to-end smoke test ci.sh runs: build the
// real udwnd binary, start it, submit a quick job over HTTP, stream its
// events to DONE, fetch the result, then SIGTERM and require a clean drain
// (exit 0). Gated behind UDWND_SMOKE=1 because it builds and runs a real
// daemon process.
func TestDaemonBinarySmoke(t *testing.T) {
	if os.Getenv("UDWND_SMOKE") != "1" {
		t.Skip("set UDWND_SMOKE=1 to run the daemon binary smoke test")
	}
	tmp := t.TempDir()
	bin := filepath.Join(tmp, "udwnd")
	build := exec.Command("go", "build", "-o", bin, "udwn/cmd/udwnd")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("build udwnd: %v\n%s", err, out)
	}

	stateDir := filepath.Join(tmp, "state")
	cmd := exec.Command(bin,
		"-addr", "127.0.0.1:0",
		"-dir", stateDir,
		"-workers", "2",
		"-grid-workers", "2",
		"-drain-grace", "10s",
		"-retain-count", "2",
	)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()

	// The daemon prints "listening on <addr>" once ready.
	lines := bufio.NewScanner(stderr)
	var base string
	logged := make(chan string, 64)
	go func() {
		defer close(logged)
		for lines.Scan() {
			logged <- lines.Text()
		}
	}()
	for line := range logged {
		if i := strings.Index(line, "listening on "); i >= 0 {
			addr := strings.Fields(line[i+len("listening on "):])[0]
			base = "http://" + strings.TrimSuffix(addr, ",")
			break
		}
	}
	if base == "" {
		t.Fatal("daemon never reported its listen address")
	}
	go func() {
		for range logged { // keep draining stderr so the daemon never blocks
		}
	}()

	// Submit one quick job.
	resp, err := http.Post(base+"/jobs", "application/json",
		strings.NewReader(`{"experiments":["table1"],"quick":true,"seeds":1}`))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %d, want 202", resp.StatusCode)
	}
	var view JobView
	if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	// Stream its events until the terminal state.
	er, err := http.Get(base + "/jobs/" + view.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(er.Body)
	final := State("")
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		var ev Event
		if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &ev); err != nil {
			t.Fatalf("bad SSE frame %q: %v", line, err)
		}
		if ev.Type == "state" && ev.State.Terminal() {
			final = ev.State
			break
		}
	}
	er.Body.Close()
	if final != StateDone {
		t.Fatalf("job ended %s, want DONE", final)
	}

	// The rendered result must be servable.
	rr, err := http.Get(base + "/jobs/" + view.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	body := make([]byte, 64)
	n, _ := rr.Body.Read(body)
	rr.Body.Close()
	if rr.StatusCode != http.StatusOK || !strings.Contains(string(body[:n]), "table1") {
		t.Fatalf("result status = %d body prefix = %q", rr.StatusCode, body[:n])
	}

	// Retention bounds the state directory: two batches of identical jobs,
	// each followed by POST /gc, must leave the same on-disk footprint — the
	// second batch's bytes are reclaimed, not accreted.
	submitAndWait := func() {
		resp, err := http.Post(base+"/jobs", "application/json",
			strings.NewReader(`{"experiments":["table1"],"quick":true,"seeds":1}`))
		if err != nil {
			t.Fatal(err)
		}
		var v JobView
		if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("batch submit status = %d, want 202", resp.StatusCode)
		}
		deadline := time.Now().Add(60 * time.Second)
		for {
			jr, err := http.Get(base + "/jobs/" + v.ID)
			if err != nil {
				t.Fatal(err)
			}
			var jv JobView
			if err := json.NewDecoder(jr.Body).Decode(&jv); err != nil {
				t.Fatal(err)
			}
			jr.Body.Close()
			if jv.State.Terminal() {
				if jv.State != StateDone {
					t.Fatalf("batch job %s ended %s", v.ID, jv.State)
				}
				return
			}
			if time.Now().After(deadline) {
				t.Fatalf("batch job %s never finished", v.ID)
			}
			time.Sleep(20 * time.Millisecond)
		}
	}
	runGC := func() {
		gr, err := http.Post(base+"/gc", "", nil)
		if err != nil {
			t.Fatal(err)
		}
		defer gr.Body.Close()
		if gr.StatusCode != http.StatusOK {
			t.Fatalf("POST /gc status = %d, want 200", gr.StatusCode)
		}
	}
	for i := 0; i < 3; i++ {
		submitAndWait()
	}
	runGC()
	sizeA := dirSize(t, stateDir)
	for i := 0; i < 3; i++ {
		submitAndWait()
	}
	runGC()
	sizeB := dirSize(t, stateDir)
	if sizeB > sizeA+1024 {
		t.Fatalf("state dir grew across a retained batch: %d -> %d bytes", sizeA, sizeB)
	}
	fmt.Fprintf(os.Stderr, "smoke: state dir %d -> %d bytes across a retained batch\n", sizeA, sizeB)

	// SIGTERM must drain gracefully: exit code 0.
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("daemon exited nonzero after SIGTERM: %v", err)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("daemon never exited after SIGTERM")
	}
	fmt.Fprintln(os.Stderr, "smoke: submit -> stream -> drain OK")
}
