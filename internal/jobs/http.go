package jobs

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"runtime"
	"strconv"

	"udwn/internal/checkpoint"
	"udwn/internal/metrics"
	"udwn/internal/trace"
)

// The HTTP/JSON surface of the daemon. Routes:
//
//	POST   /jobs             submit a Spec    → 202 JobView | 400 | 429 | 503
//	GET    /jobs             list jobs        → 200 []JobView
//	GET    /jobs/{id}        job snapshot     → 200 JobView | 404
//	DELETE /jobs/{id}        cancel           → 200 JobView | 404 | 409
//	GET    /jobs/{id}/result terminal output  → 200 text | 404 | 409 | 202
//	GET    /jobs/{id}/events live SSE stream  → 200 text/event-stream | 404
//	GET    /jobs/{id}/trace  query the job's recorded trace
//	                         → 200 sub-trace | 400 | 404
//	POST   /gc               run a retention sweep → 200 GCStats | 503
//	GET    /healthz          liveness         → 200 always
//	GET    /readyz           readiness        → 200 | 503 while draining
//	GET    /metricsz         counters + checkpoint stats → 200 JSON
//	GET    /statusz          per-worker state + queue pressure → 200 JSON
//
// /jobs/{id}/trace serves the sub-trace a query (internal/trace grammar, e.g.
// ?query=node=3&tick=100-200) selects from a Spec.Trace job's recorded binary
// trace, re-encoded as a valid trace in ?format=binary (default) or jsonl.
// The planner's counters ride along as X-Trace-* headers, and a trace still
// being written answers from its last flushed prefix (X-Trace-Truncated).
//
// Error responses are JSON: {"error": "..."}.

// Handler returns the daemon's HTTP handler.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", s.handleSubmit)
	mux.HandleFunc("GET /jobs", s.handleList)
	mux.HandleFunc("GET /jobs/{id}", s.handleGet)
	mux.HandleFunc("DELETE /jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /jobs/{id}/result", s.handleResult)
	mux.HandleFunc("GET /jobs/{id}/events", s.handleEvents)
	mux.HandleFunc("GET /jobs/{id}/trace", s.handleTrace)
	mux.HandleFunc("POST /gc", s.handleGC)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.HandleFunc("GET /metricsz", s.handleMetricsz)
	mux.HandleFunc("GET /statusz", s.handleStatusz)
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

// httpError maps the package's sentinel errors onto the API contract.
func (s *Server) httpError(w http.ResponseWriter, err error) {
	var inv *InvalidError
	switch {
	case errors.As(err, &inv):
		writeError(w, http.StatusBadRequest, err)
	case errors.Is(err, ErrBusy):
		// The load-shedding contract: refuse with a retry hint instead of
		// queueing without bound. Clamped to ≥ 1: sub-second RetryAfter
		// configs used to round to "0", telling clients to hammer the
		// daemon mid-overload.
		secs := int(s.cfg.RetryAfter.Seconds() + 0.5)
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.Itoa(secs))
		writeError(w, http.StatusTooManyRequests, err)
	case errors.Is(err, ErrTraceUnavailable):
		writeError(w, http.StatusServiceUnavailable, err)
	case errors.Is(err, ErrDraining), errors.Is(err, ErrClosed):
		writeError(w, http.StatusServiceUnavailable, err)
	case errors.Is(err, ErrNotFound):
		writeError(w, http.StatusNotFound, err)
	case errors.Is(err, ErrTerminal):
		writeError(w, http.StatusConflict, err)
	default:
		writeError(w, http.StatusInternalServerError, err)
	}
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec Spec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("jobs: decode spec: %w", err))
		return
	}
	// The X-Client header is the transport-level way to claim a client
	// identity (proxies can inject it); an explicit spec field wins.
	if spec.Client == "" {
		spec.Client = r.Header.Get("X-Client")
	}
	view, err := s.Submit(spec)
	if err != nil {
		s.httpError(w, err)
		return
	}
	w.Header().Set("Location", "/jobs/"+view.ID)
	writeJSON(w, http.StatusAccepted, view)
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.List())
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	view, err := s.View(r.PathValue("id"))
	if err != nil {
		s.httpError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, view)
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	view, err := s.Cancel(r.PathValue("id"))
	if err != nil {
		s.httpError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, view)
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	out, state, err := s.Result(id)
	if err != nil {
		s.httpError(w, err)
		return
	}
	switch state {
	case StateDone:
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, out)
	case StateFailed, StateCancelled:
		view, _ := s.View(id)
		writeJSON(w, http.StatusConflict, view)
	default:
		// Not terminal yet: report progress so clients can poll the result
		// endpoint alone.
		view, _ := s.View(id)
		writeJSON(w, http.StatusAccepted, view)
	}
}

// handleEvents streams the job's events as Server-Sent Events: an initial
// state snapshot, then transitions and grid progress, ending after the
// terminal event. Each event is one `data: <JSON>` frame, flushed
// immediately.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	ch, cancel, err := s.Subscribe(r.PathValue("id"))
	if err != nil {
		s.httpError(w, err)
		return
	}
	defer cancel()
	fl, _ := w.(http.Flusher)
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	if fl != nil {
		fl.Flush()
	}
	enc := json.NewEncoder(w)
	for {
		select {
		case ev, ok := <-ch:
			if !ok {
				return
			}
			if _, err := fmt.Fprint(w, "data: "); err != nil {
				return
			}
			enc.Encode(ev) // Encode appends the newline ending the frame
			fmt.Fprint(w, "\n")
			if fl != nil {
				fl.Flush()
			}
		case <-r.Context().Done():
			return
		}
	}
}

// handleTrace answers a query over a job's recorded trace with a valid
// sub-trace. The planner's work counters go out as X-Trace-* headers (the
// sub-trace is buffered first, so the stats are complete before the status
// line) and accumulate in the daemon registry under trace/query/*.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	path, err := s.TraceFile(r.PathValue("id"))
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			writeError(w, http.StatusNotFound, err)
			return
		}
		s.httpError(w, err)
		return
	}
	pred, err := trace.ParseQuery(r.URL.Query().Get("query"))
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	var buf bytes.Buffer
	var tw trace.Writer
	contentType := "application/octet-stream"
	switch format := r.URL.Query().Get("format"); format {
	case "", "binary":
		bw := trace.NewBinary(&buf)
		bw.KeepSilent = true
		tw = bw
	case "jsonl":
		jw := trace.NewJSONL(&buf)
		jw.KeepSilent = true
		tw = jw
		contentType = "application/x-ndjson"
	default:
		writeError(w, http.StatusBadRequest,
			fmt.Errorf("jobs: unknown trace format %q (want binary or jsonl)", format))
		return
	}
	f, err := os.Open(path)
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	defer f.Close()
	st, err := trace.Slice(f, pred, tw)
	if err != nil {
		if errors.Is(err, trace.ErrEmptyTrace) || errors.Is(err, trace.ErrHeaderOnly) {
			// The attempt created the file but has not flushed a frame yet.
			writeError(w, http.StatusNotFound, fmt.Errorf("jobs: trace has no events yet: %w", err))
			return
		}
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	st.AddTo(s.reg)
	h := w.Header()
	h.Set("Content-Type", contentType)
	h.Set("X-Trace-Frames-Scanned", strconv.FormatInt(st.FramesScanned, 10))
	h.Set("X-Trace-Frames-Skipped", strconv.FormatInt(st.FramesSkipped, 10))
	h.Set("X-Trace-Bytes-Scanned", strconv.FormatInt(st.BytesScanned, 10))
	h.Set("X-Trace-Bytes-Skipped", strconv.FormatInt(st.BytesSkipped, 10))
	h.Set("X-Trace-Events-Matched", strconv.FormatInt(st.EventsMatched, 10))
	h.Set("X-Trace-Full-Scan", strconv.FormatBool(st.FullScan))
	h.Set("X-Trace-Truncated", strconv.FormatBool(st.Truncated))
	w.Write(buf.Bytes())
}

// handleGC runs one retention sweep on demand and reports what it
// collected. Idempotent; a sweep on an idle daemon is a cheap compaction.
func (s *Server) handleGC(w http.ResponseWriter, r *http.Request) {
	st, err := s.GC()
	if err != nil {
		s.httpError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleStatusz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Status())
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status":   "ok",
		"draining": s.Draining(),
	})
}

func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if s.Draining() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{
			"status":   "draining",
			"draining": true,
		})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status":   "ready",
		"draining": false,
	})
}

// metricsResponse is the /metricsz body: the jobs/* instruments, the shared
// checkpoint store's session stats (the zero-recompute evidence: stores
// across runs sum to the distinct cells ever computed), and the job
// journal's recovery state.
type metricsResponse struct {
	Metrics          *metrics.Snapshot `json:"metrics"`
	Checkpoint       checkpoint.Stats  `json:"checkpoint"`
	JournalTornBytes int64             `json:"journal_torn_bytes"`
	Goroutines       int               `json:"goroutines"`
}

func (s *Server) handleMetricsz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, metricsResponse{
		Metrics:          s.reg.Snapshot(),
		Checkpoint:       s.store.Stats(),
		JournalTornBytes: s.JournalTornBytes(),
		Goroutines:       runtime.NumGoroutine(),
	})
}
