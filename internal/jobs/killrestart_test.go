package jobs

import (
	"bytes"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
	"time"

	"udwn/internal/checkpoint"
	"udwn/internal/metrics"
)

// killSpecs are four concurrent jobs over four distinct experiments, so
// their checkpoint keys are disjoint and "cells computed" attributes
// cleanly per run.
func killSpecs() []Spec {
	return []Spec{
		{Experiments: []string{"table1"}, Quick: true, Seeds: 1},
		{Experiments: []string{"table2"}, Quick: true, Seeds: 1},
		{Experiments: []string{"table3"}, Quick: true, Seeds: 1},
		{Experiments: []string{"figure1"}, Quick: true, Seeds: 1},
	}
}

// TestKillRestartHelper is the victim process of the SIGKILL differential
// test: it opens a real daemon over the directory the parent provides,
// submits four concurrent jobs, signals readiness, and runs until killed.
// Only meaningful when re-executed by TestKillRestartResumesByteIdentical.
func TestKillRestartHelper(t *testing.T) {
	if os.Getenv("JOBS_KILL_HELPER") != "1" {
		t.Skip("helper process for TestKillRestartResumesByteIdentical")
	}
	dir := os.Getenv("JOBS_KILL_DIR")
	srv, err := Open(Config{Dir: dir, Workers: 4, GridWorkers: 2})
	if err != nil {
		fmt.Fprintln(os.Stderr, "helper:", err)
		os.Exit(1)
	}
	for _, sp := range killSpecs() {
		if _, err := srv.Submit(sp); err != nil {
			fmt.Fprintln(os.Stderr, "helper submit:", err)
			os.Exit(1)
		}
	}
	if err := os.WriteFile(filepath.Join(dir, "ready"), []byte("ok\n"), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "helper:", err)
		os.Exit(1)
	}
	for {
		time.Sleep(time.Hour) // run until SIGKILLed
	}
}

// TestKillRestartResumesByteIdentical is the acceptance test for crash-safe
// resume: a real daemon process with four concurrent jobs is SIGKILLed
// mid-grid; a new daemon over the same directory must (a) re-queue every
// non-terminal job, (b) finish them with zero recompute — every grid cell
// is computed exactly once across both processes, asserted from the
// checkpoint store's counters — and (c) produce output byte-identical to an
// uninterrupted daemon running the same submissions.
func TestKillRestartResumesByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess kill/restart test")
	}
	dir := t.TempDir()

	// Phase 1: run the victim and SIGKILL it once cells are committing.
	cmd := exec.Command(os.Args[0], "-test.run=^TestKillRestartHelper$", "-test.v")
	cmd.Env = append(os.Environ(), "JOBS_KILL_HELPER=1", "JOBS_KILL_DIR="+dir)
	var helperOut bytes.Buffer
	cmd.Stdout, cmd.Stderr = &helperOut, &helperOut
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()
	journal := filepath.Join(dir, "cells", "cells.journal")
	ready := filepath.Join(dir, "ready")
	deadline := time.Now().Add(60 * time.Second)
	for {
		if _, err := os.Stat(ready); err == nil {
			if fi, err := os.Stat(journal); err == nil && fi.Size() > 0 {
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("helper never started committing cells:\n%s", helperOut.String())
		}
		time.Sleep(5 * time.Millisecond)
	}
	// Let the kill land amid genuinely concurrent grid work.
	time.Sleep(30 * time.Millisecond)
	if err := cmd.Process.Kill(); err != nil { // SIGKILL: no cleanup runs
		t.Fatal(err)
	}
	cmd.Wait()

	// What did the dead process leave behind? (Recovery may drop a torn
	// tail; that is part of the contract under test.)
	probe, err := checkpoint.Resume(filepath.Join(dir, "cells"))
	if err != nil {
		t.Fatal(err)
	}
	run1Cells := probe.Stats().Records
	if err := probe.Close(); err != nil {
		t.Fatal(err)
	}
	if run1Cells == 0 {
		t.Log("torn tail swallowed the only committed cell; resume still exercises the journal replay")
	}

	// Phase 2: restart over the same directory and let everything finish.
	reg := metrics.NewRegistry()
	srv, err := Open(Config{Dir: dir, Workers: 4, GridWorkers: 2, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	if resumed := reg.CounterValue("jobs/resumed"); resumed == 0 {
		t.Fatalf("no job resumed; the kill landed after everything finished?\n%s", helperOut.String())
	}
	views := srv.List()
	if len(views) != len(killSpecs()) {
		t.Fatalf("journal replay found %d jobs, want %d", len(views), len(killSpecs()))
	}
	resumedOut := make([]string, len(views))
	for i, v := range views {
		final := waitTerminal(t, srv, v.ID)
		if final.State != StateDone {
			t.Fatalf("job %s finished %s (%s), want DONE", v.ID, final.State, final.Error)
		}
		out, _, err := srv.Result(v.ID)
		if err != nil {
			t.Fatal(err)
		}
		resumedOut[i] = out
	}
	stats := srv.Store().Stats()
	if err := srv.Drain(); err != nil {
		t.Fatal(err)
	}
	srv.Close()

	// Zero recompute: cells committed before the kill plus cells computed
	// after the restart must equal the distinct cells of the whole
	// workload — a recomputed cell would append a duplicate Put and break
	// the balance.
	if stats.Stores+int64(run1Cells) != int64(stats.Records) {
		t.Fatalf("recompute detected: run1 committed %d, run2 stored %d, but the workload has %d distinct cells",
			run1Cells, stats.Stores, stats.Records)
	}
	if run1Cells > 0 && stats.Hits == 0 {
		t.Fatalf("run2 replayed nothing despite %d committed cells", run1Cells)
	}

	// Phase 3: differential reference — an uninterrupted daemon over a
	// fresh directory must produce byte-identical outputs.
	refReg := metrics.NewRegistry()
	ref, err := Open(Config{Dir: t.TempDir(), Workers: 4, GridWorkers: 2, Metrics: refReg})
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()
	refIDs := make([]string, 0, len(killSpecs()))
	for _, sp := range killSpecs() {
		v, err := ref.Submit(sp)
		if err != nil {
			t.Fatal(err)
		}
		refIDs = append(refIDs, v.ID)
	}
	for i, id := range refIDs {
		final := waitTerminal(t, ref, id)
		if final.State != StateDone {
			t.Fatalf("reference job %s finished %s (%s)", id, final.State, final.Error)
		}
		out, _, err := ref.Result(id)
		if err != nil {
			t.Fatal(err)
		}
		if out != resumedOut[i] {
			t.Fatalf("job %d diverged after kill/restart:\n--- resumed ---\n%s\n--- reference ---\n%s",
				i, resumedOut[i], out)
		}
	}
	if err := ref.Drain(); err != nil {
		t.Fatal(err)
	}
}
