package jobs

import (
	"context"
	"errors"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"udwn/internal/metrics"
)

// testConfig returns a Config with millisecond-scale timings and the given
// stub runner, so supervisor behaviour is observable without real grids.
func testConfig(t *testing.T, r Runner) Config {
	t.Helper()
	return Config{
		Dir:         t.TempDir(),
		Workers:     2,
		BackoffBase: time.Millisecond,
		BackoffMax:  4 * time.Millisecond,
		DrainGrace:  100 * time.Millisecond,
		Metrics:     metrics.NewRegistry(),
		Runner:      r,
	}
}

func mustOpen(t *testing.T, cfg Config) *Server {
	t.Helper()
	s, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// waitTerminal blocks until the job reaches a terminal state, via its event
// stream (which closes after the terminal event).
func waitTerminal(t *testing.T, s *Server, id string) JobView {
	t.Helper()
	ch, cancel, err := s.Subscribe(id)
	if err != nil {
		t.Fatal(err)
	}
	defer cancel()
	timeout := time.After(30 * time.Second)
	for {
		select {
		case _, ok := <-ch:
			if !ok {
				v, err := s.View(id)
				if err != nil {
					t.Fatal(err)
				}
				return v
			}
		case <-timeout:
			v, _ := s.View(id)
			t.Fatalf("job %s never went terminal (state %s)", id, v.State)
		}
	}
}

func okRunner(out string) Runner {
	return func(ctx context.Context, spec Spec, rc RunContext) (string, error) {
		return out, nil
	}
}

func spec1() Spec { return Spec{Experiments: []string{"table1"}, Quick: true} }

func TestSubmitRunDone(t *testing.T) {
	s := mustOpen(t, testConfig(t, okRunner("hello\n")))
	defer s.Close()
	v, err := s.Submit(spec1())
	if err != nil {
		t.Fatal(err)
	}
	if v.ID == "" || v.State != StateQueued {
		t.Fatalf("submit view = %+v", v)
	}
	final := waitTerminal(t, s, v.ID)
	if final.State != StateDone || final.Attempts != 1 {
		t.Fatalf("final = %+v, want DONE in 1 attempt", final)
	}
	out, state, err := s.Result(v.ID)
	if err != nil || state != StateDone || out != "hello\n" {
		t.Fatalf("Result = %q, %s, %v", out, state, err)
	}
	if err := s.Drain(); err != nil {
		t.Fatal(err)
	}
	reg := s.Metrics()
	if a, d := reg.CounterValue("jobs/accepted"), reg.CounterValue("jobs/done"); a != 1 || d != 1 {
		t.Fatalf("accepted=%d done=%d, want 1/1", a, d)
	}
}

func TestRetryBudgetExhaustedFails(t *testing.T) {
	var calls atomic.Int64
	r := func(ctx context.Context, spec Spec, rc RunContext) (string, error) {
		calls.Add(1)
		return "", errors.New("boom")
	}
	s := mustOpen(t, testConfig(t, r))
	defer s.Close()
	sp := spec1()
	sp.Retries = 2
	v, err := s.Submit(sp)
	if err != nil {
		t.Fatal(err)
	}
	final := waitTerminal(t, s, v.ID)
	if final.State != StateFailed {
		t.Fatalf("state = %s, want FAILED", final.State)
	}
	if final.Attempts != 3 || calls.Load() != 3 {
		t.Fatalf("attempts = %d (runner calls %d), want 3", final.Attempts, calls.Load())
	}
	if !strings.Contains(final.Error, "boom") {
		t.Fatalf("terminal record lost the last error: %+v", final)
	}
	if got := s.Metrics().CounterValue("jobs/retried"); got != 2 {
		t.Fatalf("jobs/retried = %d, want 2", got)
	}
}

func TestRetryRecoversOnSecondAttempt(t *testing.T) {
	var calls atomic.Int64
	r := func(ctx context.Context, spec Spec, rc RunContext) (string, error) {
		if calls.Add(1) == 1 {
			return "", errors.New("transient")
		}
		return "recovered", nil
	}
	s := mustOpen(t, testConfig(t, r))
	defer s.Close()
	sp := spec1()
	sp.Retries = 3
	v, _ := s.Submit(sp)
	final := waitTerminal(t, s, v.ID)
	if final.State != StateDone || final.Attempts != 2 {
		t.Fatalf("final = %+v, want DONE in 2 attempts", final)
	}
}

func TestSubmitValidation(t *testing.T) {
	s := mustOpen(t, testConfig(t, okRunner("")))
	defer s.Close()
	bad := []Spec{
		{},
		{Experiments: []string{"no-such-experiment"}},
		{Experiments: []string{"table1"}, Seeds: -1},
		{Experiments: []string{"table1"}, Seeds: 10_000},
		{Experiments: []string{"table1"}, Retries: 10_000},
		{Experiments: []string{"table1"}, DeadlineMs: -5},
		{Experiments: []string{"table1"}, DeadlineMs: int64(24 * time.Hour / time.Millisecond)},
	}
	for i, sp := range bad {
		var inv *InvalidError
		if _, err := s.Submit(sp); !errors.As(err, &inv) {
			t.Fatalf("spec %d: err = %v, want InvalidError", i, err)
		}
	}
	if got := s.Metrics().CounterValue("jobs/rejected"); got != int64(len(bad)) {
		t.Fatalf("jobs/rejected = %d, want %d", got, len(bad))
	}
}

func TestLoadSheddingByQueueDepthAndWeight(t *testing.T) {
	block := make(chan struct{})
	r := func(ctx context.Context, spec Spec, rc RunContext) (string, error) {
		select {
		case <-block:
		case <-ctx.Done():
		}
		return "", nil
	}
	cfg := testConfig(t, r)
	cfg.Workers = 1
	cfg.QueueDepth = 2
	cfg.MaxWeight = 100
	s := mustOpen(t, cfg)
	defer s.Close()
	defer close(block)

	// One running job first (wait until the worker pops it), then exactly
	// QueueDepth queued ones fill the queue.
	if _, err := s.Submit(spec1()); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if v, _ := s.View("j-000001"); v.State == StateRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("first job never started")
		}
		time.Sleep(time.Millisecond)
	}
	for i := 0; i < cfg.QueueDepth; i++ {
		if _, err := s.Submit(spec1()); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.Submit(spec1()); !errors.Is(err, ErrBusy) {
		t.Fatalf("depth overflow: err = %v, want ErrBusy", err)
	}
	// Weight overflow sheds even when the queue has room.
	cfg2 := testConfig(t, r)
	cfg2.Workers = 1
	cfg2.QueueDepth = 100
	cfg2.MaxWeight = 5
	s2 := mustOpen(t, cfg2)
	defer s2.Close()
	heavy := Spec{Experiments: []string{"table1"}, Seeds: 4, Quick: true} // weight 4
	if _, err := s2.Submit(heavy); err != nil {
		t.Fatal(err)
	}
	if _, err := s2.Submit(heavy); !errors.Is(err, ErrBusy) {
		t.Fatalf("weight overflow: err = %v, want ErrBusy", err)
	}
	if shed := s2.Metrics().CounterValue("jobs/shed"); shed != 1 {
		t.Fatalf("jobs/shed = %d, want 1", shed)
	}
}

func TestCancelQueuedAndRunning(t *testing.T) {
	release := make(chan struct{})
	r := func(ctx context.Context, spec Spec, rc RunContext) (string, error) {
		select {
		case <-release:
			return "done", nil
		case <-ctx.Done():
			return "", ctx.Err()
		}
	}
	cfg := testConfig(t, r)
	cfg.Workers = 1
	s := mustOpen(t, cfg)
	defer s.Close()
	running, _ := s.Submit(spec1())
	queued, _ := s.Submit(spec1())

	// Cancel the queued job: terminal immediately, no worker involved.
	v, err := s.Cancel(queued.ID)
	if err != nil || v.State != StateCancelled {
		t.Fatalf("cancel queued: %+v, %v", v, err)
	}
	// Cancelling again conflicts.
	if _, err := s.Cancel(queued.ID); !errors.Is(err, ErrTerminal) {
		t.Fatalf("re-cancel: err = %v, want ErrTerminal", err)
	}
	// Cancel the running job: its context fires and it unwinds CANCELLED.
	if _, err := s.Cancel(running.ID); err != nil {
		t.Fatal(err)
	}
	final := waitTerminal(t, s, running.ID)
	if final.State != StateCancelled {
		t.Fatalf("running job state = %s, want CANCELLED", final.State)
	}
	if _, err := s.Cancel("j-999999"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("unknown id: err = %v, want ErrNotFound", err)
	}
	if got := s.Metrics().CounterValue("jobs/cancelled"); got != 2 {
		t.Fatalf("jobs/cancelled = %d, want 2", got)
	}
}

func TestDeadlineFailsAttempt(t *testing.T) {
	r := func(ctx context.Context, spec Spec, rc RunContext) (string, error) {
		<-ctx.Done()
		return "", ctx.Err()
	}
	s := mustOpen(t, testConfig(t, r))
	defer s.Close()
	sp := spec1()
	sp.DeadlineMs = 20
	v, _ := s.Submit(sp)
	final := waitTerminal(t, s, v.ID)
	if final.State != StateFailed {
		t.Fatalf("state = %s, want FAILED after deadline", final.State)
	}
	if !strings.Contains(final.Error, "deadline") && !strings.Contains(final.Error, "context") {
		t.Fatalf("error = %q, want a deadline error", final.Error)
	}
}

// TestBackoffDeterministic pins the jitter contract: the delay is a pure
// function of (seed, attempt), bounded by [d/2, 3d/2) of the exponential
// envelope, and different seeds spread.
func TestBackoffDeterministic(t *testing.T) {
	base, max := 100*time.Millisecond, time.Second
	for attempt := 1; attempt <= 6; attempt++ {
		d1 := backoffDelay(base, max, 42, attempt)
		d2 := backoffDelay(base, max, 42, attempt)
		if d1 != d2 {
			t.Fatalf("attempt %d: nondeterministic delay %s vs %s", attempt, d1, d2)
		}
		env := base << (attempt - 1)
		if env > max {
			env = max
		}
		if d1 < env/2 || d1 >= env+env/2 {
			t.Fatalf("attempt %d: delay %s outside [%s, %s)", attempt, d1, env/2, env+env/2)
		}
	}
	if backoffDelay(base, max, 1, 1) == backoffDelay(base, max, 2, 1) {
		t.Fatal("different seeds produced identical jitter")
	}
	if backoffDelay(0, max, 1, 1) != 0 {
		t.Fatal("zero base must mean zero delay")
	}
}

// TestDrainParksRunningJobAndResumes pins the drain-then-restart loop: a job
// still running when the grace expires parks (no terminal record), and a new
// server over the same directory re-queues it as resumed and finishes it.
func TestDrainParksRunningJobAndResumes(t *testing.T) {
	dir := t.TempDir()
	started := make(chan struct{}, 1)
	blockForever := func(ctx context.Context, spec Spec, rc RunContext) (string, error) {
		started <- struct{}{}
		<-ctx.Done()
		return "", ctx.Err()
	}
	cfg := Config{
		Dir: dir, Workers: 1, DrainGrace: 50 * time.Millisecond,
		BackoffBase: time.Millisecond, Metrics: metrics.NewRegistry(),
		Runner: blockForever,
	}
	s := mustOpen(t, cfg)
	v, err := s.Submit(spec1())
	if err != nil {
		t.Fatal(err)
	}
	<-started
	if err := s.Drain(); err != nil {
		t.Fatal(err)
	}
	if got, _ := s.View(v.ID); got.State != StateQueued {
		t.Fatalf("state after drain = %s, want QUEUED (parked)", got.State)
	}
	if got := s.Metrics().CounterValue("jobs/drained"); got != 1 {
		t.Fatalf("jobs/drained = %d, want 1", got)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	cfg2 := cfg
	cfg2.Metrics = metrics.NewRegistry()
	cfg2.Runner = okRunner("after restart")
	s2 := mustOpen(t, cfg2)
	defer s2.Close()
	if got := s2.Metrics().CounterValue("jobs/resumed"); got != 1 {
		t.Fatalf("jobs/resumed = %d, want 1", got)
	}
	final := waitTerminal(t, s2, v.ID)
	if final.State != StateDone || !final.Resumed {
		t.Fatalf("resumed final = %+v, want resumed DONE", final)
	}
	out, _, _ := s2.Result(v.ID)
	if out != "after restart" {
		t.Fatalf("output = %q", out)
	}
	s2.Drain()
}

// TestTerminalRecordsSurviveRestart pins that DONE/FAILED outcomes — output
// and last error included — keep serving across a restart.
func TestTerminalRecordsSurviveRestart(t *testing.T) {
	dir := t.TempDir()
	var calls atomic.Int64
	r := func(ctx context.Context, spec Spec, rc RunContext) (string, error) {
		if calls.Add(1) == 1 {
			return "persisted output", nil
		}
		return "", errors.New("persistent failure")
	}
	cfg := Config{
		Dir: dir, Workers: 1, BackoffBase: time.Millisecond,
		Metrics: metrics.NewRegistry(), Runner: r,
	}
	s := mustOpen(t, cfg)
	ok1, _ := s.Submit(spec1())
	waitTerminal(t, s, ok1.ID)
	bad := spec1()
	fail1, _ := s.Submit(bad)
	waitTerminal(t, s, fail1.ID)
	s.Drain()
	s.Close()

	cfg2 := cfg
	cfg2.Metrics = metrics.NewRegistry()
	s2 := mustOpen(t, cfg2)
	defer func() { s2.Drain(); s2.Close() }()
	if out, state, err := s2.Result(ok1.ID); err != nil || state != StateDone || out != "persisted output" {
		t.Fatalf("restarted Result = %q, %s, %v", out, state, err)
	}
	v, err := s2.View(fail1.ID)
	if err != nil || v.State != StateFailed || !strings.Contains(v.Error, "persistent failure") {
		t.Fatalf("restarted failed view = %+v, %v", v, err)
	}
	// Terminal jobs must not re-run.
	if got := s2.Metrics().CounterValue("jobs/resumed"); got != 0 {
		t.Fatalf("jobs/resumed = %d, want 0", got)
	}
}

// TestDrainRefusesSubmissions pins the drain accept contract.
func TestDrainRefusesSubmissions(t *testing.T) {
	s := mustOpen(t, testConfig(t, okRunner("")))
	if err := s.Drain(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Submit(spec1()); !errors.Is(err, ErrClosed) && !errors.Is(err, ErrDraining) {
		t.Fatalf("submit after drain: err = %v", err)
	}
	if !s.Draining() {
		t.Fatal("Draining() = false after Drain")
	}
	s.Close()
}

// TestSubscribeTerminalJobClosesImmediately pins the late-subscriber path.
func TestSubscribeTerminalJobClosesImmediately(t *testing.T) {
	s := mustOpen(t, testConfig(t, okRunner("x")))
	defer func() { s.Drain(); s.Close() }()
	v, _ := s.Submit(spec1())
	waitTerminal(t, s, v.ID)
	ch, cancel, err := s.Subscribe(v.ID)
	if err != nil {
		t.Fatal(err)
	}
	defer cancel()
	ev, ok := <-ch
	if !ok || !ev.State.Terminal() {
		t.Fatalf("first event = %+v, %v; want terminal snapshot", ev, ok)
	}
	if _, ok := <-ch; ok {
		t.Fatal("stream did not close after terminal snapshot")
	}
}

// TestExperimentRunnerCancellation drives the production runner with a
// pre-cancelled context: it must return the cancellation as an error, not
// hang or panic through.
func TestExperimentRunnerCancellation(t *testing.T) {
	r := ExperimentRunner(1, 0, 0)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := r(ctx, Spec{Experiments: []string{"table1"}, Quick: true}, RunContext{Metrics: metrics.NewRegistry()})
	if err == nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestExperimentRunnerProducesOutput runs one real quick experiment through
// the production runner end to end.
func TestExperimentRunnerProducesOutput(t *testing.T) {
	if testing.Short() {
		t.Skip("real experiment run")
	}
	r := ExperimentRunner(2, 0, 1)
	out, err := r(context.Background(), Spec{Experiments: []string{"table1"}, Quick: true, Seeds: 1},
		RunContext{Metrics: metrics.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "=== table1:") {
		t.Fatalf("output missing experiment header:\n%s", out)
	}
}
