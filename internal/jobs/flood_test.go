package jobs

import (
	"context"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestFloodShedsNotCrashes hammers a deliberately tiny pool with thousands
// of concurrent submissions over real HTTP and pins the robustness
// contract: every request gets a definite answer (202 accepted or 429 shed
// — nothing else), the daemon stays healthy throughout, the bookkeeping
// balances exactly, and memory stays inside a fixed envelope because
// shedding refuses work instead of queueing it.
func TestFloodShedsNotCrashes(t *testing.T) {
	if testing.Short() {
		t.Skip("flood test")
	}
	var started atomic.Int64
	r := func(ctx context.Context, spec Spec, rc RunContext) (string, error) {
		started.Add(1)
		time.Sleep(time.Millisecond)
		return "ok", nil
	}
	cfg := testConfig(t, r)
	cfg.Workers = 2
	cfg.QueueDepth = 8
	cfg.MaxWeight = 16
	s, ts := newTestAPI(t, cfg)

	var mem0 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&mem0)

	const (
		clients    = 50
		perClient  = 60
		totalCalls = clients * perClient // 3000 submissions
	)
	var accepted, shed, other atomic.Int64
	var wg sync.WaitGroup
	client := ts.Client()
	client.Timeout = 30 * time.Second
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				resp, err := client.Post(ts.URL+"/jobs", "application/json",
					strings.NewReader(`{"experiments":["table1"],"quick":true}`))
				if err != nil {
					other.Add(1)
					continue
				}
				switch resp.StatusCode {
				case http.StatusAccepted:
					accepted.Add(1)
				case http.StatusTooManyRequests:
					if resp.Header.Get("Retry-After") == "" {
						other.Add(1)
					} else {
						shed.Add(1)
					}
				default:
					other.Add(1)
				}
				resp.Body.Close()
			}
		}()
	}
	wg.Wait()

	if other.Load() != 0 {
		t.Fatalf("%d requests got neither 202 nor 429-with-Retry-After", other.Load())
	}
	if accepted.Load()+shed.Load() != totalCalls {
		t.Fatalf("accepted %d + shed %d != %d", accepted.Load(), shed.Load(), totalCalls)
	}
	if shed.Load() == 0 {
		t.Fatal("a 2-worker pool absorbed 3000 concurrent submissions without shedding")
	}
	if accepted.Load() == 0 {
		t.Fatal("everything shed: the pool made no progress at all")
	}

	// The daemon must still be answering.
	hr, err := http.Get(ts.URL + "/healthz")
	if err != nil || hr.StatusCode != http.StatusOK {
		t.Fatalf("healthz after flood: %v / %v", hr, err)
	}
	hr.Body.Close()

	// Server-side bookkeeping must balance the client-side tallies.
	reg := s.Metrics()
	if got := reg.CounterValue("jobs/accepted"); got != accepted.Load() {
		t.Fatalf("jobs/accepted = %d, clients saw %d", got, accepted.Load())
	}
	if got := reg.CounterValue("jobs/shed"); got != shed.Load() {
		t.Fatalf("jobs/shed = %d, clients saw %d", got, shed.Load())
	}

	// Every accepted job reaches a terminal state.
	deadline := time.Now().Add(60 * time.Second)
	for {
		if reg.CounterValue("jobs/done") == accepted.Load() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d accepted jobs finished", reg.CounterValue("jobs/done"), accepted.Load())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if started.Load() != accepted.Load() {
		t.Fatalf("runner ran %d times for %d accepted jobs", started.Load(), accepted.Load())
	}

	// Memory envelope: shedding bounds live state to the queue + terminal
	// records, so heap growth over the whole flood stays far below what
	// queueing 3000 jobs' grids would cost. 64 MiB is a generous fixed
	// ceiling (observed growth is a few MiB).
	runtime.GC()
	var mem1 runtime.MemStats
	runtime.ReadMemStats(&mem1)
	growth := int64(mem1.HeapAlloc) - int64(mem0.HeapAlloc)
	if growth > 64<<20 {
		t.Fatalf("heap grew %d MiB over the flood; load shedding is not bounding memory", growth>>20)
	}
}
