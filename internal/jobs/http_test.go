package jobs

import (
	"bufio"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"udwn/internal/experiment"
)

func newTestAPI(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := mustOpen(t, cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Drain()
		s.Close()
	})
	return s, ts
}

func postJSON(t *testing.T, url, body string) *http.Response {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func decodeView(t *testing.T, resp *http.Response) JobView {
	t.Helper()
	defer resp.Body.Close()
	var v JobView
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	return v
}

// TestAPISubmitLifecycle walks the happy path over real HTTP: submit → 202
// with a Location header → poll the view → fetch the terminal result as
// plain text.
func TestAPISubmitLifecycle(t *testing.T) {
	_, ts := newTestAPI(t, testConfig(t, okRunner("rendered tables\n")))
	resp := postJSON(t, ts.URL+"/jobs", `{"experiments":["table1"],"quick":true}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %d, want 202", resp.StatusCode)
	}
	loc := resp.Header.Get("Location")
	v := decodeView(t, resp)
	if v.ID == "" || loc != "/jobs/"+v.ID {
		t.Fatalf("view %+v, Location %q", v, loc)
	}

	deadline := time.Now().Add(30 * time.Second)
	for {
		r, err := http.Get(ts.URL + loc)
		if err != nil {
			t.Fatal(err)
		}
		v = decodeView(t, r)
		if v.State.Terminal() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %s", v.State)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if v.State != StateDone {
		t.Fatalf("state = %s, want DONE", v.State)
	}

	r, err := http.Get(ts.URL + loc + "/result")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	if r.StatusCode != http.StatusOK || !strings.HasPrefix(r.Header.Get("Content-Type"), "text/plain") {
		t.Fatalf("result status = %d, content-type = %q", r.StatusCode, r.Header.Get("Content-Type"))
	}
	body, err := io.ReadAll(r.Body)
	if err != nil {
		t.Fatal(err)
	}
	if string(body) != "rendered tables\n" {
		t.Fatalf("result body = %q", body)
	}
}

func TestAPIValidationAndErrors(t *testing.T) {
	_, ts := newTestAPI(t, testConfig(t, okRunner("")))
	cases := []struct {
		body string
		want int
	}{
		{`not json`, http.StatusBadRequest},
		{`{"experiments":[]}`, http.StatusBadRequest},
		{`{"experiments":["bogus"]}`, http.StatusBadRequest},
		{`{"experiments":["table1"],"unknown_field":1}`, http.StatusBadRequest},
	}
	for _, c := range cases {
		resp := postJSON(t, ts.URL+"/jobs", c.body)
		if resp.StatusCode != c.want {
			t.Fatalf("body %q: status = %d, want %d", c.body, resp.StatusCode, c.want)
		}
		var e map[string]string
		json.NewDecoder(resp.Body).Decode(&e)
		resp.Body.Close()
		if e["error"] == "" {
			t.Fatalf("body %q: error response missing error field", c.body)
		}
	}
	for _, path := range []string{"/jobs/j-999999", "/jobs/j-999999/result", "/jobs/j-999999/events"} {
		r, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
		if r.StatusCode != http.StatusNotFound {
			t.Fatalf("GET %s status = %d, want 404", path, r.StatusCode)
		}
	}
}

// TestAPIShedReturns429WithRetryAfter pins the load-shedding HTTP contract.
func TestAPIShedReturns429WithRetryAfter(t *testing.T) {
	block := make(chan struct{})
	defer close(block)
	r := func(ctx context.Context, spec Spec, rc RunContext) (string, error) {
		select {
		case <-block:
		case <-ctx.Done():
		}
		return "", nil
	}
	cfg := testConfig(t, r)
	cfg.Workers = 1
	cfg.QueueDepth = 1
	cfg.RetryAfter = 7 * time.Second
	_, ts := newTestAPI(t, cfg)

	var shed *http.Response
	for i := 0; i < 10; i++ {
		resp := postJSON(t, ts.URL+"/jobs", `{"experiments":["table1"],"quick":true}`)
		if resp.StatusCode == http.StatusTooManyRequests {
			shed = resp
			break
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit %d: status = %d", i, resp.StatusCode)
		}
	}
	if shed == nil {
		t.Fatal("queue never shed")
	}
	defer shed.Body.Close()
	if shed.Header.Get("Retry-After") != "7" {
		t.Fatalf("Retry-After = %q, want %q", shed.Header.Get("Retry-After"), "7")
	}
}

// TestAPIEventsStreamsSSE reads the live event stream: data frames must
// arrive as SSE, include progress, and end with the terminal state.
func TestAPIEventsStreamsSSE(t *testing.T) {
	r := func(ctx context.Context, spec Spec, rc RunContext) (string, error) {
		// Emit progress like a real grid would.
		for i := 1; i <= 3; i++ {
			rc.Progress(experiment.Progress{Experiment: spec.Experiments[0], Done: i, Total: 3})
			time.Sleep(2 * time.Millisecond)
		}
		return "ok", nil
	}
	cfg := testConfig(t, r)
	cfg.Workers = 1
	_, ts := newTestAPI(t, cfg)

	resp := postJSON(t, ts.URL+"/jobs", `{"experiments":["table1"],"quick":true,"seeds":3}`)
	v := decodeView(t, resp)

	er, err := http.Get(ts.URL + "/jobs/" + v.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer er.Body.Close()
	if ct := er.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q", ct)
	}
	sc := bufio.NewScanner(er.Body)
	var events []Event
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		var ev Event
		if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &ev); err != nil {
			t.Fatalf("bad SSE frame %q: %v", line, err)
		}
		events = append(events, ev)
		if ev.Type == "state" && ev.State.Terminal() {
			break
		}
	}
	if len(events) == 0 {
		t.Fatal("no events received")
	}
	last := events[len(events)-1]
	if last.State != StateDone {
		t.Fatalf("last event = %+v, want terminal DONE", last)
	}
	for _, ev := range events {
		if ev.Job != v.ID {
			t.Fatalf("event for wrong job: %+v", ev)
		}
	}
}

func TestAPIHealthReadyMetrics(t *testing.T) {
	s, ts := newTestAPI(t, testConfig(t, okRunner("")))
	for _, path := range []string{"/healthz", "/readyz"} {
		r, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
		if r.StatusCode != http.StatusOK {
			t.Fatalf("GET %s = %d, want 200", path, r.StatusCode)
		}
	}
	r, err := http.Get(ts.URL + "/metricsz")
	if err != nil {
		t.Fatal(err)
	}
	var m metricsResponse
	if err := json.NewDecoder(r.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if m.Metrics == nil {
		t.Fatal("metricsz missing metrics snapshot")
	}
	names := map[string]bool{}
	for _, c := range m.Metrics.Counters {
		names[c.Name] = true
	}
	for _, want := range []string{"jobs/accepted", "jobs/shed", "jobs/retried", "jobs/resumed", "jobs/drained"} {
		if !names[want] {
			t.Fatalf("metricsz missing counter %s (have %v)", want, names)
		}
	}

	// Drain flips readiness but not liveness.
	if err := s.Drain(); err != nil {
		t.Fatal(err)
	}
	hr, _ := http.Get(ts.URL + "/healthz")
	rr, _ := http.Get(ts.URL + "/readyz")
	hr.Body.Close()
	rr.Body.Close()
	if hr.StatusCode != http.StatusOK || rr.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("after drain: healthz = %d (want 200), readyz = %d (want 503)",
			hr.StatusCode, rr.StatusCode)
	}
	sr := postJSON(t, ts.URL+"/jobs", `{"experiments":["table1"]}`)
	sr.Body.Close()
	if sr.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit during drain = %d, want 503", sr.StatusCode)
	}
}

func TestAPICancel(t *testing.T) {
	block := make(chan struct{})
	defer close(block)
	r := func(ctx context.Context, spec Spec, rc RunContext) (string, error) {
		select {
		case <-block:
			return "", nil
		case <-ctx.Done():
			return "", ctx.Err()
		}
	}
	cfg := testConfig(t, r)
	cfg.Workers = 1
	s, ts := newTestAPI(t, cfg)
	v1 := decodeView(t, postJSON(t, ts.URL+"/jobs", `{"experiments":["table1"]}`))

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/jobs/"+v1.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel status = %d, want 200", resp.StatusCode)
	}
	final := waitTerminal(t, s, v1.ID)
	if final.State != StateCancelled {
		t.Fatalf("state = %s, want CANCELLED", final.State)
	}
	// Cancelling a terminal job conflicts.
	resp2, err := http.DefaultClient.Do(req.Clone(req.Context()))
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusConflict {
		t.Fatalf("re-cancel status = %d, want 409", resp2.StatusCode)
	}
}
