package jobs

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"udwn/internal/checkpoint"
	"udwn/internal/metrics"
)

// The GC kill matrix: every point during a retention sweep at which the
// on-disk state changes shape. The first four belong to the ledger half of
// the sweep, the last three to the checkpoint-store compaction. A SIGKILL
// landed at any of them must leave a restartable state directory that still
// holds every job retention wanted kept, byte-identical.
var gcKillStages = []string{
	"traces-removed",
	"ledger-temp-written",
	"ledger-renamed",
	"ledger-rewritten",
	"store-temp-written",
	"store-renamed",
	"store-compacted",
}

// gcKillOutput is the deterministic output the stub runner produces for a
// seed, shared by the victim and the restarted daemon so "byte-identical"
// is checkable across processes.
func gcKillOutput(seed uint64) string {
	return strings.Repeat(fmt.Sprintf("payload-%d ", seed), 256) + "\n"
}

// gcKillCompletingRunner is the restarted daemon's runner: identical output
// for any seed, and it completes gate jobs instead of blocking them.
func gcKillCompletingRunner(ctx context.Context, spec Spec, rc RunContext) (string, error) {
	return gcKillOutput(spec.Seed), nil
}

// gcKillRunner completes jobs with seed-keyed deterministic output, except
// Client "gate" jobs, which report on started and then block until the
// attempt context fires — a permanently non-terminal job from GC's point of
// view.
func gcKillRunner(started chan<- struct{}) Runner {
	return func(ctx context.Context, spec Spec, rc RunContext) (string, error) {
		if spec.Client == "gate" {
			if started != nil {
				started <- struct{}{}
			}
			<-ctx.Done()
			return "", ctx.Err()
		}
		return gcKillOutput(spec.Seed), nil
	}
}

// The store records the victim plants: one the live gate job's experiment
// references (must survive compaction) and one nothing references (dropped
// once the compaction's rename commits).
func gcKillKeptRecord() checkpoint.Record {
	return checkpoint.Record{Experiment: "table1", Label: "row=0 seed=0", Schema: "v1", Value: []byte("kept")}
}
func gcKillStaleRecord() checkpoint.Record {
	return checkpoint.Record{Experiment: "stale-exp", Label: "row=0 seed=0", Schema: "v1", Value: []byte("stale")}
}

func keyOfRec(r checkpoint.Record) checkpoint.Key { return r.Key() }

// TestGCKillHelper is the victim: it builds a daemon with four terminal
// jobs (traces planted), one gated RUNNING job, and two checkpoint records,
// then starts a RetainCount=1 sweep with hooks armed so the process stalls
// — holding all its locks — exactly at the stage under test, signals the
// parent, and waits for the SIGKILL.
func TestGCKillHelper(t *testing.T) {
	if os.Getenv("JOBS_GCKILL_HELPER") != "1" {
		t.Skip("helper process for TestGCKillAtEveryStage")
	}
	dir := os.Getenv("JOBS_GCKILL_DIR")
	stage := os.Getenv("JOBS_GCKILL_STAGE")
	die := func(err error) {
		fmt.Fprintln(os.Stderr, "helper:", err)
		os.Exit(1)
	}

	started := make(chan struct{}, 1)
	srv, err := Open(Config{
		Dir: dir, Workers: 2, RetainCount: 1,
		Metrics: metrics.NewRegistry(),
		Runner:  gcKillRunner(started),
	})
	if err != nil {
		die(err)
	}
	for i := uint64(1); i <= 4; i++ {
		v, err := srv.Submit(Spec{Experiments: []string{"table1"}, Quick: true, Seed: i})
		if err != nil {
			die(err)
		}
		waitTerminal(t, srv, v.ID)
		// The stub runner writes no traces; plant what a real one would, so
		// the sweep's trace stage has files to unlink.
		if err := os.WriteFile(srv.tracePath(v.ID), []byte("trace "+v.ID), 0o644); err != nil {
			die(err)
		}
	}
	if _, err := srv.Submit(Spec{Experiments: []string{"table1"}, Quick: true, Client: "gate"}); err != nil {
		die(err)
	}
	<-started // the gate job is RUNNING: non-terminal throughout the sweep
	if err := srv.Store().Put(gcKillKeptRecord()); err != nil {
		die(err)
	}
	if err := srv.Store().Put(gcKillStaleRecord()); err != nil {
		die(err)
	}

	// Arm the hooks: reaching the target stage signals the parent and stalls
	// the sweep mid-flight (locks held) until the SIGKILL lands.
	stall := func() {
		if err := os.WriteFile(filepath.Join(dir, "stage-reached"), []byte(stage+"\n"), 0o644); err != nil {
			die(err)
		}
		select {} // killed here
	}
	gcTestHook = func(s string) {
		if s == stage {
			stall()
		}
	}
	checkpoint.RewriteTestHook = func(s checkpoint.RewriteStage, path string) {
		journal := "ledger"
		if filepath.Base(path) == "cells.journal" {
			journal = "store"
		}
		if journal+"-"+string(s) == stage {
			stall()
		}
	}
	srv.GC() // blocks in the armed hook; the parent kills us there
	fmt.Fprintln(os.Stderr, "helper: sweep finished without reaching stage", stage)
	os.Exit(1)
}

// TestGCKillAtEveryStage SIGKILLs a real daemon process at each stage of a
// retention sweep and asserts, per stage, that a restart over the same
// directory (a) opens cleanly, (b) still serves the retained job's output
// byte-identical, (c) resumes the non-terminal job, (d) kept checkpoint
// records survive compaction, (e) the id allocator never recycles a
// collected id, and (f) a follow-up sweep converges to the retained set.
func TestGCKillAtEveryStage(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess kill/restart matrix")
	}
	for _, stage := range gcKillStages {
		t.Run(stage, func(t *testing.T) {
			dir := t.TempDir()
			cmd := exec.Command(os.Args[0], "-test.run=^TestGCKillHelper$", "-test.v")
			cmd.Env = append(os.Environ(),
				"JOBS_GCKILL_HELPER=1", "JOBS_GCKILL_DIR="+dir, "JOBS_GCKILL_STAGE="+stage)
			var helperOut bytes.Buffer
			cmd.Stdout, cmd.Stderr = &helperOut, &helperOut
			if err := cmd.Start(); err != nil {
				t.Fatal(err)
			}
			defer cmd.Process.Kill()
			reached := filepath.Join(dir, "stage-reached")
			deadline := time.Now().Add(60 * time.Second)
			for {
				if _, err := os.Stat(reached); err == nil {
					break
				}
				if time.Now().After(deadline) {
					t.Fatalf("helper never reached stage %s:\n%s", stage, helperOut.String())
				}
				time.Sleep(5 * time.Millisecond)
			}
			if err := cmd.Process.Kill(); err != nil { // SIGKILL mid-sweep
				t.Fatal(err)
			}
			cmd.Wait()

			// Restart over the wreckage. Same runner logic, minus the gate:
			// the resumed job must now complete.
			reg := metrics.NewRegistry()
			srv, err := Open(Config{
				Dir: dir, Workers: 2, RetainCount: 1, Metrics: reg,
				Runner: gcKillCompletingRunner,
			})
			if err != nil {
				t.Fatalf("restart after kill at %s: %v\n%s", stage, err, helperOut.String())
			}
			defer func() { srv.Drain(); srv.Close() }()

			// The ledger is old-or-new, never torn: before the rename commits
			// all five jobs replay; after it, the retained one plus the
			// resumable one.
			ledgerRenamed := stage != "traces-removed" && stage != "ledger-temp-written"
			wantJobs := 5
			if ledgerRenamed {
				wantJobs = 2
			}
			views := srv.List()
			if len(views) != wantJobs {
				t.Fatalf("kill at %s: replay found %d jobs, want %d (ledger renamed: %v)\n%v",
					stage, len(views), wantJobs, ledgerRenamed, views)
			}

			// Every surviving terminal job — and above all the retained
			// newest one — serves byte-identical output.
			sawRetained, sawGate := false, ""
			for _, v := range views {
				if v.Spec.Client == "gate" {
					sawGate = v.ID
					continue
				}
				out, state, err := srv.Result(v.ID)
				if err != nil || state != StateDone {
					t.Fatalf("kill at %s: job %s unservable: %v %s", stage, v.ID, err, state)
				}
				if want := gcKillOutput(v.Spec.Seed); out != want {
					t.Fatalf("kill at %s: job %s output diverged after restart", stage, v.ID)
				}
				if v.Spec.Seed == 4 {
					sawRetained = true
				}
			}
			if !sawRetained {
				t.Fatalf("kill at %s lost the retained job (seed 4)", stage)
			}
			if sawGate == "" {
				t.Fatalf("kill at %s lost the non-terminal job", stage)
			}
			if final := waitTerminal(t, srv, sawGate); final.State != StateDone {
				t.Fatalf("resumed job finished %s (%s)", final.State, final.Error)
			}

			// The record a resumable job references must survive every crash
			// point; the unreferenced one is gone once the store rename is
			// durable.
			if _, ok := srv.Store().Lookup(keyOfRec(gcKillKeptRecord())); !ok {
				t.Fatalf("kill at %s dropped a checkpoint record a live job references", stage)
			}
			if stage == "store-renamed" || stage == "store-compacted" {
				if _, ok := srv.Store().Lookup(keyOfRec(gcKillStaleRecord())); ok {
					t.Fatalf("kill at %s: unreferenced record survived a durable compaction", stage)
				}
			}

			// The allocator must never recycle an id, whichever ledger
			// generation survived (the old one replays five submits; the new
			// one opens with the seq pin).
			v, err := srv.Submit(Spec{Experiments: []string{"table1"}, Quick: true, Seed: 9})
			if err != nil {
				t.Fatal(err)
			}
			if v.ID != "j-000006" {
				t.Fatalf("kill at %s: allocator issued %s, want j-000006", stage, v.ID)
			}
			waitTerminal(t, srv, v.ID)

			// A follow-up sweep on the restarted daemon converges: only the
			// newest terminal job plus nothing non-terminal remains.
			if _, err := srv.GC(); err != nil {
				t.Fatalf("post-restart sweep: %v", err)
			}
			if got := len(srv.List()); got != 1 {
				t.Fatalf("kill at %s: post-restart sweep left %d jobs, want 1", stage, got)
			}
		})
	}
}

// TestRetentionBoundsStateDir is the soak acceptance test: a daemon that
// runs many jobs past retention — sweeping as it goes — must keep its state
// directory within a byte budget, and a SIGKILL + restart must still serve
// every unretained (kept) job byte-identical and resume every acknowledged
// non-terminal job.
func TestRetentionBoundsStateDir(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess kill/restart soak")
	}
	dir := t.TempDir()
	cmd := exec.Command(os.Args[0], "-test.run=^TestGCSoakHelper$", "-test.v")
	cmd.Env = append(os.Environ(), "JOBS_GCSOAK_HELPER=1", "JOBS_GCSOAK_DIR="+dir)
	var helperOut bytes.Buffer
	cmd.Stdout, cmd.Stderr = &helperOut, &helperOut
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()
	ready := filepath.Join(dir, "ready")
	deadline := time.Now().Add(120 * time.Second)
	for {
		if _, err := os.Stat(ready); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("soak helper never finished its batches:\n%s", helperOut.String())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	cmd.Wait()

	// 30 jobs × ~2.8 KiB of output flowed through the daemon (~90 KiB of
	// ledger had nothing been collected); with RetainCount=3 the state dir
	// must hold only the retained tail plus framing.
	const budget = 24 * 1024
	if size := dirSize(t, dir); size > budget {
		t.Fatalf("state dir is %d bytes after the soak, budget %d\n%s", size, budget, helperOut.String())
	}

	// Restart: the retained jobs (the 3 newest terminal ones) serve
	// byte-identical output, the parked non-terminal jobs resume and finish.
	reg := metrics.NewRegistry()
	srv, err := Open(Config{Dir: dir, Workers: 2, RetainCount: 3, Metrics: reg, Runner: gcKillCompletingRunner})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { srv.Drain(); srv.Close() }()
	terminal, resumed := 0, 0
	for _, v := range srv.List() {
		if v.State.Terminal() {
			out, state, err := srv.Result(v.ID)
			if err != nil || state != StateDone {
				t.Fatalf("retained job %s unservable: %v %s", v.ID, err, state)
			}
			if out != gcKillOutput(v.Spec.Seed) {
				t.Fatalf("retained job %s output diverged across the kill", v.ID)
			}
			terminal++
			continue
		}
		if final := waitTerminal(t, srv, v.ID); final.State != StateDone {
			t.Fatalf("resumed job %s finished %s (%s)", v.ID, final.State, final.Error)
		}
		resumed++
	}
	if terminal != 3 {
		t.Fatalf("%d terminal jobs survived the soak, want the 3 retained", terminal)
	}
	if resumed != 4 {
		t.Fatalf("%d acknowledged non-terminal jobs resumed, want 4", resumed)
	}
	if got := reg.CounterValue("jobs/resumed"); got != 4 {
		t.Fatalf("jobs/resumed = %d, want 4", got)
	}
}

// TestGCSoakHelper is the soak victim: 30 jobs past a RetainCount=3 policy
// with periodic sweeps, then 4 acknowledged-but-queued jobs, then SIGKILL.
func TestGCSoakHelper(t *testing.T) {
	if os.Getenv("JOBS_GCSOAK_HELPER") != "1" {
		t.Skip("helper process for TestRetentionBoundsStateDir")
	}
	dir := os.Getenv("JOBS_GCSOAK_DIR")
	die := func(err error) {
		fmt.Fprintln(os.Stderr, "helper:", err)
		os.Exit(1)
	}
	srv, err := Open(Config{
		Dir: dir, Workers: 2, RetainCount: 3,
		Metrics: metrics.NewRegistry(), Runner: gcKillRunner(nil),
	})
	if err != nil {
		die(err)
	}
	for i := uint64(1); i <= 30; i++ {
		v, err := srv.Submit(Spec{Experiments: []string{"table1"}, Quick: true, Seed: i})
		if err != nil {
			die(err)
		}
		waitTerminal(t, srv, v.ID)
		if i%5 == 0 {
			if _, err := srv.GC(); err != nil {
				die(err)
			}
		}
	}
	// Acknowledge four jobs that will still be queued or gated when the kill
	// lands; the restart must resume all of them.
	for i := uint64(100); i < 104; i++ {
		if _, err := srv.Submit(Spec{Experiments: []string{"table1"}, Quick: true, Seed: i, Client: "gate"}); err != nil {
			die(err)
		}
	}
	if _, err := srv.GC(); err != nil {
		die(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "ready"), []byte("ok\n"), 0o644); err != nil {
		die(err)
	}
	for {
		time.Sleep(time.Hour) // run until SIGKILLed
	}
}

// dirSize walks the state directory, totalling regular files.
func dirSize(t *testing.T, dir string) int64 {
	t.Helper()
	var total int64
	err := filepath.Walk(dir, func(path string, fi os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		if fi.Mode().IsRegular() {
			total += fi.Size()
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return total
}
