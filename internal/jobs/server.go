package jobs

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"udwn/internal/checkpoint"
	"udwn/internal/experiment"
	"udwn/internal/metrics"
	"udwn/internal/rng"
)

// Config tunes the daemon. The zero value of every field selects a sensible
// default (see fill); only Dir is required.
type Config struct {
	// Dir is the daemon state directory: jobs.journal (the accepted-work
	// ledger) plus cells/ (the shared checkpoint store). Both are resumed,
	// never truncated, so restarting over the same Dir continues where the
	// previous process died.
	Dir string
	// Workers is the number of jobs executing concurrently (default 2).
	Workers int
	// GridWorkers caps concurrent cells inside each job's grid (default 1;
	// job-level parallelism already fills the pool).
	GridWorkers int
	// QueueDepth bounds the number of jobs waiting for a worker; beyond
	// it submissions shed with ErrBusy (default 64).
	QueueDepth int
	// MaxWeight bounds the total declared cell weight (experiments ×
	// seeds) of queued plus running jobs — the in-flight budget behind the
	// second shedding condition (default 512).
	MaxWeight int
	// MaxSeeds and MaxRetries cap what one submission may request
	// (defaults 64 and 5).
	MaxSeeds   int
	MaxRetries int
	// DefaultDeadline and MaxDeadline bound one attempt's wall clock
	// (defaults 2m and 15m).
	DefaultDeadline time.Duration
	MaxDeadline     time.Duration
	// CellTimeout and CellRetries are the per-cell deadline and retry
	// budget every job grid runs with (defaults 0 — no cell deadline — and
	// 1 retry).
	CellTimeout time.Duration
	CellRetries int
	// BackoffBase and BackoffMax shape the supervisor's exponential retry
	// delay (defaults 250ms and 5s); the jitter is deterministic given the
	// job's Seed.
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// DrainGrace is how long Drain lets running jobs finish before their
	// grids are cancelled and the jobs park for the next start (default 5s).
	DrainGrace time.Duration
	// RetryAfter is the Retry-After hint attached to shed responses
	// (default 1s; the HTTP layer clamps the header to ≥ 1 second).
	RetryAfter time.Duration
	// RetainAge, RetainCount and RetainBytes are the retention policy GC
	// enforces over terminal jobs (see gc.go). Zero disables the
	// corresponding axis; all three zero keeps every terminal job forever
	// (GC then only compacts duplicate journal frames). RetainAge drops
	// terminal jobs older than the duration, RetainCount keeps at most that
	// many terminal jobs (newest first), and RetainBytes drops oldest
	// terminal jobs until the state directory (ledger + checkpoint journal +
	// traces) fits the budget.
	RetainAge   time.Duration
	RetainCount int
	RetainBytes int64
	// GCInterval is the background sweeper's period. Zero runs GC only on
	// demand (POST /gc or Server.GC) unless a retention axis is configured,
	// in which case it defaults to 1m.
	GCInterval time.Duration
	// ClientQueueDepth, ClientMaxWeight and ClientMaxInflight are the
	// per-client budgets (keyed on Spec.Client). Zero disables the
	// corresponding budget. Queue depth and weight shed at submission with a
	// QuotaError naming the tripped budget (HTTP 429); the inflight cap is
	// enforced by the weighted-fair dequeue, which skips a capped client's
	// jobs instead of rejecting them.
	ClientQueueDepth  int
	ClientMaxWeight   int
	ClientMaxInflight int
	// Runner executes job attempts; nil selects ExperimentRunner with the
	// grid settings above. Tests inject fakes here.
	Runner Runner
	// Metrics is the daemon registry carrying the jobs/* counters; nil
	// creates a private one.
	Metrics *metrics.Registry
}

func (c *Config) fill() {
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.GridWorkers <= 0 {
		c.GridWorkers = 1
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.MaxWeight <= 0 {
		c.MaxWeight = 512
	}
	if c.MaxSeeds <= 0 {
		c.MaxSeeds = 64
	}
	if c.MaxRetries <= 0 {
		c.MaxRetries = 5
	}
	if c.DefaultDeadline <= 0 {
		c.DefaultDeadline = 2 * time.Minute
	}
	if c.MaxDeadline <= 0 {
		c.MaxDeadline = 15 * time.Minute
	}
	if c.CellRetries <= 0 {
		c.CellRetries = 1
	}
	if c.BackoffBase <= 0 {
		c.BackoffBase = 250 * time.Millisecond
	}
	if c.BackoffMax <= 0 {
		c.BackoffMax = 5 * time.Second
	}
	if c.DrainGrace <= 0 {
		c.DrainGrace = 5 * time.Second
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	if c.GCInterval <= 0 && (c.RetainAge > 0 || c.RetainCount > 0 || c.RetainBytes > 0) {
		c.GCInterval = time.Minute
	}
	if c.Metrics == nil {
		c.Metrics = metrics.NewRegistry()
	}
	if c.Runner == nil {
		c.Runner = ExperimentRunner(c.GridWorkers, c.CellTimeout, c.CellRetries)
	}
}

// counterNames is the canonical jobs/* instrument set, registered up front
// so every snapshot reports the full set (zeros included).
var counterNames = []string{
	"jobs/accepted", "jobs/shed", "jobs/rejected", "jobs/journal-errors",
	"jobs/done", "jobs/failed", "jobs/cancelled",
	"jobs/retried", "jobs/resumed", "jobs/drained",
	"jobs/gc/runs", "jobs/gc/collected", "jobs/gc/traces-removed",
	"checkpoint/gc/compactions", "checkpoint/gc/dropped",
}

// job is the server-internal mutable record behind a JobView. Every field
// is guarded by the server mutex.
type job struct {
	id       string
	spec     Spec
	seqNo    int
	state    State
	attempts int
	lastErr  string
	output   string
	resumed  bool
	prog     *ProgressView
	// doneAt is the terminal transition's Unix-millisecond wall clock (0
	// while non-terminal) — what RetainAge ages against.
	doneAt int64
	// dequeued flips when a worker pops the job; finish uses it to tell a
	// job that ran (inflight accounting) from one cancelled in the queue
	// (queued accounting).
	dequeued bool

	cancelReq    bool
	cancelClosed bool
	cancelCh     chan struct{}
	runCancel    context.CancelFunc

	subs   map[int]chan Event
	subSeq int
}

// view snapshots the job; the caller holds the server mutex.
func (j *job) view() JobView {
	v := JobView{
		ID:       j.id,
		State:    j.state,
		Spec:     j.spec,
		Attempts: j.attempts,
		Error:    j.lastErr,
		Resumed:  j.resumed,
	}
	if j.prog != nil {
		p := *j.prog
		v.Progress = &p
	}
	return v
}

// Server is the supervised job pool. Open resumes the state directory,
// starts the workers, and the HTTP layer in http.go exposes it.
type Server struct {
	cfg    Config
	reg    *metrics.Registry
	store  *checkpoint.Store
	ledger *jobJournal

	// runCtx is the parent of every attempt context; runCancel fires when
	// drain exceeds its grace (hard-cancelling in-flight grids).
	runCtx    context.Context
	runCancel context.CancelFunc
	// drainCh closes the moment drain begins, interrupting backoff sleeps.
	drainCh chan struct{}

	mu       sync.Mutex
	cond     *sync.Cond
	jobs     map[string]*job
	order    []string
	queue    []*job
	working  []*job // per-worker slot: the job each pool worker is on (nil = idle)
	weight   int
	seq      int
	draining bool
	closed   bool

	// clients is the per-client accounting behind quotas and the
	// weighted-fair dequeue; clientOrder fixes the deterministic tie-break
	// (first submission wins).
	clients     map[string]*clientState
	clientOrder []string

	// lastGC snapshots the most recent GC run for /statusz.
	lastGC   GCStats
	lastGCAt time.Time
	gcRan    bool

	wg sync.WaitGroup
}

// clientState is one client's admission and scheduling account. Guarded by
// the server mutex.
type clientState struct {
	// queued and inflight count the client's jobs waiting and running;
	// weight is its total declared cell weight across both.
	queued, inflight, weight int
	// served is the total declared weight of jobs dequeued for this client —
	// the attained service the weighted-fair dequeue equalizes. New clients
	// start at the current minimum so they neither inherit a deficit nor an
	// unbounded catch-up credit.
	served int64
}

// clientOf returns (creating on first sight) the account for a client id.
// Caller holds the server mutex.
func (s *Server) clientOf(client string) *clientState {
	if cs, ok := s.clients[client]; ok {
		return cs
	}
	cs := &clientState{}
	first := true
	for _, other := range s.clients {
		if first || other.served < cs.served {
			cs.served = other.served
			first = false
		}
	}
	s.clients[client] = cs
	s.clientOrder = append(s.clientOrder, client)
	return cs
}

// Open resumes (or creates) the daemon state in cfg.Dir and starts the
// worker pool. The job journal replays first: terminal jobs come back
// servable (state, output, error), and every job that was accepted but not
// terminal — queued, running or backing off when the process died — is
// re-queued in submission order with Resumed set, counted under
// jobs/resumed. Their grids replay finished cells from the shared
// checkpoint store, so a SIGKILL costs at most the cells that were in
// flight.
func Open(cfg Config) (*Server, error) {
	cfg.fill()
	if cfg.Dir == "" {
		return nil, errors.New("jobs: Config.Dir is required")
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("jobs: create dir: %w", err)
	}
	if err := os.MkdirAll(filepath.Join(cfg.Dir, "traces"), 0o755); err != nil {
		return nil, fmt.Errorf("jobs: create traces dir: %w", err)
	}
	store, err := checkpoint.Resume(filepath.Join(cfg.Dir, "cells"))
	if err != nil {
		return nil, err
	}
	s := &Server{
		cfg:     cfg,
		reg:     cfg.Metrics,
		store:   store,
		drainCh: make(chan struct{}),
		jobs:    make(map[string]*job),
		clients: make(map[string]*clientState),
	}
	s.cond = sync.NewCond(&s.mu)
	s.runCtx, s.runCancel = context.WithCancel(context.Background())
	for _, name := range counterNames {
		s.reg.Counter(name)
	}

	ledger, err := resumeJobJournal(cfg.Dir, s.replay)
	if err != nil {
		store.Close()
		return nil, err
	}
	s.ledger = ledger

	// Re-queue the interrupted jobs in submission order.
	for _, id := range s.order {
		j := s.jobs[id]
		if j.state.Terminal() {
			continue
		}
		j.state = StateQueued
		j.resumed = true
		s.queue = append(s.queue, j)
		s.weight += j.spec.weight()
		cs := s.clientOf(j.spec.Client)
		cs.queued++
		cs.weight += j.spec.weight()
		s.reg.Counter("jobs/resumed").Inc()
	}

	s.working = make([]*job, cfg.Workers)
	s.wg.Add(cfg.Workers)
	for w := 0; w < cfg.Workers; w++ {
		go s.worker(w)
	}
	if cfg.GCInterval > 0 {
		s.wg.Add(1)
		go s.gcSweeper()
	}
	return s, nil
}

// replay applies one journal event during Open.
func (s *Server) replay(ev jobEvent) {
	switch ev.Kind {
	case "submit":
		j := &job{
			id:       ev.ID,
			spec:     *ev.Spec,
			seqNo:    ev.Seq,
			state:    StateQueued,
			cancelCh: make(chan struct{}),
			subs:     make(map[int]chan Event),
		}
		if _, dup := s.jobs[ev.ID]; dup {
			return
		}
		s.jobs[ev.ID] = j
		s.order = append(s.order, ev.ID)
		if ev.Seq > s.seq {
			s.seq = ev.Seq
		}
	case "done", "failed", "cancelled":
		j, ok := s.jobs[ev.ID]
		if !ok {
			return
		}
		switch ev.Kind {
		case "done":
			j.state = StateDone
			j.output = ev.Output
		case "failed":
			j.state = StateFailed
			j.lastErr = ev.Error
		case "cancelled":
			j.state = StateCancelled
			j.lastErr = ev.Error
		}
		j.attempts = ev.Attempts
		j.doneAt = ev.DoneMs
	case "seq":
		// GC compaction's allocator pin: dropping the oldest submit records
		// must not let a restart re-issue their ids.
		if ev.Seq > s.seq {
			s.seq = ev.Seq
		}
	}
}

// Store exposes the shared checkpoint store (metrics/introspection).
func (s *Server) Store() *checkpoint.Store { return s.store }

// Metrics exposes the daemon registry.
func (s *Server) Metrics() *metrics.Registry { return s.reg }

// JournalTornBytes reports how many torn journal bytes Open's recovery
// dropped (0 for a clean start).
func (s *Server) JournalTornBytes() int64 { return s.ledger.tornBytes() }

// tracePath is where a Spec.Trace job's binary trace lives.
func (s *Server) tracePath(id string) string {
	return filepath.Join(s.cfg.Dir, "traces", id+".utb")
}

// TraceFile resolves a job's recorded trace: ErrNotFound for unknown jobs,
// *InvalidError when the job was not submitted with Spec.Trace, and
// os.ErrNotExist (wrapped) when tracing is on but no attempt has written the
// file yet.
func (s *Server) TraceFile(id string) (string, error) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	var traced bool
	if ok {
		traced = j.spec.Trace
	}
	s.mu.Unlock()
	if !ok {
		return "", ErrNotFound
	}
	if !traced {
		return "", &InvalidError{Reason: fmt.Sprintf("job %s was not submitted with trace recording", id)}
	}
	path := s.tracePath(id)
	if _, err := os.Stat(path); err != nil {
		return "", fmt.Errorf("jobs: trace for %s not recorded yet: %w", id, err)
	}
	return path, nil
}

// WorkerStatus is one pool worker's slot in the /statusz view.
type WorkerStatus struct {
	Worker int `json:"worker"`
	// Idle means the worker is waiting for the queue; the remaining fields
	// are zero.
	Idle bool   `json:"idle"`
	Job  string `json:"job,omitempty"`
	// State is the job's current lifecycle state (RUNNING, or BACKOFF while
	// the worker waits out a retry delay).
	State   State `json:"state,omitempty"`
	Attempt int   `json:"attempt,omitempty"`
	// Progress is the job's last grid progress: which experiment the worker
	// is inside and its done/total/failed cell counts.
	Progress *ProgressView `json:"progress,omitempty"`
}

// ClientStatus is one client's quota account in the /statusz view.
type ClientStatus struct {
	// Client is the identity ("" for the anonymous client).
	Client   string `json:"client"`
	Queued   int    `json:"queued"`
	Inflight int    `json:"inflight"`
	Weight   int    `json:"weight"`
	// Served is the attained service (total dequeued weight) the fair
	// scheduler equalizes across clients.
	Served int64 `json:"served"`
}

// GCStatus is the retention/GC panel of /statusz: the configured policy and
// the last sweep's outcome.
type GCStatus struct {
	RetainAgeMs int64 `json:"retain_age_ms,omitempty"`
	RetainCount int   `json:"retain_count,omitempty"`
	RetainBytes int64 `json:"retain_bytes,omitempty"`
	IntervalMs  int64 `json:"interval_ms,omitempty"`
	// LastUnixMs is 0 until the first sweep.
	LastUnixMs int64    `json:"last_unix_ms,omitempty"`
	Last       *GCStats `json:"last,omitempty"`
}

// StatusView is the /statusz body: per-worker occupancy, queue pressure
// against the admission limits, job counts by state, per-client quota
// accounts, the GC/retention panel, and the shedding/intake counters — the
// one-page answer to "what is the daemon doing right now".
type StatusView struct {
	Draining   bool             `json:"draining"`
	Workers    []WorkerStatus   `json:"workers"`
	QueueDepth int              `json:"queue_depth"`
	QueueCap   int              `json:"queue_cap"`
	Weight     int              `json:"weight"`
	MaxWeight  int              `json:"max_weight"`
	Jobs       map[State]int    `json:"jobs"`
	Clients    []ClientStatus   `json:"clients,omitempty"`
	GC         GCStatus         `json:"gc"`
	Counters   map[string]int64 `json:"counters"`
}

// Status snapshots the pool for /statusz.
func (s *Server) Status() StatusView {
	s.mu.Lock()
	v := StatusView{
		Draining:   s.draining,
		Workers:    make([]WorkerStatus, len(s.working)),
		QueueDepth: len(s.queue),
		QueueCap:   s.cfg.QueueDepth,
		Weight:     s.weight,
		MaxWeight:  s.cfg.MaxWeight,
		Jobs:       make(map[State]int),
		GC: GCStatus{
			RetainAgeMs: s.cfg.RetainAge.Milliseconds(),
			RetainCount: s.cfg.RetainCount,
			RetainBytes: s.cfg.RetainBytes,
			IntervalMs:  s.cfg.GCInterval.Milliseconds(),
		},
	}
	for _, client := range s.clientOrder {
		cs := s.clients[client]
		v.Clients = append(v.Clients, ClientStatus{
			Client: client, Queued: cs.queued, Inflight: cs.inflight,
			Weight: cs.weight, Served: cs.served,
		})
	}
	if s.gcRan {
		last := s.lastGC
		v.GC.Last = &last
		v.GC.LastUnixMs = s.lastGCAt.UnixMilli()
	}
	for w, j := range s.working {
		ws := WorkerStatus{Worker: w, Idle: j == nil}
		if j != nil {
			ws.Job = j.id
			ws.State = j.state
			ws.Attempt = j.attempts
			if j.prog != nil {
				p := *j.prog
				ws.Progress = &p
			}
		}
		v.Workers[w] = ws
	}
	for _, j := range s.jobs {
		v.Jobs[j.state]++
	}
	s.mu.Unlock()
	v.Counters = make(map[string]int64, len(counterNames))
	for _, name := range counterNames {
		v.Counters[name] = s.reg.CounterValue(name)
	}
	return v
}

// Draining reports whether graceful shutdown has begun (readyz flips on it).
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// Submit validates and accepts one job: journalled before the call returns,
// so an acknowledged job survives any crash. Returns ErrDraining during
// shutdown, ErrBusy when the global queue depth or in-flight cell-weight
// budget would be exceeded, and a *QuotaError (which errors.Is-matches
// ErrBusy) naming the tripped budget when the submitting client is over one
// of its per-client limits — the load-shedding contract that keeps the
// daemon's memory bounded under submission floods and one greedy client
// from starving the rest.
func (s *Server) Submit(spec Spec) (JobView, error) {
	if err := spec.validate(&s.cfg); err != nil {
		s.reg.Counter("jobs/rejected").Inc()
		return JobView{}, err
	}
	if spec.Trace {
		// Fail trace jobs at admission, not mid-attempt: a submission that
		// can never record its trace should be refused while the client is
		// still on the line.
		if err := s.traceWritable(); err != nil {
			s.reg.Counter("jobs/rejected").Inc()
			return JobView{}, err
		}
	}
	w := spec.weight()
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return JobView{}, ErrClosed
	}
	if s.draining {
		s.mu.Unlock()
		return JobView{}, ErrDraining
	}
	if len(s.queue) >= s.cfg.QueueDepth || s.weight+w > s.cfg.MaxWeight {
		s.mu.Unlock()
		s.reg.Counter("jobs/shed").Inc()
		return JobView{}, ErrBusy
	}
	cs := s.clientOf(spec.Client)
	if s.cfg.ClientQueueDepth > 0 && cs.queued >= s.cfg.ClientQueueDepth {
		err := &QuotaError{Client: spec.Client, Budget: "queue-depth", Used: cs.queued, Limit: s.cfg.ClientQueueDepth}
		s.mu.Unlock()
		s.reg.Counter("jobs/shed").Inc()
		return JobView{}, err
	}
	if s.cfg.ClientMaxWeight > 0 && cs.weight+w > s.cfg.ClientMaxWeight {
		err := &QuotaError{Client: spec.Client, Budget: "weight", Used: cs.weight, Limit: s.cfg.ClientMaxWeight}
		s.mu.Unlock()
		s.reg.Counter("jobs/shed").Inc()
		return JobView{}, err
	}
	s.seq++
	j := &job{
		id:       fmt.Sprintf("j-%06d", s.seq),
		spec:     spec,
		seqNo:    s.seq,
		state:    StateQueued,
		cancelCh: make(chan struct{}),
		subs:     make(map[int]chan Event),
	}
	if err := s.ledger.append(jobEvent{Kind: "submit", ID: j.id, Seq: s.seq, Spec: &spec}); err != nil {
		s.mu.Unlock()
		s.reg.Counter("jobs/journal-errors").Inc()
		return JobView{}, err
	}
	s.jobs[j.id] = j
	s.order = append(s.order, j.id)
	s.queue = append(s.queue, j)
	s.weight += w
	cs.queued++
	cs.weight += w
	s.reg.Gauge("jobs/weight-high-water").SetMax(int64(s.weight))
	s.reg.Gauge("jobs/queue-high-water").SetMax(int64(len(s.queue)))
	view := j.view()
	s.cond.Signal()
	s.mu.Unlock()
	s.reg.Counter("jobs/accepted").Inc()
	return view, nil
}

// traceWritable probes the traces directory with a create+remove round
// trip, wrapping any failure in ErrTraceUnavailable (HTTP 503). A probe
// file (not a permission-bit check) is deliberate: it is the same operation
// the attempt will perform and stays honest under privileged users, ACLs
// and read-only mounts.
func (s *Server) traceWritable() error {
	f, err := os.CreateTemp(filepath.Join(s.cfg.Dir, "traces"), ".probe-*")
	if err != nil {
		return fmt.Errorf("%w: %v", ErrTraceUnavailable, err)
	}
	name := f.Name()
	f.Close()
	os.Remove(name)
	return nil
}

// View returns the snapshot of one job.
func (s *Server) View(id string) (JobView, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return JobView{}, ErrNotFound
	}
	return j.view(), nil
}

// List returns every job in submission order.
func (s *Server) List() []JobView {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]JobView, 0, len(s.order))
	ids := append([]string(nil), s.order...)
	sort.Strings(ids)
	for _, id := range ids {
		out = append(out, s.jobs[id].view())
	}
	return out
}

// Result returns a terminal job's rendered output (DONE) or its last error
// (FAILED/CANCELLED). Non-terminal jobs report their current state.
func (s *Server) Result(id string) (output string, state State, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return "", "", ErrNotFound
	}
	return j.output, j.state, nil
}

// Cancel cancels one job: a queued job goes terminal immediately, a running
// one has its grid cancelled (completed cells stay checkpointed) and goes
// terminal when the attempt unwinds, a backing-off one skips its sleep.
func (s *Server) Cancel(id string) (JobView, error) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	if !ok {
		s.mu.Unlock()
		return JobView{}, ErrNotFound
	}
	if j.state.Terminal() {
		view := j.view()
		s.mu.Unlock()
		return view, ErrTerminal
	}
	j.cancelReq = true
	if !j.cancelClosed {
		j.cancelClosed = true
		close(j.cancelCh)
	}
	if j.runCancel != nil {
		j.runCancel()
	}
	// A job still in the queue is cancelled synchronously — no worker will
	// ever pick it up.
	wasQueued := false
	for i, q := range s.queue {
		if q == j {
			s.queue = append(s.queue[:i], s.queue[i+1:]...)
			wasQueued = true
			break
		}
	}
	s.mu.Unlock()
	if wasQueued {
		s.finish(j, StateCancelled, 0, "", "cancelled before start")
	}
	return s.View(id)
}

// Subscribe attaches a live event stream to a job: the current state is
// delivered first, then transitions and grid progress as they happen; the
// channel closes after the terminal event. The returned cancel detaches.
// Slow consumers lose events rather than block the pool (buffer 64).
func (s *Server) Subscribe(id string) (<-chan Event, func(), error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return nil, nil, ErrNotFound
	}
	ch := make(chan Event, 64)
	ch <- Event{Type: "state", Job: j.id, State: j.state, Attempt: j.attempts, Error: j.lastErr}
	if j.state.Terminal() {
		close(ch)
		return ch, func() {}, nil
	}
	j.subSeq++
	key := j.subSeq
	j.subs[key] = ch
	cancel := func() {
		s.mu.Lock()
		defer s.mu.Unlock()
		if _, live := j.subs[key]; live {
			delete(j.subs, key)
			close(ch)
		}
	}
	return ch, cancel, nil
}

// publishLocked fans an event out to the job's subscribers; the caller
// holds the server mutex. Sends never block: a full subscriber buffer drops
// the event (progress is advisory; the terminal state also closes the
// channel, which cannot be missed).
func (s *Server) publishLocked(j *job, ev Event) {
	ev.Job = j.id
	for _, ch := range j.subs {
		select {
		case ch <- ev:
		default:
		}
	}
}

func (s *Server) closeSubsLocked(j *job) {
	for k, ch := range j.subs {
		delete(j.subs, k)
		close(ch)
	}
}

// worker is one pool goroutine: pop, supervise, repeat. Drain stops the
// popping — queued jobs stay journalled-but-not-terminal, which is exactly
// the set the next start re-queues. Each worker publishes the job it is on
// through its working slot, the per-worker state /statusz serves.
func (s *Server) worker(w int) {
	defer s.wg.Done()
	for {
		s.mu.Lock()
		var j *job
		for {
			if s.draining {
				s.mu.Unlock()
				return
			}
			if j = s.popLocked(); j != nil {
				break
			}
			s.cond.Wait()
		}
		s.working[w] = j
		s.mu.Unlock()
		s.supervise(j)
		s.mu.Lock()
		s.working[w] = nil
		s.mu.Unlock()
	}
}

// popLocked is the weighted-fair dequeue: among clients that have a queued
// job and are under their inflight cap, pick the one with the least
// attained service (total declared weight already dequeued for it), then
// that client's oldest queued job — least-attained-service scheduling, the
// simple deterministic cousin of deficit round robin. Ties break in
// first-submission client order, and with no quotas configured and a single
// client it degenerates to exactly the old FIFO. Returns nil when no job is
// eligible (empty queue, or every queued client is at its inflight cap —
// finish() broadcasts when a slot frees). Caller holds the server mutex.
func (s *Server) popLocked() *job {
	seen := make(map[string]bool, len(s.clients))
	best := -1
	var bestClient *clientState
	for i, j := range s.queue {
		c := j.spec.Client
		if seen[c] {
			continue
		}
		seen[c] = true
		cs := s.clients[c]
		if s.cfg.ClientMaxInflight > 0 && cs.inflight >= s.cfg.ClientMaxInflight {
			continue
		}
		// The first hit per client is that client's oldest queued job, and
		// scanning the queue front to back makes "first seen" respect
		// submission order for equal served totals.
		if best == -1 || cs.served < bestClient.served {
			best, bestClient = i, cs
		}
	}
	if best == -1 {
		return nil
	}
	j := s.queue[best]
	s.queue = append(s.queue[:best], s.queue[best+1:]...)
	j.dequeued = true
	bestClient.queued--
	bestClient.inflight++
	bestClient.served += int64(j.spec.weight())
	return j
}

// attemptOutcome classifies a failed attempt.
type attemptOutcome int

const (
	outcomeError attemptOutcome = iota
	outcomeDrained
	outcomeCancelled
)

// supervise drives one job through its attempt/backoff loop to a terminal
// state (or parks it when drain interrupts). Backoff delays grow
// exponentially from BackoffBase to BackoffMax with jitter that is a pure
// function of (spec.Seed, attempt), so a job's retry schedule is
// reproducible from its submission.
func (s *Server) supervise(j *job) {
	spec := j.spec
	attempts := 1 + spec.Retries
	lastErr := "unknown error"
	for a := 1; a <= attempts; a++ {
		s.transition(j, StateRunning, a, "")
		out, err := s.runOnce(j, a)
		if err == nil {
			s.finish(j, StateDone, a, out, "")
			return
		}
		switch s.classify(j, err) {
		case outcomeDrained:
			s.park(j, a)
			return
		case outcomeCancelled:
			s.finish(j, StateCancelled, a, "", err.Error())
			return
		}
		lastErr = err.Error()
		if a == attempts {
			break
		}
		s.reg.Counter("jobs/retried").Inc()
		s.transition(j, StateBackoff, a, lastErr)
		t := time.NewTimer(backoffDelay(s.cfg.BackoffBase, s.cfg.BackoffMax, spec.Seed, a))
		select {
		case <-t.C:
		case <-s.drainCh:
			t.Stop()
			s.park(j, a)
			return
		case <-j.cancelCh:
			t.Stop()
			s.finish(j, StateCancelled, a, "", "cancelled during backoff")
			return
		}
	}
	s.finish(j, StateFailed, attempts, "", lastErr)
}

// runOnce executes one attempt under the job's deadline, parented on the
// server run context so a post-grace drain cancels it too.
func (s *Server) runOnce(j *job, attempt int) (string, error) {
	ctx, cancel := context.WithCancel(s.runCtx)
	defer cancel()
	dctx, dcancel := context.WithTimeout(ctx, j.spec.deadline(&s.cfg))
	defer dcancel()
	s.mu.Lock()
	j.runCancel = cancel
	cancelReq := j.cancelReq
	s.mu.Unlock()
	if cancelReq {
		return "", context.Canceled
	}
	rc := RunContext{
		Attempt:    attempt,
		Checkpoint: s.store,
		Metrics:    metrics.NewRegistry(),
		Progress: func(p experiment.Progress) {
			s.progress(j, attempt, p)
		},
	}
	if j.spec.Trace {
		rc.TracePath = s.tracePath(j.id)
	}
	return s.cfg.Runner(dctx, j.spec, rc)
}

// classify maps a failed attempt's error to its outcome: client cancel and
// drain are not failures, everything else (deadline included) consumes the
// retry budget.
func (s *Server) classify(j *job, err error) attemptOutcome {
	s.mu.Lock()
	cancelReq := j.cancelReq
	draining := s.draining
	s.mu.Unlock()
	switch {
	case cancelReq:
		return outcomeCancelled
	case draining || s.runCtx.Err() != nil:
		// Any error during drain parks the job: retrying now would only
		// delay shutdown, and the restart re-runs it with the checkpoint
		// store primed.
		return outcomeDrained
	default:
		_ = err
		return outcomeError
	}
}

// transition publishes a non-terminal state change.
func (s *Server) transition(j *job, st State, attempt int, errStr string) {
	s.mu.Lock()
	j.state = st
	j.attempts = attempt
	j.lastErr = errStr
	s.publishLocked(j, Event{Type: "state", State: st, Attempt: attempt, Error: errStr})
	s.mu.Unlock()
}

// finish journals and publishes a terminal state, releasing the job's
// admission weight and closing its event streams. The ledger append happens
// under the server mutex: GC holds the same mutex while it snapshots the
// job table and rewrites the ledger, so a terminal event either lands
// before the snapshot (and is part of the rewrite) or appends to the
// rewritten journal — never into the file the rewrite is about to replace.
func (s *Server) finish(j *job, st State, attempts int, out, errStr string) {
	kind := map[State]string{
		StateDone: "done", StateFailed: "failed", StateCancelled: "cancelled",
	}[st]
	doneAt := time.Now().UnixMilli()
	s.mu.Lock()
	if err := s.ledger.append(jobEvent{Kind: kind, ID: j.id, Output: out, Error: errStr, Attempts: attempts, DoneMs: doneAt}); err != nil {
		// The in-memory state is still authoritative for this process; the
		// next start will re-run the job, which the checkpoint store makes
		// cheap.
		s.reg.Counter("jobs/journal-errors").Inc()
	}
	j.state = st
	j.attempts = attempts
	j.output = out
	j.lastErr = errStr
	j.doneAt = doneAt
	j.runCancel = nil
	s.weight -= j.spec.weight()
	if cs, ok := s.clients[j.spec.Client]; ok {
		cs.weight -= j.spec.weight()
		if j.dequeued {
			cs.inflight--
		} else {
			// Cancelled straight out of the queue: Cancel already removed it,
			// so only the count is released here.
			cs.queued--
		}
	}
	s.publishLocked(j, Event{Type: "state", State: st, Attempt: attempts, Error: errStr})
	s.closeSubsLocked(j)
	// A freed inflight slot may unblock a client the fair dequeue was
	// skipping; wake every parked worker to re-scan.
	s.cond.Broadcast()
	s.mu.Unlock()
	if st == StateCancelled && j.spec.Trace {
		// DELETE semantics: a cancelled job's recorded trace is unlinked
		// with it (tolerating ENOENT — queued jobs never wrote one). DONE
		// and FAILED traces stay queryable until retention collects them.
		os.Remove(s.tracePath(j.id))
	}
	switch st {
	case StateDone:
		s.reg.Counter("jobs/done").Inc()
	case StateFailed:
		s.reg.Counter("jobs/failed").Inc()
	case StateCancelled:
		s.reg.Counter("jobs/cancelled").Inc()
	}
}

// park returns an interrupted job to QUEUED without a terminal journal
// record: the next start finds the submit record unterminated and re-queues
// it — the crash-safe "checkpoint the job" half of drain.
func (s *Server) park(j *job, attempt int) {
	s.mu.Lock()
	j.state = StateQueued
	j.runCancel = nil
	if cs, ok := s.clients[j.spec.Client]; ok && j.dequeued {
		// The job is no longer running; its weight stays accounted (it is
		// still admitted work) but the inflight slot frees for the restart.
		cs.inflight--
		j.dequeued = false
		cs.queued++
	}
	s.publishLocked(j, Event{Type: "state", State: StateQueued, Attempt: attempt})
	s.mu.Unlock()
	s.reg.Counter("jobs/drained").Inc()
}

// progress records and publishes one grid progress update.
func (s *Server) progress(j *job, attempt int, p experiment.Progress) {
	s.mu.Lock()
	j.prog = &ProgressView{Experiment: p.Experiment, Done: p.Done, Total: p.Total, Failed: p.Failed}
	s.publishLocked(j, Event{
		Type: "progress", Attempt: attempt,
		Experiment: p.Experiment, Done: p.Done, Total: p.Total, Failed: p.Failed,
	})
	s.mu.Unlock()
}

// backoffDelay is the supervisor's retry delay: exponential growth from
// base, capped at max, scaled by a jitter factor in [0.5, 1.5) that is a
// pure function of (seed, attempt) — deterministic per submission, spread
// across submissions.
func backoffDelay(base, max time.Duration, seed uint64, attempt int) time.Duration {
	if base <= 0 {
		return 0
	}
	d := base
	for i := 1; i < attempt && d < max; i++ {
		d *= 2
	}
	if d > max {
		d = max
	}
	f := rng.New(seed).Fork(uint64(attempt)).Float64()
	return time.Duration(float64(d) * (0.5 + f))
}

// Drain performs graceful shutdown: stop accepting and popping, give
// running jobs DrainGrace to finish (their results journal as usual), then
// cancel their grids — completed cells stay checkpointed and the jobs park
// for the next start — and finally fsync both journals. Safe to call more
// than once; later calls just wait for the first to finish.
func (s *Server) Drain() error {
	s.mu.Lock()
	first := !s.draining
	s.draining = true
	if first {
		close(s.drainCh)
	}
	s.cond.Broadcast()
	s.mu.Unlock()

	grace := time.AfterFunc(s.cfg.DrainGrace, s.runCancel)
	s.wg.Wait()
	grace.Stop()
	s.runCancel()

	var firstErr error
	if err := s.store.Sync(); err != nil {
		firstErr = err
	}
	if err := s.ledger.sync(); err != nil && firstErr == nil {
		firstErr = err
	}
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	return firstErr
}

// Close releases the journal handles. Call after Drain.
func (s *Server) Close() error {
	err := s.store.Close()
	if cerr := s.ledger.close(); cerr != nil && err == nil {
		err = cerr
	}
	return err
}
