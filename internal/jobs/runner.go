package jobs

import (
	"context"
	"fmt"
	"os"
	"strings"
	"time"

	"udwn/internal/checkpoint"
	"udwn/internal/experiment"
	"udwn/internal/metrics"
	"udwn/internal/trace"
)

// RunContext carries the per-attempt environment the server hands a Runner:
// the shared checkpoint store (the cross-job result cache), a fresh metrics
// registry for the attempt, and the progress sink feeding the job's event
// stream.
type RunContext struct {
	// Attempt is the 1-based supervisor attempt.
	Attempt int
	// Checkpoint is the daemon-wide content-addressed cell store; nil when
	// the server runs without one (tests).
	Checkpoint *checkpoint.Store
	// Metrics is a registry private to this attempt.
	Metrics *metrics.Registry
	// Progress receives grid progress; may be nil.
	Progress func(experiment.Progress)
	// TracePath, when non-empty, asks the runner to record the attempt's
	// slot events as an indexed binary trace at that path (set by the server
	// for Spec.Trace jobs). The framed format keeps every flushed prefix
	// readable, so the file is queryable while the attempt is still running.
	TracePath string
}

// Runner executes one job attempt and returns the rendered output. An error
// fails the attempt (the supervisor retries within the job's budget); a
// context-cancellation error is classified by the supervisor into deadline,
// drain or client-cancel outcomes. Runners must be safe for concurrent use
// by pool workers.
type Runner func(ctx context.Context, spec Spec, rc RunContext) (string, error)

// ExperimentRunner returns the production Runner: it executes the spec's
// experiments in order on the experiment grid — gridWorkers concurrent
// cells, the given per-cell deadline and retry budget — writing through the
// shared checkpoint store so finished cells are computed once daemon-wide.
// The grid runs with HardCancel: when ctx fires (deadline, drain past
// grace, client cancel) in-flight simulations stop at their next tick,
// completed cells stay checkpointed, and the attempt returns ctx's error.
//
// Output is the same rendered text cmd/experiments prints for the same
// options, and — because every grid cell is a pure function of its
// coordinates — byte-identical across retries, restarts and worker counts.
func ExperimentRunner(gridWorkers int, cellTimeout time.Duration, cellRetries int) Runner {
	return func(ctx context.Context, spec Spec, rc RunContext) (out string, err error) {
		o := experiment.Options{
			Seeds:       spec.Seeds,
			Quick:       spec.Quick,
			Workers:     gridWorkers,
			CellTimeout: cellTimeout,
			Retries:     cellRetries,
			Report:      experiment.NewRunReport(),
			Metrics:     rc.Metrics,
			Checkpoint:  rc.Checkpoint,
			Progress:    rc.Progress,
			Context:     ctx,
			HardCancel:  true,
		}
		if rc.TracePath != "" {
			f, ferr := os.Create(rc.TracePath)
			if ferr != nil {
				return "", fmt.Errorf("jobs: create trace: %w", ferr)
			}
			bw := trace.NewBinary(f)
			o.Observer = trace.LockedObserver(bw)
			// Declared before the recover below, so this runs after it: the
			// trace flushes even when the grid is cancelled mid-attempt,
			// leaving a valid (torn-tail-recoverable) prefix on disk.
			defer func() {
				if fe := bw.Flush(); fe != nil && err == nil {
					err = fmt.Errorf("jobs: flush trace: %w", fe)
				}
				if ce := f.Close(); ce != nil && err == nil {
					err = fmt.Errorf("jobs: close trace: %w", ce)
				}
			}()
		}
		defer func() {
			switch p := recover().(type) {
			case nil:
			case experiment.Cancelled:
				// The grid drained its in-flight cells and stopped; report
				// the cause (deadline vs cancellation) with the progress at
				// the moment of interruption.
				err = fmt.Errorf("%s: %w", p, context.Cause(ctx))
			default:
				err = fmt.Errorf("jobs: runner panic: %v", p)
			}
		}()
		var b strings.Builder
		for _, id := range spec.Experiments {
			e, ok := experiment.Lookup(id)
			if !ok {
				return "", &InvalidError{Reason: fmt.Sprintf("unknown experiment %q", id)}
			}
			fmt.Fprintf(&b, "=== %s: %s ===\n%s\n", e.ID, e.Title, e.Run(o))
		}
		return b.String(), nil
	}
}
