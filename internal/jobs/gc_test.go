package jobs

import (
	"encoding/json"
	"errors"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"udwn/internal/checkpoint"
)

// runN submits n jobs through the stub runner and waits for all of them.
func runN(t *testing.T, s *Server, n int) []string {
	t.Helper()
	ids := make([]string, n)
	for i := range ids {
		v, err := s.Submit(spec1())
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = v.ID
	}
	for _, id := range ids {
		if v := waitTerminal(t, s, id); v.State != StateDone {
			t.Fatalf("job %s finished %s", id, v.State)
		}
	}
	return ids
}

// TestGCRetainCountCollectsOldest: RetainCount keeps the newest terminal
// jobs, the collected ids disappear from the API, the ledger shrinks, the
// id allocator survives, and the whole arrangement is durable across a
// restart.
func TestGCRetainCountCollectsOldest(t *testing.T) {
	cfg := testConfig(t, okRunner("out\n"))
	cfg.RetainCount = 2
	dir := cfg.Dir
	s := mustOpen(t, cfg)
	ids := runN(t, s, 5)

	st, err := s.GC()
	if err != nil {
		t.Fatal(err)
	}
	if st.JobsCollected != 3 || st.JobsKept != 2 {
		t.Fatalf("gc collected %d kept %d, want 3/2", st.JobsCollected, st.JobsKept)
	}
	if st.LedgerBytesAfter >= st.LedgerBytesBefore {
		t.Fatalf("ledger did not shrink: %d -> %d", st.LedgerBytesBefore, st.LedgerBytesAfter)
	}
	for _, id := range ids[:3] {
		if _, err := s.View(id); !errors.Is(err, ErrNotFound) {
			t.Fatalf("collected job %s still visible (err %v)", id, err)
		}
	}
	for _, id := range ids[3:] {
		if out, state, err := s.Result(id); err != nil || state != StateDone || out != "out\n" {
			t.Fatalf("retained job %s unservable: %q %s %v", id, out, state, err)
		}
	}
	if got := s.Metrics().CounterValue("jobs/gc/collected"); got != 3 {
		t.Fatalf("jobs/gc/collected = %d, want 3", got)
	}

	// The allocator must not recycle collected ids.
	v, err := s.Submit(spec1())
	if err != nil {
		t.Fatal(err)
	}
	if v.ID != "j-000006" {
		t.Fatalf("post-GC id %s, want j-000006 (seq pinned by the rewrite)", v.ID)
	}
	waitTerminal(t, s, v.ID)
	if err := s.Drain(); err != nil {
		t.Fatal(err)
	}
	s.Close()

	// Restart: the rewritten ledger must replay to the same retained view.
	cfg2 := testConfig(t, okRunner("out\n"))
	cfg2.Dir = dir
	s2 := mustOpen(t, cfg2)
	defer func() { s2.Drain(); s2.Close() }()
	views := s2.List()
	if len(views) != 3 {
		t.Fatalf("restart sees %d jobs, want 3 (2 retained + 1 new)", len(views))
	}
	for _, v := range views {
		if v.State != StateDone {
			t.Fatalf("job %s replayed as %s, want DONE", v.ID, v.State)
		}
	}
	if v, err := s2.Submit(spec1()); err != nil || v.ID != "j-000007" {
		t.Fatalf("restarted allocator issued %s (err %v), want j-000007", v.ID, err)
	}
}

// TestGCRetainAge: only terminal jobs older than RetainAge are collected.
func TestGCRetainAge(t *testing.T) {
	cfg := testConfig(t, okRunner(""))
	cfg.RetainAge = time.Hour
	s := mustOpen(t, cfg)
	defer func() { s.Drain(); s.Close() }()
	ids := runN(t, s, 3)

	// Backdate the first two past the retention horizon.
	s.mu.Lock()
	s.jobs[ids[0]].doneAt -= 2 * time.Hour.Milliseconds()
	s.jobs[ids[1]].doneAt -= 2 * time.Hour.Milliseconds()
	s.mu.Unlock()

	st, err := s.GC()
	if err != nil {
		t.Fatal(err)
	}
	if st.JobsCollected != 2 {
		t.Fatalf("gc collected %d, want 2 (the backdated ones)", st.JobsCollected)
	}
	if _, err := s.View(ids[2]); err != nil {
		t.Fatalf("young job collected: %v", err)
	}
}

// TestGCRetainBytes: the oldest terminal jobs go until the state directory
// fits the byte budget.
func TestGCRetainBytes(t *testing.T) {
	big := strings.Repeat("x", 4096)
	cfg := testConfig(t, okRunner(big))
	cfg.RetainBytes = 10 * 1024
	s := mustOpen(t, cfg)
	defer func() { s.Drain(); s.Close() }()
	ids := runN(t, s, 8) // ~32 KiB of output in the ledger

	st, err := s.GC()
	if err != nil {
		t.Fatal(err)
	}
	if st.JobsCollected == 0 {
		t.Fatal("nothing collected despite the budget being blown")
	}
	total := st.LedgerBytesAfter + st.CellBytesAfter
	if total > cfg.RetainBytes {
		t.Fatalf("state still %d bytes after GC, budget %d", total, cfg.RetainBytes)
	}
	// The newest job must survive byte-budget pressure last.
	if _, err := s.View(ids[len(ids)-1]); err != nil && st.JobsKept > 0 {
		t.Fatalf("newest job collected before older ones: %v", err)
	}
}

// TestGCNeverCollectsNonTerminal: live jobs are untouchable regardless of
// policy pressure.
func TestGCNeverCollectsNonTerminal(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	cfg := testConfig(t, gateRunner(nil, release))
	cfg.Workers = 1
	cfg.RetainCount = 1
	cfg.RetainAge = time.Nanosecond // maximal pressure
	s := mustOpen(t, cfg)
	defer func() { s.Drain(); s.Close() }()

	running, err := s.Submit(spec1())
	if err != nil {
		t.Fatal(err)
	}
	queued, err := s.Submit(spec1())
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond) // let the worker pick up `running`
	if _, err := s.GC(); err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{running.ID, queued.ID} {
		if _, err := s.View(id); err != nil {
			t.Fatalf("non-terminal job %s collected: %v", id, err)
		}
	}
}

// TestGCStoreKeepSet: under retention, checkpoint records referenced by a
// non-terminal job survive compaction (zero recompute on resume) while
// unreferenced ones are dropped; without retention, GC keeps every record.
func TestGCStoreKeepSet(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	cfg := testConfig(t, gateRunner(nil, release))
	cfg.Workers = 1
	cfg.RetainCount = 1
	s := mustOpen(t, cfg)
	defer func() { s.Drain(); s.Close() }()

	// One non-terminal job referencing table1 (running, gated).
	if _, err := s.Submit(spec1()); err != nil {
		t.Fatal(err)
	}
	live := checkpoint.Record{Experiment: "table1", Label: "row=0 seed=0", Schema: "v1", Value: []byte{1}}
	stale := checkpoint.Record{Experiment: "figure9", Label: "row=0 seed=0", Schema: "v1", Value: []byte{2}}
	if err := s.Store().Put(live); err != nil {
		t.Fatal(err)
	}
	if err := s.Store().Put(stale); err != nil {
		t.Fatal(err)
	}

	st, err := s.GC()
	if err != nil {
		t.Fatal(err)
	}
	if st.CellsDropped != 1 || st.CellsKept != 1 {
		t.Fatalf("cells dropped=%d kept=%d, want 1/1", st.CellsDropped, st.CellsKept)
	}
	if _, ok := s.Store().Lookup(live.Key()); !ok {
		t.Fatal("record referenced by a live job was dropped — resume would recompute")
	}
	if _, ok := s.Store().Lookup(stale.Key()); ok {
		t.Fatal("unreferenced record survived retention GC")
	}
}

func TestGCWithoutRetentionKeepsAllCells(t *testing.T) {
	s := mustOpen(t, testConfig(t, okRunner("")))
	defer func() { s.Drain(); s.Close() }()
	rec := checkpoint.Record{Experiment: "figure9", Label: "row=0 seed=0", Schema: "v1", Value: []byte{2}}
	if err := s.Store().Put(rec); err != nil {
		t.Fatal(err)
	}
	st, err := s.GC()
	if err != nil {
		t.Fatal(err)
	}
	if st.CellsDropped != 0 || st.JobsCollected != 0 {
		t.Fatalf("no-retention GC dropped cells=%d jobs=%d, want 0/0", st.CellsDropped, st.JobsCollected)
	}
	if _, ok := s.Store().Lookup(rec.Key()); !ok {
		t.Fatal("record lost by a compaction-only GC")
	}
}

// TestGCRemovesCollectedTraces: a collected job's trace file goes with it.
func TestGCRemovesCollectedTraces(t *testing.T) {
	cfg := testConfig(t, okRunner(""))
	cfg.RetainCount = 1
	s := mustOpen(t, cfg)
	defer func() { s.Drain(); s.Close() }()
	ids := runN(t, s, 3)
	// The stub runner writes no traces; plant files where the real one would.
	for _, id := range ids {
		if err := os.WriteFile(s.tracePath(id), []byte("trace"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	st, err := s.GC()
	if err != nil {
		t.Fatal(err)
	}
	if st.TracesRemoved != 2 || st.TraceBytesRemoved == 0 {
		t.Fatalf("gc removed %d traces (%d bytes), want 2", st.TracesRemoved, st.TraceBytesRemoved)
	}
	if _, err := os.Stat(s.tracePath(ids[0])); !os.IsNotExist(err) {
		t.Fatal("collected job's trace survived")
	}
	if _, err := os.Stat(s.tracePath(ids[2])); err != nil {
		t.Fatal("retained job's trace removed")
	}
}

// TestCancelRemovesTrace is the DELETE /jobs/{id} satellite regression: a
// cancelled job's on-disk trace is unlinked with it, and cancelling a job
// that never wrote one succeeds (ENOENT tolerated).
func TestCancelRemovesTrace(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	cfg := testConfig(t, gateRunner(nil, release))
	cfg.Workers = 1
	s, ts := newTestAPI(t, cfg)

	sp := spec1()
	sp.Trace = true
	running, err := s.Submit(sp)
	if err != nil {
		t.Fatal(err)
	}
	queuedTraced, err := s.Submit(sp) // never starts; no trace file
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond)
	// Plant the trace the gated stub attempt would have written.
	if err := os.WriteFile(s.tracePath(running.ID), []byte("trace"), 0o644); err != nil {
		t.Fatal(err)
	}

	req, _ := http.NewRequest("DELETE", ts.URL+"/jobs/"+running.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE status %d", resp.StatusCode)
	}
	if v := waitTerminal(t, s, running.ID); v.State != StateCancelled {
		t.Fatalf("state %s, want CANCELLED", v.State)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, err := os.Stat(s.tracePath(running.ID)); os.IsNotExist(err) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("cancelled job's trace file still on disk")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if _, err := s.Cancel(queuedTraced.ID); err != nil {
		t.Fatalf("cancelling an untraced-yet job: %v", err)
	}
	if v := waitTerminal(t, s, queuedTraced.ID); v.State != StateCancelled {
		t.Fatalf("untraced-yet job ended %s, want CANCELLED", v.State)
	}
}

// TestRetryAfterClampSubSecond is the Retry-After satellite regression: a
// sub-second RetryAfter config must emit "1", never "0" (which tells
// clients to hammer an overloaded daemon).
func TestRetryAfterClampSubSecond(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	cfg := testConfig(t, gateRunner(nil, release))
	cfg.Workers = 1
	cfg.QueueDepth = 1
	cfg.RetryAfter = 100 * time.Millisecond
	_, ts := newTestAPI(t, cfg)

	var shed *http.Response
	for i := 0; i < 4; i++ {
		resp := postJSON(t, ts.URL+"/jobs", `{"experiments":["table1"],"quick":true}`)
		if resp.StatusCode == http.StatusTooManyRequests {
			shed = resp
			break
		}
		resp.Body.Close()
	}
	if shed == nil {
		t.Fatal("queue never filled")
	}
	defer shed.Body.Close()
	if ra := shed.Header.Get("Retry-After"); ra != "1" {
		t.Fatalf("Retry-After = %q for a 100ms config, want %q", ra, "1")
	}
}

// TestTraceSubmitUnwritableDir is the trace-admission satellite regression:
// "trace": true with a broken traces dir fails the submit with a typed 503,
// not a mid-run attempt error. The dir is replaced by a regular file
// (ENOTDIR) rather than chmod'd, so the test holds even when run as root.
func TestTraceSubmitUnwritableDir(t *testing.T) {
	cfg := testConfig(t, okRunner(""))
	s, ts := newTestAPI(t, cfg)

	traces := filepath.Join(cfg.Dir, "traces")
	if err := os.RemoveAll(traces); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(traces, []byte("not a dir"), 0o644); err != nil {
		t.Fatal(err)
	}

	_, err := s.Submit(Spec{Experiments: []string{"table1"}, Quick: true, Trace: true})
	if !errors.Is(err, ErrTraceUnavailable) {
		t.Fatalf("submit returned %v, want ErrTraceUnavailable", err)
	}
	resp := postJSON(t, ts.URL+"/jobs", `{"experiments":["table1"],"quick":true,"trace":true}`)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("HTTP status %d, want 503", resp.StatusCode)
	}
	// Untraced submissions are unaffected.
	if _, err := s.Submit(spec1()); err != nil {
		t.Fatalf("untraced submit refused: %v", err)
	}
}

// TestGCEndpointAndStatusz: POST /gc runs a sweep and /statusz reflects it.
func TestGCEndpointAndStatusz(t *testing.T) {
	cfg := testConfig(t, okRunner(""))
	cfg.RetainCount = 1
	s, ts := newTestAPI(t, cfg)
	runN(t, s, 3)

	resp, err := http.Post(ts.URL+"/gc", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /gc status %d", resp.StatusCode)
	}
	var st GCStats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.JobsCollected != 2 {
		t.Fatalf("POST /gc collected %d, want 2", st.JobsCollected)
	}

	var sv StatusView
	r, err := http.Get(ts.URL + "/statusz")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	if err := json.NewDecoder(r.Body).Decode(&sv); err != nil {
		t.Fatal(err)
	}
	if sv.GC.Last == nil || sv.GC.Last.JobsCollected != 2 {
		t.Fatalf("statusz gc panel = %+v, want last sweep with 2 collected", sv.GC)
	}
	if sv.GC.RetainCount != 1 {
		t.Fatalf("statusz gc retain_count = %d, want 1", sv.GC.RetainCount)
	}
	if sv.Counters["jobs/gc/runs"] != 1 {
		t.Fatalf("jobs/gc/runs = %d, want 1", sv.Counters["jobs/gc/runs"])
	}
}

// TestGCSweeperRuns: the background sweeper enforces retention without any
// explicit GC call.
func TestGCSweeperRuns(t *testing.T) {
	cfg := testConfig(t, okRunner(""))
	cfg.RetainCount = 1
	cfg.GCInterval = 20 * time.Millisecond
	s := mustOpen(t, cfg)
	defer func() { s.Drain(); s.Close() }()
	runN(t, s, 3)

	deadline := time.Now().Add(10 * time.Second)
	for {
		if s.Metrics().CounterValue("jobs/gc/collected") >= 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("sweeper never collected the jobs past retention")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if len(s.List()) != 1 {
		t.Fatalf("%d jobs after sweep, want 1", len(s.List()))
	}
}

// TestGCCancelledJobQuotaAccounting guards the finish-path bookkeeping the
// quota machinery depends on: cancel-from-queue releases the queued count,
// run-to-completion releases the inflight count, and a GC in between leaves
// the accounts alone.
func TestGCCancelledJobQuotaAccounting(t *testing.T) {
	cfg := testConfig(t, okRunner(""))
	cfg.ClientQueueDepth = 1
	cfg.Workers = 1
	s := mustOpen(t, cfg)
	defer func() { s.Drain(); s.Close() }()

	v, err := s.Submit(clientSpec("c", 0))
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, s, v.ID)
	if _, err := s.GC(); err != nil {
		t.Fatal(err)
	}
	// The budget must be fully released: another submission fits.
	v2, err := s.Submit(clientSpec("c", 0))
	if err != nil {
		t.Fatalf("quota leak after terminal+GC: %v", err)
	}
	waitTerminal(t, s, v2.ID)
}
