package pathloss

import (
	"math"
	"testing"
	"testing/quick"

	"udwn/internal/geom"
	"udwn/internal/metric"
	"udwn/internal/rng"
)

func twoNodeSpace(d float64) metric.Space {
	m := metric.NewMatrix(2, d)
	return m
}

func TestPowerInverseLaw(t *testing.T) {
	f := NewField(twoNodeSpace(2), 1, 3, Options{})
	want := 1.0 / 8
	if got := f.Power(0, 1); math.Abs(got-want) > 1e-12 {
		t.Fatalf("Power = %v, want %v", got, want)
	}
}

func TestPowerSelfZero(t *testing.T) {
	f := NewField(twoNodeSpace(2), 1, 3, Options{})
	if f.Power(0, 0) != 0 {
		t.Fatal("self power must be 0")
	}
}

func TestPowerNearFieldClamp(t *testing.T) {
	f := NewField(twoNodeSpace(1e-9), 1, 2, Options{DMin: 0.5})
	want := 1.0 / 0.25
	if got := f.Power(0, 1); math.Abs(got-want) > 1e-12 {
		t.Fatalf("clamped Power = %v, want %v", got, want)
	}
}

func TestPowerUnreachable(t *testing.T) {
	g := metric.NewGraph([][]int{{}, {}})
	f := NewField(g, 1, 2, Options{})
	if f.Power(0, 1) != 0 {
		t.Fatal("unreachable pair must have zero power")
	}
}

func TestCacheMatchesCompute(t *testing.T) {
	r := rng.New(1)
	pts := make([]geom.Point, 50)
	for i := range pts {
		pts[i] = geom.Point{X: r.Range(0, 10), Y: r.Range(0, 10)}
	}
	e := metric.NewEuclidean(pts)
	cached := NewField(e, 2, 3, Options{})
	uncached := NewField(e, 2, 3, Options{MaxCacheNodes: 1}) // force no cache
	for u := 0; u < 50; u++ {
		for v := 0; v < 50; v++ {
			if math.Abs(cached.Power(u, v)-uncached.Power(u, v)) > 1e-12 {
				t.Fatalf("cache mismatch at (%d,%d)", u, v)
			}
		}
	}
}

func TestDynamicFieldTracksSpace(t *testing.T) {
	e := metric.NewEuclidean([]geom.Point{{X: 0, Y: 0}, {X: 1, Y: 0}})
	f := NewField(e, 1, 2, Options{Dynamic: true})
	before := f.Power(0, 1)
	e.SetPoint(1, geom.Point{X: 2, Y: 0})
	after := f.Power(0, 1)
	if math.Abs(before-1) > 1e-12 || math.Abs(after-0.25) > 1e-12 {
		t.Fatalf("dynamic field stale: before=%v after=%v", before, after)
	}
}

func TestInvalidate(t *testing.T) {
	e := metric.NewEuclidean([]geom.Point{{X: 0, Y: 0}, {X: 1, Y: 0}})
	f := NewField(e, 1, 2, Options{})
	if math.Abs(f.Power(0, 1)-1) > 1e-12 {
		t.Fatal("initial power wrong")
	}
	e.SetPoint(1, geom.Point{X: 2, Y: 0})
	f.Invalidate()
	if math.Abs(f.Power(0, 1)-0.25) > 1e-12 {
		t.Fatal("Invalidate did not rebuild cache")
	}
}

func TestPowerAtDistAndInverse(t *testing.T) {
	f := NewField(twoNodeSpace(1), 4, 2.5, Options{})
	for _, d := range []float64{0.5, 1, 3, 10} {
		pw := f.PowerAtDist(d)
		back := f.DistForPower(pw)
		if math.Abs(back-math.Max(d, 1e-3)) > 1e-9 {
			t.Fatalf("DistForPower(PowerAtDist(%v)) = %v", d, back)
		}
	}
}

func TestSINRRange(t *testing.T) {
	// R = (P/(βN))^{1/ζ}: with P=8, β=1, N=1, ζ=3 → R=2.
	if r := SINRRange(8, 1, 1, 3); math.Abs(r-2) > 1e-12 {
		t.Fatalf("SINRRange = %v, want 2", r)
	}
	// Power received at R must equal βN.
	f := NewField(twoNodeSpace(2), 8, 3, Options{})
	if got := f.PowerAtDist(2); math.Abs(got-1) > 1e-12 {
		t.Fatalf("power at R = %v, want βN = 1", got)
	}
}

func TestNonIntegerZeta(t *testing.T) {
	f := NewField(twoNodeSpace(2), 1, 2.7, Options{})
	want := 1 / math.Pow(2, 2.7)
	if got := f.Power(0, 1); math.Abs(got-want) > 1e-12 {
		t.Fatalf("Power = %v, want %v", got, want)
	}
}

func TestPanicsOnBadArgs(t *testing.T) {
	for name, fn := range map[string]func(){
		"p=0":    func() { NewField(twoNodeSpace(1), 0, 2, Options{}) },
		"zeta=0": func() { NewField(twoNodeSpace(1), 1, 0, Options{}) },
	} {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		})
	}
}

func TestShadowedDeterministicSymmetric(t *testing.T) {
	e := metric.NewEuclidean([]geom.Point{{X: 0, Y: 0}, {X: 3, Y: 0}, {X: 0, Y: 5}})
	s := NewShadowed(e, 0.3, 42)
	if s.Dist(0, 1) != s.Dist(0, 1) {
		t.Fatal("shadowing must be deterministic")
	}
	if s.Dist(0, 1) != s.Dist(1, 0) {
		t.Fatal("shadowing must be symmetric per pair")
	}
	if s.Dist(1, 1) != 0 {
		t.Fatal("self distance must be 0")
	}
	s2 := NewShadowed(e, 0.3, 43)
	same := s.Dist(0, 1) == s2.Dist(0, 1) && s.Dist(0, 2) == s2.Dist(0, 2)
	if same {
		t.Fatal("different seeds should perturb differently")
	}
}

func TestShadowedBounded(t *testing.T) {
	e := metric.NewEuclidean([]geom.Point{{X: 0, Y: 0}, {X: 1, Y: 0}})
	sigma := 0.4
	s := NewShadowed(e, sigma, 7)
	d := s.Dist(0, 1)
	lo, hi := math.Exp(-2*sigma), math.Exp(2*sigma)
	if d < lo || d > hi {
		t.Fatalf("shadowed distance %v outside clamp [%v,%v]", d, lo, hi)
	}
}

func TestShadowedUnreachablePreserved(t *testing.T) {
	g := metric.NewGraph([][]int{{}, {}})
	s := NewShadowed(g, 0.5, 1)
	if s.Dist(0, 1) < metric.Unreachable {
		t.Fatal("shadowing must not bring unreachable pairs into range")
	}
}

// Property: Power is monotone decreasing in distance.
func TestPowerMonotoneProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		d1 := r.Range(0.01, 50)
		d2 := d1 + r.Range(0.01, 50)
		zeta := r.Range(1.5, 5)
		fl := NewField(twoNodeSpace(1), 1, zeta, Options{})
		return fl.PowerAtDist(d1) >= fl.PowerAtDist(d2)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkPowerCached(b *testing.B) {
	r := rng.New(1)
	pts := make([]geom.Point, 1024)
	for i := range pts {
		pts[i] = geom.Point{X: r.Range(0, 100), Y: r.Range(0, 100)}
	}
	f := NewField(metric.NewEuclidean(pts), 1, 3, Options{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = f.Power(i%1024, (i+7)%1024)
	}
}

func BenchmarkPowerUncached(b *testing.B) {
	r := rng.New(1)
	pts := make([]geom.Point, 1024)
	for i := range pts {
		pts[i] = geom.Point{X: r.Range(0, 100), Y: r.Range(0, 100)}
	}
	f := NewField(metric.NewEuclidean(pts), 1, 3, Options{MaxCacheNodes: 1})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = f.Power(i%1024, (i+7)%1024)
	}
}

func TestFieldAccessors(t *testing.T) {
	e := metric.NewEuclidean([]geom.Point{{X: 0, Y: 0}, {X: 1, Y: 0}})
	f := NewField(e, 2, 3, Options{})
	if f.P() != 2 || f.Zeta() != 3 || f.Len() != 2 {
		t.Fatal("accessors wrong")
	}
	if f.Space() != e {
		t.Fatal("Space accessor wrong")
	}
}

func TestPowerAtDistClamp(t *testing.T) {
	f := NewField(twoNodeSpace(1), 1, 2, Options{DMin: 0.5})
	if got, want := f.PowerAtDist(0.001), 1/0.25; math.Abs(got-want) > 1e-12 {
		t.Fatalf("clamped PowerAtDist = %v, want %v", got, want)
	}
}

func TestShadowedLen(t *testing.T) {
	e := metric.NewEuclidean([]geom.Point{{X: 0, Y: 0}, {X: 1, Y: 0}})
	if NewShadowed(e, 0.1, 1).Len() != 2 {
		t.Fatal("Shadowed.Len wrong")
	}
}
