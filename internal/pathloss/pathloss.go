// Package pathloss turns a quasi-metric space into a received-power field.
//
// The paper defines the signal strength of transmitter u at node v as
// I_uv = P / f(u,v), where f is the path loss, and the quasi-distance as
// d(u,v) = f(u,v)^{1/ζ}. Equivalently, received power is P / d(u,v)^ζ.
// All carrier-sensing primitives (App. B) are defined over this field, for
// graph-based models as well as SINR, because the nodes are embedded in the
// quasi-metric in every model the framework captures.
package pathloss

import (
	"math"

	"udwn/internal/metric"
	"udwn/internal/rng"
)

// Field computes received power between nodes of a quasi-metric space.
type Field struct {
	space metric.Space
	p     float64
	zeta  float64
	dMin  float64

	// cache holds the dense n×n power matrix when the space is small enough
	// to afford it; nil otherwise. Entry u*n+v is Power(u, v).
	cache []float64
	n     int

	intZeta int  // ζ as an integer exponent, 0 if ζ is not integral
	dynamic bool // true when distances may change (mobility); disables cache
}

// Options configures a Field.
type Options struct {
	// DMin clamps distances from below to avoid infinite near-field power.
	// Zero selects a default of 1e-3.
	DMin float64
	// Dynamic marks the space as mutable (mobility); the power cache is
	// disabled so queries always reflect current distances.
	Dynamic bool
	// MaxCacheNodes bounds the size of the precomputed power matrix; spaces
	// with more nodes fall back to on-the-fly computation. Zero selects a
	// default of 2048.
	MaxCacheNodes int
}

// NewField returns a power field with transmit power p over space, using
// exponent zeta. It panics if p <= 0 or zeta <= 0 (programming errors).
func NewField(space metric.Space, p, zeta float64, opts Options) *Field {
	if p <= 0 {
		panic("pathloss: power must be positive")
	}
	if zeta <= 0 {
		panic("pathloss: zeta must be positive")
	}
	if opts.DMin == 0 {
		opts.DMin = 1e-3
	}
	if opts.MaxCacheNodes == 0 {
		opts.MaxCacheNodes = 2048
	}
	f := &Field{
		space:   space,
		p:       p,
		zeta:    zeta,
		dMin:    opts.DMin,
		n:       space.Len(),
		dynamic: opts.Dynamic,
	}
	if iz := int(zeta); float64(iz) == zeta && iz >= 1 && iz <= 8 {
		f.intZeta = iz
	}
	if !opts.Dynamic && f.n <= opts.MaxCacheNodes {
		f.buildCache()
	}
	return f
}

func (f *Field) buildCache() {
	f.cache = make([]float64, f.n*f.n)
	for u := 0; u < f.n; u++ {
		row := f.cache[u*f.n : (u+1)*f.n]
		for v := 0; v < f.n; v++ {
			if u == v {
				continue
			}
			row[v] = f.compute(u, v)
		}
	}
}

func (f *Field) compute(u, v int) float64 {
	d := f.space.Dist(u, v)
	if d >= metric.Unreachable {
		return 0
	}
	if d < f.dMin {
		d = f.dMin
	}
	return f.p / powN(d, f.zeta, f.intZeta)
}

// powN raises d to the zeta power, using repeated multiplication for small
// integral exponents (the hot path) and math.Pow otherwise.
func powN(d, zeta float64, intZeta int) float64 {
	if intZeta > 0 {
		r := d
		for i := 1; i < intZeta; i++ {
			r *= d
		}
		return r
	}
	return math.Pow(d, zeta)
}

// P returns the uniform transmit power.
func (f *Field) P() float64 { return f.p }

// Zeta returns the path-loss exponent.
func (f *Field) Zeta() float64 { return f.zeta }

// Space returns the underlying quasi-metric space.
func (f *Field) Space() metric.Space { return f.space }

// Len returns the number of nodes.
func (f *Field) Len() int { return f.n }

// Power returns the received power of u's transmission at v; it is 0 for
// u == v and for unreachable pairs.
func (f *Field) Power(u, v int) float64 {
	if u == v {
		return 0
	}
	if f.cache != nil {
		return f.cache[u*f.n+v]
	}
	return f.compute(u, v)
}

// Row returns transmitter u's cached power row — Row(u)[v] == Power(u, v)
// for every v, including the zero diagonal — or nil when the field computes
// powers on the fly (dynamic spaces and deployments beyond the cache bound).
// The slice aliases the internal cache and must not be modified.
func (f *Field) Row(u int) []float64 {
	if f.cache == nil {
		return nil
	}
	return f.cache[u*f.n : (u+1)*f.n]
}

// PowerAtDist returns the power received at quasi-distance d.
func (f *Field) PowerAtDist(d float64) float64 {
	if d < f.dMin {
		d = f.dMin
	}
	return f.p / powN(d, f.zeta, f.intZeta)
}

// DistForPower returns the quasi-distance at which received power equals pw.
func (f *Field) DistForPower(pw float64) float64 {
	return math.Pow(f.p/pw, 1/f.zeta)
}

// Invalidate discards the power cache after the space mutated. Dynamic
// fields have no cache, so this is only needed when a cached static field's
// space is edited (e.g. in tests).
func (f *Field) Invalidate() {
	if f.cache != nil {
		f.buildCache()
	}
}

// SINRRange returns the maximum clear-channel communication distance in the
// SINR model: R = (P/(βN))^{1/ζ}.
func SINRRange(p, beta, noise, zeta float64) float64 {
	return math.Pow(p/(beta*noise), 1/zeta)
}

// Shadowed wraps a space with deterministic per-pair log-normal shadowing:
// each unordered pair's distance is scaled by exp(σ·Z_uv) with Z_uv a
// standard normal derived from the pair and seed, clamped to ±2σ so the
// perturbed space retains bounded metricity. It models the paper's point
// that real signal decay deviates from clean geometric decay.
type Shadowed struct {
	base  metric.Space
	sigma float64
	seed  uint64
}

var _ metric.Space = (*Shadowed)(nil)

// NewShadowed returns a shadowed view of base with log-scale σ = sigma.
func NewShadowed(base metric.Space, sigma float64, seed uint64) *Shadowed {
	return &Shadowed{base: base, sigma: sigma, seed: seed}
}

// Len returns the number of nodes.
func (s *Shadowed) Len() int { return s.base.Len() }

// Dist returns the shadowed distance. Shadowing is symmetric per pair.
func (s *Shadowed) Dist(u, v int) float64 {
	if u == v {
		return 0
	}
	d := s.base.Dist(u, v)
	if d >= metric.Unreachable {
		return d
	}
	a, b := u, v
	if a > b {
		a, b = b, a
	}
	// One splitmix draw per pair keeps this deterministic and cheap.
	z := rng.New(s.seed ^ uint64(a)<<32 ^ uint64(b)).Norm()
	if z > 2 {
		z = 2
	} else if z < -2 {
		z = -2
	}
	return d * math.Exp(s.sigma*z)
}
