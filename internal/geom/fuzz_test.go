package geom

import (
	"sort"
	"testing"
)

// bruteForceWithin is the O(n) oracle the grid index must agree with: the
// ids of all present points within distance r of q, in id order.
func bruteForceWithin(pts []Point, present []bool, q Point, r float64) []int {
	var out []int
	for i, p := range pts {
		if present[i] && p.Dist2(q) <= r*r {
			out = append(out, i)
		}
	}
	return out
}

// checkAgainstBrute compares Within and CountWithin to the brute scan for
// every indexed point as the query plus one off-grid probe.
func checkAgainstBrute(t *testing.T, g *Grid, pts []Point, present []bool, r float64) {
	t.Helper()
	queries := append([]Point(nil), pts...)
	queries = append(queries, Point{-1, -1})
	for _, q := range queries {
		got := g.Within(q, r, nil)
		sort.Ints(got)
		want := bruteForceWithin(pts, present, q, r)
		if len(got) != len(want) {
			t.Fatalf("Within(%v, %g): %d ids, brute scan %d (%v vs %v)",
				q, r, len(got), len(want), got, want)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("Within(%v, %g) = %v, brute scan %v", q, r, got, want)
			}
		}
		if n := g.CountWithin(q, r); n != len(want) {
			t.Fatalf("CountWithin(%v, %g) = %d, want %d", q, r, n, len(want))
		}
	}
}

// FuzzGridWithin decodes a point set, cell size, radius and a mutation
// script (removals, re-insertions, moves) from the fuzzed bytes and checks
// that the grid index agrees with the brute-force scan before and after the
// mutations. Coordinates are built from bytes, so they are always finite.
func FuzzGridWithin(f *testing.F) {
	f.Add([]byte{128, 64, 0, 10, 10, 20, 20, 30, 30, 200, 200})
	f.Add([]byte{1, 255, 3, 0, 0, 0, 0, 255, 255, 128, 128, 7, 9})
	f.Add([]byte{255, 1, 250, 5, 5})
	f.Add([]byte{64, 128, 77, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14})

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 5 {
			return
		}
		const span = 32.0
		cell := 0.25 + float64(data[0])*8/255  // (0.25, 8.25]
		r := float64(data[1]) * span / 2 / 255 // [0, 16]
		script := data[2]
		var pts []Point
		for i := 3; i+1 < len(data) && len(pts) < 96; i += 2 {
			pts = append(pts, Point{
				X: float64(data[i]) * span / 255,
				Y: float64(data[i+1]) * span / 255,
			})
		}
		if len(pts) == 0 {
			return
		}
		present := make([]bool, len(pts))
		for i := range present {
			present[i] = true
		}

		g := NewGrid(pts, cell)
		checkAgainstBrute(t, g, pts, present, r)

		// Deterministic mutation script driven by the fuzzed bytes: walk the
		// points, removing, moving or re-inserting by turns.
		x := uint32(script) + 1
		next := func(n int) int { // xorshift — cheap, no math/rand in fuzz body
			x ^= x << 13
			x ^= x >> 17
			x ^= x << 5
			return int(x) % n
		}
		for step := 0; step < len(pts); step++ {
			i := next(len(pts))
			switch step % 3 {
			case 0:
				g.Remove(i)
				present[i] = false
			case 1:
				p := Point{pts[next(len(pts))].Y, pts[next(len(pts))].X}
				g.Insert(i, p)
				pts[i] = p
				present[i] = true
			case 2:
				p := pts[i].Add(Point{float64(next(7)) - 3, float64(next(7)) - 3})
				g.Move(i, p)
				pts[i] = p
			}
		}
		checkAgainstBrute(t, g, pts, present, r)
	})
}
