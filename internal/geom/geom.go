// Package geom provides planar geometry primitives and a uniform grid
// spatial index used to accelerate neighbourhood queries in the simulator.
//
// Nodes in most workloads live in the Euclidean plane (the canonical
// (r, λ=2)-bounded-independence metric of the paper); the grid index makes
// "all nodes within distance r of p" queries O(occupancy) instead of O(n).
package geom

import "math"

// Point is a location in the plane.
type Point struct {
	X, Y float64
}

// Dist returns the Euclidean distance between p and q.
func (p Point) Dist(q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return math.Sqrt(dx*dx + dy*dy)
}

// Dist2 returns the squared Euclidean distance, avoiding the sqrt when only
// comparisons are needed.
func (p Point) Dist2(q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return dx*dx + dy*dy
}

// Add returns p translated by q.
func (p Point) Add(q Point) Point {
	return Point{p.X + q.X, p.Y + q.Y}
}

// Scale returns p scaled by s.
func (p Point) Scale(s float64) Point {
	return Point{p.X * s, p.Y * s}
}

// Grid is a uniform-cell spatial hash over a set of indexed points.
// Points are identified by their integer index (the simulator's node id).
// The zero value is not usable; construct with NewGrid.
type Grid struct {
	cell    float64
	minX    float64
	minY    float64
	cols    int
	rows    int
	cells   [][]int32
	points  []Point
	present []bool
}

// NewGrid builds a grid over points with the given cell size. Cell size
// should be on the order of the query radius for best performance.
// It panics if cell <= 0, which is a programming error.
func NewGrid(points []Point, cell float64) *Grid {
	if cell <= 0 {
		panic("geom: grid cell size must be positive")
	}
	g := &Grid{
		cell:    cell,
		points:  make([]Point, len(points)),
		present: make([]bool, len(points)),
	}
	copy(g.points, points)
	minX, minY := math.Inf(1), math.Inf(1)
	maxX, maxY := math.Inf(-1), math.Inf(-1)
	for _, p := range points {
		minX = math.Min(minX, p.X)
		minY = math.Min(minY, p.Y)
		maxX = math.Max(maxX, p.X)
		maxY = math.Max(maxY, p.Y)
	}
	if len(points) == 0 {
		minX, minY, maxX, maxY = 0, 0, 0, 0
	}
	g.minX, g.minY = minX, minY
	g.cols = int((maxX-minX)/cell) + 1
	g.rows = int((maxY-minY)/cell) + 1
	if g.cols < 1 {
		g.cols = 1
	}
	if g.rows < 1 {
		g.rows = 1
	}
	g.cells = make([][]int32, g.cols*g.rows)
	for i, p := range points {
		ci := g.cellIndex(p)
		g.cells[ci] = append(g.cells[ci], int32(i))
		g.present[i] = true
	}
	return g
}

func (g *Grid) cellIndex(p Point) int {
	cx := int((p.X - g.minX) / g.cell)
	cy := int((p.Y - g.minY) / g.cell)
	cx = clamp(cx, 0, g.cols-1)
	cy = clamp(cy, 0, g.rows-1)
	return cy*g.cols + cx
}

func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Len returns the number of points the grid was built over (present or not).
func (g *Grid) Len() int { return len(g.points) }

// Point returns the location of point i.
func (g *Grid) Point(i int) Point { return g.points[i] }

// Present reports whether point i is currently in the index.
func (g *Grid) Present(i int) bool { return g.present[i] }

// Remove removes point i from the index (e.g. a departed node).
// Removing an absent point is a no-op.
func (g *Grid) Remove(i int) {
	if !g.present[i] {
		return
	}
	g.present[i] = false
	ci := g.cellIndex(g.points[i])
	g.cells[ci] = deleteVal(g.cells[ci], int32(i))
}

// Insert re-inserts point i (e.g. a returning node), optionally at a new
// location. Inserting a present point first removes it.
func (g *Grid) Insert(i int, p Point) {
	if g.present[i] {
		g.Remove(i)
	}
	g.points[i] = p
	ci := g.cellIndex(p)
	g.cells[ci] = append(g.cells[ci], int32(i))
	g.present[i] = true
}

// Move relocates point i to p, updating the index.
func (g *Grid) Move(i int, p Point) {
	if !g.present[i] {
		g.points[i] = p
		return
	}
	oldCI := g.cellIndex(g.points[i])
	newCI := g.cellIndex(p)
	g.points[i] = p
	if oldCI == newCI {
		return
	}
	g.cells[oldCI] = deleteVal(g.cells[oldCI], int32(i))
	g.cells[newCI] = append(g.cells[newCI], int32(i))
}

func deleteVal(s []int32, v int32) []int32 {
	for i, x := range s {
		if x == v {
			s[i] = s[len(s)-1]
			return s[:len(s)-1]
		}
	}
	return s
}

// Iter streams the present points within distance r of a query point, in the
// same cell-row-major order Within reports them. It is a plain value — no
// heap allocation per query — which is what lets the simulator's slot loop
// run grid queries allocation-free. An Iter must not outlive mutations of
// its Grid. The zero value is not usable; obtain one from IterWithin.
type Iter struct {
	g        *Grid
	q        Point
	r2       float64
	cx0, cx1 int
	cy1      int
	cx, cy   int
	cell     []int32
	pos      int
}

// IterWithin returns an iterator over the present points within distance r
// of q, inclusive of points exactly at distance r. The point at q itself is
// included if indexed; callers filter self. Within and CountWithin are thin
// wrappers over the same iterator, so all three agree on membership.
func (g *Grid) IterWithin(q Point, r float64) Iter {
	cx0 := clamp(int((q.X-r-g.minX)/g.cell), 0, g.cols-1)
	cy0 := clamp(int((q.Y-r-g.minY)/g.cell), 0, g.rows-1)
	cx1 := clamp(int((q.X+r-g.minX)/g.cell), 0, g.cols-1)
	cy1 := clamp(int((q.Y+r-g.minY)/g.cell), 0, g.rows-1)
	return Iter{
		g: g, q: q, r2: r * r,
		cx0: cx0, cx1: cx1, cy1: cy1,
		cx: cx0, cy: cy0,
		cell: g.cells[cy0*g.cols+cx0],
	}
}

// Next returns the next in-range point id, or ok = false when exhausted.
func (it *Iter) Next() (id int, ok bool) {
	for {
		for it.pos < len(it.cell) {
			cand := it.cell[it.pos]
			it.pos++
			if it.g.points[cand].Dist2(it.q) <= it.r2 {
				return int(cand), true
			}
		}
		it.cx++
		if it.cx > it.cx1 {
			it.cx = it.cx0
			it.cy++
			if it.cy > it.cy1 {
				return 0, false
			}
		}
		it.cell = it.g.cells[it.cy*it.g.cols+it.cx]
		it.pos = 0
	}
}

// Within appends to dst the indices of all present points within distance r
// of q (inclusive of points exactly at distance r) and returns the extended
// slice. The point at q itself is included if indexed; callers filter self.
func (g *Grid) Within(q Point, r float64, dst []int) []int {
	it := g.IterWithin(q, r)
	for {
		id, ok := it.Next()
		if !ok {
			return dst
		}
		dst = append(dst, id)
	}
}

// CountWithin returns the number of present points within distance r of q.
func (g *Grid) CountWithin(q Point, r float64) int {
	n := 0
	it := g.IterWithin(q, r)
	for {
		if _, ok := it.Next(); !ok {
			return n
		}
		n++
	}
}
