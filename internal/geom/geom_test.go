package geom

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"udwn/internal/rng"
)

func TestPointDist(t *testing.T) {
	tests := []struct {
		name string
		p, q Point
		want float64
	}{
		{"same", Point{1, 1}, Point{1, 1}, 0},
		{"unit x", Point{0, 0}, Point{1, 0}, 1},
		{"unit y", Point{0, 0}, Point{0, 1}, 1},
		{"3-4-5", Point{0, 0}, Point{3, 4}, 5},
		{"negative", Point{-1, -1}, Point{2, 3}, 5},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.p.Dist(tt.q); math.Abs(got-tt.want) > 1e-12 {
				t.Fatalf("Dist = %v, want %v", got, tt.want)
			}
			if got := tt.p.Dist2(tt.q); math.Abs(got-tt.want*tt.want) > 1e-12 {
				t.Fatalf("Dist2 = %v, want %v", got, tt.want*tt.want)
			}
		})
	}
}

func TestPointOps(t *testing.T) {
	p := Point{1, 2}.Add(Point{3, 4})
	if p != (Point{4, 6}) {
		t.Fatalf("Add = %v", p)
	}
	s := Point{1, 2}.Scale(3)
	if s != (Point{3, 6}) {
		t.Fatalf("Scale = %v", s)
	}
}

func randomPoints(n int, side float64, seed uint64) []Point {
	r := rng.New(seed)
	ps := make([]Point, n)
	for i := range ps {
		ps[i] = Point{r.Range(0, side), r.Range(0, side)}
	}
	return ps
}

// bruteWithin is the O(n) reference for Grid.Within.
func bruteWithin(ps []Point, present []bool, q Point, r float64) []int {
	var out []int
	for i, p := range ps {
		if present != nil && !present[i] {
			continue
		}
		if p.Dist(q) <= r {
			out = append(out, i)
		}
	}
	return out
}

func sorted(xs []int) []int {
	out := append([]int(nil), xs...)
	sort.Ints(out)
	return out
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestGridWithinMatchesBrute(t *testing.T) {
	ps := randomPoints(500, 100, 1)
	g := NewGrid(ps, 5)
	r := rng.New(2)
	for trial := 0; trial < 50; trial++ {
		q := Point{r.Range(-10, 110), r.Range(-10, 110)}
		radius := r.Range(0.5, 20)
		got := sorted(g.Within(q, radius, nil))
		want := sorted(bruteWithin(ps, nil, q, radius))
		if !equalInts(got, want) {
			t.Fatalf("trial %d: Within mismatch: got %v want %v", trial, got, want)
		}
	}
}

func TestGridCountWithin(t *testing.T) {
	ps := randomPoints(300, 50, 3)
	g := NewGrid(ps, 3)
	r := rng.New(4)
	for trial := 0; trial < 30; trial++ {
		q := Point{r.Range(0, 50), r.Range(0, 50)}
		radius := r.Range(1, 15)
		if got, want := g.CountWithin(q, radius), len(bruteWithin(ps, nil, q, radius)); got != want {
			t.Fatalf("CountWithin = %d, want %d", got, want)
		}
	}
}

func TestGridRemoveInsert(t *testing.T) {
	ps := randomPoints(100, 20, 5)
	g := NewGrid(ps, 2)
	present := make([]bool, len(ps))
	for i := range present {
		present[i] = true
	}
	r := rng.New(6)
	for trial := 0; trial < 200; trial++ {
		i := r.Intn(len(ps))
		if present[i] {
			g.Remove(i)
			present[i] = false
		} else {
			p := Point{r.Range(0, 20), r.Range(0, 20)}
			ps[i] = p
			g.Insert(i, p)
			present[i] = true
		}
		q := Point{r.Range(0, 20), r.Range(0, 20)}
		got := sorted(g.Within(q, 4, nil))
		want := sorted(bruteWithin(ps, present, q, 4))
		if !equalInts(got, want) {
			t.Fatalf("trial %d: mismatch after remove/insert", trial)
		}
	}
}

func TestGridRemoveIdempotent(t *testing.T) {
	ps := randomPoints(10, 5, 7)
	g := NewGrid(ps, 1)
	g.Remove(3)
	g.Remove(3) // must not corrupt the index
	if g.Present(3) {
		t.Fatal("point still present after Remove")
	}
	if got := g.CountWithin(ps[3], 0.001); got != len(bruteWithin(ps, presentExcept(10, 3), ps[3], 0.001)) {
		t.Fatal("count disagrees after double remove")
	}
}

func presentExcept(n, except int) []bool {
	p := make([]bool, n)
	for i := range p {
		p[i] = i != except
	}
	return p
}

func TestGridMove(t *testing.T) {
	ps := randomPoints(200, 30, 8)
	g := NewGrid(ps, 2)
	r := rng.New(9)
	for trial := 0; trial < 300; trial++ {
		i := r.Intn(len(ps))
		p := Point{r.Range(0, 30), r.Range(0, 30)}
		ps[i] = p
		g.Move(i, p)
		if g.Point(i) != p {
			t.Fatal("Move did not update location")
		}
	}
	q := Point{15, 15}
	got := sorted(g.Within(q, 10, nil))
	want := sorted(bruteWithin(ps, nil, q, 10))
	if !equalInts(got, want) {
		t.Fatal("Within mismatch after moves")
	}
}

func TestGridEmpty(t *testing.T) {
	g := NewGrid(nil, 1)
	if got := g.Within(Point{0, 0}, 10, nil); len(got) != 0 {
		t.Fatalf("empty grid returned %v", got)
	}
	if g.Len() != 0 {
		t.Fatal("empty grid Len != 0")
	}
}

func TestGridSinglePoint(t *testing.T) {
	g := NewGrid([]Point{{5, 5}}, 1)
	if got := g.Within(Point{5, 5}, 0.1, nil); len(got) != 1 || got[0] != 0 {
		t.Fatalf("single point query = %v", got)
	}
	if got := g.Within(Point{100, 100}, 1, nil); len(got) != 0 {
		t.Fatalf("far query = %v", got)
	}
}

func TestGridPanicsOnBadCell(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewGrid(cell=0) did not panic")
		}
	}()
	NewGrid(nil, 0)
}

// Property: for random configurations, grid query equals brute force.
func TestGridProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 20 + r.Intn(100)
		ps := randomPoints(n, 40, seed^0xabc)
		g := NewGrid(ps, r.Range(0.5, 8))
		q := Point{r.Range(0, 40), r.Range(0, 40)}
		radius := r.Range(0, 20)
		return equalInts(sorted(g.Within(q, radius, nil)), sorted(bruteWithin(ps, nil, q, radius)))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestGridIterWithinMatchesWithin(t *testing.T) {
	// Iter is the single source of truth Within and CountWithin wrap; pin
	// that all three agree, including enumeration order.
	ps := randomPoints(400, 60, 11)
	g := NewGrid(ps, 4)
	r := rng.New(12)
	for trial := 0; trial < 40; trial++ {
		q := Point{r.Range(-5, 65), r.Range(-5, 65)}
		radius := r.Range(0, 12)
		want := g.Within(q, radius, nil)
		var got []int
		it := g.IterWithin(q, radius)
		for {
			id, ok := it.Next()
			if !ok {
				break
			}
			got = append(got, id)
		}
		if !equalInts(got, want) {
			t.Fatalf("trial %d: iterator order/content mismatch: got %v want %v", trial, got, want)
		}
		if n := g.CountWithin(q, radius); n != len(want) {
			t.Fatalf("trial %d: CountWithin = %d, want %d", trial, n, len(want))
		}
	}
}

func TestGridExactBoundaryInclusive(t *testing.T) {
	// Points exactly at distance r are inside: 3-4-5 triangles have exact
	// float distances, so any off-by-one-ulp comparison would show here.
	ps := []Point{{0, 0}, {3, 4}, {-3, 4}, {5, 0}, {0, -5}, {3.0000001, 4}}
	g := NewGrid(ps, 2)
	got := sorted(g.Within(Point{0, 0}, 5, nil))
	want := []int{0, 1, 2, 3, 4} // index 5 is just outside
	if !equalInts(got, want) {
		t.Fatalf("exact-radius query = %v, want %v", got, want)
	}
	if n := g.CountWithin(Point{0, 0}, 5); n != 5 {
		t.Fatalf("CountWithin = %d, want 5", n)
	}
}

func TestGridNegativeQueryCoordinates(t *testing.T) {
	// A query rectangle extending far below the bounding box yields negative
	// pre-clamp cell coordinates; truncation-vs-floor artifacts must not
	// drop border cells. Points themselves sit at negative coordinates too.
	ps := []Point{{-10, -10}, {-9.5, -10}, {0, 0}, {4, 4}}
	g := NewGrid(ps, 3)
	got := sorted(g.Within(Point{-40, -40}, 43, nil))
	if !equalInts(got, []int{0, 1}) {
		t.Fatalf("negative-coordinate query = %v, want [0 1]", got)
	}
	if n := g.CountWithin(Point{-40, -40}, 43); n != 2 {
		t.Fatalf("CountWithin = %d, want 2", n)
	}
	// Exactly at the corner distance, inclusively.
	if got := sorted(g.Within(Point{-40, -40}, math.Hypot(30, 30), nil)); !equalInts(got, []int{0}) {
		t.Fatalf("corner-distance query = %v, want [0]", got)
	}
}

func TestGridMoveOutsideBoundingBox(t *testing.T) {
	// Points Moved outside the construction-time bounding box land in
	// clamped border cells; queries clamp the same way, so they must still
	// be found — both near their new location and not at the old one.
	ps := randomPoints(50, 10, 13)
	g := NewGrid(ps, 1)
	far := []Point{{100, 100}, {-50, 5}, {5, -70}, {200, -200}}
	for i, p := range far {
		ps[i] = p
		g.Move(i, p)
	}
	for i, p := range far {
		got := sorted(g.Within(p, 0.5, nil))
		want := sorted(bruteWithin(ps, nil, p, 0.5))
		if !equalInts(got, want) {
			t.Fatalf("moved point %d: Within(%v) = %v, want %v", i, p, got, want)
		}
	}
	// A sweep over the whole (old and new) area still matches brute force.
	got := sorted(g.Within(Point{5, 5}, 400, nil))
	want := sorted(bruteWithin(ps, nil, Point{5, 5}, 400))
	if !equalInts(got, want) {
		t.Fatal("global query misses relocated points")
	}
	// Remove/Insert of an out-of-box point must keep the index consistent.
	g.Remove(0)
	if got := g.Within(far[0], 0.5, nil); len(got) != 0 {
		t.Fatalf("removed out-of-box point still found: %v", got)
	}
	g.Insert(0, far[0])
	if got := g.Within(far[0], 0.5, nil); len(got) != 1 || got[0] != 0 {
		t.Fatalf("re-inserted out-of-box point not found: %v", got)
	}
}

func BenchmarkGridWithin(b *testing.B) {
	ps := randomPoints(4096, 100, 1)
	g := NewGrid(ps, 5)
	buf := make([]int, 0, 128)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = g.Within(ps[i%len(ps)], 5, buf[:0])
	}
}
