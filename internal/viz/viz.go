// Package viz renders deployments and dissemination outcomes as SVG, using
// only the standard library. The renderings are diagnostic: node positions,
// communication edges at R_B, per-node state colours (informed time as a
// gradient, dominator roles, dead nodes), and optional range circles.
package viz

import (
	"fmt"
	"io"
	"math"
	"strings"

	"udwn/internal/geom"
)

// NodeStyle selects how one node is drawn.
type NodeStyle struct {
	// Fill is the CSS colour of the node disc.
	Fill string
	// Radius is the disc radius in world units; 0 selects a default.
	Radius float64
	// Label is an optional text annotation.
	Label string
	// Ring, when non-zero, draws a circle of this world-unit radius around
	// the node (e.g. the communication range).
	Ring float64
}

// Scene is a renderable set of nodes and edges.
type Scene struct {
	pts    []geom.Point
	styles []NodeStyle
	edges  [][2]int
	title  string
}

// NewScene creates a scene over the given points; all nodes start with a
// neutral style.
func NewScene(pts []geom.Point, title string) *Scene {
	s := &Scene{
		pts:    append([]geom.Point(nil), pts...),
		styles: make([]NodeStyle, len(pts)),
		title:  title,
	}
	for i := range s.styles {
		s.styles[i] = NodeStyle{Fill: "#888"}
	}
	return s
}

// Style sets node i's style.
func (s *Scene) Style(i int, st NodeStyle) {
	if st.Fill == "" {
		st.Fill = "#888"
	}
	s.styles[i] = st
}

// Edge adds an undirected edge line between nodes u and v.
func (s *Scene) Edge(u, v int) { s.edges = append(s.edges, [2]int{u, v}) }

// EdgesWithin adds edges between all pairs within distance r. O(n²);
// intended for diagnostic renders of moderate deployments.
func (s *Scene) EdgesWithin(r float64) {
	for u := range s.pts {
		for v := u + 1; v < len(s.pts); v++ {
			if s.pts[u].Dist(s.pts[v]) <= r {
				s.Edge(u, v)
			}
		}
	}
}

// HeatColor maps x ∈ [0,1] onto a blue→red gradient, for informed-time
// colouring. Values outside [0,1] are clamped.
func HeatColor(x float64) string {
	if math.IsNaN(x) {
		x = 0
	}
	x = math.Max(0, math.Min(1, x))
	r := int(40 + 215*x)
	b := int(255 - 215*x)
	return fmt.Sprintf("#%02x50%02x", r, b)
}

// Render writes the scene as a standalone SVG document.
func (s *Scene) Render(w io.Writer) error {
	minX, minY := math.Inf(1), math.Inf(1)
	maxX, maxY := math.Inf(-1), math.Inf(-1)
	for _, p := range s.pts {
		minX, minY = math.Min(minX, p.X), math.Min(minY, p.Y)
		maxX, maxY = math.Max(maxX, p.X), math.Max(maxY, p.Y)
	}
	if len(s.pts) == 0 {
		minX, minY, maxX, maxY = 0, 0, 1, 1
	}
	span := math.Max(maxX-minX, maxY-minY)
	if span == 0 {
		span = 1
	}
	pad := span * 0.05
	nodeR := span / 120

	var b strings.Builder
	fmt.Fprintf(&b,
		`<svg xmlns="http://www.w3.org/2000/svg" width="800" height="800" viewBox="%.3f %.3f %.3f %.3f">`+"\n",
		minX-pad, minY-pad, (maxX-minX)+2*pad, (maxY-minY)+2*pad)
	fmt.Fprintf(&b, `<rect x="%.3f" y="%.3f" width="%.3f" height="%.3f" fill="white"/>`+"\n",
		minX-pad, minY-pad, (maxX-minX)+2*pad, (maxY-minY)+2*pad)
	if s.title != "" {
		fmt.Fprintf(&b, `<title>%s</title>`+"\n", escape(s.title))
	}
	for _, e := range s.edges {
		p, q := s.pts[e[0]], s.pts[e[1]]
		fmt.Fprintf(&b,
			`<line x1="%.3f" y1="%.3f" x2="%.3f" y2="%.3f" stroke="#ddd" stroke-width="%.3f"/>`+"\n",
			p.X, p.Y, q.X, q.Y, nodeR/3)
	}
	for i, p := range s.pts {
		st := s.styles[i]
		if st.Ring > 0 {
			fmt.Fprintf(&b,
				`<circle cx="%.3f" cy="%.3f" r="%.3f" fill="none" stroke="#bbb" stroke-width="%.3f" stroke-dasharray="%.3f"/>`+"\n",
				p.X, p.Y, st.Ring, nodeR/4, nodeR)
		}
		r := st.Radius
		if r == 0 {
			r = nodeR
		}
		fmt.Fprintf(&b, `<circle cx="%.3f" cy="%.3f" r="%.3f" fill="%s"/>`+"\n",
			p.X, p.Y, r, st.Fill)
		if st.Label != "" {
			fmt.Fprintf(&b, `<text x="%.3f" y="%.3f" font-size="%.3f" fill="#333">%s</text>`+"\n",
				p.X+1.2*r, p.Y-1.2*r, 3*nodeR, escape(st.Label))
		}
	}
	b.WriteString("</svg>\n")
	_, err := io.WriteString(w, b.String())
	if err != nil {
		return fmt.Errorf("viz: render: %w", err)
	}
	return nil
}

func escape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}
