package viz

import (
	"bytes"
	"strings"
	"testing"

	"udwn/internal/geom"
)

func TestRenderBasics(t *testing.T) {
	pts := []geom.Point{{X: 0, Y: 0}, {X: 10, Y: 0}, {X: 5, Y: 8}}
	s := NewScene(pts, "triangle")
	s.Style(0, NodeStyle{Fill: "#ff0000", Label: "src", Ring: 4})
	s.Edge(0, 1)
	var buf bytes.Buffer
	if err := s.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"<svg", "</svg>", "<title>triangle</title>", "#ff0000", "src",
		"<line", "stroke-dasharray",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("SVG missing %q:\n%s", want, out)
		}
	}
	if got := strings.Count(out, "<circle"); got != 4 { // 3 nodes + 1 ring
		t.Fatalf("circle count = %d, want 4", got)
	}
}

func TestRenderEmptyScene(t *testing.T) {
	var buf bytes.Buffer
	if err := NewScene(nil, "").Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "<svg") {
		t.Fatal("empty scene must still produce a document")
	}
}

func TestEdgesWithin(t *testing.T) {
	pts := []geom.Point{{X: 0, Y: 0}, {X: 1, Y: 0}, {X: 10, Y: 0}}
	s := NewScene(pts, "")
	s.EdgesWithin(2)
	if len(s.edges) != 1 || s.edges[0] != [2]int{0, 1} {
		t.Fatalf("edges = %v", s.edges)
	}
}

func TestHeatColor(t *testing.T) {
	cold := HeatColor(0)
	hot := HeatColor(1)
	if cold == hot {
		t.Fatal("gradient endpoints must differ")
	}
	if HeatColor(-5) != cold || HeatColor(7) != hot {
		t.Fatal("out-of-range values must clamp")
	}
	if !strings.HasPrefix(cold, "#") || len(cold) != 7 {
		t.Fatalf("malformed colour %q", cold)
	}
	// NaN clamps to cold rather than producing garbage.
	if HeatColor(nan()) != cold {
		t.Fatal("NaN must clamp")
	}
}

func nan() float64 {
	z := 0.0
	return z / z
}

func TestEscape(t *testing.T) {
	s := NewScene([]geom.Point{{X: 0, Y: 0}}, `a<b>&"c"`)
	s.Style(0, NodeStyle{Label: "<x>"})
	var buf bytes.Buffer
	if err := s.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if strings.Contains(out, "<b>") || strings.Contains(out, "<x>") {
		t.Fatal("markup not escaped")
	}
	if !strings.Contains(out, "&lt;x&gt;") {
		t.Fatal("escaped label missing")
	}
}

func TestStyleDefaultFill(t *testing.T) {
	s := NewScene([]geom.Point{{X: 0, Y: 0}}, "")
	s.Style(0, NodeStyle{}) // empty fill defaults
	var buf bytes.Buffer
	if err := s.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "#888") {
		t.Fatal("default fill missing")
	}
}
