package metrics

import "testing"

// The registry sits on the simulator's per-slot path (via resolved handles)
// and under every grid worker; these pin the cost of its primitives.

func BenchmarkCounterAdd(b *testing.B) {
	c := NewRegistry().Counter("bench/c")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Add(1)
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewRegistry().Histogram("bench/h", 1, 2, 4, 8, 16, 32, 64, 128)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i & 255))
	}
}

func BenchmarkSnapshot(b *testing.B) {
	r := NewRegistry()
	for i := 0; i < 16; i++ {
		r.Counter(string(rune('a'+i)) + "/counter").Add(int64(i))
	}
	r.Histogram("bench/h", 1, 2, 4).Observe(3)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = r.Snapshot()
	}
}
