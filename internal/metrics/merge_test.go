package metrics

import (
	"encoding/json"
	"sync"
	"testing"
	"time"
)

// populate records one deterministic batch of events into r, scaled by k so
// different batches are distinguishable after a merge.
func populate(r *Registry, k int64) {
	r.Counter("c/a").Add(2 * k)
	r.Counter("c/b").Add(k)
	r.Gauge("g").SetMax(10 * k)
	h := r.Histogram("h", 1, 4, 16)
	for i := int64(0); i < k; i++ {
		h.Observe(0.5)
		h.Observe(5)
		h.Observe(100)
	}
	r.Timer("t").Observe(time.Duration(k)*time.Millisecond, 64*k)
}

// TestMergeSnapshotEquivalence is the replay contract of the checkpoint
// layer: recording events directly into one registry and merging the same
// events via per-part snapshots must produce byte-identical snapshots.
func TestMergeSnapshotEquivalence(t *testing.T) {
	direct := NewRegistry()
	populate(direct, 3)
	populate(direct, 5)

	merged := NewRegistry()
	for _, k := range []int64{3, 5} {
		part := NewRegistry()
		populate(part, k)
		merged.MergeSnapshot(part.Snapshot())
	}

	a := direct.Snapshot().String()
	b := merged.Snapshot().String()
	if a != b {
		t.Fatalf("merged snapshot differs from direct recording:\n--- direct ---\n%s\n--- merged ---\n%s", a, b)
	}
}

// A snapshot that travelled through its JSON encoding (as checkpoint
// records store it) must merge identically to the in-memory one.
func TestMergeSnapshotJSONRoundTrip(t *testing.T) {
	part := NewRegistry()
	populate(part, 7)
	b, err := json.Marshal(part.Snapshot().ZeroTimings())
	if err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	if err := json.Unmarshal(b, &snap); err != nil {
		t.Fatal(err)
	}

	want := NewRegistry()
	want.MergeSnapshot(part.Snapshot().ZeroTimings())
	got := NewRegistry()
	got.MergeSnapshot(&snap)
	if got.Snapshot().String() != want.Snapshot().String() {
		t.Fatalf("JSON round-tripped snapshot merged differently:\n%s\nvs\n%s",
			got.Snapshot(), want.Snapshot())
	}
}

// Merging must be safe against concurrent direct writers — the grid merges
// cache hits on the dispatcher while workers record live cells.
func TestMergeSnapshotConcurrent(t *testing.T) {
	part := NewRegistry()
	populate(part, 2)
	snap := part.Snapshot()

	r := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				r.MergeSnapshot(snap)
			}
		}()
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				populate(r, 1)
			}
		}()
	}
	wg.Wait()
	// Merges: 4 goroutines × 50 merges × snapshot value 4; writers: 4
	// goroutines × 50 populates × 2.
	if got, want := r.CounterValue("c/a"), int64(4*50*4+4*50*2); got != want {
		t.Fatalf("c/a = %d, want %d", got, want)
	}
	if got := r.Histogram("h", 1, 4, 16).Count(); got != int64(4*50*3*2+4*50*3) {
		t.Fatalf("histogram count = %d", got)
	}
}

func TestManifestZeroTimingsClearsCheckpointTraffic(t *testing.T) {
	m := NewManifest("test")
	m.Checkpoint = &CheckpointInfo{
		Dir: "/tmp/x", Resumed: true,
		Hits: 3, Misses: 4, Stores: 4, Errors: 1, TornBytes: 9,
		Records: 7, StoreHash: "abc",
	}
	m.Counters = map[string]int64{
		"checkpoint/hits": 3, "checkpoint/misses": 4, "cell-panics": 1,
	}
	m.ZeroTimings()
	cp := m.Checkpoint
	if cp.Dir != "" || cp.Resumed || cp.Hits != 0 || cp.Misses != 0 ||
		cp.Stores != 0 || cp.Errors != 0 || cp.TornBytes != 0 {
		t.Fatalf("traffic fields survived ZeroTimings: %+v", cp)
	}
	if cp.Records != 7 || cp.StoreHash != "abc" {
		t.Fatalf("content fields must survive ZeroTimings: %+v", cp)
	}
	if _, ok := m.Counters["checkpoint/hits"]; ok {
		t.Fatalf("checkpoint/* counters survived ZeroTimings: %v", m.Counters)
	}
	if m.Counters["cell-panics"] != 1 {
		t.Fatalf("non-checkpoint counters must survive ZeroTimings: %v", m.Counters)
	}
}
