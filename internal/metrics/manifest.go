package metrics

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime/debug"
	"strings"
	"time"
)

// CellTiming is the per-cell cost record of one experiment grid cell: which
// cell (by experiment id, declaration index and grid label), how many
// attempts it took, and what it cost. WallNs and AllocBytes are timing
// fields cleared by ZeroTimings; everything else is deterministic.
// AllocBytes is the process-wide heap allocation delta over the cell, so
// under concurrent workers it includes other cells' allocations — treat it
// as a budget indicator, not an exact attribution.
type CellTiming struct {
	Experiment string `json:"experiment"`
	Cell       int    `json:"cell"`
	Label      string `json:"label,omitempty"`
	Attempts   int    `json:"attempts"`
	Failed     bool   `json:"failed,omitempty"`
	WallNs     int64  `json:"wall_ns"`
	AllocBytes int64  `json:"alloc_bytes"`
}

// Manifest is the machine-readable record of one CLI run: what was run
// (tool, version, config, seeds), what it cost (wall clock, per-cell
// timings) and what it measured (metric snapshot, counters). The JSON
// encoding is byte-stable modulo the timing fields — struct field order is
// fixed, map keys marshal sorted, and snapshot sections are sorted — so
// manifests can be golden-tested and diffed across runs by trajectory
// tooling (scripts/bench.sh seeds the same format for benchmarks).
type Manifest struct {
	Tool    string `json:"tool"`
	Version string `json:"version"`
	// Started is the RFC3339 UTC start time; a timing field.
	Started string `json:"started,omitempty"`
	// WallNs is the total run duration; a timing field.
	WallNs int64 `json:"wall_ns"`
	// Config records the effective flag/option values of the run.
	Config map[string]string `json:"config,omitempty"`
	// Interrupted marks a run that was stopped by a signal before every
	// selected experiment finished: the manifest records only the completed
	// portion, and an attached checkpoint store holds the finished cells
	// for a -resume run to replay.
	Interrupted bool `json:"interrupted,omitempty"`
	// Metrics is the run's registry snapshot.
	Metrics *Snapshot `json:"metrics,omitempty"`
	// Counters holds auxiliary counter sets (fault engine, run report).
	Counters map[string]int64 `json:"counters,omitempty"`
	// Cells lists per-cell timings of grid runs, in (experiment, cell)
	// order.
	Cells []CellTiming `json:"cells,omitempty"`
	// Failures lists the FAILED(...) markers of degraded cells.
	Failures []string `json:"failures,omitempty"`
	// Checkpoint records the run's interaction with a cell-result store,
	// when one was attached.
	Checkpoint *CheckpointInfo `json:"checkpoint,omitempty"`
}

// CheckpointInfo is the manifest's checkpoint section. StoreHash and
// Records describe the store's *content* and are deterministic for a given
// grid; the traffic fields (Hits, Misses, Stores, Errors, Resumed, Dir)
// describe this run's *history* against the store — an interrupted-then-
// resumed run necessarily reports different traffic than an uninterrupted
// one even though it computed the identical science, so ZeroTimings clears
// them alongside the wall clocks.
type CheckpointInfo struct {
	Dir       string `json:"dir,omitempty"`
	Resumed   bool   `json:"resumed,omitempty"`
	Hits      int64  `json:"hits"`
	Misses    int64  `json:"misses"`
	Stores    int64  `json:"stores"`
	Errors    int64  `json:"errors,omitempty"`
	TornBytes int64  `json:"torn_bytes,omitempty"`
	Records   int    `json:"records"`
	StoreHash string `json:"store_hash"`
}

// NewManifest starts a manifest for the named tool, stamped with the build
// version and the current UTC time.
func NewManifest(tool string) *Manifest {
	return &Manifest{
		Tool:    tool,
		Version: Version(),
		Started: time.Now().UTC().Format(time.RFC3339),
		Config:  make(map[string]string),
	}
}

// SetConfig records one effective configuration value.
func (m *Manifest) SetConfig(key string, value any) {
	m.Config[key] = fmt.Sprint(value)
}

// ZeroTimings clears every machine- and run-history-dependent field in
// place — start time, wall clocks, allocation figures, the version stamp
// (which varies by checkout), and the checkpoint section's cache-traffic
// fields (which depend on how the run was interrupted, not on what it
// computed) — and returns the manifest, leaving only deterministic run
// content for byte-comparison in tests.
func (m *Manifest) ZeroTimings() *Manifest {
	m.Started = ""
	m.WallNs = 0
	m.Version = ""
	if m.Metrics != nil {
		m.Metrics.ZeroTimings()
	}
	for i := range m.Cells {
		m.Cells[i].WallNs = 0
		m.Cells[i].AllocBytes = 0
	}
	if m.Checkpoint != nil {
		m.Checkpoint.Dir = ""
		m.Checkpoint.Resumed = false
		m.Checkpoint.Hits = 0
		m.Checkpoint.Misses = 0
		m.Checkpoint.Stores = 0
		m.Checkpoint.Errors = 0
		m.Checkpoint.TornBytes = 0
	}
	for k := range m.Counters {
		if strings.HasPrefix(k, "checkpoint/") {
			delete(m.Counters, k)
		}
	}
	return m
}

// MarshalIndent renders the manifest as indented JSON with a trailing
// newline.
func (m *Manifest) MarshalIndent() ([]byte, error) {
	b, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("metrics: marshal manifest: %w", err)
	}
	return append(b, '\n'), nil
}

// WriteFile writes the manifest to path as indented JSON.
func (m *Manifest) WriteFile(path string) error {
	b, err := m.MarshalIndent()
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, b, 0o644); err != nil {
		return fmt.Errorf("metrics: write manifest: %w", err)
	}
	return nil
}

// ReadManifest parses a manifest back from path.
func ReadManifest(path string) (*Manifest, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("metrics: read manifest: %w", err)
	}
	var m Manifest
	if err := json.Unmarshal(b, &m); err != nil {
		return nil, fmt.Errorf("metrics: parse manifest %s: %w", path, err)
	}
	return &m, nil
}

// Version returns a git-describe-style identifier of the running binary,
// derived from the build info the Go toolchain embeds: the module version
// when released, else the VCS revision (12 hex digits, "+dirty" when the
// checkout had local modifications), else "unknown" (tests and bare go run
// builds carry no VCS stamp).
func Version() string {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return "unknown"
	}
	if v := bi.Main.Version; v != "" && v != "(devel)" {
		return v
	}
	var rev, dirty string
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.modified":
			if s.Value == "true" {
				dirty = "+dirty"
			}
		}
	}
	if rev == "" {
		return "unknown"
	}
	if len(rev) > 12 {
		rev = rev[:12]
	}
	return rev + dirty
}
