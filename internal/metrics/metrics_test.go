package metrics

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("a")
	c.Add(3)
	c.Inc()
	if got := c.Value(); got != 4 {
		t.Fatalf("counter = %d, want 4", got)
	}
	if r.Counter("a") != c {
		t.Fatal("Counter must be get-or-create")
	}
	if got := r.CounterValue("never"); got != 0 {
		t.Fatalf("CounterValue(never) = %d, want 0", got)
	}
	g := r.Gauge("g")
	g.Set(7)
	g.SetMax(5)
	if got := g.Value(); got != 7 {
		t.Fatalf("gauge after SetMax(5) = %d, want 7", got)
	}
	g.SetMax(9)
	if got := g.Value(); got != 9 {
		t.Fatalf("gauge after SetMax(9) = %d, want 9", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", 1, 2, 4)
	for _, v := range []float64{0, 1, 1.5, 2, 3, 4, 5, 100} {
		h.Observe(v)
	}
	snap := r.Snapshot()
	hs := snap.Histograms[0]
	// v <= 1: {0, 1}; v <= 2: {1.5, 2}; v <= 4: {3, 4}; over: {5, 100}.
	wantCounts := []int64{2, 2, 2}
	for i, w := range wantCounts {
		if hs.Buckets[i].Count != w {
			t.Fatalf("bucket %d count = %d, want %d", i, hs.Buckets[i].Count, w)
		}
	}
	if hs.Over != 2 {
		t.Fatalf("overflow count = %d, want 2", hs.Over)
	}
	if hs.Count != 8 || h.Count() != 8 {
		t.Fatalf("total count = %d/%d, want 8", hs.Count, h.Count())
	}
}

func TestHistogramRedeclaration(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", 1, 2)
	if r.Histogram("h", 1, 2) != h {
		t.Fatal("identical redeclaration must return the same histogram")
	}
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("bounds mismatch", func() { r.Histogram("h", 1, 3) })
	mustPanic("arity mismatch", func() { r.Histogram("h", 1) })
	mustPanic("non-increasing bounds", func() { r.Histogram("h2", 2, 2) })
}

func TestSnapshotDeterminism(t *testing.T) {
	// Registration and update order must not affect the snapshot: hammer a
	// registry from concurrent goroutines touching names in random-ish
	// orders and compare against a sequential build of the same events.
	build := func(concurrent bool) string {
		r := NewRegistry()
		work := func(k int) {
			for i := 0; i < 100; i++ {
				r.Counter("c/a").Inc()
				r.Counter("c/b").Add(2)
				r.Histogram("h", 1, 10, 100).Observe(float64(k*i) / 3)
				r.Timer("t").Observe(time.Duration(k*i), int64(i))
			}
			r.Gauge("g").SetMax(int64(k))
		}
		if concurrent {
			var wg sync.WaitGroup
			for k := 1; k <= 8; k++ {
				wg.Add(1)
				go func() { defer wg.Done(); work(k) }()
			}
			wg.Wait()
		} else {
			for k := 8; k >= 1; k-- { // reversed order on purpose
				work(k)
			}
		}
		return r.Snapshot().ZeroTimings().String()
	}
	seq := build(false)
	for i := 0; i < 4; i++ {
		if conc := build(true); conc != seq {
			t.Fatalf("snapshot depends on scheduling:\n--- sequential ---\n%s--- concurrent ---\n%s", seq, conc)
		}
	}
}

func TestSnapshotRendering(t *testing.T) {
	r := NewRegistry()
	r.Counter("z").Add(1)
	r.Counter("a").Add(2)
	r.Gauge("g").Set(5)
	r.Histogram("h", 0.5, 1).Observe(0.25)
	r.Timer("t").Observe(3*time.Nanosecond, 7)
	got := r.Snapshot().String()
	want := "counter a = 2\n" +
		"counter z = 1\n" +
		"gauge g = 5\n" +
		"histogram h count=1 [le0.5:1 le1:0 over:0]\n" +
		"timer t count=1 wall_ns=3 alloc_bytes=7\n"
	if got != want {
		t.Fatalf("snapshot rendering:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
	zeroed := r.Snapshot().ZeroTimings().String()
	if !strings.Contains(zeroed, "timer t count=1 wall_ns=0 alloc_bytes=0") {
		t.Fatalf("ZeroTimings left timing fields:\n%s", zeroed)
	}
}

func TestTimerTime(t *testing.T) {
	r := NewRegistry()
	tm := r.Timer("op")
	stop := tm.Time()
	stop()
	if tm.Count() != 1 {
		t.Fatalf("timer count = %d, want 1", tm.Count())
	}
	if tm.TotalNs() < 0 {
		t.Fatalf("timer ns = %d, want >= 0", tm.TotalNs())
	}
}

func TestCountersCompat(t *testing.T) {
	// The legacy Counters surface (now backing trace.Counters) keeps its
	// historical rendering contract.
	c := NewCounters()
	if c.String() != "" {
		t.Fatalf("empty set renders %q, want \"\"", c.String())
	}
	c.Add("beta", 2)
	c.Add("alpha", 1)
	c.Add("beta", 3)
	if got := c.Get("beta"); got != 5 {
		t.Fatalf("Get(beta) = %d, want 5", got)
	}
	if got := c.Get("missing"); got != 0 {
		t.Fatalf("Get(missing) = %d, want 0", got)
	}
	if got := c.Total(); got != 6 {
		t.Fatalf("Total = %d, want 6", got)
	}
	if got := c.String(); got != "alpha=1 beta=5" {
		t.Fatalf("String = %q, want \"alpha=1 beta=5\"", got)
	}
	names := c.Names()
	if len(names) != 2 || names[0] != "alpha" || names[1] != "beta" {
		t.Fatalf("Names = %v", names)
	}
	m := c.Map()
	if m["alpha"] != 1 || m["beta"] != 5 || len(m) != 2 {
		t.Fatalf("Map = %v", m)
	}
	// Get must not register phantom names.
	if got := len(c.Names()); got != 2 {
		t.Fatalf("Get registered a phantom name: %v", c.Names())
	}
}
