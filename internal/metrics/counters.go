package metrics

import (
	"fmt"
	"strings"
)

// Counters is a dynamically named counter set with the rendering contract
// the repository has relied on since the fault-injection layer: String and
// Names order counters alphabetically, so rendered counter lines are
// deterministic regardless of registration (and hence scheduling) order.
//
// It is a thin view over a Registry — the historical trace.Counters type is
// now an alias of this one, so fault-engine counts, grid failure counters
// and CLI run manifests all share one metrics spine.
type Counters struct {
	r *Registry
}

// NewCounters returns an empty counter set backed by its own registry.
func NewCounters() *Counters {
	return &Counters{r: NewRegistry()}
}

// Add increments name by delta, registering the counter on first use.
func (c *Counters) Add(name string, delta int64) {
	c.r.Counter(name).Add(delta)
}

// Get returns the current value of name (0 when never added; reading does
// not register the name).
func (c *Counters) Get(name string) int64 {
	return c.r.CounterValue(name)
}

// Total sums every counter.
func (c *Counters) Total() int64 {
	var t int64
	for _, cs := range c.r.Snapshot().Counters {
		t += cs.Value
	}
	return t
}

// Names returns the registered counter names in sorted order.
func (c *Counters) Names() []string {
	snap := c.r.Snapshot()
	names := make([]string, len(snap.Counters))
	for i, cs := range snap.Counters {
		names[i] = cs.Name
	}
	return names
}

// Map returns a name → value copy of the set, for embedding in manifests.
func (c *Counters) Map() map[string]int64 {
	snap := c.r.Snapshot()
	m := make(map[string]int64, len(snap.Counters))
	for _, cs := range snap.Counters {
		m[cs.Name] = cs.Value
	}
	return m
}

// String renders "name=value" pairs in sorted name order, space separated;
// an empty counter set renders "".
func (c *Counters) String() string {
	snap := c.r.Snapshot()
	var b strings.Builder
	for i, cs := range snap.Counters {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%s=%d", cs.Name, cs.Value)
	}
	return b.String()
}
