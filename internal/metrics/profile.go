package metrics

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// StartCPUProfile begins writing a CPU profile to path and returns the stop
// function that must run (typically deferred) before the process exits, or
// the profile is truncated. Both CLIs hang their -cpuprofile flag on this.
func StartCPUProfile(path string) (stop func(), err error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("cpu profile: %w", err)
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return nil, fmt.Errorf("cpu profile: %w", err)
	}
	return func() {
		pprof.StopCPUProfile()
		f.Close()
	}, nil
}

// WriteHeapProfile writes an allocation profile to path, after a GC so the
// heap figures reflect live data rather than collection timing. Call it at
// the end of the run (-memprofile).
func WriteHeapProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("heap profile: %w", err)
	}
	defer f.Close()
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		return fmt.Errorf("heap profile: %w", err)
	}
	return nil
}
