// Package metrics is the deterministic observability spine of the
// repository: a registry of named counters, gauges, fixed-bucket histograms
// and timers whose snapshots can be golden-tested like everything else.
//
// Determinism contract. A snapshot is a pure function of the *set* of
// recorded events, not of the order or the thread they were recorded on:
//
//   - names are reported in sorted order, independent of registration order
//     (and hence of goroutine scheduling);
//   - histogram buckets are fixed at declaration, and histograms accumulate
//     only integer bucket counts — never floating-point sums, whose value
//     would depend on accumulation order;
//   - counter and gauge updates are commutative integer operations
//     (adds and atomic max), so merged totals are schedule-independent;
//   - the only nondeterministic quantities — wall-clock and allocation
//     figures on timers — are segregated into fields that
//     Snapshot.ZeroTimings clears, so tests compare everything else
//     byte-for-byte.
//
// The experiment grid merges per-slot instrumentation from concurrently
// executing cells into one shared registry; the contract above is what makes
// a Workers=8 run snapshot byte-identical to a Workers=1 run (pinned by
// TestMetricsWorkersDeterminism in internal/experiment).
package metrics

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotone event count. All methods are safe for concurrent
// use; adds commute, so totals are deterministic regardless of scheduling.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by delta.
func (c *Counter) Add(delta int64) { c.v.Add(delta) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a last-written integer level (e.g. a configured size, a high
// watermark via SetMax). Concurrent Set calls race by design — use gauges
// for values written from one place, or use SetMax, which commutes.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// SetMax raises the gauge to v if v is larger — a commutative update safe
// for concurrent writers.
func (g *Gauge) SetMax(v int64) {
	for {
		cur := g.v.Load()
		if v <= cur || g.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Value returns the current level.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram counts observations into buckets fixed at declaration. Bucket i
// counts observations v <= Bounds[i] (and above every earlier bound); one
// implicit overflow bucket counts v above the last bound. Only integer
// counts are kept — no floating-point sum — so merged histograms are
// independent of observation order.
type Histogram struct {
	bounds []float64
	counts []atomic.Int64 // len(bounds)+1; the last is the overflow bucket
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i].Add(1)
}

// Count returns the total number of observations.
func (h *Histogram) Count() int64 {
	var t int64
	for i := range h.counts {
		t += h.counts[i].Load()
	}
	return t
}

// Bounds returns the declared bucket upper bounds (aliasing the internal
// slice; treat as read-only).
func (h *Histogram) Bounds() []float64 { return h.bounds }

// Timer accumulates wall-clock and allocation cost of repeated operations.
// The invocation count is deterministic; the nanosecond and byte totals are
// inherently machine- and schedule-dependent, and land in snapshot fields
// that ZeroTimings clears.
type Timer struct {
	count atomic.Int64
	ns    atomic.Int64
	bytes atomic.Int64
}

// Observe records one operation of duration d that allocated bytes bytes
// (pass 0 when allocation tracking is off).
func (t *Timer) Observe(d time.Duration, bytes int64) {
	t.count.Add(1)
	t.ns.Add(int64(d))
	t.bytes.Add(bytes)
}

// Time starts a wall-clock measurement; the returned stop function records
// it. Allocation cost is not measured.
func (t *Timer) Time() (stop func()) {
	start := time.Now()
	return func() { t.Observe(time.Since(start), 0) }
}

// Count returns the number of recorded operations.
func (t *Timer) Count() int64 { return t.count.Load() }

// TotalNs returns the accumulated wall-clock nanoseconds.
func (t *Timer) TotalNs() int64 { return t.ns.Load() }

// Registry is a namespace of metrics. Lookups are get-or-create and safe
// for concurrent use; the instruments themselves are lock-free, so hot
// paths should resolve their handles once and hold them.
type Registry struct {
	mu     sync.Mutex
	ctrs   map[string]*Counter
	gauges map[string]*Gauge
	hists  map[string]*Histogram
	timers map[string]*Timer
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		ctrs:   make(map[string]*Counter),
		gauges: make(map[string]*Gauge),
		hists:  make(map[string]*Histogram),
		timers: make(map[string]*Timer),
	}
}

// Counter returns the counter with the given name, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.ctrs[name]
	if !ok {
		c = &Counter{}
		r.ctrs[name] = c
	}
	return c
}

// CounterValue returns the value of a counter without registering it; a
// never-touched name reads 0 and stays absent from snapshots.
func (r *Registry) CounterValue(name string) int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.ctrs[name]; ok {
		return c.Value()
	}
	return 0
}

// Gauge returns the gauge with the given name, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the histogram with the given name, creating it with the
// given strictly increasing bucket upper bounds on first use. Buckets are
// declaration-fixed: a second declaration must repeat the same bounds, and
// a mismatch panics — silently merging differently-bucketed histograms
// would corrupt every consumer.
func (r *Registry) Histogram(name string, bounds ...float64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("metrics: histogram %q bounds must be strictly increasing, got %v", name, bounds))
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if ok {
		if len(h.bounds) != len(bounds) {
			panic(fmt.Sprintf("metrics: histogram %q redeclared with %d buckets, have %d", name, len(bounds), len(h.bounds)))
		}
		for i := range bounds {
			if h.bounds[i] != bounds[i] {
				panic(fmt.Sprintf("metrics: histogram %q redeclared with bounds %v, have %v", name, bounds, h.bounds))
			}
		}
		return h
	}
	h = &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]atomic.Int64, len(bounds)+1),
	}
	r.hists[name] = h
	return h
}

// Timer returns the timer with the given name, creating it on first use.
func (r *Registry) Timer(name string) *Timer {
	r.mu.Lock()
	defer r.mu.Unlock()
	t, ok := r.timers[name]
	if !ok {
		t = &Timer{}
		r.timers[name] = t
	}
	return t
}
