package metrics

import (
	"fmt"
	"sort"
	"strings"
)

// CounterSnapshot is one counter's state at snapshot time.
type CounterSnapshot struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// GaugeSnapshot is one gauge's state at snapshot time.
type GaugeSnapshot struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// BucketSnapshot is one histogram bucket: the count of observations at or
// below LE (and above the previous bound).
type BucketSnapshot struct {
	LE    float64 `json:"le"`
	Count int64   `json:"count"`
}

// HistogramSnapshot is one histogram's state at snapshot time. Over counts
// the observations above the last declared bound (JSON has no +Inf, so the
// overflow bucket is a separate field).
type HistogramSnapshot struct {
	Name    string           `json:"name"`
	Count   int64            `json:"count"`
	Buckets []BucketSnapshot `json:"buckets"`
	Over    int64            `json:"over"`
}

// TimerSnapshot is one timer's state at snapshot time. Count is
// deterministic; WallNs and AllocBytes are timing fields cleared by
// ZeroTimings.
type TimerSnapshot struct {
	Name       string `json:"name"`
	Count      int64  `json:"count"`
	WallNs     int64  `json:"wall_ns"`
	AllocBytes int64  `json:"alloc_bytes"`
}

// Snapshot is a point-in-time copy of a registry, with every section sorted
// by name. Its JSON encoding (fixed struct field order, sorted entries) and
// its String rendering are byte-stable for a fixed set of recorded events.
type Snapshot struct {
	Counters   []CounterSnapshot   `json:"counters,omitempty"`
	Gauges     []GaugeSnapshot     `json:"gauges,omitempty"`
	Histograms []HistogramSnapshot `json:"histograms,omitempty"`
	Timers     []TimerSnapshot     `json:"timers,omitempty"`
}

// Snapshot captures the registry's current state. Individual reads are
// atomic; the snapshot as a whole is not a cross-metric atomic cut, so take
// it after the instrumented work has quiesced (e.g. after a grid run
// returns) when byte-stability matters.
func (r *Registry) Snapshot() *Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := &Snapshot{}
	for name, c := range r.ctrs {
		s.Counters = append(s.Counters, CounterSnapshot{Name: name, Value: c.Value()})
	}
	for name, g := range r.gauges {
		s.Gauges = append(s.Gauges, GaugeSnapshot{Name: name, Value: g.Value()})
	}
	for name, h := range r.hists {
		hs := HistogramSnapshot{Name: name}
		for i, b := range h.bounds {
			n := h.counts[i].Load()
			hs.Buckets = append(hs.Buckets, BucketSnapshot{LE: b, Count: n})
			hs.Count += n
		}
		hs.Over = h.counts[len(h.bounds)].Load()
		hs.Count += hs.Over
		s.Histograms = append(s.Histograms, hs)
	}
	for name, t := range r.timers {
		s.Timers = append(s.Timers, TimerSnapshot{
			Name:       name,
			Count:      t.count.Load(),
			WallNs:     t.ns.Load(),
			AllocBytes: t.bytes.Load(),
		})
	}
	sort.Slice(s.Counters, func(i, j int) bool { return s.Counters[i].Name < s.Counters[j].Name })
	sort.Slice(s.Gauges, func(i, j int) bool { return s.Gauges[i].Name < s.Gauges[j].Name })
	sort.Slice(s.Histograms, func(i, j int) bool { return s.Histograms[i].Name < s.Histograms[j].Name })
	sort.Slice(s.Timers, func(i, j int) bool { return s.Timers[i].Name < s.Timers[j].Name })
	return s
}

// ZeroTimings clears every machine-dependent field in place — timer
// wall-clock and allocation totals — and returns the snapshot, so tests and
// cross-worker comparisons see only deterministic quantities.
func (s *Snapshot) ZeroTimings() *Snapshot {
	for i := range s.Timers {
		s.Timers[i].WallNs = 0
		s.Timers[i].AllocBytes = 0
	}
	return s
}

// MergeSnapshot folds a snapshot's contents into the registry: counter
// values and timer totals add, histogram buckets add count by count (the
// histogram is declared with the snapshot's bounds when absent), and gauges
// merge by maximum — the only commutative gauge combination, matching the
// SetMax discipline concurrent writers must already follow. All updates
// commute, so replaying per-cell snapshots from a checkpoint in any
// completion order yields the same registry state as having run the cells.
func (r *Registry) MergeSnapshot(s *Snapshot) {
	for _, c := range s.Counters {
		r.Counter(c.Name).Add(c.Value)
	}
	for _, g := range s.Gauges {
		r.Gauge(g.Name).SetMax(g.Value)
	}
	for _, hs := range s.Histograms {
		bounds := make([]float64, len(hs.Buckets))
		for i, b := range hs.Buckets {
			bounds[i] = b.LE
		}
		h := r.Histogram(hs.Name, bounds...)
		for i, b := range hs.Buckets {
			h.counts[i].Add(b.Count)
		}
		h.counts[len(h.bounds)].Add(hs.Over)
	}
	for _, ts := range s.Timers {
		t := r.Timer(ts.Name)
		t.count.Add(ts.Count)
		t.ns.Add(ts.WallNs)
		t.bytes.Add(ts.AllocBytes)
	}
}

// String renders the snapshot as sorted text lines, one metric per line.
func (s *Snapshot) String() string {
	var b strings.Builder
	for _, c := range s.Counters {
		fmt.Fprintf(&b, "counter %s = %d\n", c.Name, c.Value)
	}
	for _, g := range s.Gauges {
		fmt.Fprintf(&b, "gauge %s = %d\n", g.Name, g.Value)
	}
	for _, h := range s.Histograms {
		fmt.Fprintf(&b, "histogram %s count=%d [", h.Name, h.Count)
		for i, bk := range h.Buckets {
			if i > 0 {
				b.WriteByte(' ')
			}
			fmt.Fprintf(&b, "le%g:%d", bk.LE, bk.Count)
		}
		fmt.Fprintf(&b, " over:%d]\n", h.Over)
	}
	for _, t := range s.Timers {
		fmt.Fprintf(&b, "timer %s count=%d wall_ns=%d alloc_bytes=%d\n",
			t.Name, t.Count, t.WallNs, t.AllocBytes)
	}
	return b.String()
}
