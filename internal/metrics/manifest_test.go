package metrics

import (
	"bytes"
	"path/filepath"
	"testing"
	"time"
)

func testManifest() *Manifest {
	r := NewRegistry()
	r.Counter("sim/tx").Add(42)
	r.Histogram("sim/tx_per_slot", 1, 4, 16).Observe(3)
	r.Timer("grid/cell").Observe(5*time.Millisecond, 1024)
	m := NewManifest("test")
	m.SetConfig("seeds", 5)
	m.SetConfig("workers", 8)
	m.Metrics = r.Snapshot()
	m.Counters = map[string]int64{"crashes": 2, "restarts": 2}
	m.Cells = []CellTiming{
		{Experiment: "table1", Cell: 0, Label: "row=0 seed=0", Attempts: 1, WallNs: 123, AllocBytes: 456},
		{Experiment: "table1", Cell: 1, Label: "row=0 seed=1", Attempts: 2, Failed: true, WallNs: 99},
	}
	m.Failures = []string{"FAILED(table1 cell 1 [row=0 seed=1] after 2 attempt(s)): boom"}
	m.WallNs = 1e9
	return m
}

func TestManifestRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "m.json")
	m := testManifest()
	if err := m.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Tool != "test" || got.Config["seeds"] != "5" || got.Counters["crashes"] != 2 {
		t.Fatalf("round trip lost fields: %+v", got)
	}
	if len(got.Cells) != 2 || got.Cells[1].Attempts != 2 || !got.Cells[1].Failed {
		t.Fatalf("round trip lost cells: %+v", got.Cells)
	}
	if got.Metrics == nil || len(got.Metrics.Counters) != 1 || got.Metrics.Counters[0].Value != 42 {
		t.Fatalf("round trip lost metrics: %+v", got.Metrics)
	}
}

func TestManifestZeroTimingsDeterminism(t *testing.T) {
	// Two manifests recording the same events with different timings must
	// encode byte-identically after ZeroTimings — the contract the
	// cross-worker golden test in internal/experiment builds on.
	a := testManifest()
	b := testManifest()
	b.WallNs = 7
	b.Started = "2026-01-01T00:00:00Z"
	b.Cells[0].WallNs = 1
	b.Cells[0].AllocBytes = 2
	b.Metrics.Timers[0].WallNs = 5
	ab, err := a.ZeroTimings().MarshalIndent()
	if err != nil {
		t.Fatal(err)
	}
	bb, err := b.ZeroTimings().MarshalIndent()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ab, bb) {
		t.Fatalf("zeroed manifests differ:\n--- a ---\n%s--- b ---\n%s", ab, bb)
	}
}

func TestVersionNonEmpty(t *testing.T) {
	if Version() == "" {
		t.Fatal("Version() must never be empty")
	}
}
