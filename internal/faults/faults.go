// Package faults is the deterministic fault-injection engine of the
// simulator: a declarative Spec of fault classes compiled into a
// sim.Injector that the tick loop consults (see sim.Config.Injector).
//
// The paper proves robustness against a *polite* adversary — unlimited
// churn and rate-limited edge dynamics (Thm 4.1, Thm 5.1), the classes
// internal/dynamics generates. This package supplies the harsher classes
// related work treats as the real test of contention management under
// interference: crash/restart schedules, stuck-transmitter jammers, deaf
// receivers, sensing corruption (false CD/ACK/NTD readings), random
// message drops and clock stalls.
//
// Every decision is drawn from an rng.Source stream forked per fault class
// and re-forked per (node, tick) — never from a sequentially advanced
// stream — so each decision is a pure function of (fault seed, class,
// node, tick). Fault-injected runs therefore remain pure functions of
// (topology seed, run seed, fault seed) and replay byte-identically across
// worker counts, which Table 12's golden snapshot and the workers
// determinism test pin.
package faults

import (
	"udwn/internal/metrics"
	"udwn/internal/rng"
	"udwn/internal/sim"
)

// JamKind marks the undecodable carrier frames of stuck transmitters. The
// engine drops them at every receiver, so no protocol ever sees one; the
// constant exists so forced actions are identifiable in traces and tests.
const JamKind int32 = -0x7a

// Spec declaratively describes the faults of one run. The zero value
// injects nothing. All rates are per-tick probabilities in [0,1]; all
// subsets are chosen by per-node coin flips keyed off Seed, so membership
// is a pure function of (Seed, node id).
type Spec struct {
	// Seed keys every fault decision (class streams are forked from it).
	Seed uint64

	// CrashRate crashes each unprotected alive node per tick; a crashed
	// node restarts CrashDowntime ticks later as a fresh churn arrival
	// (fresh protocol state and random stream). Zero downtime defaults to
	// 50 ticks. Nodes killed by external dynamics are not restarted.
	CrashRate     float64
	CrashDowntime int

	// JamFraction makes a random subset of nodes stuck transmitters from
	// tick JamFrom onward: they force an undecodable carrier onto the air
	// every slot (pure interference) while their protocols freeze.
	JamFraction float64
	JamFrom     int

	// DeafFraction makes a random subset of nodes deaf receivers: their
	// radios decode nothing, so neighbours keep retrying mass delivery
	// against them forever.
	DeafFraction float64

	// DropRate loses each otherwise-successful reception independently —
	// ground truth, so it voids mass delivery and coverage too.
	DropRate float64

	// SenseRate flips each of the CD/ACK/NTD sensing outcomes
	// independently per observation (false busy, false ack, false near
	// receipt). Flips apply to whatever primitives the run grants.
	SenseRate float64

	// StallRate freezes an unprotected node's clock per tick for StallLen
	// ticks (zero defaults to 50): the protocol neither acts nor observes
	// while the radio keeps receiving. Stalls do not re-trigger while one
	// is in progress.
	StallRate float64
	StallLen  int

	// Protect lists node ids exempt from every node-targeted fault class
	// (crash, jam, deaf, stall, sensing corruption) — e.g. a broadcast
	// source or a measured victim. Channel-level drops (DropRate) still
	// apply to everyone.
	Protect []int
}

// Enabled reports whether the spec injects any fault at all.
func (sp Spec) Enabled() bool {
	return sp.CrashRate > 0 || sp.JamFraction > 0 || sp.DeafFraction > 0 ||
		sp.DropRate > 0 || sp.SenseRate > 0 || sp.StallRate > 0
}

// Engine compiles a Spec into a sim.Injector. One engine drives exactly one
// simulation (it holds per-node schedule state); it is not safe for
// concurrent use, matching the Sim it is bound to.
type Engine struct {
	spec    Spec
	protect map[int]bool

	// Per-class decision streams. These are only ever forked (a pure
	// read), never advanced, so every decision is order-independent.
	crash, jam, deaf, drop, sense, stall *rng.Source

	// Per-node schedule state, sized at the first BeginTick.
	restartAt []int // tick at which an engine-crashed node revives; -1 = up
	stallEnd  []int // first tick at which the node's clock runs again

	ctr *metrics.Counters
}

var (
	_ sim.Injector          = (*Engine)(nil)
	_ sim.QuiescentInjector = (*Engine)(nil)
)

// New compiles spec into an engine.
func New(spec Spec) *Engine {
	if spec.CrashDowntime <= 0 {
		spec.CrashDowntime = 50
	}
	if spec.StallLen <= 0 {
		spec.StallLen = 50
	}
	root := rng.New(spec.Seed)
	e := &Engine{
		spec:    spec,
		protect: make(map[int]bool, len(spec.Protect)),
		crash:   root.Fork(0xc4a5),
		jam:     root.Fork(0x1a33),
		deaf:    root.Fork(0xdeaf),
		drop:    root.Fork(0xd409),
		sense:   root.Fork(0x5e45),
		stall:   root.Fork(0x57a1),
		ctr:     metrics.NewCounters(),
	}
	for _, v := range spec.Protect {
		e.protect[v] = true
	}
	return e
}

// Counters exposes the injected-event counters ("crashes", "restarts",
// "jam-slots", "deaf-drops", "dropped-recv", "sense-flips", "stalls").
func (e *Engine) Counters() *metrics.Counters { return e.ctr }

// at derives the pure decision stream of one fault class at (node, tick).
func at(base *rng.Source, v, tick int) *rng.Source {
	return base.Fork(uint64(v)).Fork(uint64(tick))
}

// jammedNode reports membership in the stuck-transmitter subset — a pure
// function of (Seed, v), independent of time.
func (e *Engine) jammedNode(v int) bool {
	return e.spec.JamFraction > 0 && !e.protect[v] &&
		e.jam.Fork(uint64(v)).Bernoulli(e.spec.JamFraction)
}

// deafNode reports membership in the deaf-receiver subset.
func (e *Engine) deafNode(v int) bool {
	return e.spec.DeafFraction > 0 && !e.protect[v] &&
		e.deaf.Fork(uint64(v)).Bernoulli(e.spec.DeafFraction)
}

// Faulty reports whether node v is permanently fault-ridden — a stuck
// transmitter or deaf receiver. Experiments exclude such nodes from
// completion targets, since they can never correctly participate; the
// interference and retry pressure they exert on healthy nodes is exactly
// what Table 12 measures.
func (e *Engine) Faulty(v int) bool {
	return e.jammedNode(v) || e.deafNode(v)
}

// size lazily allocates per-node schedule state once n is known.
func (e *Engine) size(n int) {
	if e.restartAt != nil {
		return
	}
	e.restartAt = make([]int, n)
	e.stallEnd = make([]int, n)
	for v := range e.restartAt {
		e.restartAt[v] = -1
	}
}

// BeginTick runs the crash/restart and stall schedules. Nodes are visited
// in increasing id order, so the schedule itself is deterministic.
func (e *Engine) BeginTick(s *sim.Sim, tick int) {
	e.size(s.N())
	n := s.N()
	for v := 0; v < n; v++ {
		if e.restartAt[v] >= 0 {
			if tick >= e.restartAt[v] {
				e.restartAt[v] = -1
				s.Revive(v)
				e.ctr.Add("restarts", 1)
			}
			continue // down, or up only as of this tick: no new crash yet
		}
		if e.spec.CrashRate > 0 && !e.protect[v] && s.Alive(v) &&
			at(e.crash, v, tick).Bernoulli(e.spec.CrashRate) {
			s.Kill(v)
			e.restartAt[v] = tick + e.spec.CrashDowntime
			e.ctr.Add("crashes", 1)
			continue
		}
		if e.spec.StallRate > 0 && !e.protect[v] && tick >= e.stallEnd[v] &&
			at(e.stall, v, tick).Bernoulli(e.spec.StallRate) {
			e.stallEnd[v] = tick + e.spec.StallLen
			e.ctr.Add("stalls", 1)
		}
	}
}

// QuiescentUntil implements sim.QuiescentInjector. Crash, stall and sensing
// corruption draw per-tick decisions (and count events) even in silent
// slots, so any of those rates forfeits the promise entirely. Jammers are
// inert — no seizures, no counters — strictly before JamFrom. Deaf
// receivers and message drops act only on candidate receptions, of which a
// silent slot has none, so they are unconditionally quiet.
func (e *Engine) QuiescentUntil(now int) int {
	if e.spec.CrashRate > 0 || e.spec.StallRate > 0 || e.spec.SenseRate > 0 {
		return now
	}
	if e.spec.JamFraction > 0 && now < e.spec.JamFrom {
		return e.spec.JamFrom
	}
	if e.spec.JamFraction > 0 {
		return now
	}
	return now + (1 << 30)
}

// Seized hijacks jammed and stalled nodes: a jammer forces an undecodable
// carrier onto the air, a stalled node forces a no-op; either way the
// protocol freezes for the tick.
func (e *Engine) Seized(v, tick int) (sim.Action, bool) {
	if tick >= e.spec.JamFrom && e.jammedNode(v) {
		e.ctr.Add("jam-slots", 1)
		return sim.Action{Transmit: true, Msg: sim.Message{Kind: JamKind}}, true
	}
	if e.stallEnd != nil && tick < e.stallEnd[v] {
		return sim.Action{}, true
	}
	return sim.Action{}, false
}

// DropRecv loses receptions at deaf receivers, suppresses decoding of jam
// carriers everywhere, and applies the random per-reception drop rate.
func (e *Engine) DropRecv(u, v, tick int) bool {
	if tick >= e.spec.JamFrom && e.jammedNode(u) {
		return true // the jam carrier is pure interference, never a frame
	}
	if e.deafNode(v) {
		e.ctr.Add("deaf-drops", 1)
		return true
	}
	if e.spec.DropRate > 0 &&
		e.drop.Fork(uint64(u)<<32^uint64(v)).Fork(uint64(tick)).Bernoulli(e.spec.DropRate) {
		e.ctr.Add("dropped-recv", 1)
		return true
	}
	return false
}

// Observation corrupts sensing: each of the CD, ACK and NTD outcomes flips
// independently with probability SenseRate. The ACK field is only
// meaningful for transmitters and NTD only for listeners, so each draw
// targets the fields the slot could have populated.
func (e *Engine) Observation(v, tick int, obs *sim.Observation) {
	q := e.spec.SenseRate
	if q <= 0 || e.protect[v] {
		return
	}
	h := at(e.sense, v, tick)
	if h.Bernoulli(q) {
		obs.Busy = !obs.Busy
		e.ctr.Add("sense-flips", 1)
	}
	if obs.Transmitted {
		if h.Bernoulli(q) {
			obs.Acked = !obs.Acked
			e.ctr.Add("sense-flips", 1)
		}
	} else if h.Bernoulli(q) {
		obs.NTD = !obs.NTD
		e.ctr.Add("sense-flips", 1)
	}
}
