package faults

import (
	"fmt"
	"strings"
	"testing"

	"udwn/internal/geom"
	"udwn/internal/metric"
	"udwn/internal/model"
	"udwn/internal/sim"
)

// scriptProto transmits according to a fixed per-tick script and records
// every observation, so tests can see exactly what the protocol layer
// experienced under injection.
type scriptProto struct {
	transmitAt map[int]bool
	acts       int
	obs        []sim.Observation
}

func (p *scriptProto) Act(n *sim.Node, slot int) sim.Action {
	t := p.acts
	p.acts++
	if p.transmitAt[t] {
		return sim.Action{Transmit: true, Msg: sim.Message{Kind: 1, Data: int64(n.ID)}}
	}
	return sim.Action{}
}

func (p *scriptProto) Observe(n *sim.Node, slot int, obs *sim.Observation) {
	cp := *obs
	cp.Received = append([]sim.Recv(nil), obs.Received...)
	p.obs = append(p.obs, cp)
}

// lineSim builds three collinear nodes at x = 0, 1, 2 under SINR with P=8,
// β=1, N=1, ζ=3 (R = 2, RB = 1.8 at ε=0.1) — the same micro-topology the
// sim package tests use — wired to the given fault engine.
func lineSim(t *testing.T, eng *Engine, scripts map[int]map[int]bool) *sim.Sim {
	t.Helper()
	e := metric.NewEuclidean([]geom.Point{{X: 0, Y: 0}, {X: 1, Y: 0}, {X: 2, Y: 0}})
	s, err := sim.New(sim.Config{
		Space: e,
		Model: model.NewSINR(8, 1, 1, 3, 0.1),
		P:     8, Zeta: 3, Noise: 1, Eps: 0.1,
		Seed:       1,
		Primitives: sim.CD | sim.ACK | sim.NTD,
		Injector:   eng,
	}, func(id int) sim.Protocol {
		return &scriptProto{transmitAt: scripts[id]}
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func proto(s *sim.Sim, id int) *scriptProto { return s.Protocol(id).(*scriptProto) }

func TestSpecEnabled(t *testing.T) {
	if (Spec{}).Enabled() {
		t.Fatal("zero spec must be disabled")
	}
	for i, sp := range []Spec{
		{CrashRate: 0.1}, {JamFraction: 0.1}, {DeafFraction: 0.1},
		{DropRate: 0.1}, {SenseRate: 0.1}, {StallRate: 0.1},
	} {
		if !sp.Enabled() {
			t.Fatalf("spec %d must be enabled", i)
		}
	}
}

// A jammed node forces a carrier onto the air every slot while its protocol
// freezes; the carrier is sensed as interference but never decoded.
func TestJammerTransmitsButIsNeverDecoded(t *testing.T) {
	eng := New(Spec{Seed: 3, JamFraction: 1, Protect: []int{1, 2}})
	s := lineSim(t, eng, nil)
	const ticks = 5
	for i := 0; i < ticks; i++ {
		s.Step()
	}
	if got := eng.Counters().Get("jam-slots"); got != ticks {
		t.Fatalf("jam-slots = %d, want %d (node 0 jams every slot)", got, ticks)
	}
	if acts := proto(s, 0).acts; acts != 0 {
		t.Fatalf("jammed protocol acted %d times, want 0 (frozen)", acts)
	}
	p1 := proto(s, 1)
	if len(p1.obs) != ticks {
		t.Fatalf("node 1 observed %d slots, want %d", len(p1.obs), ticks)
	}
	for i, obs := range p1.obs {
		if len(obs.Received) != 0 {
			t.Fatalf("tick %d: node 1 decoded a jam carrier: %+v", i, obs.Received)
		}
		if !obs.Busy {
			t.Fatalf("tick %d: node 1 must sense the jam carrier as Busy", i)
		}
	}
	if s.FirstDecode(1) != -1 {
		t.Fatal("jam carriers must not mark receivers informed")
	}
	if s.FirstMassDelivery(0) != -1 {
		t.Fatal("an undecodable carrier must not count as mass delivery")
	}
	if !eng.Faulty(0) || eng.Faulty(1) || eng.Faulty(2) {
		t.Fatal("Faulty must flag exactly the jammed node")
	}
}

// A deaf receiver decodes nothing, which voids its neighbours' mass
// deliveries too (ground truth, not a protocol-level illusion).
func TestDeafReceiverBlocksDecodeAndMassDelivery(t *testing.T) {
	eng := New(Spec{Seed: 5, DeafFraction: 1, Protect: []int{0}})
	s := lineSim(t, eng, map[int]map[int]bool{0: {0: true}})
	s.Step()
	if got := len(proto(s, 1).obs[0].Received); got != 0 {
		t.Fatalf("deaf node decoded %d messages", got)
	}
	if s.FirstDecode(1) != -1 {
		t.Fatal("deaf node must not be informed")
	}
	if s.FirstMassDelivery(0) != -1 {
		t.Fatal("delivery to a deaf neighbourhood must not count")
	}
	if eng.Counters().Get("deaf-drops") == 0 {
		t.Fatal("deaf-drops counter not incremented")
	}
	if eng.Faulty(0) || !eng.Faulty(1) {
		t.Fatal("Faulty must flag the deaf nodes and spare the protected one")
	}
}

// DropRate 1 loses every reception.
func TestDropRateOneBlocksEverything(t *testing.T) {
	eng := New(Spec{Seed: 7, DropRate: 1})
	s := lineSim(t, eng, map[int]map[int]bool{0: {0: true, 2: true}})
	for i := 0; i < 4; i++ {
		s.Step()
	}
	if s.FirstDecode(1) != -1 || s.FirstMassDelivery(0) != -1 {
		t.Fatal("DropRate=1 must suppress all decodes and deliveries")
	}
	if eng.Counters().Get("dropped-recv") == 0 {
		t.Fatal("dropped-recv counter not incremented")
	}
}

// CrashRate 1 crashes every unprotected node at tick 0; they revive
// CrashDowntime ticks later with fresh protocol state, then crash again.
func TestCrashRestartCycle(t *testing.T) {
	eng := New(Spec{Seed: 11, CrashRate: 1, CrashDowntime: 3, Protect: []int{0}})
	s := lineSim(t, eng, nil)
	p1 := proto(s, 1)

	s.Step() // tick 0: nodes 1, 2 crash
	if s.Alive(1) || s.Alive(2) {
		t.Fatal("unprotected nodes must crash at tick 0 under CrashRate=1")
	}
	if !s.Alive(0) {
		t.Fatal("protected node must never crash")
	}
	s.Step() // tick 1: still down
	s.Step() // tick 2: still down
	if s.Alive(1) {
		t.Fatal("node 1 revived before its downtime elapsed")
	}
	s.Step() // tick 3: revive fires (then CrashRate=1 re-crashes at tick 4)
	if !s.Alive(1) || !s.Alive(2) {
		t.Fatal("nodes must restart after CrashDowntime ticks")
	}
	if proto(s, 1) == p1 {
		t.Fatal("restart must install a fresh protocol instance (churn arrival)")
	}
	if c := eng.Counters().Get("crashes"); c != 2 {
		t.Fatalf("crashes = %d, want 2", c)
	}
	if r := eng.Counters().Get("restarts"); r != 2 {
		t.Fatalf("restarts = %d, want 2", r)
	}
}

// StallRate 1 freezes every clock from tick 0: protocols neither act nor
// observe for StallLen ticks, then run again.
func TestStallFreezesProtocols(t *testing.T) {
	eng := New(Spec{Seed: 13, StallRate: 1, StallLen: 4})
	s := lineSim(t, eng, map[int]map[int]bool{0: {0: true, 1: true}})
	for i := 0; i < 4; i++ { // ticks 0..3: everyone stalled
		s.Step()
	}
	for v := 0; v < 3; v++ {
		if acts := proto(s, v).acts; acts != 0 {
			t.Fatalf("stalled node %d acted %d times", v, acts)
		}
		if !s.Alive(v) {
			t.Fatalf("stalls must not kill node %d", v)
		}
	}
	if c := eng.Counters().Get("stalls"); c != 3 {
		t.Fatalf("stalls = %d, want 3 (one per node at tick 0)", c)
	}
	s.Step() // tick 4: stalls over (and immediately re-drawn for tick 4? no:
	// the re-draw happens in BeginTick(4) since stallEnd=4, so tick 4 stalls
	// again under StallRate=1.
	if acts := proto(s, 0).acts; acts != 0 {
		t.Fatalf("StallRate=1 must immediately re-stall, yet node 0 acted %d times", acts)
	}
}

// SenseRate 1 flips every CD reading (and the ACK/NTD field the slot could
// have populated), exactly two flips per acting node per tick.
func TestSenseCorruptionFlipsReadings(t *testing.T) {
	eng := New(Spec{Seed: 17, SenseRate: 1})
	s := lineSim(t, eng, nil) // silent network: true readings are Idle / no NTD
	const ticks = 3
	for i := 0; i < ticks; i++ {
		s.Step()
	}
	for v := 0; v < 3; v++ {
		for i, obs := range proto(s, v).obs {
			if !obs.Busy {
				t.Fatalf("node %d tick %d: silent channel must read Busy under inverted sensing", v, i)
			}
			if !obs.NTD {
				t.Fatalf("node %d tick %d: NTD must be flipped for listeners", v, i)
			}
		}
	}
	if c := eng.Counters().Get("sense-flips"); c != 3*ticks*2 {
		t.Fatalf("sense-flips = %d, want %d (2 per node-tick)", c, 3*ticks*2)
	}
}

// fingerprint serialises everything observable about a run: per-node
// observations plus the engine's counters.
func fingerprint(s *sim.Sim, eng *Engine) string {
	var b strings.Builder
	for v := 0; v < s.N(); v++ {
		fmt.Fprintf(&b, "node %d acts=%d obs=%+v\n", v, proto(s, v).acts, proto(s, v).obs)
	}
	fmt.Fprintf(&b, "counters: %s\n", eng.Counters())
	fmt.Fprintf(&b, "first: %d %d %d / %d %d %d\n",
		s.FirstDecode(0), s.FirstDecode(1), s.FirstDecode(2),
		s.FirstMassDelivery(0), s.FirstMassDelivery(1), s.FirstMassDelivery(2))
	return b.String()
}

// Fault-injected runs are pure functions of the fault seed: identical seeds
// replay byte-identically, different seeds diverge.
func TestEngineDeterminism(t *testing.T) {
	run := func(faultSeed uint64) string {
		eng := New(Spec{Seed: faultSeed, DropRate: 0.5, SenseRate: 0.3,
			CrashRate: 0.05, CrashDowntime: 3, Protect: []int{0}})
		s := lineSim(t, eng, map[int]map[int]bool{0: {0: true, 2: true, 5: true, 9: true}})
		for i := 0; i < 12; i++ {
			s.Step()
		}
		return fingerprint(s, eng)
	}
	a, b := run(42), run(42)
	if a != b {
		t.Fatalf("same fault seed diverged:\n--- run 1 ---\n%s--- run 2 ---\n%s", a, b)
	}
	if c := run(43); c == a {
		t.Fatal("different fault seeds produced identical runs")
	}
}

// Subset membership is a pure per-node function of the seed: two engines
// with the same spec agree node by node, and protection always wins.
func TestMembershipDeterministicAndProtected(t *testing.T) {
	spec := Spec{Seed: 99, JamFraction: 0.4, DeafFraction: 0.3}
	a, b := New(spec), New(spec)
	faulty := 0
	for v := 0; v < 200; v++ {
		if a.Faulty(v) != b.Faulty(v) {
			t.Fatalf("engines disagree on node %d", v)
		}
		if a.Faulty(v) {
			faulty++
		}
	}
	if faulty < 60 || faulty > 160 {
		t.Fatalf("faulty fraction implausible: %d/200 under jam 0.4 + deaf 0.3", faulty)
	}
	spec.Protect = []int{0, 1, 2, 3, 4}
	p := New(spec)
	for v := 0; v < 5; v++ {
		if p.Faulty(v) {
			t.Fatalf("protected node %d marked faulty", v)
		}
	}
}
