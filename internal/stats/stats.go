// Package stats provides the aggregation and formatting helpers the
// experiment harness uses: summary statistics over repeated seeded runs and
// plain-text tables/series matching the rows the paper-shaped experiments
// report.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Summary holds order statistics of a sample.
type Summary struct {
	N      int
	Mean   float64
	Std    float64
	Min    float64
	Median float64
	P95    float64
	Max    float64
}

// Summarize computes summary statistics; it returns a zero Summary for an
// empty sample.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs)}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	s.Min = sorted[0]
	s.Max = sorted[len(sorted)-1]
	s.Median = Percentile(sorted, 50)
	s.P95 = Percentile(sorted, 95)
	sum := 0.0
	for _, x := range sorted {
		sum += x
	}
	s.Mean = sum / float64(len(sorted))
	if len(sorted) > 1 {
		ss := 0.0
		for _, x := range sorted {
			d := x - s.Mean
			ss += d * d
		}
		s.Std = math.Sqrt(ss / float64(len(sorted)-1))
	}
	return s
}

// Percentile returns the p-th percentile (0-100) of an ascending-sorted
// sample using linear interpolation. It panics on an empty sample.
func Percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		panic("stats: percentile of empty sample")
	}
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	pos := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	frac := pos - float64(lo)
	if lo+1 >= len(sorted) {
		return sorted[lo]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// Mean returns the arithmetic mean, or 0 for an empty sample.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// LinearFit returns the least-squares slope and intercept of y over x.
// It panics if the slices differ in length or have fewer than 2 points.
func LinearFit(x, y []float64) (slope, intercept float64) {
	if len(x) != len(y) || len(x) < 2 {
		panic("stats: LinearFit needs two equal-length samples of >= 2 points")
	}
	mx, my := Mean(x), Mean(y)
	num, den := 0.0, 0.0
	for i := range x {
		num += (x[i] - mx) * (y[i] - my)
		den += (x[i] - mx) * (x[i] - mx)
	}
	if den == 0 {
		return 0, my
	}
	slope = num / den
	return slope, my - slope*mx
}

// Table is a simple column-aligned text table.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
	Notes   []string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; cells beyond the header count are kept as-is.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// AddRowf appends a row of formatted values: strings pass through, float64
// renders with %.1f, ints with %d, everything else with %v.
func (t *Table) AddRowf(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = fmt.Sprintf("%.1f", v)
		case int:
			row[i] = fmt.Sprintf("%d", v)
		case int64:
			row[i] = fmt.Sprintf("%d", v)
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// AddNote appends a footnote line.
func (t *Table) AddNote(format string, args ...interface{}) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			// The last cell is written unpadded so lines carry no trailing
			// whitespace.
			if i < len(widths) && i != len(cells)-1 {
				fmt.Fprintf(&b, "%-*s", widths[i], c)
			} else {
				b.WriteString(c)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	total := len(widths) - 1
	if total < 0 {
		total = 0
	}
	for _, w := range widths {
		total += w + 1
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}
