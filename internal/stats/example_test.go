package stats_test

import (
	"fmt"

	"udwn/internal/stats"
)

// ExampleTable renders a small result table.
func ExampleTable() {
	t := stats.NewTable("Demo", "n", "rounds")
	t.AddRowf(128, 206.0)
	t.AddRowf(256, 246.4)
	t.AddNote("two rows")
	fmt.Print(t)
	// Output:
	// Demo
	// n    rounds
	// ------------
	// 128  206.0
	// 256  246.4
	// note: two rows
}

// ExampleSummarize computes order statistics of a sample.
func ExampleSummarize() {
	s := stats.Summarize([]float64{1, 2, 3, 4, 100})
	fmt.Println(s.N, s.Median, s.Max)
	// Output: 5 3 100
}
