package stats

import (
	"math"
	"sort"
	"strings"
	"testing"
	"testing/quick"

	"udwn/internal/rng"
)

func TestSummarizeBasics(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Min != 1 || s.Max != 5 || s.Mean != 3 || s.Median != 3 {
		t.Fatalf("summary = %+v", s)
	}
	if math.Abs(s.Std-math.Sqrt(2.5)) > 1e-12 {
		t.Fatalf("std = %v", s.Std)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	if s := Summarize(nil); s.N != 0 || s.Mean != 0 {
		t.Fatalf("empty summary = %+v", s)
	}
}

func TestSummarizeSingle(t *testing.T) {
	s := Summarize([]float64{7})
	if s.N != 1 || s.Mean != 7 || s.Std != 0 || s.Median != 7 || s.P95 != 7 {
		t.Fatalf("single summary = %+v", s)
	}
}

func TestSummarizeDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Summarize(xs)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatal("Summarize must not sort its input in place")
	}
}

func TestPercentile(t *testing.T) {
	sorted := []float64{10, 20, 30, 40}
	cases := []struct {
		p    float64
		want float64
	}{
		{0, 10}, {100, 40}, {50, 25}, {25, 17.5}, {-5, 10}, {150, 40},
	}
	for _, c := range cases {
		if got := Percentile(sorted, c.p); math.Abs(got-c.want) > 1e-12 {
			t.Fatalf("P%v = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestPercentilePanicsEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Percentile(nil, 50)
}

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Fatal("Mean(nil) != 0")
	}
	if Mean([]float64{2, 4}) != 3 {
		t.Fatal("Mean wrong")
	}
}

func TestLinearFit(t *testing.T) {
	// y = 2x + 1 exactly.
	x := []float64{1, 2, 3, 4}
	y := []float64{3, 5, 7, 9}
	slope, intercept := LinearFit(x, y)
	if math.Abs(slope-2) > 1e-12 || math.Abs(intercept-1) > 1e-12 {
		t.Fatalf("fit = (%v, %v)", slope, intercept)
	}
	// Degenerate x: slope 0, intercept = mean(y).
	slope, intercept = LinearFit([]float64{5, 5}, []float64{1, 3})
	if slope != 0 || intercept != 2 {
		t.Fatalf("degenerate fit = (%v, %v)", slope, intercept)
	}
}

func TestLinearFitPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	LinearFit([]float64{1}, []float64{2})
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("My Title", "col1", "column2")
	tb.AddRow("a", "b")
	tb.AddRowf(42, 3.14159)
	tb.AddNote("footnote %d", 7)
	out := tb.String()
	for _, want := range []string{"My Title", "col1", "column2", "a", "42", "3.1", "note: footnote 7"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
	// Columns align: every data line at least as wide as the header line's
	// first column width.
	lines := strings.Split(out, "\n")
	if len(lines) < 5 {
		t.Fatalf("too few lines: %d", len(lines))
	}
}

func TestTableAddRowfTypes(t *testing.T) {
	tb := NewTable("", "a", "b", "c", "d")
	tb.AddRowf("s", 1.5, 7, int64(9))
	if got := tb.Rows[0]; got[0] != "s" || got[1] != "1.5" || got[2] != "7" || got[3] != "9" {
		t.Fatalf("row = %v", got)
	}
}

// Property: percentile is monotone in p and bounded by min/max.
func TestPercentileProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 1 + r.Intn(50)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = r.Range(-100, 100)
		}
		sort.Float64s(xs)
		prev := xs[0]
		for p := 0.0; p <= 100; p += 5 {
			v := Percentile(xs, p)
			if v < prev-1e-9 || v < xs[0] || v > xs[n-1] {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: Summarize invariants min ≤ median ≤ p95 ≤ max and mean within
// [min, max].
func TestSummarizeProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 1 + r.Intn(100)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = r.Range(-1000, 1000)
		}
		s := Summarize(xs)
		return s.Min <= s.Median && s.Median <= s.P95+1e-9 && s.P95 <= s.Max &&
			s.Mean >= s.Min-1e-9 && s.Mean <= s.Max+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
