package sim

import (
	"testing"
	"testing/quick"

	"udwn/internal/metric"
	"udwn/internal/model"
	"udwn/internal/rng"
	"udwn/internal/workload"
)

// recorder wraps fixedProb and keeps every observation for invariant checks.
type recorder struct {
	p    float64
	obs  []Observation
	hear int
}

func (r *recorder) Act(n *Node, slot int) Action {
	return Action{Transmit: n.RNG.Bernoulli(r.p), Msg: Message{Kind: 1, Data: int64(n.ID)}}
}

func (r *recorder) Observe(n *Node, slot int, obs *Observation) {
	cp := *obs
	cp.Received = append([]Recv(nil), obs.Received...)
	r.obs = append(r.obs, cp)
}

func (r *recorder) Hear(n *Node, recv []Recv) { r.hear += len(recv) }

// TestSimInvariants drives random configurations and checks structural
// invariants of every slot:
//
//  1. half-duplex: a transmitter never receives;
//  2. provenance: every received message was sent by a transmitter of that
//     slot, from within decoding range;
//  3. ACK soundness: an ACK in a slot implies the sim recorded a mass
//     delivery for that node in that slot;
//  4. counters: total transmissions equal the sum of per-node counts.
func TestSimInvariants(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 16 + r.Intn(48)
		pts := workload.UniformDisc(n, 25, seed)
		var mdl model.Model
		if r.Bernoulli(0.5) {
			mdl = model.NewSINR(1500, 1.5, 1, 3, 0.1)
		} else {
			mdl = model.NewUDG(10)
		}
		s, err := New(Config{
			Space: metric.NewEuclidean(pts),
			Model: mdl,
			P:     1500, Zeta: 3, Noise: 1, Eps: 0.1,
			Seed:       seed,
			Async:      r.Bernoulli(0.3),
			Primitives: CD | ACK | NTD,
		}, func(int) Protocol { return &recorder{p: 0.2} })
		if err != nil {
			return false
		}
		const ticks = 40
		s.Run(ticks)

		var totalTx int64
		for v := 0; v < n; v++ {
			rec := s.Protocol(v).(*recorder)
			tx := 0
			for _, o := range rec.obs {
				if o.Transmitted {
					tx++
					if len(o.Received) != 0 {
						return false // half-duplex violated
					}
					if o.Acked && s.FirstMassDelivery(v) < 0 {
						return false // ACK without any recorded delivery
					}
				}
				for _, rc := range o.Received {
					if rc.From == v {
						return false // self-reception
					}
					if rc.Msg.Data != int64(rc.From) {
						return false // provenance: payload carries sender id
					}
					if s.Space().Dist(rc.From, v) > mdl.R()+1e-9 {
						return false // decode beyond the model's range
					}
				}
			}
			if tx != s.Transmissions(v) {
				return false // per-node counter mismatch
			}
			totalTx += int64(tx)
		}
		return totalTx == s.TotalTransmissions()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestMassDeliveryConsistency: whenever the sim records a mass delivery for
// u at tick t, every alive neighbour of u must have that tick at or after
// its first-decode time.
func TestMassDeliveryConsistency(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 12 + r.Intn(24)
		pts := workload.UniformDisc(n, 20, seed^0x77)
		s, err := New(Config{
			Space: metric.NewEuclidean(pts),
			Model: model.NewSINR(1500, 1.5, 1, 3, 0.1),
			P:     1500, Zeta: 3, Noise: 1, Eps: 0.1,
			Seed: seed,
		}, func(int) Protocol { return &recorder{p: 0.15} })
		if err != nil {
			return false
		}
		s.Run(60)
		for u := 0; u < n; u++ {
			mt := s.FirstMassDelivery(u)
			if mt < 0 {
				continue
			}
			for _, v := range s.Neighbors(u) {
				fd := s.FirstDecode(v)
				if fd < 0 || fd > mt {
					return false // neighbour decoded nothing by then
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestCoverageSupersetOfMass: with coverage tracking, an atomic mass
// delivery implies full coverage by the same tick.
func TestCoverageSupersetOfMass(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 12 + r.Intn(24)
		pts := workload.UniformDisc(n, 20, seed^0x99)
		s, err := New(Config{
			Space: metric.NewEuclidean(pts),
			Model: model.NewSINR(1500, 1.5, 1, 3, 0.1),
			P:     1500, Zeta: 3, Noise: 1, Eps: 0.1,
			Seed:          seed,
			TrackCoverage: true,
		}, func(int) Protocol { return &recorder{p: 0.15} })
		if err != nil {
			return false
		}
		s.Run(60)
		for u := 0; u < n; u++ {
			mt := s.FirstMassDelivery(u)
			ct := s.FirstFullCoverage(u)
			if mt >= 0 && (ct < 0 || ct > mt) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
