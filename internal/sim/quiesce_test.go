package sim

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"udwn/internal/geom"
	"udwn/internal/metric"
	"udwn/internal/metrics"
	"udwn/internal/model"
	"udwn/internal/workload"
)

// sleeper is a periodic transmitter honouring the Quiescent contract: it
// transmits, sleeps `period` slots, and repeats until its transmission
// budget is spent, after which it is silent forever. It consumes no RNG, so
// skipped slots cannot desynchronise anything.
type sleeper struct {
	period int // silent slots between transmissions
	c      int // silent slots remaining before the next transmission
	left   int // transmissions remaining
}

var _ Quiescent = (*sleeper)(nil)

func (s *sleeper) Act(n *Node, slot int) Action {
	if s.left == 0 {
		return Action{}
	}
	if s.c > 0 {
		s.c--
		return Action{}
	}
	s.c = s.period
	s.left--
	return Action{Transmit: true, Msg: Message{Kind: 3, Data: int64(n.ID)}}
}

func (s *sleeper) Observe(n *Node, slot int, obs *Observation) {}

func (s *sleeper) QuiescentFor() int {
	if s.left == 0 {
		return maxQuietWindow
	}
	return s.c
}

func (s *sleeper) SkipQuiet(ticks int) { s.c -= ticks }

// runQuiesce runs the quiescence scenario — mixed-phase sleepers with a long
// all-done tail, plus mid-window churn and mobility — and returns the full
// observable history (slot events, per-node outcomes, metrics snapshot) and
// the wheel statistics.
func runQuiesce(t *testing.T, mdl model.Model, prims Primitives, disable bool) (string, WheelStats) {
	t.Helper()
	const n = 30
	const ticks = 400
	var log strings.Builder
	reg := metrics.NewRegistry()
	side := workload.SideForDegree(n, 10, 10)
	pts := workload.UniformDisc(n, side, 31)
	s, err := New(Config{
		Space: metric.NewEuclidean(pts),
		Model: mdl,
		P:     1500, Zeta: 3, Noise: 1, Eps: 0.1,
		Seed:              31,
		Primitives:        prims,
		Dynamic:           true,
		TrackCoverage:     true,
		Metrics:           reg,
		DisableQuiescence: disable,
		Observer: func(ev SlotEvent) {
			fmt.Fprintf(&log, "e %d tx=%v d=%d md=%v cb=%d ci=%d a=%d nt=%d\n",
				ev.Tick, ev.Transmitters, ev.Decodes, ev.MassDeliverers,
				ev.CDBusy, ev.CDIdle, ev.Acks, ev.NTDs)
		},
	}, func(id int) Protocol {
		return &sleeper{
			period: 3 + (id%3)*3,
			c:      id % 4,
			left:   3 + id%4,
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < ticks; i++ {
		// Mutations land both mid-activity (tick 40) and deep inside the
		// all-done quiescent tail (ticks ≥ 150), so the wake-flush path is
		// exercised while a skip window is armed.
		switch i {
		case 40:
			s.Kill(5)
		case 60:
			s.Revive(5)
		case 150:
			s.Kill(11)
		case 230:
			s.Revive(11)
		case 310:
			if err := s.Move(7, geom.Point{X: side / 3, Y: side / 4}); err != nil {
				t.Fatal(err)
			}
		}
		s.Step()
	}
	for v := 0; v < s.N(); v++ {
		fmt.Fprintf(&log, "f %d %v %d %d %d %d %d %d\n", v, s.Alive(v),
			s.FirstDecode(v), s.FirstMassDelivery(v), s.Transmissions(v),
			s.MassDeliveries(v), s.FirstFullCoverage(v), s.CoverageCount(v))
	}
	fmt.Fprintf(&log, "t %d %d %d\n", s.TotalTransmissions(), s.TotalMassDeliveries(), s.InvalidOps())
	log.WriteString(reg.Snapshot().String())
	return log.String(), s.WheelStats()
}

// TestQuiescenceSkipTransparent is the metamorphic suite of the event wheel:
// a run with quiescence skipping enabled must produce the byte-identical
// observable history — slot events (including synthesised ones for skipped
// slots), decode/delivery times, coverage, metrics snapshot — as the same
// run executed slot by slot, while actually skipping a nontrivial number of
// slots.
func TestQuiescenceSkipTransparent(t *testing.T) {
	cases := []struct {
		name  string
		mdl   func() model.Model
		prims Primitives
	}{
		// CD exercises the synthesised cdIdle accounting; the SINR case
		// additionally pins the incremental field's baseline across skipped
		// windows (the wake slot diffs against the pre-window composition).
		{"udg-cd", func() model.Model { return model.NewUDG(10) }, CD | ACK | NTD},
		{"sinr-cd", func() model.Model { return model.NewSINR(1500, 1.5, 1, 3, 0.1) }, CD | ACK},
		{"sinr-lazy", func() model.Model { return model.NewSINR(1500, 1.5, 1, 3, 0.1) }, ACK},
		{"udg-bare", func() model.Model { return model.NewUDG(10) }, 0},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			wheel, ws := runQuiesce(t, tc.mdl(), tc.prims, false)
			plain, ps := runQuiesce(t, tc.mdl(), tc.prims, true)
			if wheel != plain {
				t.Fatalf("wheel and slot-by-slot histories diverge:\n%s",
					firstDiffLine(wheel, plain))
			}
			if ws.Windows == 0 || ws.SkippedSlots == 0 {
				t.Fatalf("wheel never skipped (stats %+v) — transparency test is vacuous", ws)
			}
			// The all-done tail dominates the run; most slots must be skipped.
			if ws.SkippedSlots < 100 {
				t.Errorf("wheel skipped only %d slots of the quiescent tail", ws.SkippedSlots)
			}
			if ps != (WheelStats{}) {
				t.Errorf("DisableQuiescence run recorded wheel activity: %+v", ps)
			}
		})
	}
}

// TestQuiescenceDeterministicAcrossWorkers is the purity property of the
// wheel: arm/fire order (and thus the entire history plus the wheel
// statistics) is a function of the seed alone, byte-identical across eight
// concurrent goroutines and the sequential run. Run under -race in CI.
func TestQuiescenceDeterministicAcrossWorkers(t *testing.T) {
	run := func() string {
		h, ws := runQuiesce(t, model.NewSINR(1500, 1.5, 1, 3, 0.1), CD|ACK, false)
		return fmt.Sprintf("%s\nw %d %d\n", h, ws.Windows, ws.SkippedSlots)
	}
	want := run()
	const workers = 8
	got := make([]string, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			got[w] = run()
		}(w)
	}
	wg.Wait()
	for w, g := range got {
		if g != want {
			t.Fatalf("worker %d diverged from sequential run:\n%s", w, firstDiffLine(g, want))
		}
	}
}

// TestQuiescentProtocolContracts pins the QuiescentFor/SkipQuiet algebra of
// the in-tree protocols against slot-by-slot execution: advancing a protocol
// through k silent slots via Act must leave it in the same state as one
// SkipQuiet(k), for every k within the promised window.
func TestQuiescentProtocolContracts(t *testing.T) {
	// The sleeper's own algebra, as used by the metamorphic suite above.
	for period := 1; period <= 5; period++ {
		for c := 1; c <= period; c++ {
			a := &sleeper{period: period, c: c, left: 2}
			b := &sleeper{period: period, c: c, left: 2}
			win := a.QuiescentFor()
			if win != c {
				t.Fatalf("sleeper(period=%d,c=%d).QuiescentFor() = %d", period, c, win)
			}
			n := &Node{ID: 1}
			for k := 0; k < win; k++ {
				if act := a.Act(n, 0); act.Transmit {
					t.Fatalf("sleeper transmitted inside its promised window (k=%d)", k)
				}
			}
			b.SkipQuiet(win)
			if *a != *b {
				t.Fatalf("sleeper state diverges: Act-path %+v vs SkipQuiet %+v", a, b)
			}
		}
	}
}
