package sim

import (
	"testing"

	"udwn/internal/geom"
	"udwn/internal/metric"
	"udwn/internal/model"
)

func TestCoverageDisabledByDefault(t *testing.T) {
	s := newSim(t, lineConfig(), map[int]map[int]bool{0: {0: true}})
	s.Step()
	if s.FirstFullCoverage(0) != -1 || s.CoverageCount(0) != 0 {
		t.Fatal("coverage must be inert when not tracked")
	}
}

func TestCoverageAccumulatesAcrossSlots(t *testing.T) {
	// Node 1 has neighbours 0 and 2 (RB = 1.8). It transmits at ticks 0 and
	// 2; at tick 0 node 2 is also transmitting (half-duplex, misses it), at
	// tick 2 node 2 listens. Full coverage is reached at tick 2 even though
	// no single slot was an atomic mass delivery.
	cfg := lineConfig()
	cfg.TrackCoverage = true
	s := newSim(t, cfg, map[int]map[int]bool{
		1: {0: true, 2: true},
		2: {0: true},
	})
	s.Step()
	// Tick 0: 1 and 2 transmit. Node 0 is within range of 1 only (d(2,0)=2
	// = R with strict SINR → interference from 2 at node 0 is modest; node
	// 0 may or may not decode under the combined interference).
	s.Step() // tick 1: silence
	s.Step() // tick 2: node 1 transmits alone: both neighbours decode
	if got := s.FirstFullCoverage(1); got != 2 {
		t.Fatalf("FirstFullCoverage(1) = %d, want 2", got)
	}
	if s.CoverageCount(1) < 2 {
		t.Fatalf("CoverageCount(1) = %d", s.CoverageCount(1))
	}
}

func TestCoverageMatchesMassDeliveryOnCleanSlot(t *testing.T) {
	cfg := lineConfig()
	cfg.TrackCoverage = true
	s := newSim(t, cfg, map[int]map[int]bool{0: {0: true}})
	s.Step()
	// Node 0's only RB-neighbour is node 1; a clean slot covers it at once.
	if s.FirstFullCoverage(0) != 0 {
		t.Fatalf("FirstFullCoverage(0) = %d", s.FirstFullCoverage(0))
	}
	if s.FirstMassDelivery(0) != 0 {
		t.Fatal("atomic mass delivery must also be recorded")
	}
}

func TestCoverageUnderRayleigh(t *testing.T) {
	// Under fading, atomic mass delivery may take many slots while
	// cumulative coverage completes quickly — the metric the fading
	// experiment relies on.
	pts := []geom.Point{{X: 0, Y: 0}, {X: 1.2, Y: 0}, {X: -1.2, Y: 0}}
	var s *Sim
	mdl := model.NewRayleighSINR(8, 1, 1, 3, 0.1, 5, func() int {
		if s == nil {
			return 0
		}
		return s.Tick()
	})
	cfg := Config{
		Space: metric.NewEuclidean(pts),
		Model: mdl,
		P:     8, Zeta: 3, Noise: 1, Eps: 0.1,
		Seed:          1,
		TrackCoverage: true,
	}
	always := map[int]bool{}
	for i := 0; i < 500; i++ {
		always[i] = true
	}
	var err error
	s, err = New(cfg, func(id int) Protocol {
		if id == 0 {
			return &scriptProto{transmitAt: always}
		}
		return &scriptProto{}
	})
	if err != nil {
		t.Fatal(err)
	}
	s.Run(500)
	if s.FirstFullCoverage(0) < 0 {
		t.Fatal("500 faded slots should cumulatively cover both neighbours")
	}
}
