// Package sim is the discrete, slot-based wireless network simulator the
// dissemination algorithms run on.
//
// The simulator realises the paper's execution model: nodes act in rounds
// (optionally split into slots, as the Bcast algorithm requires), decide to
// transmit with some probability, and the communication model resolves who
// decodes whom under cumulative or graph-based interference. Carrier-sensing
// primitives (CD/ACK/NTD) are computed from the slot's received signal
// strengths per Appendix B. Local synchrony — clocks running at rates within
// a factor two of each other with no global alignment — is modelled by
// per-node round periods of 2-4 ticks with random phases. Dynamics (churn
// and mobility) are driven externally through the Kill/Revive/Move mutators
// between Step calls.
package sim

import (
	"errors"
	"fmt"
	"math"
	"slices"

	"udwn/internal/geom"
	"udwn/internal/metric"
	"udwn/internal/metrics"
	"udwn/internal/model"
	"udwn/internal/pathloss"
	"udwn/internal/rng"
	"udwn/internal/sensing"
)

// Config describes a simulation.
type Config struct {
	// Space is the quasi-metric the nodes live in.
	Space metric.Space
	// Model is the communication model resolving receptions.
	Model model.Model
	// P is the uniform transmit power.
	P float64
	// Zeta is the path-loss exponent (the space's metricity).
	Zeta float64
	// Noise is the ambient noise level (only the SINR decode rule uses it;
	// sensing thresholds are noise free).
	Noise float64
	// Eps is the precision parameter ε defining the communication radius
	// R_B and the default primitive thresholds.
	Eps float64
	// SenseEps is the precision used for the ACK/NTD thresholds; zero
	// defaults to Eps. Bcast sets SenseEps = Eps/2 for its higher-precision
	// primitives.
	SenseEps float64
	// Slots is the number of slots per round (1 or 2); zero defaults to 1.
	Slots int
	// Async enables locally-synchronous mode: each node owns a round period
	// of 2-4 ticks with a random phase. Incompatible with Slots > 1.
	Async bool
	// Seed keys all randomness of the run.
	Seed uint64
	// Primitives selects the sensing primitives granted to protocols.
	Primitives Primitives
	// Adversary resolves under-specified outcomes; nil defaults to
	// PessimisticAdversary.
	Adversary Adversary
	// Dynamic marks the space as mutable (mobility): power and neighbour
	// caches are disabled so every slot reflects current distances.
	Dynamic bool
	// BusyScale scales the CD busy threshold. The paper's I_cd is "a
	// constant" fixed by the analysis; the scale calibrates it (values < 1
	// make carrier sensing more sensitive, lowering the contention
	// equilibrium). Zero defaults to 1.
	BusyScale float64
	// AckScale scales the ACK interference threshold. Values > 1 stay
	// within Def. ACK: the positive outcome still requires verified
	// delivery, so loosening the threshold only resolves the definition's
	// adversarial region favourably. Zero defaults to 1.
	AckScale float64
	// Channels is the number of orthogonal frequency channels (0 or 1 =
	// single channel). Multi-channel operation splits contention: nodes
	// tune per slot via Action.Channel and only same-channel transmissions
	// interfere or are decodable. Incompatible with Async.
	Channels int
	// Observer, when non-nil, is invoked after every resolved slot with a
	// summary event; used for tracing (see trace.JSONL) and live
	// instrumentation. The event's slices alias scratch buffers.
	Observer func(ev SlotEvent)
	// TrackCoverage records cumulative pairwise receipts so experiments can
	// measure *eventual* neighbourhood coverage (every neighbour received
	// the node's message at least once, over any set of slots) in addition
	// to atomic mass delivery. Costs O(n²) bits; used by the fading
	// experiments, where per-slot atomic delivery is unrealistically strict.
	TrackCoverage bool
	// Injector, when non-nil, hooks deterministic fault injection into the
	// tick loop (crash schedules, jammers, message drops, sensing
	// corruption; see the Injector interface and internal/faults).
	Injector Injector
	// FieldMode selects the Phase 2 interference-field driver: the
	// incremental engine (default; see field.go) or the brute per-slot
	// recompute. Both produce byte-identical runs — the recompute driver is
	// the reference the differential suites compare against and the
	// fallback if an incremental-field bug is ever suspected.
	FieldMode FieldMode
	// FieldEpoch is the incremental field's forced-rebuild period in slots
	// (0 → 256): every FieldEpoch-th slot recomputes the whole field from
	// scratch regardless of what changed. The engine's canonical-order
	// re-summation cannot drift, so this is a defense-in-depth rail, not a
	// correctness knob; 1 degenerates to per-slot recompute.
	FieldEpoch int
	// DisableQuiescence turns off the quiescent-slot wheel (see quiesce.go),
	// forcing every slot to execute even when all protocols and the
	// injector promise inertness. Runs are byte-identical either way; the
	// switch exists for the differential suites and debugging.
	DisableQuiescence bool
	// IndexMetrics additionally registers the "sim/index/*" spatial-index
	// work counters (transmitter queries, candidate enumerations, count and
	// neighbour queries), the "sim/field/*" incremental-field outcome
	// counters and the "sim/wheel/*" quiescence-skipping counters with
	// Metrics. Off by default so existing registry snapshots keep their
	// instrument set; the same numbers are always available
	// programmatically via (*Sim).IndexStats, FieldStats and WheelStats.
	IndexMetrics bool
	// Metrics, when non-nil, receives per-slot instrumentation under the
	// "sim/" prefix: slot/transmission/decode/mass-delivery counters, the
	// sensing outcomes protocols observed (CD busy/idle, ACK hit/miss,
	// NTD), and contention histograms (realised transmitters per slot and
	// total protocol probability mass). Handles are resolved once at
	// construction; the uninstrumented hot path pays a nil check per slot
	// (see BenchmarkStepInstrumented). Registries may be shared across
	// simulations — every update is a commutative integer operation, so
	// merged snapshots stay deterministic under concurrent runs.
	Metrics *metrics.Registry
	// Cancel, when non-nil, is polled at the top of every Step; once it
	// reports true the step panics with a Cancelled sentinel instead of
	// running the slot. This is the cooperative cancellation hook the
	// experiment grid threads from its per-cell contexts (see
	// internal/experiment): it is what lets a deadline or drain actually
	// stop a running simulation rather than abandon its goroutine. The
	// callback must be cheap and safe to call every tick.
	Cancel func() bool
}

// Cancelled is the panic value Step raises when Config.Cancel reports
// cancellation. It deliberately unwinds through protocol code — a cancelled
// simulation has no consistent result to return — and is recovered by the
// driver that installed the Cancel hook (the experiment grid treats it as a
// cancelled cell, never as a protocol bug).
type Cancelled struct {
	// Tick is the tick at which cancellation was observed.
	Tick int
}

func (c Cancelled) String() string {
	return fmt.Sprintf("sim: run cancelled at tick %d", c.Tick)
}

// Sim is a running simulation. It is not safe for concurrent use.
type Sim struct {
	cfg   Config
	n     int
	field *pathloss.Field
	th    sensing.Thresholds
	rb    float64 // measurement neighbourhood radius, CommRadius(Eps)
	rbAck float64 // ACK neighbourhood radius, CommRadius(SenseEps)

	alive      []bool
	nodes      []Node
	protos     []Protocol
	factory    ProtocolFactory
	root       *rng.Source
	generation []uint64
	adv        Adversary

	tick   int
	slots  int
	period []int
	phase  []int

	// met holds pre-resolved metric handles; nil when uninstrumented.
	met *stepMetrics

	// grid is the spatial index over the positions of alive nodes; non-nil
	// only when the space is a *metric.Euclidean (euclid caches the
	// downcast). Kill/Revive/Move keep it incrementally synchronized, so
	// dynamic runs get the same query asymptotics as static ones. When nil,
	// every spatial query falls back to the O(n) scan path.
	grid   *geom.Grid
	euclid *metric.Euclidean

	// maxDecode is the model's hard decode cutoff (model.RangeLimiter), or 0
	// when the model declares none; it gates the transmitter-outward
	// reception fast path in Step.
	maxDecode float64

	// needPower reports whether the per-slot interference field (Phase 2)
	// must be built: false only for model.FieldOblivious models running
	// without any power-sensing primitive.
	needPower bool

	// idx accumulates spatial-index work counters; idxFlushed tracks what
	// has already been exported to the metrics registry. viewFallbacks
	// counts TransmittersWithin calls that exceeded the per-radius cache.
	idx           IndexStats
	idxFlushed    IndexStats
	viewFallbacks int64

	// Incremental interference field (see field.go). accSlot == nil means no
	// engine: either the field is unneeded, or FieldRecompute keeps
	// totalPower current by brute force. fSlot is the stamp of the slot the
	// engine last advanced to (tick+1, so stamps are positive).
	accSlot      []int64 // slot whose composition totalPower[v] reflects
	vDirty       []int64 // last slot receiver v itself was invalidated
	chanDirty    []int64 // last slot channel c's tx composition changed
	chanPrev     []int8  // previous slot's tuned channel (multi-channel only)
	chanLastPrev []int32 // merge-walk scratch: max prev tx id per channel
	prevTx       []int   // previous slot's transmitters, ascending
	prevScale    []float64
	prevChan     []int8
	addedBuf     []int // transmitters new this slot, ascending
	invalBuf     []int // receivers to rematerialize this slot
	movedBuf     []int // nodes moved since the last fieldAdvance
	fSlot        int64
	fieldEpoch   int
	broadField   bool
	fstat        FieldStats
	fstatFlushed FieldStats

	// Quiescence wheel (see quiesce.go). While quietLeft > 0 Step resolves
	// slots in O(1); quietElapsed counts the skipped slots not yet delivered
	// to the protocols via SkipQuiet. busyAtZero disables the wheel for
	// (degenerate) threshold settings where even a silent carrier reads
	// busy.
	quietLeft    int
	quietElapsed int
	quietCDIdle  int
	quietPM      float64
	busyAtZero   bool
	wstat        WheelStats
	wstatFlushed WheelStats

	// invalidOps counts mutator calls (Kill/Revive/Move) that named an
	// out-of-range node id and were rejected as no-ops.
	invalidOps int64

	// neigh caches, per node, the out-neighbours within rbAck (the larger
	// of the two radii); nil when the space is dynamic.
	neigh [][]int32

	// Measurements.
	firstMass   []int32
	firstDecode []int32
	txCount     []int32
	massCount   []int32
	totalTx     int64
	totalMass   int64

	// Cumulative coverage (TrackCoverage only): covered[u*n+v] records that
	// v decoded a transmission of u at least once; firstCover[u] is the
	// tick at which u's alive RB-neighbourhood became fully covered.
	covered    []bool
	firstCover []int32

	// Scratch buffers reused across slots.
	txBuf      []int
	actedBuf   []int
	totalPower []float64
	recvBuf    [][]Recv
	massBuf    []bool
	massAckBuf []bool
	scaleBuf   []float64
	chanBuf    []int8
	chanTx     [][]int
	seizedBuf  []bool
	msgBuf     []Message // message per transmitter id; valid where isTxBuf
	isTxBuf    []bool    // transmitter membership this slot
	nbrBuf     []int     // grid-backed forEachNeighbor scratch
	massDelBuf []int     // SlotEvent.MassDeliverers scratch (observer runs only)
	decodersBuf []int    // SlotEvent.Decoders scratch (observer runs only)
	views      []slotView
	obsBuf     Observation
}

// IndexStats counts the spatial-index work a simulation has performed, for
// run diagnostics and the opt-in "sim/index/*" metrics.
type IndexStats struct {
	// TxQueries is the number of transmitter-outward reception queries
	// (one per transmitter per slot on the indexed path).
	TxQueries int64
	// Candidates is the number of candidate listeners those queries
	// enumerated before filtering and decoding.
	Candidates int64
	// CountQueries is the number of grid-backed TransmittersWithin point
	// counts the slot views resolved.
	CountQueries int64
	// NeighborQueries is the number of grid-backed forEachNeighbor
	// enumerations (dynamic spaces only; static spaces use the cache).
	NeighborQueries int64
}

// New constructs a simulation. Protocol instances for all nodes are created
// immediately via factory; all nodes start alive.
func New(cfg Config, factory ProtocolFactory) (*Sim, error) {
	if cfg.Space == nil {
		return nil, errors.New("sim: Config.Space is required")
	}
	if cfg.Model == nil {
		return nil, errors.New("sim: Config.Model is required")
	}
	if factory == nil {
		return nil, errors.New("sim: protocol factory is required")
	}
	if cfg.P <= 0 || cfg.Zeta <= 0 {
		return nil, fmt.Errorf("sim: P and Zeta must be positive (got %v, %v)", cfg.P, cfg.Zeta)
	}
	if cfg.Eps <= 0 || cfg.Eps >= 1 {
		return nil, fmt.Errorf("sim: Eps must be in (0,1), got %v", cfg.Eps)
	}
	if cfg.SenseEps == 0 {
		cfg.SenseEps = cfg.Eps
	}
	if cfg.SenseEps <= 0 || cfg.SenseEps >= 1 {
		return nil, fmt.Errorf("sim: SenseEps must be in (0,1), got %v", cfg.SenseEps)
	}
	if cfg.Slots == 0 {
		cfg.Slots = 1
	}
	if cfg.Slots < 1 || cfg.Slots > 4 {
		return nil, fmt.Errorf("sim: Slots must be in [1,4], got %d", cfg.Slots)
	}
	if cfg.Async && cfg.Slots > 1 {
		return nil, errors.New("sim: Async mode supports only single-slot rounds")
	}
	if cfg.Channels == 0 {
		cfg.Channels = 1
	}
	if cfg.Channels < 1 || cfg.Channels > 16 {
		return nil, fmt.Errorf("sim: Channels must be in [1,16], got %d", cfg.Channels)
	}
	if cfg.Async && cfg.Channels > 1 {
		return nil, errors.New("sim: multi-channel operation requires synchronous rounds")
	}
	if cfg.Adversary == nil {
		cfg.Adversary = PessimisticAdversary{}
	}
	if cfg.FieldMode != FieldIncremental && cfg.FieldMode != FieldRecompute {
		return nil, fmt.Errorf("sim: unknown FieldMode %d", int(cfg.FieldMode))
	}
	if cfg.FieldEpoch < 0 {
		return nil, fmt.Errorf("sim: FieldEpoch must be non-negative, got %d", cfg.FieldEpoch)
	}

	n := cfg.Space.Len()
	s := &Sim{
		cfg:         cfg,
		n:           n,
		field:       pathloss.NewField(cfg.Space, cfg.P, cfg.Zeta, pathloss.Options{Dynamic: cfg.Dynamic}),
		rb:          cfg.Model.CommRadius(cfg.Eps),
		rbAck:       cfg.Model.CommRadius(cfg.SenseEps),
		alive:       make([]bool, n),
		nodes:       make([]Node, n),
		protos:      make([]Protocol, n),
		factory:     factory,
		root:        rng.New(cfg.Seed),
		generation:  make([]uint64, n),
		adv:         cfg.Adversary,
		slots:       cfg.Slots,
		firstMass:   make([]int32, n),
		firstDecode: make([]int32, n),
		txCount:     make([]int32, n),
		massCount:   make([]int32, n),
		totalPower:  make([]float64, n),
		recvBuf:     make([][]Recv, n),
		massBuf:     make([]bool, n),
		massAckBuf:  make([]bool, n),
	}
	s.th = sensing.NewThresholds(cfg.P, cfg.Zeta, cfg.SenseEps, cfg.Model.R(), cfg.Model.Params())
	if cfg.BusyScale > 0 {
		s.th.BusyRSS *= cfg.BusyScale
	}
	if cfg.AckScale > 0 {
		s.th.AckRSS *= cfg.AckScale
	}

	for i := 0; i < n; i++ {
		s.alive[i] = true
		s.nodes[i] = Node{ID: i, RNG: s.root.Fork(uint64(i))}
		s.protos[i] = factory(i)
		s.firstMass[i] = -1
		s.firstDecode[i] = -1
	}
	if cfg.TrackCoverage {
		s.covered = make([]bool, n*n)
		s.firstCover = make([]int32, n)
		for i := range s.firstCover {
			s.firstCover[i] = -1
		}
	}
	if cfg.Async {
		s.period = make([]int, n)
		s.phase = make([]int, n)
		clk := s.root.Fork(^uint64(0))
		for i := 0; i < n; i++ {
			s.period[i] = 2 + clk.Intn(3) // {2,3,4}: rates within a factor 2
			s.phase[i] = clk.Intn(s.period[i])
		}
	}
	if e, ok := cfg.Space.(*metric.Euclidean); ok {
		if cell := cfg.Model.R(); cell > 0 && !math.IsInf(cell, 0) && !math.IsNaN(cell) {
			s.euclid = e
			pts := make([]geom.Point, n)
			for i := range pts {
				pts[i] = e.Point(i)
			}
			s.grid = geom.NewGrid(pts, cell)
		}
	}
	if rl, ok := cfg.Model.(model.RangeLimiter); ok {
		if r := rl.MaxDecodeRange(); r > 0 && !math.IsInf(r, 0) && !math.IsNaN(r) {
			s.maxDecode = r
		}
	}
	s.needPower = true
	if fo, ok := cfg.Model.(model.FieldOblivious); ok && fo.FieldOblivious() &&
		!cfg.Primitives.Has(CD) && !cfg.Primitives.Has(ACK) {
		s.needPower = false
	}
	s.fieldEpoch = cfg.FieldEpoch
	if s.needPower && cfg.FieldMode == FieldIncremental {
		s.fieldInit()
	}
	s.busyAtZero = cfg.Primitives.Has(CD) && s.th.Busy(0)
	if !cfg.Dynamic {
		s.buildNeighbours()
	}
	if cfg.Metrics != nil {
		s.met = newStepMetrics(cfg.Metrics, cfg.IndexMetrics)
	}
	return s, nil
}

// indexSlack inflates every grid query radius before the exact per-pair
// distance re-check. The grid compares squared distances while the rest of
// the simulator compares sqrt-ed ones; at a radius boundary the two can
// disagree by an ulp, so the index enumerates a hair beyond the radius and
// the exact metric.Space.Dist comparison — the same expression the scan
// paths evaluate — makes the final call. Grid-backed and scan results are
// therefore byte-identical, not merely approximately equal.
const indexSlack = 1 + 1e-9

// buildNeighbours precomputes directed out-neighbour lists at radius rbAck.
// Distances are static whenever the space is, even under churn, so the cache
// survives Kill/Revive; liveness is filtered at use time.
func (s *Sim) buildNeighbours() {
	s.neigh = make([][]int32, s.n)
	if e, ok := s.cfg.Space.(*metric.Euclidean); ok {
		pts := make([]geom.Point, s.n)
		for i := range pts {
			pts[i] = e.Point(i)
		}
		grid := geom.NewGrid(pts, s.rbAck)
		buf := make([]int, 0, 64)
		for u := 0; u < s.n; u++ {
			buf = grid.Within(pts[u], s.rbAck, buf[:0])
			for _, v := range buf {
				if v != u {
					s.neigh[u] = append(s.neigh[u], int32(v))
				}
			}
		}
		return
	}
	for u := 0; u < s.n; u++ {
		for v := 0; v < s.n; v++ {
			if v != u && s.cfg.Space.Dist(u, v) <= s.rbAck {
				s.neigh[u] = append(s.neigh[u], int32(v))
			}
		}
	}
}

// N returns the number of node slots (alive or not).
func (s *Sim) N() int { return s.n }

// Tick returns the number of completed ticks.
func (s *Sim) Tick() int { return s.tick }

// Round returns the number of completed rounds (ticks divided by slots per
// round; in async mode rounds are per node, so this is just ticks).
func (s *Sim) Round() int { return s.tick / s.slots }

// Model returns the communication model.
func (s *Sim) Model() model.Model { return s.cfg.Model }

// Space returns the quasi-metric space.
func (s *Sim) Space() metric.Space { return s.cfg.Space }

// CommRadius returns the dissemination neighbourhood radius R_B.
func (s *Sim) CommRadius() float64 { return s.rb }

// Thresholds returns the sensing thresholds in force.
func (s *Sim) Thresholds() sensing.Thresholds { return s.th }

// Alive reports whether node v is currently in the network.
func (s *Sim) Alive(v int) bool { return s.alive[v] }

// AliveCount returns the number of alive nodes.
func (s *Sim) AliveCount() int {
	c := 0
	for _, a := range s.alive {
		if a {
			c++
		}
	}
	return c
}

// Protocol returns node v's protocol instance, for state inspection by
// experiments.
func (s *Sim) Protocol(v int) Protocol { return s.protos[v] }

// Kill removes node v from the network (churn departure). Killing a dead
// node is a no-op, as is an out-of-range id (counted by InvalidOps) — the
// mutators face raw CLI and driver input and must not panic on bad ids.
func (s *Sim) Kill(v int) {
	if v < 0 || v >= s.n {
		s.invalidOps++
		return
	}
	s.wakeQuiet()
	s.alive[v] = false
	if s.grid != nil {
		s.grid.Remove(v)
	}
}

// Revive returns node v to the network with a fresh protocol instance and a
// fresh random stream, modelling a churn arrival that starts from the
// algorithm's initial configuration. Out-of-range ids are no-ops counted by
// InvalidOps.
func (s *Sim) Revive(v int) {
	if v < 0 || v >= s.n {
		s.invalidOps++
		return
	}
	if s.alive[v] {
		return
	}
	s.wakeQuiet()
	s.alive[v] = true
	s.generation[v]++
	s.nodes[v] = Node{ID: v, RNG: s.root.Fork(uint64(v) ^ s.generation[v]<<40)}
	s.protos[v] = s.factory(v)
	if s.grid != nil {
		s.grid.Insert(v, s.euclid.Point(v))
	}
}

// InvalidOps returns how many Kill/Revive/Move calls named an out-of-range
// node id and were rejected as no-ops, for surfacing in run diagnostics.
func (s *Sim) InvalidOps() int64 { return s.invalidOps }

// Move relocates node v (mobility edge dynamics). It requires a Euclidean
// space constructed with Dynamic: true. Out-of-range ids return an error
// and are counted by InvalidOps.
func (s *Sim) Move(v int, p geom.Point) error {
	if v < 0 || v >= s.n {
		s.invalidOps++
		return fmt.Errorf("sim: Move: node id %d out of range [0,%d)", v, s.n)
	}
	if !s.cfg.Dynamic {
		return errors.New("sim: Move requires Config.Dynamic")
	}
	e, ok := s.cfg.Space.(*metric.Euclidean)
	if !ok {
		return errors.New("sim: Move requires a Euclidean space")
	}
	s.wakeQuiet()
	s.fieldNoteMove(v)
	e.SetPoint(v, p)
	if s.grid != nil {
		// Dead nodes are absent from the index; Grid.Move then just records
		// the new position, which the Revive-time Insert picks up.
		s.grid.Move(v, p)
	}
	return nil
}

// FirstMassDelivery returns the tick at which node v first mass-delivered
// (transmitted and every alive neighbour decoded), or -1.
func (s *Sim) FirstMassDelivery(v int) int { return int(s.firstMass[v]) }

// FirstDecode returns the tick at which node v first decoded any message,
// or -1. For broadcast runs this is the moment v became informed.
func (s *Sim) FirstDecode(v int) int { return int(s.firstDecode[v]) }

// MarkInformed force-sets node v's first-decode tick if unset; used to seed
// the broadcast source.
func (s *Sim) MarkInformed(v int) {
	if s.firstDecode[v] < 0 {
		s.firstDecode[v] = int32(s.tick)
	}
}

// Transmissions returns the number of transmissions node v has made.
func (s *Sim) Transmissions(v int) int { return int(s.txCount[v]) }

// TotalTransmissions returns the number of transmissions across all nodes.
func (s *Sim) TotalTransmissions() int64 { return s.totalTx }

// MassDeliveries returns how many times node v mass-delivered.
func (s *Sim) MassDeliveries(v int) int { return int(s.massCount[v]) }

// TotalMassDeliveries returns the total number of mass deliveries.
func (s *Sim) TotalMassDeliveries() int64 { return s.totalMass }

// Neighbors returns the alive out-neighbours of u at the measurement radius
// R_B. The returned slice is freshly allocated.
func (s *Sim) Neighbors(u int) []int {
	var out []int
	s.forEachNeighbor(u, s.rb, func(v int) {
		out = append(out, v)
	})
	return out
}

// NeighborCount returns |N(u)| over alive nodes.
func (s *Sim) NeighborCount(u int) int {
	c := 0
	s.forEachNeighbor(u, s.rb, func(int) { c++ })
	return c
}

// forEachNeighbor visits all alive v != u with d(u,v) <= r, using the cache
// when available (the cache holds radius rbAck ≥ rb ≥ any r we query).
// Dynamic Euclidean spaces have no cache but do have the live grid index:
// candidates come from the index (inflated by indexSlack), pass the same
// exact Dist check as the scan path, and are visited in ascending id order —
// so membership and order match the brute scan exactly. fn must not call
// forEachNeighbor reentrantly (shared scratch buffer).
func (s *Sim) forEachNeighbor(u int, r float64, fn func(v int)) {
	if s.neigh != nil && r <= s.rbAck {
		for _, v := range s.neigh[u] {
			if s.alive[v] && s.cfg.Space.Dist(u, int(v)) <= r {
				fn(int(v))
			}
		}
		return
	}
	if s.grid != nil {
		s.idx.NeighborQueries++
		s.nbrBuf = s.nbrBuf[:0]
		it := s.grid.IterWithin(s.euclid.Point(u), r*indexSlack)
		for {
			v, ok := it.Next()
			if !ok {
				break
			}
			if v != u && s.alive[v] && s.cfg.Space.Dist(u, v) <= r {
				s.nbrBuf = append(s.nbrBuf, v)
			}
		}
		slices.Sort(s.nbrBuf)
		for _, v := range s.nbrBuf {
			fn(v)
		}
		return
	}
	for v := 0; v < s.n; v++ {
		if v != u && s.alive[v] && s.cfg.Space.Dist(u, v) <= r {
			fn(v)
		}
	}
}

// FirstFullCoverage returns the tick at which every alive R_B-neighbour of
// u had cumulatively received u's transmission at least once, or -1. Only
// available with Config.TrackCoverage.
func (s *Sim) FirstFullCoverage(u int) int {
	if s.firstCover == nil {
		return -1
	}
	return int(s.firstCover[u])
}

// CoverageCount returns how many nodes have ever decoded a transmission of
// u. Only available with Config.TrackCoverage.
func (s *Sim) CoverageCount(u int) int {
	if s.covered == nil {
		return 0
	}
	c := 0
	for v := 0; v < s.n; v++ {
		if s.covered[u*s.n+v] {
			c++
		}
	}
	return c
}

// recordCoverage marks (u → v) and re-evaluates u's full-coverage tick.
func (s *Sim) recordCoverage(u, v int) {
	if s.covered == nil || s.covered[u*s.n+v] {
		return
	}
	s.covered[u*s.n+v] = true
	if s.firstCover[u] >= 0 {
		return
	}
	full := true
	s.forEachNeighbor(u, s.rb, func(w int) {
		if !s.covered[u*s.n+w] {
			full = false
		}
	})
	if full {
		s.firstCover[u] = int32(s.tick)
	}
}

// Contention returns the sum of transmission probabilities of alive nodes
// whose distance towards v is below radius (the paper's P^ρ_t(v) when
// radius = ρR). Probabilities are read from protocols implementing
// ProbReporter; others count as zero. Intended for instrumentation.
func (s *Sim) Contention(v int, radius float64) float64 {
	total := 0.0
	for w := 0; w < s.n; w++ {
		if w == v || !s.alive[w] {
			continue
		}
		if s.cfg.Space.Dist(w, v) >= radius {
			continue
		}
		if pr, ok := s.protos[w].(ProbReporter); ok {
			total += pr.TransmitProb()
		}
	}
	if pr, ok := s.protos[v].(ProbReporter); ok && s.alive[v] {
		total += pr.TransmitProb()
	}
	return total
}

// ProbReporter is implemented by protocols that expose their current
// transmission probability, enabling contention instrumentation.
type ProbReporter interface {
	TransmitProb() float64
}

// IndexMode reports how the simulation resolves spatial queries: "grid"
// when the live spatial index is active (Euclidean space with a positive
// model radius), "scan" otherwise.
func (s *Sim) IndexMode() string {
	if s.grid != nil {
		return "grid"
	}
	return "scan"
}

// IndexStats returns the cumulative spatial-index work counters.
func (s *Sim) IndexStats() IndexStats { return s.idx }

// ViewRadiusFallbacks returns how many TransmittersWithin queries exceeded
// the slot view's two-radius cache and fell back to a direct count. The
// shipped models use at most two distinct radii, so a non-zero value flags
// a model whose query pattern defeats the cache.
func (s *Sim) ViewRadiusFallbacks() int64 { return s.viewFallbacks }

// noteRadiusFallback records a TransmittersWithin radius-cache miss. The
// "sim/view/radius_fallback" counter is registered lazily on first use so
// runs that never fall back (all shipped models) keep their registry
// snapshot instrument set unchanged.
func (s *Sim) noteRadiusFallback() {
	s.viewFallbacks++
	if m := s.met; m != nil {
		if m.radiusFallback == nil {
			m.radiusFallback = m.reg.Counter("sim/view/radius_fallback")
		}
		m.radiusFallback.Inc()
	}
}
