package sim

import (
	"testing"

	"udwn/internal/geom"
	"udwn/internal/metric"
	"udwn/internal/model"
)

func TestAccessors(t *testing.T) {
	cfg := lineConfig()
	s := newSim(t, cfg, map[int]map[int]bool{0: {0: true, 2: true}})
	if s.N() != 3 {
		t.Fatalf("N = %d", s.N())
	}
	if s.Model() != cfg.Model {
		t.Fatal("Model accessor wrong")
	}
	if s.CommRadius() != cfg.Model.CommRadius(cfg.Eps) {
		t.Fatal("CommRadius accessor wrong")
	}
	if s.Thresholds().BusyRSS <= 0 {
		t.Fatal("Thresholds accessor wrong")
	}
	s.Run(4)
	if s.MassDeliveries(0) != 2 {
		t.Fatalf("MassDeliveries(0) = %d, want 2", s.MassDeliveries(0))
	}
}

func TestAdversaries(t *testing.T) {
	if (PessimisticAdversary{}).AckAmbiguous(1, 2) {
		t.Fatal("pessimist must answer false")
	}
	if !(OptimisticAdversary{}).AckAmbiguous(1, 2) {
		t.Fatal("optimist must answer true")
	}
	ra := &RandomAdversary{Seed: 1, P: 0.5}
	if ra.AckAmbiguous(1, 2) != ra.AckAmbiguous(1, 2) {
		t.Fatal("random adversary must be deterministic per (node, tick)")
	}
	trues := 0
	for i := 0; i < 1000; i++ {
		if ra.AckAmbiguous(i, i*3) {
			trues++
		}
	}
	if trues < 400 || trues > 600 {
		t.Fatalf("random adversary frequency = %d/1000 at P=0.5", trues)
	}
	never := &RandomAdversary{Seed: 1, P: 0}
	if never.AckAmbiguous(7, 7) {
		t.Fatal("P=0 adversary must answer false")
	}
}

func TestGenericNeighbourCacheBuild(t *testing.T) {
	// A non-Euclidean static space exercises the O(n²) neighbour-cache
	// fallback.
	m := metric.NewMatrix(4, 100)
	m.SetSym(0, 1, 1)
	m.SetSym(1, 2, 1)
	s, err := New(Config{
		Space: m,
		Model: model.NewSINR(8, 1, 1, 3, 0.1),
		P:     8, Zeta: 3, Noise: 1, Eps: 0.1,
		Seed: 1,
	}, func(int) Protocol { return &scriptProto{} })
	if err != nil {
		t.Fatal(err)
	}
	if got := s.NeighborCount(1); got != 2 {
		t.Fatalf("NeighborCount(1) = %d, want 2", got)
	}
	if got := s.NeighborCount(3); got != 0 {
		t.Fatalf("NeighborCount(3) = %d, want 0", got)
	}
}

func TestSlotViewRadiusCache(t *testing.T) {
	// Exercise the per-radius count cache of TransmittersWithin: two radii
	// cached, a third falls back to the direct count, all matching a brute
	// reference.
	e := metric.NewEuclidean(makePoints(8))
	s, err := New(Config{
		Space: e,
		Model: model.NewSINR(8, 1, 1, 3, 0.1),
		P:     8, Zeta: 3, Noise: 1, Eps: 0.1,
		Seed: 1,
	}, func(int) Protocol { return &scriptProto{} })
	if err != nil {
		t.Fatal(err)
	}
	tx := []int{0, 2, 5}
	vw := &slotView{s: s, tx: tx, total: make([]float64, 8), scale: nil}
	brute := func(v int, r float64, excl int) int {
		c := 0
		for _, w := range tx {
			if w == v || w == excl {
				continue
			}
			if e.Dist(w, v) <= r {
				c++
			}
		}
		return c
	}
	for _, r := range []float64{1.5, 3, 6} { // third radius exceeds cache slots
		for v := 0; v < 8; v++ {
			for _, excl := range []int{-1, 0, 2, v} {
				if got, want := vw.TransmittersWithin(v, r, excl), brute(v, r, excl); got != want {
					t.Fatalf("TransmittersWithin(%d, %v, %d) = %d, want %d", v, r, excl, got, want)
				}
			}
		}
	}
}

func makePoints(k int) []geom.Point {
	pts := make([]geom.Point, k)
	for i := range pts {
		pts[i] = geom.Point{X: float64(i), Y: 0}
	}
	return pts
}
