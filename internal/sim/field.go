package sim

import "fmt"

// This file maintains the Phase 2 interference field incrementally.
//
// The brute driver recomputes every receiver's accumulated interference from
// scratch each slot: zero totalPower, then for each transmitter w in
// ascending id order add Power(w,v)·scale(w) into every same-channel
// receiver v. That accumulation order — ascending transmitters, per
// receiver, restricted to the receiver's channel — is the *canonical sum*.
// The incremental engine never produces anything else: instead of adding and
// subtracting deltas (whose result bits would depend on history), it tracks
// which receivers' accumulators are still the canonical sum of the current
// slot's transmission composition and re-runs the canonical sum for exactly
// the receivers that are not. Equal compositions summed in the canonical
// order give equal bits, so a reused accumulator is byte-identical to what
// the brute driver would have computed — there is no approximation to bound,
// and the periodic epoch rebuild (FieldEpoch) is a defense-in-depth rail,
// not a correctness requirement.
//
// Validity is tracked with slot stamps rather than per-receiver dirty bits
// so that clearing costs nothing: accSlot[v] is the slot whose composition
// totalPower[v] reflects, chanDirty[c] is the last slot at which channel c's
// transmission composition changed, and vDirty[v] is the last slot at which
// receiver v itself was invalidated (it moved, or retuned to another
// channel). totalPower[v] is valid iff accSlot[v] is at least as new as both
// stamps that govern it.
//
// Two operating modes cover the field's two consumer shapes:
//
//   - Broad (CD granted): every acting node reads the field each slot, so
//     fieldAdvance materializes all invalid receivers eagerly — either by
//     the canonical sum over the invalid set, or, when the composition only
//     *appended* transmitters (each with an id above its channel's previous
//     maximum, no removals, scale or channel changes, moves or retunes), by
//     extending every accumulator with the new transmitters' terms, which
//     is exactly the canonical sum continued.
//   - Lazy (ACK-only, or SINR without CD): only transmitters (or SINR
//     decode checks) read the field, so fieldAdvance just maintains the
//     stamps and fieldAt memoizes the canonical sum per queried receiver.
//
// One invariant makes the append path sound: in broad mode every receiver is
// valid at the end of fieldAdvance, so the next slot's append starts from
// accumulators that all equal the canonical sum of the previous composition.

// FieldMode selects the Phase 2 interference-field driver.
type FieldMode int

const (
	// FieldIncremental (the default) maintains the field incrementally with
	// canonical-order re-summation of invalidated receivers; runs are
	// byte-identical to FieldRecompute.
	FieldIncremental FieldMode = iota
	// FieldRecompute is the brute per-slot recompute driver — the reference
	// implementation the differential suites compare against, and the
	// fallback if an incremental-field bug is ever suspected in the wild.
	FieldRecompute
)

// String returns the CLI spelling of the mode.
func (m FieldMode) String() string {
	switch m {
	case FieldIncremental:
		return "incremental"
	case FieldRecompute:
		return "recompute"
	}
	return fmt.Sprintf("FieldMode(%d)", int(m))
}

// ParseFieldMode parses a -field-mode flag value ("" defaults to
// incremental).
func ParseFieldMode(s string) (FieldMode, error) {
	switch s {
	case "", "incremental":
		return FieldIncremental, nil
	case "recompute":
		return FieldRecompute, nil
	}
	return 0, fmt.Errorf("sim: unknown field mode %q (want incremental or recompute)", s)
}

// FieldStats counts the incremental field engine's per-slot outcomes, for
// run diagnostics and the opt-in "sim/field/*" metrics. All zeros under
// FieldRecompute or when the run never builds a field.
type FieldStats struct {
	// ReusedSlots counts slots whose entire field carried over unchanged.
	ReusedSlots int64
	// DeltaSlots counts slots resolved by the append fast path (new
	// transmitters' terms extended onto every accumulator).
	DeltaSlots int64
	// RebuildSlots counts slots that re-summed some invalidated subset of
	// receivers (possibly all of them).
	RebuildSlots int64
	// EpochRebuilds counts forced full rebuilds on the FieldEpoch rail.
	EpochRebuilds int64
	// LazyEvals counts per-receiver canonical re-summations performed on
	// demand by field reads in lazy mode.
	LazyEvals int64
}

// FieldStats returns the cumulative incremental-field work counters.
func (s *Sim) FieldStats() FieldStats { return s.fstat }

// fieldInit allocates the incremental engine's state; called from New only
// when the field is both needed and incremental. A nil accSlot elsewhere
// means "no engine": fieldAdvance is never called and fieldAt reads
// totalPower directly (the brute driver keeps it current).
func (s *Sim) fieldInit() {
	n := s.n
	s.accSlot = make([]int64, n)
	s.vDirty = make([]int64, n)
	s.chanDirty = make([]int64, s.cfg.Channels)
	s.chanLastPrev = make([]int32, s.cfg.Channels)
	if s.cfg.Channels > 1 {
		s.chanPrev = make([]int8, n)
	}
	// CD hands every acting node a field reading each slot, so the broad
	// eager mode pays off; everything else reads sparsely and goes lazy.
	s.broadField = s.cfg.Primitives.Has(CD)
	if s.fieldEpoch == 0 {
		s.fieldEpoch = defaultFieldEpoch
	}
}

// defaultFieldEpoch is the forced-rebuild period (Config.FieldEpoch = 0).
const defaultFieldEpoch = 256

// fieldValidAt reports whether totalPower[v] is the canonical sum of the
// current slot's composition on v's channel.
func (s *Sim) fieldValidAt(v int) bool {
	a := s.accSlot[v]
	return a >= s.chanDirty[s.chanBuf[v]] && a >= s.vDirty[v]
}

// fieldAt returns this slot's accumulated interference at receiver v. O(1)
// when v's accumulator is valid — always in recompute mode, in runs without
// an engine, and at the end of every broad-mode fieldAdvance. A stale
// accumulator (lazy mode) is resolved by the canonical sum and memoized for
// the rest of the slot.
func (s *Sim) fieldAt(v int) float64 {
	if s.accSlot == nil || s.fieldValidAt(v) {
		return s.totalPower[v]
	}
	cv := s.chanBuf[v]
	total := 0.0
	for _, w := range s.txBuf {
		if s.chanBuf[w] == cv {
			total += s.field.Power(w, v) * s.scaleBuf[w]
		}
	}
	s.totalPower[v] = total
	s.accSlot[v] = s.fSlot
	s.fstat.LazyEvals++
	return total
}

// fieldAdvance replaces the brute Phase 2 recompute: it diffs this slot's
// transmission composition against the previous slot's, stamps the channels
// and receivers the changes invalidate, and (in broad mode) rematerializes
// exactly the invalid receivers by the canonical sum. Called once per slot,
// after Phase 1 filled txBuf/scaleBuf/chanBuf, with tick not yet advanced.
func (s *Sim) fieldAdvance() {
	S := int64(s.tick) + 1 // stamps must be positive: zero marks "clean"
	s.fSlot = S

	// Whether the composition change is a pure per-channel append — the only
	// shape whose delta application is itself a canonical-sum continuation.
	appendOK := true

	// Receiver-side invalidations first (they consult the *previous* tx
	// composition, which the merge walk below overwrites). A moved node
	// invalidates itself as a receiver, and — if it transmits in either the
	// previous or the current slot — every receiver on the channels it
	// transmitted on, since its distance terms changed.
	if len(s.movedBuf) > 0 {
		appendOK = false
		for _, v := range s.movedBuf {
			s.vDirty[v] = S
			if i, ok := searchInts(s.prevTx, v); ok {
				s.chanDirty[s.prevChan[i]] = S
			}
			if s.isTxBuf[v] {
				s.chanDirty[s.chanBuf[v]] = S
			}
		}
		s.movedBuf = s.movedBuf[:0]
	}
	// Channel retunes invalidate the retuned receiver (its accumulator
	// belongs to the old channel). Only possible in multi-channel runs.
	if s.chanPrev != nil {
		for v := 0; v < s.n; v++ {
			if c := s.chanBuf[v]; c != s.chanPrev[v] {
				s.vDirty[v] = S
				s.chanPrev[v] = c
				appendOK = false
			}
		}
	}

	// Merge-walk the previous and current transmitter lists (both ascending)
	// to stamp the channels whose composition changed and collect the added
	// transmitters for the append path.
	prev, cur := s.prevTx, s.txBuf
	for c := range s.chanLastPrev {
		s.chanLastPrev[c] = -1
	}
	for i := range prev {
		s.chanLastPrev[s.prevChan[i]] = int32(prev[i])
	}
	s.addedBuf = s.addedBuf[:0]
	i, j := 0, 0
	for i < len(prev) || j < len(cur) {
		switch {
		case j >= len(cur) || (i < len(prev) && prev[i] < cur[j]):
			// w stopped transmitting: its old channel loses a term.
			s.chanDirty[s.prevChan[i]] = S
			appendOK = false
			i++
		case i >= len(prev) || cur[j] < prev[i]:
			// w started transmitting: its channel gains a term. The append
			// path stays open only if w's id extends the channel's ascending
			// sum past its previous maximum.
			w := cur[j]
			c := s.chanBuf[w]
			s.chanDirty[c] = S
			if int32(w) <= s.chanLastPrev[c] {
				appendOK = false
			}
			s.addedBuf = append(s.addedBuf, w)
			j++
		default:
			// w transmits in both slots; scale or channel changes alter its
			// term (on both channels for a retune).
			w := cur[j]
			if s.scaleBuf[w] != s.prevScale[i] || s.chanBuf[w] != s.prevChan[i] {
				s.chanDirty[s.prevChan[i]] = S
				s.chanDirty[s.chanBuf[w]] = S
				appendOK = false
			}
			i++
			j++
		}
	}

	// Refresh the baseline composition for the next slot's diff.
	s.prevTx = append(s.prevTx[:0], cur...)
	s.prevScale = s.prevScale[:0]
	s.prevChan = s.prevChan[:0]
	for _, w := range cur {
		s.prevScale = append(s.prevScale, s.scaleBuf[w])
		s.prevChan = append(s.prevChan, s.chanBuf[w])
	}

	// Epoch rail: a forced full canonical rebuild every fieldEpoch slots.
	// Structurally the result bits cannot drift, but a cheap periodic
	// re-anchoring makes that a local argument instead of a global one.
	if S%int64(s.fieldEpoch) == 0 {
		s.fieldRebuildAll(S)
		s.fstat.EpochRebuilds++
		return
	}

	if !s.broadField {
		return // sparse readers resolve through fieldAt on demand
	}

	if appendOK {
		if len(s.addedBuf) == 0 {
			// Identical composition, no receiver invalidations: every
			// accumulator carries over bit-for-bit.
			s.fstat.ReusedSlots++
			return
		}
		// Pure append: extend every accumulator with the new transmitters'
		// terms in ascending order — the canonical sum, continued. Valid
		// because broad mode left every receiver valid for the previous
		// composition and each added id exceeds its channel's previous
		// maximum.
		for _, w := range s.addedBuf {
			sc := s.scaleBuf[w]
			wc := s.chanBuf[w]
			if row := s.field.Row(w); row != nil {
				for v := 0; v < s.n; v++ {
					if s.chanBuf[v] == wc {
						s.totalPower[v] += row[v] * sc
					}
				}
			} else {
				for v := 0; v < s.n; v++ {
					if s.chanBuf[v] == wc {
						s.totalPower[v] += s.field.Power(w, v) * sc
					}
				}
			}
		}
		for v := range s.accSlot {
			s.accSlot[v] = S
		}
		s.fstat.DeltaSlots++
		return
	}

	// General case: canonical re-summation of exactly the invalid receivers.
	s.invalBuf = s.invalBuf[:0]
	for v := 0; v < s.n; v++ {
		if !s.fieldValidAt(v) {
			s.totalPower[v] = 0
			s.accSlot[v] = S
			s.invalBuf = append(s.invalBuf, v)
		}
	}
	if len(s.invalBuf) == 0 {
		s.fstat.ReusedSlots++
		return
	}
	inval := s.invalBuf
	for _, w := range s.txBuf {
		sc := s.scaleBuf[w]
		wc := s.chanBuf[w]
		if row := s.field.Row(w); row != nil {
			for _, v := range inval {
				if s.chanBuf[v] == wc {
					s.totalPower[v] += row[v] * sc
				}
			}
		} else {
			for _, v := range inval {
				if s.chanBuf[v] == wc {
					s.totalPower[v] += s.field.Power(w, v) * sc
				}
			}
		}
	}
	s.fstat.RebuildSlots++
}

// fieldRebuildAll is the brute recompute with validity stamping — the
// canonical sum over every receiver.
func (s *Sim) fieldRebuildAll(S int64) {
	for v := 0; v < s.n; v++ {
		s.totalPower[v] = 0
	}
	for _, w := range s.txBuf {
		sc := s.scaleBuf[w]
		wc := s.chanBuf[w]
		if row := s.field.Row(w); row != nil {
			for v := 0; v < s.n; v++ {
				if s.chanBuf[v] == wc {
					s.totalPower[v] += row[v] * sc
				}
			}
		} else {
			for v := 0; v < s.n; v++ {
				if s.chanBuf[v] == wc {
					s.totalPower[v] += s.field.Power(w, v) * sc
				}
			}
		}
	}
	for v := range s.accSlot {
		s.accSlot[v] = S
	}
}

// fieldNoteMove records that node v moved, for the next fieldAdvance; the
// mark is cheap and unconditional so mutators stay simple.
func (s *Sim) fieldNoteMove(v int) {
	if s.accSlot != nil {
		s.movedBuf = append(s.movedBuf, v)
	}
}

// searchInts is a binary search over an ascending []int returning the index
// and whether the target is present.
func searchInts(a []int, x int) (int, bool) {
	lo, hi := 0, len(a)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if a[mid] < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo, lo < len(a) && a[lo] == x
}
