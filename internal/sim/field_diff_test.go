package sim

import (
	"fmt"
	"math"
	"testing"

	"udwn/internal/metric"
	"udwn/internal/metrics"
	"udwn/internal/model"
	"udwn/internal/workload"
)

// fieldEpochs is the epoch matrix of the incremental-field differential
// suite: per-slot rebuild (degenerate), a short rail and the default rail.
var fieldEpochs = []int{1, 16, 256}

// fieldDiffScenarios is the scenario matrix: every model family crossed
// with channels, power scales, churn, mobility and fault injection — the
// full set of composition-mutation sources the incremental engine diffs.
func fieldDiffScenarios() []diffScenario {
	grey := func(d float64) bool { return math.Sin(d*13.7) > 0 }
	return []diffScenario{
		{name: "udg", n: 200, ticks: 140, seed: 41,
			model: func(func() int) model.Model { return model.NewUDG(10) },
			prims: CD | ACK | NTD},
		{name: "sinr", n: 200, ticks: 140, seed: 42,
			model: func(func() int) model.Model { return model.NewSINR(1500, 1.5, 1, 3, 0.1) },
			prims: CD | ACK},
		{name: "sinr-lazy", n: 200, ticks: 140, seed: 43,
			// ACK without CD: the engine runs in lazy mode (only transmitters
			// and SINR decode checks read the field).
			model: func(func() int) model.Model { return model.NewSINR(1500, 1.5, 1, 3, 0.1) },
			prims: ACK},
		{name: "qudg-grey", n: 200, ticks: 140, seed: 44,
			model: func(func() int) model.Model { return model.NewQUDG(7, 11, grey) },
			prims: CD},
		{name: "rayleigh", n: 160, ticks: 100, seed: 45,
			model: func(tick func() int) model.Model {
				return model.NewRayleighSINR(1500, 1.5, 1, 3, 0.1, 5, tick)
			},
			prims: CD | ACK},
		{name: "channels-3", n: 200, ticks: 140, seed: 46, channels: 3,
			model: func(func() int) model.Model { return model.NewUDG(10) },
			prims: CD},
		{name: "channels-3-sinr-lazy", n: 200, ticks: 140, seed: 47, channels: 3,
			model: func(func() int) model.Model { return model.NewSINR(1500, 1.5, 1, 3, 0.1) },
			prims: ACK},
		{name: "power-scales", n: 200, ticks: 140, seed: 48, scales: true,
			model: func(func() int) model.Model { return model.NewSINR(1500, 1.5, 1, 3, 0.1) },
			prims: CD | ACK},
		{name: "churn", n: 200, ticks: 160, seed: 49, churn: true,
			model: func(func() int) model.Model { return model.NewUDG(10) },
			prims: CD | ACK},
		{name: "mobility", n: 200, ticks: 160, seed: 50, dynamic: true,
			model: func(func() int) model.Model { return model.NewUDG(10) },
			prims: CD | ACK},
		{name: "mobility-sinr-scales", n: 160, ticks: 120, seed: 51, dynamic: true, scales: true,
			model: func(func() int) model.Model { return model.NewSINR(1500, 1.5, 1, 3, 0.1) },
			prims: CD | ACK | NTD},
		{name: "faults", n: 200, ticks: 160, seed: 52, inject: true, dynamic: true,
			model: func(func() int) model.Model { return model.NewUDG(10) },
			prims: CD | ACK},
	}
}

// runFieldDiff runs sc under the given field mode and epoch with a fresh
// metrics registry, returning the serialized history with the registry
// snapshot appended — so the comparison covers observations, slot events,
// RSS bits, per-node outcomes AND every exported metric. IndexMetrics stays
// off: sim/field/* and sim/wheel/* work counters legitimately differ across
// modes, the behavioural instruments must not.
func runFieldDiff(t *testing.T, sc diffScenario, mode FieldMode, epoch int) string {
	t.Helper()
	reg := metrics.NewRegistry()
	history := runDiffCfg(t, sc, false, func(cfg *Config) {
		cfg.FieldMode = mode
		cfg.FieldEpoch = epoch
		cfg.Metrics = reg
	})
	return history + reg.Snapshot().String()
}

// TestIncrementalFieldEquivalence is the differential suite of the
// incremental interference field: for every scenario and epoch, the
// incremental driver must produce the byte-identical history and metrics
// snapshot as the brute recompute driver. Short mode runs a curated subset;
// the full matrix runs otherwise (and raced in ci.sh).
func TestIncrementalFieldEquivalence(t *testing.T) {
	scenarios := fieldDiffScenarios()
	epochs := fieldEpochs
	if testing.Short() {
		scenarios = []diffScenario{scenarios[1], scenarios[2], scenarios[5], scenarios[9], scenarios[11]}
		epochs = []int{1, 256}
	}
	for _, sc := range scenarios {
		for _, epoch := range epochs {
			sc, epoch := sc, epoch
			t.Run(fmt.Sprintf("%s/epoch%d", sc.name, epoch), func(t *testing.T) {
				inc := runFieldDiff(t, sc, FieldIncremental, epoch)
				rec := runFieldDiff(t, sc, FieldRecompute, epoch)
				if inc != rec {
					t.Fatalf("incremental and recompute histories diverge:\n%s",
						firstDiffLine(inc, rec))
				}
			})
		}
	}
}

// TestIncrementalFieldModesExercised guards the differential suite against
// vacuity: a broad (CD) static scenario must hit the reuse/delta/rebuild
// paths, a lazy (ACK-only) scenario must resolve through lazy evaluations,
// and the epoch rail must fire when enabled.
func TestIncrementalFieldModesExercised(t *testing.T) {
	run := func(prims Primitives, epoch int, p float64) (*Sim, FieldStats) {
		t.Helper()
		s := newFieldTestSim(t, 160, 61, prims, FieldIncremental, epoch, p)
		s.Run(400)
		return s, s.FieldStats()
	}

	// p=0.01 keeps ~20% of slots transmitter-free, so consecutive empty
	// compositions (the reuse path) and empty→nonempty appends both occur.
	s, st := run(CD|ACK, 256, 0.01)
	if st.RebuildSlots == 0 {
		t.Errorf("broad run: no rebuild slots (stats %+v)", st)
	}
	if st.ReusedSlots == 0 {
		t.Errorf("broad run: no reused slots — sparse tx should repeat compositions (stats %+v)", st)
	}
	if st.EpochRebuilds == 0 {
		t.Errorf("broad run: epoch rail never fired (stats %+v)", st)
	}
	if st.LazyEvals != 0 {
		t.Errorf("broad run: unexpected lazy evals (stats %+v)", st)
	}
	if got := s.FieldStats(); got != st {
		t.Errorf("FieldStats accessor unstable: %+v vs %+v", got, st)
	}

	_, st = run(ACK, 256, 0.01)
	if st.LazyEvals == 0 {
		t.Errorf("lazy run: no lazy evaluations (stats %+v)", st)
	}
	if st.DeltaSlots != 0 || st.RebuildSlots != 0 {
		t.Errorf("lazy run: eager materialization unexpected (stats %+v)", st)
	}

	// Epoch 1 degenerates to a rebuild every slot.
	_, st = run(CD|ACK, 1, 0.01)
	if st.ReusedSlots != 0 || st.DeltaSlots != 0 || st.RebuildSlots != 0 {
		t.Errorf("epoch-1 run: non-epoch slots present (stats %+v)", st)
	}
	if st.EpochRebuilds == 0 {
		t.Errorf("epoch-1 run: no epoch rebuilds (stats %+v)", st)
	}

	// Recompute mode and field-oblivious runs have no engine at all.
	s = newFieldTestSim(t, 160, 61, CD|ACK, FieldRecompute, 0, 0.01)
	s.Run(100)
	if st := s.FieldStats(); st != (FieldStats{}) {
		t.Errorf("recompute run accumulated field stats: %+v", st)
	}
}

// TestFieldAppendPath pins the append fast path: a monotone-id set of
// persistent transmitters (each new transmitter id above every previous
// one) must resolve through delta slots, byte-identically to recompute.
func TestFieldAppendPath(t *testing.T) {
	mk := func(mode FieldMode) (*Sim, []uint64) {
		s := newFieldTestSimProto(t, 120, 71, CD|ACK, mode, 256, func(id int) Protocol {
			// Node id starts transmitting at tick 3*id and never stops:
			// additions arrive in ascending id order, one at a time.
			return &rampProto{id: id}
		})
		var sums []uint64
		for i := 0; i < 90; i++ {
			s.Step()
			h := uint64(0)
			for v := 0; v < s.n; v++ {
				h = h*0x100000001b3 ^ math.Float64bits(s.fieldAt(v))
			}
			sums = append(sums, h)
		}
		return s, sums
	}
	si, inc := mk(FieldIncremental)
	_, rec := mk(FieldRecompute)
	for i := range inc {
		if inc[i] != rec[i] {
			t.Fatalf("field hash diverges at tick %d", i)
		}
	}
	if st := si.FieldStats(); st.DeltaSlots == 0 {
		t.Errorf("append path never taken: %+v", st)
	}
}

// rampProto makes node id a persistent transmitter from tick 3*id on.
type rampProto struct {
	id, t int
}

func (r *rampProto) Act(n *Node, slot int) Action {
	t := r.t
	r.t++
	if t >= 3*r.id {
		return Action{Transmit: true, Msg: Message{Kind: 7, Data: int64(r.id)}}
	}
	return Action{}
}

func (r *rampProto) Observe(n *Node, slot int, obs *Observation) {}

// newFieldTestSim builds a static SINR sim with fixed-probability traffic.
func newFieldTestSim(t *testing.T, n int, seed uint64, prims Primitives,
	mode FieldMode, epoch int, p float64) *Sim {
	t.Helper()
	return newFieldTestSimProto(t, n, seed, prims, mode, epoch,
		func(int) Protocol { return fixedProb(p) })
}

func newFieldTestSimProto(t *testing.T, n int, seed uint64, prims Primitives,
	mode FieldMode, epoch int, factory ProtocolFactory) *Sim {
	t.Helper()
	pts := workload.UniformDisc(n, workload.SideForDegree(n, 16, 9), seed)
	s, err := New(Config{
		Space: metric.NewEuclidean(pts),
		Model: model.NewSINR(1500, 1.5, 1, 3, 0.1),
		P:     1500, Zeta: 3, Noise: 1, Eps: 0.1,
		Seed:       seed,
		Primitives: prims,
		FieldMode:  mode,
		FieldEpoch: epoch,
	}, factory)
	if err != nil {
		t.Fatal(err)
	}
	return s
}
