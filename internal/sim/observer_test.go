package sim

import "testing"

func TestObserverReceivesEvents(t *testing.T) {
	cfg := lineConfig()
	var events []SlotEvent
	cfg.Observer = func(ev SlotEvent) {
		cp := ev
		cp.Transmitters = append([]int(nil), ev.Transmitters...)
		cp.MassDeliverers = append([]int(nil), ev.MassDeliverers...)
		events = append(events, cp)
	}
	s, err := New(cfg, func(id int) Protocol {
		return &scriptProto{transmitAt: map[int]bool{0: id == 0}}
	})
	if err != nil {
		t.Fatal(err)
	}
	s.Run(3)
	if len(events) != 3 {
		t.Fatalf("observer saw %d events, want 3", len(events))
	}
	ev := events[0]
	if ev.Tick != 0 || len(ev.Transmitters) != 1 || ev.Transmitters[0] != 0 {
		t.Fatalf("event 0 = %+v", ev)
	}
	if ev.Decodes != 1 {
		t.Fatalf("Decodes = %d, want 1 (node 1 decodes)", ev.Decodes)
	}
	if len(ev.MassDeliverers) != 1 || ev.MassDeliverers[0] != 0 {
		t.Fatalf("MassDeliverers = %v", ev.MassDeliverers)
	}
	if len(events[1].Transmitters) != 0 || events[1].Decodes != 0 {
		t.Fatalf("silent event = %+v", events[1])
	}
}
