package sim

import (
	"testing"

	"udwn/internal/metric"
	"udwn/internal/model"
	"udwn/internal/workload"
)

// countingProto counts its Act and Observe calls.
type countingProto struct {
	acts, observes int
}

func (p *countingProto) Act(n *Node, slot int) Action {
	p.acts++
	return Action{}
}

func (p *countingProto) Observe(n *Node, slot int, obs *Observation) {
	p.observes++
}

func TestActObservePaired(t *testing.T) {
	// Every Act is followed by exactly one Observe, across sync, two-slot
	// and async modes.
	cases := map[string]Config{
		"sync":    lineConfig(),
		"twoslot": func() Config { c := lineConfig(); c.Slots = 2; return c }(),
		"async":   func() Config { c := lineConfig(); c.Async = true; return c }(),
	}
	for name, cfg := range cases {
		t.Run(name, func(t *testing.T) {
			s, err := New(cfg, func(int) Protocol { return &countingProto{} })
			if err != nil {
				t.Fatal(err)
			}
			s.Run(37)
			for v := 0; v < s.N(); v++ {
				p := s.Protocol(v).(*countingProto)
				if p.acts != p.observes {
					t.Fatalf("node %d: %d acts, %d observes", v, p.acts, p.observes)
				}
				if p.acts == 0 {
					t.Fatalf("node %d never acted", v)
				}
			}
		})
	}
}

func TestChurnDuringTwoSlotRounds(t *testing.T) {
	// Killing a node between slot 0 and slot 1 must not corrupt the round:
	// the survivor keeps acting and invariants hold.
	cfg := lineConfig()
	cfg.Slots = 2
	s, err := New(cfg, func(int) Protocol { return &countingProto{} })
	if err != nil {
		t.Fatal(err)
	}
	s.Step() // slot 0
	s.Kill(1)
	s.Step() // slot 1 with node 1 gone mid-round
	s.Step()
	p1 := s.Protocol(1).(*countingProto)
	if p1.acts != 1 {
		t.Fatalf("dead node acted %d times, want 1 (slot 0 only)", p1.acts)
	}
	s.Revive(1)
	s.Step()
	if got := s.Protocol(1).(*countingProto); got.acts != 1 {
		t.Fatalf("revived node has a fresh protocol; acts = %d, want 1", got.acts)
	}
}

func TestAsyncChurnInterleaving(t *testing.T) {
	// Random kills/revives interleaved with async rounds keep all counters
	// and pairings consistent (panic/corruption regression test).
	pts := workload.UniformDisc(40, 25, 3)
	cfg := Config{
		Space: metric.NewEuclidean(pts),
		Model: model.NewSINR(1500, 1.5, 1, 3, 0.1),
		P:     1500, Zeta: 3, Noise: 1, Eps: 0.1,
		Seed:       5,
		Async:      true,
		Primitives: CD | ACK,
	}
	s, err := New(cfg, func(int) Protocol { return fixedProb(0.2) })
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		if i%3 == 0 {
			s.Kill(i % 40)
		}
		if i%5 == 0 {
			s.Revive((i + 7) % 40)
		}
		s.Step()
	}
	var total int64
	for v := 0; v < 40; v++ {
		total += int64(s.Transmissions(v))
	}
	if total != s.TotalTransmissions() {
		t.Fatalf("counter drift: %d vs %d", total, s.TotalTransmissions())
	}
}
