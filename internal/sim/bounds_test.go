package sim

import (
	"testing"

	"udwn/internal/geom"
)

// The mutators face raw CLI and driver input (cmd/dissem -kill, fault
// schedules), so out-of-range node ids must be rejected as counted no-ops,
// never a panic or an out-of-bounds write.
func TestMutatorBoundsChecks(t *testing.T) {
	cfg := lineConfig()
	cfg.Dynamic = true
	s := newSim(t, cfg, nil)
	n := s.N()

	for _, v := range []int{-1, n, n + 7} {
		s.Kill(v)
		s.Revive(v)
		if err := s.Move(v, geom.Point{X: 1, Y: 1}); err == nil {
			t.Fatalf("Move(%d) must return an error", v)
		}
	}
	if got := s.InvalidOps(); got != 9 {
		t.Fatalf("InvalidOps = %d, want 9 (3 ids × 3 mutators)", got)
	}
	for v := 0; v < n; v++ {
		if !s.Alive(v) {
			t.Fatalf("node %d no longer alive after rejected mutations", v)
		}
	}

	// Valid ids still work and do not count as invalid.
	s.Kill(1)
	if s.Alive(1) {
		t.Fatal("Kill(1) had no effect")
	}
	s.Revive(1)
	if !s.Alive(1) {
		t.Fatal("Revive(1) had no effect")
	}
	if err := s.Move(2, geom.Point{X: 3, Y: 0}); err != nil {
		t.Fatalf("Move(2) on a dynamic Euclidean space failed: %v", err)
	}
	if got := s.InvalidOps(); got != 9 {
		t.Fatalf("valid mutations bumped InvalidOps to %d", got)
	}
}

// A rejected Move must not reach the space: the error path returns before
// SetPoint, so positions are untouched.
func TestMoveOutOfRangeLeavesTopologyIntact(t *testing.T) {
	cfg := lineConfig()
	cfg.Dynamic = true
	s := newSim(t, cfg, map[int]map[int]bool{0: {0: true}})
	if err := s.Move(-3, geom.Point{X: 100, Y: 100}); err == nil {
		t.Fatal("Move(-3) must fail")
	}
	s.Step()
	// Node 1 at distance 1 still decodes node 0: the topology is unchanged.
	if len(proto(s, 1).obs[0].Received) != 1 {
		t.Fatal("topology changed after a rejected Move")
	}
}
