package sim

import (
	"math"
	"testing"
	"testing/quick"

	"udwn/internal/metric"
	"udwn/internal/model"
	"udwn/internal/rng"
	"udwn/internal/workload"
)

// TestSuccClearConformance verifies the unified model's contract (Def. 1)
// end to end for every shipped model: whenever a transmitter u satisfies
// the SuccClear premise in a slot — no other transmitter inside
// D(u, ρ_c·R) and total interference at u at most I_c — then every alive
// neighbour of u decodes the transmission. This is the guarantee all the
// paper's proofs lean on; the concrete models may deliver more, never less.
func TestSuccClearConformance(t *testing.T) {
	models := map[string]func() model.Model{
		"sinr":     func() model.Model { return model.NewSINR(1500, 1.5, 1, 3, 0.1) },
		"udg":      func() model.Model { return model.NewUDG(10) },
		"qudg":     func() model.Model { return model.NewQUDG(7.5, 10, nil) },
		"protocol": func() model.Model { return model.NewProtocol(10, 20) },
	}
	for name, mk := range models {
		mk := mk
		t.Run(name, func(t *testing.T) {
			f := func(seed uint64) bool {
				return succClearHolds(mk(), seed)
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// succClearHolds runs random traffic and checks the SuccClear implication
// on every slot.
func succClearHolds(mdl model.Model, seed uint64) bool {
	r := rng.New(seed)
	n := 16 + r.Intn(32)
	pts := workload.UniformDisc(n, 35, seed^0x5cc)
	space := metric.NewEuclidean(pts)
	violation := false

	var s *Sim
	cfg := Config{
		Space: space,
		Model: mdl,
		P:     1500, Zeta: 3, Noise: 1, Eps: 0.1,
		Seed: seed,
		Observer: func(ev SlotEvent) {
			if checkSuccClear(s, mdl, ev) != "" {
				violation = true
			}
		},
	}
	var err error
	s, err = New(cfg, func(int) Protocol { return fixedProb(0.1) })
	if err != nil {
		return false
	}
	s.Run(30)
	return !violation
}

// checkSuccClear returns a non-empty description if a transmitter met the
// SuccClear premise but some neighbour missed the message.
func checkSuccClear(s *Sim, mdl model.Model, ev SlotEvent) string {
	sc := mdl.Params()
	for _, u := range ev.Transmitters {
		// Premise 1: exclusion vicinity empty.
		clearVicinity := true
		if sc.RhoC > 0 {
			for _, w := range ev.Transmitters {
				if w != u && s.Space().Dist(w, u) < sc.RhoC*mdl.R() {
					clearVicinity = false
					break
				}
			}
		}
		if !clearVicinity {
			continue
		}
		// Premise 2: total interference at u within I_c.
		if !math.IsInf(sc.Ic, 1) {
			interference := 0.0
			for _, w := range ev.Transmitters {
				if w != u {
					interference += s.field.Power(w, u)
				}
			}
			if interference > sc.Ic {
				continue
			}
		}
		// Conclusion: every alive neighbour decoded u this slot.
		delivered := false
		for _, m := range ev.MassDeliverers {
			if m == u {
				delivered = true
				break
			}
		}
		if !delivered {
			return "premise held but delivery failed"
		}
	}
	return ""
}
