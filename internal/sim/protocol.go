package sim

import "udwn/internal/rng"

// Message is the payload of one transmission. The simulator treats it as
// opaque; protocols define the meaning of Kind and Data (e.g. a broadcast
// payload carries the source in Data).
type Message struct {
	// Src is the id of the transmitting node.
	Src int
	// Kind is a protocol-defined discriminator.
	Kind int32
	// Data is a protocol-defined payload.
	Data int64
}

// Action is what a node does in one slot.
type Action struct {
	// Transmit requests a transmission of Msg this slot.
	Transmit bool
	// Msg is the message to transmit; ignored unless Transmit.
	Msg Message
	// PowerScale scales this transmission's power (0 or 1 = the uniform
	// power P the model assumes). Values < 1 implement the App. B remark
	// that the NTD primitive can be realised with power control: a
	// sufficiently lowered transmission is decodable only very near the
	// sender, so its receipt itself certifies proximity. Fading models
	// honour the scale in both signal and interference; pure graph models
	// apply a decode-range cutoff at scale^{1/ζ}·R.
	PowerScale float64
	// Channel is the frequency channel the node tunes to this slot, for
	// transmitting or listening alike (half-duplex single radio). Only
	// meaningful when Config.Channels > 1; values outside [0, Channels) are
	// clamped. Transmissions interfere, carrier-sense and decode only
	// within their channel.
	Channel int
}

// Recv describes one successfully decoded transmission.
type Recv struct {
	// From is the transmitter's id.
	From int
	// Msg is the decoded message.
	Msg Message
	// RSS is the received signal strength of this transmission, used by the
	// NTD primitive.
	RSS float64
}

// Observation is delivered to a node after each slot in which it acted.
// Fields corresponding to disabled primitives are left at their zero value.
type Observation struct {
	// Tick is the global tick the observation describes.
	Tick int
	// Slot is the slot index within the round.
	Slot int
	// Transmitted reports whether this node transmitted in the slot.
	Transmitted bool
	// Received lists the messages this node decoded (always empty for
	// transmitters: nodes are half-duplex).
	Received []Recv
	// Busy is the CD outcome: total sensed interference at or above the
	// busy threshold. Valid only when the CD primitive is enabled.
	Busy bool
	// Acked is the ACK outcome for a transmitter. With the ACK primitive it
	// follows Def. ACK (threshold sensing + ground truth + adversary); with
	// FreeAck it is the ground-truth mass-delivery indicator.
	Acked bool
	// NTD reports whether any decoded message came from within the NTD
	// radius εR/2. Valid only when the NTD primitive is enabled.
	NTD bool
}

// Node is the per-node context handed to protocol callbacks.
type Node struct {
	// ID is the node's identity in [0, n).
	ID int
	// RNG is the node's private random stream.
	RNG *rng.Source
}

// Protocol is the per-node algorithm. The simulator owns one instance per
// node (created by a ProtocolFactory); instances never run concurrently, so
// they need no synchronisation.
type Protocol interface {
	// Act is invoked at each of the node's slot boundaries and returns the
	// node's action for the slot.
	Act(n *Node, slot int) Action
	// Observe is invoked after a slot in which the node acted, with the
	// slot's outcome.
	Observe(n *Node, slot int, obs *Observation)
}

// Hearer is an optional interface for protocols that want passive receipts:
// in locally-synchronous (async) mode a node can decode messages in ticks
// between its own round boundaries; such receipts are delivered via Hear.
type Hearer interface {
	Hear(n *Node, recv []Recv)
}

// ProtocolFactory creates the protocol instance for node id. It is called
// once per node at construction and again whenever a node is revived
// (churn arrival), giving arrivals a fresh initial state as the paper
// assumes.
type ProtocolFactory func(id int) Protocol

// Primitives selects which sensing primitives the simulator grants to the
// protocols.
type Primitives uint8

// Primitive flags.
const (
	// CD grants contention detection (Busy/Idle channel readings).
	CD Primitives = 1 << iota
	// ACK grants successful-transmission detection per Def. ACK.
	ACK
	// NTD grants near-transmission detection.
	NTD
	// FreeAck replaces threshold-sensed ACK with ground-truth delivery
	// feedback, modelling the "free acknowledgements" assumption of prior
	// work; used by baselines.
	FreeAck
)

// Has reports whether p includes flag f.
func (p Primitives) Has(f Primitives) bool { return p&f != 0 }

// SlotEvent summarises one resolved slot for tracing and live
// instrumentation. Slices alias simulator scratch buffers and are only
// valid during the observer call; copy to retain.
type SlotEvent struct {
	// Tick is the global tick index.
	Tick int `json:"tick"`
	// Slot is the slot index within the round.
	Slot int `json:"slot"`
	// Transmitters lists the nodes that transmitted.
	Transmitters []int `json:"tx"`
	// Decodes is the total number of successful receptions.
	Decodes int `json:"decodes"`
	// MassDeliverers lists transmitters whose message reached their whole
	// alive neighbourhood this slot.
	MassDeliverers []int `json:"mass,omitempty"`
	// CDBusy and CDIdle count the carrier-sense outcomes observed by acting
	// nodes this slot (post fault corruption, i.e. what the protocols saw);
	// both are zero when the run does not grant the CD primitive.
	CDBusy int `json:"cd_busy,omitempty"`
	CDIdle int `json:"cd_idle,omitempty"`
	// Acks counts transmitters that observed a positive acknowledgement
	// (Def. ACK or FreeAck, whichever the run grants).
	Acks int `json:"acks,omitempty"`
	// NTDs counts listeners that observed a near-transmission this slot.
	NTDs int `json:"ntds,omitempty"`
	// Decoders lists the nodes that decoded at least one message this slot,
	// in ascending id order. Streaming analytics derive per-node latency
	// (first-decode tick) from it without replaying the run.
	Decoders []int `json:"decoders,omitempty"`
	// Seized counts transmitters whose action was seized by the fault
	// injector this slot (stuck/jamming carriers); zero in fault-free runs.
	// Analytics correlate it with decode rates.
	Seized int `json:"seized,omitempty"`
}

// Adversary resolves outcomes the model leaves unspecified. Implementations
// must be deterministic functions of their arguments (plus their own seeded
// randomness) for runs to be replayable.
type Adversary interface {
	// AckAmbiguous resolves an ACK outcome when Def. ACK allows either
	// answer: the transmission reached all neighbours but the sensed
	// interference exceeded the ACK threshold.
	AckAmbiguous(node, tick int) bool
}

// PessimisticAdversary answers every ambiguous question with the outcome
// least favourable to the algorithm. It is the default.
type PessimisticAdversary struct{}

var _ Adversary = PessimisticAdversary{}

// AckAmbiguous returns false: a delivered-but-noisy transmission is not
// acknowledged.
func (PessimisticAdversary) AckAmbiguous(node, tick int) bool { return false }

// OptimisticAdversary answers every ambiguous question favourably.
type OptimisticAdversary struct{}

var _ Adversary = OptimisticAdversary{}

// AckAmbiguous returns true.
func (OptimisticAdversary) AckAmbiguous(node, tick int) bool { return true }

// RandomAdversary flips a deterministic per-(node, tick) coin.
type RandomAdversary struct {
	// Seed keys the coin flips.
	Seed uint64
	// P is the probability of the favourable answer.
	P float64
}

var _ Adversary = (*RandomAdversary)(nil)

// AckAmbiguous flips the coin for (node, tick).
func (a *RandomAdversary) AckAmbiguous(node, tick int) bool {
	return rng.New(a.Seed ^ uint64(node)<<32 ^ uint64(tick)).Bernoulli(a.P)
}
