package sim

import (
	"testing"

	"udwn/internal/metrics"
)

// TestStepMetrics pins the tick-loop instrumentation to the simulator's own
// ground-truth accessors: after any run, the registry counters must agree
// with TotalTransmissions/TotalMassDeliveries, the slot counter with Tick,
// and the per-slot histogram's total count with the number of slots.
func TestStepMetrics(t *testing.T) {
	reg := metrics.NewRegistry()
	cfg := lineConfig()
	cfg.Metrics = reg
	s, err := New(cfg, func(id int) Protocol { return fixedProb(0.5) })
	if err != nil {
		t.Fatal(err)
	}
	const ticks = 200
	s.Run(ticks)

	snap := reg.Snapshot()
	get := func(name string) int64 {
		for _, c := range snap.Counters {
			if c.Name == name {
				return c.Value
			}
		}
		t.Fatalf("counter %q missing from snapshot:\n%s", name, snap)
		return 0
	}
	if got := get("sim/slots"); got != ticks {
		t.Fatalf("sim/slots = %d, want %d", got, ticks)
	}
	if got := get("sim/tx"); got != s.TotalTransmissions() {
		t.Fatalf("sim/tx = %d, want %d", got, s.TotalTransmissions())
	}
	if got := get("sim/mass_deliveries"); got != s.TotalMassDeliveries() {
		t.Fatalf("sim/mass_deliveries = %d, want %d", got, s.TotalMassDeliveries())
	}
	if get("sim/tx") == 0 || get("sim/decodes") == 0 {
		t.Fatal("a p=1/2 three-node run must transmit and decode")
	}
	// Every acting node reads CD each slot: busy + idle = n*ticks.
	if busy, idle := get("sim/cd_busy"), get("sim/cd_idle"); busy+idle != int64(s.N()*ticks) {
		t.Fatalf("cd_busy+cd_idle = %d, want %d", busy+idle, s.N()*ticks)
	}
	// Every transmitter observes ACK: hits + misses = transmissions.
	if acks, miss := get("sim/ack"), get("sim/ack_miss"); acks+miss != s.TotalTransmissions() {
		t.Fatalf("ack+ack_miss = %d, want %d", acks+miss, s.TotalTransmissions())
	}
	var hists = map[string]int64{}
	for _, h := range snap.Histograms {
		hists[h.Name] = h.Count
	}
	if hists["sim/tx_per_slot"] != ticks || hists["sim/contention"] != ticks {
		t.Fatalf("histogram counts = %v, want %d each", hists, ticks)
	}
}

// TestStepMetricsNeutral asserts the observability layer is read-only: an
// instrumented run must produce bit-identical simulation results to an
// uninstrumented one with the same seeds.
func TestStepMetricsNeutral(t *testing.T) {
	run := func(reg *metrics.Registry) (int64, int64, int) {
		cfg := lineConfig()
		cfg.Metrics = reg
		s, err := New(cfg, func(id int) Protocol { return fixedProb(0.3) })
		if err != nil {
			t.Fatal(err)
		}
		s.Run(300)
		return s.TotalTransmissions(), s.TotalMassDeliveries(), s.FirstMassDelivery(1)
	}
	tx0, mass0, fm0 := run(nil)
	tx1, mass1, fm1 := run(metrics.NewRegistry())
	if tx0 != tx1 || mass0 != mass1 || fm0 != fm1 {
		t.Fatalf("instrumentation changed the run: (%d,%d,%d) vs (%d,%d,%d)",
			tx0, mass0, fm0, tx1, mass1, fm1)
	}
}

// TestSharedRegistryMerge runs two simulations into one registry and checks
// the merged counters are the sums — the aggregation mode the experiment
// grid uses across concurrent cells.
func TestSharedRegistryMerge(t *testing.T) {
	reg := metrics.NewRegistry()
	var wantTx int64
	for seed := uint64(1); seed <= 2; seed++ {
		cfg := lineConfig()
		cfg.Seed = seed
		cfg.Metrics = reg
		s, err := New(cfg, func(id int) Protocol { return fixedProb(0.4) })
		if err != nil {
			t.Fatal(err)
		}
		s.Run(100)
		wantTx += s.TotalTransmissions()
	}
	if got := reg.Counter("sim/tx").Value(); got != wantTx {
		t.Fatalf("merged sim/tx = %d, want %d", got, wantTx)
	}
	if got := reg.Counter("sim/slots").Value(); got != 200 {
		t.Fatalf("merged sim/slots = %d, want 200", got)
	}
}
