package sim

import (
	"fmt"
	"math"
	"strings"
	"sync"
	"testing"

	"udwn/internal/geom"
	"udwn/internal/metric"
	"udwn/internal/metrics"
	"udwn/internal/model"
	"udwn/internal/rng"
	"udwn/internal/workload"
)

// diffProto is the probe protocol of the grid/scan differential test: its
// actions are deterministic functions of the node RNG stream (transmit
// decision, channel hop, power scale), and every observation it receives is
// serialized — including RSS float bits — so two runs agree iff their entire
// observable histories agree byte for byte.
type diffProto struct {
	p      float64
	nchan  int
	scales bool
	log    *strings.Builder
}

func (d *diffProto) Act(n *Node, slot int) Action {
	act := Action{
		Transmit: n.RNG.Bernoulli(d.p),
		Msg:      Message{Kind: 1, Data: int64(n.ID)},
	}
	if d.nchan > 1 {
		act.Channel = n.RNG.Intn(d.nchan)
	}
	if d.scales {
		switch n.RNG.Intn(4) {
		case 0:
			act.PowerScale = 0.5
		case 1:
			act.PowerScale = 2
		}
	}
	return act
}

func (d *diffProto) Observe(n *Node, slot int, obs *Observation) {
	fmt.Fprintf(d.log, "o %d %d %d t=%v b=%v a=%v n=%v", obs.Tick, n.ID, slot,
		obs.Transmitted, obs.Busy, obs.Acked, obs.NTD)
	for _, rc := range obs.Received {
		fmt.Fprintf(d.log, " r(%d,%d,%d,%d,%x)", rc.From, rc.Msg.Src, rc.Msg.Kind,
			rc.Msg.Data, math.Float64bits(rc.RSS))
	}
	d.log.WriteByte('\n')
}

func (d *diffProto) TransmitProb() float64 { return d.p }

// diffInjector is a deterministic in-package fault injector: every decision
// is a pure function of (seed, node, tick), never of call order or count, so
// it satisfies the Injector contract while letting the differential test
// cover fault-laden runs without importing internal/faults (which imports
// this package).
type diffInjector struct {
	seed uint64
}

func (d *diffInjector) hash(a, b, c uint64) uint64 {
	x := d.seed ^ a*0x9e3779b97f4a7c15 ^ b*0xbf58476d1ce4e5b9 ^ c*0x94d049bb133111eb
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	return x
}

func (d *diffInjector) BeginTick(s *Sim, tick int) {
	n := s.N()
	for v := 0; v < n; v++ {
		switch d.hash(1, uint64(v), uint64(tick)) % 97 {
		case 0:
			s.Kill(v)
		case 1:
			s.Revive(v)
		}
	}
}

func (d *diffInjector) Seized(v, tick int) (Action, bool) {
	if d.hash(2, uint64(v), uint64(tick))%53 == 0 {
		return Action{Transmit: true, Msg: Message{Kind: 99}}, true
	}
	return Action{}, false
}

func (d *diffInjector) DropRecv(u, v, tick int) bool {
	return d.hash(3, uint64(u)<<20|uint64(v), uint64(tick))%31 == 0
}

func (d *diffInjector) Observation(v, tick int, obs *Observation) {
	if d.hash(4, uint64(v), uint64(tick))%41 == 0 {
		obs.Busy = !obs.Busy
	}
}

// diffScenario describes one randomized configuration of the differential
// test.
type diffScenario struct {
	name     string
	n        int
	ticks    int
	seed     uint64
	model    func(tick func() int) model.Model
	channels int
	scales   bool
	dynamic  bool
	churn    bool
	inject   bool
	prims    Primitives
}

// runDiff builds and runs one simulation for sc and returns its full
// serialized history. disableGrid forces the brute-force scan paths after
// construction (construction itself is shared, so both variants start from
// bit-identical caches).
func runDiff(t *testing.T, sc diffScenario, disableGrid bool) string {
	return runDiffCfg(t, sc, disableGrid, nil)
}

// runDiffCfg is runDiff with a Config hook, letting the field-mode and
// quiescence differential suites reuse the same scenario machinery.
func runDiffCfg(t *testing.T, sc diffScenario, disableGrid bool, mutate func(*Config)) string {
	t.Helper()
	var log strings.Builder
	side := workload.SideForDegree(sc.n, 12, 10)
	pts := workload.UniformDisc(sc.n, side, sc.seed)
	var sp *Sim
	cfg := Config{
		Space: metric.NewEuclidean(pts),
		Model: sc.model(func() int { return sp.Tick() }),
		P:     1500, Zeta: 3, Noise: 1, Eps: 0.1,
		Seed:          sc.seed,
		Primitives:    sc.prims,
		Channels:      sc.channels,
		Dynamic:       sc.dynamic,
		TrackCoverage: true,
		Observer: func(ev SlotEvent) {
			fmt.Fprintf(&log, "e %d tx=%v d=%d md=%v cb=%d ci=%d a=%d nt=%d\n",
				ev.Tick, ev.Transmitters, ev.Decodes, ev.MassDeliverers,
				ev.CDBusy, ev.CDIdle, ev.Acks, ev.NTDs)
		},
	}
	if sc.inject {
		cfg.Injector = &diffInjector{seed: sc.seed ^ 0xfa017}
	}
	if mutate != nil {
		mutate(&cfg)
	}
	s, err := New(cfg, func(int) Protocol {
		return &diffProto{p: 0.05, nchan: sc.channels, scales: sc.scales, log: &log}
	})
	if err != nil {
		t.Fatal(err)
	}
	sp = s
	if disableGrid {
		s.grid = nil
	}
	drv := rng.New(sc.seed ^ 0xd21f)
	for i := 0; i < sc.ticks; i++ {
		if sc.churn {
			if drv.Bernoulli(0.08) {
				s.Kill(drv.Intn(sc.n))
			}
			if drv.Bernoulli(0.08) {
				s.Revive(drv.Intn(sc.n))
			}
		} else if sc.dynamic {
			// Consume the churn draws anyway so mobility scenarios share the
			// same driver stream shape.
			for j := 0; j < drv.Intn(3); j++ {
				v := drv.Intn(sc.n)
				if err := s.Move(v, geom.Point{X: drv.Range(0, side), Y: drv.Range(0, side)}); err != nil {
					t.Fatal(err)
				}
			}
		}
		s.Step()
	}
	// Final per-node outcomes close the history.
	for v := 0; v < s.N(); v++ {
		fmt.Fprintf(&log, "f %d %v %d %d %d %d %d %d\n", v, s.Alive(v),
			s.FirstDecode(v), s.FirstMassDelivery(v), s.Transmissions(v),
			s.MassDeliveries(v), s.FirstFullCoverage(v), s.CoverageCount(v))
	}
	fmt.Fprintf(&log, "t %d %d %d\n", s.TotalTransmissions(), s.TotalMassDeliveries(), s.InvalidOps())
	// Guard against a vacuous comparison: the grid variant must actually have
	// used the index (injected runs keep the scan reception driver for fault
	// counter discipline, but dynamic ones still route neighbourhood queries
	// through the grid).
	if !disableGrid {
		if got := s.IndexMode(); got != "grid" {
			t.Fatalf("IndexMode = %q, want grid", got)
		}
		st := s.IndexStats()
		if !sc.inject && st.TxQueries == 0 {
			t.Fatal("indexed reception path was never exercised")
		}
		if sc.dynamic && st.NeighborQueries == 0 {
			t.Fatal("grid-backed neighbour path was never exercised")
		}
	} else if got := s.IndexMode(); got != "scan" {
		t.Fatalf("IndexMode = %q, want scan", got)
	}
	return log.String()
}

// TestGridScanEquivalence is the differential property test of the spatial
// index: for every scenario the grid-backed simulation must produce the
// byte-identical observable history — receptions, sensing outcomes, slot
// events, RSS bits, per-node outcomes — as the brute-force scan simulation.
func TestGridScanEquivalence(t *testing.T) {
	grey := func(d float64) bool { return math.Sin(d*13.7) > 0 }
	scenarios := []diffScenario{
		{name: "udg", n: 220, ticks: 120, seed: 1,
			model: func(func() int) model.Model { return model.NewUDG(10) },
			prims: CD | ACK | NTD},
		{name: "sinr", n: 220, ticks: 120, seed: 2,
			model: func(func() int) model.Model { return model.NewSINR(1500, 1.5, 1, 3, 0.1) },
			prims: CD | ACK},
		{name: "qudg-grey", n: 220, ticks: 120, seed: 3,
			model: func(func() int) model.Model { return model.NewQUDG(7, 11, grey) },
			prims: CD},
		{name: "protocol", n: 220, ticks: 120, seed: 4,
			model: func(func() int) model.Model { return model.NewProtocol(9, 13) },
			prims: FreeAck},
		{name: "rayleigh", n: 180, ticks: 100, seed: 5,
			model: func(tick func() int) model.Model {
				return model.NewRayleighSINR(1500, 1.5, 1, 3, 0.1, 5, tick)
			},
			prims: CD | ACK},
		{name: "channels-3", n: 220, ticks: 120, seed: 6, channels: 3,
			model: func(func() int) model.Model { return model.NewUDG(10) },
			prims: CD},
		{name: "power-scales", n: 220, ticks: 120, seed: 7, scales: true,
			model: func(func() int) model.Model { return model.NewSINR(1500, 1.5, 1, 3, 0.1) },
			prims: CD | ACK},
		{name: "churn", n: 220, ticks: 150, seed: 8, churn: true,
			model: func(func() int) model.Model { return model.NewUDG(10) },
			prims: CD | ACK},
		{name: "mobility", n: 220, ticks: 150, seed: 9, dynamic: true,
			model: func(func() int) model.Model { return model.NewUDG(10) },
			prims: CD | ACK},
		{name: "mobility-sinr-scales", n: 180, ticks: 120, seed: 10, dynamic: true, scales: true,
			model: func(func() int) model.Model { return model.NewSINR(1500, 1.5, 1, 3, 0.1) },
			prims: CD | ACK | NTD},
		{name: "faults", n: 220, ticks: 150, seed: 11, inject: true, dynamic: true,
			model: func(func() int) model.Model { return model.NewUDG(10) },
			prims: CD | ACK},
	}
	for _, sc := range scenarios {
		t.Run(sc.name, func(t *testing.T) {
			grid := runDiff(t, sc, false)
			brute := runDiff(t, sc, true)
			if grid != brute {
				t.Fatalf("grid and brute histories diverge:\n%s", firstDiffLine(grid, brute))
			}
		})
	}
}

// TestGridParallelRunsAgree runs the same grid-backed scenario on eight
// concurrent goroutines and compares every history to the sequential run —
// independent simulations must not interfere (run under -race in CI).
func TestGridParallelRunsAgree(t *testing.T) {
	sc := diffScenario{name: "par", n: 200, ticks: 100, seed: 21, churn: true,
		model: func(func() int) model.Model { return model.NewUDG(10) },
		prims: CD | ACK}
	want := runDiff(t, sc, false)
	const workers = 8
	got := make([]string, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			got[w] = runDiff(t, sc, false)
		}(w)
	}
	wg.Wait()
	for w, g := range got {
		if g != want {
			t.Fatalf("worker %d diverged from sequential run:\n%s", w, firstDiffLine(g, want))
		}
	}
}

// threeRadiusModel queries TransmittersWithin at three distinct radii,
// deliberately overflowing the slot view's two-radius cache.
type threeRadiusModel struct{ model.Model }

func (m threeRadiusModel) Decodes(view model.View, u, v int) bool {
	if view.Dist(u, v) > 10 {
		return false
	}
	a := view.TransmittersWithin(v, 10, u)
	b := view.TransmittersWithin(v, 6, u)
	c := view.TransmittersWithin(v, 3, u)
	return a == 0 || (b == 0 && c == 0)
}

func (m threeRadiusModel) MaxDecodeRange() float64 { return 10 }

// TestThirdRadiusFallback pins the visibility of the radius-cache fallback:
// a three-radius model must produce identical grid/brute results, a non-zero
// ViewRadiusFallbacks reading, and — only then — the lazily registered
// "sim/view/radius_fallback" counter.
func TestThirdRadiusFallback(t *testing.T) {
	sc := diffScenario{n: 150, ticks: 80, seed: 31,
		model: func(func() int) model.Model { return threeRadiusModel{model.NewUDG(10)} },
		prims: CD}
	if grid, brute := runDiff(t, sc, false), runDiff(t, sc, true); grid != brute {
		t.Fatalf("three-radius histories diverge:\n%s", firstDiffLine(grid, brute))
	}

	reg := metrics.NewRegistry()
	pts := workload.UniformDisc(150, workload.SideForDegree(150, 12, 10), 31)
	s, err := New(Config{
		Space: metric.NewEuclidean(pts),
		Model: threeRadiusModel{model.NewUDG(10)},
		P:     1500, Zeta: 3, Noise: 1, Eps: 0.1,
		Seed:    31,
		Metrics: reg,
	}, func(int) Protocol { return fixedProb(0.1) })
	if err != nil {
		t.Fatal(err)
	}
	if snapshotHasCounter(reg, "sim/view/radius_fallback") {
		t.Fatal("radius_fallback counter registered before any fallback occurred")
	}
	s.Run(80)
	if s.ViewRadiusFallbacks() == 0 {
		t.Fatal("three-radius model did not trigger the radius-cache fallback")
	}
	if !snapshotHasCounter(reg, "sim/view/radius_fallback") {
		t.Fatal("radius_fallback counter not registered after fallbacks")
	}
	if got := reg.CounterValue("sim/view/radius_fallback"); got != s.ViewRadiusFallbacks() {
		t.Fatalf("counter = %d, ViewRadiusFallbacks = %d", got, s.ViewRadiusFallbacks())
	}

	// Two-radius models must never register the counter (golden stability).
	reg2 := metrics.NewRegistry()
	s2, err := New(Config{
		Space: metric.NewEuclidean(pts),
		Model: model.NewUDG(10),
		P:     1500, Zeta: 3, Noise: 1, Eps: 0.1,
		Seed:    31,
		Metrics: reg2,
	}, func(int) Protocol { return fixedProb(0.1) })
	if err != nil {
		t.Fatal(err)
	}
	s2.Run(80)
	if s2.ViewRadiusFallbacks() != 0 || snapshotHasCounter(reg2, "sim/view/radius_fallback") {
		t.Fatal("two-radius model triggered the radius-cache fallback")
	}
}

// TestRadiusFallbackSharedRegistry is the regression test for the lazily
// registered fallback counter under concurrency: many cells (independent
// sims sharing one run-level registry, as grid runs do) race their first
// fallback, and registration must be idempotent — exactly one
// "sim/view/radius_fallback" instrument, totalling the per-sim fallback
// counts exactly. Run under -race in CI.
func TestRadiusFallbackSharedRegistry(t *testing.T) {
	reg := metrics.NewRegistry()
	const cells = 8
	var wg sync.WaitGroup
	perSim := make([]int64, cells)
	for w := 0; w < cells; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			pts := workload.UniformDisc(150, workload.SideForDegree(150, 12, 10), uint64(31+w))
			s, err := New(Config{
				Space: metric.NewEuclidean(pts),
				Model: threeRadiusModel{model.NewUDG(10)},
				P:     1500, Zeta: 3, Noise: 1, Eps: 0.1,
				Seed:    uint64(31 + w),
				Metrics: reg,
			}, func(int) Protocol { return fixedProb(0.1) })
			if err != nil {
				t.Error(err)
				return
			}
			s.Run(60)
			perSim[w] = s.ViewRadiusFallbacks()
		}(w)
	}
	wg.Wait()
	var want int64
	for w, v := range perSim {
		if v == 0 {
			t.Fatalf("cell %d triggered no fallbacks — race regression test is vacuous", w)
		}
		want += v
	}
	instruments := 0
	for _, c := range reg.Snapshot().Counters {
		if c.Name == "sim/view/radius_fallback" {
			instruments++
		}
	}
	if instruments != 1 {
		t.Fatalf("radius_fallback registered %d times, want exactly 1", instruments)
	}
	if got := reg.CounterValue("sim/view/radius_fallback"); got != want {
		t.Fatalf("shared counter = %d, sum of per-sim fallbacks = %d", got, want)
	}
}

func snapshotHasCounter(r *metrics.Registry, name string) bool {
	for _, c := range r.Snapshot().Counters {
		if c.Name == name {
			return true
		}
	}
	return false
}

// firstDiffLine locates the first line where two histories diverge.
func firstDiffLine(a, b string) string {
	al, bl := strings.Split(a, "\n"), strings.Split(b, "\n")
	for i := 0; i < len(al) && i < len(bl); i++ {
		if al[i] != bl[i] {
			return fmt.Sprintf("line %d:\n  grid:  %q\n  brute: %q", i+1, al[i], bl[i])
		}
	}
	return fmt.Sprintf("lengths differ: %d vs %d lines", len(al), len(bl))
}
