package sim

import (
	"math"
	"testing"

	"udwn/internal/geom"
	"udwn/internal/metric"
	"udwn/internal/model"
	"udwn/internal/workload"
)

// fuzzNodes is the population size of the field fuzz harness: small enough
// for thousands of executions per second, large enough for nontrivial
// interference compositions across two channels.
const fuzzNodes = 40

// fuzzState is the externally-driven transmit state shared by BOTH lockstep
// sims: each node transmits iff its tx bit is set, on channel
// (id+flip)%2, at double power iff its hi bit is set. The fuzzer mutates the
// bits between ticks, so both sims see identical per-tick compositions
// without consuming any RNG.
type fuzzState struct {
	tx, hi, flip [fuzzNodes]bool
}

type fuzzProto struct {
	st *fuzzState
	id int
}

func (p *fuzzProto) Act(n *Node, slot int) Action {
	if !p.st.tx[p.id] {
		return Action{}
	}
	act := Action{Transmit: true, Msg: Message{Kind: 5, Data: int64(p.id)}}
	ch := p.id % 2
	if p.st.flip[p.id] {
		ch = 1 - ch
	}
	act.Channel = ch
	if p.st.hi[p.id] {
		act.PowerScale = 2
	}
	return act
}

func (p *fuzzProto) Observe(n *Node, slot int, obs *Observation) {}

// FuzzFieldDelta drives an incremental-field sim and a brute recompute sim
// through the same fuzzer-chosen mutation program — transmit toggles, kills,
// revives, moves, channel retunes, power flips — and demands the two
// interference fields agree to the bit at every receiver after every slot
// (not just at epoch boundaries), along with the end-of-run outcomes.
func FuzzFieldDelta(f *testing.F) {
	f.Add(uint64(1), []byte("a5K9rMv2QpX0dTzL8wBn4cYh"))
	f.Add(uint64(2), []byte("kill&revive\x00\x01\x02\xffmove~~portal"))
	f.Add(uint64(3), []byte("\x03\x07\x30\x01\x05\x60\x04\x0b\x90\x02\x07\x00\x00\x01\x41\x03\x1f\x77"))
	f.Fuzz(func(t *testing.T, seed uint64, prog []byte) {
		prims := CD | ACK
		switch seed % 3 {
		case 1:
			prims = ACK // lazy field mode
		case 2:
			prims = CD
		}
		epoch := 1 + int(seed%300)
		side := workload.SideForDegree(fuzzNodes, 12, 9)
		var st fuzzState
		mk := func(mode FieldMode) *Sim {
			pts := workload.UniformDisc(fuzzNodes, side, seed|1)
			s, err := New(Config{
				Space: metric.NewEuclidean(pts),
				Model: model.NewSINR(1500, 1.5, 1, 3, 0.1),
				P:     1500, Zeta: 3, Noise: 1, Eps: 0.1,
				Seed:       seed,
				Primitives: prims,
				Channels:   2,
				Dynamic:    true,
				FieldMode:  mode,
				FieldEpoch: epoch,
			}, func(id int) Protocol { return &fuzzProto{st: &st, id: id} })
			if err != nil {
				t.Fatal(err)
			}
			return s
		}
		si := mk(FieldIncremental)
		sr := mk(FieldRecompute)

		// Three bytes per tick: opcode, node selector, operand. Cap the run
		// so pathological inputs stay fast.
		ticks := len(prog)/3 + 2
		if ticks > 200 {
			ticks = 200
		}
		for i := 0; i < ticks; i++ {
			if 3*i+2 < len(prog) {
				op, vb, x := prog[3*i], prog[3*i+1], prog[3*i+2]
				v := int(vb) % fuzzNodes
				switch op % 6 {
				case 0:
					st.tx[v] = !st.tx[v]
				case 1:
					si.Kill(v)
					sr.Kill(v)
				case 2:
					si.Revive(v)
					sr.Revive(v)
				case 3:
					p := geom.Point{
						X: side * float64(x) / 255,
						Y: side * float64(x^0x5a) / 255,
					}
					if err := si.Move(v, p); err != nil {
						t.Fatal(err)
					}
					if err := sr.Move(v, p); err != nil {
						t.Fatal(err)
					}
				case 4:
					st.hi[v] = !st.hi[v]
				case 5:
					st.flip[v] = !st.flip[v]
				}
			}
			si.Step()
			sr.Step()
			for v := 0; v < fuzzNodes; v++ {
				a, b := math.Float64bits(si.fieldAt(v)), math.Float64bits(sr.fieldAt(v))
				if a != b {
					t.Fatalf("tick %d receiver %d: incremental field %x != recompute %x",
						i, v, a, b)
				}
			}
		}
		if si.TotalTransmissions() != sr.TotalTransmissions() ||
			si.TotalMassDeliveries() != sr.TotalMassDeliveries() ||
			si.InvalidOps() != sr.InvalidOps() {
			t.Fatalf("outcome divergence: tx %d/%d md %d/%d inv %d/%d",
				si.TotalTransmissions(), sr.TotalTransmissions(),
				si.TotalMassDeliveries(), sr.TotalMassDeliveries(),
				si.InvalidOps(), sr.InvalidOps())
		}
		for v := 0; v < fuzzNodes; v++ {
			if si.FirstDecode(v) != sr.FirstDecode(v) || si.Transmissions(v) != sr.Transmissions(v) {
				t.Fatalf("node %d outcome divergence: decode %d/%d tx %d/%d", v,
					si.FirstDecode(v), sr.FirstDecode(v), si.Transmissions(v), sr.Transmissions(v))
			}
		}
	})
}
