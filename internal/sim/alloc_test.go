package sim

import (
	"testing"

	"udwn/internal/metric"
	"udwn/internal/model"
	"udwn/internal/workload"
)

// TestStepZeroAllocs pins the uninstrumented hot path at zero steady-state
// heap allocations per slot: the per-slot transmitted map, the per-slot view
// slice, and the per-node Observation value have all been replaced by scratch
// state on Sim. The first Step warms the lazily sized buffers (AllocsPerRun
// performs a warm-up call of its own on top of the explicit one here), so any
// non-zero reading is a regression on the steady state.
func TestStepZeroAllocs(t *testing.T) {
	cases := []struct {
		name string
		mk   func() *Sim
	}{
		{"sinr", func() *Sim {
			pts := workload.UniformDisc(512, workload.SideForDegree(512, 16, 9), 1)
			s, err := New(Config{
				Space: metric.NewEuclidean(pts),
				Model: model.NewSINR(1500, 1.5, 1, 3, 0.1),
				P:     1500, Zeta: 3, Noise: 1, Eps: 0.1,
				Seed:       1,
				Primitives: CD | ACK,
			}, func(int) Protocol { return fixedProb(1.0 / 64) })
			if err != nil {
				t.Fatal(err)
			}
			return s
		}},
		{"udg-indexed", func() *Sim {
			pts := workload.UniformDisc(512, workload.SideForDegree(512, 16, 10), 2)
			s, err := New(Config{
				Space: metric.NewEuclidean(pts),
				Model: model.NewUDG(10),
				P:     1500, Zeta: 3, Noise: 1, Eps: 0.1,
				Seed: 2,
			}, func(int) Protocol { return fixedProb(1.0 / 64) })
			if err != nil {
				t.Fatal(err)
			}
			return s
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := tc.mk()
			// Warm the lazily sized scratch: per-listener reception buffers
			// only reach their steady-state capacity once enough distinct
			// transmitter sets have been realised.
			s.Run(500)
			if avg := testing.AllocsPerRun(50, func() { s.Step() }); avg != 0 {
				t.Fatalf("Step allocates %.2f times per slot in steady state, want 0", avg)
			}
		})
	}
}
