package sim

// This file implements quiescence skipping: when a slot ends silent and
// every alive protocol promises it will stay inert for a while (and any
// injector promises the same), the simulator arms a skip window and resolves
// the next slots in O(1) each — advancing tick counters, emitting the
// observer events and metric updates an executed silent slot would have
// produced, and deferring the protocols' state advance to a single batched
// SkipQuiet call when the window ends. The external mutators (Kill, Revive,
// Move) cancel an armed window before touching anything, so dynamics always
// observe fully caught-up state. Runs are byte-identical with skipping on or
// off — pinned by TestQuiescenceSkipTransparent.

// Quiescent is implemented by protocols that can promise inertness. A
// return k > 0 from QuiescentFor is a contract about the next k ticks,
// conditional on every one of those slots being silent (no transmitter
// anywhere, so carrier sensing reads idle and nothing is received):
//
//   - the node will not transmit and its actions carry no channel or power
//     annotations (Act would return the zero Action);
//   - acting and observing consume no randomness from the node's stream;
//   - the node's state after k silent slot executions equals its state
//     after a single SkipQuiet(k) call;
//   - if the protocol implements ProbReporter, its reported probability is
//     constant over the stretch.
//
// Return 0 (or don't implement the interface) whenever any of this is in
// doubt; the simulator then runs every slot. QuiescentFor is consulted only
// after slots that ended silent, with the observation already delivered.
type Quiescent interface {
	// QuiescentFor returns how many upcoming silent ticks the node promises
	// to stay inert for (0 = none).
	QuiescentFor() int
	// SkipQuiet advances the node's state as if ticks silent slots executed.
	SkipQuiet(ticks int)
}

// QuiescentInjector is optionally implemented by injectors that can promise
// inertness, enabling quiescence skipping on fault-injected runs. An
// injector without it disables skipping whenever it is attached.
type QuiescentInjector interface {
	// QuiescentUntil returns a tick t >= now such that for every tick in
	// [now, t) the injector is inert: BeginTick would mutate nothing and
	// count nothing, Seized returns no seizure with no side effects, and
	// Observation leaves observations of silent slots untouched — all
	// assuming those slots are silent. t == now promises nothing.
	QuiescentUntil(now int) int
}

// maxQuietWindow caps a skip window so tick arithmetic stays comfortably
// clear of overflow even with effectively-infinite promises.
const maxQuietWindow = 1 << 30

// WheelStats counts the quiescence wheel's work, for run diagnostics and
// the opt-in "sim/wheel/*" metrics.
type WheelStats struct {
	// Windows is the number of skip windows armed.
	Windows int64
	// SkippedSlots is the number of slots resolved in O(1) inside windows.
	SkippedSlots int64
}

// WheelStats returns the cumulative quiescence-skipping counters.
func (s *Sim) WheelStats() WheelStats { return s.wstat }

// maybeArmQuiet runs at the end of a real Step. If the slot that just
// resolved was silent and everyone promises continued inertness, it arms a
// skip window of the minimum promised length.
func (s *Sim) maybeArmQuiet() {
	if s.cfg.DisableQuiescence || s.cfg.Async || s.n == 0 || s.busyAtZero {
		return
	}
	if len(s.txBuf) != 0 {
		return
	}
	win := maxQuietWindow
	if inj := s.cfg.Injector; inj != nil {
		qi, ok := inj.(QuiescentInjector)
		if !ok {
			return
		}
		until := qi.QuiescentUntil(s.tick)
		if until <= s.tick {
			return
		}
		if w := until - s.tick; w < win {
			win = w
		}
	}
	for v := 0; v < s.n; v++ {
		if !s.alive[v] {
			continue
		}
		q, ok := s.protos[v].(Quiescent)
		if !ok {
			return
		}
		k := q.QuiescentFor()
		if k <= 0 {
			return
		}
		if k < win {
			win = k
		}
	}
	s.quietLeft = win
	// Cache the constants every synthesized slot reports: with CD granted,
	// each alive (necessarily acting — sync mode) node observes an idle
	// carrier, and the contention histogram samples the (constant) mass.
	s.quietCDIdle = 0
	if s.cfg.Primitives.Has(CD) {
		s.quietCDIdle = s.AliveCount()
	}
	s.quietPM = 0
	if s.met != nil {
		s.quietPM = s.probMass()
	}
	s.wstat.Windows++
}

// quietStep resolves one slot of an armed window in O(1): no protocol,
// injector or field work, just the tick advance plus the instrumentation an
// executed silent slot would have produced.
func (s *Sim) quietStep() {
	s.quietLeft--
	s.quietElapsed++
	s.wstat.SkippedSlots++
	if s.met != nil || s.cfg.Observer != nil {
		if s.cfg.Observer != nil {
			// Re-slice the same scratch buffers a real slot would publish, so
			// nil-vs-empty slices in encoded events match exactly.
			s.txBuf = s.txBuf[:0]
			s.massDelBuf = s.massDelBuf[:0]
			s.decodersBuf = s.decodersBuf[:0]
			s.cfg.Observer(SlotEvent{
				Tick: s.tick, Slot: s.tick % s.slots, Transmitters: s.txBuf,
				MassDeliverers: s.massDelBuf, Decoders: s.decodersBuf,
				CDIdle: s.quietCDIdle,
			})
		}
		if m := s.met; m != nil {
			m.slots.Inc()
			m.cdIdle.Add(int64(s.quietCDIdle))
			m.txPerSlot.Observe(0)
			m.contention.Observe(s.quietPM)
			s.flushIndexStats()
			s.flushFieldStats()
		}
	}
	s.tick++
}

// wakeQuiet cancels an armed window and catches the protocols up; the
// mutators call it before touching any state so their effects land on a
// fully advanced simulation.
func (s *Sim) wakeQuiet() {
	if s.quietLeft == 0 && s.quietElapsed == 0 {
		return
	}
	s.flushQuiet()
}

// flushQuiet delivers the batched state advance for the slots skipped so
// far and disarms the window.
func (s *Sim) flushQuiet() {
	k := s.quietElapsed
	s.quietElapsed = 0
	s.quietLeft = 0
	if k == 0 {
		return
	}
	for v := 0; v < s.n; v++ {
		if !s.alive[v] {
			continue
		}
		if q, ok := s.protos[v].(Quiescent); ok {
			q.SkipQuiet(k)
		}
	}
}
