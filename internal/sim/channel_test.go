package sim

import (
	"testing"

	"udwn/internal/geom"
	"udwn/internal/metric"
	"udwn/internal/model"
)

// chanProto transmits/tunes per a fixed script of (transmit, channel).
type chanProto struct {
	script []struct {
		tx bool
		ch int
	}
	step int
	obs  []Observation
}

func (p *chanProto) Act(n *Node, slot int) Action {
	if p.step >= len(p.script) {
		return Action{}
	}
	st := p.script[p.step]
	p.step++
	return Action{Transmit: st.tx, Channel: st.ch, Msg: Message{Kind: 1, Data: int64(n.ID)}}
}

func (p *chanProto) Observe(n *Node, slot int, obs *Observation) {
	cp := *obs
	cp.Received = append([]Recv(nil), obs.Received...)
	p.obs = append(p.obs, cp)
}

func chanSim(t *testing.T, channels int, scripts map[int][]struct {
	tx bool
	ch int
}) *Sim {
	t.Helper()
	e := metric.NewEuclidean([]geom.Point{{X: 0, Y: 0}, {X: 1, Y: 0}, {X: 2, Y: 0}})
	s, err := New(Config{
		Space: e,
		Model: model.NewSINR(8, 1, 1, 3, 0.1),
		P:     8, Zeta: 3, Noise: 1, Eps: 0.1,
		Seed:       1,
		Channels:   channels,
		Primitives: CD | ACK,
	}, func(id int) Protocol {
		return &chanProto{script: scripts[id]}
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

type step = struct {
	tx bool
	ch int
}

func TestCrossChannelIsolation(t *testing.T) {
	// Node 0 transmits on channel 1; node 1 listens on channel 0: no decode.
	// Next slot both on channel 1: decode.
	s := chanSim(t, 2, map[int][]step{
		0: {{true, 1}, {true, 1}},
		1: {{false, 0}, {false, 1}},
	})
	s.Step()
	p1 := s.Protocol(1).(*chanProto)
	if len(p1.obs[0].Received) != 0 {
		t.Fatal("cross-channel decode must not happen")
	}
	s.Step()
	if len(p1.obs[1].Received) != 1 {
		t.Fatal("same-channel decode must happen")
	}
}

func TestCrossChannelNoInterference(t *testing.T) {
	// Nodes 0 and 2 transmit on different channels; node 1 (between them)
	// tunes to node 0's channel and decodes it despite node 2 transmitting —
	// the collision that destroys both on a single channel.
	s := chanSim(t, 2, map[int][]step{
		0: {{true, 0}},
		1: {{false, 0}},
		2: {{true, 1}},
	})
	s.Step()
	p1 := s.Protocol(1).(*chanProto)
	if len(p1.obs[0].Received) != 1 || p1.obs[0].Received[0].From != 0 {
		t.Fatalf("other-channel transmitter must not interfere: %+v", p1.obs[0])
	}
	// Single-channel control: the same scripts on one channel collide.
	s1 := chanSim(t, 1, map[int][]step{
		0: {{true, 0}},
		1: {{false, 0}},
		2: {{true, 0}},
	})
	s1.Step()
	if len(s1.Protocol(1).(*chanProto).obs[0].Received) != 0 {
		t.Fatal("single-channel control must collide")
	}
}

func TestPerChannelCarrierSense(t *testing.T) {
	// Node 1 next to a transmitter on channel 1 reads Busy only when tuned
	// to channel 1.
	s := chanSim(t, 2, map[int][]step{
		0: {{true, 1}, {true, 1}},
		1: {{false, 0}, {false, 1}},
	})
	s.Step()
	s.Step()
	p1 := s.Protocol(1).(*chanProto)
	if p1.obs[0].Busy {
		t.Fatal("channel 0 must read Idle while traffic is on channel 1")
	}
	if !p1.obs[1].Busy {
		t.Fatal("channel 1 must read Busy next to its transmitter")
	}
}

func TestChannelClamping(t *testing.T) {
	// Channel index beyond range clamps instead of corrupting state.
	s := chanSim(t, 2, map[int][]step{
		0: {{true, 99}},
		1: {{false, 1}},
	})
	s.Step()
	if len(s.Protocol(1).(*chanProto).obs[0].Received) != 1 {
		t.Fatal("clamped channel 99 → 1 should reach the listener on 1")
	}
}

func TestChannelsConfigValidation(t *testing.T) {
	e := metric.NewEuclidean([]geom.Point{{X: 0, Y: 0}})
	mk := func(c Config) error {
		_, err := New(c, func(int) Protocol { return &chanProto{} })
		return err
	}
	base := Config{
		Space: e, Model: model.NewSINR(8, 1, 1, 3, 0.1),
		P: 8, Zeta: 3, Noise: 1, Eps: 0.1,
	}
	bad := base
	bad.Channels = 17
	if mk(bad) == nil {
		t.Fatal("17 channels must be rejected")
	}
	bad = base
	bad.Channels = 4
	bad.Async = true
	if mk(bad) == nil {
		t.Fatal("async multi-channel must be rejected")
	}
	ok := base
	ok.Channels = 4
	if err := mk(ok); err != nil {
		t.Fatal(err)
	}
}

func TestMassDeliveryAcrossChannels(t *testing.T) {
	// Node 1 (neighbours 0 and 2) transmits on channel 0, but node 2 is
	// tuned to channel 1 → no atomic mass delivery; coverage accumulates
	// once node 2 retunes.
	e := metric.NewEuclidean([]geom.Point{{X: 0, Y: 0}, {X: 1, Y: 0}, {X: 2, Y: 0}})
	s, err := New(Config{
		Space: e,
		Model: model.NewSINR(8, 1, 1, 3, 0.1),
		P:     8, Zeta: 3, Noise: 1, Eps: 0.1,
		Seed: 1, Channels: 2, TrackCoverage: true,
	}, func(id int) Protocol {
		scripts := map[int][]step{
			1: {{true, 0}, {true, 0}},
			2: {{false, 1}, {false, 0}},
		}
		return &chanProto{script: scripts[id]}
	})
	if err != nil {
		t.Fatal(err)
	}
	s.Step()
	if s.FirstMassDelivery(1) != -1 {
		t.Fatal("mass delivery must fail while a neighbour is off-channel")
	}
	s.Step()
	if s.FirstMassDelivery(1) != 1 {
		t.Fatalf("mass delivery at tick 1, got %d", s.FirstMassDelivery(1))
	}
	if s.FirstFullCoverage(1) != 1 {
		t.Fatalf("coverage completes at tick 1, got %d", s.FirstFullCoverage(1))
	}
}
