package sim

import "testing"

// TestStepCancelPanicsCancelled pins the cooperative-cancellation hook: once
// Config.Cancel reports true, the next Step panics with the Cancelled
// sentinel carrying the tick it stopped at, and no further slot work runs.
func TestStepCancelPanicsCancelled(t *testing.T) {
	cfg := lineConfig()
	fired := false
	cfg.Cancel = func() bool { return fired }
	s := newSim(t, cfg, nil)
	s.Step() // Cancel not fired yet: steps normally

	fired = true
	defer func() {
		p := recover()
		c, ok := p.(Cancelled)
		if !ok {
			t.Fatalf("expected Cancelled panic, got %v", p)
		}
		if c.Tick != 1 {
			t.Fatalf("Cancelled.Tick = %d, want 1", c.Tick)
		}
		if want := "sim: run cancelled at tick 1"; c.String() != want {
			t.Fatalf("Cancelled.String() = %q, want %q", c.String(), want)
		}
	}()
	s.Step()
	t.Fatal("Step returned despite Cancel firing")
}

// TestStepNilCancelUnaffected pins that the hook is optional: a nil Cancel
// adds no behaviour (the historical configuration keeps working).
func TestStepNilCancelUnaffected(t *testing.T) {
	s := newSim(t, lineConfig(), nil)
	for i := 0; i < 5; i++ {
		s.Step()
	}
	if s.Tick() != 5 {
		t.Fatalf("tick = %d, want 5", s.Tick())
	}
}
