package sim

import "udwn/internal/metrics"

// stepMetrics holds the tick loop's metric handles, resolved once at
// construction so the per-slot cost is plain atomic adds — no map lookups.
// All instruments live under the "sim/" prefix; when several simulations
// share one registry (the experiment grid aggregates every cell into the
// run registry) the get-or-create lookups return the shared instruments and
// the commutative updates merge deterministically.
type stepMetrics struct {
	slots, tx, decodes, mass          *metrics.Counter
	cdBusy, cdIdle, ack, ackMiss, ntd *metrics.Counter
	txPerSlot                         *metrics.Histogram
	contention                        *metrics.Histogram

	// reg backs lazy registration of instruments that must stay absent from
	// snapshots until an event actually occurs (see noteRadiusFallback).
	reg *metrics.Registry
	// radiusFallback counts slot-view radius-cache misses; nil until the
	// first miss registers it.
	radiusFallback *metrics.Counter
	// Spatial-index work counters; nil unless Config.IndexMetrics opted in.
	idxTx, idxCand, idxCount, idxNbr *metrics.Counter
	// Incremental-field and quiescence-wheel work counters; nil unless
	// Config.IndexMetrics opted in.
	fldReused, fldDelta, fldRebuild, fldEpoch, fldLazy *metrics.Counter
	whlWindows, whlSkipped                             *metrics.Counter
}

// Contention histogram bucket bounds. Declaration-fixed (see the metrics
// package determinism contract): txPerSlotBounds spans one transmitter to a
// dense collision storm; contentionBounds brackets the Try&Adjust
// equilibrium band, which the paper drives to a constant (Prop. 3.1) — most
// mass should land in the low single-digit buckets once converged.
var (
	txPerSlotBounds  = []float64{0, 1, 2, 4, 8, 16, 32, 64, 128, 256}
	contentionBounds = []float64{0.25, 0.5, 1, 2, 4, 8, 16, 32, 64}
)

func newStepMetrics(r *metrics.Registry, indexMetrics bool) *stepMetrics {
	m := &stepMetrics{
		slots:      r.Counter("sim/slots"),
		tx:         r.Counter("sim/tx"),
		decodes:    r.Counter("sim/decodes"),
		mass:       r.Counter("sim/mass_deliveries"),
		cdBusy:     r.Counter("sim/cd_busy"),
		cdIdle:     r.Counter("sim/cd_idle"),
		ack:        r.Counter("sim/ack"),
		ackMiss:    r.Counter("sim/ack_miss"),
		ntd:        r.Counter("sim/ntd"),
		txPerSlot:  r.Histogram("sim/tx_per_slot", txPerSlotBounds...),
		contention: r.Histogram("sim/contention", contentionBounds...),
		reg:        r,
	}
	if indexMetrics {
		m.idxTx = r.Counter("sim/index/tx_queries")
		m.idxCand = r.Counter("sim/index/candidates")
		m.idxCount = r.Counter("sim/index/count_queries")
		m.idxNbr = r.Counter("sim/index/neighbor_queries")
		m.fldReused = r.Counter("sim/field/reused_slots")
		m.fldDelta = r.Counter("sim/field/delta_slots")
		m.fldRebuild = r.Counter("sim/field/rebuild_slots")
		m.fldEpoch = r.Counter("sim/field/epoch_rebuilds")
		m.fldLazy = r.Counter("sim/field/lazy_evals")
		m.whlWindows = r.Counter("sim/wheel/windows")
		m.whlSkipped = r.Counter("sim/wheel/skipped_slots")
	}
	return m
}

// flushIndexStats exports the spatial-index counter deltas accumulated since
// the last flush; no-op unless Config.IndexMetrics registered the handles.
func (s *Sim) flushIndexStats() {
	m := s.met
	if m == nil || m.idxTx == nil {
		return
	}
	cur, prev := s.idx, s.idxFlushed
	m.idxTx.Add(cur.TxQueries - prev.TxQueries)
	m.idxCand.Add(cur.Candidates - prev.Candidates)
	m.idxCount.Add(cur.CountQueries - prev.CountQueries)
	m.idxNbr.Add(cur.NeighborQueries - prev.NeighborQueries)
	s.idxFlushed = cur
}

// flushFieldStats exports the incremental-field and quiescence-wheel counter
// deltas accumulated since the last flush; no-op unless Config.IndexMetrics
// registered the handles.
func (s *Sim) flushFieldStats() {
	m := s.met
	if m == nil || m.fldReused == nil {
		return
	}
	f, fp := s.fstat, s.fstatFlushed
	m.fldReused.Add(f.ReusedSlots - fp.ReusedSlots)
	m.fldDelta.Add(f.DeltaSlots - fp.DeltaSlots)
	m.fldRebuild.Add(f.RebuildSlots - fp.RebuildSlots)
	m.fldEpoch.Add(f.EpochRebuilds - fp.EpochRebuilds)
	m.fldLazy.Add(f.LazyEvals - fp.LazyEvals)
	s.fstatFlushed = f
	w, wp := s.wstat, s.wstatFlushed
	m.whlWindows.Add(w.Windows - wp.Windows)
	m.whlSkipped.Add(w.SkippedSlots - wp.SkippedSlots)
	s.wstatFlushed = w
}

// probMass sums the current transmission probabilities of alive protocols
// implementing ProbReporter — the global probability mass whose vicinity
// restriction is the paper's contention P^ρ_t(v). O(n); only run on
// instrumented slots.
func (s *Sim) probMass() float64 {
	total := 0.0
	for v := 0; v < s.n; v++ {
		if !s.alive[v] {
			continue
		}
		if pr, ok := s.protos[v].(ProbReporter); ok {
			total += pr.TransmitProb()
		}
	}
	return total
}
