package sim

import "udwn/internal/metrics"

// stepMetrics holds the tick loop's metric handles, resolved once at
// construction so the per-slot cost is plain atomic adds — no map lookups.
// All instruments live under the "sim/" prefix; when several simulations
// share one registry (the experiment grid aggregates every cell into the
// run registry) the get-or-create lookups return the shared instruments and
// the commutative updates merge deterministically.
type stepMetrics struct {
	slots, tx, decodes, mass         *metrics.Counter
	cdBusy, cdIdle, ack, ackMiss, ntd *metrics.Counter
	txPerSlot                        *metrics.Histogram
	contention                       *metrics.Histogram
}

// Contention histogram bucket bounds. Declaration-fixed (see the metrics
// package determinism contract): txPerSlotBounds spans one transmitter to a
// dense collision storm; contentionBounds brackets the Try&Adjust
// equilibrium band, which the paper drives to a constant (Prop. 3.1) — most
// mass should land in the low single-digit buckets once converged.
var (
	txPerSlotBounds  = []float64{0, 1, 2, 4, 8, 16, 32, 64, 128, 256}
	contentionBounds = []float64{0.25, 0.5, 1, 2, 4, 8, 16, 32, 64}
)

func newStepMetrics(r *metrics.Registry) *stepMetrics {
	return &stepMetrics{
		slots:      r.Counter("sim/slots"),
		tx:         r.Counter("sim/tx"),
		decodes:    r.Counter("sim/decodes"),
		mass:       r.Counter("sim/mass_deliveries"),
		cdBusy:     r.Counter("sim/cd_busy"),
		cdIdle:     r.Counter("sim/cd_idle"),
		ack:        r.Counter("sim/ack"),
		ackMiss:    r.Counter("sim/ack_miss"),
		ntd:        r.Counter("sim/ntd"),
		txPerSlot:  r.Histogram("sim/tx_per_slot", txPerSlotBounds...),
		contention: r.Histogram("sim/contention", contentionBounds...),
	}
}

// probMass sums the current transmission probabilities of alive protocols
// implementing ProbReporter — the global probability mass whose vicinity
// restriction is the paper's contention P^ρ_t(v). O(n); only run on
// instrumented slots.
func (s *Sim) probMass() float64 {
	total := 0.0
	for v := 0; v < s.n; v++ {
		if !s.alive[v] {
			continue
		}
		if pr, ok := s.protos[v].(ProbReporter); ok {
			total += pr.TransmitProb()
		}
	}
	return total
}
