package sim

import (
	"testing"

	"udwn/internal/geom"
	"udwn/internal/metric"
	"udwn/internal/model"
)

// scriptProto transmits according to a fixed per-slot script and records
// everything it observes.
type scriptProto struct {
	transmitAt map[int]bool // tick -> transmit?
	tick       int
	obs        []Observation
	heard      [][]Recv
}

func (p *scriptProto) Act(n *Node, slot int) Action {
	t := p.tick
	p.tick++
	if p.transmitAt[t] {
		return Action{Transmit: true, Msg: Message{Kind: 1, Data: int64(n.ID)}}
	}
	return Action{}
}

func (p *scriptProto) Observe(n *Node, slot int, obs *Observation) {
	cp := *obs
	cp.Received = append([]Recv(nil), obs.Received...)
	p.obs = append(p.obs, cp)
}

func (p *scriptProto) Hear(n *Node, recv []Recv) {
	p.heard = append(p.heard, append([]Recv(nil), recv...))
}

// lineConfig builds three collinear nodes at x = 0, 1, 2 under SINR with
// P=8, β=1, N=1, ζ=3 (R = 2, RB = 1.8 at ε=0.1).
func lineConfig() Config {
	e := metric.NewEuclidean([]geom.Point{{X: 0, Y: 0}, {X: 1, Y: 0}, {X: 2, Y: 0}})
	return Config{
		Space: e,
		Model: model.NewSINR(8, 1, 1, 3, 0.1),
		P:     8, Zeta: 3, Noise: 1, Eps: 0.1,
		Seed:       1,
		Primitives: CD | ACK | NTD,
	}
}

func newSim(t *testing.T, cfg Config, scripts map[int]map[int]bool) *Sim {
	t.Helper()
	s, err := New(cfg, func(id int) Protocol {
		return &scriptProto{transmitAt: scripts[id]}
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func proto(s *Sim, id int) *scriptProto { return s.Protocol(id).(*scriptProto) }

func TestSingleTransmissionDelivered(t *testing.T) {
	s := newSim(t, lineConfig(), map[int]map[int]bool{0: {0: true}})
	s.Step()
	// Node 1 (d=1) and node 2 (d=2 = R, not < R... d=2 gives SINR exactly β,
	// strict inequality fails) — only node 1 decodes; but mass delivery
	// requires only neighbours within RB=1.8, which is just node 1.
	p1 := proto(s, 1)
	if len(p1.obs[0].Received) != 1 || p1.obs[0].Received[0].From != 0 {
		t.Fatalf("node 1 should decode node 0: %+v", p1.obs[0])
	}
	p2 := proto(s, 2)
	if len(p2.obs[0].Received) != 0 {
		t.Fatal("node 2 at exactly R must not decode (strict SINR)")
	}
	if s.FirstMassDelivery(0) != 0 {
		t.Fatalf("node 0 first mass delivery = %d, want 0", s.FirstMassDelivery(0))
	}
	if s.FirstDecode(1) != 0 {
		t.Fatal("node 1 should be marked informed at tick 0")
	}
	if s.FirstDecode(2) != -1 {
		t.Fatal("node 2 must not be informed")
	}
}

func TestHalfDuplex(t *testing.T) {
	// Nodes 0 and 1 transmit simultaneously: neither receives anything, and
	// neither mass-delivers (each is the other's neighbour).
	s := newSim(t, lineConfig(), map[int]map[int]bool{0: {0: true}, 1: {0: true}})
	s.Step()
	if len(proto(s, 0).obs[0].Received) != 0 || len(proto(s, 1).obs[0].Received) != 0 {
		t.Fatal("transmitters must not receive")
	}
	if s.FirstMassDelivery(0) != -1 || s.FirstMassDelivery(1) != -1 {
		t.Fatal("simultaneous neighbours cannot mass-deliver")
	}
}

func TestCDBusyIdle(t *testing.T) {
	s := newSim(t, lineConfig(), map[int]map[int]bool{0: {0: true}})
	s.Step()
	s.Step()
	// Tick 0: node 1 is 1 < RB away from transmitter 0 → Busy. Node 2 is at
	// distance 2 > RB → received power 1 < busy threshold ≈ 1.37 → Idle.
	if !proto(s, 1).obs[0].Busy {
		t.Fatal("node 1 must sense Busy")
	}
	if proto(s, 2).obs[0].Busy {
		t.Fatal("node 2 must sense Idle")
	}
	// Tick 1: silence → everyone Idle.
	if proto(s, 1).obs[1].Busy || proto(s, 2).obs[1].Busy {
		t.Fatal("silent slot must be Idle")
	}
}

func TestAckOnClearChannel(t *testing.T) {
	// A lone transmitter with zero interference: delivery succeeds and the
	// sensed interference (0) is below any ACK threshold.
	s := newSim(t, lineConfig(), map[int]map[int]bool{0: {0: true}})
	s.Step()
	if !proto(s, 0).obs[0].Acked {
		t.Fatal("clear-channel transmission must be ACKed")
	}
}

func TestAckDeniedOnCollision(t *testing.T) {
	// 0 and 2 transmit together; receiver 1 sits between them at d=1 from
	// both: SINR = 1/(1+1) < 1 → no decode → neither transmitter delivers.
	s := newSim(t, lineConfig(), map[int]map[int]bool{0: {0: true}, 2: {0: true}})
	s.Step()
	if proto(s, 0).obs[0].Acked || proto(s, 2).obs[0].Acked {
		t.Fatal("failed delivery must not be ACKed")
	}
	if s.FirstDecode(1) != -1 {
		t.Fatal("node 1 must not decode a collision")
	}
}

func TestNTD(t *testing.T) {
	// ε=0.1, R=2 → NTD radius εR/2 = 0.1. A sender at distance 0.05
	// triggers NTD; the far node does not.
	e := metric.NewEuclidean([]geom.Point{{X: 0, Y: 0}, {X: 0.05, Y: 0}, {X: 1.5, Y: 0}})
	cfg := lineConfig()
	cfg.Space = e
	s := newSim(t, cfg, map[int]map[int]bool{0: {0: true}})
	s.Step()
	if !proto(s, 1).obs[0].NTD {
		t.Fatal("node at 0.05 < εR/2 must detect NTD")
	}
	if proto(s, 2).obs[0].NTD {
		t.Fatal("node at 1.5 must not detect NTD")
	}
	if len(proto(s, 2).obs[0].Received) != 1 {
		t.Fatal("node at 1.5 should still decode")
	}
}

func TestPrimitivesGating(t *testing.T) {
	cfg := lineConfig()
	cfg.Primitives = 0
	s := newSim(t, cfg, map[int]map[int]bool{0: {0: true}})
	s.Step()
	if proto(s, 0).obs[0].Acked {
		t.Fatal("ACK must be gated off")
	}
	if proto(s, 1).obs[0].Busy || proto(s, 1).obs[0].NTD {
		t.Fatal("CD/NTD must be gated off")
	}
	if len(proto(s, 1).obs[0].Received) != 1 {
		t.Fatal("message reception works without primitives")
	}
}

func TestFreeAck(t *testing.T) {
	cfg := lineConfig()
	cfg.Primitives = FreeAck
	s := newSim(t, cfg, map[int]map[int]bool{0: {0: true}})
	s.Step()
	if !proto(s, 0).obs[0].Acked {
		t.Fatal("FreeAck must reflect ground-truth delivery")
	}
}

func TestKillRemovesNode(t *testing.T) {
	s := newSim(t, lineConfig(), map[int]map[int]bool{0: {0: true, 1: true}})
	s.Kill(1)
	s.Step()
	if s.AliveCount() != 2 {
		t.Fatalf("AliveCount = %d", s.AliveCount())
	}
	// Node 1 is dead: it neither receives nor blocks node 0's mass delivery
	// (no alive neighbours within RB → vacuous success).
	if len(proto(s, 1).obs) != 0 {
		t.Fatal("dead node must not act")
	}
	if s.FirstMassDelivery(0) != 0 {
		t.Fatal("mass delivery over empty neighbourhood must succeed")
	}
}

func TestReviveFreshState(t *testing.T) {
	s := newSim(t, lineConfig(), nil)
	old := s.Protocol(1)
	s.Kill(1)
	s.Revive(1)
	if s.Protocol(1) == old {
		t.Fatal("revive must create a fresh protocol instance")
	}
	if !s.Alive(1) {
		t.Fatal("revived node must be alive")
	}
	s.Revive(1) // reviving an alive node is a no-op
	if s.AliveCount() != 3 {
		t.Fatal("double revive corrupted state")
	}
}

func TestNeighborsAndCounts(t *testing.T) {
	s := newSim(t, lineConfig(), nil)
	// RB = 1.8: node 0's neighbours = {1}; node 1's = {0, 2}.
	if got := s.Neighbors(0); len(got) != 1 || got[0] != 1 {
		t.Fatalf("Neighbors(0) = %v", got)
	}
	if got := s.NeighborCount(1); got != 2 {
		t.Fatalf("NeighborCount(1) = %d", got)
	}
	s.Kill(2)
	if got := s.NeighborCount(1); got != 1 {
		t.Fatalf("NeighborCount(1) after kill = %d", got)
	}
}

func TestAsyncPeriods(t *testing.T) {
	cfg := lineConfig()
	cfg.Async = true
	s := newSim(t, cfg, nil)
	s.Run(24)
	// Each node acts every period ∈ {2,3,4} ticks: in 24 ticks it acts
	// between 6 and 12 times.
	for id := 0; id < 3; id++ {
		acts := len(proto(s, id).obs)
		if acts < 6 || acts > 12 {
			t.Fatalf("node %d acted %d times in 24 ticks", id, acts)
		}
	}
}

func TestAsyncHear(t *testing.T) {
	// In async mode a non-acting node must still receive messages, via Hear.
	cfg := lineConfig()
	cfg.Async = true
	s, err := New(cfg, func(id int) Protocol {
		if id == 0 {
			// Node 0 transmits at every one of its boundaries.
			always := map[int]bool{}
			for i := 0; i < 100; i++ {
				always[i] = true
			}
			return &scriptProto{transmitAt: always}
		}
		return &scriptProto{}
	})
	if err != nil {
		t.Fatal(err)
	}
	s.Run(30)
	p1 := proto(s, 1)
	inObs := 0
	for _, o := range p1.obs {
		inObs += len(o.Received)
	}
	if inObs+len(p1.heard) == 0 {
		t.Fatal("node 1 never received anything in async mode")
	}
	// With differing periods, some receipts must arrive outside node 1's own
	// boundaries for at least one seed/period combination; tolerate zero but
	// verify the plumbing by checking total receipts are substantial.
	if inObs+len(p1.heard) < 5 {
		t.Fatalf("too few receipts: %d", inObs+len(p1.heard))
	}
}

func TestTwoSlotRounds(t *testing.T) {
	cfg := lineConfig()
	cfg.Slots = 2
	s := newSim(t, cfg, nil)
	s.Run(4)
	p := proto(s, 0)
	wantSlots := []int{0, 1, 0, 1}
	for i, o := range p.obs {
		if o.Slot != wantSlots[i] {
			t.Fatalf("obs %d slot = %d, want %d", i, o.Slot, wantSlots[i])
		}
	}
	if s.Round() != 2 {
		t.Fatalf("Round = %d, want 2", s.Round())
	}
}

func TestConfigValidation(t *testing.T) {
	base := lineConfig()
	factory := func(int) Protocol { return &scriptProto{} }
	cases := map[string]func(Config) Config{
		"no space":      func(c Config) Config { c.Space = nil; return c },
		"no model":      func(c Config) Config { c.Model = nil; return c },
		"bad eps":       func(c Config) Config { c.Eps = 1.5; return c },
		"bad slots":     func(c Config) Config { c.Slots = 9; return c },
		"async 2-slot":  func(c Config) Config { c.Async = true; c.Slots = 2; return c },
		"bad P":         func(c Config) Config { c.P = 0; return c },
		"bad sense eps": func(c Config) Config { c.SenseEps = 2; return c },
	}
	for name, mod := range cases {
		t.Run(name, func(t *testing.T) {
			if _, err := New(mod(base), factory); err == nil {
				t.Fatal("expected error")
			}
		})
	}
	if _, err := New(base, nil); err == nil {
		t.Fatal("nil factory must error")
	}
}

func TestMoveRequiresDynamic(t *testing.T) {
	s := newSim(t, lineConfig(), nil)
	if err := s.Move(0, geom.Point{X: 5, Y: 5}); err == nil {
		t.Fatal("Move on static sim must error")
	}
	cfg := lineConfig()
	cfg.Dynamic = true
	s2 := newSim(t, cfg, nil)
	if err := s2.Move(0, geom.Point{X: 5, Y: 5}); err != nil {
		t.Fatal(err)
	}
	if got := s2.Space().Dist(0, 1); got < 4 {
		t.Fatalf("move not applied: d = %v", got)
	}
}

func TestDynamicNeighborsTrackMoves(t *testing.T) {
	cfg := lineConfig()
	cfg.Dynamic = true
	s := newSim(t, cfg, nil)
	if s.NeighborCount(0) != 1 {
		t.Fatalf("initial NeighborCount(0) = %d", s.NeighborCount(0))
	}
	if err := s.Move(2, geom.Point{X: 0.5, Y: 0}); err != nil {
		t.Fatal(err)
	}
	if s.NeighborCount(0) != 2 {
		t.Fatalf("NeighborCount(0) after move = %d", s.NeighborCount(0))
	}
}

func TestRunUntil(t *testing.T) {
	s := newSim(t, lineConfig(), map[int]map[int]bool{0: {3: true}})
	ticks, ok := s.RunUntil(func(s *Sim) bool { return s.FirstMassDelivery(0) >= 0 }, 100)
	if !ok || ticks != 4 {
		t.Fatalf("RunUntil = (%d, %v), want (4, true)", ticks, ok)
	}
	_, ok = s.RunUntil(func(s *Sim) bool { return false }, 5)
	if ok {
		t.Fatal("unsatisfiable predicate reported success")
	}
}

func TestDeterministicReplay(t *testing.T) {
	run := func() []int {
		cfg := lineConfig()
		cfg.Seed = 99
		s, err := New(cfg, func(id int) Protocol {
			return &coinProto{}
		})
		if err != nil {
			t.Fatal(err)
		}
		s.Run(50)
		return []int{s.Transmissions(0), s.Transmissions(1), s.Transmissions(2),
			int(s.TotalMassDeliveries())}
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("replay diverged: %v vs %v", a, b)
		}
	}
}

// coinProto transmits with probability 1/4 each slot using the node RNG.
type coinProto struct{}

func (coinProto) Act(n *Node, slot int) Action {
	return Action{Transmit: n.RNG.Bernoulli(0.25)}
}
func (coinProto) Observe(*Node, int, *Observation) {}

func TestContentionInstrumentation(t *testing.T) {
	s, err := New(lineConfig(), func(id int) Protocol { return fixedProb(0.25) })
	if err != nil {
		t.Fatal(err)
	}
	// All three nodes within radius 3 of node 1 → contention 0.75.
	if got := s.Contention(1, 3); got != 0.75 {
		t.Fatalf("Contention = %v", got)
	}
	// Radius 0.5: only node 1 itself.
	if got := s.Contention(1, 0.5); got != 0.25 {
		t.Fatalf("Contention small radius = %v", got)
	}
	s.Kill(0)
	if got := s.Contention(1, 3); got != 0.5 {
		t.Fatalf("Contention after kill = %v", got)
	}
}

type fixedProb float64

func (p fixedProb) Act(n *Node, slot int) Action {
	return Action{Transmit: n.RNG.Bernoulli(float64(p))}
}
func (fixedProb) Observe(*Node, int, *Observation) {}
func (p fixedProb) TransmitProb() float64          { return float64(p) }

func TestUDGSimulation(t *testing.T) {
	// Same line topology under UDG(1.5): node 0's transmission reaches node
	// 1; node 2 is out of range. Simultaneous 0 and 2 collide at node 1.
	e := metric.NewEuclidean([]geom.Point{{X: 0, Y: 0}, {X: 1, Y: 0}, {X: 2, Y: 0}})
	cfg := Config{
		Space: e, Model: model.NewUDG(1.5),
		P: 1, Zeta: 3, Noise: 0.01, Eps: 0.1,
		Seed: 1, Primitives: CD | ACK,
	}
	s := newSim(t, cfg, map[int]map[int]bool{0: {0: true, 1: true}, 2: {1: true}})
	s.Step() // only 0 transmits
	if len(proto(s, 1).obs[0].Received) != 1 {
		t.Fatal("UDG neighbour must decode")
	}
	s.Step() // 0 and 2 transmit: collision at 1
	if len(proto(s, 1).obs[1].Received) != 0 {
		t.Fatal("UDG collision must destroy both")
	}
}

func TestMarkInformed(t *testing.T) {
	s := newSim(t, lineConfig(), nil)
	s.MarkInformed(2)
	if s.FirstDecode(2) != 0 {
		t.Fatal("MarkInformed failed")
	}
	s.Run(3)
	s.MarkInformed(2) // no-op: already informed
	if s.FirstDecode(2) != 0 {
		t.Fatal("MarkInformed must not overwrite")
	}
}
