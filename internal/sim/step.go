package sim

import "math"

// slotView implements model.View over the current slot with cached
// interference sums and lazily resolved within-radius transmitter counts.
//
// Two count paths exist. The scan path builds a full per-node count vector
// per queried radius in one O(|tx|·n) pass — the only option for opaque
// (non-Euclidean) spaces. The grid path answers each (node, radius) query
// from the simulation's spatial index in O(local density), memoized per node
// for the slot; Step enables it (useGrid) whenever the sim has a live grid.
// Hand-built views (tests) leave useGrid false and exercise the scan path.
// Both paths apply the exact Space.Dist comparison, so their counts are
// identical.
type slotView struct {
	s  *Sim
	tx []int
	// total[v] is Σ_w Power(w,v) over transmitters w (own signal excluded
	// automatically since Power(v,v) = 0).
	total []float64
	// scale holds per-node transmission power scales (1 for unscaled).
	scale []float64
	// ch is the channel this view covers; transmitter-membership tests
	// filter by it.
	ch int8
	// useGrid selects the spatial-index count path.
	useGrid bool
	// epoch is tick+1 while the view is live inside Step, 0 in hand-built
	// views; it validates the per-node grid-count memo across slots.
	epoch int64

	// cntRadii registers the radii queried this slot; models use at most
	// two distinct radii, so a tiny linear store beats a map.
	cntRadii [2]float64
	cntN     int
	// vec holds the scan path's full count vectors, rebuilt in place.
	vec [2][]int16
	// cnt/cntTick memoize grid-path per-node counts; cntTick[i][v] == epoch
	// marks cnt[i][v] valid for the current slot.
	cnt     [2][]int32
	cntTick [2][]int64
}

// reset re-arms a persistent view for the current slot.
func (vw *slotView) reset(s *Sim, tx []int, ch int8, epoch int64) {
	vw.s = s
	vw.tx = tx
	vw.total = s.totalPower
	vw.scale = s.scaleBuf
	vw.ch = ch
	vw.useGrid = s.grid != nil
	vw.epoch = epoch
	vw.cntN = 0
}

func (vw *slotView) Transmitters() []int { return vw.tx }
func (vw *slotView) Power(w, v int) float64 {
	p := vw.s.field.Power(w, v)
	if vw.scale != nil {
		p *= vw.scale[w]
	}
	return p
}
func (vw *slotView) Dist(u, v int) float64 { return vw.s.cfg.Space.Dist(u, v) }
func (vw *slotView) TotalPower(v int) float64 {
	if vw.epoch != 0 {
		// Live views route through the incremental engine, which resolves
		// lazily-invalidated receivers on demand; hand-built test views keep
		// the direct read.
		return vw.s.fieldAt(v)
	}
	return vw.total[v]
}

func (vw *slotView) TransmittersWithin(v int, r float64, excluding int) int {
	for i := 0; i < vw.cntN; i++ {
		if vw.cntRadii[i] == r {
			return vw.adjust(vw.countAt(i, v, r), v, r, excluding)
		}
	}
	if vw.cntN < len(vw.cntRadii) {
		i := vw.cntN
		vw.cntRadii[i] = r
		vw.cntN++
		if !vw.useGrid {
			vw.buildVec(i, r)
		}
		return vw.adjust(vw.countAt(i, v, r), v, r, excluding)
	}
	// Fallback: direct count. No shipped model queries a third radius, so
	// hitting this is flagged (see ViewRadiusFallbacks).
	vw.s.noteRadiusFallback()
	n := 0
	for _, w := range vw.tx {
		if w == v || w == excluding {
			continue
		}
		if vw.s.cfg.Space.Dist(w, v) <= r {
			n++
		}
	}
	return n
}

// countAt resolves the count of transmitters within registered radius slot i
// of node v (self excluded).
func (vw *slotView) countAt(i, v int, r float64) int {
	if !vw.useGrid {
		return int(vw.vec[i][v])
	}
	if vw.cnt[i] == nil {
		vw.cnt[i] = make([]int32, vw.s.n)
		vw.cntTick[i] = make([]int64, vw.s.n)
	}
	if vw.cntTick[i][v] == vw.epoch {
		return int(vw.cnt[i][v])
	}
	c := vw.gridCount(v, r)
	vw.cnt[i][v] = int32(c)
	vw.cntTick[i][v] = vw.epoch
	return c
}

// gridCount counts this channel's transmitters within r of v from the
// spatial index: the index enumerates a superset (radius inflated by
// indexSlack), the exact Dist comparison — the same one the scan path
// evaluates — decides membership.
func (vw *slotView) gridCount(v int, r float64) int {
	s := vw.s
	s.idx.CountQueries++
	n := 0
	it := s.grid.IterWithin(s.euclid.Point(v), r*indexSlack)
	for {
		w, ok := it.Next()
		if !ok {
			return n
		}
		if w != v && s.isTxBuf[w] && s.chanBuf[w] == vw.ch && s.cfg.Space.Dist(w, v) <= r {
			n++
		}
	}
}

// buildVec rebuilds the scan path's count vector for radius slot i in place.
func (vw *slotView) buildVec(i int, r float64) {
	n := vw.s.n
	if cap(vw.vec[i]) < n {
		vw.vec[i] = make([]int16, n)
	} else {
		vw.vec[i] = vw.vec[i][:n]
		for j := range vw.vec[i] {
			vw.vec[i][j] = 0
		}
	}
	counts := vw.vec[i]
	for _, w := range vw.tx {
		for v2 := 0; v2 < n; v2++ {
			if v2 != w && vw.s.cfg.Space.Dist(w, v2) <= r {
				counts[v2]++
			}
		}
	}
}

func (vw *slotView) adjust(count, v int, r float64, excluding int) int {
	if excluding >= 0 && excluding != v && vw.s.cfg.Space.Dist(excluding, v) <= r {
		// Only subtract if the excluded node is actually transmitting.
		if vw.isTransmitter(excluding) {
			count--
		}
	}
	return count
}

// isTransmitter reports whether w transmits on this view's channel. Inside
// Step the per-slot flags answer in O(1); hand-built views scan their tx.
func (vw *slotView) isTransmitter(w int) bool {
	if vw.epoch != 0 {
		return vw.s.isTxBuf[w] && vw.s.chanBuf[w] == vw.ch
	}
	for _, x := range vw.tx {
		if x == w {
			return true
		}
	}
	return false
}

// Step advances the simulation by one tick (one slot). With Config.Cancel
// set, a step that observes cancellation panics with a Cancelled sentinel
// before doing any slot work (see Cancelled).
func (s *Sim) Step() {
	if s.cfg.Cancel != nil && s.cfg.Cancel() {
		panic(Cancelled{Tick: s.tick})
	}
	if s.quietLeft > 0 {
		// An armed quiescence window resolves this slot in O(1); see
		// quiesce.go for the transparency contract.
		s.quietStep()
		return
	}
	if s.quietElapsed > 0 {
		// A window just ran out naturally: deliver the batched protocol
		// catch-up before executing a real slot.
		s.flushQuiet()
	}
	slot := s.tick % s.slots
	inj := s.cfg.Injector
	if inj != nil {
		// Phase 0: fault injection opens the tick (crash/restart schedules
		// and stall bookkeeping run before any action is collected).
		inj.BeginTick(s, s.tick)
	}

	// Phase 1: collect actions from acting nodes. A seized node (stuck
	// transmitter, stalled clock) contributes the injector's forced action
	// instead of consulting its protocol.
	nChan := s.cfg.Channels
	s.actedBuf = s.actedBuf[:0]
	s.txBuf = s.txBuf[:0]
	if s.scaleBuf == nil {
		s.scaleBuf = make([]float64, s.n)
		s.chanBuf = make([]int8, s.n)
		s.chanTx = make([][]int, nChan)
		s.seizedBuf = make([]bool, s.n)
		s.msgBuf = make([]Message, s.n)
		s.isTxBuf = make([]bool, s.n)
	}
	for c := range s.chanTx {
		s.chanTx[c] = s.chanTx[c][:0]
	}
	for v := 0; v < s.n; v++ {
		s.scaleBuf[v] = 1
		s.chanBuf[v] = 0
		s.seizedBuf[v] = false
		s.isTxBuf[v] = false
		if !s.alive[v] {
			continue
		}
		var act Action
		if inj != nil {
			act, s.seizedBuf[v] = inj.Seized(v, s.tick)
		}
		if !s.seizedBuf[v] {
			if !s.actsThisTick(v) {
				continue
			}
			s.actedBuf = append(s.actedBuf, v)
			act = s.protos[v].Act(&s.nodes[v], slot)
		}
		if nChan > 1 && act.Channel > 0 {
			if act.Channel >= nChan {
				act.Channel = nChan - 1
			}
			s.chanBuf[v] = int8(act.Channel)
		}
		if act.Transmit {
			act.Msg.Src = v
			s.msgBuf[v] = act.Msg
			s.isTxBuf[v] = true
			s.txBuf = append(s.txBuf, v)
			s.chanTx[s.chanBuf[v]] = append(s.chanTx[s.chanBuf[v]], v)
			s.txCount[v]++
			s.totalTx++
			if act.PowerScale > 0 && act.PowerScale != 1 {
				s.scaleBuf[v] = act.PowerScale
			}
		}
	}

	// Phase 2: interference field (power scales applied). totalPower[v] is
	// the interference on v's tuned channel: only same-channel
	// transmissions reach a tuned radio. Skipped entirely for
	// field-oblivious models running without power-sensing primitives —
	// nothing in the slot reads the field then. The incremental engine
	// (accSlot non-nil) carries valid accumulators across slots and
	// re-sums only invalidated receivers; the brute driver below is the
	// FieldRecompute reference it is byte-identical to.
	if s.needPower {
		if s.accSlot != nil {
			s.fieldAdvance()
		} else {
			for v := 0; v < s.n; v++ {
				s.totalPower[v] = 0
			}
			for _, w := range s.txBuf {
				sc := s.scaleBuf[w]
				wc := s.chanBuf[w]
				for v := 0; v < s.n; v++ {
					if s.chanBuf[v] == wc {
						s.totalPower[v] += s.field.Power(w, v) * sc
					}
				}
			}
		}
	}
	// One persistent view per channel; with a single channel this is the
	// old single view.
	if len(s.views) != nChan {
		s.views = make([]slotView, nChan)
	}
	epoch := int64(s.tick) + 1
	for c := 0; c < nChan; c++ {
		tx := s.txBuf
		if nChan > 1 {
			tx = s.chanTx[c]
		}
		s.views[c].reset(s, tx, int8(c), epoch)
	}

	// Phase 3: receptions. Two equivalent drivers:
	//
	// Indexed (transmitter-outward): each transmitter pushes to the
	// listeners the spatial index finds inside its decode cutoff — the
	// model's MaxDecodeRange, widened by scale^{1/ζ} for boosted
	// transmissions and narrowed to scale^{1/ζ}·R for attenuated ones.
	// Beyond the cutoff Decodes is guaranteed false, so skipping those
	// pairs changes nothing. Iterating transmitters in ascending id keeps
	// every recvBuf[v] in the same ascending-transmitter order the listener
	// scan produces.
	//
	// Scan (listener-oriented): every alive non-transmitting listener
	// checks every same-channel transmitter. Used when there is no index,
	// no declared cutoff, or — crucially — when an injector is attached:
	// Injector.DropRecv is specified to run once per candidate pair in the
	// scan order, and its observable side effects (fault counters) must
	// not depend on the indexing strategy.
	for v := 0; v < s.n; v++ {
		s.recvBuf[v] = s.recvBuf[v][:0]
	}
	mdl := s.cfg.Model
	if s.grid != nil && inj == nil && s.maxDecode > 0 {
		zinv := 1 / s.cfg.Zeta
		for _, u := range s.txBuf {
			sc := s.scaleBuf[u]
			cutoff := s.maxDecode
			if sc > 1 {
				cutoff *= math.Pow(sc, zinv)
			} else if sc < 1 {
				if r := math.Pow(sc, zinv) * mdl.R(); r < cutoff {
					cutoff = r
				}
			}
			uc := s.chanBuf[u]
			vw := &s.views[uc]
			s.idx.TxQueries++
			it := s.grid.IterWithin(s.euclid.Point(u), cutoff*indexSlack)
			for {
				v, ok := it.Next()
				if !ok {
					break
				}
				s.idx.Candidates++
				if v == u || s.isTxBuf[v] || s.chanBuf[v] != uc || !s.alive[v] {
					continue
				}
				if sc < 1 {
					maxRange := math.Pow(sc, zinv) * mdl.R()
					if s.cfg.Space.Dist(u, v) > maxRange {
						continue
					}
				}
				if mdl.Decodes(vw, u, v) {
					s.recvBuf[v] = append(s.recvBuf[v], Recv{
						From: u,
						Msg:  s.msgBuf[u],
						RSS:  s.field.Power(u, v) * sc,
					})
				}
			}
		}
	} else {
		for v := 0; v < s.n; v++ {
			if !s.alive[v] {
				continue
			}
			if s.isTxBuf[v] {
				continue // half-duplex
			}
			vw := &s.views[s.chanBuf[v]]
			for _, u := range vw.tx {
				if inj != nil && inj.DropRecv(u, v, s.tick) {
					// Ground-truth loss: the frame never reaches v's protocol,
					// so u's mass delivery and coverage miss v this slot too.
					continue
				}
				// A power-scaled transmission is decodable only within the
				// reduced range scale^{1/ζ}·R (exact for SINR, and the defining
				// cutoff for models without a power notion).
				if s.scaleBuf[u] < 1 {
					maxRange := math.Pow(s.scaleBuf[u], 1/s.cfg.Zeta) * mdl.R()
					if s.cfg.Space.Dist(u, v) > maxRange {
						continue
					}
				}
				if mdl.Decodes(vw, u, v) {
					s.recvBuf[v] = append(s.recvBuf[v], Recv{
						From: u,
						Msg:  s.msgBuf[u],
						RSS:  s.field.Power(u, v) * s.scaleBuf[u],
					})
				}
			}
		}
	}
	// First-decode and coverage bookkeeping, in ascending listener order and
	// ascending transmitter order within each listener — the same sequence
	// for both reception drivers.
	for v := 0; v < s.n; v++ {
		if len(s.recvBuf[v]) == 0 {
			continue
		}
		if s.firstDecode[v] < 0 {
			s.firstDecode[v] = int32(s.tick)
		}
		for _, rc := range s.recvBuf[v] {
			s.recordCoverage(rc.From, v)
		}
	}

	// Phase 4: ground-truth delivery per transmitter, at both the
	// measurement radius R_B(Eps) and the ACK radius R_B(SenseEps).
	for _, u := range s.txBuf {
		mass, massAck := true, true
		s.forEachNeighbor(u, s.rbAck, func(v int) {
			got := false
			for _, rc := range s.recvBuf[v] {
				if rc.From == u {
					got = true
					break
				}
			}
			if !got {
				massAck = false
				if s.cfg.Space.Dist(u, v) <= s.rb {
					mass = false
				}
			}
		})
		// If rb > rbAck (never with SenseEps <= Eps, but be safe), fall back
		// to an explicit check at rb.
		if s.rb > s.rbAck {
			mass = true
			s.forEachNeighbor(u, s.rb, func(v int) {
				ok := false
				for _, rc := range s.recvBuf[v] {
					if rc.From == u {
						ok = true
						break
					}
				}
				if !ok {
					mass = false
				}
			})
		}
		s.massBuf[u] = mass
		s.massAckBuf[u] = massAck
		if mass {
			s.massCount[u]++
			s.totalMass++
			if s.firstMass[u] < 0 {
				s.firstMass[u] = int32(s.tick)
			}
			// An atomic mass delivery covers the whole neighbourhood by
			// itself — including the vacuous case of a node with no alive
			// neighbours, which produces no receipt records.
			if s.firstCover != nil && s.firstCover[u] < 0 {
				s.firstCover[u] = int32(s.tick)
			}
		}
	}

	// Phase 5: observations for acting nodes, passive receipts for others.
	// Sensing outcomes are tallied (post-corruption, i.e. what the
	// protocols actually observed) only when a trace observer or a metrics
	// registry is attached, so the uninstrumented path pays one branch per
	// observation. The Observation is a reused scratch value: it and its
	// slices are only valid for the duration of the Observe call.
	prim := s.cfg.Primitives
	tally := s.met != nil || s.cfg.Observer != nil
	var cdBusy, cdIdle, acks, ackMiss, ntds int
	for _, v := range s.actedBuf {
		if !s.alive[v] {
			continue // killed mid-tick by nothing today, but stay safe
		}
		isTx := s.isTxBuf[v]
		obs := &s.obsBuf
		*obs = Observation{
			Tick:        s.tick,
			Slot:        slot,
			Transmitted: isTx,
		}
		if !isTx {
			obs.Received = s.recvBuf[v]
		}
		if prim.Has(CD) {
			obs.Busy = s.th.Busy(s.fieldAt(v))
		}
		if isTx {
			switch {
			case prim.Has(FreeAck):
				obs.Acked = s.massAckBuf[v]
			case prim.Has(ACK):
				obs.Acked = s.ackOutcome(v)
			}
		}
		if prim.Has(NTD) && !isTx {
			for _, rc := range obs.Received {
				if s.th.Near(rc.RSS) {
					obs.NTD = true
					break
				}
			}
		}
		if inj != nil {
			inj.Observation(v, s.tick, obs)
		}
		if tally {
			if prim.Has(CD) {
				if obs.Busy {
					cdBusy++
				} else {
					cdIdle++
				}
			}
			if isTx && prim.Has(ACK|FreeAck) {
				if obs.Acked {
					acks++
				} else {
					ackMiss++
				}
			}
			if obs.NTD {
				ntds++
			}
		}
		s.protos[v].Observe(&s.nodes[v], slot, obs)
	}
	if s.cfg.Async {
		for v := 0; v < s.n; v++ {
			if !s.alive[v] || len(s.recvBuf[v]) == 0 || s.actedThisTick(v) || s.seizedBuf[v] {
				continue
			}
			if h, ok := s.protos[v].(Hearer); ok {
				h.Hear(&s.nodes[v], s.recvBuf[v])
			}
		}
	}

	if tally {
		decodes, mass := 0, 0
		for v := 0; v < s.n; v++ {
			decodes += len(s.recvBuf[v])
		}
		for _, u := range s.txBuf {
			if s.massBuf[u] {
				mass++
			}
		}
		if s.cfg.Observer != nil {
			s.massDelBuf = s.massDelBuf[:0]
			seized := 0
			for _, u := range s.txBuf {
				if s.massBuf[u] {
					s.massDelBuf = append(s.massDelBuf, u)
				}
				if len(s.seizedBuf) > 0 && s.seizedBuf[u] {
					seized++
				}
			}
			s.decodersBuf = s.decodersBuf[:0]
			for v := 0; v < s.n; v++ {
				if len(s.recvBuf[v]) > 0 {
					s.decodersBuf = append(s.decodersBuf, v)
				}
			}
			ev := SlotEvent{
				Tick: s.tick, Slot: slot, Transmitters: s.txBuf,
				Decodes: decodes, MassDeliverers: s.massDelBuf,
				CDBusy: cdBusy, CDIdle: cdIdle, Acks: acks, NTDs: ntds,
				Decoders: s.decodersBuf, Seized: seized,
			}
			s.cfg.Observer(ev)
		}
		if m := s.met; m != nil {
			m.slots.Inc()
			m.tx.Add(int64(len(s.txBuf)))
			m.decodes.Add(int64(decodes))
			m.mass.Add(int64(mass))
			m.cdBusy.Add(int64(cdBusy))
			m.cdIdle.Add(int64(cdIdle))
			m.ack.Add(int64(acks))
			m.ackMiss.Add(int64(ackMiss))
			m.ntd.Add(int64(ntds))
			m.txPerSlot.Observe(float64(len(s.txBuf)))
			m.contention.Observe(s.probMass())
			s.flushIndexStats()
			s.flushFieldStats()
		}
	}

	s.tick++
	s.maybeArmQuiet()
}

// ackOutcome applies Def. ACK for transmitter u: sensed interference within
// the threshold and full delivery yields 1; a missed neighbour yields 0;
// the remaining case is adversarial.
func (s *Sim) ackOutcome(u int) bool {
	if !s.massAckBuf[u] {
		return false
	}
	if s.th.AckClear(s.fieldAt(u)) {
		return true
	}
	return s.adv.AckAmbiguous(u, s.tick)
}

func (s *Sim) actsThisTick(v int) bool {
	if !s.cfg.Async {
		return true
	}
	return (s.tick-s.phase[v])%s.period[v] == 0 && s.tick >= s.phase[v]
}

func (s *Sim) actedThisTick(v int) bool { return s.actsThisTick(v) }

// Run advances the simulation by ticks ticks.
func (s *Sim) Run(ticks int) {
	for i := 0; i < ticks; i++ {
		s.Step()
	}
}

// RunUntil steps the simulation until pred returns true or maxTicks elapse,
// returning the number of ticks executed and whether pred was satisfied.
// pred is evaluated after every tick.
func (s *Sim) RunUntil(pred func(*Sim) bool, maxTicks int) (int, bool) {
	for i := 0; i < maxTicks; i++ {
		s.Step()
		if pred(s) {
			return i + 1, true
		}
	}
	return maxTicks, false
}
