package sim

import "math"

// slotView implements model.View over the current slot with cached
// interference sums and lazily built within-radius counts.
type slotView struct {
	s  *Sim
	tx []int
	// total[v] is Σ_w Power(w,v) over transmitters w (own signal excluded
	// automatically since Power(v,v) = 0).
	total []float64
	// scale holds per-node transmission power scales (1 for unscaled).
	scale []float64
	// cnt caches TransmittersWithin vectors per radius; models use at most
	// two distinct radii, so a tiny linear store beats a map.
	cntRadii [2]float64
	cnt      [2][]int16
	cntN     int
}

func (vw *slotView) Transmitters() []int { return vw.tx }
func (vw *slotView) Power(w, v int) float64 {
	p := vw.s.field.Power(w, v)
	if vw.scale != nil {
		p *= vw.scale[w]
	}
	return p
}
func (vw *slotView) Dist(u, v int) float64    { return vw.s.cfg.Space.Dist(u, v) }
func (vw *slotView) TotalPower(v int) float64 { return vw.total[v] }

func (vw *slotView) TransmittersWithin(v int, r float64, excluding int) int {
	for i := 0; i < vw.cntN; i++ {
		if vw.cntRadii[i] == r {
			return vw.adjust(int(vw.cnt[i][v]), v, r, excluding)
		}
	}
	if vw.cntN < len(vw.cnt) {
		// Build the full count vector for this radius in one pass.
		counts := make([]int16, vw.s.n)
		for _, w := range vw.tx {
			for v2 := 0; v2 < vw.s.n; v2++ {
				if v2 != w && vw.s.cfg.Space.Dist(w, v2) <= r {
					counts[v2]++
				}
			}
		}
		vw.cntRadii[vw.cntN] = r
		vw.cnt[vw.cntN] = counts
		vw.cntN++
		return vw.adjust(int(counts[v]), v, r, excluding)
	}
	// Fallback: direct count (should not happen with the shipped models).
	n := 0
	for _, w := range vw.tx {
		if w == v || w == excluding {
			continue
		}
		if vw.s.cfg.Space.Dist(w, v) <= r {
			n++
		}
	}
	return n
}

func (vw *slotView) adjust(count, v int, r float64, excluding int) int {
	if excluding >= 0 && excluding != v && vw.s.cfg.Space.Dist(excluding, v) <= r {
		// Only subtract if the excluded node is actually transmitting.
		for _, w := range vw.tx {
			if w == excluding {
				count--
				break
			}
		}
	}
	return count
}

// Step advances the simulation by one tick (one slot).
func (s *Sim) Step() {
	slot := s.tick % s.slots
	inj := s.cfg.Injector
	if inj != nil {
		// Phase 0: fault injection opens the tick (crash/restart schedules
		// and stall bookkeeping run before any action is collected).
		inj.BeginTick(s, s.tick)
	}

	// Phase 1: collect actions from acting nodes. A seized node (stuck
	// transmitter, stalled clock) contributes the injector's forced action
	// instead of consulting its protocol.
	nChan := s.cfg.Channels
	s.actedBuf = s.actedBuf[:0]
	s.txBuf = s.txBuf[:0]
	if s.scaleBuf == nil {
		s.scaleBuf = make([]float64, s.n)
		s.chanBuf = make([]int8, s.n)
		s.chanTx = make([][]int, nChan)
		s.seizedBuf = make([]bool, s.n)
	}
	for c := range s.chanTx {
		s.chanTx[c] = s.chanTx[c][:0]
	}
	transmitted := make(map[int]Message, 8)
	for v := 0; v < s.n; v++ {
		s.scaleBuf[v] = 1
		s.chanBuf[v] = 0
		s.seizedBuf[v] = false
		if !s.alive[v] {
			continue
		}
		var act Action
		if inj != nil {
			act, s.seizedBuf[v] = inj.Seized(v, s.tick)
		}
		if !s.seizedBuf[v] {
			if !s.actsThisTick(v) {
				continue
			}
			s.actedBuf = append(s.actedBuf, v)
			act = s.protos[v].Act(&s.nodes[v], slot)
		}
		if nChan > 1 && act.Channel > 0 {
			if act.Channel >= nChan {
				act.Channel = nChan - 1
			}
			s.chanBuf[v] = int8(act.Channel)
		}
		if act.Transmit {
			act.Msg.Src = v
			transmitted[v] = act.Msg
			s.txBuf = append(s.txBuf, v)
			s.chanTx[s.chanBuf[v]] = append(s.chanTx[s.chanBuf[v]], v)
			s.txCount[v]++
			s.totalTx++
			if act.PowerScale > 0 && act.PowerScale != 1 {
				s.scaleBuf[v] = act.PowerScale
			}
		}
	}

	// Phase 2: interference field (power scales applied). totalPower[v] is
	// the interference on v's tuned channel: only same-channel
	// transmissions reach a tuned radio.
	for v := 0; v < s.n; v++ {
		s.totalPower[v] = 0
	}
	for _, w := range s.txBuf {
		sc := s.scaleBuf[w]
		wc := s.chanBuf[w]
		for v := 0; v < s.n; v++ {
			if s.chanBuf[v] == wc {
				s.totalPower[v] += s.field.Power(w, v) * sc
			}
		}
	}
	// One view per channel; with a single channel this is the old view.
	views := make([]*slotView, nChan)
	for c := 0; c < nChan; c++ {
		tx := s.txBuf
		if nChan > 1 {
			tx = s.chanTx[c]
		}
		views[c] = &slotView{s: s, tx: tx, total: s.totalPower, scale: s.scaleBuf}
	}

	// Phase 3: receptions for every alive, non-transmitting listener.
	for v := 0; v < s.n; v++ {
		s.recvBuf[v] = s.recvBuf[v][:0]
	}
	mdl := s.cfg.Model
	for v := 0; v < s.n; v++ {
		if !s.alive[v] {
			continue
		}
		if _, isTx := transmitted[v]; isTx {
			continue // half-duplex
		}
		vw := views[s.chanBuf[v]]
		for _, u := range vw.tx {
			if inj != nil && inj.DropRecv(u, v, s.tick) {
				// Ground-truth loss: the frame never reaches v's protocol,
				// so u's mass delivery and coverage miss v this slot too.
				continue
			}
			// A power-scaled transmission is decodable only within the
			// reduced range scale^{1/ζ}·R (exact for SINR, and the defining
			// cutoff for models without a power notion).
			if s.scaleBuf[u] < 1 {
				maxRange := math.Pow(s.scaleBuf[u], 1/s.cfg.Zeta) * mdl.R()
				if s.cfg.Space.Dist(u, v) > maxRange {
					continue
				}
			}
			if mdl.Decodes(vw, u, v) {
				s.recvBuf[v] = append(s.recvBuf[v], Recv{
					From: u,
					Msg:  transmitted[u],
					RSS:  s.field.Power(u, v) * s.scaleBuf[u],
				})
			}
		}
		if len(s.recvBuf[v]) > 0 {
			if s.firstDecode[v] < 0 {
				s.firstDecode[v] = int32(s.tick)
			}
			for _, rc := range s.recvBuf[v] {
				s.recordCoverage(rc.From, v)
			}
		}
	}

	// Phase 4: ground-truth delivery per transmitter, at both the
	// measurement radius R_B(Eps) and the ACK radius R_B(SenseEps).
	for _, u := range s.txBuf {
		mass, massAck := true, true
		s.forEachNeighbor(u, s.rbAck, func(v int) {
			got := false
			for _, rc := range s.recvBuf[v] {
				if rc.From == u {
					got = true
					break
				}
			}
			if !got {
				massAck = false
				if s.cfg.Space.Dist(u, v) <= s.rb {
					mass = false
				}
			}
		})
		// If rb > rbAck (never with SenseEps <= Eps, but be safe), fall back
		// to an explicit check at rb.
		if s.rb > s.rbAck {
			mass = true
			s.forEachNeighbor(u, s.rb, func(v int) {
				ok := false
				for _, rc := range s.recvBuf[v] {
					if rc.From == u {
						ok = true
						break
					}
				}
				if !ok {
					mass = false
				}
			})
		}
		s.massBuf[u] = mass
		s.massAckBuf[u] = massAck
		if mass {
			s.massCount[u]++
			s.totalMass++
			if s.firstMass[u] < 0 {
				s.firstMass[u] = int32(s.tick)
			}
			// An atomic mass delivery covers the whole neighbourhood by
			// itself — including the vacuous case of a node with no alive
			// neighbours, which produces no receipt records.
			if s.firstCover != nil && s.firstCover[u] < 0 {
				s.firstCover[u] = int32(s.tick)
			}
		}
	}

	// Phase 5: observations for acting nodes, passive receipts for others.
	// Sensing outcomes are tallied (post-corruption, i.e. what the
	// protocols actually observed) only when a trace observer or a metrics
	// registry is attached, so the uninstrumented path pays one branch per
	// observation.
	prim := s.cfg.Primitives
	tally := s.met != nil || s.cfg.Observer != nil
	var cdBusy, cdIdle, acks, ackMiss, ntds int
	for _, v := range s.actedBuf {
		if !s.alive[v] {
			continue // killed mid-tick by nothing today, but stay safe
		}
		_, isTx := transmitted[v]
		obs := Observation{
			Tick:        s.tick,
			Slot:        slot,
			Transmitted: isTx,
		}
		if !isTx {
			obs.Received = s.recvBuf[v]
		}
		if prim.Has(CD) {
			obs.Busy = s.th.Busy(s.totalPower[v])
		}
		if isTx {
			switch {
			case prim.Has(FreeAck):
				obs.Acked = s.massAckBuf[v]
			case prim.Has(ACK):
				obs.Acked = s.ackOutcome(v)
			}
		}
		if prim.Has(NTD) && !isTx {
			for _, rc := range obs.Received {
				if s.th.Near(rc.RSS) {
					obs.NTD = true
					break
				}
			}
		}
		if inj != nil {
			inj.Observation(v, s.tick, &obs)
		}
		if tally {
			if prim.Has(CD) {
				if obs.Busy {
					cdBusy++
				} else {
					cdIdle++
				}
			}
			if isTx && prim.Has(ACK|FreeAck) {
				if obs.Acked {
					acks++
				} else {
					ackMiss++
				}
			}
			if obs.NTD {
				ntds++
			}
		}
		s.protos[v].Observe(&s.nodes[v], slot, &obs)
	}
	if s.cfg.Async {
		for v := 0; v < s.n; v++ {
			if !s.alive[v] || len(s.recvBuf[v]) == 0 || s.actedThisTick(v) || s.seizedBuf[v] {
				continue
			}
			if h, ok := s.protos[v].(Hearer); ok {
				h.Hear(&s.nodes[v], s.recvBuf[v])
			}
		}
	}

	if tally {
		decodes, mass := 0, 0
		for v := 0; v < s.n; v++ {
			decodes += len(s.recvBuf[v])
		}
		for _, u := range s.txBuf {
			if s.massBuf[u] {
				mass++
			}
		}
		if s.cfg.Observer != nil {
			ev := SlotEvent{
				Tick: s.tick, Slot: slot, Transmitters: s.txBuf,
				Decodes: decodes,
				CDBusy:  cdBusy, CDIdle: cdIdle, Acks: acks, NTDs: ntds,
			}
			for _, u := range s.txBuf {
				if s.massBuf[u] {
					ev.MassDeliverers = append(ev.MassDeliverers, u)
				}
			}
			s.cfg.Observer(ev)
		}
		if m := s.met; m != nil {
			m.slots.Inc()
			m.tx.Add(int64(len(s.txBuf)))
			m.decodes.Add(int64(decodes))
			m.mass.Add(int64(mass))
			m.cdBusy.Add(int64(cdBusy))
			m.cdIdle.Add(int64(cdIdle))
			m.ack.Add(int64(acks))
			m.ackMiss.Add(int64(ackMiss))
			m.ntd.Add(int64(ntds))
			m.txPerSlot.Observe(float64(len(s.txBuf)))
			m.contention.Observe(s.probMass())
		}
	}

	s.tick++
}

// ackOutcome applies Def. ACK for transmitter u: sensed interference within
// the threshold and full delivery yields 1; a missed neighbour yields 0;
// the remaining case is adversarial.
func (s *Sim) ackOutcome(u int) bool {
	if !s.massAckBuf[u] {
		return false
	}
	if s.th.AckClear(s.totalPower[u]) {
		return true
	}
	return s.adv.AckAmbiguous(u, s.tick)
}

func (s *Sim) actsThisTick(v int) bool {
	if !s.cfg.Async {
		return true
	}
	return (s.tick-s.phase[v])%s.period[v] == 0 && s.tick >= s.phase[v]
}

func (s *Sim) actedThisTick(v int) bool { return s.actsThisTick(v) }

// Run advances the simulation by ticks ticks.
func (s *Sim) Run(ticks int) {
	for i := 0; i < ticks; i++ {
		s.Step()
	}
}

// RunUntil steps the simulation until pred returns true or maxTicks elapse,
// returning the number of ticks executed and whether pred was satisfied.
// pred is evaluated after every tick.
func (s *Sim) RunUntil(pred func(*Sim) bool, maxTicks int) (int, bool) {
	for i := 0; i < maxTicks; i++ {
		s.Step()
		if pred(s) {
			return i + 1, true
		}
	}
	return maxTicks, false
}
