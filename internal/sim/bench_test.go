package sim

import (
	"testing"

	"udwn/internal/metric"
	"udwn/internal/metrics"
	"udwn/internal/model"
	"udwn/internal/workload"
)

// benchSim builds an n-node uniform SINR simulation where every node
// transmits with probability p each slot.
func benchSim(b *testing.B, n int, p float64, prims Primitives) *Sim {
	b.Helper()
	pts := workload.UniformDisc(n, workload.SideForDegree(n, 16, 9), 1)
	s, err := New(Config{
		Space: metric.NewEuclidean(pts),
		Model: model.NewSINR(1500, 1.5, 1, 3, 0.1),
		P:     1500, Zeta: 3, Noise: 1, Eps: 0.1,
		Seed:       1,
		Primitives: prims,
	}, func(int) Protocol { return fixedProb(p) })
	if err != nil {
		b.Fatal(err)
	}
	return s
}

func BenchmarkStepSparse(b *testing.B) {
	// Equilibrium-like load: ~4 transmitters per slot at n=1024.
	s := benchSim(b, 1024, 1.0/256, CD|ACK)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Step()
	}
}

// BenchmarkStepUninstrumented is the control for BenchmarkStepInstrumented:
// the identical workload with Config.Metrics nil. The pair proves the
// nil-registry hot path costs one branch — the two must be within noise of
// each other (the instrumented variant additionally pays the probMass sweep
// and the atomic adds, visible as its delta over this baseline).
func BenchmarkStepUninstrumented(b *testing.B) {
	s := benchSim(b, 1024, 1.0/256, CD|ACK)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Step()
	}
}

func BenchmarkStepInstrumented(b *testing.B) {
	s := benchSim(b, 1024, 1.0/256, CD|ACK)
	s.met = newStepMetrics(metrics.NewRegistry())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Step()
	}
}

func BenchmarkStepDense(b *testing.B) {
	// Stress load: ~128 transmitters per slot.
	s := benchSim(b, 1024, 1.0/8, CD|ACK)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Step()
	}
}

func BenchmarkStepNoPrimitives(b *testing.B) {
	s := benchSim(b, 1024, 1.0/64, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Step()
	}
}

func BenchmarkStepUDG(b *testing.B) {
	pts := workload.UniformDisc(1024, workload.SideForDegree(1024, 16, 10), 1)
	s, err := New(Config{
		Space: metric.NewEuclidean(pts),
		Model: model.NewUDG(10),
		P:     1500, Zeta: 3, Noise: 1, Eps: 0.1,
		Seed:       1,
		Primitives: CD | ACK,
	}, func(int) Protocol { return fixedProb(1.0 / 64) })
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Step()
	}
}

func BenchmarkNewSim(b *testing.B) {
	pts := workload.UniformDisc(1024, workload.SideForDegree(1024, 16, 9), 1)
	space := metric.NewEuclidean(pts)
	mdl := model.NewSINR(1500, 1.5, 1, 3, 0.1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := New(Config{
			Space: space, Model: mdl,
			P: 1500, Zeta: 3, Noise: 1, Eps: 0.1, Seed: uint64(i),
		}, func(int) Protocol { return fixedProb(0.1) })
		if err != nil {
			b.Fatal(err)
		}
	}
}
