package sim

import (
	"testing"

	"udwn/internal/metric"
	"udwn/internal/metrics"
	"udwn/internal/model"
	"udwn/internal/workload"
)

// benchSim builds an n-node uniform SINR simulation where every node
// transmits with probability p each slot.
func benchSim(b *testing.B, n int, p float64, prims Primitives) *Sim {
	b.Helper()
	pts := workload.UniformDisc(n, workload.SideForDegree(n, 16, 9), 1)
	s, err := New(Config{
		Space: metric.NewEuclidean(pts),
		Model: model.NewSINR(1500, 1.5, 1, 3, 0.1),
		P:     1500, Zeta: 3, Noise: 1, Eps: 0.1,
		Seed:       1,
		Primitives: prims,
	}, func(int) Protocol { return fixedProb(p) })
	if err != nil {
		b.Fatal(err)
	}
	return s
}

func BenchmarkStepSparse(b *testing.B) {
	// Equilibrium-like load: ~4 transmitters per slot at n=1024.
	s := benchSim(b, 1024, 1.0/256, CD|ACK)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Step()
	}
}

// BenchmarkStepUninstrumented is the control for BenchmarkStepInstrumented:
// the identical workload with Config.Metrics nil. The pair proves the
// nil-registry hot path costs one branch — the two must be within noise of
// each other (the instrumented variant additionally pays the probMass sweep
// and the atomic adds, visible as its delta over this baseline).
func BenchmarkStepUninstrumented(b *testing.B) {
	s := benchSim(b, 1024, 1.0/256, CD|ACK)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Step()
	}
}

func BenchmarkStepInstrumented(b *testing.B) {
	s := benchSim(b, 1024, 1.0/256, CD|ACK)
	s.met = newStepMetrics(metrics.NewRegistry(), false)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Step()
	}
}

func BenchmarkStepDense(b *testing.B) {
	// Stress load: ~128 transmitters per slot.
	s := benchSim(b, 1024, 1.0/8, CD|ACK)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Step()
	}
}

func BenchmarkStepNoPrimitives(b *testing.B) {
	s := benchSim(b, 1024, 1.0/64, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Step()
	}
}

func BenchmarkStepUDG(b *testing.B) {
	pts := workload.UniformDisc(1024, workload.SideForDegree(1024, 16, 10), 1)
	s, err := New(Config{
		Space: metric.NewEuclidean(pts),
		Model: model.NewUDG(10),
		P:     1500, Zeta: 3, Noise: 1, Eps: 0.1,
		Seed:       1,
		Primitives: CD | ACK,
	}, func(int) Protocol { return fixedProb(1.0 / 64) })
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Step()
	}
}

// sparseSim4096 builds the large sparse-topology workload behind the
// indexed-vs-brute BenchmarkStep pair: 4096 nodes at mean degree 16, a
// field-oblivious UDG model, and no sensing primitives, so the indexed run
// exercises the transmitter-outward reception path with Phase 2 skipped.
func sparseSim4096(b *testing.B) *Sim {
	b.Helper()
	pts := workload.UniformDisc(4096, workload.SideForDegree(4096, 16, 10), 1)
	s, err := New(Config{
		Space: metric.NewEuclidean(pts),
		Model: model.NewUDG(10),
		P:     1500, Zeta: 3, Noise: 1, Eps: 0.1,
		Seed: 1,
	}, func(int) Protocol { return fixedProb(1.0 / 64) })
	if err != nil {
		b.Fatal(err)
	}
	return s
}

func BenchmarkStepSparse4096Indexed(b *testing.B) {
	s := sparseSim4096(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Step()
	}
}

// BenchmarkStepSparse4096Brute disables the spatial index on the identical
// workload, forcing the listener-oriented O(n·|tx|) reception scan and the
// O(|tx|·n) count vectors — the pre-index slot loop. The ratio of this pair
// is the index speedup on sparse topologies.
func BenchmarkStepSparse4096Brute(b *testing.B) {
	s := sparseSim4096(b)
	s.grid = nil
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Step()
	}
}

func BenchmarkNewSim(b *testing.B) {
	pts := workload.UniformDisc(1024, workload.SideForDegree(1024, 16, 9), 1)
	space := metric.NewEuclidean(pts)
	mdl := model.NewSINR(1500, 1.5, 1, 3, 0.1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := New(Config{
			Space: space, Model: mdl,
			P: 1500, Zeta: 3, Noise: 1, Eps: 0.1, Seed: uint64(i),
		}, func(int) Protocol { return fixedProb(0.1) })
		if err != nil {
			b.Fatal(err)
		}
	}
}
