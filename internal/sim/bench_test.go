package sim

import (
	"testing"

	"udwn/internal/metric"
	"udwn/internal/metrics"
	"udwn/internal/model"
	"udwn/internal/workload"
)

// benchSim builds an n-node uniform SINR simulation where every node
// transmits with probability p each slot.
func benchSim(b *testing.B, n int, p float64, prims Primitives) *Sim {
	b.Helper()
	pts := workload.UniformDisc(n, workload.SideForDegree(n, 16, 9), 1)
	s, err := New(Config{
		Space: metric.NewEuclidean(pts),
		Model: model.NewSINR(1500, 1.5, 1, 3, 0.1),
		P:     1500, Zeta: 3, Noise: 1, Eps: 0.1,
		Seed:       1,
		Primitives: prims,
	}, func(int) Protocol { return fixedProb(p) })
	if err != nil {
		b.Fatal(err)
	}
	return s
}

func BenchmarkStepSparse(b *testing.B) {
	// Equilibrium-like load: ~4 transmitters per slot at n=1024.
	s := benchSim(b, 1024, 1.0/256, CD|ACK)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Step()
	}
}

// BenchmarkStepUninstrumented is the control for BenchmarkStepInstrumented:
// the identical workload with Config.Metrics nil. The pair proves the
// nil-registry hot path costs one branch — the two must be within noise of
// each other (the instrumented variant additionally pays the probMass sweep
// and the atomic adds, visible as its delta over this baseline).
func BenchmarkStepUninstrumented(b *testing.B) {
	s := benchSim(b, 1024, 1.0/256, CD|ACK)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Step()
	}
}

func BenchmarkStepInstrumented(b *testing.B) {
	s := benchSim(b, 1024, 1.0/256, CD|ACK)
	s.met = newStepMetrics(metrics.NewRegistry(), false)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Step()
	}
}

func BenchmarkStepDense(b *testing.B) {
	// Stress load: ~128 transmitters per slot.
	s := benchSim(b, 1024, 1.0/8, CD|ACK)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Step()
	}
}

func BenchmarkStepNoPrimitives(b *testing.B) {
	s := benchSim(b, 1024, 1.0/64, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Step()
	}
}

func BenchmarkStepUDG(b *testing.B) {
	pts := workload.UniformDisc(1024, workload.SideForDegree(1024, 16, 10), 1)
	s, err := New(Config{
		Space: metric.NewEuclidean(pts),
		Model: model.NewUDG(10),
		P:     1500, Zeta: 3, Noise: 1, Eps: 0.1,
		Seed:       1,
		Primitives: CD | ACK,
	}, func(int) Protocol { return fixedProb(1.0 / 64) })
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Step()
	}
}

// sparseSim4096 builds the large sparse-topology workload behind the
// indexed-vs-brute BenchmarkStep pair: 4096 nodes at mean degree 16, a
// field-oblivious UDG model, and no sensing primitives, so the indexed run
// exercises the transmitter-outward reception path with Phase 2 skipped.
func sparseSim4096(b *testing.B) *Sim {
	b.Helper()
	pts := workload.UniformDisc(4096, workload.SideForDegree(4096, 16, 10), 1)
	s, err := New(Config{
		Space: metric.NewEuclidean(pts),
		Model: model.NewUDG(10),
		P:     1500, Zeta: 3, Noise: 1, Eps: 0.1,
		Seed: 1,
	}, func(int) Protocol { return fixedProb(1.0 / 64) })
	if err != nil {
		b.Fatal(err)
	}
	return s
}

func BenchmarkStepSparse4096Indexed(b *testing.B) {
	s := sparseSim4096(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Step()
	}
}

// BenchmarkStepSparse4096Brute disables the spatial index on the identical
// workload, forcing the listener-oriented O(n·|tx|) reception scan and the
// O(|tx|·n) count vectors — the pre-index slot loop. The ratio of this pair
// is the index speedup on sparse topologies.
func BenchmarkStepSparse4096Brute(b *testing.B) {
	s := sparseSim4096(b)
	s.grid = nil
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Step()
	}
}

func BenchmarkNewSim(b *testing.B) {
	pts := workload.UniformDisc(1024, workload.SideForDegree(1024, 16, 9), 1)
	space := metric.NewEuclidean(pts)
	mdl := model.NewSINR(1500, 1.5, 1, 3, 0.1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := New(Config{
			Space: space, Model: mdl,
			P: 1500, Zeta: 3, Noise: 1, Eps: 0.1, Seed: uint64(i),
		}, func(int) Protocol { return fixedProb(0.1) })
		if err != nil {
			b.Fatal(err)
		}
	}
}

// cohortProto is the deterministic traffic of the dense incremental-field
// benchmark pair: a persistent cohort of k transmitters that rotates to the
// next k node ids every `period` slots. Between rotations the transmitter
// composition is unchanged, so the incremental field reuses it; rotations
// are bulk membership changes that force selective rebuilds. No RNG.
type cohortProto struct {
	id, t, n, k, period int
}

func (c *cohortProto) Act(nd *Node, slot int) Action {
	t := c.t
	c.t++
	start := (t / c.period * c.k) % c.n
	if (c.id-start+c.n)%c.n < c.k {
		return Action{Transmit: true, Msg: Message{Kind: 9, Data: int64(c.id)}}
	}
	return Action{}
}

func (c *cohortProto) Observe(*Node, int, *Observation) {}

// denseSim8192 builds the dense-deployment workload of the incremental-vs-
// recompute benchmark pair: 8192 nodes (beyond the pathloss cache budget, so
// recompute pays per-pair model evaluations) under full sensing, with a
// 128-transmitter cohort rotating every 64 slots.
func denseSim8192(b *testing.B, mode FieldMode) *Sim {
	b.Helper()
	pts := workload.UniformDisc(8192, workload.SideForDegree(8192, 16, 9), 3)
	s, err := New(Config{
		Space: metric.NewEuclidean(pts),
		Model: model.NewSINR(1500, 1.5, 1, 3, 0.1),
		P:     1500, Zeta: 3, Noise: 1, Eps: 0.1,
		Seed:       3,
		Primitives: CD | ACK,
		FieldMode:  mode,
	}, func(id int) Protocol {
		return &cohortProto{id: id, n: 8192, k: 128, period: 64}
	})
	if err != nil {
		b.Fatal(err)
	}
	return s
}

func BenchmarkStepDense8192Incremental(b *testing.B) {
	s := denseSim8192(b, FieldIncremental)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Step()
	}
}

// BenchmarkStepDense8192Recompute runs the identical workload through the
// brute per-slot field recompute (the pre-incremental driver). The ratio of
// this pair is the incremental-field speedup on dense deployments.
func BenchmarkStepDense8192Recompute(b *testing.B) {
	s := denseSim8192(b, FieldRecompute)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Step()
	}
}

// idleBenchProto is permanently quiescent traffic: nothing ever transmits,
// and the Quiescent promise lets the wheel skip every slot.
type idleBenchProto struct{}

func (idleBenchProto) Act(*Node, int) Action            { return Action{} }
func (idleBenchProto) Observe(*Node, int, *Observation) {}
func (idleBenchProto) QuiescentFor() int                { return maxQuietWindow }
func (idleBenchProto) SkipQuiet(int)                    {}

// quiescentSim8192 builds the quiescent-phase workload of the wheel
// benchmark pair: 8192 idle nodes on a field-oblivious UDG model.
func quiescentSim8192(b *testing.B, disable bool) *Sim {
	b.Helper()
	pts := workload.UniformDisc(8192, workload.SideForDegree(8192, 16, 10), 4)
	s, err := New(Config{
		Space: metric.NewEuclidean(pts),
		Model: model.NewUDG(10),
		P:     1500, Zeta: 3, Noise: 1, Eps: 0.1,
		Seed:              4,
		DisableQuiescence: disable,
	}, func(int) Protocol { return idleBenchProto{} })
	if err != nil {
		b.Fatal(err)
	}
	return s
}

func BenchmarkStepQuiescent8192Wheel(b *testing.B) {
	s := quiescentSim8192(b, false)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Step()
	}
}

// BenchmarkStepQuiescent8192SlotBySlot executes every quiescent slot in
// full (the pre-wheel driver). The ratio of this pair is the quiescence-
// skipping speedup on idle phases.
func BenchmarkStepQuiescent8192SlotBySlot(b *testing.B) {
	s := quiescentSim8192(b, true)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Step()
	}
}
