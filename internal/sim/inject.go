package sim

// Injector is the fault-injection hook of the tick loop. The simulator
// consults a configured injector at four fixed points of Step; a nil
// injector costs nothing. The canonical implementation is internal/faults.
//
// Implementations must be deterministic functions of (their own seed, the
// call arguments): decisions may not depend on wall clock, map iteration
// order, or on how many times a query method is invoked. The simulator in
// turn guarantees a fixed call discipline — BeginTick once per tick, Seized
// exactly once per alive node per tick in increasing node order, DropRecv
// once per candidate reception in the deterministic resolution order, and
// Observation once per acting node — so fault-injected runs stay pure
// functions of (topology seed, run seed, fault seed) and replay
// byte-identically at any worker count.
type Injector interface {
	// BeginTick runs before the tick's actions are collected. The injector
	// may mutate the network through the public dynamics surface (Kill,
	// Revive, Move) to realise crash/restart schedules. It runs after any
	// external dynamics.Driver for the same tick.
	BeginTick(s *Sim, tick int)

	// Seized reports whether node v's radio is hijacked this tick and, if
	// so, the action forced onto the air. A seized node's protocol neither
	// acts nor observes (its state freezes): a forced transmission models a
	// stuck transmitter, a forced no-op models a stalled clock. The node's
	// receiver hardware still participates in ground truth — a seized
	// non-transmitter can decode (subject to DropRecv), and its liveness
	// still counts against its neighbours' mass deliveries.
	Seized(v, tick int) (Action, bool)

	// DropRecv reports whether v's otherwise-successful reception of u's
	// transmission this tick is lost (deaf receiver, random message drop,
	// undecodable jam carrier). The drop is ground truth: it also voids
	// mass delivery, coverage and first-decode accounting.
	DropRecv(u, v, tick int) bool

	// Observation may corrupt node v's sensing outcome after the slot
	// resolved (false CD busy/idle, false ACK, false NTD readings). It is
	// called only for nodes that acted under protocol control; corrupted
	// fields are meaningful only for primitives the run grants.
	Observation(v, tick int, obs *Observation)
}
