package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical outputs", same)
	}
}

func TestForkIndependence(t *testing.T) {
	root := New(7)
	a := root.Fork(1)
	b := root.Fork(2)
	if a.Uint64() == b.Uint64() {
		t.Fatal("forked streams start identically")
	}
	// Forking must not disturb the parent.
	p1 := New(7)
	p1.Fork(1)
	p2 := New(7)
	if p1.Uint64() != p2.Uint64() {
		t.Fatal("Fork mutated parent state")
	}
}

func TestFloat64Range(t *testing.T) {
	s := New(3)
	for i := 0; i < 10000; i++ {
		f := s.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	s := New(11)
	const n = 100000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += s.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("mean of uniforms = %v, want ~0.5", mean)
	}
}

func TestBernoulliEdge(t *testing.T) {
	s := New(5)
	for i := 0; i < 100; i++ {
		if s.Bernoulli(0) {
			t.Fatal("Bernoulli(0) returned true")
		}
		if !s.Bernoulli(1) {
			t.Fatal("Bernoulli(1) returned false")
		}
		if s.Bernoulli(-0.5) {
			t.Fatal("Bernoulli(<0) returned true")
		}
		if !s.Bernoulli(1.5) {
			t.Fatal("Bernoulli(>1) returned false")
		}
	}
}

func TestBernoulliFrequency(t *testing.T) {
	s := New(9)
	const n = 100000
	hits := 0
	for i := 0; i < n; i++ {
		if s.Bernoulli(0.3) {
			hits++
		}
	}
	freq := float64(hits) / n
	if math.Abs(freq-0.3) > 0.01 {
		t.Fatalf("Bernoulli(0.3) frequency = %v", freq)
	}
}

func TestIntnBounds(t *testing.T) {
	s := New(13)
	seen := make(map[int]bool)
	for i := 0; i < 1000; i++ {
		v := s.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn(10) = %d out of range", v)
		}
		seen[v] = true
	}
	if len(seen) != 10 {
		t.Fatalf("Intn(10) covered only %d values", len(seen))
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestPermIsPermutation(t *testing.T) {
	s := New(17)
	p := s.Perm(50)
	seen := make([]bool, 50)
	for _, v := range p {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("not a permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestNormMoments(t *testing.T) {
	s := New(19)
	const n = 200000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := s.Norm()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("normal mean = %v", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Fatalf("normal variance = %v", variance)
	}
}

func TestExpMean(t *testing.T) {
	s := New(23)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += s.Exp(2)
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("Exp(2) mean = %v, want 0.5", mean)
	}
}

func TestExpPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Exp(0) did not panic")
		}
	}()
	New(1).Exp(0)
}

func TestRange(t *testing.T) {
	s := New(29)
	for i := 0; i < 1000; i++ {
		v := s.Range(3, 7)
		if v < 3 || v >= 7 {
			t.Fatalf("Range(3,7) = %v", v)
		}
	}
}

// Property: Fork with distinct ids yields distinct first outputs.
func TestForkProperty(t *testing.T) {
	f := func(seed, id1, id2 uint64) bool {
		if id1 == id2 {
			return true
		}
		r := New(seed)
		return r.Fork(id1).Uint64() != r.Fork(id2).Uint64()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Float64 always in [0,1).
func TestFloat64Property(t *testing.T) {
	f := func(seed uint64) bool {
		s := New(seed)
		for i := 0; i < 100; i++ {
			v := s.Float64()
			if v < 0 || v >= 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestShuffle(t *testing.T) {
	s := New(31)
	xs := []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	s.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	seen := make([]bool, 10)
	for _, v := range xs {
		seen[v] = true
	}
	for i, ok := range seen {
		if !ok {
			t.Fatalf("value %d lost in shuffle", i)
		}
	}
}

func BenchmarkUint64(b *testing.B) {
	s := New(1)
	for i := 0; i < b.N; i++ {
		_ = s.Uint64()
	}
}
