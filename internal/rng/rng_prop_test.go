package rng

import (
	"sync"
	"testing"
)

// Property tests backing the parallel experiment engine: the simulator gives
// every node (and every concurrent cell) its own forked stream, so streams
// keyed by distinct ids must not collide, and re-deriving a stream — from
// any goroutine — must reproduce it exactly. Everything here is
// deterministic: fixed seeds, fixed expectations.

// TestForkStreamsDisjointPrefixes forks many per-node streams from one root
// and checks that their prefixes are pairwise disjoint: no value appears in
// two different streams (nor twice in one), i.e. the streams do not overlap
// in the window the simulator actually consumes.
func TestForkStreamsDisjointPrefixes(t *testing.T) {
	const streams, prefix = 256, 256
	root := New(42)
	seen := make(map[uint64]int, streams*prefix)
	for id := 0; id < streams; id++ {
		s := root.Fork(uint64(id))
		for i := 0; i < prefix; i++ {
			v := s.Uint64()
			if prev, dup := seen[v]; dup {
				t.Fatalf("value %#x appears in streams %d and %d", v, prev, id)
			}
			seen[v] = id
		}
	}
}

// TestSeedStreamsDisjointPrefixes does the same across run seeds — distinct
// (topology seed, run seed) cells must draw from non-overlapping sequences.
func TestSeedStreamsDisjointPrefixes(t *testing.T) {
	const seeds, prefix = 128, 512
	seen := make(map[uint64]uint64, seeds*prefix)
	for seed := uint64(1); seed <= seeds; seed++ {
		s := New(seed)
		for i := 0; i < prefix; i++ {
			v := s.Uint64()
			if prev, dup := seen[v]; dup {
				t.Fatalf("value %#x appears under seeds %d and %d", v, prev, seed)
			}
			seen[v] = seed
		}
	}
}

// TestForkRederivationAcrossGoroutines re-derives the same forked stream
// from many goroutines simultaneously and checks every derivation matches
// the reference sequence. This is the replay guarantee concurrent grid
// cells rely on: deriving your stream is a pure function of (seed, id),
// immune to scheduling.
func TestForkRederivationAcrossGoroutines(t *testing.T) {
	const goroutines, prefix = 16, 1024
	ref := make([]uint64, prefix)
	s := New(7).Fork(13)
	for i := range ref {
		ref[i] = s.Uint64()
	}

	var wg sync.WaitGroup
	errs := make(chan string, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s := New(7).Fork(13)
			for i := 0; i < prefix; i++ {
				if v := s.Uint64(); v != ref[i] {
					errs <- "re-derived stream diverged from reference"
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	if msg, bad := <-errs; bad {
		t.Fatal(msg)
	}
}

// TestForkIndependentOfDrawOrder: forking is read-only on the parent, so
// the derived stream must not depend on how many values the parent handed
// out to *other* forks in between — the property that makes per-node
// streams identical no matter how a run interleaves with its neighbours.
func TestForkIndependentOfDrawOrder(t *testing.T) {
	a := New(99)
	f1 := a.Fork(5)
	b := New(99)
	_ = b.Fork(1)
	_ = b.Fork(2)
	f2 := b.Fork(5)
	for i := 0; i < 64; i++ {
		if f1.Uint64() != f2.Uint64() {
			t.Fatal("Fork must be a pure function of (parent state, id)")
		}
	}
}
