// Package rng provides small, fast, deterministic random number generators
// for the simulator.
//
// Every simulation run must be a pure function of its seeds so that
// experiments are replayable and tests are stable. The package implements
// splitmix64 (Steele, Lea, Flood 2014), which is statistically strong enough
// for Monte-Carlo simulation, allocation free, and trivially forkable into
// independent per-node streams.
package rng

import "math"

// Source is a deterministic 64-bit pseudo-random source based on splitmix64.
// The zero value is a valid source seeded with 0.
type Source struct {
	state uint64
}

// New returns a source seeded with seed.
func New(seed uint64) *Source {
	return &Source{state: seed}
}

// Fork derives an independent stream from this source, keyed by id.
// Forking with distinct ids yields streams that do not overlap in practice,
// which lets the simulator give each node its own reproducible stream.
func (s *Source) Fork(id uint64) *Source {
	// Mix the current state with the id through one splitmix64 step each so
	// that Fork(1) and Fork(2) differ in all bits.
	return &Source{state: mix(s.state) ^ mix(id^0x9e3779b97f4a7c15)}
}

// Uint64 returns the next 64 random bits.
func (s *Source) Uint64() uint64 {
	s.state += 0x9e3779b97f4a7c15
	return mix(s.state)
}

func mix(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform float64 in [0, 1).
func (s *Source) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Bernoulli reports true with probability p.
// Values of p outside [0, 1] are clamped.
func (s *Source) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return s.Float64() < p
}

// Intn returns a uniform int in [0, n). It panics if n <= 0, mirroring
// math/rand, because a non-positive bound is a programming error.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn bound must be positive")
	}
	// Lemire's multiply-shift rejection-free-ish reduction is unnecessary
	// here; plain modulo bias is < 2^-40 for the bounds we use (< 2^24).
	return int(s.Uint64() % uint64(n))
}

// Range returns a uniform float64 in [lo, hi).
func (s *Source) Range(lo, hi float64) float64 {
	return lo + (hi-lo)*s.Float64()
}

// Norm returns a standard normally distributed value using the
// Box-Muller transform.
func (s *Source) Norm() float64 {
	// Guard against log(0).
	u := 1 - s.Float64()
	v := s.Float64()
	return math.Sqrt(-2*math.Log(u)) * math.Cos(2*math.Pi*v)
}

// Exp returns an exponentially distributed value with rate lambda.
// It panics if lambda <= 0.
func (s *Source) Exp(lambda float64) float64 {
	if lambda <= 0 {
		panic("rng: Exp rate must be positive")
	}
	return -math.Log(1-s.Float64()) / lambda
}

// Perm returns a uniform random permutation of [0, n).
func (s *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle permutes the first n elements using swap, Fisher-Yates style.
func (s *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		swap(i, j)
	}
}
