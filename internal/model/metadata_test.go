package model

import (
	"math"
	"testing"

	"udwn/internal/metric"
)

// TestModelMetadata pins down the identity surface of every model: names,
// ranges, SuccClear parameters and comm radii.
func TestModelMetadata(t *testing.T) {
	tests := []struct {
		m        Model
		name     string
		r        float64
		rhoC     float64
		icInf    bool
		commR010 float64 // CommRadius(0.1)
	}{
		{NewSINR(8, 1, 1, 3, 0.1), "sinr", 2, 0, false, 1.8},
		{NewUDG(4), "udg", 4, 2, true, 4},
		{NewUBG(4), "ubg", 4, 2, true, 4},
		{NewKHop(4, 2), "khop", 4, 3, true, 4},
		{NewQUDG(3, 6, nil), "qudg", 3, 3, true, 3},
		{NewProtocol(4, 8), "protocol", 4, 3, true, 4},
		{NewBIG(2), "big", 1, 3, true, 1},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.m.Name(); got != tt.name {
				t.Fatalf("Name = %q", got)
			}
			if got := tt.m.R(); math.Abs(got-tt.r) > 1e-9 {
				t.Fatalf("R = %v, want %v", got, tt.r)
			}
			p := tt.m.Params()
			if math.Abs(p.RhoC-tt.rhoC) > 1e-9 {
				t.Fatalf("RhoC = %v, want %v", p.RhoC, tt.rhoC)
			}
			if math.IsInf(p.Ic, 1) != tt.icInf {
				t.Fatalf("Ic = %v, infinite-ness wrong", p.Ic)
			}
			if got := tt.m.CommRadius(0.1); math.Abs(got-tt.commR010) > 1e-9 {
				t.Fatalf("CommRadius(0.1) = %v, want %v", got, tt.commR010)
			}
		})
	}
}

func TestRayleighParams(t *testing.T) {
	m := NewRayleighSINR(8, 1, 1, 3, 0.1, 1, func() int { return 0 })
	det := NewSINR(8, 1, 1, 3, 0.1)
	if m.Params() != det.Params() {
		t.Fatal("Rayleigh must inherit SINR SuccClear parameters")
	}
}

func TestSINRDecodesSelfSignalZero(t *testing.T) {
	// Power(u,u) = 0, so a node can never decode itself.
	s := NewSINR(8, 1, 1, 3, 0.1)
	v := newFakeView(twoNodeMatrix(1), 8, 3, []int{0})
	if s.Decodes(v, 0, 0) {
		t.Fatal("self-decode must fail")
	}
}

func TestQUDGDecodesOwnInterferenceExcluded(t *testing.T) {
	// The sender's own transmission must not count against itself.
	m := NewQUDG(2, 4, nil)
	v := newFakeView(twoNodeMatrix(1.5), 1, 3, []int{0})
	if !m.Decodes(v, 0, 1) {
		t.Fatal("lone inner-zone transmitter must decode")
	}
}

// twoNodeMatrix is a tiny helper mirroring the one in model_test.go.
func twoNodeMatrix(d float64) *metric.Matrix { return metric.NewMatrix(2, d) }
