package model

import (
	"math"
	"testing"

	"udwn/internal/metric"
)

func TestRayleighDeterministicPerTick(t *testing.T) {
	tick := 0
	m := NewRayleighSINR(8, 1, 1, 3, 0.1, 7, func() int { return tick })
	space := metric.NewMatrix(2, 1.5)
	v := newFakeView(space, 8, 3, []int{0})
	a := m.Decodes(v, 0, 1)
	b := m.Decodes(v, 0, 1)
	if a != b {
		t.Fatal("same tick must fade identically (replayability)")
	}
}

func TestRayleighVariesAcrossTicks(t *testing.T) {
	// At a distance near R, the faded decode outcome must vary over ticks:
	// sometimes up-fade succeeds, sometimes down-fade fails.
	tick := 0
	m := NewRayleighSINR(8, 1, 1, 3, 0.1, 7, func() int { return tick })
	space := metric.NewMatrix(2, 1.9)
	v := newFakeView(space, 8, 3, []int{0})
	succ := 0
	const trials = 400
	for tick = 0; tick < trials; tick++ {
		if m.Decodes(v, 0, 1) {
			succ++
		}
	}
	if succ == 0 || succ == trials {
		t.Fatalf("fading should make decode stochastic near R: %d/%d", succ, trials)
	}
}

func TestRayleighUpFadeBeyondMeanRange(t *testing.T) {
	// Beyond the mean-field range R, up-fades occasionally deliver — unlike
	// deterministic SINR. This is the edge-dynamics the model injects.
	tick := 0
	m := NewRayleighSINR(8, 1, 1, 3, 0.1, 9, func() int { return tick })
	space := metric.NewMatrix(2, 2.3)
	v := newFakeView(space, 8, 3, []int{0})
	succ := 0
	for tick = 0; tick < 2000; tick++ {
		if m.Decodes(v, 0, 1) {
			succ++
		}
	}
	if succ == 0 {
		t.Fatal("no up-fade success beyond R in 2000 slots")
	}
	det := NewSINR(8, 1, 1, 3, 0.1)
	if det.Decodes(v, 0, 1) {
		t.Fatal("deterministic SINR must fail at d=2.3 > R")
	}
}

func TestRayleighFadeUnitMean(t *testing.T) {
	m := NewRayleighSINR(8, 1, 1, 3, 0.1, 11, func() int { return 0 })
	sum := 0.0
	const k = 50000
	for i := 0; i < k; i++ {
		sum += m.fade(i, 0, 1)
	}
	if mean := sum / k; math.Abs(mean-1) > 0.03 {
		t.Fatalf("fading mean = %v, want 1", mean)
	}
}

func TestRayleighMetadata(t *testing.T) {
	m := NewRayleighSINR(8, 1, 1, 3, 0.1, 1, func() int { return 0 })
	if m.Name() != "rayleigh" {
		t.Fatal("name")
	}
	if math.Abs(m.R()-2) > 1e-12 {
		t.Fatalf("R = %v", m.R())
	}
	if m.CommRadius(0.1) >= m.R() {
		t.Fatal("CommRadius must shrink")
	}
	if !m.Neighbor(1.9) || m.Neighbor(2.1) {
		t.Fatal("Neighbor predicate wrong")
	}
}

func TestRayleighPanicsWithoutTick(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewRayleighSINR(8, 1, 1, 3, 0.1, 1, nil)
}
