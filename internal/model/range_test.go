package model

import (
	"math"
	"testing"

	"udwn/internal/geom"
	"udwn/internal/metric"
	"udwn/internal/pathloss"
)

// TestMaxDecodeRangeValues pins the declared decode cutoffs of every shipped
// RangeLimiter model.
func TestMaxDecodeRangeValues(t *testing.T) {
	sinr := NewSINR(1500, 1.5, 1, 3, 0.1)
	if got, want := sinr.MaxDecodeRange(), pathloss.SINRRange(1500, 1.5, 1, 3); got != want {
		t.Fatalf("SINR MaxDecodeRange = %v, want R = %v", got, want)
	}
	if got := NewUDG(7).MaxDecodeRange(); got != 7 {
		t.Fatalf("UDG MaxDecodeRange = %v, want 7", got)
	}
	if got := NewQUDG(4, 9, nil).MaxDecodeRange(); got != 4 {
		t.Fatalf("pessimistic QUDG MaxDecodeRange = %v, want innerR 4", got)
	}
	grey := func(d float64) bool { return true }
	if got := NewQUDG(4, 9, grey).MaxDecodeRange(); got != 9 {
		t.Fatalf("grey QUDG MaxDecodeRange = %v, want outerR 9", got)
	}
	if got := NewProtocol(5, 11).MaxDecodeRange(); got != 5 {
		t.Fatalf("Protocol MaxDecodeRange = %v, want commR 5", got)
	}
	if got := NewBIG(2).MaxDecodeRange(); got != 1 {
		t.Fatalf("BIG MaxDecodeRange = %v, want 1", got)
	}
	tick := func() int { return 0 }
	ray := NewRayleighSINR(1500, 1.5, 1, 3, 0.1, 7, tick)
	wantRay := ray.R() * math.Pow(-math.Log(1-fadeClamp), 1.0/3)
	if got := ray.MaxDecodeRange(); math.Abs(got-wantRay) > 1e-12 {
		t.Fatalf("Rayleigh MaxDecodeRange = %v, want %v", got, wantRay)
	}
	if ray.MaxDecodeRange() <= ray.R() {
		t.Fatal("Rayleigh MaxDecodeRange must exceed the mean-field range")
	}
}

// TestDecodesFalseBeyondMaxDecodeRange verifies the RangeLimiter contract
// under its hardest condition — a lone transmitter, zero interference: past
// the declared cutoff Decodes must be false, which is what licenses the
// simulator to skip those pairs entirely on the indexed reception path.
func TestDecodesFalseBeyondMaxDecodeRange(t *testing.T) {
	var tickVal int
	tick := func() int { return tickVal }
	grey := func(d float64) bool { return math.Sin(d*31.4) > -0.5 }
	models := []Model{
		NewSINR(1500, 1.5, 1, 3, 0.1),
		NewUDG(7),
		NewQUDG(4, 9, nil),
		NewQUDG(4, 9, grey),
		NewProtocol(5, 11),
		NewRayleighSINR(1500, 1.5, 1, 3, 0.1, 7, tick),
	}
	for _, m := range models {
		rl, ok := m.(RangeLimiter)
		if !ok {
			t.Fatalf("%s does not declare a decode cutoff", m.Name())
		}
		cutoff := rl.MaxDecodeRange()
		for _, factor := range []float64{1 + 1e-9, 1.01, 1.5, 4} {
			d := cutoff * factor
			e := metric.NewEuclidean([]geom.Point{{X: 0, Y: 0}, {X: d, Y: 0}})
			view := newFakeView(e, 1500, 3, []int{0})
			// Rayleigh redraws fading per tick; sweep many slots so a lucky
			// coefficient would be caught.
			for tickVal = 0; tickVal < 500; tickVal++ {
				if m.Decodes(view, 0, 1) {
					t.Fatalf("%s decodes at %.6g×MaxDecodeRange (tick %d)",
						m.Name(), factor, tickVal)
				}
			}
		}
		// Sanity: the cutoff is not vacuously large — a clear channel decodes
		// somewhere inside it (graph models decode right up to the cutoff;
		// Rayleigh needs a favourable draw, so scan slots).
		d := cutoff * 0.9
		switch m.Name() {
		case "qudg":
			d = 3.9 // inside innerR, where connectivity is unconditional
		case "rayleigh":
			// Deep inside the cutoff a decode needs a ~e^{-10} fading draw;
			// just beyond the mean-field range a ~20% draw suffices while
			// still proving the faded range exceeds R.
			d = m.R() * 1.2
		}
		e := metric.NewEuclidean([]geom.Point{{X: 0, Y: 0}, {X: d, Y: 0}})
		view := newFakeView(e, 1500, 3, []int{0})
		decoded := false
		for tickVal = 0; tickVal < 500 && !decoded; tickVal++ {
			decoded = m.Decodes(view, 0, 1)
		}
		if !decoded {
			t.Fatalf("%s never decodes inside its cutoff", m.Name())
		}
	}
}

// TestFieldObliviousDeclarations pins which models may skip the interference
// field: graph-style rules and Rayleigh (which sums its own faded per-pair
// powers) never read View.TotalPower; SINR does.
func TestFieldObliviousDeclarations(t *testing.T) {
	tick := func() int { return 0 }
	oblivious := []Model{
		NewUDG(7), NewUBG(7), NewKHop(7, 2), NewQUDG(4, 9, nil),
		NewProtocol(5, 11), NewBIG(2),
		NewRayleighSINR(1500, 1.5, 1, 3, 0.1, 7, tick),
	}
	for _, m := range oblivious {
		fo, ok := m.(FieldOblivious)
		if !ok || !fo.FieldOblivious() {
			t.Fatalf("%s should declare FieldOblivious", m.Name())
		}
	}
	if _, ok := Model(NewSINR(1500, 1.5, 1, 3, 0.1)).(FieldOblivious); ok {
		t.Fatal("SINR reads TotalPower and must not declare FieldOblivious")
	}
}
