package model

import (
	"math"

	"udwn/internal/rng"
)

// RayleighSINR is the SINR model under Rayleigh (multipath) fading: every
// transmission's received power is scaled by an independent per-(slot,
// sender, receiver) exponential fading coefficient of unit mean. This
// realises the paper's remark that clean geometric decay "is equally at odds
// with experimental evidence": signal strengths fluctuate slot to slot, so
// the edge set of the communication graph effectively changes every round —
// exactly the unpredictable dynamic behaviour the unified model allows the
// adversary to inject.
//
// The carrier-sense primitives still operate on the deterministic mean
// field (hardware averages RSS over the slot); only the decode rule is
// faded. SuccClear remains sound on average: the guarantee becomes
// probabilistic, which the adversarial-region semantics of Def. 1 permit.
type RayleighSINR struct {
	base *SINR
	seed uint64
	tick func() int
	zeta float64
}

var _ Model = (*RayleighSINR)(nil)

// fadeClamp is the upper clamp on the uniform draw behind the exponential
// fading coefficient; it bounds the coefficient at -log(1-fadeClamp), which
// in turn bounds the maximum decode distance (see MaxDecodeRange).
const fadeClamp = 0.999999

// NewRayleighSINR wraps the SINR parameters with Rayleigh fading. tick must
// report the simulator's current tick so coefficients redraw every slot; it
// is typically bound to (*sim.Sim).Tick.
func NewRayleighSINR(p, beta, noise, zeta, eps float64, seed uint64, tick func() int) *RayleighSINR {
	if tick == nil {
		panic("model: RayleighSINR needs a tick source")
	}
	return &RayleighSINR{base: NewSINR(p, beta, noise, zeta, eps), seed: seed, tick: tick, zeta: zeta}
}

// Name returns "rayleigh".
func (m *RayleighSINR) Name() string { return "rayleigh" }

// R returns the mean-field clear-channel range.
func (m *RayleighSINR) R() float64 { return m.base.R() }

// Params returns the underlying SINR SuccClear parameters.
func (m *RayleighSINR) Params() SuccClear { return m.base.Params() }

// Neighbor uses the mean field, like the dissemination guarantees.
func (m *RayleighSINR) Neighbor(dist float64) bool { return m.base.Neighbor(dist) }

// CommRadius returns the mean-field (1−eps)·R.
func (m *RayleighSINR) CommRadius(eps float64) float64 { return m.base.CommRadius(eps) }

// MaxDecodeRange returns the largest distance any faded transmission can be
// decoded from: the fading coefficient is clamped at -log(1-fadeClamp), so
// beyond maxFade^{1/ζ}·R even a maximally lucky draw leaves the signal below
// β·N and the ratio test cannot succeed.
func (m *RayleighSINR) MaxDecodeRange() float64 {
	maxFade := -math.Log(1 - fadeClamp)
	return m.base.R() * math.Pow(maxFade, 1/m.zeta)
}

// FieldOblivious reports true: Decodes accumulates its own faded
// interference from per-pair powers and never reads View.TotalPower.
func (m *RayleighSINR) FieldOblivious() bool { return true }

// fade returns the exponential fading coefficient for (tick, w, v),
// deterministic per run for replayability.
func (m *RayleighSINR) fade(tick, w, v int) float64 {
	r := rng.New(m.seed ^ uint64(tick)<<40 ^ uint64(w)<<20 ^ uint64(v))
	// Exponential with unit mean; clamp away from 0 to avoid -Inf logs.
	u := r.Float64()
	if u > fadeClamp {
		u = fadeClamp
	}
	return -math.Log(1 - u)
}

// Decodes applies the SINR inequality with faded signal and interference.
func (m *RayleighSINR) Decodes(view View, u, v int) bool {
	tick := m.tick()
	sig := view.Power(u, v) * m.fade(tick, u, v)
	if sig <= 0 {
		return false
	}
	interference := 0.0
	for _, w := range view.Transmitters() {
		if w == u || w == v {
			continue
		}
		interference += view.Power(w, v) * m.fade(tick, w, v)
	}
	return sig > m.base.Beta()*(interference+m.base.Noise())
}
