package model

import (
	"math"
	"testing"

	"udwn/internal/metric"
	"udwn/internal/pathloss"
)

// fakeView implements View over an explicit space and transmitter set.
type fakeView struct {
	space metric.Space
	field *pathloss.Field
	tx    []int
}

func newFakeView(space metric.Space, p, zeta float64, tx []int) *fakeView {
	return &fakeView{
		space: space,
		field: pathloss.NewField(space, p, zeta, pathloss.Options{Dynamic: true}),
		tx:    tx,
	}
}

func (f *fakeView) Transmitters() []int    { return f.tx }
func (f *fakeView) Power(w, v int) float64 { return f.field.Power(w, v) }
func (f *fakeView) Dist(u, v int) float64  { return f.space.Dist(u, v) }
func (f *fakeView) TotalPower(v int) float64 {
	total := 0.0
	for _, w := range f.tx {
		total += f.field.Power(w, v)
	}
	return total
}

func (f *fakeView) TransmittersWithin(v int, r float64, excluding int) int {
	n := 0
	for _, w := range f.tx {
		if w == excluding || w == v {
			continue
		}
		if f.space.Dist(w, v) <= r {
			n++
		}
	}
	return n
}

func TestSINRSingleTransmitter(t *testing.T) {
	// P=8, β=1, N=1, ζ=3 → R=2. A lone transmitter at distance 1.9 succeeds,
	// at distance 2.1 fails.
	s := NewSINR(8, 1, 1, 3, 0.1)
	if math.Abs(s.R()-2) > 1e-12 {
		t.Fatalf("R = %v", s.R())
	}
	m := metric.NewMatrix(2, 1.9)
	v := newFakeView(m, 8, 3, []int{0})
	if !s.Decodes(v, 0, 1) {
		t.Fatal("clear channel at d=1.9 must decode")
	}
	m2 := metric.NewMatrix(2, 2.1)
	v2 := newFakeView(m2, 8, 3, []int{0})
	if s.Decodes(v2, 0, 1) {
		t.Fatal("d=2.1 beyond R must not decode")
	}
}

func TestSINRInterferenceBlocks(t *testing.T) {
	// Receiver 2 sits at distance 1 from sender 0 and distance 1 from
	// interferer 1: SINR = 1/(1+N) < β → no decode. Removing the interferer
	// restores the decode.
	m := metric.NewMatrix(3, 1)
	m.SetSym(0, 1, 10)
	s := NewSINR(8, 1, 1, 3, 0.1)
	if s.Decodes(newFakeView(m, 8, 3, []int{0, 1}), 0, 2) {
		t.Fatal("equal-power interferer must block decode at β=1")
	}
	if !s.Decodes(newFakeView(m, 8, 3, []int{0}), 0, 2) {
		t.Fatal("decode must succeed without interferer")
	}
}

func TestSINRFarInterferenceAccumulates(t *testing.T) {
	// Many far transmitters, individually negligible, together block.
	// Sender at d=1.9 (signal ≈ 1.166); each interferer at d=4 contributes
	// 8/64 = 0.125; 20 of them give 2.5 > signal - noise margin.
	const nFar = 20
	m := metric.NewMatrix(nFar+2, 100)
	sender, recv := 0, 1
	m.Set(sender, recv, 1.9)
	tx := []int{sender}
	for i := 0; i < nFar; i++ {
		m.Set(2+i, recv, 4)
		tx = append(tx, 2+i)
	}
	s := NewSINR(8, 1, 1, 3, 0.1)
	if s.Decodes(newFakeView(m, 8, 3, tx), sender, recv) {
		t.Fatal("cumulative far interference must block decode")
	}
	if !s.Decodes(newFakeView(m, 8, 3, []int{sender}), sender, recv) {
		t.Fatal("decode must succeed without the far set")
	}
}

func TestSINRParams(t *testing.T) {
	s := NewSINR(8, 1, 1, 3, 0.1)
	p := s.Params()
	if p.RhoC != 0 {
		t.Fatal("SINR needs no geometric exclusion")
	}
	want := ClearIc(0.1, 1, 1, 3)
	if p.Ic != want {
		t.Fatalf("Ic = %v, want %v", p.Ic, want)
	}
	if want <= 0 || math.IsInf(want, 0) {
		t.Fatalf("Ic must be positive finite, got %v", want)
	}
}

func TestClearIcGuarantee(t *testing.T) {
	// Prop. B.1's premise: Ic < βN always, so a node with interference
	// below Ic has no transmitter within distance 2R.
	for _, eps := range []float64{0.05, 0.1, 0.2} {
		for _, zeta := range []float64{2, 3, 4} {
			ic := ClearIc(eps, 1.5, 1, zeta)
			if ic >= 1.5*1 {
				t.Fatalf("Ic=%v not below βN for eps=%v zeta=%v", ic, eps, zeta)
			}
		}
	}
}

func TestUDGCollision(t *testing.T) {
	u := NewUDG(2)
	// 0 and 1 both transmit; 2 hears both within R → collision.
	m := metric.NewMatrix(3, 1)
	m.SetSym(0, 1, 1)
	v := newFakeView(m, 1, 3, []int{0, 1})
	if u.Decodes(v, 0, 2) {
		t.Fatal("two transmitting neighbours must collide")
	}
	if !u.Decodes(newFakeView(m, 1, 3, []int{0}), 0, 2) {
		t.Fatal("single neighbour must decode")
	}
}

func TestUDGOutOfRange(t *testing.T) {
	u := NewUDG(2)
	m := metric.NewMatrix(2, 3)
	if u.Decodes(newFakeView(m, 1, 3, []int{0}), 0, 1) {
		t.Fatal("out-of-range must not decode")
	}
}

func TestUDGFarTransmitterHarmless(t *testing.T) {
	u := NewUDG(2)
	m := metric.NewMatrix(3, 1)
	m.Set(1, 2, 5) // interferer 1 is outside R of receiver 2
	if !u.Decodes(newFakeView(m, 1, 3, []int{0, 1}), 0, 2) {
		t.Fatal("graph model must ignore far transmitters")
	}
}

func TestKHopInterference(t *testing.T) {
	k := NewKHop(2, 2) // interference radius 4
	m := metric.NewMatrix(3, 1)
	m.Set(1, 2, 3) // within 4 → blocks under 2-hop, not under UDG
	if k.Decodes(newFakeView(m, 1, 3, []int{0, 1}), 0, 2) {
		t.Fatal("k-hop interference must block")
	}
	if !NewUDG(2).Decodes(newFakeView(m, 1, 3, []int{0, 1}), 0, 2) {
		t.Fatal("plain UDG must not block at d=3")
	}
}

func TestQUDGGreyZone(t *testing.T) {
	pess := NewQUDG(1, 2, nil)
	opti := NewQUDG(1, 2, func(float64) bool { return true })
	m := metric.NewMatrix(2, 1.5) // grey zone
	vw := newFakeView(m, 1, 3, []int{0})
	if pess.Decodes(vw, 0, 1) {
		t.Fatal("pessimistic grey edge must not decode")
	}
	if !opti.Decodes(vw, 0, 1) {
		t.Fatal("optimistic grey edge must decode")
	}
	// Inner zone always decodes regardless of adversary.
	mIn := metric.NewMatrix(2, 0.9)
	if !pess.Decodes(newFakeView(mIn, 1, 3, []int{0}), 0, 1) {
		t.Fatal("inner-zone edge must decode")
	}
	// Beyond outer radius never decodes.
	mOut := metric.NewMatrix(2, 2.5)
	if opti.Decodes(newFakeView(mOut, 1, 3, []int{0}), 0, 1) {
		t.Fatal("beyond outerR must not decode")
	}
}

func TestQUDGGreyInterference(t *testing.T) {
	// A grey-zone transmitter interferes even when not connected.
	pess := NewQUDG(1, 2, nil)
	m := metric.NewMatrix(3, 0.9)
	m.Set(1, 2, 1.8) // grey-zone interferer for receiver 2
	if pess.Decodes(newFakeView(m, 1, 3, []int{0, 1}), 0, 2) {
		t.Fatal("grey-zone transmitter must interfere")
	}
}

func TestProtocolModel(t *testing.T) {
	p := NewProtocol(1, 3)
	m := metric.NewMatrix(3, 0.5)
	m.Set(1, 2, 2.5) // inside interference range, outside comm range
	if p.Decodes(newFakeView(m, 1, 3, []int{0, 1}), 0, 2) {
		t.Fatal("interference-range transmitter must block")
	}
	m.Set(1, 2, 3.5)
	if !p.Decodes(newFakeView(m, 1, 3, []int{0, 1}), 0, 2) {
		t.Fatal("outside interference range must not block")
	}
	want := (1.0 + 3.0) / 1.0
	if got := p.Params().RhoC; got != want {
		t.Fatalf("RhoC = %v, want %v", got, want)
	}
}

func TestBIGModel(t *testing.T) {
	// Path 0-1-2-3-4. Interference reach 2 hops.
	g := metric.NewGraph([][]int{{1}, {0, 2}, {1, 3}, {2, 4}, {3}})
	b := NewBIG(2)
	// 0 transmits to 1; 3 transmits (2 hops from 1) → blocked.
	if b.Decodes(newFakeView(g, 1, 3, []int{0, 3}), 0, 1) {
		t.Fatal("2-hop interferer must block under BIG(2)")
	}
	// 4 is 3 hops from 1 → no block.
	if !b.Decodes(newFakeView(g, 1, 3, []int{0, 4}), 0, 1) {
		t.Fatal("3-hop transmitter must not block under BIG(2)")
	}
	// Non-adjacent pairs cannot communicate.
	if b.Decodes(newFakeView(g, 1, 3, []int{0}), 0, 2) {
		t.Fatal("non-adjacent decode under BIG")
	}
}

func TestNeighborPredicates(t *testing.T) {
	tests := []struct {
		name string
		m    Model
		dist float64
		want bool
	}{
		{"sinr in", NewSINR(8, 1, 1, 3, 0.1), 1.9, true},
		{"sinr out", NewSINR(8, 1, 1, 3, 0.1), 2.1, false},
		{"udg in", NewUDG(1), 1.0, true},
		{"udg out", NewUDG(1), 1.01, false},
		{"qudg grey not neighbor", NewQUDG(1, 2, func(float64) bool { return true }), 1.5, false},
		{"protocol in", NewProtocol(1, 2), 0.9, true},
		{"big adjacent", NewBIG(2), 1, true},
		{"big non-adjacent", NewBIG(2), 2, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.m.Neighbor(tt.dist); got != tt.want {
				t.Fatalf("Neighbor(%v) = %v, want %v", tt.dist, got, tt.want)
			}
		})
	}
}

func TestConstructorPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"sinr p=0":         func() { NewSINR(0, 1, 1, 3, 0.1) },
		"qudg inner=0":     func() { NewQUDG(0, 1, nil) },
		"qudg outer<inner": func() { NewQUDG(2, 1, nil) },
		"protocol bad":     func() { NewProtocol(2, 1) },
		"big k=0":          func() { NewBIG(0) },
	} {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		})
	}
}

func TestUBGNaming(t *testing.T) {
	if NewUBG(1).Name() != "ubg" || NewUDG(1).Name() != "udg" || NewKHop(1, 2).Name() != "khop" {
		t.Fatal("model names wrong")
	}
}
