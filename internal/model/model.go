// Package model implements the paper's unified communication model and the
// concrete models it captures: SINR, UDG/UBG, Quasi-UDG, the Protocol model,
// bounded-independence graphs (BIG), and k-hop variants.
//
// The unified rule is SuccClear (Def. 1): a transmission from u is guaranteed
// to reach all of u's neighbours when no other node transmits within the
// exclusion vicinity D(u, ρ_c·R) and the total interference at u is at most
// I_c. Each concrete model supplies its decoding rule (Decodes) plus its
// (ρ_c, I_c) parameters, which the sensing layer uses for ACK thresholds.
package model

import (
	"math"

	"udwn/internal/pathloss"
)

// View is the read-only window a model gets onto the current slot when
// deciding whether a listener decodes a transmitter. The simulator
// implements it with cached per-slot interference sums.
type View interface {
	// Transmitters returns the ids of nodes transmitting in this slot.
	Transmitters() []int
	// Power returns the received power of w's signal at v (0 for w == v).
	Power(w, v int) float64
	// Dist returns the quasi-distance d(u, v).
	Dist(u, v int) float64
	// TotalPower returns Σ_w Power(w, v) over all transmitters w.
	TotalPower(v int) float64
	// TransmittersWithin returns the number of transmitters w != excluding
	// with d(w, v) <= r. Pass excluding = -1 to count all.
	TransmittersWithin(v int, r float64, excluding int) int
}

// SuccClear holds the clear-channel parameters of a model.
type SuccClear struct {
	// RhoC is the exclusion radius multiplier: success is guaranteed only if
	// no other node in D(u, RhoC·R) transmits. Zero means no geometric
	// exclusion is needed (SINR).
	RhoC float64
	// Ic is the interference bound under which success is guaranteed.
	// math.Inf(1) for pure graph models.
	Ic float64
}

// RangeLimiter is an optional Model extension declaring a hard geometric
// cutoff on decoding: Decodes(view, u, v) is guaranteed false whenever
// d(u, v) > MaxDecodeRange(), for any transmitter set and any interference,
// at the model's nominal (unit) power scale. The simulator uses it to drive
// reception transmitter-outward from a spatial index — each transmitter only
// visits listeners inside the cutoff — so the bound must be exact, not
// approximate: for graph-style models it is the defining connectivity radius,
// and for SINR-style models it is the distance at which the bare signal drops
// to the decode threshold over noise alone (beyond it the ratio test cannot
// succeed even with zero interference). Power-scaled transmissions extend the
// cutoff by scale^{1/ζ}, which the simulator applies on top.
type RangeLimiter interface {
	MaxDecodeRange() float64
}

// FieldOblivious is an optional Model extension declaring that Decodes never
// consults View.TotalPower — the slot's aggregated interference field — only
// per-pair powers and distances. When such a model runs without any
// power-sensing primitive (CD, ACK), the simulator skips building the O(n·tx)
// interference field entirely.
type FieldOblivious interface {
	FieldOblivious() bool
}

// Model is a concrete communication model plugged into the simulator.
type Model interface {
	// Name identifies the model in reports.
	Name() string
	// R returns the maximum clear-channel communication distance.
	R() float64
	// Params returns the model's SuccClear parameters.
	Params() SuccClear
	// Decodes reports whether listener v (not transmitting) decodes
	// transmitter u in the slot described by view.
	Decodes(view View, u, v int) bool
	// Neighbor reports whether v is a potential receiver of u on a clear
	// channel, i.e. whether (u,v) can be a communication-graph edge.
	Neighbor(dist float64) bool
	// CommRadius returns the dissemination neighbourhood radius R_B for
	// precision eps: (1−eps)·R for fading models, whose maximum range is
	// only achievable on a perfectly clear channel, and R for graph models,
	// whose neighbourhoods are exact.
	CommRadius(eps float64) float64
}

// ClearIc returns the SINR-model interference bound of App. B:
// I_c = min{β, (1−ε)^{−ζ} − 1}·N / 2^ζ.
func ClearIc(eps, beta, noise, zeta float64) float64 {
	m := math.Min(beta, math.Pow(1-eps, -zeta)-1)
	return m * noise / math.Pow(2, zeta)
}

// SINR is the physical (fading) model: v decodes u iff
// P/d(u,v)^ζ > β·(Σ_{w≠u} P/d(w,v)^ζ + N).
type SINR struct {
	beta  float64
	noise float64
	r     float64
	ic    float64
}

var _ Model = (*SINR)(nil)

// NewSINR builds a SINR model from physical parameters. eps is the precision
// parameter used to derive I_c. It panics on non-positive parameters.
func NewSINR(p, beta, noise, zeta, eps float64) *SINR {
	if p <= 0 || beta <= 0 || noise <= 0 || zeta <= 0 {
		panic("model: SINR parameters must be positive")
	}
	return &SINR{
		beta:  beta,
		noise: noise,
		r:     pathloss.SINRRange(p, beta, noise, zeta),
		ic:    ClearIc(eps, beta, noise, zeta),
	}
}

// Name returns "sinr".
func (s *SINR) Name() string { return "sinr" }

// R returns (P/(βN))^{1/ζ}.
func (s *SINR) R() float64 { return s.r }

// Beta returns the SINR threshold.
func (s *SINR) Beta() float64 { return s.beta }

// Noise returns the ambient noise level.
func (s *SINR) Noise() float64 { return s.noise }

// Params returns ρ_c = 0 and the App. B interference bound.
func (s *SINR) Params() SuccClear { return SuccClear{RhoC: 0, Ic: s.ic} }

// Neighbor reports dist <= R.
func (s *SINR) Neighbor(dist float64) bool { return dist <= s.r }

// CommRadius returns (1−eps)·R.
func (s *SINR) CommRadius(eps float64) float64 { return (1 - eps) * s.r }

// MaxDecodeRange returns R: at d > R the bare signal P/d^ζ is already below
// β·N, so the SINR inequality fails even with zero interference.
func (s *SINR) MaxDecodeRange() float64 { return s.r }

// Decodes applies the SINR inequality with cumulative interference.
func (s *SINR) Decodes(view View, u, v int) bool {
	sig := view.Power(u, v)
	if sig <= 0 {
		return false
	}
	interference := view.TotalPower(v) - sig
	if interference < 0 {
		interference = 0
	}
	return sig > s.beta*(interference+s.noise)
}

// UDG is the unit-disc / unit-ball graph radio model: v decodes u iff
// d(u,v) <= R and no other transmitter is within the interference radius of
// v. With interference radius R this is the classical radio-network rule;
// over a non-Euclidean space the same type serves as the UBG model.
type UDG struct {
	name    string
	commR   float64
	interfR float64
}

var _ Model = (*UDG)(nil)

// NewUDG returns a UDG model with communication and interference radius r.
func NewUDG(r float64) *UDG { return &UDG{name: "udg", commR: r, interfR: r} }

// NewUBG returns the unit-ball-graph variant (identical rule, reported under
// its own name; the difference is the space it is used over).
func NewUBG(r float64) *UDG { return &UDG{name: "ubg", commR: r, interfR: r} }

// NewKHop returns a k-hop interference variant: communication radius r,
// interference radius k·r (k > 1 extends ρ_c as in App. B).
func NewKHop(r float64, k float64) *UDG {
	return &UDG{name: "khop", commR: r, interfR: k * r}
}

// Name returns the model name.
func (m *UDG) Name() string { return m.name }

// R returns the communication radius.
func (m *UDG) R() float64 { return m.commR }

// Params returns ρ_c = (R + R_I)/R and I_c = ∞ per App. B.
func (m *UDG) Params() SuccClear {
	return SuccClear{RhoC: (m.commR + m.interfR) / m.commR, Ic: math.Inf(1)}
}

// Neighbor reports dist <= R.
func (m *UDG) Neighbor(dist float64) bool { return dist <= m.commR }

// CommRadius returns R: graph neighbourhoods are exact.
func (m *UDG) CommRadius(float64) float64 { return m.commR }

// MaxDecodeRange returns the communication radius: Decodes rejects any pair
// beyond it outright.
func (m *UDG) MaxDecodeRange() float64 { return m.commR }

// FieldOblivious reports true: the collision rule never reads TotalPower.
func (m *UDG) FieldOblivious() bool { return true }

// Decodes applies the collision rule.
func (m *UDG) Decodes(view View, u, v int) bool {
	if view.Dist(u, v) > m.commR {
		return false
	}
	return view.TransmittersWithin(v, m.interfR, u) == 0
}

// QUDG is the quasi-unit-disc model: pairs within innerR are always
// connected, pairs beyond outerR never, and the grey zone in between is
// decided by an adversarially fixed (here: deterministic per pair) rule.
// Grey-zone nodes always cause interference regardless of connectivity.
type QUDG struct {
	innerR float64
	outerR float64
	// greyEdge decides connectivity of a grey-zone pair; nil means the
	// pessimistic adversary (no grey edges).
	greyEdge func(dist float64) bool
}

var _ Model = (*QUDG)(nil)

// NewQUDG returns a QUDG model. greyEdge may be nil for the pessimistic
// adversary. It panics unless 0 < innerR <= outerR.
func NewQUDG(innerR, outerR float64, greyEdge func(dist float64) bool) *QUDG {
	if innerR <= 0 || outerR < innerR {
		panic("model: QUDG needs 0 < innerR <= outerR")
	}
	return &QUDG{innerR: innerR, outerR: outerR, greyEdge: greyEdge}
}

// Name returns "qudg".
func (m *QUDG) Name() string { return "qudg" }

// R returns the inner (guaranteed) radius — the clear-channel communication
// distance of the unified model.
func (m *QUDG) R() float64 { return m.innerR }

// Params returns ρ_c = (R + R')/R over the inner radius, I_c = ∞.
func (m *QUDG) Params() SuccClear {
	return SuccClear{RhoC: (m.innerR + m.outerR) / m.innerR, Ic: math.Inf(1)}
}

// Neighbor reports guaranteed connectivity (dist <= innerR); grey-zone
// pairs are not neighbours in the communication graph the algorithms must
// serve, matching the unified model's guarantee.
func (m *QUDG) Neighbor(dist float64) bool { return dist <= m.innerR }

// CommRadius returns the inner radius: guaranteed edges are exact.
func (m *QUDG) CommRadius(float64) float64 { return m.innerR }

// MaxDecodeRange returns the largest distance at which an edge can exist:
// outerR when a grey-zone rule may connect pairs beyond the inner radius,
// innerR under the pessimistic (no grey edges) adversary.
func (m *QUDG) MaxDecodeRange() float64 {
	if m.greyEdge != nil {
		return m.outerR
	}
	return m.innerR
}

// FieldOblivious reports true: the collision rule never reads TotalPower.
func (m *QUDG) FieldOblivious() bool { return true }

// Decodes applies the collision rule over the (possibly grey) edge set,
// with interference out to outerR.
func (m *QUDG) Decodes(view View, u, v int) bool {
	d := view.Dist(u, v)
	connected := d <= m.innerR || (d <= m.outerR && m.greyEdge != nil && m.greyEdge(d))
	if !connected {
		return false
	}
	return view.TransmittersWithin(v, m.outerR, u) == 0
}

// Protocol is the protocol model of Gupta–Kumar: communication radius R and
// a larger interference radius R_I; v decodes u iff d(u,v) <= R and no other
// transmitter w has d(w,v) <= R_I.
type Protocol struct {
	commR   float64
	interfR float64
}

var _ Model = (*Protocol)(nil)

// NewProtocol returns a protocol model. It panics unless
// 0 < commR <= interfR.
func NewProtocol(commR, interfR float64) *Protocol {
	if commR <= 0 || interfR < commR {
		panic("model: Protocol needs 0 < commR <= interfR")
	}
	return &Protocol{commR: commR, interfR: interfR}
}

// Name returns "protocol".
func (m *Protocol) Name() string { return "protocol" }

// R returns the communication radius.
func (m *Protocol) R() float64 { return m.commR }

// Params returns ρ_c = (R + R_I)/R, I_c = ∞ per App. B.
func (m *Protocol) Params() SuccClear {
	return SuccClear{RhoC: (m.commR + m.interfR) / m.commR, Ic: math.Inf(1)}
}

// Neighbor reports dist <= R.
func (m *Protocol) Neighbor(dist float64) bool { return dist <= m.commR }

// CommRadius returns R: graph neighbourhoods are exact.
func (m *Protocol) CommRadius(float64) float64 { return m.commR }

// MaxDecodeRange returns the communication radius: Decodes rejects any pair
// beyond it outright.
func (m *Protocol) MaxDecodeRange() float64 { return m.commR }

// FieldOblivious reports true: the protocol rule never reads TotalPower.
func (m *Protocol) FieldOblivious() bool { return true }

// Decodes applies the protocol-model rule.
func (m *Protocol) Decodes(view View, u, v int) bool {
	if view.Dist(u, v) > m.commR {
		return false
	}
	return view.TransmittersWithin(v, m.interfR, u) == 0
}

// BIG is the bounded-independence-graph model: the space is a graph hop
// metric, communication is along edges (distance 1), and interference
// reaches k hops. Its shortest-path metric is (1, λ)-bounded independent by
// the BIG property.
type BIG struct {
	interfHops float64
}

var _ Model = (*BIG)(nil)

// NewBIG returns a BIG model with interference reach k hops (k >= 1).
func NewBIG(k int) *BIG {
	if k < 1 {
		panic("model: BIG interference hops must be >= 1")
	}
	return &BIG{interfHops: float64(k)}
}

// Name returns "big".
func (m *BIG) Name() string { return "big" }

// R returns 1: communication is along graph edges.
func (m *BIG) R() float64 { return 1 }

// Params returns ρ_c = k + 1 (exclusion covers the interference reach),
// I_c = ∞.
func (m *BIG) Params() SuccClear {
	return SuccClear{RhoC: m.interfHops + 1, Ic: math.Inf(1)}
}

// Neighbor reports dist <= 1 (graph adjacency).
func (m *BIG) Neighbor(dist float64) bool { return dist <= 1 }

// CommRadius returns 1: adjacency is exact.
func (m *BIG) CommRadius(float64) float64 { return 1 }

// MaxDecodeRange returns 1: communication is along graph edges only.
func (m *BIG) MaxDecodeRange() float64 { return 1 }

// FieldOblivious reports true: the radio rule never reads TotalPower.
func (m *BIG) FieldOblivious() bool { return true }

// Decodes applies the radio rule with k-hop interference.
func (m *BIG) Decodes(view View, u, v int) bool {
	if view.Dist(u, v) > 1 {
		return false
	}
	return view.TransmittersWithin(v, m.interfHops, u) == 0
}
