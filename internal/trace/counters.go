package trace

import "udwn/internal/metrics"

// Counters is the historical name of the named-event counter set now
// provided by internal/metrics. The fault-injection engine
// (internal/faults) counts injected events with it, the experiment grid
// counts cell failures and retries, and run reports render it. It is kept
// as an alias so existing callers (and trace-format consumers) compile
// unchanged; new code should use metrics.Counters — or a metrics.Registry
// — directly.
type Counters = metrics.Counters

// NewCounters returns an empty counter set.
func NewCounters() *Counters { return metrics.NewCounters() }
