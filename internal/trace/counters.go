package trace

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Counters is a set of named event counters, safe for concurrent use. The
// fault-injection engine (internal/faults) counts injected events with it,
// the experiment grid counts cell failures and retries, and run reports
// render it. String and Names order counters alphabetically so rendered
// counter lines are deterministic regardless of registration (and hence
// scheduling) order.
type Counters struct {
	mu   sync.Mutex
	vals map[string]int64
}

// NewCounters returns an empty counter set.
func NewCounters() *Counters {
	return &Counters{vals: make(map[string]int64)}
}

// Add increments name by delta, registering the counter on first use.
func (c *Counters) Add(name string, delta int64) {
	c.mu.Lock()
	c.vals[name] += delta
	c.mu.Unlock()
}

// Get returns the current value of name (0 when never added).
func (c *Counters) Get(name string) int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.vals[name]
}

// Total sums every counter.
func (c *Counters) Total() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	var t int64
	for _, v := range c.vals {
		t += v
	}
	return t
}

// Names returns the registered counter names in sorted order.
func (c *Counters) Names() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	names := make([]string, 0, len(c.vals))
	for n := range c.vals {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// String renders "name=value" pairs in sorted name order, space separated;
// an empty counter set renders "".
func (c *Counters) String() string {
	names := c.Names()
	var b strings.Builder
	for i, n := range names {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%s=%d", n, c.Get(n))
	}
	return b.String()
}
