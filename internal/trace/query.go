// Query is the predicate-pushdown engine over recorded traces: filter a
// trace by node set, tick window and event-kind predicates, decoding — and
// for seekable indexed binary traces, even *reading* — only the frames that
// can possibly match. The planner walks the frame stream, prunes data frames
// whose index entries (index.go) rule the predicate out, and seeks past
// their payloads; everything it does decode is CRC-checked and re-filtered
// event by event, so a wrong or hostile index can only cost speed, never
// correctness. JSONL traces, non-seekable streams and indexless binary
// files answer the same queries through a full-scan fallback with identical
// results.
package trace

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"sort"
	"strconv"
	"strings"

	"udwn/internal/metrics"
	"udwn/internal/sim"
)

// Role restricts which id list of an event a node predicate matches against.
type Role int

const (
	// RoleAny matches a node appearing as transmitter, mass deliverer or
	// decoder; with no node set it places no constraint at all.
	RoleAny Role = iota
	// RoleTx matches transmitters (an empty node set means "any event with
	// at least one transmitter").
	RoleTx
	// RoleDecoder matches decoder ids.
	RoleDecoder
	// RoleMass matches mass deliverers.
	RoleMass
)

func (ro Role) String() string {
	switch ro {
	case RoleTx:
		return "tx"
	case RoleDecoder:
		return "decoder"
	case RoleMass:
		return "mass"
	}
	return "any"
}

// Predicate selects slot events. The zero value matches every event. All
// set constraints must hold (AND); the node set itself is an OR — any listed
// node appearing in the role's id lists matches.
type Predicate struct {
	// Nodes is the node id set; empty means any node.
	Nodes []int
	// Role restricts which id lists Nodes (or, with no nodes, "some node")
	// must appear in.
	Role Role
	// MinTick is the inclusive lower tick bound.
	MinTick int
	// MaxTick is the exclusive upper tick bound; 0 means unbounded. (Tick 0
	// alone is selectable as MinTick=0, MaxTick=1.)
	MaxTick int
	// Seized requires the event to have injector-seized transmitters.
	Seized bool
	// Decodes requires at least one successful decode in the event.
	Decodes bool
	// Mass requires at least one mass delivery in the event.
	Mass bool
}

// Match reports whether the event satisfies the predicate.
func (p *Predicate) Match(ev sim.SlotEvent) bool {
	if ev.Tick < p.MinTick {
		return false
	}
	if p.MaxTick > 0 && ev.Tick >= p.MaxTick {
		return false
	}
	if p.Seized && ev.Seized == 0 {
		return false
	}
	if p.Decodes && ev.Decodes == 0 {
		return false
	}
	if p.Mass && len(ev.MassDeliverers) == 0 {
		return false
	}
	switch p.Role {
	case RoleAny:
		if len(p.Nodes) == 0 {
			return true
		}
		return p.anyNode(ev.Transmitters) || p.anyNode(ev.MassDeliverers) || p.anyNode(ev.Decoders)
	case RoleTx:
		return p.roleMatch(ev.Transmitters)
	case RoleDecoder:
		return p.roleMatch(ev.Decoders)
	case RoleMass:
		return p.roleMatch(ev.MassDeliverers)
	}
	return false
}

func (p *Predicate) roleMatch(ids []int) bool {
	if len(p.Nodes) == 0 {
		return len(ids) > 0
	}
	return p.anyNode(ids)
}

func (p *Predicate) anyNode(ids []int) bool {
	for _, id := range ids {
		for _, want := range p.Nodes {
			if id == want {
				return true
			}
		}
	}
	return false
}

// candidate reports whether a data frame summarised by e can hold a matching
// event. Conservative by construction: a false here is a proof of absence, a
// true just means "decode and check".
func (p *Predicate) candidate(e *indexEntry) bool {
	if !e.overlapsTicks(p.MinTick, p.MaxTick) {
		return false
	}
	if p.Seized && e.flags&flagSeized == 0 {
		return false
	}
	if p.Decodes && e.flags&flagDecodes == 0 {
		return false
	}
	if (p.Mass || p.Role == RoleMass) && e.flags&flagMass == 0 {
		return false
	}
	if len(p.Nodes) > 0 {
		// The summary covers all three id lists, so for role-restricted
		// queries it is still a sound (if looser) over-approximation.
		any := false
		for _, id := range p.Nodes {
			if e.mayContainNode(id) {
				any = true
				break
			}
		}
		if !any {
			return false
		}
	}
	return true
}

// String renders the predicate in the compact query grammar ParseQuery
// accepts; the zero predicate renders as "".
func (p *Predicate) String() string {
	var parts []string
	if len(p.Nodes) > 0 {
		ids := make([]string, len(p.Nodes))
		for i, id := range p.Nodes {
			ids[i] = strconv.Itoa(id)
		}
		parts = append(parts, "node="+strings.Join(ids, ","))
	}
	if p.Role != RoleAny {
		parts = append(parts, "role="+p.Role.String())
	}
	switch {
	case p.MinTick > 0 && p.MaxTick > 0:
		parts = append(parts, fmt.Sprintf("tick=%d-%d", p.MinTick, p.MaxTick-1))
	case p.MinTick > 0:
		parts = append(parts, fmt.Sprintf("tick=%d-", p.MinTick))
	case p.MaxTick > 0:
		parts = append(parts, fmt.Sprintf("tick=-%d", p.MaxTick-1))
	}
	if p.Seized {
		parts = append(parts, "seized")
	}
	if p.Decodes {
		parts = append(parts, "decodes")
	}
	if p.Mass {
		parts = append(parts, "mass")
	}
	return strings.Join(parts, "&")
}

// ParseQuery parses the compact query grammar shared by `traceinfo -query`
// and the daemon's trace endpoint:
//
//	node=4711,42 & role=tx|decoder|mass|any & tick=2000-2400 & seized & decodes & mass
//
// Terms are joined with '&' (whitespace around terms is ignored) and AND
// together. Tick windows are inclusive on both ends and accept open forms:
// "tick=2000-" (from 2000), "tick=-2400" (through 2400), "tick=2000" (that
// tick only). An empty string parses to the match-everything predicate.
func ParseQuery(s string) (Predicate, error) {
	var p Predicate
	for _, term := range strings.Split(s, "&") {
		term = strings.TrimSpace(term)
		if term == "" {
			continue
		}
		key, val, hasVal := strings.Cut(term, "=")
		switch key {
		case "node", "nodes":
			if !hasVal || val == "" {
				return p, fmt.Errorf("trace: query term %q: want node=<id>[,<id>...]", term)
			}
			for _, f := range strings.Split(val, ",") {
				id, err := strconv.Atoi(strings.TrimSpace(f))
				if err != nil || id < 0 {
					return p, fmt.Errorf("trace: query term %q: bad node id %q", term, f)
				}
				p.Nodes = append(p.Nodes, id)
			}
		case "role":
			switch val {
			case "any":
				p.Role = RoleAny
			case "tx":
				p.Role = RoleTx
			case "decoder":
				p.Role = RoleDecoder
			case "mass":
				p.Role = RoleMass
			default:
				return p, fmt.Errorf("trace: query term %q: want role=any|tx|decoder|mass", term)
			}
		case "tick", "ticks":
			if !hasVal || val == "" {
				return p, fmt.Errorf("trace: query term %q: want tick=<min>[-[<max>]]", term)
			}
			lo, hi, ranged := strings.Cut(val, "-")
			min, max := -1, -1
			var err error
			if lo != "" {
				if min, err = strconv.Atoi(lo); err != nil || min < 0 {
					return p, fmt.Errorf("trace: query term %q: bad tick %q", term, lo)
				}
			}
			if ranged && hi != "" {
				if max, err = strconv.Atoi(hi); err != nil || max < 0 {
					return p, fmt.Errorf("trace: query term %q: bad tick %q", term, hi)
				}
			}
			if !ranged {
				max = min // tick=N selects exactly tick N
			}
			if min >= 0 {
				p.MinTick = min
			}
			if max >= 0 {
				p.MaxTick = max + 1 // inclusive input, exclusive predicate
			}
			if p.MaxTick > 0 && p.MinTick >= p.MaxTick {
				return p, fmt.Errorf("trace: query term %q: empty tick window", term)
			}
		case "seized", "decodes", "mass":
			if hasVal {
				return p, fmt.Errorf("trace: query term %q: %s is a bare flag", term, key)
			}
			switch key {
			case "seized":
				p.Seized = true
			case "decodes":
				p.Decodes = true
			case "mass":
				p.Mass = true
			}
		default:
			return p, fmt.Errorf("trace: unknown query term %q (want node=, role=, tick=, seized, decodes, mass)", term)
		}
	}
	sort.Ints(p.Nodes)
	return p, nil
}

// QueryStats reports what a query cost and what the planner saved. Byte
// figures count data-frame payloads (the dominant term); frame-header and
// index-frame bytes ride along in BytesIndex.
type QueryStats struct {
	// FramesScanned and FramesSkipped partition the data frames seen:
	// skipped frames were proven irrelevant by the index and their payloads
	// were never read or decoded.
	FramesScanned int64 `json:"frames_scanned"`
	FramesSkipped int64 `json:"frames_skipped"`
	// BytesScanned / BytesSkipped are the payload bytes of those frames.
	BytesScanned int64 `json:"bytes_scanned"`
	BytesSkipped int64 `json:"bytes_skipped"`
	// BytesIndex counts index-frame payload bytes read by the planner.
	BytesIndex int64 `json:"bytes_index"`
	// EventsScanned counts events decoded and tested; EventsMatched counts
	// those the predicate accepted.
	EventsScanned int64 `json:"events_scanned"`
	EventsMatched int64 `json:"events_matched"`
	// FullScan is set when the query ran without index support (JSONL,
	// non-seekable stream, or an indexless binary trace).
	FullScan bool `json:"full_scan"`
	// Truncated is set when the trace ended on a torn or corrupt tail; the
	// results cover the longest valid prefix, as with Reader.
	Truncated bool `json:"truncated"`
}

// AddTo accumulates the stats into the registry under trace/query/*, the
// counters surfaced by traceinfo -counters and the daemon's /metricsz.
func (st *QueryStats) AddTo(reg *metrics.Registry) {
	if reg == nil {
		return
	}
	reg.Counter("trace/query/queries").Inc()
	reg.Counter("trace/query/frames_scanned").Add(st.FramesScanned)
	reg.Counter("trace/query/frames_skipped").Add(st.FramesSkipped)
	reg.Counter("trace/query/bytes_scanned").Add(st.BytesScanned)
	reg.Counter("trace/query/bytes_skipped").Add(st.BytesSkipped)
	reg.Counter("trace/query/bytes_index").Add(st.BytesIndex)
	reg.Counter("trace/query/events_matched").Add(st.EventsMatched)
	if st.FullScan {
		reg.Counter("trace/query/full_scans").Inc()
	}
}

// Query streams the events matching pred, in file order, to yield. When r
// is an io.Seeker over an indexed binary trace the planner seeks past data
// frames the index rules out; otherwise (JSONL, pipes, indexless files) it
// degrades to a full scan with identical results. A torn tail ends the query
// at the longest valid prefix (QueryStats.Truncated) rather than erroring; a
// yield error aborts the query and is returned as-is.
func Query(r io.Reader, pred Predicate, yield func(sim.SlotEvent) error) (QueryStats, error) {
	if rs, ok := r.(io.ReadSeeker); ok {
		return queryIndexed(rs, pred, yield)
	}
	return queryScan(r, pred, yield)
}

// queryScan is the fallback path: decode everything, filter per event.
func queryScan(r io.Reader, pred Predicate, yield func(sim.SlotEvent) error) (QueryStats, error) {
	st := QueryStats{FullScan: true}
	er, _, err := Open(r)
	if err != nil {
		return st, err
	}
	for {
		ev, err := er.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return st, err
		}
		st.EventsScanned++
		if pred.Match(ev) {
			st.EventsMatched++
			if err := yield(ev); err != nil {
				return st, err
			}
		}
	}
	if tr, ok := er.(*Reader); ok {
		st.Truncated = tr.Truncated()
	}
	return st, nil
}

// queryIndexed walks the frame stream of a seekable binary trace: index
// frames are decoded into pending entries, and each data frame is either
// proven irrelevant (seek past its payload without reading it) or read,
// CRC-checked, decoded and filtered. Entries are matched to data frames by
// position and payload length; an entry that fits no frame is dropped, so a
// lying index degrades to a scan of the frames it covered.
func queryIndexed(r io.ReadSeeker, pred Predicate, yield func(sim.SlotEvent) error) (QueryStats, error) {
	var st QueryStats
	size, err := r.Seek(0, io.SeekEnd)
	if err != nil {
		return st, fmt.Errorf("trace: query: size: %w", err)
	}
	if _, err := r.Seek(0, io.SeekStart); err != nil {
		return st, fmt.Errorf("trace: query: rewind: %w", err)
	}
	var hdr [headerSize]byte
	n, err := io.ReadFull(r, hdr[:])
	if err != nil {
		switch {
		case n == 0:
			return st, ErrEmptyTrace
		case !bytes.HasPrefix(fileMagic[:], hdr[:min(n, len(fileMagic))]):
			return st, ErrNotBinary
		default:
			return st, fmt.Errorf("trace: binary header: %d of %d bytes: %w", n, headerSize, ErrTruncatedHeader)
		}
	}
	if !bytes.Equal(hdr[:4], fileMagic[:]) {
		// Not a binary trace: JSONL has no frame index, rewind and scan.
		if _, err := r.Seek(0, io.SeekStart); err != nil {
			return st, fmt.Errorf("trace: query: rewind: %w", err)
		}
		return queryScan(r, pred, yield)
	}
	if got := binary.LittleEndian.Uint64(hdr[4:]); got != SchemaHash() {
		return st, &SchemaMismatchError{Got: got, Want: SchemaHash()}
	}
	if size == headerSize {
		return st, ErrHeaderOnly
	}

	pos := int64(headerSize)
	sawIndex := false
	lastIndex := false
	// pending index entries from the last index frame; pendingBase is the
	// file offset entry offsets are relative to (the index frame's end).
	var pending []indexEntry
	var pendingBase int64
	var dec payloadDecoder
	var fhdr [frameHeaderSize]byte
	for pos < size {
		if size-pos < frameHeaderSize {
			st.Truncated = true
			break
		}
		if _, err := io.ReadFull(r, fhdr[:]); err != nil {
			return st, fmt.Errorf("trace: query: frame header at %d: %w", pos, err)
		}
		isIndex := bytes.Equal(fhdr[:4], indexMagic[:])
		if !isIndex && !bytes.Equal(fhdr[:4], frameMagic[:]) {
			st.Truncated = true
			break
		}
		plen := int64(binary.LittleEndian.Uint32(fhdr[4:8]))
		want := binary.LittleEndian.Uint32(fhdr[8:12])
		if plen == 0 || plen > maxFramePayload || pos+frameHeaderSize+plen > size {
			// A declared length past EOF is the torn-pair signature; the
			// valid prefix ends here, exactly where Reader stops.
			st.Truncated = true
			break
		}
		if isIndex {
			if cap(dec.payload) < int(plen) {
				dec.payload = make([]byte, plen)
			}
			payload := dec.payload[:plen]
			if _, err := io.ReadFull(r, payload); err != nil {
				return st, fmt.Errorf("trace: query: index frame at %d: %w", pos, err)
			}
			crc := crc32.Checksum(indexMagic[:], traceCRC)
			if crc32.Update(crc, traceCRC, payload) != want {
				st.Truncated = true
				break
			}
			st.BytesIndex += plen
			pos += frameHeaderSize + plen
			// A malformed or newer-version payload yields no entries: the
			// frames it covered are simply scanned.
			pending, _ = decodeIndexPayload(payload)
			pendingBase = pos
			sawIndex = true
			lastIndex = true
			continue
		}
		lastIndex = false

		// Match the frame to a pending entry by position and length.
		var entry *indexEntry
		for i := range pending {
			if pendingBase+pending[i].off == pos && int64(pending[i].plen) == plen {
				entry = &pending[i]
				pending = pending[i+1:]
				break
			}
		}
		framePos := pos
		pos += frameHeaderSize + plen
		if entry != nil && !pred.candidate(entry) {
			if _, err := r.Seek(pos, io.SeekStart); err != nil {
				return st, fmt.Errorf("trace: query: seek past frame at %d: %w", framePos, err)
			}
			st.FramesSkipped++
			st.BytesSkipped += plen
			continue
		}
		if cap(dec.payload) < int(plen) {
			dec.payload = make([]byte, plen)
		}
		payload := dec.payload[:plen]
		if _, err := io.ReadFull(r, payload); err != nil {
			return st, fmt.Errorf("trace: query: frame at %d: %w", framePos, err)
		}
		if crc32.Checksum(payload, traceCRC) != want {
			st.Truncated = true
			break
		}
		count, n2 := binary.Uvarint(payload)
		if n2 <= 0 || count > uint64(len(payload)-n2) {
			st.Truncated = true
			break
		}
		st.FramesScanned++
		st.BytesScanned += plen
		dec.payload = payload
		dec.pos = n2
		for i := uint64(0); i < count; i++ {
			ev, ok := dec.decodeEvent()
			if !ok {
				st.Truncated = true
				break
			}
			st.EventsScanned++
			if pred.Match(ev) {
				st.EventsMatched++
				if err := yield(ev); err != nil {
					return st, err
				}
			}
		}
		if st.Truncated {
			break
		}
	}
	if lastIndex {
		// The writer emits each index frame in the same Write as its data
		// frame; a stream ending on an index frame lost that frame's events.
		st.Truncated = true
	}
	st.FullScan = !sawIndex
	return st, nil
}

// QueryAll collects the matching events of a trace into memory — the
// convenience form of Query for tests and small slices.
func QueryAll(r io.Reader, pred Predicate) ([]sim.SlotEvent, QueryStats, error) {
	var events []sim.SlotEvent
	st, err := Query(r, pred, func(ev sim.SlotEvent) error {
		events = append(events, ev)
		return nil
	})
	return events, st, err
}

// Slice copies the events matching pred into w in file order, producing a
// valid standalone sub-trace in w's format; Slice flushes w before
// returning.
func Slice(r io.Reader, pred Predicate, w Writer) (QueryStats, error) {
	st, err := Query(r, pred, func(ev sim.SlotEvent) error {
		w.Record(ev)
		return nil
	})
	if err != nil {
		return st, err
	}
	return st, w.Flush()
}
