// Binary is the compact framed slot-trace format for full-scale runs. JSONL
// tracing spends ~100 bytes and one encoding-reflection pass per event; the
// binary format packs the same events as varints at a fraction of the size
// and cost, which is what makes tracing million-node sweeps viable.
//
// File layout:
//
//	header:  magic "UTB1" | uint64 schema hash (LE)
//	frame*:  magic "UTF1" | uint32 payload len | uint32 CRC-32C | payload
//	payload: uvarint event count | count × packed events
//
// Unless NoIndex is set, every data frame is preceded — in the same Write —
// by an index frame ("UTI1", see index.go) summarising it, so queries can
// seek past frames that cannot match. Index frames are advisory: the Reader
// CRC-validates and skips them, decoding an indexed file into exactly the
// event stream of an unindexed one. An index frame's CRC also covers its
// magic, so a bit flip cannot morph one frame kind into the other undetected.
//
// The framing discipline is the one proven in internal/checkpoint: each
// frame is appended with a single Write call, so a crash (even SIGKILL)
// tears at most the final frame, and the Reader recovers the longest valid
// frame prefix — a torn or corrupt tail costs only the events it covered.
// The schema hash is the digest of sim.SlotEvent's structural shape
// (schema.go); a reader built against a different event layout fails fast
// with *SchemaMismatchError instead of mis-decoding the varint stream.
//
// An event packs as uvarints in field declaration order: tick, slot,
// transmitter count + ids, decodes, mass-deliverer count + ids, cd busy/idle,
// acks, ntds, decoder count + ids, seized. All fields are non-negative by
// construction.
package trace

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"udwn/internal/sim"
)

var (
	fileMagic  = [4]byte{'U', 'T', 'B', '1'}
	frameMagic = [4]byte{'U', 'T', 'F', '1'}
)

const (
	headerSize      = 4 + 8 // file magic + schema hash
	frameHeaderSize = 4 + 4 + 4
	// maxFramePayload bounds a frame's declared length so a corrupt or
	// hostile length field cannot make the reader attempt a huge
	// allocation. The writer flushes well below it; a single event would
	// need millions of transmitters to approach it.
	maxFramePayload = 16 << 20
	// flushPayload is the writer's frame-cut threshold: a frame is emitted
	// once its packed payload reaches this size (or on Flush), balancing
	// framing overhead against how many events one torn tail can cost.
	flushPayload = 64 << 10
)

// traceCRC is the Castagnoli polynomial, as in internal/checkpoint.
var traceCRC = crc32.MakeTable(crc32.Castagnoli)

// ErrNotBinary reports a stream that does not start with the binary trace
// magic (most likely a JSONL trace; use Open to auto-detect).
var ErrNotBinary = errors.New("trace: not a binary trace (bad file magic)")

// ErrEmptyTrace reports a trace stream with no bytes at all — a run that was
// killed before its recorder flushed anything, or a wrong path.
var ErrEmptyTrace = errors.New("trace: empty trace (zero bytes)")

// ErrTruncatedHeader reports a binary trace torn inside its 12-byte header:
// the file starts with the binary magic but ends before the schema hash is
// complete, so not even the empty event stream can be recovered.
var ErrTruncatedHeader = errors.New("trace: binary trace truncated inside the header")

// Binary streams simulator slot events in the framed varint format. Like
// JSONL, silent slots (no transmissions and no decodes) are skipped unless
// KeepSilent is set, and errors are sticky and reported by Flush.
type Binary struct {
	w          io.Writer
	err        error
	n          int
	frames     int64
	bytes      int64
	headerDone bool
	buf        []byte // packed events of the pending frame
	count      int    // events packed in buf
	scratch    []byte // frame assembly buffer, reused across flushes
	ibuf       []byte // index payload assembly buffer, reused across flushes
	summary    frameSummary
	KeepSilent bool
	// NoIndex suppresses index frames, producing the pre-index file layout
	// (and the smallest possible file). Queries over such traces fall back
	// to a full scan.
	NoIndex bool
}

// NewBinary returns a recorder writing to w. Nothing reaches w until the
// first frame cut (or Flush), so creating a recorder never fails.
func NewBinary(w io.Writer) *Binary { return &Binary{w: w} }

// Record packs one event into the pending frame; wire it to
// sim.Config.Observer. The event's slices may alias simulator scratch — they
// are consumed before Record returns.
func (b *Binary) Record(ev sim.SlotEvent) {
	if b.err != nil {
		return
	}
	if !b.KeepSilent && len(ev.Transmitters) == 0 && ev.Decodes == 0 {
		return
	}
	b.n++
	b.count++
	if !b.NoIndex {
		b.summary.observe(ev.Tick, ev.Transmitters, ev.MassDeliverers, ev.Decoders, ev.Decodes, ev.Seized)
	}
	b.buf = appendEvent(b.buf, ev)
	if len(b.buf) >= flushPayload {
		b.flushFrame()
	}
}

// Events returns the number of events recorded so far.
func (b *Binary) Events() int { return b.n }

// Frames returns the number of frames committed so far.
func (b *Binary) Frames() int64 { return b.frames }

// BytesWritten returns the total bytes handed to the underlying writer,
// header included.
func (b *Binary) BytesWritten() int64 { return b.bytes }

// flushFrame commits the pending events as one frame with a single Write
// (preceded, the first time, by the file header, and — unless NoIndex — by
// an index frame summarising this data frame, all in the same Write), so a
// crash can tear at most this index/data pair.
func (b *Binary) flushFrame() {
	if b.err != nil || b.count == 0 {
		return
	}
	payloadLen := uvarintLen(uint64(b.count)) + len(b.buf)
	if payloadLen > maxFramePayload {
		b.err = fmt.Errorf("trace: frame payload %d bytes exceeds limit %d", payloadLen, maxFramePayload)
		return
	}
	out := b.scratch[:0]
	if !b.headerDone {
		out = append(out, fileMagic[:]...)
		out = binary.LittleEndian.AppendUint64(out, SchemaHash())
	}
	if !b.NoIndex {
		// The entry's offset is relative to the end of its index frame; the
		// described data frame follows immediately, hence 0.
		entry := b.summary.take(0, payloadLen, b.count)
		b.ibuf = appendIndexPayload(b.ibuf[:0], []indexEntry{entry})
		if len(b.ibuf) <= maxFramePayload {
			out = append(out, indexMagic[:]...)
			out = binary.LittleEndian.AppendUint32(out, uint32(len(b.ibuf)))
			crc := crc32.Checksum(indexMagic[:], traceCRC)
			crc = crc32.Update(crc, traceCRC, b.ibuf)
			out = binary.LittleEndian.AppendUint32(out, crc)
			out = append(out, b.ibuf...)
		}
	}
	out = append(out, frameMagic[:]...)
	out = binary.LittleEndian.AppendUint32(out, uint32(payloadLen))
	payloadStart := len(out) + 4 // after the CRC word below
	out = append(out, 0, 0, 0, 0)
	out = binary.AppendUvarint(out, uint64(b.count))
	out = append(out, b.buf...)
	crc := crc32.Checksum(out[payloadStart:], traceCRC)
	binary.LittleEndian.PutUint32(out[payloadStart-4:payloadStart], crc)

	if _, err := b.w.Write(out); err != nil {
		b.err = fmt.Errorf("trace: append frame: %w", err)
		return
	}
	b.headerDone = true
	b.frames++
	b.bytes += int64(len(out))
	b.scratch = out[:0]
	b.buf = b.buf[:0]
	b.count = 0
}

// Flush commits the pending frame (writing the file header even for an
// empty trace) and returns the first error encountered.
func (b *Binary) Flush() error {
	if b.err == nil && !b.headerDone && b.count == 0 {
		var hdr [headerSize]byte
		copy(hdr[:], fileMagic[:])
		binary.LittleEndian.PutUint64(hdr[4:], SchemaHash())
		if _, err := b.w.Write(hdr[:]); err != nil {
			b.err = fmt.Errorf("trace: write header: %w", err)
		} else {
			b.headerDone = true
			b.bytes += headerSize
		}
	}
	b.flushFrame()
	if b.err != nil {
		return b.err
	}
	return nil
}

func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

// appendEvent packs one event. Every field is non-negative by construction
// (ids, counts, ticks), so plain uvarints suffice.
func appendEvent(buf []byte, ev sim.SlotEvent) []byte {
	buf = binary.AppendUvarint(buf, uint64(ev.Tick))
	buf = binary.AppendUvarint(buf, uint64(ev.Slot))
	buf = appendIDs(buf, ev.Transmitters)
	buf = binary.AppendUvarint(buf, uint64(ev.Decodes))
	buf = appendIDs(buf, ev.MassDeliverers)
	buf = binary.AppendUvarint(buf, uint64(ev.CDBusy))
	buf = binary.AppendUvarint(buf, uint64(ev.CDIdle))
	buf = binary.AppendUvarint(buf, uint64(ev.Acks))
	buf = binary.AppendUvarint(buf, uint64(ev.NTDs))
	buf = appendIDs(buf, ev.Decoders)
	buf = binary.AppendUvarint(buf, uint64(ev.Seized))
	return buf
}

func appendIDs(buf []byte, ids []int) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(ids)))
	for _, id := range ids {
		buf = binary.AppendUvarint(buf, uint64(id))
	}
	return buf
}

// Reader streams events back out of a binary trace. It validates the header
// eagerly (NewReader) and each frame's magic, length and CRC before
// decoding, stopping at the first violation: Next then returns io.EOF and
// Truncated reports whether anything was dropped. The longest valid frame
// prefix is always recovered — a torn tail never poisons earlier frames and
// never panics the reader.
type Reader struct {
	r io.Reader
	payloadDecoder
	remaining int // events left in the current frame
	decoded   int
	truncated bool
	done      bool
	// lastIndex tracks whether the previous frame was an index frame: the
	// writer emits each index frame in the same Write as the data frame it
	// describes, so a stream that ends right after an index frame is torn.
	lastIndex bool
}

// NewReader opens a binary trace. It fails with ErrEmptyTrace on an empty
// stream, ErrNotBinary on a wrong file magic, ErrTruncatedHeader when the
// stream tears inside the header, and *SchemaMismatchError on a schema hash
// from a different event layout.
func NewReader(r io.Reader) (*Reader, error) {
	var hdr [headerSize]byte
	n, err := io.ReadFull(r, hdr[:])
	if err != nil {
		switch {
		case n == 0:
			return nil, ErrEmptyTrace
		case !bytes.HasPrefix(fileMagic[:], hdr[:min(n, len(fileMagic))]):
			return nil, ErrNotBinary
		default:
			return nil, fmt.Errorf("trace: binary header: %d of %d bytes: %w", n, headerSize, ErrTruncatedHeader)
		}
	}
	if !bytes.Equal(hdr[:4], fileMagic[:]) {
		return nil, ErrNotBinary
	}
	if got := binary.LittleEndian.Uint64(hdr[4:]); got != SchemaHash() {
		return nil, &SchemaMismatchError{Got: got, Want: SchemaHash()}
	}
	return &Reader{r: r}, nil
}

// Next returns the next event, or io.EOF at the end of the recoverable
// prefix (clean end of trace or first torn/corrupt frame — see Truncated).
func (r *Reader) Next() (sim.SlotEvent, error) {
	for {
		if r.done {
			return sim.SlotEvent{}, io.EOF
		}
		if r.remaining > 0 {
			ev, ok := r.decodeEvent()
			if !ok {
				// CRC passed but the payload does not parse: treat the whole
				// stream position as lost, like any other corrupt frame.
				r.stop(true)
				return sim.SlotEvent{}, io.EOF
			}
			r.remaining--
			r.decoded++
			return ev, nil
		}
		if !r.nextFrame() {
			return sim.SlotEvent{}, io.EOF
		}
	}
}

// Truncated reports whether the stream ended anywhere other than a clean
// frame boundary: the events returned before io.EOF are the longest valid
// prefix and at least one trailing frame was dropped.
func (r *Reader) Truncated() bool { return r.truncated }

// Decoded returns the number of events returned so far.
func (r *Reader) Decoded() int { return r.decoded }

func (r *Reader) stop(truncated bool) {
	r.done = true
	r.truncated = r.truncated || truncated
	r.remaining = 0
}

// nextFrame loads and validates the next data frame, skipping CRC-valid
// index frames; false means end of stream (clean or truncated — r.truncated
// distinguishes).
func (r *Reader) nextFrame() bool {
	for {
		var hdr [frameHeaderSize]byte
		n, err := io.ReadFull(r.r, hdr[:])
		if err == io.EOF && n == 0 {
			// A clean end of stream lands after a data frame; an index frame
			// always has its data frame in the same Write, so ending on one
			// means the pair was torn.
			r.stop(r.lastIndex)
			return false
		}
		if err != nil {
			r.stop(true)
			return false
		}
		isIndex := bytes.Equal(hdr[:4], indexMagic[:])
		if !isIndex && !bytes.Equal(hdr[:4], frameMagic[:]) {
			r.stop(true)
			return false
		}
		plen := binary.LittleEndian.Uint32(hdr[4:8])
		if plen == 0 || plen > maxFramePayload {
			r.stop(true)
			return false
		}
		if cap(r.payload) < int(plen) {
			r.payload = make([]byte, plen)
		}
		payload := r.payload[:plen]
		if _, err := io.ReadFull(r.r, payload); err != nil {
			r.stop(true)
			return false
		}
		want := binary.LittleEndian.Uint32(hdr[8:12])
		if isIndex {
			// Index frame CRCs cover the magic too (see index.go); entries
			// are advisory, so a valid frame is simply skipped here.
			crc := crc32.Checksum(indexMagic[:], traceCRC)
			if crc32.Update(crc, traceCRC, payload) != want {
				r.stop(true)
				return false
			}
			r.payload = payload
			r.lastIndex = true
			continue
		}
		if crc32.Checksum(payload, traceCRC) != want {
			r.stop(true)
			return false
		}
		count, n2 := binary.Uvarint(payload)
		// Each packed event is at least 11 bytes of field varints, but 1 is a
		// safe lower bound; an impossible count ends the valid prefix.
		if n2 <= 0 || count > uint64(len(payload)-n2) {
			r.stop(true)
			return false
		}
		r.payload = payload
		r.pos = n2
		r.remaining = int(count)
		r.lastIndex = false
		return true
	}
}

// payloadDecoder unpacks packed events from one data-frame payload; shared
// by the streaming Reader and the query executor (query.go).
type payloadDecoder struct {
	payload []byte
	pos     int
}

// decodeEvent unpacks one event from the current frame payload.
func (r *payloadDecoder) decodeEvent() (sim.SlotEvent, bool) {
	var ev sim.SlotEvent
	var ok bool
	if ev.Tick, ok = r.uvarint(); !ok {
		return ev, false
	}
	if ev.Slot, ok = r.uvarint(); !ok {
		return ev, false
	}
	if ev.Transmitters, ok = r.ids(); !ok {
		return ev, false
	}
	if ev.Decodes, ok = r.uvarint(); !ok {
		return ev, false
	}
	if ev.MassDeliverers, ok = r.ids(); !ok {
		return ev, false
	}
	if ev.CDBusy, ok = r.uvarint(); !ok {
		return ev, false
	}
	if ev.CDIdle, ok = r.uvarint(); !ok {
		return ev, false
	}
	if ev.Acks, ok = r.uvarint(); !ok {
		return ev, false
	}
	if ev.NTDs, ok = r.uvarint(); !ok {
		return ev, false
	}
	if ev.Decoders, ok = r.ids(); !ok {
		return ev, false
	}
	if ev.Seized, ok = r.uvarint(); !ok {
		return ev, false
	}
	return ev, true
}

func (r *payloadDecoder) uvarint() (int, bool) {
	v, n := binary.Uvarint(r.payload[r.pos:])
	if n <= 0 || v > math.MaxInt64 {
		return 0, false
	}
	r.pos += n
	return int(v), true
}

// ids decodes a length-prefixed id list; a zero count yields nil, matching
// the canonical (Canonicalize) representation.
func (r *payloadDecoder) ids() ([]int, bool) {
	count, n := binary.Uvarint(r.payload[r.pos:])
	if n <= 0 {
		return nil, false
	}
	r.pos += n
	if count == 0 {
		return nil, true
	}
	// Every id costs at least one payload byte, so an over-claimed count
	// cannot force an over-allocation.
	if count > uint64(len(r.payload)-r.pos) {
		return nil, false
	}
	ids := make([]int, count)
	for i := range ids {
		v, ok := r.uvarint()
		if !ok {
			return nil, false
		}
		ids[i] = v
	}
	return ids, true
}
