package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"udwn/internal/sim"
)

// JSONL streams simulator slot events as JSON Lines, one event per line —
// the interchange format for post-hoc analysis and replay inspection.
// Silent slots (no transmissions and no decodes) are skipped unless
// KeepSilent is set.
type JSONL struct {
	w          *bufio.Writer
	enc        *json.Encoder
	err        error
	n          int
	KeepSilent bool
}

// NewJSONL returns a recorder writing to w.
func NewJSONL(w io.Writer) *JSONL {
	bw := bufio.NewWriter(w)
	return &JSONL{w: bw, enc: json.NewEncoder(bw)}
}

// Record writes one event; wire it to sim.Config.Observer. Errors are
// sticky and reported by Flush.
func (j *JSONL) Record(ev sim.SlotEvent) {
	if j.err != nil {
		return
	}
	if !j.KeepSilent && len(ev.Transmitters) == 0 && ev.Decodes == 0 {
		return
	}
	j.n++
	j.err = j.enc.Encode(ev)
}

// Events returns the number of events written so far.
func (j *JSONL) Events() int { return j.n }

// Flush drains the buffer and returns the first error encountered.
func (j *JSONL) Flush() error {
	if j.err != nil {
		return fmt.Errorf("trace: record: %w", j.err)
	}
	if err := j.w.Flush(); err != nil {
		return fmt.Errorf("trace: flush: %w", err)
	}
	return nil
}

// ReadJSONL parses a JSON Lines trace back into events.
func ReadJSONL(r io.Reader) ([]sim.SlotEvent, error) {
	var events []sim.SlotEvent
	jr := NewJSONLReader(r)
	for {
		ev, err := jr.Next()
		if err == io.EOF {
			return events, nil
		}
		if err != nil {
			return events, err
		}
		events = append(events, ev)
	}
}

// JSONLReader streams a JSON Lines trace one event at a time, so analytics
// over multi-gigabyte traces never hold more than one event in memory.
type JSONLReader struct {
	dec *json.Decoder
	n   int
}

// NewJSONLReader returns a streaming reader over r.
func NewJSONLReader(r io.Reader) *JSONLReader {
	return &JSONLReader{dec: json.NewDecoder(r)}
}

// Next returns the next event, or io.EOF at the end of the trace.
func (j *JSONLReader) Next() (sim.SlotEvent, error) {
	var ev sim.SlotEvent
	if err := j.dec.Decode(&ev); err != nil {
		if err == io.EOF {
			return ev, io.EOF
		}
		return ev, fmt.Errorf("trace: decode event %d: %w", j.n, err)
	}
	j.n++
	return ev, nil
}
