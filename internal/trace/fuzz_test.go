package trace

import (
	"bytes"
	"encoding/binary"
	"flag"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"strconv"
	"testing"

	"udwn/internal/sim"
)

// update rewrites the analytics golden files and the seeded fuzz corpus
// under testdata/ (shared by analyze_test.go).
var update = flag.Bool("update", false, "rewrite golden files and the seeded fuzz corpus")

// fuzzSeeds builds the deterministic seed inputs of FuzzTraceDecode: one
// representative per failure class the decoder must survive. The same bytes
// are committed under testdata/fuzz/FuzzTraceDecode (regenerate with
// `go test ./internal/trace -run TestFuzzCorpusSeeds -update`), so `go test`
// replays them even without -fuzz and the fuzzer starts from meaningful
// structure instead of random bytes.
func fuzzSeeds(t testing.TB) map[string][]byte {
	valid := encodeBinary(t, randomEvents(41, 25), 10)

	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)/2] ^= 0x40

	badSchema := append([]byte(nil), valid...)
	badSchema[len(fileMagic)+2] ^= 0xff

	var empty bytes.Buffer
	if err := NewBinary(&empty).Flush(); err != nil {
		t.Fatal(err)
	}

	// A frame whose header claims a payload far beyond the cap: the reader
	// must refuse it without allocating the claimed size.
	huge := append([]byte(nil), empty.Bytes()...)
	huge = append(huge, frameMagic[:]...)
	huge = binary.LittleEndian.AppendUint32(huge, 0xffffff00)
	huge = binary.LittleEndian.AppendUint32(huge, 0)

	// A CRC-valid frame whose event count over-claims its payload bytes:
	// only the count check stands between the reader and a giant make().
	over := append([]byte(nil), empty.Bytes()...)
	payload := binary.AppendUvarint(nil, 1<<40)
	over = append(over, frameMagic[:]...)
	over = binary.LittleEndian.AppendUint32(over, uint32(len(payload)))
	over = binary.LittleEndian.AppendUint32(over, crc32.Checksum(payload, traceCRC))
	over = append(over, payload...)

	return map[string][]byte{
		"seed_valid_3frames": valid,
		"seed_torn_tail":     valid[:len(valid)-7],
		"seed_payload_flip":  flipped,
		"seed_bad_schema":    badSchema,
		"seed_header_only":   empty.Bytes(),
		"seed_huge_len":      huge,
		"seed_count_claim":   over,
		"seed_jsonl":         []byte("{\"tick\":3,\"transmitters\":[1,2]}\n{\"tick\":4}\n"),
		"seed_magic_only":    append([]byte(nil), fileMagic[:]...),
	}
}

// TestFuzzCorpusSeeds keeps the committed corpus in sync with fuzzSeeds:
// with -update it rewrites testdata/fuzz/FuzzTraceDecode, otherwise it
// verifies every seed file is present with the expected bytes.
func TestFuzzCorpusSeeds(t *testing.T) {
	dir := filepath.Join("testdata", "fuzz", "FuzzTraceDecode")
	seeds := fuzzSeeds(t)
	if *update {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		for name, data := range seeds {
			body := "go test fuzz v1\n[]byte(" + strconv.Quote(string(data)) + ")\n"
			if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
				t.Fatal(err)
			}
		}
	}
	for name, data := range seeds {
		body, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatalf("corpus seed missing (regenerate with -update): %v", err)
		}
		want := "go test fuzz v1\n[]byte(" + strconv.Quote(string(data)) + ")\n"
		if string(body) != want {
			t.Fatalf("corpus seed %s is stale; regenerate with -update", name)
		}
	}
}

// FuzzTraceDecode throws arbitrary bytes at the binary trace reader and the
// format auto-detector. The reader must never panic or over-allocate, its
// truncation report must match how the stream actually ended, and any event
// sequence it accepts must survive a re-encode/decode round trip unchanged —
// the decoder defines the format, so whatever it accepts must be expressible.
func FuzzTraceDecode(f *testing.F) {
	for _, data := range fuzzSeeds(f) {
		f.Add(data)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := NewReader(bytes.NewReader(data))
		if err == nil {
			var got []sim.SlotEvent
			for {
				ev, nerr := r.Next()
				if nerr == io.EOF {
					break
				}
				if nerr != nil {
					t.Fatalf("Next: %v", nerr)
				}
				got = append(got, ev)
			}
			// Every event costs at least one payload byte, so the decode
			// count is bounded by the input size.
			if len(got) > len(data) {
				t.Fatalf("decoded %d events from %d bytes", len(got), len(data))
			}
			if r.Decoded() != len(got) {
				t.Fatalf("Decoded()=%d, got %d events", r.Decoded(), len(got))
			}

			// Round trip: re-encode the accepted sequence and decode it
			// back. KeepSilent preserves fuzz-crafted all-zero events the
			// writer would normally skip.
			var buf bytes.Buffer
			w := NewBinary(&buf)
			w.KeepSilent = true
			for _, ev := range got {
				w.Record(ev)
			}
			if err := w.Flush(); err != nil {
				t.Fatalf("re-encode: %v", err)
			}
			r2, err := NewReader(bytes.NewReader(buf.Bytes()))
			if err != nil {
				t.Fatalf("re-encoded stream rejected: %v", err)
			}
			var back []sim.SlotEvent
			for {
				ev, nerr := r2.Next()
				if nerr == io.EOF {
					break
				}
				if nerr != nil {
					t.Fatalf("re-encoded stream torn: %v", nerr)
				}
				back = append(back, ev)
			}
			if r2.Truncated() {
				t.Fatal("re-encoded stream reported truncated")
			}
			if !reflect.DeepEqual(Canonicalize(back), Canonicalize(got)) {
				t.Fatalf("round trip changed the event sequence (%d vs %d events)", len(back), len(got))
			}
		}

		// The auto-detector must classify or reject without panicking, and
		// a stream it hands to the JSONL reader must fail cleanly at worst.
		events, _, err := Open(bytes.NewReader(data))
		if err != nil {
			return
		}
		for i := 0; i <= len(data); i++ {
			if _, err := events.Next(); err != nil {
				break
			}
		}
	})
}
