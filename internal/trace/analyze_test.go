package trace

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"udwn/internal/sim"
)

// analyzeFixture is the deterministic event stream behind the golden report:
// arbitrary valid events (seized slots, decoder lists and empty lists
// included) plus a hand-placed head and tail pinning the tick span.
func analyzeFixture() []sim.SlotEvent {
	events := []sim.SlotEvent{
		{Tick: 0, Transmitters: []int{3}, Decodes: 2, Decoders: []int{1, 2}, CDBusy: 1},
	}
	events = append(events, randomEvents(91, 400)...)
	last := events[len(events)-1].Tick
	events = append(events, sim.SlotEvent{
		Tick: last + 20, Transmitters: []int{3, 7}, Decodes: 1,
		Decoders: []int{9}, Seized: 1, Acks: 1,
	})
	return events
}

func renderReport(events []sim.SlotEvent, buckets, top int) string {
	a := NewAnalyzer()
	a.Buckets = buckets
	a.Top = top
	for _, ev := range events {
		a.Observe(ev)
	}
	var out bytes.Buffer
	a.Report(&out)
	return out.String()
}

// TestAnalyzerGolden pins the full analytics report — totals, latency
// percentiles, contention, timeline, fault correlation, busiest nodes — to a
// golden file. Regenerate with `go test ./internal/trace -update`.
func TestAnalyzerGolden(t *testing.T) {
	got := renderReport(analyzeFixture(), 10, 3)
	golden := filepath.Join("testdata", "analyze_report.golden")
	if *update {
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("golden missing (regenerate with -update): %v", err)
	}
	if got != string(want) {
		t.Fatalf("report drifted from golden (regenerate with -update if intended):\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
	for _, section := range []string{
		"per-node first-decode latency",
		"contention (transmitters per active slot)",
		"timeline (transmissions per tick",
		"fault correlation",
		"busiest transmitters",
	} {
		if !strings.Contains(got, section) {
			t.Fatalf("report misses the %q section", section)
		}
	}
}

// TestAnalyzerOrderInsensitive: the report is a function of the event
// multiset, so grid traces (events interleaved in completion order) analyze
// identically to sequential ones. Timeline width-doubling merges are exact,
// so even the timeline must not depend on arrival order.
func TestAnalyzerOrderInsensitive(t *testing.T) {
	events := analyzeFixture()
	forward := renderReport(events, 10, 3)
	rev := make([]sim.SlotEvent, len(events))
	for i, ev := range events {
		rev[len(events)-1-i] = ev
	}
	if got := renderReport(rev, 10, 3); got != forward {
		t.Fatal("report depends on event arrival order")
	}
}

// TestAnalyzerEmpty: no events is reported, not a division by zero.
func TestAnalyzerEmpty(t *testing.T) {
	var out bytes.Buffer
	NewAnalyzer().Report(&out)
	if out.String() != "empty trace\n" {
		t.Fatalf("got %q", out.String())
	}
}

// TestAnalyzerBoundedMemory: state is bounded by the node count and the
// bucket budget, never by trace length. After warm-up over the full node
// set, the steady-state Observe path must not allocate at all, and the
// internal tables must stay at their structural sizes even after a long
// trace with an enormous tick span.
func TestAnalyzerBoundedMemory(t *testing.T) {
	const nodes = 256
	a := NewAnalyzer()
	ev := sim.SlotEvent{
		Transmitters:   make([]int, 4),
		MassDeliverers: []int{0},
		Decoders:       make([]int, 3),
	}
	fill := func(tick int) sim.SlotEvent {
		for i := range ev.Transmitters {
			ev.Transmitters[i] = (tick*7 + i) % nodes
		}
		ev.MassDeliverers[0] = tick % nodes
		for i := range ev.Decoders {
			ev.Decoders[i] = (tick*13 + i) % nodes
		}
		ev.Tick = tick
		ev.Decodes = tick % 5
		ev.Seized = tick % 2
		return ev
	}
	tick := 0
	for ; tick < 4*nodes; tick++ { // warm-up: every node and contention level seen
		a.Observe(fill(tick))
	}
	avg := testing.AllocsPerRun(2000, func() {
		a.Observe(fill(tick))
		tick++
	})
	if avg > 0.01 {
		t.Fatalf("steady-state Observe allocates %.2f times per event", avg)
	}

	// Stretch the tick span by 1000x: the timeline must adapt by widening
	// its fixed buckets, not by growing.
	for ; tick < 600_000; tick += 997 {
		a.Observe(fill(tick))
	}
	if len(a.timelineTx) != a.buckets() || len(a.timelineSlot) != a.buckets() {
		t.Fatalf("timeline grew to %d/%d buckets", len(a.timelineTx), len(a.timelineSlot))
	}
	if len(a.firstDecode) > nodes || len(a.txPerNode) > nodes || len(a.massPerNode) > nodes {
		t.Fatalf("per-node tables exceed the node count: %d/%d/%d",
			len(a.firstDecode), len(a.txPerNode), len(a.massPerNode))
	}
	if len(a.contention) > 5 {
		t.Fatalf("contention histogram has %d levels for 1 distinct slot shape", len(a.contention))
	}

	var out bytes.Buffer
	a.Report(&out)
	if !strings.Contains(out.String(), "trace:") {
		t.Fatal("report missing after long trace")
	}
}
