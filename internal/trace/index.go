// Index frames make binary traces seekable: alongside the data frames of
// binary.go, the writer emits CRC-framed index frames summarising each data
// frame — byte offset, payload length, event count, tick range, event-kind
// flags and a node-membership summary — so a query (query.go) can seek to
// the few frames that can possibly match instead of decoding the file.
//
// Frame layout (same framing discipline as data frames):
//
//	magic "UTI1" | uint32 payload len | uint32 CRC-32C | payload
//	payload: uvarint version (1) | uvarint entry count | count × entry
//	entry:   uvarint data-frame byte offset (relative to the index frame's
//	         end; the writer emits the pair adjacently, so it writes 0)
//	         uvarint data-frame payload length
//	         uvarint event count
//	         uvarint min tick | uvarint tick span (max-min)
//	         uvarint flags (bit0 seized, bit1 decodes, bit2 mass deliveries)
//	         node summary: uvarint kind
//	           kind 0: none (any node may appear in the frame)
//	           kind 1: exact — uvarint n, n × uvarint delta-coded sorted ids
//	           kind 2: bloom — uvarint byte len, filter bits (4 hashes)
//
// The index is strictly advisory: entries only ever *prune* frames, the
// predicate is re-applied to every decoded event, and an entry that does not
// match a real data frame (offset/length mismatch, torn tail) is ignored —
// the frame is then decoded like any other. Readers that predate the index
// (or that just stream events) skip index frames after validating their CRC,
// so an indexed file decodes exactly like an unindexed one. A trace written
// without index frames answers the same queries via full scan.
package trace

import (
	"encoding/binary"
	"errors"
	"math"
	"sort"
)

var indexMagic = [4]byte{'U', 'T', 'I', '1'}

const (
	// indexVersion is bumped when the entry layout changes; a decoder that
	// sees a newer version ignores the frame (queries fall back to scanning
	// the frames it would have covered) instead of mis-decoding it.
	indexVersion = 1

	// exactMaxIDs is the largest distinct-node count stored as an exact
	// sorted id list; larger sets switch to a bloom filter.
	exactMaxIDs = 128

	// maxBloomBytes caps a summary filter (writer and reader side): 64K bits
	// holds the practical per-frame distinct-node range at ~8 bits/element,
	// and a hostile length field cannot force a larger allocation.
	maxBloomBytes = 8 << 10

	// Event-kind flags of an index entry: whether any event in the frame has
	// injector-seized transmitters, successful decodes, or mass deliveries.
	flagSeized  = 1 << 0
	flagDecodes = 1 << 1
	flagMass    = 1 << 2
)

// indexEntry summarises one data frame.
type indexEntry struct {
	off              int64 // frame-magic offset, relative to the index frame's end
	plen             int   // the frame's declared payload length
	events           int
	minTick, maxTick int
	flags            uint8
	exact            []int  // sorted distinct node ids (nil when bloom or none)
	bloom            []byte // bloom filter over node ids (nil when exact or none)
}

// overlapsTicks reports whether the frame's tick range intersects the
// half-open window [min, max); max <= 0 means unbounded above.
func (e *indexEntry) overlapsTicks(min, max int) bool {
	if e.maxTick < min {
		return false
	}
	if max > 0 && e.minTick >= max {
		return false
	}
	return true
}

// mayContainNode reports whether node id can appear in the frame. A missing
// summary answers true (the index only ever prunes).
func (e *indexEntry) mayContainNode(id int) bool {
	if e.exact != nil {
		i := sort.SearchInts(e.exact, id)
		return i < len(e.exact) && e.exact[i] == id
	}
	if e.bloom != nil {
		return bloomContains(e.bloom, id)
	}
	return true
}

// mix64 is the splitmix64 finalizer, the hash behind the bloom bit positions.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// bloomAdd sets id's 4 bit positions in a filter of nbits bits, derived from
// one 64-bit hash (16 bits per position, reduced modulo nbits).
func bloomAdd(filter []byte, id int) {
	nbits := uint64(len(filter)) * 8
	h := mix64(uint64(id))
	for i := 0; i < 4; i++ {
		pos := (h >> (16 * i)) & 0xffff % nbits
		filter[pos/8] |= 1 << (pos % 8)
	}
}

func bloomContains(filter []byte, id int) bool {
	nbits := uint64(len(filter)) * 8
	if nbits == 0 {
		return true
	}
	h := mix64(uint64(id))
	for i := 0; i < 4; i++ {
		pos := (h >> (16 * i)) & 0xffff % nbits
		if filter[pos/8]&(1<<(pos%8)) == 0 {
			return false
		}
	}
	return true
}

// bloomSize picks the filter size for a distinct-node count: ~8 bits per
// element rounded up to a power of two, capped at maxBloomBytes.
func bloomSize(distinct int) int {
	bytes := 1
	for bytes*8 < 8*distinct && bytes < maxBloomBytes {
		bytes *= 2
	}
	return bytes
}

// frameSummary accumulates the index entry of the pending data frame while
// events are recorded.
type frameSummary struct {
	nodes    map[int]struct{}
	minTick  int
	maxTick  int
	flags    uint8
	hasTicks bool
}

func (s *frameSummary) observe(tick int, transmitters, massDeliverers, decoders []int, decodes, seized int) {
	if s.nodes == nil {
		s.nodes = make(map[int]struct{})
	}
	if !s.hasTicks || tick < s.minTick {
		s.minTick = tick
	}
	if !s.hasTicks || tick > s.maxTick {
		s.maxTick = tick
	}
	s.hasTicks = true
	if seized > 0 {
		s.flags |= flagSeized
	}
	if decodes > 0 {
		s.flags |= flagDecodes
	}
	if len(massDeliverers) > 0 {
		s.flags |= flagMass
	}
	for _, id := range transmitters {
		s.nodes[id] = struct{}{}
	}
	for _, id := range massDeliverers {
		s.nodes[id] = struct{}{}
	}
	for _, id := range decoders {
		s.nodes[id] = struct{}{}
	}
}

// take finalizes the summary into an entry for the frame just committed and
// resets the accumulator for the next frame.
func (s *frameSummary) take(off int64, plen, events int) indexEntry {
	e := indexEntry{
		off: off, plen: plen, events: events,
		minTick: s.minTick, maxTick: s.maxTick, flags: s.flags,
	}
	if len(s.nodes) <= exactMaxIDs {
		e.exact = make([]int, 0, len(s.nodes))
		for id := range s.nodes {
			e.exact = append(e.exact, id)
		}
		sort.Ints(e.exact)
	} else {
		e.bloom = make([]byte, bloomSize(len(s.nodes)))
		for id := range s.nodes {
			bloomAdd(e.bloom, id)
		}
	}
	clear(s.nodes)
	s.flags = 0
	s.hasTicks = false
	s.minTick, s.maxTick = 0, 0
	return e
}

// appendIndexPayload encodes the entries as one index-frame payload.
func appendIndexPayload(buf []byte, entries []indexEntry) []byte {
	buf = binary.AppendUvarint(buf, indexVersion)
	buf = binary.AppendUvarint(buf, uint64(len(entries)))
	for i := range entries {
		e := &entries[i]
		buf = binary.AppendUvarint(buf, uint64(e.off))
		buf = binary.AppendUvarint(buf, uint64(e.plen))
		buf = binary.AppendUvarint(buf, uint64(e.events))
		buf = binary.AppendUvarint(buf, uint64(e.minTick))
		buf = binary.AppendUvarint(buf, uint64(e.maxTick-e.minTick))
		buf = binary.AppendUvarint(buf, uint64(e.flags))
		switch {
		case e.exact != nil:
			buf = binary.AppendUvarint(buf, 1)
			buf = binary.AppendUvarint(buf, uint64(len(e.exact)))
			prev := 0
			for _, id := range e.exact {
				buf = binary.AppendUvarint(buf, uint64(id-prev))
				prev = id
			}
		case e.bloom != nil:
			buf = binary.AppendUvarint(buf, 2)
			buf = binary.AppendUvarint(buf, uint64(len(e.bloom)))
			buf = append(buf, e.bloom...)
		default:
			buf = binary.AppendUvarint(buf, 0)
		}
	}
	return buf
}

var errBadIndex = errors.New("trace: malformed index frame payload")

// decodeIndexPayload parses an index-frame payload. A payload of a newer
// version decodes to (nil, nil) — ignored, never mis-read. Any structural
// violation returns errBadIndex; callers treat the frame as carrying no
// entries (the frames it would have covered are scanned instead), matching
// the advisory-only contract. Every bound is checked before allocation, so a
// hostile payload cannot force an over-allocation.
func decodeIndexPayload(payload []byte) ([]indexEntry, error) {
	pos := 0
	next := func() (uint64, bool) {
		v, n := binary.Uvarint(payload[pos:])
		if n <= 0 || v > math.MaxInt64 {
			return 0, false
		}
		pos += n
		return v, true
	}
	version, ok := next()
	if !ok {
		return nil, errBadIndex
	}
	if version != indexVersion {
		return nil, nil
	}
	count, ok := next()
	if !ok || count > uint64(len(payload)-pos) {
		// Each entry costs at least 7 payload bytes; 1 is a safe bound.
		return nil, errBadIndex
	}
	entries := make([]indexEntry, 0, count)
	for i := uint64(0); i < count; i++ {
		var e indexEntry
		off, ok := next()
		if !ok {
			return nil, errBadIndex
		}
		e.off = int64(off)
		plen, ok := next()
		if !ok || plen > maxFramePayload {
			return nil, errBadIndex
		}
		e.plen = int(plen)
		events, ok := next()
		if !ok {
			return nil, errBadIndex
		}
		e.events = int(events)
		minTick, ok := next()
		if !ok {
			return nil, errBadIndex
		}
		span, ok := next()
		if !ok || span > uint64(math.MaxInt64)-minTick {
			return nil, errBadIndex
		}
		e.minTick = int(minTick)
		e.maxTick = int(minTick + span)
		flags, ok := next()
		if !ok || flags > 0xff {
			return nil, errBadIndex
		}
		e.flags = uint8(flags)
		kind, ok := next()
		if !ok {
			return nil, errBadIndex
		}
		switch kind {
		case 0:
		case 1:
			n, ok := next()
			if !ok || n > uint64(len(payload)-pos) {
				// Every id costs at least one payload byte.
				return nil, errBadIndex
			}
			e.exact = make([]int, n)
			prev := uint64(0)
			for j := range e.exact {
				d, ok := next()
				if !ok || d > uint64(math.MaxInt64)-prev {
					return nil, errBadIndex
				}
				prev += d
				e.exact[j] = int(prev)
			}
		case 2:
			n, ok := next()
			if !ok || n > maxBloomBytes || n > uint64(len(payload)-pos) {
				return nil, errBadIndex
			}
			e.bloom = append([]byte(nil), payload[pos:pos+int(n)]...)
			pos += int(n)
		default:
			return nil, errBadIndex
		}
		entries = append(entries, e)
	}
	return entries, nil
}
