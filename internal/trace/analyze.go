package trace

import (
	"fmt"
	"io"
	"sort"

	"udwn/internal/sim"
)

// Analyzer is a streaming aggregator over a slot trace: feed it events one
// at a time (Observe) and render the summary once (Report). Memory is
// bounded by the number of distinct nodes, distinct contention levels and
// the fixed timeline bucket budget — never by trace length — so it can
// digest full-scale binary traces by the gigabyte. All aggregates are order
// insensitive except the timeline, which only assumes non-negative ticks.
type Analyzer struct {
	// Buckets caps the timeline resolution (default 10). The bucket width
	// doubles as the trace's tick span grows, keeping memory fixed.
	Buckets int
	// Top is how many of the busiest transmitters Report lists (default 5).
	Top int

	events                   int64
	totalTx, totalDecodes    int64
	totalMass, acks, ntds    int64
	cdBusy, cdIdle           int64
	minTick, maxTick         int
	firstDecode              map[int]int // node → earliest tick with a decode
	txPerNode, massPerNode   map[int]int64
	contention               map[int]int64 // transmitters-per-active-slot histogram
	seizedSlots              int64
	seizedTx, seizedDecodes  int64
	cleanTx, cleanDecodes    int64
	timelineWidth            int
	timelineTx, timelineSlot []int64
}

// NewAnalyzer returns an empty aggregator.
func NewAnalyzer() *Analyzer {
	return &Analyzer{
		Buckets:     10,
		Top:         5,
		minTick:     -1,
		firstDecode: make(map[int]int),
		txPerNode:   make(map[int]int64),
		massPerNode: make(map[int]int64),
		contention:  make(map[int]int64),
	}
}

// Observe folds one event into the aggregates.
func (a *Analyzer) Observe(ev sim.SlotEvent) {
	a.events++
	a.totalTx += int64(len(ev.Transmitters))
	a.totalDecodes += int64(ev.Decodes)
	a.totalMass += int64(len(ev.MassDeliverers))
	a.acks += int64(ev.Acks)
	a.ntds += int64(ev.NTDs)
	a.cdBusy += int64(ev.CDBusy)
	a.cdIdle += int64(ev.CDIdle)
	if a.minTick < 0 || ev.Tick < a.minTick {
		a.minTick = ev.Tick
	}
	if ev.Tick > a.maxTick {
		a.maxTick = ev.Tick
	}
	for _, u := range ev.Transmitters {
		a.txPerNode[u]++
	}
	for _, u := range ev.MassDeliverers {
		a.massPerNode[u]++
	}
	for _, v := range ev.Decoders {
		if t, seen := a.firstDecode[v]; !seen || ev.Tick < t {
			a.firstDecode[v] = ev.Tick
		}
	}
	a.contention[len(ev.Transmitters)]++
	if ev.Seized > 0 {
		a.seizedSlots++
		a.seizedTx += int64(len(ev.Transmitters))
		a.seizedDecodes += int64(ev.Decodes)
	} else {
		a.cleanTx += int64(len(ev.Transmitters))
		a.cleanDecodes += int64(ev.Decodes)
	}
	a.observeTimeline(ev)
}

// observeTimeline folds the event into the fixed-budget timeline, doubling
// the bucket width whenever the trace outgrows the current span.
func (a *Analyzer) observeTimeline(ev sim.SlotEvent) {
	buckets := a.buckets()
	if a.timelineWidth == 0 {
		a.timelineWidth = 1
		a.timelineTx = make([]int64, buckets)
		a.timelineSlot = make([]int64, buckets)
	}
	if ev.Tick < 0 {
		return
	}
	for ev.Tick/a.timelineWidth >= buckets {
		a.timelineWidth *= 2
		for i := 0; i < buckets/2; i++ {
			a.timelineTx[i] = a.timelineTx[2*i] + a.timelineTx[2*i+1]
			a.timelineSlot[i] = a.timelineSlot[2*i] + a.timelineSlot[2*i+1]
		}
		for i := buckets / 2; i < buckets; i++ {
			a.timelineTx[i], a.timelineSlot[i] = 0, 0
		}
	}
	b := ev.Tick / a.timelineWidth
	a.timelineTx[b] += int64(len(ev.Transmitters))
	a.timelineSlot[b]++
}

func (a *Analyzer) buckets() int {
	if a.Buckets < 2 {
		return 10
	}
	// An even bucket count keeps the pairwise width-doubling merge exact.
	return a.Buckets &^ 1
}

// Events returns the number of events observed.
func (a *Analyzer) Events() int64 { return a.events }

// Report renders the full analytics summary: totals, per-node first-decode
// latency percentiles, the contention distribution, the tx timeline, fault
// correlation and the busiest transmitters. Output is a deterministic
// function of the observed event multiset (plus the timeline's tick span).
func (a *Analyzer) Report(w io.Writer) {
	if a.events == 0 {
		fmt.Fprintln(w, "empty trace")
		return
	}
	span := a.maxTick - a.minTick + 1
	fmt.Fprintf(w, "trace: %d active slots over ticks [%d,%d]\n", a.events, a.minTick, a.maxTick)
	fmt.Fprintf(w, "transmissions: %d (%.2f per tick)\n", a.totalTx, float64(a.totalTx)/float64(span))
	fmt.Fprintf(w, "decodes:       %d (%.2f per transmission)\n", a.totalDecodes, ratio(a.totalDecodes, a.totalTx))
	fmt.Fprintf(w, "mass deliveries: %d (%.1f%% of transmissions)\n", a.totalMass, 100*ratio(a.totalMass, a.totalTx))
	if a.cdBusy+a.cdIdle+a.acks+a.ntds > 0 {
		fmt.Fprintf(w, "sensing: cd-busy=%d cd-idle=%d acks=%d ntds=%d\n", a.cdBusy, a.cdIdle, a.acks, a.ntds)
	}

	if len(a.firstDecode) > 0 {
		lat := make([]int, 0, len(a.firstDecode))
		for _, t := range a.firstDecode {
			lat = append(lat, t-a.minTick)
		}
		sort.Ints(lat)
		fmt.Fprintf(w, "\nper-node first-decode latency (%d nodes, ticks since trace start):\n", len(lat))
		fmt.Fprintf(w, "  p50=%d p90=%d p99=%d max=%d\n",
			quantile(lat, 0.50), quantile(lat, 0.90), quantile(lat, 0.99), lat[len(lat)-1])
	}

	fmt.Fprintf(w, "\ncontention (transmitters per active slot):\n")
	levels := make([]int, 0, len(a.contention))
	for l := range a.contention {
		levels = append(levels, l)
	}
	sort.Ints(levels)
	var cum, p50, p90, p99 int64
	p50v, p90v, p99v, maxv := -1, -1, -1, levels[len(levels)-1]
	p50, p90, p99 = (a.events+1)/2, (a.events*9+9)/10, (a.events*99+99)/100
	for _, l := range levels {
		cum += a.contention[l]
		if p50v < 0 && cum >= p50 {
			p50v = l
		}
		if p90v < 0 && cum >= p90 {
			p90v = l
		}
		if p99v < 0 && cum >= p99 {
			p99v = l
		}
	}
	fmt.Fprintf(w, "  p50=%d p90=%d p99=%d max=%d\n", p50v, p90v, p99v, maxv)

	if a.timelineWidth > 0 {
		used := (a.maxTick / a.timelineWidth) + 1
		fmt.Fprintf(w, "\ntimeline (transmissions per tick, %d buckets of %d ticks):\n", used, a.timelineWidth)
		var maxC int64 = 1
		for _, c := range a.timelineTx[:used] {
			if c > maxC {
				maxC = c
			}
		}
		for b, c := range a.timelineTx[:used] {
			bar := make([]byte, 40*c/maxC)
			for i := range bar {
				bar[i] = '#'
			}
			fmt.Fprintf(w, "  [%6d-%6d) %8.2f %s\n", b*a.timelineWidth, (b+1)*a.timelineWidth,
				float64(c)/float64(a.timelineWidth), bar)
		}
	}

	if a.seizedSlots > 0 {
		fmt.Fprintf(w, "\nfault correlation (slots with injector-seized carriers):\n")
		fmt.Fprintf(w, "  seized slots: %d of %d active (%.1f%%)\n",
			a.seizedSlots, a.events, 100*ratio(a.seizedSlots, a.events))
		fmt.Fprintf(w, "  decode rate:  %.3f per tx in seized slots vs %.3f in clean slots\n",
			ratio(a.seizedDecodes, a.seizedTx), ratio(a.cleanDecodes, a.cleanTx))
	} else {
		fmt.Fprintf(w, "\nfault correlation: no injector-seized slots in trace\n")
	}

	top := a.Top
	if top < 0 {
		top = 0
	} else if top == 0 {
		top = 5
	}
	if top > 0 && len(a.txPerNode) > 0 {
		type nodeCount struct {
			node int
			tx   int64
		}
		list := make([]nodeCount, 0, len(a.txPerNode))
		for u, c := range a.txPerNode {
			list = append(list, nodeCount{u, c})
		}
		sort.Slice(list, func(i, j int) bool {
			if list[i].tx != list[j].tx {
				return list[i].tx > list[j].tx
			}
			return list[i].node < list[j].node
		})
		if top > len(list) {
			top = len(list)
		}
		fmt.Fprintf(w, "\nbusiest transmitters:\n")
		for _, nc := range list[:top] {
			fmt.Fprintf(w, "  node %5d: %5d transmissions, %5d mass deliveries\n",
				nc.node, nc.tx, a.massPerNode[nc.node])
		}
	}
}

// quantile returns the q-th quantile of sorted values (nearest rank).
func quantile(sorted []int, q float64) int {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q*float64(len(sorted)) + 0.5)
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

func ratio(a, b int64) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}
