package trace

import (
	"bytes"
	"encoding/json"
	"testing"

	"udwn/internal/metric"
	"udwn/internal/model"
	"udwn/internal/rng"
	"udwn/internal/sim"
	"udwn/internal/workload"
)

// dualProto transmits with a seed-determined probability and hops channels,
// exercising every SlotEvent field across the scenario matrix.
type dualProto struct {
	p     float64
	nchan int
}

func (d *dualProto) Act(n *sim.Node, slot int) sim.Action {
	act := sim.Action{
		Transmit: n.RNG.Bernoulli(d.p),
		Msg:      sim.Message{Kind: 1, Data: int64(n.ID)},
	}
	if d.nchan > 1 {
		act.Channel = n.RNG.Intn(d.nchan)
	}
	return act
}

func (d *dualProto) Observe(n *sim.Node, slot int, obs *sim.Observation) {}

func (d *dualProto) TransmitProb() float64 { return d.p }

// dualInjector is a deterministic pure-function fault injector (the same
// discipline as internal/sim's diffInjector; internal/faults cannot be
// imported here without a cycle).
type dualInjector struct{ seed uint64 }

func (d *dualInjector) hash(a, b, c uint64) uint64 {
	x := d.seed ^ a*0x9e3779b97f4a7c15 ^ b*0xbf58476d1ce4e5b9 ^ c*0x94d049bb133111eb
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	return x
}

func (d *dualInjector) BeginTick(s *sim.Sim, tick int) {
	for v := 0; v < s.N(); v++ {
		switch d.hash(1, uint64(v), uint64(tick)) % 97 {
		case 0:
			s.Kill(v)
		case 1:
			s.Revive(v)
		}
	}
}

func (d *dualInjector) Seized(v, tick int) (sim.Action, bool) {
	if d.hash(2, uint64(v), uint64(tick))%23 == 0 {
		return sim.Action{Transmit: true, Msg: sim.Message{Kind: 99}}, true
	}
	return sim.Action{}, false
}

func (d *dualInjector) DropRecv(u, v, tick int) bool {
	return d.hash(3, uint64(u)<<20|uint64(v), uint64(tick))%31 == 0
}

func (d *dualInjector) Observation(v, tick int, obs *sim.Observation) {
	if d.hash(4, uint64(v), uint64(tick))%41 == 0 {
		obs.Busy = !obs.Busy
	}
}

// dualScenario is one cell of the dual-format matrix: models × channels ×
// faults × churn, mirroring TestGridScanEquivalence's coverage.
type dualScenario struct {
	name     string
	n, ticks int
	seed     uint64
	model    func() model.Model
	channels int
	churn    bool
	inject   bool
	prims    sim.Primitives
}

// dualScenarioMatrix is the shared scenario matrix of the trace-layer
// differential suites (dual-format equivalence here, query/scan equivalence
// in query_test.go).
func dualScenarioMatrix() []dualScenario {
	return []dualScenario{
		{name: "udg", n: 180, ticks: 150, seed: 1,
			model: func() model.Model { return model.NewUDG(10) },
			prims: sim.CD | sim.ACK | sim.NTD},
		{name: "sinr", n: 180, ticks: 150, seed: 2,
			model: func() model.Model { return model.NewSINR(1500, 1.5, 1, 3, 0.1) },
			prims: sim.CD | sim.ACK},
		{name: "qudg", n: 180, ticks: 150, seed: 3,
			model: func() model.Model { return model.NewQUDG(7, 11, nil) },
			prims: sim.CD},
		{name: "protocol-channels", n: 180, ticks: 150, seed: 4, channels: 3,
			model: func() model.Model { return model.NewProtocol(9, 13) },
			prims: sim.FreeAck},
		{name: "churn", n: 180, ticks: 180, seed: 5, churn: true,
			model: func() model.Model { return model.NewUDG(10) },
			prims: sim.CD | sim.ACK},
		{name: "faults", n: 180, ticks: 180, seed: 6, inject: true,
			model: func() model.Model { return model.NewUDG(10) },
			prims: sim.CD | sim.ACK},
		{name: "faults-churn-channels", n: 180, ticks: 180, seed: 7,
			inject: true, churn: true, channels: 2,
			model: func() model.Model { return model.NewUDG(10) },
			prims: sim.CD | sim.ACK | sim.NTD},
	}
}

// runDualScenario runs one matrix cell's simulation, feeding every slot
// event to observe.
func runDualScenario(t testing.TB, sc dualScenario, observe func(sim.SlotEvent)) {
	t.Helper()
	side := workload.SideForDegree(sc.n, 12, 10)
	pts := workload.UniformDisc(sc.n, side, sc.seed)
	cfg := sim.Config{
		Space: metric.NewEuclidean(pts),
		Model: sc.model(),
		P:     1500, Zeta: 3, Noise: 1, Eps: 0.1,
		Seed:       sc.seed,
		Primitives: sc.prims,
		Channels:   sc.channels,
		Observer:   observe,
	}
	if sc.inject {
		cfg.Injector = &dualInjector{seed: sc.seed ^ 0xfa017}
	}
	s, err := sim.New(cfg, func(int) sim.Protocol {
		return &dualProto{p: 0.05, nchan: sc.channels}
	})
	if err != nil {
		t.Fatal(err)
	}
	drv := rng.New(sc.seed ^ 0xd21f)
	for i := 0; i < sc.ticks; i++ {
		if sc.churn {
			if drv.Bernoulli(0.08) {
				s.Kill(drv.Intn(sc.n))
			}
			if drv.Bernoulli(0.08) {
				s.Revive(drv.Intn(sc.n))
			}
		}
		s.Step()
	}
}

// TestBinaryJSONLEquivalence is the differential dual-format suite: each
// scenario's run is recorded once, with the observer teeing every event
// into a JSONL recorder and a binary recorder, and the two decodings must
// be byte-for-byte identical after normalization. JSONL is the reference
// implementation; any packing bug in the binary path shows up as a diverged
// stream.
func TestBinaryJSONLEquivalence(t *testing.T) {
	for _, sc := range dualScenarioMatrix() {
		sc := sc
		t.Run(sc.name, func(t *testing.T) {
			var jb, bb bytes.Buffer
			jw := NewJSONL(&jb)
			bw := NewBinary(&bb)

			runDualScenario(t, sc, func(ev sim.SlotEvent) {
				jw.Record(ev)
				bw.Record(ev)
			})
			if err := jw.Flush(); err != nil {
				t.Fatal(err)
			}
			if err := bw.Flush(); err != nil {
				t.Fatal(err)
			}
			if jw.Events() == 0 {
				t.Fatal("scenario produced no events; the comparison is vacuous")
			}
			if jw.Events() != bw.Events() {
				t.Fatalf("recorders disagree: jsonl=%d binary=%d events", jw.Events(), bw.Events())
			}

			jev, jf, err := ReadEvents(bytes.NewReader(jb.Bytes()))
			if err != nil || jf != FormatJSONL {
				t.Fatalf("jsonl decode: format=%v err=%v", jf, err)
			}
			bev, bf, err := ReadEvents(bytes.NewReader(bb.Bytes()))
			if err != nil || bf != FormatBinary {
				t.Fatalf("binary decode: format=%v err=%v", bf, err)
			}
			ja, _ := json.Marshal(Canonicalize(jev))
			ba, _ := json.Marshal(Canonicalize(bev))
			if !bytes.Equal(ja, ba) {
				i := 0
				for ; i < len(jev) && i < len(bev); i++ {
					a, _ := json.Marshal(jev[i])
					b, _ := json.Marshal(bev[i])
					if !bytes.Equal(a, b) {
						break
					}
				}
				t.Fatalf("decoded streams diverge at event %d of %d", i, len(jev))
			}

			if sc.inject {
				seized := false
				for _, ev := range bev {
					if ev.Seized > 0 {
						seized = true
						break
					}
				}
				if !seized {
					t.Fatal("fault scenario surfaced no seized transmitters in the trace")
				}
			}
			if bb.Len() >= jb.Len() {
				t.Fatalf("binary trace (%d bytes) not smaller than JSONL (%d bytes)", bb.Len(), jb.Len())
			}
		})
	}
}
