package trace

import (
	"strings"
	"testing"
)

func TestSeriesAddAndLen(t *testing.T) {
	var s Series
	s.Add(1, 10)
	s.Add(2, 20)
	if s.Len() != 2 {
		t.Fatalf("Len = %d", s.Len())
	}
}

func TestSeriesYAt(t *testing.T) {
	var s Series
	s.Add(1, 10)
	s.Add(3, 30)
	s.Add(5, 50)
	cases := []struct{ x, want float64 }{
		{0, 0}, {1, 10}, {2, 10}, {3, 30}, {4, 30}, {5, 50}, {99, 50},
	}
	for _, c := range cases {
		if got := s.YAt(c.x); got != c.want {
			t.Fatalf("YAt(%v) = %v, want %v", c.x, got, c.want)
		}
	}
}

func TestSeriesMaxY(t *testing.T) {
	var s Series
	if s.MaxY() != 0 {
		t.Fatal("empty MaxY != 0")
	}
	s.Add(1, -5)
	s.Add(2, -2)
	if s.MaxY() != -2 {
		t.Fatalf("MaxY = %v", s.MaxY())
	}
}

func TestPlotRendering(t *testing.T) {
	p := NewPlot("Title Here", "round")
	a := p.NewSeries("alpha")
	b := p.NewSeries("beta")
	a.Add(1, 10)
	a.Add(2, 20)
	b.Add(1, 100)
	b.Add(2, 200)
	p.AddNote("a note %s", "x")
	out := p.String()
	for _, want := range []string{"Title Here", "round", "alpha", "beta", "10", "200", "note: a note x"} {
		if !strings.Contains(out, want) {
			t.Fatalf("plot output missing %q:\n%s", want, out)
		}
	}
	// One data line per x of the first series plus header/sep/notes.
	if got := strings.Count(out, "\n"); got < 5 {
		t.Fatalf("too few lines: %d", got)
	}
}

func TestPlotEmpty(t *testing.T) {
	p := NewPlot("t", "x")
	if out := p.String(); !strings.Contains(out, "t") {
		t.Fatalf("empty plot output: %q", out)
	}
}
