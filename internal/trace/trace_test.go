package trace

import (
	"strings"
	"testing"
)

func TestSeriesAddAndLen(t *testing.T) {
	var s Series
	s.Add(1, 10)
	s.Add(2, 20)
	if s.Len() != 2 {
		t.Fatalf("Len = %d", s.Len())
	}
}

func TestSeriesYAt(t *testing.T) {
	var s Series
	s.Add(1, 10)
	s.Add(3, 30)
	s.Add(5, 50)
	cases := []struct{ x, want float64 }{
		{0, 0}, {1, 10}, {2, 10}, {3, 30}, {4, 30}, {5, 50}, {99, 50},
	}
	for _, c := range cases {
		if got := s.YAt(c.x); got != c.want {
			t.Fatalf("YAt(%v) = %v, want %v", c.x, got, c.want)
		}
	}
}

func TestSeriesMaxY(t *testing.T) {
	var s Series
	if s.MaxY() != 0 {
		t.Fatal("empty MaxY != 0")
	}
	s.Add(1, -5)
	s.Add(2, -2)
	if s.MaxY() != -2 {
		t.Fatalf("MaxY = %v", s.MaxY())
	}
}

func TestPlotRendering(t *testing.T) {
	p := NewPlot("Title Here", "round")
	a := p.NewSeries("alpha")
	b := p.NewSeries("beta")
	a.Add(1, 10)
	a.Add(2, 20)
	b.Add(1, 100)
	b.Add(2, 200)
	p.AddNote("a note %s", "x")
	out := p.String()
	for _, want := range []string{"Title Here", "round", "alpha", "beta", "10", "200", "note: a note x"} {
		if !strings.Contains(out, want) {
			t.Fatalf("plot output missing %q:\n%s", want, out)
		}
	}
	// One data line per x of the first series plus header/sep/notes.
	if got := strings.Count(out, "\n"); got < 5 {
		t.Fatalf("too few lines: %d", got)
	}
}

func TestPlotEmpty(t *testing.T) {
	p := NewPlot("t", "x")
	if out := p.String(); !strings.Contains(out, "t") {
		t.Fatalf("empty plot output: %q", out)
	}
}

// TestPlotMismatchedXGrids pins the documented behaviour when series do not
// share an x grid: the rendered rows follow the FIRST series' x samples,
// and every other series contributes its step-wise YAt value at those
// points — the last sample at or before x, 0 before its first sample.
func TestPlotMismatchedXGrids(t *testing.T) {
	p := NewPlot("mismatch", "x")
	a := p.NewSeries("a")
	b := p.NewSeries("b")
	a.Add(1, 10)
	a.Add(2, 20)
	a.Add(3, 30)
	b.Add(1.5, 100) // off-grid: invisible at x=1, holds from x=2 on
	b.Add(10, 999)  // beyond the first series' grid: never rendered
	out := p.String()

	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 6 { // title, header, separator, 3 data rows
		t.Fatalf("got %d lines, want 6:\n%s", len(lines), out)
	}
	data := lines[3:]
	wantRows := []struct {
		x, a, b string
	}{
		{"1", "10", "0"},   // before b's first sample: YAt = 0
		{"2", "20", "100"}, // b's 1.5-sample holds step-wise
		{"3", "30", "100"}, // b's 10-sample is still ahead
	}
	for i, w := range wantRows {
		fields := strings.Fields(data[i])
		if len(fields) != 3 || fields[0] != w.x || fields[1] != w.a || fields[2] != w.b {
			t.Fatalf("row %d = %q, want x=%s a=%s b=%s", i, data[i], w.x, w.a, w.b)
		}
	}
	if strings.Contains(out, "999") {
		t.Fatalf("sample beyond the first series' grid leaked into output:\n%s", out)
	}
}

// TestPlotEmptyFirstSeries: the x grid comes from the first series, so an
// empty first series renders headers only — later series' samples are
// unreachable. This is the sharp edge the String contract documents.
func TestPlotEmptyFirstSeries(t *testing.T) {
	p := NewPlot("empty-first", "x")
	p.NewSeries("a") // no samples
	b := p.NewSeries("b")
	b.Add(1, 42)
	out := p.String()
	if strings.Contains(out, "42") {
		t.Fatalf("data rendered despite empty first series:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 { // title, header, separator — no data rows
		t.Fatalf("got %d lines, want 3:\n%s", len(lines), out)
	}
	for _, want := range []string{"empty-first", "a", "b"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

// TestPlotEmptySecondSeries: a later empty series still gets a column, all
// zeros, without disturbing the first series' rows.
func TestPlotEmptySecondSeries(t *testing.T) {
	p := NewPlot("", "x")
	a := p.NewSeries("a")
	p.NewSeries("b") // no samples
	a.Add(1, 10)
	a.Add(2, 20)
	out := p.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 { // header, separator, 2 data rows (no title)
		t.Fatalf("got %d lines, want 4:\n%s", len(lines), out)
	}
	for i, want := range [][]string{{"1", "10", "0"}, {"2", "20", "0"}} {
		fields := strings.Fields(lines[2+i])
		if len(fields) != 3 || fields[0] != want[0] || fields[1] != want[1] || fields[2] != want[2] {
			t.Fatalf("row %d = %q, want %v", i, lines[2+i], want)
		}
	}
}
