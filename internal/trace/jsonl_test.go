package trace

import (
	"bytes"
	"strings"
	"testing"

	"udwn/internal/sim"
)

func TestJSONLRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	j := NewJSONL(&buf)
	j.Record(sim.SlotEvent{Tick: 1, Slot: 0, Transmitters: []int{3, 5}, Decodes: 2,
		MassDeliverers: []int{3}})
	j.Record(sim.SlotEvent{Tick: 2, Slot: 1, Transmitters: []int{7}, Decodes: 1})
	if err := j.Flush(); err != nil {
		t.Fatal(err)
	}
	if j.Events() != 2 {
		t.Fatalf("Events = %d", j.Events())
	}
	events, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 2 {
		t.Fatalf("read %d events", len(events))
	}
	if events[0].Tick != 1 || len(events[0].Transmitters) != 2 ||
		events[0].MassDeliverers[0] != 3 {
		t.Fatalf("event 0 = %+v", events[0])
	}
	if events[1].Decodes != 1 || events[1].Slot != 1 {
		t.Fatalf("event 1 = %+v", events[1])
	}
}

func TestJSONLSkipsSilentSlots(t *testing.T) {
	var buf bytes.Buffer
	j := NewJSONL(&buf)
	j.Record(sim.SlotEvent{Tick: 1})
	j.Record(sim.SlotEvent{Tick: 2, Transmitters: []int{1}})
	if err := j.Flush(); err != nil {
		t.Fatal(err)
	}
	if j.Events() != 1 {
		t.Fatalf("silent slot recorded: %d events", j.Events())
	}
	j2 := NewJSONL(&buf)
	j2.KeepSilent = true
	j2.Record(sim.SlotEvent{Tick: 1})
	if j2.Events() != 1 {
		t.Fatal("KeepSilent ignored")
	}
}

func TestReadJSONLBadInput(t *testing.T) {
	_, err := ReadJSONL(strings.NewReader("{\"tick\":1}\nnot json\n"))
	if err == nil {
		t.Fatal("expected decode error")
	}
}

type failWriter struct{}

func (failWriter) Write([]byte) (int, error) { return 0, errWrite }

var errWrite = &writeErr{}

type writeErr struct{}

func (*writeErr) Error() string { return "disk full" }

func TestJSONLStickyError(t *testing.T) {
	j := NewJSONL(failWriter{})
	// Force enough volume to defeat the bufio buffer.
	big := make([]int, 2000)
	for i := 0; i < 100; i++ {
		j.Record(sim.SlotEvent{Tick: i, Transmitters: big})
	}
	if err := j.Flush(); err == nil {
		t.Fatal("expected flush error")
	}
}
