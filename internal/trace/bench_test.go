package trace

import (
	"bytes"
	"io"
	"testing"

	"udwn/internal/sim"
)

// denseEvents models a full-scale regeneration trace: high contention (many
// transmitters and decoders per slot), the scenario where trace size and
// write throughput actually matter.
func denseEvents() []sim.SlotEvent {
	events := randomEvents(101, 2000)
	for i := range events {
		for len(events[i].Transmitters) < 24 {
			events[i].Transmitters = append(events[i].Transmitters, (i*17+len(events[i].Transmitters)*31)%4096)
		}
		for len(events[i].Decoders) < 48 {
			events[i].Decoders = append(events[i].Decoders, (i*13+len(events[i].Decoders)*7)%4096)
		}
	}
	return events
}

// benchWrite reports encode throughput (events/s, MB/s) and size
// (bytes/event) for one trace writer over the dense scenario. The JSONL and
// binary results side by side are the format comparison of the trace layer:
// bytes/event is the on-disk cost, MB/s the encode ceiling.
func benchWrite(b *testing.B, mk func(io.Writer) Writer) {
	events := denseEvents()
	var buf bytes.Buffer
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		w := mk(&buf)
		for _, ev := range events {
			w.Record(ev)
		}
		if err := w.Flush(); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(buf.Len())/float64(len(events)), "bytes/event")
	b.ReportMetric(float64(len(events))*float64(b.N)/b.Elapsed().Seconds(), "events/s")
	b.SetBytes(int64(buf.Len()))
}

func BenchmarkTraceWriteJSONL(b *testing.B) {
	benchWrite(b, func(w io.Writer) Writer { return NewJSONL(w) })
}

func BenchmarkTraceWriteBinary(b *testing.B) {
	benchWrite(b, func(w io.Writer) Writer { return NewBinary(w) })
}

// benchRead reports decode throughput over the same dense trace.
func benchRead(b *testing.B, format Format) {
	events := denseEvents()
	var buf bytes.Buffer
	w, err := NewWriter(&buf, format)
	if err != nil {
		b.Fatal(err)
	}
	for _, ev := range events {
		w.Record(ev)
	}
	if err := w.Flush(); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.ReportAllocs()
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		got, _, err := ReadEvents(bytes.NewReader(data))
		if err != nil {
			b.Fatal(err)
		}
		if len(got) != len(events) {
			b.Fatalf("decoded %d of %d events", len(got), len(events))
		}
	}
}

func BenchmarkTraceReadJSONL(b *testing.B) {
	benchRead(b, FormatJSONL)
}

func BenchmarkTraceReadBinary(b *testing.B) {
	benchRead(b, FormatBinary)
}

// benchQuery measures the query planner over a large indexed trace with the
// locality structure indexes exploit (each frame covers its own tick range
// and node neighbourhood). bytes_scanned/bytes_skipped expose how much of
// the file the planner actually decoded — the prune_x metric is the
// selective-query speedup claim in checkable form.
func benchQuery(b *testing.B, pred Predicate) {
	events := localityEvents(64, 100, 16)
	data, _ := encodeIndexed(b, events, 100)
	want := len(filterEvents(events, pred))
	var last QueryStats
	b.ReportAllocs()
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		got, st, err := QueryAll(bytes.NewReader(data), pred)
		if err != nil {
			b.Fatal(err)
		}
		if len(got) != want {
			b.Fatalf("query matched %d of %d expected events", len(got), want)
		}
		last = st
	}
	b.StopTimer()
	b.ReportMetric(float64(last.BytesScanned), "bytes_scanned")
	b.ReportMetric(float64(last.BytesSkipped), "bytes_skipped")
	if last.BytesScanned > 0 {
		b.ReportMetric(float64(last.BytesSkipped+last.BytesScanned)/float64(last.BytesScanned), "prune_x")
	}
}

func BenchmarkTraceQueryFullMatch(b *testing.B) {
	benchQuery(b, Predicate{})
}

func BenchmarkTraceQuerySingleNode(b *testing.B) {
	benchQuery(b, Predicate{Nodes: []int{3}})
}

func BenchmarkTraceQueryTickWindow(b *testing.B) {
	benchQuery(b, Predicate{MinTick: 2000, MaxTick: 2500})
}
