package trace

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"reflect"

	"udwn/internal/checkpoint"
	"udwn/internal/sim"
)

// EventSchema is the canonical structural description of sim.SlotEvent —
// field names and types rendered by checkpoint.SchemaOf, the same machinery
// that keys the cell-result store. Renaming, adding, retyping or reordering
// any event field changes this string.
func EventSchema() string {
	return "udwn/trace/binary|v1|" + checkpoint.SchemaOf(reflect.TypeOf(sim.SlotEvent{}))
}

// SchemaHash is the 64-bit digest of EventSchema baked into every binary
// trace header. A reader built against a different event shape sees a
// different hash and fails with *SchemaMismatchError instead of silently
// mis-decoding varint streams into the wrong fields.
func SchemaHash() uint64 {
	sum := sha256.Sum256([]byte(EventSchema()))
	return binary.LittleEndian.Uint64(sum[:8])
}

// SchemaMismatchError reports a binary trace written under a different
// slot-event schema than the reader was compiled with.
type SchemaMismatchError struct {
	// Got is the hash found in the trace header; Want is the reader's.
	Got, Want uint64
}

func (e *SchemaMismatchError) Error() string {
	return fmt.Sprintf("trace: binary trace schema hash %016x does not match reader schema %016x (trace written by a different event layout; regenerate it or decode with the matching build)",
		e.Got, e.Want)
}
