// Package trace records per-run time series (contention, informed counts,
// probability mass) used by the figure-shaped experiments.
package trace

import (
	"fmt"
	"strings"
)

// Series is a named sequence of (x, y) samples.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// Add appends one sample.
func (s *Series) Add(x, y float64) {
	s.X = append(s.X, x)
	s.Y = append(s.Y, y)
}

// Len returns the number of samples.
func (s *Series) Len() int { return len(s.X) }

// YAt returns the y value of the last sample with X <= x, or 0 when none
// exists. Samples must have been added with non-decreasing X.
func (s *Series) YAt(x float64) float64 {
	y := 0.0
	for i := range s.X {
		if s.X[i] > x {
			break
		}
		y = s.Y[i]
	}
	return y
}

// MaxY returns the largest y value, or 0 for an empty series.
func (s *Series) MaxY() float64 {
	m := 0.0
	for i, y := range s.Y {
		if i == 0 || y > m {
			m = y
		}
	}
	return m
}

// Plot is a set of series sharing an x axis, rendered as aligned text
// columns (one x column, one y column per series) so results can be read
// directly or piped into a plotting tool.
type Plot struct {
	Title  string
	XLabel string
	Series []*Series
	Notes  []string
}

// NewPlot creates an empty plot.
func NewPlot(title, xlabel string) *Plot {
	return &Plot{Title: title, XLabel: xlabel}
}

// NewSeries adds a fresh series to the plot and returns it.
func (p *Plot) NewSeries(name string) *Series {
	s := &Series{Name: name}
	p.Series = append(p.Series, s)
	return s
}

// AddNote appends a footnote line.
func (p *Plot) AddNote(format string, args ...interface{}) {
	p.Notes = append(p.Notes, fmt.Sprintf(format, args...))
}

// String renders the plot as a text table over the union of sample points of
// the first series (series are expected to share x grids; YAt interpolates
// step-wise otherwise).
func (p *Plot) String() string {
	var b strings.Builder
	if p.Title != "" {
		fmt.Fprintf(&b, "%s\n", p.Title)
	}
	fmt.Fprintf(&b, "%-12s", p.XLabel)
	for _, s := range p.Series {
		fmt.Fprintf(&b, "  %-14s", s.Name)
	}
	b.WriteByte('\n')
	b.WriteString(strings.Repeat("-", 12+16*len(p.Series)))
	b.WriteByte('\n')
	if len(p.Series) > 0 {
		for _, x := range p.Series[0].X {
			fmt.Fprintf(&b, "%-12.6g", x)
			for _, s := range p.Series {
				fmt.Fprintf(&b, "  %-14.6g", s.YAt(x))
			}
			b.WriteByte('\n')
		}
	}
	for _, n := range p.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}
