package trace

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"io"
	"sort"
	"sync"

	"udwn/internal/sim"
)

// Format selects a slot-trace encoding.
type Format string

// Supported trace formats. JSONL is the reference implementation: one JSON
// object per active slot, human-greppable. Binary is the compact framed
// encoding for full-scale runs (see binary.go); the differential suite pins
// both to decode into identical event streams.
const (
	FormatJSONL  Format = "jsonl"
	FormatBinary Format = "binary"
)

// ParseFormat parses a -trace-format flag value.
func ParseFormat(s string) (Format, error) {
	switch Format(s) {
	case FormatJSONL, FormatBinary:
		return Format(s), nil
	case "":
		return FormatJSONL, nil
	}
	return "", fmt.Errorf("trace: unknown format %q (want %q or %q)", s, FormatJSONL, FormatBinary)
}

// Writer is the format-independent slot-event recorder: wire Record to
// sim.Config.Observer (or udwn.SimOptions.Observer), then Flush once the run
// ends. Implementations are not safe for concurrent use; serialize
// multi-worker recording with LockedObserver.
type Writer interface {
	// Record writes one event. Errors are sticky and reported by Flush.
	Record(ev sim.SlotEvent)
	// Events returns the number of events recorded so far.
	Events() int
	// Flush drains buffered frames and returns the first error encountered.
	Flush() error
}

var (
	_ Writer = (*JSONL)(nil)
	_ Writer = (*Binary)(nil)
)

// NewWriter returns a recorder for the given format writing to w.
func NewWriter(w io.Writer, f Format) (Writer, error) {
	switch f {
	case FormatJSONL, "":
		return NewJSONL(w), nil
	case FormatBinary:
		return NewBinary(w), nil
	}
	return nil, fmt.Errorf("trace: unknown format %q", f)
}

// LockedObserver serializes a recorder behind a mutex so it can be wired as
// the observer of simulations running on concurrent grid workers. Events
// from different cells interleave in completion order (nondeterministic
// across runs); aggregate analytics and the sorted canonical stream are
// unaffected.
func LockedObserver(w Writer) func(sim.SlotEvent) {
	var mu sync.Mutex
	return func(ev sim.SlotEvent) {
		mu.Lock()
		w.Record(ev)
		mu.Unlock()
	}
}

// EventReader streams decoded slot events; Next returns io.EOF at the end
// of the recoverable prefix.
type EventReader interface {
	Next() (sim.SlotEvent, error)
}

// ErrHeaderOnly reports a structurally valid binary trace that ends right
// after its 12-byte header: the recorder was flushed before any event was
// recorded (or the run was killed immediately after opening the trace). The
// file is well-formed but holds zero events; Open surfaces the condition as
// a typed error so tools can say so instead of silently reporting nothing.
var ErrHeaderOnly = errors.New("trace: binary trace holds a valid header but no events")

// Open sniffs the trace format from the stream's first bytes (the binary
// file magic, else JSONL) and returns a streaming reader over it. Degenerate
// inputs fail with typed errors instead of generic decode failures:
// ErrEmptyTrace for a zero-byte stream, ErrTruncatedHeader for a binary
// trace torn inside its header, and ErrHeaderOnly for a binary trace with a
// valid header and no frames.
func Open(r io.Reader) (EventReader, Format, error) {
	br := bufio.NewReader(r)
	// One byte past the header distinguishes a header-only binary trace
	// (exactly headerSize bytes) from one with at least a partial frame.
	head, err := br.Peek(headerSize + 1)
	if err != nil && err != io.EOF {
		return nil, "", fmt.Errorf("trace: sniff format: %w", err)
	}
	if len(head) == 0 {
		return nil, "", ErrEmptyTrace
	}
	if bytes.HasPrefix(head, fileMagic[:]) || bytes.HasPrefix(fileMagic[:], head) {
		tr, err := NewReader(br)
		if err != nil {
			return nil, FormatBinary, err
		}
		if len(head) == headerSize {
			return nil, FormatBinary, ErrHeaderOnly
		}
		return tr, FormatBinary, nil
	}
	return NewJSONLReader(br), FormatJSONL, nil
}

// ReadEvents decodes a whole trace of either format into memory (tests and
// small inspections; streaming consumers should use Open directly).
func ReadEvents(r io.Reader) ([]sim.SlotEvent, Format, error) {
	er, f, err := Open(r)
	if err != nil {
		return nil, f, err
	}
	var events []sim.SlotEvent
	for {
		ev, err := er.Next()
		if err == io.EOF {
			return events, f, nil
		}
		if err != nil {
			return events, f, err
		}
		events = append(events, ev)
	}
}

// Canonicalize normalizes decoded events in place for cross-format
// comparison: empty slices become nil, so a JSONL decode (empty non-nil
// slices) and a binary decode (nil) of the same run compare byte-for-byte
// once re-serialized. Order is preserved.
func Canonicalize(events []sim.SlotEvent) []sim.SlotEvent {
	for i := range events {
		if len(events[i].Transmitters) == 0 {
			events[i].Transmitters = nil
		}
		if len(events[i].MassDeliverers) == 0 {
			events[i].MassDeliverers = nil
		}
		if len(events[i].Decoders) == 0 {
			events[i].Decoders = nil
		}
	}
	return events
}

// SortEvents orders a canonicalized stream deterministically by full event
// content. Traces recorded from concurrent grid cells interleave in
// completion order; sorting yields a canonical form that is identical across
// worker counts and formats because every cell is a pure function of its
// seeds.
func SortEvents(events []sim.SlotEvent) {
	sort.SliceStable(events, func(i, j int) bool {
		return compareEvents(events[i], events[j]) < 0
	})
}

func compareEvents(a, b sim.SlotEvent) int {
	if a.Tick != b.Tick {
		return a.Tick - b.Tick
	}
	if a.Slot != b.Slot {
		return a.Slot - b.Slot
	}
	if c := compareInts(a.Transmitters, b.Transmitters); c != 0 {
		return c
	}
	if a.Decodes != b.Decodes {
		return a.Decodes - b.Decodes
	}
	if c := compareInts(a.MassDeliverers, b.MassDeliverers); c != 0 {
		return c
	}
	if c := compareInts(a.Decoders, b.Decoders); c != 0 {
		return c
	}
	if a.CDBusy != b.CDBusy {
		return a.CDBusy - b.CDBusy
	}
	if a.CDIdle != b.CDIdle {
		return a.CDIdle - b.CDIdle
	}
	if a.Acks != b.Acks {
		return a.Acks - b.Acks
	}
	if a.NTDs != b.NTDs {
		return a.NTDs - b.NTDs
	}
	return a.Seized - b.Seized
}

func compareInts(a, b []int) int {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			return a[i] - b[i]
		}
	}
	return len(a) - len(b)
}
