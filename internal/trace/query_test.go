package trace

import (
	"bytes"
	"errors"
	"io"
	"reflect"
	"testing"

	"udwn/internal/metrics"
	"udwn/internal/sim"
)

// cloneEvent deep-copies an observer event whose id slices alias simulator
// scratch, normalizing empty lists to nil like the binary decode does.
func cloneEvent(ev sim.SlotEvent) sim.SlotEvent {
	cp := ev
	cp.Transmitters = append([]int(nil), ev.Transmitters...)
	cp.MassDeliverers = append([]int(nil), ev.MassDeliverers...)
	cp.Decoders = append([]int(nil), ev.Decoders...)
	return cp
}

// filterEvents is the reference implementation every query must agree with:
// decode everything, keep what the predicate accepts, in file order.
func filterEvents(events []sim.SlotEvent, pred Predicate) []sim.SlotEvent {
	var out []sim.SlotEvent
	for _, ev := range events {
		if pred.Match(ev) {
			out = append(out, ev)
		}
	}
	return out
}

// queryPredicates derives the predicate set of the differential suites from
// a concrete event stream, so node ids and tick windows are never vacuous.
func queryPredicates(events []sim.SlotEvent) []Predicate {
	minT, maxT := events[0].Tick, events[0].Tick
	var node int
	for _, ev := range events {
		if ev.Tick < minT {
			minT = ev.Tick
		}
		if ev.Tick > maxT {
			maxT = ev.Tick
		}
		if node == 0 && len(ev.Transmitters) > 0 {
			node = ev.Transmitters[0]
		}
	}
	span := maxT - minT + 1
	window := span / 10
	if window == 0 {
		window = 1
	}
	return []Predicate{
		{}, // match everything
		{MinTick: minT + span/3, MaxTick: minT + span/3 + window},
		{Nodes: []int{node}},
		{Nodes: []int{node}, Role: RoleTx},
		{Nodes: []int{node}, Role: RoleDecoder},
		{Role: RoleMass},
		{Seized: true},
		{Decodes: true},
		{Mass: true},
		{Nodes: []int{node, node + 1}, MinTick: minT, MaxTick: minT + span/2, Decodes: true},
		{MinTick: minT, MaxTick: minT + 1}, // first tick only
		{Nodes: []int{1 << 29}},            // absent node: index prunes everything
		{MinTick: maxT + 1000},             // empty tick window past the trace
	}
}

// encodeIndexed records events through the binary writer, cutting a frame
// (and its index frame) every flushEvery events so the planner has
// boundaries to prune at.
func encodeIndexed(t testing.TB, events []sim.SlotEvent, flushEvery int) ([]byte, int64) {
	t.Helper()
	var buf bytes.Buffer
	w := NewBinary(&buf)
	w.KeepSilent = true
	for i, ev := range events {
		w.Record(ev)
		if flushEvery > 0 && (i+1)%flushEvery == 0 {
			if err := w.Flush(); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), w.Frames()
}

// nonSeeker hides the Seek method of a reader, forcing the fallback path.
type nonSeeker struct{ r io.Reader }

func (n nonSeeker) Read(p []byte) (int, error) { return n.r.Read(p) }

// checkQuery runs one predicate through the indexed planner and pins it to
// the reference filter: identical events, identical binary and JSONL
// sub-trace bytes, and stats that add up.
func checkQuery(t *testing.T, data []byte, frames int64, all []sim.SlotEvent, pred Predicate) QueryStats {
	t.Helper()
	want := filterEvents(all, pred)

	got, st, err := QueryAll(bytes.NewReader(data), pred)
	if err != nil {
		t.Fatalf("query %q: %v", pred.String(), err)
	}
	if st.FullScan {
		t.Fatalf("query %q: indexed trace fell back to full scan", pred.String())
	}
	if st.Truncated {
		t.Fatalf("query %q: clean trace reported truncated", pred.String())
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("query %q: %d events, reference filter %d", pred.String(), len(got), len(want))
	}
	if st.FramesScanned+st.FramesSkipped != frames {
		t.Fatalf("query %q: scanned %d + skipped %d frames, trace has %d",
			pred.String(), st.FramesScanned, st.FramesSkipped, frames)
	}
	if st.EventsMatched != int64(len(want)) {
		t.Fatalf("query %q: EventsMatched=%d, want %d", pred.String(), st.EventsMatched, len(want))
	}

	// The emitted sub-trace must be byte-identical to one written from the
	// reference filter, in both formats.
	for _, mk := range []func(io.Writer) Writer{
		func(w io.Writer) Writer { b := NewBinary(w); b.KeepSilent = true; return b },
		func(w io.Writer) Writer { return NewJSONL(w) },
	} {
		var viaQuery, viaFilter bytes.Buffer
		if _, err := Slice(bytes.NewReader(data), pred, mk(&viaQuery)); err != nil {
			t.Fatalf("slice %q: %v", pred.String(), err)
		}
		ref := mk(&viaFilter)
		for _, ev := range want {
			ref.Record(ev)
		}
		if err := ref.Flush(); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(viaQuery.Bytes(), viaFilter.Bytes()) {
			t.Fatalf("slice %q: sub-trace diverges from reference filter (%d vs %d bytes)",
				pred.String(), viaQuery.Len(), viaFilter.Len())
		}
	}
	return st
}

// TestQueryScanEquivalence is the differential gate of the query engine:
// across the dual-format scenario matrix, every predicate must return — via
// the index-pruning planner — exactly the events of a predicate filter over
// the full decode, and the sub-traces it emits must be byte-identical to
// ones written from that reference filter.
func TestQueryScanEquivalence(t *testing.T) {
	for _, sc := range dualScenarioMatrix() {
		sc := sc
		t.Run(sc.name, func(t *testing.T) {
			var events []sim.SlotEvent
			runDualScenario(t, sc, func(ev sim.SlotEvent) {
				// Same silent-slot policy as the recorders; the event's
				// slices alias sim scratch, so keep a deep copy.
				if len(ev.Transmitters) == 0 && ev.Decodes == 0 {
					return
				}
				events = append(events, cloneEvent(ev))
			})
			if len(events) == 0 {
				t.Fatal("scenario produced no events; the comparison is vacuous")
			}
			data, frames := encodeIndexed(t, events, 64)
			if frames < 3 {
				t.Fatalf("want >=3 frames for pruning to mean anything, got %d", frames)
			}
			all, _, err := ReadEvents(bytes.NewReader(data))
			if err != nil {
				t.Fatal(err)
			}
			anySkipped := false
			for _, pred := range queryPredicates(all) {
				st := checkQuery(t, data, frames, all, pred)
				if st.FramesSkipped > 0 {
					anySkipped = true
				}

				// The fallback full scan answers identically.
				got, fst, err := QueryAll(nonSeeker{bytes.NewReader(data)}, pred)
				if err != nil {
					t.Fatalf("fallback %q: %v", pred.String(), err)
				}
				if !fst.FullScan {
					t.Fatalf("fallback %q: non-seekable stream did not full-scan", pred.String())
				}
				if !reflect.DeepEqual(got, filterEvents(all, pred)) {
					t.Fatalf("fallback %q diverges from reference filter", pred.String())
				}
			}
			if !anySkipped {
				t.Fatal("no predicate pruned a single frame; the index is dead weight")
			}
		})
	}
}

// TestQueryIndexlessFallback: a binary trace written with NoIndex (the
// pre-index layout) must answer every query identically through the full
// scan, flagged as such in the stats.
func TestQueryIndexlessFallback(t *testing.T) {
	events := Canonicalize(randomEvents(97, 400))
	var buf bytes.Buffer
	w := NewBinary(&buf)
	w.NoIndex = true
	for i, ev := range events {
		w.Record(ev)
		if (i+1)%50 == 0 {
			if err := w.Flush(); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(buf.Bytes(), indexMagic[:]) {
		t.Fatal("NoIndex trace contains an index frame magic")
	}
	for _, pred := range queryPredicates(events) {
		got, st, err := QueryAll(bytes.NewReader(buf.Bytes()), pred)
		if err != nil {
			t.Fatalf("query %q: %v", pred.String(), err)
		}
		if !st.FullScan {
			t.Fatalf("query %q: indexless trace not flagged as full scan", pred.String())
		}
		if st.FramesSkipped != 0 || st.BytesSkipped != 0 {
			t.Fatalf("query %q: indexless trace skipped %d frames / %d bytes",
				pred.String(), st.FramesSkipped, st.BytesSkipped)
		}
		if !reflect.DeepEqual(got, filterEvents(events, pred)) {
			t.Fatalf("query %q diverges from reference filter", pred.String())
		}
	}

	// JSONL answers the same queries through the same fallback.
	var jb bytes.Buffer
	jw := NewJSONL(&jb)
	for _, ev := range events {
		jw.Record(ev)
	}
	if err := jw.Flush(); err != nil {
		t.Fatal(err)
	}
	jall, _, err := ReadEvents(bytes.NewReader(jb.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	pred := queryPredicates(events)[2] // single-node query
	got, st, err := QueryAll(bytes.NewReader(jb.Bytes()), pred)
	if err != nil {
		t.Fatal(err)
	}
	if !st.FullScan {
		t.Fatal("JSONL query not flagged as full scan")
	}
	if !reflect.DeepEqual(Canonicalize(got), filterEvents(Canonicalize(jall), pred)) {
		t.Fatal("JSONL query diverges from reference filter")
	}
}

// localityEvents builds the node-locality-blocked trace the selectivity
// claims are measured on: frame f (cut every eventsPerFrame) covers ticks
// [f*tickStride, ...) and nodes [f*nodeStride, f*nodeStride+nodeStride), the
// shape of a grid sweep where cells finish in order.
func localityEvents(frames, eventsPerFrame, nodeStride int) []sim.SlotEvent {
	var events []sim.SlotEvent
	for f := 0; f < frames; f++ {
		for i := 0; i < eventsPerFrame; i++ {
			base := f * nodeStride
			ev := sim.SlotEvent{
				Tick:    f*eventsPerFrame + i,
				Decodes: 1 + i%3,
			}
			for j := 0; j < 8; j++ {
				ev.Transmitters = append(ev.Transmitters, base+(i+j)%nodeStride)
			}
			for j := 0; j < 4; j++ {
				ev.Decoders = append(ev.Decoders, base+(i+j*5)%nodeStride)
			}
			events = append(events, ev)
		}
	}
	return events
}

// TestQuerySelectivity pins the acceptance criterion: on a large dense
// trace, a single-node query and a ≤10% tick-window query must decode at
// least 10x fewer payload bytes than the full scan, proven by the planner's
// own counters.
func TestQuerySelectivity(t *testing.T) {
	const frames = 64
	events := localityEvents(frames, 100, 16)
	data, nframes := encodeIndexed(t, events, 100)
	if nframes != frames {
		t.Fatalf("encoded %d frames, want %d", nframes, frames)
	}
	full := filterEvents(events, Predicate{})

	for _, tc := range []struct {
		name string
		pred Predicate
	}{
		{"single-node", Predicate{Nodes: []int{3}}},              // lives in frame 0 only
		{"tick-window", Predicate{MinTick: 2000, MaxTick: 2500}}, // ~8% of ticks
	} {
		t.Run(tc.name, func(t *testing.T) {
			got, st, err := QueryAll(bytes.NewReader(data), tc.pred)
			if err != nil {
				t.Fatal(err)
			}
			want := filterEvents(events, tc.pred)
			if !reflect.DeepEqual(Canonicalize(got), Canonicalize(want)) {
				t.Fatalf("selective query diverges from filter (%d vs %d events)", len(got), len(want))
			}
			if len(want) == 0 || len(want) == len(full) {
				t.Fatalf("degenerate selectivity: %d of %d events", len(want), len(full))
			}
			if st.BytesScanned == 0 {
				t.Fatal("no bytes scanned")
			}
			if st.BytesSkipped < 10*st.BytesScanned {
				t.Fatalf("decoded %d payload bytes, skipped only %d — want >=10x reduction",
					st.BytesScanned, st.BytesSkipped)
			}
		})
	}
}

// TestQueryTornTail truncates an indexed trace at every byte offset: the
// query must recover exactly the matching events of the longest valid
// prefix — the same prefix the streaming Reader recovers — and never error.
func TestQueryTornTail(t *testing.T) {
	events := Canonicalize(randomEvents(23, 90))
	data, _ := encodeIndexed(t, events, 30)
	pred := Predicate{} // match everything: sharpest prefix comparison
	for off := headerSize + 1; off <= len(data); off++ {
		prefix := data[:off]
		want, torn := decodeTorn(t, prefix)
		got, st, err := QueryAll(bytes.NewReader(prefix), pred)
		if err != nil {
			t.Fatalf("offset %d: %v", off, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("offset %d: query recovered %d events, reader %d", off, len(got), len(want))
		}
		// The query's torn-tail report must agree with the streaming
		// Reader's: a prefix ending on a clean pair boundary is a valid
		// shorter trace, anything else is torn.
		if st.Truncated != torn {
			t.Fatalf("offset %d: query Truncated=%v, reader %v", off, st.Truncated, torn)
		}
	}
}

// decodeTorn reads a possibly-torn binary trace through the streaming
// Reader, returning its recovered prefix and truncation report.
func decodeTorn(t testing.TB, data []byte) ([]sim.SlotEvent, bool) {
	t.Helper()
	r, err := NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	var events []sim.SlotEvent
	for {
		ev, err := r.Next()
		if err == io.EOF {
			return events, r.Truncated()
		}
		if err != nil {
			t.Fatal(err)
		}
		events = append(events, ev)
	}
}

// TestQueryTypedErrors pins the degenerate-input contract of Query, Open and
// ReadEvents: empty, header-only and header-torn traces fail with their
// typed errors on every path.
func TestQueryTypedErrors(t *testing.T) {
	headerOnly := encodeBinary(t, nil, 0)
	cases := []struct {
		name string
		data []byte
		want error
	}{
		{"empty", nil, ErrEmptyTrace},
		{"header-only", headerOnly, ErrHeaderOnly},
		{"torn-header", headerOnly[:7], ErrTruncatedHeader},
	}
	for _, c := range cases {
		if _, _, err := QueryAll(bytes.NewReader(c.data), Predicate{}); !errors.Is(err, c.want) {
			t.Fatalf("query %s: got %v, want %v", c.name, err, c.want)
		}
		if _, _, err := QueryAll(nonSeeker{bytes.NewReader(c.data)}, Predicate{}); !errors.Is(err, c.want) {
			t.Fatalf("fallback query %s: got %v, want %v", c.name, err, c.want)
		}
		if _, _, err := Open(bytes.NewReader(c.data)); !errors.Is(err, c.want) {
			t.Fatalf("open %s: got %v, want %v", c.name, err, c.want)
		}
		if _, _, err := ReadEvents(bytes.NewReader(c.data)); !errors.Is(err, c.want) {
			t.Fatalf("read %s: got %v, want %v", c.name, err, c.want)
		}
	}
	// NewReader reports empty and torn headers with the same typed errors
	// (header-only is a valid empty trace at this layer, pinned elsewhere).
	if _, err := NewReader(bytes.NewReader(nil)); !errors.Is(err, ErrEmptyTrace) {
		t.Fatalf("NewReader(empty): %v", err)
	}
	if _, err := NewReader(bytes.NewReader(headerOnly[:5])); !errors.Is(err, ErrTruncatedHeader) {
		t.Fatalf("NewReader(torn header): %v", err)
	}
	// A short non-binary stream is still ErrNotBinary, not "torn header".
	if _, err := NewReader(bytes.NewReader([]byte("{\"t"))); !errors.Is(err, ErrNotBinary) {
		t.Fatalf("NewReader(short jsonl): %v", err)
	}
}

// TestParseQuery covers the compact grammar: accepted forms round-trip
// through Predicate.String, rejected forms name the offending term.
func TestParseQuery(t *testing.T) {
	good := []struct {
		in   string
		want Predicate
	}{
		{"", Predicate{}},
		{"node=4711", Predicate{Nodes: []int{4711}}},
		{"node=5,3,9", Predicate{Nodes: []int{3, 5, 9}}},
		{"nodes=1,2", Predicate{Nodes: []int{1, 2}}},
		{"role=tx", Predicate{Role: RoleTx}},
		{"role=decoder", Predicate{Role: RoleDecoder}},
		{"role=mass", Predicate{Role: RoleMass}},
		{"role=any", Predicate{}},
		{"tick=2000-2400", Predicate{MinTick: 2000, MaxTick: 2401}},
		{"tick=2000-", Predicate{MinTick: 2000}},
		{"tick=-2400", Predicate{MaxTick: 2401}},
		{"tick=7", Predicate{MinTick: 7, MaxTick: 8}},
		{"tick=0", Predicate{MinTick: 0, MaxTick: 1}},
		{"seized", Predicate{Seized: true}},
		{"decodes", Predicate{Decodes: true}},
		{"mass", Predicate{Mass: true}},
		{" node=1 & role=tx & tick=10-20 & seized & decodes ",
			Predicate{Nodes: []int{1}, Role: RoleTx, MinTick: 10, MaxTick: 21, Seized: true, Decodes: true}},
	}
	for _, c := range good {
		got, err := ParseQuery(c.in)
		if err != nil {
			t.Fatalf("ParseQuery(%q): %v", c.in, err)
		}
		if !reflect.DeepEqual(got, c.want) {
			t.Fatalf("ParseQuery(%q) = %+v, want %+v", c.in, got, c.want)
		}
		back, err := ParseQuery(got.String())
		if err != nil || !reflect.DeepEqual(back, got) {
			t.Fatalf("ParseQuery(%q).String()=%q did not round-trip: %+v, %v", c.in, got.String(), back, err)
		}
	}
	bad := []string{
		"node=", "node=x", "node=-3", "role=boss", "tick=", "tick=b-9",
		"tick=9-3", "seized=true", "decodes=1", "mass=yes", "color=red",
	}
	for _, in := range bad {
		if _, err := ParseQuery(in); err == nil {
			t.Fatalf("ParseQuery(%q) accepted", in)
		}
	}
}

// TestQueryStatsAddTo pins the metrics surface the planner counters flow
// through (traceinfo -counters, the daemon's /metricsz).
func TestQueryStatsAddTo(t *testing.T) {
	events := localityEvents(8, 50, 16)
	data, _ := encodeIndexed(t, events, 50)
	_, st, err := QueryAll(bytes.NewReader(data), Predicate{Nodes: []int{1}})
	if err != nil {
		t.Fatal(err)
	}
	if st.FramesSkipped == 0 {
		t.Fatal("selective query skipped nothing")
	}
	reg := metrics.NewRegistry()
	st.AddTo(reg)
	for name, want := range map[string]int64{
		"trace/query/queries":        1,
		"trace/query/frames_scanned": st.FramesScanned,
		"trace/query/frames_skipped": st.FramesSkipped,
		"trace/query/bytes_scanned":  st.BytesScanned,
		"trace/query/bytes_skipped":  st.BytesSkipped,
		"trace/query/events_matched": st.EventsMatched,
	} {
		if got := reg.CounterValue(name); got != want {
			t.Fatalf("counter %s = %d, want %d", name, got, want)
		}
	}
}
